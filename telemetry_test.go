package stbusgen_test

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/benchprobs"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
)

// sseKinds streams one /events subscription, tallying the flight-event
// kinds seen, until the server says bye or the stream ends. Counts are
// read through the mutex so the main goroutine can poll mid-stream.
type sseKinds struct {
	mu     sync.Mutex
	kinds  map[string]int
	frames int
	bye    bool
}

func (s *sseKinds) count(kind string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.kinds[kind]
}

var kindRe = regexp.MustCompile(`"kind":"([a-z_]+)"`)

func (s *sseKinds) consume(t *testing.T, body io.Reader) {
	br := bufio.NewReader(body)
	var event string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
			if event == "bye" {
				s.mu.Lock()
				s.bye = true
				s.mu.Unlock()
				return
			}
		case strings.HasPrefix(line, "data: ") && event == "flight":
			s.mu.Lock()
			s.frames++
			if m := kindRe.FindStringSubmatch(line); m != nil {
				s.kinds[m[1]]++
			}
			s.mu.Unlock()
		}
	}
}

// perturbedAnalysis16 is a 16-receiver instance hard enough to drive
// real search traffic — node batches, incumbent improvements and
// portfolio races — through the telemetry path in about 100ms.
func perturbedAnalysis16(t *testing.T) *trace.Analysis {
	t.Helper()
	tr := benchprobs.PerturbTrace(benchprobs.TraceN(16), 0.3, 1)
	a, err := trace.Analyze(tr, benchprobs.AnalysisWindow)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestTelemetryLiveStream is the end-to-end acceptance test of the
// observability PR: a 128-target portfolio solve (plus a perturbed
// 16-receiver solve that forces node-batch traffic) streams live
// incumbent, node and race events over /events to two concurrent SSE
// subscribers while /metrics serves valid Prometheus exposition.
func TestTelemetryLiveStream(t *testing.T) {
	if testing.Short() {
		t.Skip("full solves in -short mode")
	}
	rec := obs.NewFlightRecorder(obs.DefaultFlightCapacity)
	bus := obs.NewBus()
	rec.AttachBus(bus)
	bound, _, shutdown, err := obs.ServeTelemetry("127.0.0.1:0", obs.TelemetryConfig{Bus: bus})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown() //nolint:errcheck

	subs := [2]*sseKinds{{kinds: map[string]int{}}, {kinds: map[string]int{}}}
	var wg sync.WaitGroup
	for _, s := range subs {
		resp, err := http.Get("http://" + bound + "/events")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
			t.Fatalf("/events content type = %q", ct)
		}
		wg.Add(1)
		go func(s *sseKinds, body io.Reader) {
			defer wg.Done()
			s.consume(t, body)
		}(s, resp.Body)
	}
	deadline := time.Now().Add(10 * time.Second)
	for bus.Subscribers() < len(subs) {
		if time.Now().After(deadline) {
			t.Fatal("SSE subscribers never attached")
		}
		time.Sleep(time.Millisecond)
	}

	ctx := obs.WithFlightRecorder(context.Background(), rec)
	opts := core.DefaultOptions()
	opts.Engine = core.EnginePortfolio
	opts.Workers = 4

	d, err := core.DesignCrossbarCtx(ctx, benchprobs.Analysis128(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumBuses != 43 || d.MaxBusOverlap != 0 {
		t.Fatalf("128-target solve: %d buses, objective %d (want 43, 0)", d.NumBuses, d.MaxBusOverlap)
	}
	if _, err := core.DesignCrossbarCtx(ctx, perturbedAnalysis16(t), opts); err != nil {
		t.Fatal(err)
	}

	// Scrape /metrics while the stream is still open.
	resp, err := http.Get("http://" + bound + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	expo, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"# TYPE stbusgen_", "stbusgen_flight_events_total"} {
		if !strings.Contains(string(expo), want) {
			t.Errorf("/metrics exposition missing %q", want)
		}
	}

	// Both solves are done: wait for their frames to drain to both
	// subscribers before closing the bus, then assert coverage.
	deadline = time.Now().Add(10 * time.Second)
	for _, s := range subs {
		for s.count("design_done") < 2 {
			if time.Now().After(deadline) {
				t.Fatal("design_done frames never reached a subscriber")
			}
			time.Sleep(time.Millisecond)
		}
	}
	bus.Close()
	wg.Wait()

	for i, s := range subs {
		s.mu.Lock()
		for _, kind := range []string{"design_start", "incumbent", "nodes", "race_start", "race_win", "design_done"} {
			if s.kinds[kind] == 0 {
				t.Errorf("subscriber %d saw no %s events (kinds: %v)", i, kind, s.kinds)
			}
		}
		if !s.bye {
			t.Errorf("subscriber %d stream ended without a bye frame", i)
		}
		s.mu.Unlock()
	}
	if subs[0].frames != subs[1].frames {
		t.Logf("subscribers saw %d and %d flight frames (drops are legal under backpressure)",
			subs[0].frames, subs[1].frames)
	}
}

// TestPrometheusScrapeDuringSolve scrapes /metrics concurrently with a
// live solve and checks every response is well-formed exposition — the
// handler must never serve a torn snapshot.
func TestPrometheusScrapeDuringSolve(t *testing.T) {
	if testing.Short() {
		t.Skip("full solve in -short mode")
	}
	bound, _, shutdown, err := obs.ServeTelemetry("127.0.0.1:0", obs.TelemetryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown() //nolint:errcheck

	a := perturbedAnalysis16(t)
	solveDone := make(chan error, 1)
	go func() {
		opts := core.DefaultOptions()
		opts.Engine = core.EnginePortfolio
		opts.Workers = 4
		_, err := core.DesignCrossbarCtx(context.Background(), a, opts)
		solveDone <- err
	}()

	countRe := regexp.MustCompile(`(?m)^stbusgen_([a-z_]+)_count (\d+)$`)
	bucketInfRe := regexp.MustCompile(`(?m)^stbusgen_([a-z_]+)_bucket\{le="\+Inf"\} (\d+)$`)
	scrapes := 0
	for {
		select {
		case err := <-solveDone:
			if err != nil {
				t.Fatal(err)
			}
			if scrapes == 0 {
				t.Fatal("solve finished before a single scrape completed")
			}
			t.Logf("%d concurrent scrapes validated", scrapes)
			return
		default:
		}
		resp, err := http.Get("http://" + bound + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scrape %d: status %d", scrapes, resp.StatusCode)
		}
		// Per histogram, the +Inf bucket must equal _count within one
		// response: the snapshot the handler serves is self-consistent
		// even while observations pour in.
		counts := map[string]string{}
		for _, m := range countRe.FindAllStringSubmatch(string(body), -1) {
			counts[m[1]] = m[2]
		}
		for _, m := range bucketInfRe.FindAllStringSubmatch(string(body), -1) {
			if got, ok := counts[m[1]]; !ok || got != m[2] {
				t.Fatalf("scrape %d: histogram %s torn: +Inf bucket %s, _count %s", scrapes, m[1], m[2], got)
			}
		}
		scrapes++
	}
}

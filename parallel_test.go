package stbusgen_test

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"

	stbusgen "repro"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/workloads"
)

// designsEqual compares the deterministic fields of a design pair.
// SearchNodes is deliberately excluded: speculative probing does a
// different *amount* of work per run, but must land on the same answer.
func designsEqual(a, b *experiments.DesignPair) bool {
	eq := func(x, y *core.Design) bool {
		return x.NumBuses == y.NumBuses &&
			x.MaxBusOverlap == y.MaxBusOverlap &&
			reflect.DeepEqual(x.BusOf, y.BusOf)
	}
	return eq(a.Req, b.Req) && eq(a.Resp, b.Resp)
}

// TestParallelDesignDeterminism: on every paper benchmark, the
// parallel engine produces a bit-identical design (bus counts and
// bindings, both directions) to the serial path, independent of
// GOMAXPROCS and of the Workers knob.
func TestParallelDesignDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping full-benchmark determinism sweep in -short mode")
	}
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))

	for _, app := range workloads.All(experiments.Seed) {
		run, err := experiments.Prepare(app)
		if err != nil {
			t.Fatalf("%s: prepare: %v", app.Name, err)
		}
		serial := core.DefaultOptions()
		serial.Workers = 1
		want, err := run.DesignCtx(context.Background(), serial)
		if err != nil {
			t.Fatalf("%s: serial design: %v", app.Name, err)
		}
		for _, procs := range []int{1, 2, 4} {
			for _, workers := range []int{0, 2, 4, 8} {
				runtime.GOMAXPROCS(procs)
				opts := core.DefaultOptions()
				opts.Workers = workers
				got, err := run.DesignCtx(context.Background(), opts)
				if err != nil {
					t.Fatalf("%s: GOMAXPROCS=%d workers=%d: %v", app.Name, procs, workers, err)
				}
				if !designsEqual(want, got) {
					t.Errorf("%s: GOMAXPROCS=%d workers=%d: design differs from serial:\n serial   req %d buses %v / resp %d buses %v\n parallel req %d buses %v / resp %d buses %v",
						app.Name, procs, workers,
						want.Req.NumBuses, want.Req.BusOf, want.Resp.NumBuses, want.Resp.BusOf,
						got.Req.NumBuses, got.Req.BusOf, got.Resp.NumBuses, got.Resp.BusOf)
				}
			}
		}
	}
}

// TestDesignerCanceled: a cancellation arriving mid-pipeline aborts
// the facade Design promptly with a context error.
func TestDesignerCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := stbusgen.NewDesigner(stbusgen.DefaultOptions())
	if _, err := d.Design(ctx, stbusgen.Mat2(experiments.Seed)); !errors.Is(err, context.Canceled) {
		t.Errorf("Design under canceled ctx = %v, want context.Canceled", err)
	}
}

// BenchmarkParallelDesign compares the serial and the parallel engine
// on the full DesignForApp pipeline. On a single-core machine the two
// should be within noise of each other (the parallel engine must not
// cost anything); with more cores the parallel engine wins on the
// speculative feasibility probes and the concurrent direction designs.
func BenchmarkParallelDesign(b *testing.B) {
	apps := map[string]func(int64) *stbusgen.App{
		"Mat2": stbusgen.Mat2,
		"FFT":  stbusgen.FFT,
	}
	for name, mk := range apps {
		for _, mode := range []struct {
			name    string
			workers int
		}{
			{"serial", 1},
			{"parallel", 0}, // 0 = GOMAXPROCS
		} {
			b.Run(name+"/"+mode.name, func(b *testing.B) {
				app := mk(experiments.Seed)
				opts := stbusgen.DefaultOptions()
				opts.Workers = mode.workers
				for i := 0; i < b.N; i++ {
					if _, err := stbusgen.DesignForAppCtx(context.Background(), app, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

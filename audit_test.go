package stbusgen_test

import (
	"context"
	"math"
	"strings"
	"testing"

	stbusgen "repro"
	"repro/internal/core"
)

// TestDesignerAuditsWhenEnabled runs the full methodology with the
// independent auditor switched on: a correct solver produces designs
// the auditor certifies, so the run must succeed exactly as without
// auditing.
func TestDesignerAuditsWhenEnabled(t *testing.T) {
	opts := stbusgen.DefaultOptions()
	opts.Audit = true
	app := stbusgen.QSort(1)
	res, err := stbusgen.NewDesigner(opts).Design(context.Background(), app)
	if err != nil {
		t.Fatalf("audited design failed: %v", err)
	}
	if res.Pair.Req.NumBuses <= 0 || res.Pair.Resp.NumBuses <= 0 {
		t.Fatalf("audited design produced empty pair: %+v", res.Pair)
	}
}

// TestDesignerRejectsInvalidOptions pins that every facade entry point
// runs Options.Validate before touching the pipeline.
func TestDesignerRejectsInvalidOptions(t *testing.T) {
	bad := stbusgen.DefaultOptions()
	bad.OverlapThreshold = math.NaN()
	d := stbusgen.NewDesigner(bad)
	app := stbusgen.QSort(1)

	if _, err := d.Design(context.Background(), app); err == nil {
		t.Error("Design accepted NaN threshold")
	}
	tr := &stbusgen.Trace{NumReceivers: 1, NumSenders: 1, Horizon: 10}
	if _, err := d.DesignTrace(context.Background(), tr, 10); err == nil {
		t.Error("DesignTrace accepted NaN threshold")
	}

	bad.OverlapThreshold = 0.3
	bad.Workers = -1
	if _, err := stbusgen.DesignForApp(app, bad); err == nil {
		t.Error("DesignForApp accepted negative worker count")
	}
}

// TestValidateDesignRejectsOutOfRangeBus pins the checkPair hardening:
// a binding whose bus index exceeds the declared bus count must be
// rejected up front, not crash netlist generation or simulation.
func TestValidateDesignRejectsOutOfRangeBus(t *testing.T) {
	app := stbusgen.Mat2(1)
	req := &core.Design{NumBuses: 2, BusOf: make([]int, app.NumTargets)}
	req.BusOf[0] = 7 // out of range
	bad := &stbusgen.DesignPair{
		Req:  req,
		Resp: &core.Design{NumBuses: 1, BusOf: make([]int, app.NumInitiators)},
	}
	_, err := stbusgen.ValidateDesign(app, bad)
	if err == nil {
		t.Fatal("out-of-range bus index accepted")
	}
	if !strings.Contains(err.Error(), "bus") {
		t.Errorf("rejection does not name the bus problem: %v", err)
	}
	if _, err := stbusgen.ValidateDesign(app, &stbusgen.DesignPair{}); err == nil {
		t.Error("incomplete design pair accepted")
	}
}

package stbusgen

import (
	"context"
	"fmt"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stbus"
	"repro/internal/trace"
)

// Sentinel errors of the design pipeline, re-exported so facade users
// can classify failures with errors.Is without importing internal
// packages.
var (
	// ErrInfeasible: no bus count in the search range admits a binding.
	ErrInfeasible = core.ErrInfeasible
	// ErrCanceled: the design was abandoned because its context was
	// canceled or timed out. The context cause is wrapped, so
	// errors.Is(err, context.Canceled) (or DeadlineExceeded) also holds.
	ErrCanceled = core.ErrCanceled
	// ErrSearchLimit: the solver exhausted its node budget.
	ErrSearchLimit = core.ErrSearchLimit
)

// Designer is the concurrent design engine: it runs the four-phase
// methodology under a context, parallelizing the direction designs,
// the feasibility search and the window analyses. Every produced
// design is bit-identical to the sequential pipeline's — parallelism
// only changes how fast the answer arrives, never which answer.
type Designer struct {
	// Opts are the methodology parameters, including Opts.Workers, the
	// speculative parallelism of the feasibility search.
	Opts Options
	// Workers, when positive, overrides Opts.Workers for designs run
	// through this engine (0 keeps Opts.Workers, whose own zero value
	// means GOMAXPROCS).
	Workers int
}

// NewDesigner returns a Designer with the given methodology options.
func NewDesigner(opts Options) *Designer { return &Designer{Opts: opts} }

// options resolves the effective option set of one run.
func (d *Designer) options() Options {
	opts := d.Opts
	if d.Workers > 0 {
		opts.Workers = d.Workers
	}
	return opts
}

// Design runs the complete methodology on an application under ctx:
// full-crossbar simulation, window analysis of both directions,
// crossbar design for both directions, and validation. Cancellation or
// deadline expiry surfaces promptly as an error wrapping ErrCanceled
// (design phases) or sim.ErrCanceled (simulation phases).
func (d *Designer) Design(ctx context.Context, app *App) (_ *Result, err error) {
	ctx, span := obs.Start(ctx, "designer.design")
	defer span.End()
	defer func() { span.SetError(err) }()
	span.SetStr("app", app.Name)
	span.SetInt("initiators", int64(app.NumInitiators))
	span.SetInt("targets", int64(app.NumTargets))
	opts := d.options()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	run, err := experiments.PrepareCtx(ctx, app)
	if err != nil {
		return nil, err
	}
	pair, err := run.DesignCtx(ctx, opts)
	if err != nil {
		return nil, err
	}
	if opts.Audit {
		if err := auditDesign(pair.Req, run.AReq, opts, "request"); err != nil {
			return nil, err
		}
		if err := auditDesign(pair.Resp, run.AResp, opts, "response"); err != nil {
			return nil, err
		}
	}
	validation, err := run.ValidateCtx(ctx, pair)
	if err != nil {
		return nil, err
	}
	return &Result{
		App:          app,
		FullRun:      run.Full,
		ReqAnalysis:  run.AReq,
		RespAnalysis: run.AResp,
		Pair:         pair,
		Validation:   validation,
	}, nil
}

// DesignTrace designs one direction's crossbar from an existing trace
// with the given window size (phases 2–3 only).
func (d *Designer) DesignTrace(ctx context.Context, tr *Trace, windowSize int64) (_ *Design, err error) {
	ctx, span := obs.Start(ctx, "designer.design_trace")
	defer span.End()
	defer func() { span.SetError(err) }()
	span.SetInt("receivers", int64(tr.NumReceivers))
	span.SetInt("window_size", windowSize)
	opts := d.options()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	a, err := trace.AnalyzeCtx(ctx, tr, windowSize)
	if err != nil {
		return nil, err
	}
	return designFromAnalysis(ctx, a, opts)
}

// DesignAnalysis designs one direction's crossbar from a precomputed
// window analysis (phase 3 only). It is the entry point for callers
// that produced the analysis themselves — notably out-of-core sharded
// ingest (trace.AnalyzeFileSharded), where the event stream never
// exists as a Trace value. The design cache keys on the analysis
// fingerprint, so designs reached through this path and through
// DesignTrace share hits.
func (d *Designer) DesignAnalysis(ctx context.Context, a *Analysis) (_ *Design, err error) {
	ctx, span := obs.Start(ctx, "designer.design_analysis")
	defer span.End()
	defer func() { span.SetError(err) }()
	span.SetInt("receivers", int64(a.NumReceivers))
	span.SetInt("windows", int64(a.NumWindows()))
	opts := d.options()
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	return designFromAnalysis(ctx, a, opts)
}

// designFromAnalysis is the shared phase-3 body of DesignTrace and
// DesignAnalysis: solve, then optionally audit.
func designFromAnalysis(ctx context.Context, a *Analysis, opts Options) (*Design, error) {
	design, err := core.DesignCrossbarCtx(ctx, a, opts)
	if err != nil {
		return nil, err
	}
	if opts.Audit {
		if err := auditDesign(design, a, opts, "trace"); err != nil {
			return nil, err
		}
	}
	return design, nil
}

// auditDesign re-derives every paper constraint for one direction's
// design with the independent checker and converts violations into an
// error. Solver and auditor sharing a bug is the only way this passes
// wrongly, which is exactly the redundancy Options.Audit buys.
func auditDesign(d *Design, a *Analysis, opts Options, direction string) error {
	if rep := check.Audit(d, a, opts); !rep.OK() {
		return fmt.Errorf("stbusgen: %s design failed audit: %w", direction, rep.Err())
	}
	return nil
}

// DesignForAppCtx is DesignForApp under a context.
func DesignForAppCtx(ctx context.Context, app *App, opts Options) (*Result, error) {
	return (&Designer{Opts: opts}).Design(ctx, app)
}

// CollectTraceCtx is CollectTrace under a context.
func CollectTraceCtx(ctx context.Context, app *App) (req, resp *Trace, err error) {
	fullReq, fullResp := app.FullConfig()
	res, err := sim.RunCtx(ctx, app.SimConfig(fullReq, fullResp))
	if err != nil {
		return nil, nil, err
	}
	return res.ReqTrace, res.RespTrace, nil
}

// DesignFromTraceCtx is DesignFromTrace under a context.
func DesignFromTraceCtx(ctx context.Context, tr *Trace, windowSize int64, opts Options) (*Design, error) {
	return (&Designer{Opts: opts}).DesignTrace(ctx, tr, windowSize)
}

// ValidateDesignCtx is ValidateDesign under a context.
func ValidateDesignCtx(ctx context.Context, app *App, pair *DesignPair) (*SimResult, error) {
	if err := checkPair(app, pair); err != nil {
		return nil, err
	}
	req := stbus.Partial(app.NumInitiators, pair.Req.BusOf)
	resp := stbus.Partial(app.NumTargets, pair.Resp.BusOf)
	return sim.RunCtx(ctx, app.SimConfig(req, resp))
}

package stbusgen_test

import (
	"testing"

	stbusgen "repro"
	"repro/internal/core"
)

func TestDesignForAppMat2(t *testing.T) {
	app := stbusgen.Mat2(1)
	res, err := stbusgen.DesignForApp(app, stbusgen.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Pair.TotalBuses() != 6 {
		t.Errorf("Mat2 designed buses = %d, want 6 (paper Table 2)", res.Pair.TotalBuses())
	}
	full := res.FullRun.Latency.SummarizePacket()
	designed := res.Validation.Latency.SummarizePacket()
	if designed.Avg < full.Avg {
		t.Errorf("designed avg %.2f below full crossbar %.2f (impossible)", designed.Avg, full.Avg)
	}
	if designed.Avg > 2.5*full.Avg {
		t.Errorf("designed avg %.2f more than 2.5x full crossbar %.2f", designed.Avg, full.Avg)
	}
	// The designed bindings must satisfy the constraints they were
	// produced under.
	if err := res.Pair.Req.Validate(res.ReqAnalysis, stbusgen.DefaultOptions()); err != nil {
		t.Errorf("request design invalid: %v", err)
	}
	if err := res.Pair.Resp.Validate(res.RespAnalysis, stbusgen.DefaultOptions()); err != nil {
		t.Errorf("response design invalid: %v", err)
	}
}

func TestCollectTraceShapes(t *testing.T) {
	app := stbusgen.QSort(1)
	req, resp, err := stbusgen.CollectTrace(app)
	if err != nil {
		t.Fatal(err)
	}
	if req.NumReceivers != app.NumTargets || req.NumSenders != app.NumInitiators {
		t.Errorf("request trace is %d→%d, want %d→%d",
			req.NumSenders, req.NumReceivers, app.NumInitiators, app.NumTargets)
	}
	if resp.NumReceivers != app.NumInitiators || resp.NumSenders != app.NumTargets {
		t.Errorf("response trace is %d→%d, want %d→%d",
			resp.NumSenders, resp.NumReceivers, app.NumTargets, app.NumInitiators)
	}
	if err := req.Validate(); err != nil {
		t.Errorf("request trace invalid: %v", err)
	}
	if len(req.Events) == 0 || len(resp.Events) == 0 {
		t.Error("traces are empty")
	}
}

func TestDesignFromTrace(t *testing.T) {
	app := stbusgen.Synthetic(1, 1000)
	req, _, err := stbusgen.CollectTrace(app)
	if err != nil {
		t.Fatal(err)
	}
	opts := stbusgen.DefaultOptions()
	opts.MaxPerBus = 0
	opts.OverlapThreshold = -1
	small, err := stbusgen.DesignFromTrace(req, 200, opts)
	if err != nil {
		t.Fatal(err)
	}
	large, err := stbusgen.DesignFromTrace(req, 4000, opts)
	if err != nil {
		t.Fatal(err)
	}
	if small.NumBuses <= large.NumBuses {
		t.Errorf("window 200 gave %d buses, window 4000 gave %d; small windows must need more",
			small.NumBuses, large.NumBuses)
	}
}

func TestValidateDesignRejectsMismatch(t *testing.T) {
	app := stbusgen.Mat2(1)
	bad := &stbusgen.DesignPair{
		Req:  &core.Design{NumBuses: 1, BusOf: []int{0}},
		Resp: &core.Design{NumBuses: 1, BusOf: make([]int, app.NumInitiators)},
	}
	if _, err := stbusgen.ValidateDesign(app, bad); err == nil {
		t.Error("mismatched binding accepted")
	}
}

func TestValidateDesignRoundTrip(t *testing.T) {
	app := stbusgen.DES(1)
	res, err := stbusgen.DesignForApp(app, stbusgen.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	again, err := stbusgen.ValidateDesign(app, res.Pair)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic simulation: identical to the pipeline's validation.
	a := res.Validation.Latency.SummarizePacket()
	b := again.Latency.SummarizePacket()
	if a != b {
		t.Errorf("validation not deterministic: %+v vs %+v", a, b)
	}
}

// Tracefile: the decoupled designer workflow — collect a functional
// traffic trace, persist it to disk, then design crossbars from the
// file, as a design team would when the simulation platform and the
// crossbar generator run as separate steps (this is the workflow the
// cmd/stbus-sim and cmd/xbargen tools expose).
//
// Run with:
//
//	go run ./examples/tracefile
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	stbusgen "repro"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)

	app := stbusgen.QSort(1)
	fmt.Printf("collecting traces for %s (%d cores)\n", app.Name, app.NumCores())
	reqTrace, respTrace, err := stbusgen.CollectTrace(app)
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "stbusgen-traces")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	reqPath := filepath.Join(dir, "qsort.req.trc")
	if err := writeTrace(reqPath, reqTrace); err != nil {
		log.Fatal(err)
	}
	respPath := filepath.Join(dir, "qsort.resp.trc")
	if err := writeTrace(respPath, respTrace); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(reqPath)
	fmt.Printf("wrote %s (%d bytes, %d events)\n", reqPath, info.Size(), len(reqTrace.Events))

	// A separate step (possibly another process) reads the trace back
	// and designs the crossbar from it.
	loaded, err := readTrace(reqPath)
	if err != nil {
		log.Fatal(err)
	}
	d, err := stbusgen.DesignFromTrace(loaded, app.WindowSize, stbusgen.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initiator→target design from file: %d buses, binding %v\n", d.NumBuses, d.BusOf)

	loadedResp, err := readTrace(respPath)
	if err != nil {
		log.Fatal(err)
	}
	dResp, err := stbusgen.DesignFromTrace(loadedResp, app.WindowSize, stbusgen.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target→initiator design from file: %d buses, binding %v\n", dResp.NumBuses, dResp.BusOf)
	fmt.Printf("total: %d buses vs %d for a full crossbar (%.2fx savings)\n",
		d.NumBuses+dResp.NumBuses, app.NumCores(),
		float64(app.NumCores())/float64(d.NumBuses+dResp.NumBuses))
}

func writeTrace(path string, tr *trace.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.WriteBinary(f, tr)
}

func readTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadBinary(f)
}

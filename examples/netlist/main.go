// Netlist: generate the structural crossbar artifact and its area and
// power estimates — the outputs a downstream implementation flow would
// consume after the methodology picks a configuration.
//
// Run with:
//
//	go run ./examples/netlist
package main

import (
	"fmt"
	"log"
	"os"

	stbusgen "repro"
	"repro/internal/cost"
	"repro/internal/stbus"
)

func main() {
	log.SetFlags(0)

	app := stbusgen.DES(1)
	fmt.Printf("designing %s (%d cores)\n\n", app.Name, app.NumCores())
	result, err := stbusgen.DesignForApp(app, stbusgen.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	req := stbus.Partial(app.NumInitiators, result.Pair.Req.BusOf)
	resp := stbus.Partial(app.NumTargets, result.Pair.Resp.BusOf)

	// Structural netlist of the designed instantiation.
	netlist, err := stbus.GenerateNetlist(app.Name+" designed crossbar", req, resp)
	if err != nil {
		log.Fatal(err)
	}
	if err := netlist.WriteStructural(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Area and power against the full crossbar it replaces.
	fullReq, fullResp := app.FullConfig()
	am, pm := cost.DefaultAreaModel(), cost.DefaultPowerModel()

	desArea := am.EstimatePairArea(req, resp)
	fullArea := am.EstimatePairArea(fullReq, fullResp)
	fmt.Printf("area: designed %.0f vs full %.0f gate-equivalents (%.2fx smaller)\n",
		desArea.Total(), fullArea.Total(), fullArea.Total()/desArea.Total())

	desPower, err := pm.EstimatePower(req, am.EstimateArea(req),
		cost.ActivityFromUtilization(result.Validation.ReqUtil, result.Validation.ReqGrants, result.Validation.EndCycle))
	if err != nil {
		log.Fatal(err)
	}
	fullPower, err := pm.EstimatePower(fullReq, am.EstimateArea(fullReq),
		cost.ActivityFromUtilization(result.FullRun.ReqUtil, result.FullRun.ReqGrants, result.FullRun.EndCycle))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("request-side power: designed %.3f vs full %.3f units/cycle (%.2fx lower)\n",
		desPower.Total(), fullPower.Total(), fullPower.Total()/desPower.Total())
}

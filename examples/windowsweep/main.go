// Windowsweep: explore the crossbar size / performance trade-off by
// sweeping the analysis window size on the synthetic streaming
// benchmark (paper Section 7.2, Figure 5(a)).
//
// Small windows (below the typical burst length) reproduce the
// peak-bandwidth design extreme — nearly a full crossbar. Windows of
// 1–4 bursts give compact crossbars with acceptable latency. Very
// large windows collapse to the average-flow extreme: the smallest
// crossbar, but with the highest latencies.
//
// Run with:
//
//	go run ./examples/windowsweep
package main

import (
	"fmt"
	"log"

	stbusgen "repro"
)

func main() {
	log.SetFlags(0)

	const burst = 1000 // nominal burst length in cycles
	app := stbusgen.Synthetic(1, burst)
	fmt.Printf("sweeping analysis window for %s\n\n", app.Description)

	reqTrace, _, err := stbusgen.CollectTrace(app)
	if err != nil {
		log.Fatal(err)
	}
	bursts := reqTrace.Bursts()
	fmt.Printf("trace: %d streaming transfers, mean burst %.0f cycles, max %d\n\n",
		bursts.Count, bursts.MeanLen, bursts.MaxLen)

	opts := stbusgen.DefaultOptions()
	opts.MaxPerBus = 0         // isolate the window-size effect
	opts.OverlapThreshold = -1 // pre-processing off for the sweep

	fmt.Printf("%12s  %12s  %s\n", "window (cy)", "window/burst", "designed buses")
	for _, ws := range []int64{200, 500, 1000, 2000, 3000, 4000, 8000, 20000, 100000} {
		d, err := stbusgen.DesignFromTrace(reqTrace, ws, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%12d  %12.2f  %d\n", ws, float64(ws)/burst, d.NumBuses)
	}

	fmt.Println("\nreading the sweep: window ≪ burst ⇒ near-full crossbar;")
	fmt.Println("window of 1–4 bursts ⇒ compact design; window ≫ burst ⇒ average-flow extreme.")
}

// Quickstart: design an application-specific STbus crossbar for the
// paper's 21-core Mat2 benchmark and compare it against the full
// crossbar it replaces.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	stbusgen "repro"
)

func main() {
	log.SetFlags(0)

	// The 21-core matrix-multiplication MPSoC from the paper's running
	// example: 9 ARM initiators, 9 private memories, shared memory,
	// semaphore and interrupt device.
	app := stbusgen.Mat2(1)
	fmt.Printf("designing crossbar for %s: %s\n", app.Name, app.Description)

	// Run the full methodology: full-crossbar simulation, window-based
	// traffic analysis, crossbar sizing + optimal binding, validation.
	result, err := stbusgen.DesignForApp(app, stbusgen.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	full := result.FullRun.Latency.SummarizePacket()
	designed := result.Validation.Latency.SummarizePacket()

	fmt.Printf("\nfull crossbar: %d buses, packet latency avg %.2f / max %d cycles\n",
		app.NumCores(), full.Avg, full.Max)
	fmt.Printf("designed crossbar: %d buses (%d initiator→target + %d target→initiator)\n",
		result.Pair.TotalBuses(), result.Pair.Req.NumBuses, result.Pair.Resp.NumBuses)
	fmt.Printf("  packet latency avg %.2f / max %d cycles (%.2fx / %.2fx of full)\n",
		designed.Avg, designed.Max, designed.Avg/full.Avg, float64(designed.Max)/float64(full.Max))
	fmt.Printf("  bus savings: %.2fx\n",
		float64(app.NumCores())/float64(result.Pair.TotalBuses()))

	fmt.Println("\ninitiator→target binding (targets per bus):")
	for b := 0; b < result.Pair.Req.NumBuses; b++ {
		fmt.Printf("  bus %d:", b)
		for t, bus := range result.Pair.Req.BusOf {
			if bus != b {
				continue
			}
			switch t {
			case app.SharedTarget:
				fmt.Printf(" shared")
			case app.SemTarget:
				fmt.Printf(" sem")
			case app.InterruptTarget:
				fmt.Printf(" int")
			default:
				fmt.Printf(" mem%d", t)
			}
		}
		fmt.Println()
	}
}

// Realtime: demonstrate the methodology's handling of critical
// (real-time) traffic streams (paper Section 7.3).
//
// Two cores of the Mat2 benchmark are marked as carrying real-time
// traffic to their private memories. Their streams overlap in time, so
// the pre-processing forbids their targets from sharing a bus; the
// validated design then gives the critical streams packet latencies
// close to a full crossbar's.
//
// Run with:
//
//	go run ./examples/realtime
package main

import (
	"fmt"
	"log"

	stbusgen "repro"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func main() {
	log.SetFlags(0)

	// Cores 0 and 4 carry real-time streams; their pipeline stages
	// overlap so an overlap-oblivious design could bind their private
	// memories to one bus.
	criticalCores := []int{0, 4}
	app := workloads.Mat2Critical(1, criticalCores...)
	fmt.Printf("designing %s with critical streams from cores %v\n", app.Name, criticalCores)

	result, err := stbusgen.DesignForApp(app, stbusgen.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	critical := func(s stats.Sample) bool { return s.Critical }
	fullCrit := result.FullRun.Latency.SummarizePacketWhere(critical)
	desCrit := result.Validation.Latency.SummarizePacketWhere(critical)
	desAll := result.Validation.Latency.SummarizePacket()

	t0, t1 := app.PrivateOf[criticalCores[0]], app.PrivateOf[criticalCores[1]]
	fmt.Printf("\ncritical targets mem%d and mem%d bound to buses %d and %d\n",
		t0, t1, result.Pair.Req.BusOf[t0], result.Pair.Req.BusOf[t1])
	if result.Pair.Req.BusOf[t0] == result.Pair.Req.BusOf[t1] {
		fmt.Println("WARNING: critical targets share a bus — criticality constraint violated")
	} else {
		fmt.Println("critical targets are on separate buses, as required")
	}

	fmt.Printf("\ncritical packet latency on full crossbar:     avg %.2f  max %d\n", fullCrit.Avg, fullCrit.Max)
	fmt.Printf("critical packet latency on designed crossbar: avg %.2f  max %d (%.2fx of full)\n",
		desCrit.Avg, desCrit.Max, desCrit.Avg/fullCrit.Avg)
	fmt.Printf("overall packet latency on designed crossbar:  avg %.2f\n", desAll.Avg)
	fmt.Printf("designed size: %d buses vs %d for a full crossbar\n",
		result.Pair.TotalBuses(), app.NumCores())
}

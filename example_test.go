package stbusgen_test

import (
	"fmt"
	"log"

	stbusgen "repro"
)

// ExampleDesignForApp designs the crossbars for the 15-core QSort
// benchmark: 3 initiator→target and 3 target→initiator buses, a 2.5×
// saving over the full crossbar (paper Table 2).
func ExampleDesignForApp() {
	app := stbusgen.QSort(1)
	res, err := stbusgen.DesignForApp(app, stbusgen.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d cores -> %d+%d buses\n",
		app.NumCores(), res.Pair.Req.NumBuses, res.Pair.Resp.NumBuses)
	// Output: 15 cores -> 3+3 buses
}

// ExampleDesignFromTrace shows the decoupled flow: collect a trace,
// then design one direction from it with the window size recommended
// by the application.
func ExampleDesignFromTrace() {
	app := stbusgen.DES(1)
	reqTrace, _, err := stbusgen.CollectTrace(app)
	if err != nil {
		log.Fatal(err)
	}
	design, err := stbusgen.DesignFromTrace(reqTrace, app.WindowSize, stbusgen.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d targets on %d buses\n", len(design.BusOf), design.NumBuses)
	// Output: 11 targets on 3 buses
}

// ExampleCollectTrace inspects the traffic structure the methodology
// analyzes: the synthetic benchmark's long streaming bursts.
func ExampleCollectTrace() {
	app := stbusgen.Synthetic(1, 1000)
	reqTrace, _, err := stbusgen.CollectTrace(app)
	if err != nil {
		log.Fatal(err)
	}
	st := reqTrace.Bursts()
	fmt.Printf("%d bursts, max %d cycles\n", st.Count, st.MaxLen)
	// Output: 480 bursts, max 1201 cycles
}

package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"encoding/hex"
	"os"
	"path/filepath"

	"repro/internal/core"
)

// On-disk entry layout (one file per cached design):
//
//	magic    [8]byte  "STBUSCD\x01"
//	version  uint32   little-endian diskVersion
//	checksum [32]byte SHA-256 of the payload
//	payload  []byte   gob(diskPayload)
//
// Every field is verified on load; any mismatch — foreign file, stale
// version, flipped bit, truncation, or a filename colliding with
// different content — makes the entry a miss. The format is an
// integrity layer, not a security boundary: the directory is trusted
// not to be adversarial, merely unreliable.
var diskMagic = [8]byte{'S', 'T', 'B', 'U', 'S', 'C', 'D', 1}

// diskVersion is bumped whenever the payload encoding or the meaning
// of a fingerprint changes; old entries then read as misses and are
// naturally rewritten.
const diskVersion uint32 = 1

// diskPayload is the gob-encoded body. The fingerprints are repeated
// inside the checksummed payload so a file renamed onto the wrong key
// cannot serve a wrong design.
type diskPayload struct {
	AnalysisFP [32]byte
	OptionsFP  [32]byte
	Design     core.Design
}

// diskPath derives the entry filename from the key. Truncated hex keeps
// names short; the full fingerprints inside the payload disambiguate
// the (astronomically unlikely) truncation collision.
func (s *Store) diskPath(k key) string {
	name := hex.EncodeToString(k.analysis[:8]) + "-" + hex.EncodeToString(k.options[:8]) + ".stbusc"
	return filepath.Join(s.cfg.Dir, name)
}

// loadDisk reads and verifies one entry. Any failure is a miss;
// metDiskRejects distinguishes "file present but rejected" from a
// plain absence.
func (s *Store) loadDisk(k key) (*core.Design, bool) {
	raw, err := os.ReadFile(s.diskPath(k))
	if err != nil {
		return nil, false
	}
	reject := func() (*core.Design, bool) {
		metDiskRejects.Inc()
		return nil, false
	}
	const headerLen = 8 + 4 + sha256.Size
	if len(raw) < headerLen {
		return reject()
	}
	if !bytes.Equal(raw[:8], diskMagic[:]) {
		return reject()
	}
	if binary.LittleEndian.Uint32(raw[8:12]) != diskVersion {
		return reject()
	}
	payload := raw[headerLen:]
	if sum := sha256.Sum256(payload); !bytes.Equal(sum[:], raw[12:headerLen]) {
		return reject()
	}
	var p diskPayload
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&p); err != nil {
		return reject()
	}
	if p.AnalysisFP != [32]byte(k.analysis) || p.OptionsFP != [32]byte(k.options) {
		return reject()
	}
	if p.Design.Capped || len(p.Design.BusOf) == 0 {
		return reject()
	}
	d := p.Design
	return &d, true
}

// writeDisk persists one entry, best-effort: errors drop the write (a
// cache miss later, never a failure now). The write goes through a
// temp file + rename so concurrent readers only ever see complete
// entries.
func (s *Store) writeDisk(k key, d *core.Design) {
	if err := os.MkdirAll(s.cfg.Dir, 0o755); err != nil {
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(diskPayload{
		AnalysisFP: [32]byte(k.analysis),
		OptionsFP:  [32]byte(k.options),
		Design:     *copyDesign(d),
	}); err != nil {
		return
	}
	payload := buf.Bytes()
	header := make([]byte, 0, 8+4+sha256.Size)
	header = append(header, diskMagic[:]...)
	header = binary.LittleEndian.AppendUint32(header, diskVersion)
	sum := sha256.Sum256(payload)
	header = append(header, sum[:]...)

	path := s.diskPath(k)
	tmp, err := os.CreateTemp(s.cfg.Dir, ".stbusc-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(append(header, payload...))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
	}
}

package cache

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// testCtx is the no-op context every cache call in these tests uses.
var testCtx = context.Background()

// mkAnalysis builds a small deterministic analysis; variant selects
// distinct content so tests can populate the cache with many keys.
func mkAnalysis(t *testing.T, variant int) *trace.Analysis {
	t.Helper()
	nRecv := 4
	tr := &trace.Trace{NumReceivers: nRecv, NumSenders: 1, Horizon: 400}
	for r := 0; r < nRecv; r++ {
		tr.Events = append(tr.Events, trace.Event{
			Start:    int64(r * 37 % 350),
			Len:      int64(20 + (r*13+variant)%30),
			Receiver: r,
		})
	}
	a, err := trace.Analyze(tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func testOpts() core.Options {
	o := core.DefaultOptions()
	o.Workers = 1
	return o
}

// sameCrossbar compares the designed artifact, ignoring the solver
// effort counter.
func sameCrossbar(a, b *core.Design) bool {
	return a.NumBuses == b.NumBuses &&
		reflect.DeepEqual(a.BusOf, b.BusOf) &&
		a.MaxBusOverlap == b.MaxBusOverlap &&
		a.Conflicts == b.Conflicts &&
		a.Engine == b.Engine &&
		a.Capped == b.Capped
}

// TestExactHitRoundTrip: the second design of identical content is an
// exact hit returning the same crossbar, and the handed-out design is
// a private copy (mutating it cannot poison the cache).
func TestExactHitRoundTrip(t *testing.T) {
	a := mkAnalysis(t, 0)
	s := New(Config{})
	opts := testOpts()
	opts.Cache = s

	d1, err := core.DesignCrossbar(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("cache has %d entries after one design", s.Len())
	}
	// A structurally fresh analysis with equal content must hit too:
	// identity is the fingerprint, not the pointer.
	d2, err := core.DesignCrossbar(mkAnalysis(t, 0), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !sameCrossbar(d1, d2) {
		t.Fatalf("hit %+v differs from cold %+v", d2, d1)
	}
	d2.BusOf[0] = 99
	d3, _ := core.DesignCrossbar(a, opts)
	if d3.BusOf[0] == 99 {
		t.Fatal("caller mutation reached the cached design")
	}
}

// TestEvictionOrder pins LRU semantics: capacity overflow evicts the
// least recently used key, and both lookups and re-stores refresh
// recency.
func TestEvictionOrder(t *testing.T) {
	s := New(Config{MaxEntries: 2})
	opts := testOpts()
	a := []*trace.Analysis{mkAnalysis(t, 0), mkAnalysis(t, 1), mkAnalysis(t, 2), mkAnalysis(t, 3)}
	d := &core.Design{NumBuses: 1, BusOf: []int{0, 0, 0, 0}}

	s.Store(testCtx, a[0], opts, d)
	s.Store(testCtx, a[1], opts, d)
	s.Store(testCtx, a[2], opts, d) // evicts a[0]
	if _, ok := s.Lookup(testCtx, a[0], opts); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, ok := s.Lookup(testCtx, a[1], opts); !ok {
		t.Fatal("a[1] evicted out of order")
	}
	// a[1] was just touched, so adding a fourth key must evict a[2].
	s.Store(testCtx, a[3], opts, d)
	if _, ok := s.Lookup(testCtx, a[2], opts); ok {
		t.Fatal("touched entry evicted instead of LRU victim")
	}
	if _, ok := s.Lookup(testCtx, a[1], opts); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := s.Lookup(testCtx, a[3], opts); !ok {
		t.Fatal("newest entry missing")
	}
	if s.Len() != 2 {
		t.Fatalf("capacity 2 holds %d entries", s.Len())
	}
}

// TestOptionsPartitionKeys: same analysis, different answer-affecting
// options — distinct keys, no cross-talk.
func TestOptionsPartitionKeys(t *testing.T) {
	a := mkAnalysis(t, 0)
	s := New(Config{})
	opts := testOpts()
	opts.Cache = s
	d1, err := core.DesignCrossbar(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	other := opts
	other.OptimizeBinding = false
	if _, ok := s.Lookup(testCtx, a, other); ok {
		t.Fatal("options change did not change the key")
	}
	// Non-answer knobs (workers, audit) share the key.
	alias := opts
	alias.Workers = 7
	alias.Audit = true
	got, ok := s.Lookup(testCtx, a, alias)
	if !ok || !sameCrossbar(got, d1) {
		t.Fatal("worker/audit knobs perturbed the content key")
	}
}

// TestDiskTierRoundTrip: a second Store instance over the same
// directory serves the entry; corruption, truncation, a stale version
// and a foreign magic are each rejected as misses.
func TestDiskTierRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a := mkAnalysis(t, 0)
	opts := testOpts()
	opts.Cache = New(Config{Dir: dir})
	d1, err := core.DesignCrossbar(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.stbusc"))
	if err != nil || len(files) != 1 {
		t.Fatalf("want one cache file, got %v (%v)", files, err)
	}
	path := files[0]

	fresh := func() *Store { return New(Config{Dir: dir}) }
	if d2, ok := fresh().Lookup(testCtx, a, opts); !ok || !sameCrossbar(d2, d1) {
		t.Fatalf("disk round-trip failed: ok=%v", ok)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		if err := os.WriteFile(path, mutate(append([]byte(nil), raw...)), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := fresh().Lookup(testCtx, a, opts); ok {
			t.Fatalf("%s entry was trusted", name)
		}
	}
	corrupt("bit-flipped", func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b })
	corrupt("truncated", func(b []byte) []byte { return b[:len(b)/2] })
	corrupt("stale-version", func(b []byte) []byte { b[8] ^= 0xFF; return b })
	corrupt("foreign-magic", func(b []byte) []byte { b[0] = 'X'; return b })
	// Restore the pristine bytes: the entry must be trusted again
	// (proves the rejections above were each due to the mutation).
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh().Lookup(testCtx, a, opts); !ok {
		t.Fatal("pristine entry rejected")
	}
}

// TestWarmLookup: near-identical content lends its binding, unrelated
// content and disabled warm lookups do not.
func TestWarmLookup(t *testing.T) {
	base := mkAnalysis(t, 0)
	opts := testOpts()
	s := New(Config{})
	d := &core.Design{NumBuses: 2, BusOf: []int{0, 1, 0, 1}, MaxBusOverlap: 3}
	s.Store(testCtx, base, opts, d)

	if inc := s.Warm(testCtx, base, opts); inc == nil || !reflect.DeepEqual(inc.BusOf, d.BusOf) {
		t.Fatalf("identical content not warm-served: %+v", inc)
	}
	// Mutating the handed-out incumbent must not poison the cache.
	s.Warm(testCtx, base, opts).BusOf[0] = 9
	if inc := s.Warm(testCtx, base, opts); inc.BusOf[0] == 9 {
		t.Fatal("caller mutation reached the cached binding")
	}
	// A different option fingerprint never warms.
	other := opts
	other.MaxPerBus++
	if inc := s.Warm(testCtx, base, other); inc != nil {
		t.Fatal("warm hit across option fingerprints")
	}
	// Warm lookups disabled.
	off := New(Config{MaxDeltaFrac: Delta(-1)})
	off.Store(testCtx, base, opts, d)
	if inc := off.Warm(testCtx, base, opts); inc != nil {
		t.Fatal("disabled warm tier served an incumbent")
	}
	// A wholesale different problem is past any delta budget.
	tight := New(Config{MaxDeltaFrac: Delta(0.01)})
	tight.Store(testCtx, base, opts, d)
	far := mkAnalysis(t, 7)
	if inc := tight.Warm(testCtx, far, opts); inc != nil {
		t.Fatal("far content warm-served under a tight budget")
	}
}

// TestConcurrentSameFingerprint hammers one Store from many goroutines
// designing the same problem (run under -race in CI): every result
// must be the same crossbar, and the cache must end up with exactly
// one entry.
func TestConcurrentSameFingerprint(t *testing.T) {
	s := New(Config{Dir: t.TempDir()})
	opts := testOpts()
	opts.Cache = s
	ref, err := core.DesignCrossbar(mkAnalysis(t, 0), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	designs := make([]*core.Design, workers*4)
	errs := make([]error, workers*4)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Private analysis per goroutine: equal content, distinct
			// memory — the contended path is the fingerprint map.
			a := mkAnalysis(t, 0)
			for i := 0; i < 4; i++ {
				designs[w*4+i], errs[w*4+i] = core.DesignCrossbar(a, opts)
			}
		}(w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("design %d: %v", i, err)
		}
		if !sameCrossbar(designs[i], ref) {
			t.Fatalf("design %d diverged: %+v vs %+v", i, designs[i], ref)
		}
	}
	if s.Len() != 1 {
		t.Fatalf("cache holds %d entries for one fingerprint", s.Len())
	}
}

// TestZeroDeltaExactOnly pins the Config.MaxDeltaFrac zero-value
// semantics: Delta(0) means exact-match-only — a single perturbed
// constraint cell must miss the warm tier — while leaving the field
// nil keeps the default tolerance that admits the same perturbation.
// (A float64 field once treated 0 as "unset" and promoted it to the
// 0.15 default, making exact-only caching unreachable.)
func TestZeroDeltaExactOnly(t *testing.T) {
	base := mkAnalysis(t, 0)
	opts := testOpts()
	d := &core.Design{NumBuses: 2, BusOf: []int{0, 1, 0, 1}, MaxBusOverlap: 3}

	// One perturbed cell: same shape and windows, one Comm value off by
	// one cycle.
	perturbed := base.Clone()
	perturbed.Comm.Set(0, 0, base.Comm.At(0, 0)+1)
	if diffs, ok := trace.CountDiffs(perturbed, base, 0); !ok || diffs != 1 {
		t.Fatalf("perturbation diffs = %d (ok=%v), want exactly 1", diffs, ok)
	}

	exact := New(Config{MaxDeltaFrac: Delta(0)})
	exact.Store(testCtx, base, opts, d)
	if _, ok := exact.Lookup(testCtx, base, opts); !ok {
		t.Fatal("identical content must still hit exactly at Delta(0)")
	}
	if inc := exact.Warm(testCtx, perturbed, opts); inc != nil {
		t.Fatalf("1-cell perturbation warm-served at Delta(0): %+v", inc)
	}

	dflt := New(Config{})
	dflt.Store(testCtx, base, opts, d)
	if inc := dflt.Warm(testCtx, perturbed, opts); inc == nil {
		t.Fatal("1-cell perturbation must warm-serve under the default tolerance")
	}
}

package cache

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/benchprobs"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/trace"
)

// TestCacheEquivalenceDifferential is the cache-correctness gate run
// in CI: over the differential harness's 220-case problem set, the
// design served from an exact cache hit and the design produced by a
// warm delta re-solve (cache primed with a 5%-perturbed sibling of the
// problem) must be bit-identical to the cold design and pass the
// independent auditor. The default engine path runs on every case;
// every seventh case repeats the check on the MILP engine.
func TestCacheEquivalenceDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("cache equivalence sweep skipped in -short mode")
	}
	const cases = 220
	for seed := int64(1); seed <= cases; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			c := check.RandomCase(seed, check.DefaultGenParams())
			engines := []core.Engine{core.EngineBranchBound}
			if seed%7 == 0 {
				engines = append(engines, core.EngineMILP)
			}
			for _, eng := range engines {
				opts := c.Opts
				opts.Engine = eng
				checkCaseEquivalence(t, c, opts)
			}
		})
	}
}

func checkCaseEquivalence(t *testing.T, c check.Case, opts core.Options) {
	t.Helper()
	ctx := context.Background()
	a, err := trace.AnalyzeCtx(ctx, c.Trace, c.WindowSize)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	cold, coldErr := core.DesignCrossbarCtx(ctx, a, opts)
	if coldErr != nil && !errors.Is(coldErr, core.ErrInfeasible) {
		t.Fatalf("cold solve: %v", coldErr)
	}

	s := New(Config{Dir: t.TempDir()})
	copts := opts
	copts.Cache = s

	// Miss → cold-equivalent solve and store.
	miss, missErr := core.DesignCrossbarCtx(ctx, a, copts)
	assertSameOutcome(t, "miss", a, opts, cold, coldErr, miss, missErr)
	// Exact hit → stored design, zero solver work.
	hit, hitErr := core.DesignCrossbarCtx(ctx, a, copts)
	assertSameOutcome(t, "hit", a, opts, cold, coldErr, hit, hitErr)

	// Delta re-solve: the cache holds the original problem's design;
	// the perturbed problem must warm-start to the same answer its own
	// cold solve produces.
	if len(c.Trace.Events) == 0 {
		return
	}
	ptr := benchprobs.PerturbTrace(c.Trace, 0.05, c.Seed)
	pa, err := trace.AnalyzeCtx(ctx, ptr, c.WindowSize)
	if err != nil {
		t.Fatalf("analyze perturbed: %v", err)
	}
	pcold, pcoldErr := core.DesignCrossbarCtx(ctx, pa, opts)
	if pcoldErr != nil && !errors.Is(pcoldErr, core.ErrInfeasible) {
		t.Fatalf("perturbed cold solve: %v", pcoldErr)
	}
	pwarm, pwarmErr := core.DesignCrossbarCtx(ctx, pa, copts)
	assertSameOutcome(t, "delta", pa, opts, pcold, pcoldErr, pwarm, pwarmErr)
}

// assertSameOutcome requires the cached/warm path to reproduce the
// cold path exactly — same infeasibility verdict or the same crossbar
// — and audits every produced design independently.
func assertSameOutcome(t *testing.T, mode string, a *trace.Analysis, opts core.Options,
	cold *core.Design, coldErr error, got *core.Design, gotErr error) {
	t.Helper()
	if (gotErr != nil) != (coldErr != nil) {
		t.Fatalf("%s: err=%v, cold err=%v", mode, gotErr, coldErr)
	}
	if coldErr != nil {
		if !errors.Is(gotErr, core.ErrInfeasible) {
			t.Fatalf("%s: err %v, want infeasible like cold", mode, gotErr)
		}
		return
	}
	if !sameCrossbar(got, cold) {
		t.Fatalf("%s: design %+v, cold %+v", mode, got, cold)
	}
	if rep := check.Audit(got, a, opts); !rep.OK() {
		t.Fatalf("%s: audit failed: %v", mode, rep.Err())
	}
}

// Package cache implements the content-addressed design cache that
// front-ends core.DesignCrossbarCtx (it is the canonical implementation
// of the core.Cache interface, wired in via core.Options.Cache).
//
// Identity is the pair of content fingerprints (Analysis.Fingerprint,
// Options.Fingerprint): two problems with equal fingerprints are the
// same problem no matter how their matrices were constructed, so a hit
// returns the stored design with zero solver work. Near misses are
// served as warm incumbents: among cached entries with the same option
// fingerprint and receiver count, the most recently used one whose
// constraint diff against the new analysis is small enough (see
// Config.MaxDeltaFrac) lends its binding as a starting point. Core
// re-validates the binding before using it, so a warm answer is a pure
// accelerator — the designed crossbar is bit-identical to a cold solve.
//
// The in-memory tier is a bounded LRU. An optional on-disk tier
// (Config.Dir) persists exact-hit entries across processes in
// versioned, checksummed files; entries that fail any integrity check
// are ignored, never trusted. Disk entries carry only the design (no
// analysis), so they serve exact hits but not warm starts.
package cache

import (
	"container/list"
	"context"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Cache traffic instruments (see internal/obs): exact hits and misses,
// warm (near-hit) lookups served, LRU evictions, and disk-tier entries
// rejected by an integrity check.
var (
	metHits        = obs.NewCounter("cache.hits")
	metMisses      = obs.NewCounter("cache.misses")
	metWarmHits    = obs.NewCounter("cache.warm_hits")
	metEvicts      = obs.NewCounter("cache.evictions")
	metDiskHits    = obs.NewCounter("cache.disk_hits")
	metDiskRejects = obs.NewCounter("cache.disk_rejects")
	metLookupNS    = obs.NewHistogram("cache.lookup_ns")
)

// Config tunes a Store. The zero value is valid: a memory-only cache
// with the default capacity and delta tolerance.
type Config struct {
	// MaxEntries bounds the in-memory tier (LRU eviction beyond it).
	// 0 means DefaultMaxEntries.
	MaxEntries int
	// Dir, when non-empty, enables the on-disk tier in that directory
	// (created on first write). Disk I/O is best-effort: an unreadable
	// or corrupt entry is a miss, a failed write is dropped silently —
	// the cache never turns a solvable design into an error.
	Dir string
	// MaxDeltaFrac bounds how different a cached problem may be and
	// still lend its binding as a warm incumbent: the number of
	// differing constraint cells (trace.CountDiffs) must not exceed
	// this fraction of the problem's dense cell count. nil means
	// DefaultMaxDeltaFrac; use Delta to set an explicit value. Delta(0)
	// means exact-match-only — any perturbed problem misses — and a
	// negative value skips the warm scan entirely (same admissions as
	// zero, without walking the LRU). The field is a pointer precisely
	// so the zero fraction is expressible: an earlier float64 field
	// treated 0 as "unset" and silently promoted it to the default,
	// making exact-only caching unreachable.
	MaxDeltaFrac *float64
}

// Delta returns a pointer to f for Config.MaxDeltaFrac — the explicit
// counterpart of leaving the field nil (default tolerance).
func Delta(f float64) *float64 { return &f }

const (
	// DefaultMaxEntries is sized for the repository's workloads: the
	// full experiment sweep designs a few hundred distinct problems.
	DefaultMaxEntries = 256
	// DefaultMaxDeltaFrac admits small perturbations (a few percent of
	// cells) and rejects wholesale rewrites, where re-validating and
	// re-solving from the stale binding would waste more than it saves.
	DefaultMaxDeltaFrac = 0.15
)

// key is the content identity of one cached problem.
type key struct {
	analysis trace.Fingerprint
	options  trace.Fingerprint
}

// entry is one cached design. The analysis clone is retained for warm
// (near-hit) diffing; disk-loaded entries have none.
type entry struct {
	key      key
	design   *core.Design
	analysis *trace.Analysis
	elem     *list.Element
}

// Store is a bounded, concurrency-safe design cache implementing
// core.Cache. The zero value is not usable; construct with New.
type Store struct {
	mu    sync.Mutex
	cfg   Config
	delta float64    // resolved Config.MaxDeltaFrac (nil → default)
	lru   *list.List // of *entry; front = most recently used
	byKey map[key]*entry
}

var _ core.Cache = (*Store)(nil)

// New builds a Store with the given configuration.
func New(cfg Config) *Store {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	delta := DefaultMaxDeltaFrac
	if cfg.MaxDeltaFrac != nil {
		delta = *cfg.MaxDeltaFrac
	}
	return &Store{
		cfg:   cfg,
		delta: delta,
		lru:   list.New(),
		byKey: make(map[key]*entry),
	}
}

// Len reports the number of in-memory entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

// Lookup implements core.Cache: an exact content hit, memory first,
// then the disk tier. The context carries telemetry instruments (flight
// recorder), never cancellation — a lookup always runs to completion.
func (s *Store) Lookup(ctx context.Context, a *trace.Analysis, opts core.Options) (*core.Design, bool) {
	rec := obs.FlightRecorderFrom(ctx)
	start := time.Now()
	defer func() { metLookupNS.Observe(time.Since(start).Nanoseconds()) }()
	k := key{analysis: a.Fingerprint(), options: opts.Fingerprint()}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.byKey[k]; ok {
		s.lru.MoveToFront(e.elem)
		metHits.Inc()
		rec.Emit(obs.Event{Kind: obs.EvCacheHit, K: e.design.NumBuses, Who: "memory"})
		return copyDesign(e.design), true
	}
	if s.cfg.Dir != "" {
		if d, ok := s.loadDisk(k); ok {
			// Promote into memory (sans analysis: the disk tier does
			// not keep one, so the entry serves exact hits only).
			s.insert(&entry{key: k, design: d})
			metHits.Inc()
			metDiskHits.Inc()
			rec.Emit(obs.Event{Kind: obs.EvCacheHit, K: d.NumBuses, Who: "disk"})
			return copyDesign(d), true
		}
	}
	metMisses.Inc()
	return nil, false
}

// Warm implements core.Cache: the most recently used entry with the
// same option fingerprint and receiver count whose constraint diff is
// within the delta budget lends its binding as an incumbent.
func (s *Store) Warm(ctx context.Context, a *trace.Analysis, opts core.Options) *core.Incumbent {
	if s.delta < 0 {
		return nil
	}
	// Dense cell count of the compared content: Comm and CritComm plus
	// the OM upper triangle. (The sparse per-window overlaps are diffed
	// too, but scaling the budget by the dense size is stable across
	// sparsity levels.)
	nT := a.NumReceivers
	total := 2*nT*a.NumWindows() + nT*(nT-1)/2
	limit := int(s.delta * float64(total))
	ofp := opts.Fingerprint()
	s.mu.Lock()
	defer s.mu.Unlock()
	for el := s.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry)
		if e.analysis == nil || e.key.options != ofp || e.analysis.NumReceivers != nT {
			continue
		}
		if diffs, ok := trace.CountDiffs(a, e.analysis, limit); ok && diffs <= limit {
			metWarmHits.Inc()
			obs.FlightRecorderFrom(ctx).Emit(obs.Event{
				Kind: obs.EvCacheWarm, K: e.design.NumBuses, Val: int64(diffs)})
			return &core.Incumbent{
				NumBuses: e.design.NumBuses,
				BusOf:    append([]int(nil), e.design.BusOf...),
			}
		}
	}
	return nil
}

// Store implements core.Cache: it retains private copies of the design
// and the analysis (core may hand the same design to its caller, and
// the analysis may be mutated and re-designed later — exactly the
// delta-solve pattern the warm tier exists for).
func (s *Store) Store(ctx context.Context, a *trace.Analysis, opts core.Options, d *core.Design) {
	if d == nil || d.Capped {
		// Capped designs are budget-dependent; the fingerprint
		// deliberately excludes the budget, so caching one would let a
		// truncated answer impersonate the real one.
		return
	}
	obs.FlightRecorderFrom(ctx).Emit(obs.Event{Kind: obs.EvCacheStore, K: d.NumBuses})
	k := key{analysis: a.Fingerprint(), options: opts.Fingerprint()}
	e := &entry{key: k, design: copyDesign(d), analysis: a.Clone()}
	s.mu.Lock()
	if old, ok := s.byKey[k]; ok {
		// Same content hashes to the same design; refresh recency, and
		// upgrade a disk-promoted entry (no analysis) to warm-capable.
		if old.analysis == nil {
			old.analysis = e.analysis
		}
		s.lru.MoveToFront(old.elem)
		s.mu.Unlock()
		return
	}
	s.insert(e)
	s.mu.Unlock()
	if s.cfg.Dir != "" {
		// Outside the lock: disk latency must not stall lookups.
		s.writeDisk(k, d)
	}
}

// insert adds a fresh entry at the LRU front and evicts beyond
// capacity. Caller holds s.mu.
func (s *Store) insert(e *entry) {
	e.elem = s.lru.PushFront(e)
	s.byKey[e.key] = e
	for s.lru.Len() > s.cfg.MaxEntries {
		back := s.lru.Back()
		victim := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.byKey, victim.key)
		metEvicts.Inc()
	}
}

// copyDesign deep-copies a design so cached state is never aliased by
// callers (or vice versa).
func copyDesign(d *core.Design) *core.Design {
	cp := *d
	cp.BusOf = append([]int(nil), d.BusOf...)
	return &cp
}

package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Run is the daemon lifecycle: listen, serve, and on ctx cancellation
// (SIGTERM/SIGINT via internal/cli, or a test canceling) drain
// gracefully — stop admitting, let in-flight jobs finish within
// Config.DrainTimeout, cancel stragglers, then shut the listener down.
// Serve errors are never discarded: a listener that dies mid-run
// surfaces as Run's return value immediately.
//
// OnListen, when non-nil, receives the bound address once the listener
// is up (tests bind ":0" and need the port; stbusd logs it).
func Run(ctx context.Context, cfg Config, onListen func(net.Addr)) error {
	s := New(ctx, cfg)
	defer s.Close()

	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	if onListen != nil {
		onListen(ln.Addr())
	}
	s.logf("listening on %s (workers %d, queue %d)", ln.Addr(), s.cfg.Concurrency, s.cfg.QueueDepth)

	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() {
		if e := hs.Serve(ln); e != nil && !errors.Is(e, http.ErrServerClosed) {
			serveErr <- fmt.Errorf("server: serve: %w", e)
		}
		close(serveErr)
	}()

	select {
	case err := <-serveErr:
		// The listener died under us — nothing to drain into; cancel
		// whatever is in flight and report.
		s.baseCancel(errors.New("server: listener failed"))
		if err == nil {
			err = errors.New("server: serve loop exited unexpectedly")
		}
		return err
	case <-ctx.Done():
	}

	// Graceful drain: jobs first (admission already stopped), then the
	// HTTP layer — by then handlers are only waiting on finished jobs
	// or streaming terminal frames, so Shutdown returns quickly.
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	s.Drain(dctx)

	sctx, scancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer scancel()
	var errs []error
	if e := hs.Shutdown(sctx); e != nil {
		errs = append(errs, fmt.Errorf("server: shutdown: %w", e))
		hs.Close() //nolint:errcheck // hard fallback past the drain deadline
	}
	errs = append(errs, <-serveErr)
	s.logf("shutdown complete")
	return errors.Join(errs...)
}

// waitHealthy polls /healthz until the daemon answers or the timeout
// passes — a convenience for smoke tests and scripts.
func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server: not healthy after %s: %w", timeout, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

package server

import (
	"context"
	"errors"
	"sync"
	"time"

	stbusgen "repro"
	"repro/internal/core"
	"repro/internal/obs"
)

// jobState is the lifecycle of one design job.
type jobState int

const (
	jobQueued jobState = iota
	jobRunning
	jobDone
	jobFailed
)

func (s jobState) String() string {
	switch s {
	case jobQueued:
		return "queued"
	case jobRunning:
		return "running"
	case jobDone:
		return "done"
	case jobFailed:
		return "failed"
	}
	return "unknown"
}

// job is one admitted design request. Telemetry is per-job: the flight
// recorder journals this solve only, and the bus fans its events out to
// this job's SSE subscribers — the process-global instruments see only
// aggregate metrics, so concurrent jobs never interleave in a client's
// stream.
type job struct {
	id  string
	req *designRequest

	// rec journals the solve; bus mirrors it live to /v1/jobs/{id}/events
	// subscribers and closes when the job finishes (ending their
	// streams with a result frame and a bye).
	rec *obs.FlightRecorder
	bus *obs.Bus

	// done closes when the job reaches a terminal state.
	done chan struct{}

	mu       sync.Mutex
	state    jobState
	created  time.Time
	started  time.Time
	finished time.Time
	design   *core.Design      // trace jobs
	result   *stbusgen.Result  // app jobs
	err      error
}

func (j *job) setRunning(now time.Time) {
	j.mu.Lock()
	j.state = jobRunning
	j.started = now
	j.mu.Unlock()
}

func (j *job) finish(now time.Time, design *core.Design, result *stbusgen.Result, err error) {
	j.mu.Lock()
	j.finished = now
	j.design = design
	j.result = result
	j.err = err
	if err != nil {
		j.state = jobFailed
	} else {
		j.state = jobDone
	}
	j.mu.Unlock()
	close(j.done)
}

// terminal reports whether the job has finished (done or failed).
func (j *job) terminal() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// failureReason classifies a job error for the API response: clients
// branch on the reason string, not on Go error identity.
func failureReason(err error) (reason string, status int) {
	switch {
	case errors.Is(err, core.ErrInfeasible):
		return "infeasible", 422
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout", 504
	case errors.Is(err, core.ErrCanceled):
		return "canceled", 503
	case errors.Is(err, core.ErrSearchLimit):
		return "search_limit", 422
	}
	return "internal", 500
}

package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	stbusgen "repro"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
)

// designRequest is one decoded /v1/design submission: either a traffic
// trace to analyze and design (phases 2–3) or a named benchmark
// application to run through the full four-phase methodology.
type designRequest struct {
	// Exactly one of tr / spool / app is set. spool is the temp-file
	// path of a large binary trace body routed through the out-of-core
	// sharded path instead of decoded into memory.
	tr     *trace.Trace
	spool  string
	app    *stbusgen.App
	window int64 // trace jobs; 0 means the trace's own hint

	opts    core.Options
	timeout time.Duration
	async   bool
}

// cleanup releases the request's spooled body, if any. Idempotent; it
// runs when the job finishes and on every pre-admission error path.
func (req *designRequest) cleanup() {
	if req.spool != "" {
		os.Remove(req.spool) //nolint:errcheck // best-effort temp cleanup
		req.spool = ""
	}
}

// appSpec is the JSON body of an application design request: a named
// benchmark from the paper's suite (the service-side counterpart of
// the netlist/workload constructors).
type appSpec struct {
	App   string `json:"app"`
	Seed  int64  `json:"seed"`
	Burst int64  `json:"burst"` // synthetic only; cycles per burst
}

// httpError is a decode/admission failure carrying its status code.
type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &httpError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

// decodeDesignRequest parses one POST /v1/design: solver options from
// the query string, the problem from the body. Binary traces arrive as
// application/octet-stream (the stbus-sim -dump-traces format), JSON
// bodies carry either a JSON trace or an application spec ({"app":...}).
func (s *Server) decodeDesignRequest(r *http.Request) (*designRequest, error) {
	q := r.URL.Query()
	req := &designRequest{opts: core.DefaultOptions()}
	req.opts.Workers = s.cfg.Workers
	req.opts.Cache = s.cache

	var err error
	if v := q.Get("threshold"); v != "" {
		if req.opts.OverlapThreshold, err = strconv.ParseFloat(v, 64); err != nil {
			return nil, badRequest("threshold: %v", err)
		}
	}
	if v := q.Get("maxtb"); v != "" {
		if req.opts.MaxPerBus, err = strconv.Atoi(v); err != nil {
			return nil, badRequest("maxtb: %v", err)
		}
	}
	switch mode := q.Get("mode"); mode {
	case "", "optimize":
		req.opts.OptimizeBinding = true
	case "first-feasible":
		req.opts.OptimizeBinding = false
	default:
		return nil, badRequest("mode: unknown %q (want optimize or first-feasible)", mode)
	}
	if req.opts.Engine, err = cli.ParseEngine(q.Get("engine")); err != nil {
		return nil, badRequest("engine: %v", err)
	}
	if v := q.Get("critical"); v != "" {
		if req.opts.SeparateCritical, err = strconv.ParseBool(v); err != nil {
			return nil, badRequest("critical: %v", err)
		}
	}
	if v := q.Get("audit"); v != "" {
		if req.opts.Audit, err = strconv.ParseBool(v); err != nil {
			return nil, badRequest("audit: %v", err)
		}
	}
	if v := q.Get("max_nodes"); v != "" {
		if req.opts.MaxNodes, err = strconv.ParseInt(v, 10, 64); err != nil {
			return nil, badRequest("max_nodes: %v", err)
		}
		if s.cfg.MaxNodes > 0 && (req.opts.MaxNodes == 0 || req.opts.MaxNodes > s.cfg.MaxNodes) {
			req.opts.MaxNodes = s.cfg.MaxNodes
		}
	} else {
		req.opts.MaxNodes = s.cfg.MaxNodes
	}
	if v := q.Get("window"); v != "" {
		if req.window, err = strconv.ParseInt(v, 10, 64); err != nil {
			return nil, badRequest("window: %v", err)
		}
		if req.window < 0 {
			return nil, badRequest("window: must be positive")
		}
	}
	req.timeout = s.cfg.DefaultTimeout
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			return nil, badRequest("timeout: %v", err)
		}
		if d <= 0 {
			return nil, badRequest("timeout: must be positive")
		}
		req.timeout = d
	}
	if req.timeout <= 0 || req.timeout > s.cfg.MaxTimeout {
		req.timeout = s.cfg.MaxTimeout
	}
	if v := q.Get("async"); v != "" {
		if req.async, err = strconv.ParseBool(v); err != nil {
			return nil, badRequest("async: %v", err)
		}
	}
	if err := req.opts.Validate(); err != nil {
		return nil, badRequest("options: %v", err)
	}

	body := http.MaxBytesReader(nil, r.Body, s.cfg.MaxBody)
	switch ct := contentType(r); ct {
	// x-www-form-urlencoded is curl's --data-binary default; treating it
	// as a binary trace keeps the obvious invocation working.
	case "application/octet-stream", "application/x-stbus-trace",
		"application/x-www-form-urlencoded", "":
		if err := s.ingestBinaryTrace(body, req); err != nil {
			return nil, err
		}
	case "application/json":
		raw, err := io.ReadAll(body)
		if err != nil {
			return nil, badRequest("body: %v", err)
		}
		var spec appSpec
		if err := json.Unmarshal(raw, &spec); err == nil && spec.App != "" {
			app, err := lookupApp(spec)
			if err != nil {
				return nil, err
			}
			req.app = app
			break
		}
		tr, err := trace.ReadJSON(bytes.NewReader(raw))
		if err != nil {
			return nil, badRequest("JSON body: neither an application spec ({\"app\":...}) nor a trace: %v", err)
		}
		req.tr = tr
	default:
		return nil, &httpError{status: http.StatusUnsupportedMediaType,
			msg: fmt.Sprintf("unsupported content type %q (want application/octet-stream or application/json)", ct)}
	}
	if req.tr != nil && req.window == 0 {
		req.window = req.tr.WindowSizeHint()
	}
	return req, nil
}

// ingestBinaryTrace decodes a binary trace body. Bodies at most
// SpoolThreshold bytes are decoded in memory as before; larger ones
// are spooled to a temp file after a fail-fast header check and
// analyzed later through the mmap-backed sharded driver, so the
// per-job cost of a 100M-event POST is the analysis tables, not the
// event slice. Spooled jobs cannot compute burst statistics for the
// window hint, so the default window falls back to horizon/100 —
// clients posting huge traces should pass ?window= explicitly.
func (s *Server) ingestBinaryTrace(body io.Reader, req *designRequest) error {
	threshold := s.cfg.SpoolThreshold
	if threshold < 0 || threshold >= s.cfg.MaxBody {
		tr, err := trace.ReadBinary(body)
		if err != nil {
			return badRequest("binary trace: %v", err)
		}
		req.tr = tr
		return nil
	}

	head := make([]byte, threshold+1)
	n, err := io.ReadFull(body, head)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		// The whole body fits under the threshold: the in-memory path.
		tr, err := trace.ReadBinary(bytes.NewReader(head[:n]))
		if err != nil {
			return badRequest("binary trace: %v", err)
		}
		req.tr = tr
		return nil
	}
	if err != nil {
		return badRequest("binary trace: %v", err)
	}

	// Too big to hold: fail fast on the header, then spool to disk.
	hdr, err := trace.ReadHeader(bytes.NewReader(head))
	if err != nil {
		return badRequest("binary trace: %v", err)
	}
	f, err := os.CreateTemp(s.cfg.SpoolDir, "stbusd-trace-*.trc")
	if err != nil {
		return fmt.Errorf("spooling trace body: %w", err)
	}
	spooled := false
	defer func() {
		f.Close()
		if !spooled {
			os.Remove(f.Name()) //nolint:errcheck // best-effort temp cleanup
		}
	}()
	if _, err := f.Write(head); err != nil {
		return fmt.Errorf("spooling trace body: %w", err)
	}
	if _, err := io.Copy(f, body); err != nil {
		// MaxBytesReader errors land here for oversized bodies.
		return badRequest("binary trace: %v", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("spooling trace body: %w", err)
	}
	spooled = true
	req.spool = f.Name()
	if req.window == 0 {
		req.window = max(hdr.Horizon/100, 1)
	}
	return nil
}

// lookupApp resolves an application spec against the paper's benchmark
// suite.
func lookupApp(spec appSpec) (*stbusgen.App, error) {
	seed := spec.Seed
	if seed == 0 {
		seed = 1
	}
	switch spec.App {
	case "mat1":
		return stbusgen.Mat1(seed), nil
	case "mat2":
		return stbusgen.Mat2(seed), nil
	case "fft":
		return stbusgen.FFT(seed), nil
	case "qsort":
		return stbusgen.QSort(seed), nil
	case "des":
		return stbusgen.DES(seed), nil
	case "synthetic":
		burst := spec.Burst
		if burst <= 0 {
			burst = 600
		}
		return stbusgen.Synthetic(seed, burst), nil
	}
	return nil, badRequest("app: unknown %q (want mat1, mat2, fft, qsort, des or synthetic)", spec.App)
}

func contentType(r *http.Request) string {
	ct := r.Header.Get("Content-Type")
	for i := 0; i < len(ct); i++ {
		if ct[i] == ';' {
			return ct[:i]
		}
	}
	return ct
}

// designJSON is the wire form of one designed crossbar direction.
type designJSON struct {
	NumBuses      int    `json:"num_buses"`
	BusOf         []int  `json:"bus_of"`
	MaxBusOverlap int64  `json:"max_bus_overlap"`
	Conflicts     int    `json:"conflicts"`
	SearchNodes   int64  `json:"search_nodes"`
	Engine        string `json:"engine"`
	Capped        bool   `json:"capped,omitempty"`
}

func designWire(d *core.Design) *designJSON {
	if d == nil {
		return nil
	}
	return &designJSON{
		NumBuses:      d.NumBuses,
		BusOf:         d.BusOf,
		MaxBusOverlap: d.MaxBusOverlap,
		Conflicts:     d.Conflicts,
		SearchNodes:   d.SearchNodes,
		Engine:        d.Engine.String(),
		Capped:        d.Capped,
	}
}

// jobJSON is the wire form of one job's status — the body of
// /v1/jobs/{id}, of a synchronous /v1/design response, and of the
// terminal "result" SSE frame.
type jobJSON struct {
	Job    string `json:"job"`
	Status string `json:"status"`
	// Cached names the tier that served an exact content hit ("memory"
	// or "disk"); Warm reports a near-hit incumbent seeding the solve.
	Cached string `json:"cached,omitempty"`
	Warm   bool   `json:"warm,omitempty"`
	// QueueNS / ElapsedNS are the admission-to-start and start-to-finish
	// times of a finished job.
	QueueNS   int64 `json:"queue_ns,omitempty"`
	ElapsedNS int64 `json:"elapsed_ns,omitempty"`
	// Design is the crossbar of a trace job; Request/Response the two
	// directions of an application job.
	Design   *designJSON `json:"design,omitempty"`
	Request  *designJSON `json:"request,omitempty"`
	Response *designJSON `json:"response,omitempty"`
	Error    string      `json:"error,omitempty"`
	Reason   string      `json:"reason,omitempty"`
	// Events counts the flight-recorder events this job emitted; the
	// live stream is at EventsURL while the job runs.
	Events    int64  `json:"events"`
	EventsURL string `json:"events_url"`
}

// wire renders the job's current status. Caller must not hold j.mu.
func (j *job) wire() *jobJSON {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := &jobJSON{
		Job:       j.id,
		Status:    j.state.String(),
		Events:    j.rec.Emitted(),
		EventsURL: "/v1/jobs/" + j.id + "/events",
	}
	if !j.started.IsZero() {
		out.QueueNS = j.started.Sub(j.created).Nanoseconds()
	}
	if !j.finished.IsZero() {
		out.ElapsedNS = j.finished.Sub(j.started).Nanoseconds()
	}
	if j.design != nil {
		out.Design = designWire(j.design)
	}
	if j.result != nil {
		out.Request = designWire(j.result.Pair.Req)
		out.Response = designWire(j.result.Pair.Resp)
	}
	if j.err != nil {
		out.Error = j.err.Error()
		out.Reason, _ = failureReason(j.err)
	}
	for _, e := range j.rec.Events() {
		switch e.Kind {
		case obs.EvCacheHit:
			out.Cached = e.Who
		case obs.EvCacheWarm:
			out.Warm = true
		}
	}
	return out
}

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // response already committed
}

// errorJSON is the uniform error body.
type errorJSON struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

func writeError(w http.ResponseWriter, status int, reason, format string, args ...any) {
	writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...), Reason: reason})
}

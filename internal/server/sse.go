package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// sseHeartbeat keeps idle job streams alive through proxies.
const sseHeartbeat = 15 * time.Second

// handleJobEvents streams one job's flight recording as Server-Sent
// Events: every event already journaled is replayed first, then live
// events follow as the solver emits them, and the stream ends with a
// "result" frame (the job's terminal status) and a "bye" frame.
//
// The implementation reads events from the job's recorder with a
// sequence cursor and uses the job's bus purely as a wakeup: a frame
// arriving (or being dropped under backpressure — drops only cost
// wakeups, never events) means the cursor has new events to drain.
// That gives replay-then-live semantics with no duplicated or lost
// events, a property the bus alone (live-only) cannot provide.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no such job %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "internal", "streaming unsupported")
		return
	}

	// Subscribe before the first drain: events emitted between the
	// drain and the subscription would otherwise neither be replayed
	// nor wake the stream. A finished job's bus is already closed, and
	// its subscription arrives with done already closed — the loop
	// below then drains the journal once and finishes immediately.
	sub := j.bus.Subscribe(0)
	defer j.bus.Unsubscribe(sub)

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": job %s stream open\n\n", j.id)

	var cursor int64
	drain := func() {
		for _, e := range j.rec.EventsSince(cursor) {
			cursor = e.Seq + 1
			fmt.Fprintf(w, "event: flight\ndata: %s\n\n", e.WireJSON())
		}
	}
	finishStream := func() {
		drain()
		if data, err := json.Marshal(j.wire()); err == nil {
			fmt.Fprintf(w, "event: result\ndata: %s\n\n", data)
		}
		fmt.Fprint(w, "event: bye\ndata: {}\n\n")
		fl.Flush()
	}

	drain()
	fl.Flush()

	heartbeat := time.NewTicker(sseHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-sub.Done():
			finishStream()
			return
		case <-sub.Frames():
			// Coalesce queued wakeups before draining once.
			for {
				select {
				case <-sub.Frames():
					continue
				default:
				}
				break
			}
			drain()
			fl.Flush()
		case <-heartbeat.C:
			fmt.Fprint(w, ": keepalive\n\n")
			fl.Flush()
		}
	}
}

package server

import (
	"net/http"
	"runtime/debug"
	"time"
)

// statusWriter observes the response status for the request log while
// passing the Flusher capability through — the SSE handler needs it.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Flush() {
	if fl, ok := w.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

// withLogging logs one line per request: method, path, status, wall
// time. A nil logf short-circuits to the bare handler.
func withLogging(logf func(string, ...any), next http.Handler) http.Handler {
	if logf == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		logf("%s %s %d %s", r.Method, r.URL.Path, status, time.Since(start))
	})
}

// withRecovery converts a handler panic into a 500 instead of killing
// the connection (and, under http.Server, only that request): a bad
// request must never take the daemon down.
func withRecovery(logf func(string, ...any), next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if logf != nil {
					logf("panic serving %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				}
				// The header may already be out; this is best-effort.
				writeError(w, http.StatusInternalServerError, "internal", "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/benchprobs"
	"repro/internal/trace"
)

// testConfig is a small, quiet server configuration for tests.
func testConfig() Config {
	return Config{
		Addr:           "127.0.0.1:0",
		Concurrency:    2,
		QueueDepth:     4,
		DefaultTimeout: 30 * time.Second,
		DrainTimeout:   10 * time.Second,
	}
}

// newTestServer starts a Server behind an httptest listener and wires
// orderly teardown: drain jobs, then the HTTP layer, then the pool.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(context.Background(), cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		s.Drain(dctx)
		cancel()
		hs.Close()
		s.Close()
	})
	return s, hs
}

// slowTrace returns a trace whose design takes long enough to observe
// in flight (roughly a hundred milliseconds) but finishes well within
// test deadlines.
func slowTrace(seed int64) *trace.Trace {
	return benchprobs.PerturbTrace(benchprobs.TraceN(16), 0.3, seed)
}

func traceBody(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, tr); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	return buf.Bytes()
}

func postDesign(t *testing.T, url string, body []byte) (*jobJSON, int) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var j jobJSON
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return &j, resp.StatusCode
}

// pollJob polls /v1/jobs/{id} until pred accepts the status or the
// deadline passes.
func pollJob(t *testing.T, base, id string, pred func(*jobJSON) bool) *jobJSON {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET job %s: %v", id, err)
		}
		var j jobJSON
		err = json.NewDecoder(resp.Body).Decode(&j)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode job %s: %v", id, err)
		}
		if pred(&j) {
			return &j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s: still %q after deadline", id, j.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	event string
	data  string
}

// readSSE consumes an event stream until a "bye" frame or EOF.
func readSSE(r *bufio.Reader) ([]sseFrame, error) {
	var frames []sseFrame
	var cur sseFrame
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return frames, err
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.event != "" || cur.data != "" {
				frames = append(frames, cur)
				if cur.event == "bye" {
					return frames, nil
				}
				cur = sseFrame{}
			}
		}
	}
}

// TestDesignEndToEnd is the daemon's core acceptance test: a first
// solve populates the shared cache, a repeat of the identical request
// is served from it (microseconds, not a re-solve), a perturbed
// request runs concurrently and streams live SSE progress, and the
// three interleave without interference.
func TestDesignEndToEnd(t *testing.T) {
	_, hs := newTestServer(t, testConfig())
	designURL := hs.URL + "/v1/design"
	body := traceBody(t, slowTrace(1))

	// Cold solve: a real search, journaled per-job.
	first, code := postDesign(t, designURL, body)
	if code != http.StatusOK {
		t.Fatalf("cold POST: status %d (%+v)", code, first)
	}
	if first.Status != "done" || first.Design == nil {
		t.Fatalf("cold POST: status=%q design=%v", first.Status, first.Design)
	}
	if first.Cached != "" {
		t.Fatalf("cold POST unexpectedly cached via %q", first.Cached)
	}
	if first.Design.NumBuses <= 0 || first.Design.NumBuses > 16 {
		t.Fatalf("cold POST: implausible bus count %d", first.Design.NumBuses)
	}

	// Identical repeat and a perturbed sibling, concurrently.
	var wg sync.WaitGroup
	var repeat *jobJSON
	wg.Add(1)
	go func() {
		defer wg.Done()
		repeat, _ = postDesign(t, designURL, body)
	}()

	perturbed, code := postDesign(t, designURL+"?async=1", traceBody(t, slowTrace(2)))
	if code != http.StatusAccepted {
		t.Fatalf("async POST: status %d", code)
	}

	// Stream the perturbed job's progress while it solves.
	resp, err := http.Get(hs.URL + perturbed.EventsURL)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	frames, err := readSSE(bufio.NewReader(resp.Body))
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read SSE: %v (got %d frames)", err, len(frames))
	}
	var flights, results int
	for _, f := range frames {
		switch f.event {
		case "flight":
			flights++
		case "result":
			results++
		}
	}
	if flights == 0 {
		t.Errorf("SSE: no flight events streamed for the running job")
	}
	if results != 1 {
		t.Errorf("SSE: got %d result frames, want 1", results)
	}
	last := frames[len(frames)-1]
	if last.event != "bye" {
		t.Errorf("SSE: stream ended with %q, want bye", last.event)
	}

	wg.Wait()
	if repeat.Status != "done" || repeat.Design == nil {
		t.Fatalf("repeat POST: status=%q", repeat.Status)
	}
	if repeat.Cached != "memory" {
		t.Fatalf("repeat POST: cached=%q, want memory hit", repeat.Cached)
	}
	// A content hit skips the search entirely: its service time is
	// microseconds. The bound is generous for race-detector CI noise.
	if repeat.ElapsedNS > (50 * time.Millisecond).Nanoseconds() {
		t.Errorf("repeat POST took %s — not a cache hit fast path", time.Duration(repeat.ElapsedNS))
	}
	if repeat.Design.NumBuses != first.Design.NumBuses {
		t.Errorf("repeat bus count %d != first %d", repeat.Design.NumBuses, first.Design.NumBuses)
	}

	done := pollJob(t, hs.URL, perturbed.Job, func(j *jobJSON) bool { return j.Status == "done" })
	if done.Design == nil || done.Design.NumBuses <= 0 {
		t.Errorf("perturbed job: no design in terminal status")
	}
	if done.Cached != "" {
		t.Errorf("perturbed job unexpectedly an exact cache hit (%q)", done.Cached)
	}
}

// TestQueueSaturation429 pins admission control: with one worker held
// mid-job and the queue full, the next POST is rejected with 429 and a
// Retry-After hint, and the queue recovers once the worker is released.
func TestQueueSaturation429(t *testing.T) {
	cfg := testConfig()
	cfg.Concurrency = 1
	cfg.QueueDepth = 1
	s, hs := newTestServer(t, cfg)

	entered := make(chan string, 4)
	release := make(chan struct{})
	var once sync.Once
	defer once.Do(func() { close(release) })
	s.testHookJobRunning = func(j *job) {
		entered <- j.id
		<-release
	}

	body := traceBody(t, slowTrace(3))
	// Job 1 occupies the only worker (held by the hook)...
	running, code := postDesign(t, hs.URL+"/v1/design?async=1", body)
	if code != http.StatusAccepted {
		t.Fatalf("job 1: status %d", code)
	}
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("job 1 never started")
	}
	// ...job 2 fills the one queue slot...
	if _, code := postDesign(t, hs.URL+"/v1/design?async=1", body); code != http.StatusAccepted {
		t.Fatalf("job 2: status %d", code)
	}
	// ...and job 3 must bounce.
	resp, err := http.Post(hs.URL+"/v1/design", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("job 3: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("429 carried no Retry-After")
	}
	var e errorJSON
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Reason != "queue_full" {
		t.Errorf("429 body: reason=%q err=%v, want queue_full", e.Reason, err)
	}

	once.Do(func() { close(release) })
	pollJob(t, hs.URL, running.Job, func(j *jobJSON) bool { return j.Status == "done" })
}

// TestAppSpecDesign covers the structural-input route: a named
// benchmark application runs the full four-phase methodology and
// returns both crossbar directions.
func TestAppSpecDesign(t *testing.T) {
	_, hs := newTestServer(t, testConfig())
	resp, err := http.Post(hs.URL+"/v1/design", "application/json",
		strings.NewReader(`{"app":"mat2"}`))
	if err != nil {
		t.Fatalf("POST app: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST app: status %d", resp.StatusCode)
	}
	var j jobJSON
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if j.Request == nil || j.Response == nil {
		t.Fatalf("app job missing a direction: req=%v resp=%v", j.Request, j.Response)
	}
	if j.Request.NumBuses <= 0 || j.Response.NumBuses <= 0 {
		t.Errorf("implausible bus counts: req=%d resp=%d", j.Request.NumBuses, j.Response.NumBuses)
	}
}

// TestBadRequests pins the rejection surface: unknown app, unknown
// engine, bad content type, and garbage binary bodies all answer 4xx
// with a JSON error, never a 500.
func TestBadRequests(t *testing.T) {
	_, hs := newTestServer(t, testConfig())
	cases := []struct {
		name, url, ct, body string
		want                int
	}{
		{"unknown app", "/v1/design", "application/json", `{"app":"nope"}`, 400},
		{"unknown engine", "/v1/design?engine=quantum", "application/json", `{"app":"mat1"}`, 400},
		{"bad content type", "/v1/design", "text/csv", "a,b", 415},
		{"garbage binary", "/v1/design", "application/octet-stream", "not a trace", 400},
		{"bad mode", "/v1/design?mode=wat", "application/json", `{"app":"mat1"}`, 400},
		{"negative timeout", "/v1/design?timeout=-1s", "application/json", `{"app":"mat1"}`, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(hs.URL+tc.url, tc.ct, strings.NewReader(tc.body))
			if err != nil {
				t.Fatalf("POST: %v", err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.want)
			}
			var e errorJSON
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
				t.Errorf("error body not JSON: %v", err)
			}
		})
	}

	// Unknown job ids 404 on both status and events.
	for _, path := range []string{"/v1/jobs/j-999999", "/v1/jobs/j-999999/events"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestSSEAfterCompletion pins the replay half of the stream contract: a
// subscriber arriving after the job finished still receives the full
// journal, the result frame, and a clean bye.
func TestSSEAfterCompletion(t *testing.T) {
	_, hs := newTestServer(t, testConfig())
	j, code := postDesign(t, hs.URL+"/v1/design", traceBody(t, slowTrace(4)))
	if code != http.StatusOK {
		t.Fatalf("POST: status %d", code)
	}
	resp, err := http.Get(hs.URL + j.EventsURL)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	frames, err := readSSE(bufio.NewReader(resp.Body))
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read SSE: %v", err)
	}
	var flights int
	var result *jobJSON
	for _, f := range frames {
		switch f.event {
		case "flight":
			flights++
		case "result":
			result = new(jobJSON)
			if err := json.Unmarshal([]byte(f.data), result); err != nil {
				t.Fatalf("result frame: %v", err)
			}
		}
	}
	if flights == 0 {
		t.Errorf("no journal replay for a finished job")
	}
	if result == nil || result.Status != "done" {
		t.Errorf("result frame missing or not done: %+v", result)
	}
	if frames[len(frames)-1].event != "bye" {
		t.Errorf("stream ended with %q, want bye", frames[len(frames)-1].event)
	}
}

// TestSigtermDrain runs the real daemon lifecycle: Run on a live
// listener, a job in flight, SIGTERM mid-solve. The daemon must stop
// admitting, let the job finish (its SSE subscriber sees the terminal
// result), and Run must return cleanly.
func TestSigtermDrain(t *testing.T) {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	cfg := testConfig()
	addrCh := make(chan net.Addr, 1)
	runErr := make(chan error, 1)
	go func() {
		runErr <- Run(ctx, cfg, func(a net.Addr) { addrCh <- a })
	}()
	var base string
	select {
	case a := <-addrCh:
		base = "http://" + a.String()
	case err := <-runErr:
		t.Fatalf("Run exited before listening: %v", err)
	}
	if err := waitHealthy(base, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	j, code := postDesign(t, base+"/v1/design?async=1", traceBody(t, slowTrace(5)))
	if code != http.StatusAccepted {
		t.Fatalf("async POST: status %d", code)
	}
	// Subscribe before the signal: the stream must survive the drain
	// long enough to deliver the job's terminal frames.
	stream, err := http.Get(base + j.EventsURL)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer stream.Body.Close()
	pollJob(t, base, j.Job, func(s *jobJSON) bool { return s.Status != "queued" })

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}

	frames, err := readSSE(bufio.NewReader(stream.Body))
	if err != nil {
		t.Fatalf("SSE through drain: %v (%d frames)", err, len(frames))
	}
	var result *jobJSON
	for _, f := range frames {
		if f.event == "result" {
			result = new(jobJSON)
			if err := json.Unmarshal([]byte(f.data), result); err != nil {
				t.Fatalf("result frame: %v", err)
			}
		}
	}
	if result == nil {
		t.Fatal("drained job delivered no terminal result frame")
	}
	if result.Status != "done" {
		t.Errorf("drained job status %q, want done (graceful drain finishes in-flight work)", result.Status)
	}

	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("Run returned %v after drain, want nil", err)
		}
	case <-time.After(cfg.DrainTimeout + 10*time.Second):
		t.Fatal("Run did not return after SIGTERM")
	}

	// The listener is down: new connections must fail.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}

// TestDrainRejectsNewWork pins the admission side of the drain: once
// draining, POST answers 503 and /healthz flips unhealthy, while
// status polling for existing jobs keeps working.
func TestDrainRejectsNewWork(t *testing.T) {
	s, hs := newTestServer(t, testConfig())
	j, code := postDesign(t, hs.URL+"/v1/design", traceBody(t, slowTrace(6)))
	if code != http.StatusOK {
		t.Fatalf("POST: status %d", code)
	}

	dctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	s.Drain(dctx)
	cancel()

	if _, code := postDesign(t, hs.URL+"/v1/design", traceBody(t, slowTrace(7))); code != http.StatusServiceUnavailable {
		t.Errorf("POST while draining: status %d, want 503", code)
	}
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: %d, want 503", resp.StatusCode)
	}
	got := pollJob(t, hs.URL, j.Job, func(x *jobJSON) bool { return x.Status == "done" })
	if got.Design == nil {
		t.Error("finished job lost its design during drain")
	}
}

// TestAsyncLocationHeader pins the 202 contract.
func TestAsyncLocationHeader(t *testing.T) {
	_, hs := newTestServer(t, testConfig())
	resp, err := http.Post(hs.URL+"/v1/design?async=1", "application/json",
		strings.NewReader(`{"app":"mat1"}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	if !strings.HasPrefix(loc, "/v1/jobs/") {
		t.Fatalf("Location %q", loc)
	}
	var j jobJSON
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if fmt.Sprintf("/v1/jobs/%s", j.Job) != loc {
		t.Errorf("Location %q does not match job id %q", loc, j.Job)
	}
	pollJob(t, hs.URL, j.Job, func(x *jobJSON) bool { return x.Status == "done" || x.Status == "failed" })
}

// TestStreamingIngest pins the out-of-core ingest path: with a tiny
// spool threshold every binary body is spooled to disk and analyzed
// through the mmap-backed sharded driver, the design round-trips, the
// spool file is cleaned up, and — because the cache keys on the
// analysis fingerprint, not the container bytes — a v2 re-encode of
// the same trace is an exact cache hit.
func TestStreamingIngest(t *testing.T) {
	spoolDir := t.TempDir()
	cfg := testConfig()
	cfg.SpoolThreshold = 64 // force spooling for any real trace body
	cfg.SpoolDir = spoolDir
	cfg.Shards = 3
	_, hs := newTestServer(t, cfg)

	tr := benchprobs.TraceN(16)
	// The out-of-core driver needs start-ordered bytes; keep the
	// original (unsorted) trace around to exercise the in-memory
	// fallback below.
	sorted := &trace.Trace{
		NumReceivers: tr.NumReceivers,
		NumSenders:   tr.NumSenders,
		Horizon:      tr.Horizon,
		Events:       append([]trace.Event(nil), tr.Events...),
	}
	sort.SliceStable(sorted.Events, func(i, j int) bool {
		return sorted.Events[i].Start < sorted.Events[j].Start
	})
	url := hs.URL + "/v1/design?window=500"

	j, status := postDesign(t, url, traceBody(t, sorted))
	if status != http.StatusOK || j.Status != "done" {
		t.Fatalf("spooled v1 design: status %d job %q err %q", status, j.Status, j.Error)
	}
	if j.Design == nil || j.Design.NumBuses <= 0 {
		t.Fatalf("spooled v1 design: no design in %+v", j)
	}
	if j.Cached != "" {
		t.Fatalf("first solve reported cached=%q", j.Cached)
	}

	// Same logical trace, v2 container: must hit the cache exactly.
	var v2 bytes.Buffer
	if err := trace.WriteBinaryV2(&v2, tr); err != nil {
		t.Fatal(err)
	}
	j2, status := postDesign(t, url, v2.Bytes())
	if status != http.StatusOK || j2.Status != "done" {
		t.Fatalf("spooled v2 design: status %d job %q err %q", status, j2.Status, j2.Error)
	}
	if j2.Cached != "memory" {
		t.Fatalf("v2 re-encode: cached=%q, want \"memory\" (fingerprint must be container-independent)", j2.Cached)
	}
	if !designEqual(j.Design, j2.Design) {
		t.Fatalf("cached design differs: %+v vs %+v", j.Design, j2.Design)
	}

	// An unsorted v1 body cannot be analyzed out-of-core; the server
	// falls back to in-memory decode — and since the fingerprint depends
	// only on the analysis, this too is an exact cache hit.
	j3, status := postDesign(t, url, traceBody(t, tr))
	if status != http.StatusOK || j3.Status != "done" {
		t.Fatalf("unsorted v1 fallback: status %d job %q err %q", status, j3.Status, j3.Error)
	}
	if j3.Cached != "memory" {
		t.Fatalf("unsorted v1 fallback: cached=%q, want \"memory\"", j3.Cached)
	}

	// Spool files are removed once their jobs finish (the cleanup is
	// deferred past the response, hence the poll).
	deadline := time.Now().Add(5 * time.Second)
	for {
		ents, err := os.ReadDir(spoolDir)
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d spool files remain after jobs finished", len(ents))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// A corrupt oversized body fails fast on the header without leaving
	// a spool file behind.
	junk := append([]byte("NOPE"), make([]byte, 256)...)
	_, status = postDesign(t, url, junk)
	if status != http.StatusBadRequest {
		t.Fatalf("corrupt body: status %d, want 400", status)
	}
	if ents, _ := os.ReadDir(spoolDir); len(ents) != 0 {
		t.Fatalf("corrupt body left %d spool files", len(ents))
	}
}

// designEqual compares the wire forms of two designs structurally.
func designEqual(a, b *designJSON) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.NumBuses != b.NumBuses || len(a.BusOf) != len(b.BusOf) {
		return false
	}
	for i := range a.BusOf {
		if a.BusOf[i] != b.BusOf[i] {
			return false
		}
	}
	return true
}

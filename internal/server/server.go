// Package server implements the design-as-a-service HTTP daemon behind
// cmd/stbusd: POST a traffic trace (or a named benchmark application)
// to /v1/design and get the designed crossbar back as JSON, with every
// job running through the stbusgen Designer facade so the shared
// content-addressed cache, the independent audit and the flight
// recorder all apply per request.
//
// The service is built for sustained concurrent load:
//
//   - a bounded job queue with admission control — a full queue answers
//     429 with Retry-After instead of buffering without bound;
//   - a fixed worker pool sized independently of the HTTP layer, so a
//     burst of requests queues instead of spawning unbounded solves;
//   - per-request timeouts and node budgets mapped onto the engine's
//     context plumbing;
//   - per-job telemetry: each job carries its own obs.FlightRecorder
//     and obs.Bus (never the process-global ones), streamed live over
//     /v1/jobs/{id}/events as SSE and summarized in the job status;
//   - graceful drain: on shutdown the server stops admitting (503),
//     lets in-flight jobs finish within a deadline, cancels stragglers,
//     and only then closes the listener (see Run).
//
// Zero dependencies beyond the standard library, like the rest of the
// repository.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	stbusgen "repro"
	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Service traffic instruments (see internal/obs), process-global like
// every other subsystem's: admissions, 429/503 rejections, jobs
// finished by outcome, and the end-to-end job latency distribution.
var (
	metAdmitted  = obs.NewCounter("server.admitted")
	metRejected  = obs.NewCounter("server.rejected_full")
	metDraining  = obs.NewCounter("server.rejected_draining")
	metJobsOK    = obs.NewCounter("server.jobs_done")
	metJobsFail  = obs.NewCounter("server.jobs_failed")
	metJobNS     = obs.NewHistogram("server.job_ns")
	metQueueWait = obs.NewHistogram("server.queue_wait_ns")
)

// Config tunes a Server. The zero value is usable: every field has a
// production-sane default.
type Config struct {
	// Addr is the listen address of Run ("host:port"; ":0" picks a free
	// port). Defaults to ":8377".
	Addr string
	// Concurrency is the worker-pool size — the number of design jobs
	// solved simultaneously. 0 means GOMAXPROCS. Each job may itself
	// parallelize across Workers cores, so the useful product
	// Concurrency×Workers is about the machine size.
	Concurrency int
	// QueueDepth bounds the jobs admitted but not yet running. A full
	// queue rejects new work with 429 + Retry-After. 0 means 64.
	QueueDepth int
	// DefaultTimeout applies to jobs whose request names none;
	// MaxTimeout clamps what a request may ask for. Defaults: 60s / 10m.
	DefaultTimeout, MaxTimeout time.Duration
	// MaxNodes caps the per-job solver node budget (requests may lower
	// it, never raise it). 0 leaves the engine default.
	MaxNodes int64
	// MaxBody bounds a request body. 0 means 64 MiB.
	MaxBody int64
	// SpoolThreshold routes binary trace bodies larger than this
	// through the out-of-core path: the body is spooled to a temp file
	// and analyzed via the mmap-backed sharded driver instead of being
	// decoded into an in-memory event slice — a 100M-event POST costs
	// the analysis tables, not gigabytes, per in-flight job. 0 means
	// 8 MiB; negative disables spooling (always decode in memory).
	SpoolThreshold int64
	// SpoolDir holds the spooled bodies. "" means os.TempDir().
	SpoolDir string
	// Shards is the trace-analysis shard count for spooled jobs
	// (trace.AnalyzeFileSharded); 0 means one shard per CPU core. The
	// analysis is bit-identical at any setting.
	Shards int
	// JobHistory bounds how many finished jobs stay pollable before the
	// oldest are forgotten. 0 means 512.
	JobHistory int
	// FlightCapacity is the per-job flight-recorder ring size.
	// 0 means 4096 events.
	FlightCapacity int
	// Workers is the per-job solver parallelism (core.Options.Workers);
	// 0 means GOMAXPROCS.
	Workers int
	// Cache is the shared design cache every job runs through — the
	// daemon's headline win: a repeated identical request is served in
	// microseconds, a near-identical one warm-starts. Nil builds one
	// from CacheConfig.
	Cache core.Cache
	// CacheConfig configures the built cache when Cache is nil.
	CacheConfig cache.Config
	// DrainTimeout bounds the graceful drain: how long Run waits for
	// in-flight jobs after shutdown begins before canceling them.
	// 0 means 15s.
	DrainTimeout time.Duration
	// Logf receives one line per request and lifecycle event. Nil
	// disables logging.
	Logf func(format string, args ...any)
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.Addr == "" {
		out.Addr = ":8377"
	}
	if out.Concurrency <= 0 {
		out.Concurrency = runtime.GOMAXPROCS(0)
	}
	if out.QueueDepth <= 0 {
		out.QueueDepth = 64
	}
	if out.DefaultTimeout <= 0 {
		out.DefaultTimeout = 60 * time.Second
	}
	if out.MaxTimeout <= 0 {
		out.MaxTimeout = 10 * time.Minute
	}
	if out.MaxBody <= 0 {
		out.MaxBody = 64 << 20
	}
	if out.SpoolThreshold == 0 {
		out.SpoolThreshold = 8 << 20
	}
	if out.SpoolDir == "" {
		out.SpoolDir = os.TempDir()
	}
	if out.JobHistory <= 0 {
		out.JobHistory = 512
	}
	if out.FlightCapacity <= 0 {
		out.FlightCapacity = 4096
	}
	if out.DrainTimeout <= 0 {
		out.DrainTimeout = 15 * time.Second
	}
	if out.Cache == nil {
		out.Cache = cache.New(out.CacheConfig)
	}
	return out
}

// Server is the design service: an http.Handler plus the job queue and
// worker pool behind it. Construct with New, serve via Handler (or the
// Run lifecycle helper), stop with Drain then Close.
type Server struct {
	cfg   Config
	cache core.Cache
	mux   *http.ServeMux

	// baseCtx parents every job context; baseCancel fires only when the
	// drain deadline expires (or Close is called), canceling stragglers.
	baseCtx    context.Context
	baseCancel context.CancelCauseFunc

	queue    chan *job
	workerWG sync.WaitGroup // worker goroutines
	inflight sync.WaitGroup // admitted jobs not yet terminal
	draining atomic.Bool
	closed   atomic.Bool

	seq   atomic.Int64
	jobMu sync.Mutex
	jobs  map[string]*job
	order []string // admission order, for history eviction

	// testHookJobRunning, when set, runs at job start on the worker
	// goroutine — tests use it to hold a worker busy deterministically.
	testHookJobRunning func(*job)
}

// New builds a Server and starts its worker pool. The context supplies
// ambient values — notably a daemon-wide obs.FlightRecorder attached by
// the shared -flight-out flag — but not cancellation: jobs must outlive
// the signal context during a graceful drain, so only Drain's deadline
// (or Close) cancels them.
func New(ctx context.Context, cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancelCause(context.WithoutCancel(ctx))
	s := &Server{
		cfg:        cfg,
		cache:      cfg.Cache,
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *job, cfg.QueueDepth),
		jobs:       make(map[string]*job),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/design", s.handleDesign)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	for i := 0; i < cfg.Concurrency; i++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the service's HTTP handler with the standard
// middleware (panic recovery, request logging) applied.
func (s *Server) Handler() http.Handler {
	return withRecovery(s.cfg.Logf, withLogging(s.cfg.Logf, s.mux))
}

// logf logs one line when a logger is configured.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// worker drains the job queue until Close. Jobs admitted before a
// drain finish normally; once the drain deadline cancels baseCtx the
// remaining ones fail fast with a canceled error.
func (s *Server) worker() {
	defer s.workerWG.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job through the Designer facade under the job's
// own telemetry and deadline.
func (s *Server) runJob(j *job) {
	defer s.inflight.Done()
	defer j.req.cleanup()
	now := time.Now()
	j.setRunning(now)
	metQueueWait.Observe(now.Sub(j.created).Nanoseconds())
	if s.testHookJobRunning != nil {
		s.testHookJobRunning(j)
	}

	ctx := obs.WithFlightRecorder(s.baseCtx, j.rec)
	ctx, cancel := context.WithTimeout(ctx, j.req.timeout)
	defer cancel()

	designer := stbusgen.NewDesigner(j.req.opts)
	var (
		design *core.Design
		result *stbusgen.Result
		err    error
	)
	switch {
	case j.req.spool != "":
		// Spooled large trace: out-of-core sharded analysis over the
		// mmap'd file, then phase 3 from the analysis. The cache keys
		// on the analysis fingerprint, so hits are shared with the
		// in-memory path regardless of container format.
		var a *trace.Analysis
		a, err = trace.AnalyzeFileSharded(ctx, j.req.spool, j.req.window, s.cfg.Shards, nil)
		switch {
		case err == nil:
			design, err = designer.DesignAnalysis(ctx, a)
		case errors.Is(err, trace.ErrUnsorted):
			// Unsorted v1 uploads cannot be analyzed out-of-core
			// (sorting would materialize the events anyway), so decode
			// and take the in-memory path; MaxBody bounds the cost.
			var tr *trace.Trace
			if tr, err = readSpooledTrace(j.req.spool); err == nil {
				design, err = designer.DesignTrace(ctx, tr, j.req.window)
			}
		}
	case j.req.tr != nil:
		design, err = designer.DesignTrace(ctx, j.req.tr, j.req.window)
	default:
		result, err = designer.Design(ctx, j.req.app)
	}
	end := time.Now()
	j.finish(end, design, result, err)
	metJobNS.Observe(end.Sub(now).Nanoseconds())
	if err != nil {
		metJobsFail.Inc()
		s.logf("job %s failed after %s: %v", j.id, end.Sub(now), err)
	} else {
		metJobsOK.Inc()
		s.logf("job %s done in %s", j.id, end.Sub(now))
	}

	// Terminal SSE frames: the final status, then the stream end. A bus
	// with no subscribers drops these for free.
	if data, e := json.Marshal(j.wire()); e == nil {
		j.bus.Publish("result", data)
	}
	j.bus.Close()
	s.forwardToGlobal(j)
}

// readSpooledTrace decodes a spooled body in memory — the fallback for
// unsorted v1 uploads, which the out-of-core driver cannot analyze.
func readSpooledTrace(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.ReadBinary(f)
}

// forwardToGlobal copies the job's flight events into the daemon-wide
// recorder when one is attached (the shared -flight-out flag), so a
// single recording journals the whole service while per-job streams
// stay isolated. Events are re-emitted, acquiring daemon-global
// sequence numbers.
func (s *Server) forwardToGlobal(j *job) {
	global := obs.FlightRecorderFrom(s.baseCtx)
	if global == nil {
		return
	}
	for _, e := range j.rec.Events() {
		e.Seq, e.T = 0, 0
		global.Emit(e)
	}
}

// admit registers and enqueues a job, enforcing admission control.
func (s *Server) admit(req *designRequest) (*job, error) {
	if s.draining.Load() {
		metDraining.Inc()
		return nil, &httpError{status: http.StatusServiceUnavailable, msg: "server is draining"}
	}
	j := &job{
		id:      fmt.Sprintf("j-%06d", s.seq.Add(1)),
		req:     req,
		rec:     obs.NewFlightRecorder(s.cfg.FlightCapacity),
		bus:     obs.NewBus(),
		done:    make(chan struct{}),
		created: time.Now(),
	}
	j.rec.AttachBus(j.bus)

	s.jobMu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictHistoryLocked()
	s.jobMu.Unlock()

	s.inflight.Add(1)
	select {
	case s.queue <- j:
		metAdmitted.Inc()
		return j, nil
	default:
		s.inflight.Done()
		s.jobMu.Lock()
		delete(s.jobs, j.id)
		if n := len(s.order); n > 0 && s.order[n-1] == j.id {
			s.order = s.order[:n-1]
		}
		s.jobMu.Unlock()
		metRejected.Inc()
		return nil, &httpError{status: http.StatusTooManyRequests,
			msg: fmt.Sprintf("job queue full (%d queued, %d running); retry shortly", s.cfg.QueueDepth, s.cfg.Concurrency)}
	}
}

// evictHistoryLocked forgets the oldest *finished* jobs beyond the
// history bound. Queued and running jobs are never evicted — their
// clients still hold the id. Caller holds s.jobMu.
func (s *Server) evictHistoryLocked() {
	limit := s.cfg.JobHistory + s.cfg.QueueDepth + s.cfg.Concurrency
	for len(s.order) > limit {
		evicted := false
		for i, id := range s.order {
			if j, ok := s.jobs[id]; ok && j.terminal() {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything retained is still live
		}
	}
}

// lookup returns a registered job.
func (s *Server) lookup(id string) (*job, bool) {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Drain performs the graceful half of shutdown: stop admitting, then
// wait for every admitted job to reach a terminal state — up to ctx's
// deadline, past which the remaining jobs are canceled (they fail
// promptly with a canceled error and their clients get the terminal
// status). Safe to call once; Close must follow.
func (s *Server) Drain(ctx context.Context) {
	s.draining.Store(true)
	s.logf("draining: admission stopped, waiting for in-flight jobs")
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.logf("drain complete: all jobs finished")
		return
	case <-ctx.Done():
	}
	s.baseCancel(fmt.Errorf("server drain deadline: %w", context.Cause(ctx)))
	s.logf("drain deadline passed: canceling remaining jobs")
	<-done
	s.logf("drain complete: stragglers canceled")
}

// Close stops the worker pool. Jobs still queued are canceled via the
// base context (Drain normally empties the queue first).
func (s *Server) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.draining.Store(true)
	s.baseCancel(errors.New("server closed"))
	close(s.queue)
	s.workerWG.Wait()
}

// --- handlers ---

func (s *Server) handleDesign(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeDesignRequest(r)
	if err != nil {
		he := asHTTPError(err)
		writeError(w, he.status, "bad_request", "%s", he.msg)
		return
	}
	j, err := s.admit(req)
	if err != nil {
		req.cleanup()
		he := asHTTPError(err)
		if he.status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		reason := "unavailable"
		if he.status == http.StatusTooManyRequests {
			reason = "queue_full"
		}
		writeError(w, he.status, reason, "%s", he.msg)
		return
	}

	if req.async {
		w.Header().Set("Location", "/v1/jobs/"+j.id)
		writeJSON(w, http.StatusAccepted, j.wire())
		return
	}
	select {
	case <-j.done:
	case <-r.Context().Done():
		// The client went away; the job keeps running (its result stays
		// pollable and cacheable) but this response is dead.
		return
	}
	status := http.StatusOK
	j.mu.Lock()
	jerr := j.err
	j.mu.Unlock()
	if jerr != nil {
		_, status = failureReason(jerr)
	}
	writeJSON(w, status, j.wire())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.wire())
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.jobMu.Lock()
	known := len(s.jobs)
	s.jobMu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"queue_depth": s.cfg.QueueDepth,
		"queued":      len(s.queue),
		"concurrency": s.cfg.Concurrency,
		"jobs_known":  known,
		"draining":    s.draining.Load(),
	})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// asHTTPError coerces any decode/admission error into an httpError.
func asHTTPError(err error) *httpError {
	var he *httpError
	if errors.As(err, &he) {
		return he
	}
	return &httpError{status: http.StatusInternalServerError, msg: err.Error()}
}

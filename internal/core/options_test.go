package core

import (
	"math"
	"testing"

	"repro/internal/trace"
)

// TestOptionsValidate exercises every rejection branch of the single
// option validator the facade entry points share.
func TestOptionsValidate(t *testing.T) {
	base := DefaultOptions()
	if err := base.Validate(); err != nil {
		t.Fatalf("default options rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Options)
	}{
		{"nan threshold", func(o *Options) { o.OverlapThreshold = math.NaN() }},
		{"threshold above one", func(o *Options) { o.OverlapThreshold = 1.5 }},
		{"negative max per bus", func(o *Options) { o.MaxPerBus = -1 }},
		{"negative min buses", func(o *Options) { o.MinBuses = -2 }},
		{"negative max buses", func(o *Options) { o.MaxBuses = -1 }},
		{"min above max buses", func(o *Options) { o.MinBuses = 5; o.MaxBuses = 3 }},
		{"negative node budget", func(o *Options) { o.MaxNodes = -7 }},
		{"negative workers", func(o *Options) { o.Workers = -1 }},
		{"unknown engine", func(o *Options) { o.Engine = Engine(99) }},
	}
	for _, tc := range cases {
		opts := base
		tc.mutate(&opts)
		if err := opts.Validate(); err == nil {
			t.Errorf("%s: accepted %+v", tc.name, opts)
		}
	}

	// The permissive zero values stay valid: disabled threshold,
	// unbounded buses, default budgets.
	loose := Options{OverlapThreshold: -1}
	if err := loose.Validate(); err != nil {
		t.Errorf("permissive options rejected: %v", err)
	}
}

// TestDesignRejectsInvalidOptions pins that the design entry point
// runs the validator rather than a partial ad-hoc check.
func TestDesignRejectsInvalidOptions(t *testing.T) {
	a := mkAnalysis(t, 2, 100, 100, []trace.Event{
		{Start: 0, Len: 10, Receiver: 0},
		{Start: 5, Len: 10, Receiver: 1},
	})
	for _, opts := range []Options{
		{OverlapThreshold: math.NaN()},
		{OverlapThreshold: -1, MaxPerBus: -1},
		{OverlapThreshold: -1, Engine: Engine(42)},
	} {
		if _, err := DesignCrossbar(a, opts); err == nil {
			t.Errorf("design accepted invalid options %+v", opts)
		}
	}
}

package core

import (
	"crypto/sha256"
	"encoding/binary"
	"math"

	"repro/internal/trace"
)

// optionsFPTag versions the option-fingerprint encoding; bump on any
// layout or canonicalization change.
const optionsFPTag = "stbus.options.v1"

// Fingerprint returns a stable content hash of the option fields that
// determine the designed crossbar, canonicalized so equivalent settings
// hash equal:
//
//   - any negative OverlapThreshold disables pre-processing, so all
//     negatives collapse to -1;
//   - MaxPerBus <= 0 means "no cap" and collapses to 0 (the solve-time
//     clamp to the receiver count depends on the analysis, not the
//     options, and the analysis fingerprint covers the receiver count);
//   - MILPLegacy is documented to affect EngineMILP only, so it is
//     normalized to false under the other engines.
//
// Fields that provably do not change the designed crossbar are
// excluded: Workers (the speculative search is deterministic across
// worker counts), Audit (a post-hoc check), Cache (where to look for
// the answer, not what the answer is), and MaxNodes — an effort budget,
// sound to exclude because the cache never stores Capped or failed
// designs, and an un-capped design is budget-independent.
func (o Options) Fingerprint() trace.Fingerprint {
	h := sha256.New()
	buf := make([]byte, 0, 128)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(optionsFPTag)))
	buf = append(buf, optionsFPTag...)

	threshold := o.OverlapThreshold
	if threshold < 0 {
		threshold = -1
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(threshold))
	buf = append(buf, b2u8(o.SeparateCritical))
	maxPerBus := o.MaxPerBus
	if maxPerBus <= 0 {
		maxPerBus = 0
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(maxPerBus))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(o.MinBuses))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(o.MaxBuses))
	buf = append(buf, b2u8(o.OptimizeBinding))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(o.Engine))
	legacy := o.MILPLegacy && o.Engine == EngineMILP
	buf = append(buf, b2u8(legacy))

	h.Write(buf)
	var f trace.Fingerprint
	h.Sum(f[:0])
	return f
}

func b2u8(b bool) byte {
	if b {
		return 1
	}
	return 0
}

package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/trace"
)

// stubCache is a scriptable core.Cache for exercising the warm design
// path without importing the real implementation (internal/cache sits
// above this package).
type stubCache struct {
	hit     *Design
	warm    *Incumbent
	stored  []*Design
	lookups int
	warms   int
}

func (s *stubCache) Lookup(_ context.Context, a *trace.Analysis, opts Options) (*Design, bool) {
	s.lookups++
	if s.hit == nil {
		return nil, false
	}
	return s.hit, true
}

func (s *stubCache) Warm(_ context.Context, a *trace.Analysis, opts Options) *Incumbent {
	s.warms++
	return s.warm
}

func (s *stubCache) Store(_ context.Context, a *trace.Analysis, opts Options, d *Design) {
	s.stored = append(s.stored, d)
}

// sameCrossbar compares the designed artifact — everything except
// SearchNodes, which accounts solver effort, not the answer.
func sameCrossbar(a, b *Design) bool {
	return a.NumBuses == b.NumBuses &&
		reflect.DeepEqual(a.BusOf, b.BusOf) &&
		a.MaxBusOverlap == b.MaxBusOverlap &&
		a.Conflicts == b.Conflicts &&
		a.Engine == b.Engine &&
		a.Capped == b.Capped
}

// TestCacheExactHitSkipsSolve: a Lookup hit is returned as-is with no
// solver work and no re-store.
func TestCacheExactHitSkipsSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := randomAnalysis(t, rng, 5)
	canned := &Design{NumBuses: 3, BusOf: []int{0, 1, 2, 0, 1}, MaxBusOverlap: 7}
	cache := &stubCache{hit: canned}
	opts := DefaultOptions()
	opts.Cache = cache
	d, err := DesignCrossbar(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if d != canned {
		t.Errorf("hit not returned verbatim: %+v", d)
	}
	if cache.lookups != 1 || cache.warms != 0 || len(cache.stored) != 0 {
		t.Errorf("lookups=%d warms=%d stores=%d, want 1/0/0", cache.lookups, cache.warms, len(cache.stored))
	}
}

// TestCacheStoresSolvedDesigns: a miss solves cold and offers the
// finished design; an infeasible run offers nothing.
func TestCacheStoresSolvedDesigns(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randomAnalysis(t, rng, 5)
	cache := &stubCache{}
	opts := DefaultOptions()
	opts.Cache = cache
	d, err := DesignCrossbar(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(cache.stored) != 1 || !sameCrossbar(cache.stored[0], d) {
		t.Fatalf("stored %d designs, want the returned one", len(cache.stored))
	}

	// Force infeasibility: everything conflicts, one bus allowed.
	cache = &stubCache{}
	opts = Options{OverlapThreshold: 0, MaxBuses: 1, Cache: cache}
	if _, err := DesignCrossbar(a, opts); err == nil {
		t.Skip("case unexpectedly feasible")
	}
	if len(cache.stored) != 0 {
		t.Errorf("infeasible run stored %d designs", len(cache.stored))
	}
}

// TestCacheWarmEquivalence is the bit-identity property of the warm
// path: across random problems, engines and binding modes, a design
// produced with any warm incumbent — the problem's own cold binding, a
// nearby problem's binding, or outright garbage — must equal the cold
// design exactly. The incumbent may only change how fast the answer
// arrives.
func TestCacheWarmEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	engines := []Engine{EngineBranchBound, EngineMILP, EngineAnneal}
	for iter := 0; iter < 60; iter++ {
		nRecv := 3 + rng.Intn(4)
		a := randomAnalysis(t, rng, nRecv)
		opts := Options{
			OverlapThreshold: []float64{-1, 0.3, 0.5}[rng.Intn(3)],
			SeparateCritical: rng.Intn(2) == 0,
			MaxPerBus:        rng.Intn(4),
			OptimizeBinding:  rng.Intn(3) != 0,
			Engine:           engines[iter%len(engines)],
			Workers:          1 + rng.Intn(3),
		}
		cold, coldErr := DesignCrossbar(a, opts)

		incumbents := []*Incumbent{
			nil,
			{NumBuses: nRecv, BusOf: make([]int, nRecv)}, // all on bus 0 of nRecv — usually invalid
			{NumBuses: 2, BusOf: []int{0}},               // wrong length
		}
		if coldErr == nil {
			incumbents = append(incumbents,
				&Incumbent{NumBuses: cold.NumBuses, BusOf: append([]int(nil), cold.BusOf...)},
				&Incumbent{NumBuses: cold.NumBuses + 1, BusOf: append([]int(nil), cold.BusOf...)},
			)
		}
		// A garbage random incumbent too.
		gb := make([]int, nRecv)
		for i := range gb {
			gb[i] = rng.Intn(nRecv) - 1
		}
		incumbents = append(incumbents, &Incumbent{NumBuses: nRecv - 1, BusOf: gb})

		for wi, warm := range incumbents {
			wopts := opts
			wopts.Cache = &stubCache{warm: warm}
			got, err := DesignCrossbar(a, wopts)
			if (err == nil) != (coldErr == nil) {
				t.Fatalf("iter %d warm %d: err=%v, cold err=%v", iter, wi, err, coldErr)
			}
			if coldErr != nil {
				continue
			}
			if !sameCrossbar(got, cold) {
				t.Fatalf("iter %d warm %d (engine %v, optimize %v): warm design %+v, cold %+v",
					iter, wi, opts.Engine, opts.OptimizeBinding, got, cold)
			}
		}
	}
}

// TestCacheWarmFromPerturbedProblem is the delta-solve scenario: the
// incumbent comes from a design of a nearby (perturbed) problem, and
// the warm result must still be exactly the cold design of the new
// problem.
func TestCacheWarmFromPerturbedProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(177))
	for iter := 0; iter < 40; iter++ {
		nRecv := 4 + rng.Intn(3)
		horizon := int64(400)
		var events []trace.Event
		for r := 0; r < nRecv; r++ {
			n := 1 + rng.Intn(5)
			for e := 0; e < n; e++ {
				events = append(events, trace.Event{
					Start:    int64(rng.Intn(350)),
					Len:      1 + int64(rng.Intn(49)),
					Receiver: r,
					Critical: rng.Intn(8) == 0,
				})
			}
		}
		base := mkAnalysis(t, nRecv, horizon, 100, events)
		// Perturb a few event lengths and re-analyze.
		perturbed := append([]trace.Event(nil), events...)
		for k := 0; k < 1+len(events)/10; k++ {
			i := rng.Intn(len(perturbed))
			perturbed[i].Len = 1 + (perturbed[i].Len+int64(rng.Intn(5)))%49
		}
		next := mkAnalysis(t, nRecv, horizon, 100, perturbed)

		opts := DefaultOptions()
		opts.Engine = []Engine{EngineBranchBound, EngineMILP}[iter%2]
		opts.Workers = 1

		prior, err := DesignCrossbar(base, opts)
		if err != nil {
			continue // conflicted base problem; nothing to warm from
		}
		cold, coldErr := DesignCrossbar(next, opts)

		wopts := opts
		wopts.Cache = &stubCache{warm: &Incumbent{NumBuses: prior.NumBuses, BusOf: prior.BusOf}}
		got, err := DesignCrossbar(next, wopts)
		if (err == nil) != (coldErr == nil) {
			t.Fatalf("iter %d: warm err=%v, cold err=%v", iter, err, coldErr)
		}
		if coldErr != nil {
			continue
		}
		if !sameCrossbar(got, cold) {
			t.Fatalf("iter %d (engine %v): delta design %+v, cold %+v", iter, opts.Engine, got, cold)
		}
	}
}

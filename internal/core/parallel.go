package core

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// This file parallelizes the branch and bound of assign.go: the DFS is
// split at a frontier depth into independent subtrees, explored on
// worker goroutines that pull subtree indices from a shared counter
// (idle workers steal whatever subtree is next, so uneven subtrees
// balance automatically). The design goal — enforced by the golden
// pins and the parallel determinism tests — is that the result is
// BIT-IDENTICAL to the sequential solve at any worker count. The
// protocol that makes that hold:
//
//   - The frontier is enumerated once, serially, in exact DFS order; a
//     subtree's index is its rank in that order.
//   - In optimize mode each subtree is searched with its own local
//     incumbent starting at the sequential initial bound B0 (the greedy
//     objective, tightened by an external seed to seedObj+1), plus a
//     shared bound holding the best objective of a binding some worker
//     (or the portfolio's annealing feeder) has actually realized.
//     Local pruning is `newOv >= local`, exactly as sequential; shared
//     pruning is strictly `newOv > shared`. The shared bound only ever
//     holds objectives of real bindings, so it is always >= the true
//     optimum opt; hence no prefix of the sequential answer — the first
//     DFS-order optimal leaf, all of whose prefix overlaps are <= opt —
//     is ever pruned by it. Within that leaf's subtree the local
//     incumbent cannot reach opt before the leaf (that would take an
//     earlier optimal leaf in the same subtree, contradicting
//     firstness), so that subtree always records exactly the sequential
//     binding. No subtree with a lower index contains any optimal leaf
//     (sequentially they were exhausted or bound-pruned strictly above
//     opt), so the reduction — minimum objective, lowest subtree index
//     winning ties — returns the sequential binding regardless of
//     scheduling or of when shared bounds arrive.
//   - In feasibility mode there is no objective pruning, so subtree
//     searches are fully independent: each halts at its first DFS-order
//     witness and the reduction keeps the lowest-index witness, which
//     is by construction the subtree of the sequential first-found
//     leaf. Workers abandon subtrees outranked by an already-published
//     witness — they cannot win the reduction — the parallel analogue
//     of the sequential early return.
//
// The only nondeterminism left is budget exhaustion and cancellation: a
// capped parallel solve is best-effort, exactly like a capped
// sequential solve (whose incumbent also depends on where the budget
// landed), and is surfaced through assignResult.capped.

// parShared is the state shared by every worker of one parallel solve —
// and, in the portfolio, by the sibling engines feeding it. bound is
// the best objective of a KNOWN-VALID binding; it only ever decreases.
// nodes is the global expanded-node count charged against the problem
// budget. bestFeas is the lowest frontier-subtree index holding a
// feasibility witness (unset = 1<<62).
type parShared struct {
	bound    atomic.Int64
	nodes    atomic.Int64
	bestFeas atomic.Int64
}

func newParShared() *parShared {
	s := &parShared{}
	s.bound.Store(int64(1) << 62)
	s.bestFeas.Store(int64(1) << 62)
	return s
}

// offerBound publishes the objective of a valid binding; the shared
// bound keeps the minimum ever offered (lock-free CAS descent).
func (s *parShared) offerBound(obj int64) {
	for {
		cur := s.bound.Load()
		if obj >= cur {
			return
		}
		if s.bound.CompareAndSwap(cur, obj) {
			return
		}
	}
}

// offerFeas publishes a feasibility witness in subtree idx, keeping the
// lowest index ever offered.
func (s *parShared) offerFeas(idx int) {
	for {
		cur := s.bestFeas.Load()
		if int64(idx) >= cur {
			return
		}
		if s.bestFeas.CompareAndSwap(cur, int64(idx)) {
			return
		}
	}
}

// frontierTarget is how many subtrees solveParallel aims to cut the
// tree into per worker: enough granularity that uneven subtrees
// balance across the pool, few enough that per-subtree replay cost
// stays invisible next to the search itself.
const frontierTarget = 16

// maxFrontier caps the frontier size outright, bounding the serial
// enumeration and the per-subtree bookkeeping.
const maxFrontier = 4096

// place puts target t on bus b (the caller has validated the move) and
// returns the overlap it added plus whether it opened a new bus, for
// the matching unwind. Mirrors the placement block of dfs exactly.
func (st *searchState) place(t, b int) (added int64, newBus bool) {
	p := st.p
	if st.optimize {
		for other, ob := range st.busOf {
			if ob == b {
				added += p.om.At(t, other)
			}
		}
	}
	newBus = b == st.used
	if newBus {
		st.used++
	}
	st.busOf[t] = b
	st.count[b]++
	st.overlap[b] += added
	for w := 0; w < len(p.ws); w++ {
		st.load[b][w] += p.comm[t][w]
		st.total[w] += p.comm[t][w]
	}
	return added, newBus
}

// reset returns the state to the clean root configuration with the
// incumbent bound installed, keeping the shared suffix table and the
// cumulative node counters.
func (st *searchState) reset(bound int64) {
	for t := range st.busOf {
		st.busOf[t] = -1
	}
	for b := range st.load {
		for w := range st.load[b] {
			st.load[b][w] = 0
		}
		st.count[b] = 0
		st.overlap[b] = 0
	}
	for w := range st.total {
		st.total[w] = 0
	}
	st.used = 0
	st.capped = false
	st.aborted = false
	st.best = bound
	st.bestBus = nil
}

// replay applies a frontier prefix (bus choices for p.order[0:depth])
// to a clean state and returns the running binding objective — the
// curMax the sequential dfs would carry at that node.
func (st *searchState) replay(prefix []int) int64 {
	var curMax int64
	for i, b := range prefix {
		st.place(st.p.order[i], b)
		if st.overlap[b] > curMax {
			curMax = st.overlap[b]
		}
	}
	return curMax
}

// expandFrontier enumerates the surviving search-tree prefixes at an
// adaptive depth, in exact DFS order, growing the frontier level by
// level until it holds at least `want` subtrees (or the tree settles
// first). st must be a fresh state carrying the optimize-mode initial
// bound in st.best: expansion applies the same hard-constraint checks
// as dfs plus the static initial bound, so the enumerated prefixes are
// a superset of the prefixes the sequential search visits (sequential
// pruning only ever uses bounds <= the initial one), in the same order.
func (p *assignProblem) expandFrontier(st *searchState, want int) (depth int, level [][]int, nodes int64) {
	bound := st.best
	if want > maxFrontier {
		want = maxFrontier
	}
	level = [][]int{{}}
	nW := len(p.ws)
	for depth < p.nT-1 && len(level) > 0 && len(level) < want {
		next := make([][]int, 0, 2*len(level))
		for _, prefix := range level {
			nodes++
			st.reset(bound)
			st.replay(prefix)
			// Global capacity prune, as at every dfs node entry.
			ok := true
			for w := 0; w < nW; w++ {
				if st.suffix[depth][w] > int64(st.nB)*p.ws[w]-st.total[w] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			t := p.order[depth]
			limit := st.used
			if limit >= st.nB {
				limit = st.nB - 1
			}
			for b := 0; b <= limit; b++ {
				if st.count[b] >= p.maxPerBus {
					continue
				}
				okB := true
				for other, ob := range st.busOf {
					if ob == b && p.conflict[t][other] {
						okB = false
						break
					}
				}
				if !okB {
					continue
				}
				for w := 0; w < nW; w++ {
					if st.load[b][w]+p.comm[t][w] > p.ws[w] {
						okB = false
						break
					}
				}
				if !okB {
					continue
				}
				if st.optimize {
					var added int64
					for other, ob := range st.busOf {
						if ob == b {
							added += p.om.At(t, other)
						}
					}
					if st.overlap[b]+added >= bound {
						continue
					}
				}
				child := make([]int, depth+1)
				copy(child, prefix)
				child[depth] = b
				next = append(next, child)
			}
		}
		level = next
		depth++
	}
	return depth, level, nodes
}

// solveAuto dispatches between the sequential and parallel solvers on
// the resolved worker count. workers <= 1 takes the sequential path —
// the bit-identity reference — and ignores feed; >= 2 splits the tree.
func (p *assignProblem) solveAuto(ctx context.Context, nB int, optimize bool, workers int, seedBus []int, seedObj int64, feed *parShared) (*assignResult, error) {
	if workers <= 1 || p.nT < 2 {
		return p.solveSeeded(ctx, nB, optimize, seedBus, seedObj)
	}
	return p.solveParallel(ctx, nB, optimize, workers, seedBus, seedObj, feed)
}

// solveParallel is solveSeeded across `workers` goroutines (callers go
// through solveAuto, which routes workers <= 1 to the sequential path).
// feed, when non-nil, is an externally created shared incumbent — the
// portfolio's annealing feeder publishes valid-binding objectives into
// it while the search runs; nil creates a private one. Results are
// bit-identical to solveSeeded whenever the node budget is not
// exhausted (see the file comment for the argument).
func (p *assignProblem) solveParallel(ctx context.Context, nB int, optimize bool, workers int, seedBus []int, seedObj int64, feed *parShared) (*assignResult, error) {
	if nB <= 0 {
		return &assignResult{}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, canceledErr(ctx)
	}
	shared := feed
	if shared == nil {
		shared = newParShared()
	}

	// Initial incumbent: exactly the sequential one — greedy, tightened
	// by an external seed with the bit-identity-preserving +1 (the
	// shared bound gets the un-bumped seed objective: the seed binding
	// is real, so its objective is a valid shared bound, and the strict
	// shared comparison keeps ties explorable).
	bound := int64(1) << 62
	var boundBus []int
	if optimize {
		if busOf, obj, ok := p.greedyBinding(nB); ok {
			bound = obj
			boundBus = busOf
			shared.offerBound(obj)
			obs.FlightRecorderFrom(ctx).Emit(obs.Event{Kind: obs.EvIncumbent, K: nB, Val: obj, Who: "greedy"})
		}
		if seedBus != nil && seedObj+1 < bound {
			bound = seedObj + 1
			boundBus = append([]int(nil), seedBus...)
			shared.offerBound(seedObj)
		}
	}

	// Serial frontier enumeration in DFS prefix order.
	enumSt := p.newSearchState(ctx, nB, optimize, nil)
	enumSt.best = bound
	suffix := enumSt.suffix
	depth, frontier, enumNodes := p.expandFrontier(enumSt, workers*frontierTarget)
	metNodes.Add(enumNodes)
	shared.nodes.Add(enumNodes)
	if err := ctx.Err(); err != nil {
		return nil, canceledErr(ctx)
	}
	res := &assignResult{}
	if len(frontier) == 0 {
		// The whole tree settled within the frontier depth: infeasible,
		// or (optimize) nothing can beat the initial incumbent.
		res.nodes = shared.nodes.Load()
		if optimize && boundBus != nil {
			res.feasible = true
			res.busOf = boundBus
			res.maxOverlap = bound
		}
		return res, nil
	}

	type subtreeResult struct {
		obj   int64
		busOf []int
	}
	results := make([]subtreeResult, len(frontier))
	var capped atomic.Bool
	var stopMu sync.Mutex
	var stopErr error
	var next atomic.Int64

	nWorkers := workers
	if nWorkers > len(frontier) {
		nWorkers = len(frontier)
	}
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := p.newSearchState(ctx, nB, optimize, suffix)
			st.par = shared
			for {
				i := int(next.Add(1)) - 1
				if i >= len(frontier) {
					break
				}
				if !optimize && shared.bestFeas.Load() < int64(i) {
					continue // cannot outrank the witness already found
				}
				st.reset(bound)
				st.subtree = i
				curMax := st.replay(frontier[i])
				if st.dfs(depth, curMax) {
					results[i] = subtreeResult{busOf: append([]int(nil), st.busOf...)}
					shared.offerFeas(i)
				} else if optimize && st.bestBus != nil {
					results[i] = subtreeResult{obj: st.best, busOf: st.bestBus}
				}
				if st.stopErr != nil {
					stopMu.Lock()
					if stopErr == nil {
						stopErr = st.stopErr
					}
					stopMu.Unlock()
					break
				}
				if st.capped {
					capped.Store(true)
					if shared.nodes.Load() > p.maxNodes {
						break // global budget gone; later subtrees would cap instantly
					}
				}
			}
			metNodes.Add(st.nodes - st.flushed)
			shared.nodes.Add(st.nodes - st.flushed)
			st.flushed = st.nodes
		}()
	}
	wg.Wait()

	if stopErr != nil {
		return nil, stopErr
	}
	res.nodes = shared.nodes.Load()
	res.capped = capped.Load()
	if !optimize {
		if bf := shared.bestFeas.Load(); bf < int64(1)<<62 {
			res.feasible = true
			res.busOf = results[bf].busOf
			res.maxOverlap = MaxOverlapOfMatrix(p.om, nB, res.busOf)
			res.capped = false // a witness in hand, as in the sequential early return
			return res, nil
		}
		if res.capped {
			return nil, ErrSearchLimit // exhausted the budget without settling feasibility
		}
		return res, nil // proven infeasible
	}
	// Optimize reduction: minimum objective, lowest subtree index wins
	// ties (ascending scan with a strict improvement test).
	best, bestBus := bound, boundBus
	for i := range results {
		if results[i].busOf != nil && results[i].obj < best {
			best, bestBus = results[i].obj, results[i].busOf
		}
	}
	if bestBus == nil {
		if res.capped {
			return nil, ErrSearchLimit
		}
		return res, nil // infeasible
	}
	res.feasible = true
	res.busOf = bestBus
	res.maxOverlap = best
	return res, nil
}

package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// countingCtx is a context whose Err flips to context.Canceled after
// `limit` polls. It makes "cancel mid-design" deterministic: the n-th
// cooperative cancellation checkpoint the solver reaches observes the
// cancellation, independent of wall-clock timing. Its Done channel is
// nil, so it only works on code paths that poll Err directly — i.e.
// with Options.Workers == 1, where the search passes the context
// straight through to the solvers.
type countingCtx struct {
	context.Context
	polls atomic.Int64
	limit int64
}

func newCountingCtx(limit int64) *countingCtx {
	return &countingCtx{Context: context.Background(), limit: limit}
}

func (c *countingCtx) Err() error {
	if c.polls.Add(1) > c.limit {
		return context.Canceled
	}
	return nil
}

func TestDesignCtxPreCanceled(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomAnalysis(t, rng, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, eng := range []Engine{EngineBranchBound, EngineMILP, EngineAnneal} {
		opts := Options{OverlapThreshold: 0.4, MaxPerBus: 3, Engine: eng}
		_, err := DesignCrossbarCtx(ctx, a, opts)
		if !errors.Is(err, ErrCanceled) {
			t.Errorf("%s: err = %v, want ErrCanceled", eng, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want to also wrap context.Canceled", eng, err)
		}
	}
}

func TestDesignCtxExpiredDeadline(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomAnalysis(t, rng, 5)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := DesignCrossbarCtx(ctx, a, Options{OverlapThreshold: 0.4, MaxPerBus: 3})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want ErrCanceled wrapping context.DeadlineExceeded", err)
	}
}

// TestDesignCtxCanceledMidSearch cancels at successive cooperative
// checkpoints (search-loop boundary, solver entry, node-boundary poll)
// and checks that every interruption surfaces as a wrapped ErrCanceled
// from both the branch-and-bound and the MILP paths.
func TestDesignCtxCanceledMidSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	a := randomAnalysis(t, rng, 7)
	for _, eng := range []Engine{EngineBranchBound, EngineMILP} {
		opts := Options{
			OverlapThreshold: 0.3,
			MaxPerBus:        3,
			OptimizeBinding:  true,
			Engine:           eng,
			Workers:          1, // serial search: ctx reaches the solver directly
		}
		canceledRuns := 0
		for _, limit := range []int64{1, 2, 3, 5, 8, 13, 1 << 40} {
			ctx := newCountingCtx(limit)
			d, err := DesignCrossbarCtx(ctx, a, opts)
			if err == nil {
				if limit < 3 {
					t.Errorf("%s: limit %d: design completed before any checkpoint fired", eng, limit)
				}
				if d == nil {
					t.Fatalf("%s: nil design without error", eng)
				}
				continue
			}
			canceledRuns++
			if !errors.Is(err, ErrCanceled) {
				t.Errorf("%s: limit %d: err = %v, want ErrCanceled", eng, limit, err)
			}
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%s: limit %d: err = %v, want to also wrap context.Canceled", eng, limit, err)
			}
		}
		if canceledRuns == 0 {
			t.Errorf("%s: no limit produced a cancellation", eng)
		}
	}
}

// TestSearchMinFeasibleDeterministic: for every feasibility threshold
// and worker count, the speculative multi-point bisection converges to
// the same minimal feasible k (and the same solver result) as the
// serial binary search.
func TestSearchMinFeasibleDeterministic(t *testing.T) {
	const lb, ub = 1, 10
	for thr := lb; thr <= ub+1; thr++ {
		for workers := 1; workers <= 5; workers++ {
			solve := func(ctx context.Context, k int, optimize bool) (*assignResult, error) {
				return &assignResult{feasible: k >= thr, busOf: []int{k}, nodes: 1}, nil
			}
			best, res, nodes, err := searchMinFeasible(context.Background(), lb, ub, workers, solve)
			if err != nil {
				t.Fatalf("thr=%d workers=%d: %v", thr, workers, err)
			}
			if thr > ub {
				if best != -1 {
					t.Errorf("thr=%d workers=%d: best = %d, want -1 (infeasible)", thr, workers, best)
				}
				continue
			}
			if best != thr {
				t.Errorf("thr=%d workers=%d: best = %d, want thr", thr, workers, best)
			}
			if res == nil || len(res.busOf) != 1 || res.busOf[0] != thr {
				t.Errorf("thr=%d workers=%d: result is not the minimal-k solve: %+v", thr, workers, res)
			}
			if nodes < 1 {
				t.Errorf("thr=%d workers=%d: nodes = %d", thr, workers, nodes)
			}
		}
	}
}

func TestSearchMinFeasiblePropagatesSolveError(t *testing.T) {
	boom := errors.New("solver exploded")
	for _, workers := range []int{1, 3} {
		solve := func(ctx context.Context, k int, optimize bool) (*assignResult, error) {
			return nil, fmt.Errorf("k=%d: %w", k, boom)
		}
		best, _, _, err := searchMinFeasible(context.Background(), 1, 8, workers, solve)
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: err = %v, want solver error", workers, err)
		}
		if best != -1 {
			t.Errorf("workers=%d: best = %d, want -1", workers, best)
		}
	}
}

func TestProbePoints(t *testing.T) {
	if got := probePoints(2, 10, 1); len(got) != 1 || got[0] != 6 {
		t.Errorf("probePoints(2,10,1) = %v, want [6] (binary-search midpoint)", got)
	}
	if got := probePoints(3, 3, 4); len(got) != 1 || got[0] != 3 {
		t.Errorf("probePoints(3,3,4) = %v, want [3]", got)
	}
	for _, tc := range []struct{ lo, hi, w int }{
		{1, 10, 2}, {1, 10, 3}, {1, 10, 10}, {1, 10, 50}, {5, 6, 4}, {1, 2, 1},
	} {
		pts := probePoints(tc.lo, tc.hi, tc.w)
		if len(pts) == 0 {
			t.Fatalf("probePoints(%d,%d,%d) empty", tc.lo, tc.hi, tc.w)
		}
		last := tc.lo - 1
		for _, k := range pts {
			if k < tc.lo || k > tc.hi {
				t.Errorf("probePoints(%d,%d,%d): point %d out of range", tc.lo, tc.hi, tc.w, k)
			}
			if k <= last {
				t.Errorf("probePoints(%d,%d,%d): %v not strictly increasing", tc.lo, tc.hi, tc.w, pts)
			}
			last = k
		}
		if len(pts) > tc.w {
			t.Errorf("probePoints(%d,%d,%d): %d points > w", tc.lo, tc.hi, tc.w, len(pts))
		}
	}
}

// TestDesignWorkersDeterminism: the parallel search produces the exact
// same design (bus count, binding, objective) as the serial one on
// random instances.
func TestDesignWorkersDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 15; iter++ {
		a := randomAnalysis(t, rng, 3+rng.Intn(5))
		opts := Options{
			OverlapThreshold: []float64{-1, 0.3, 0.5}[rng.Intn(3)],
			SeparateCritical: true,
			MaxPerBus:        2 + rng.Intn(3),
			OptimizeBinding:  true,
		}
		serial := opts
		serial.Workers = 1
		dS, err := DesignCrossbarCtx(context.Background(), a, serial)
		if err != nil {
			t.Fatalf("iter %d: serial: %v", iter, err)
		}
		par := opts
		par.Workers = 4
		dP, err := DesignCrossbarCtx(context.Background(), a, par)
		if err != nil {
			t.Fatalf("iter %d: parallel: %v", iter, err)
		}
		if dS.NumBuses != dP.NumBuses || dS.MaxBusOverlap != dP.MaxBusOverlap || !reflect.DeepEqual(dS.BusOf, dP.BusOf) {
			t.Errorf("iter %d: serial/parallel designs differ:\n serial  %d buses %v overlap %d\n parallel %d buses %v overlap %d",
				iter, dS.NumBuses, dS.BusOf, dS.MaxBusOverlap, dP.NumBuses, dP.BusOf, dP.MaxBusOverlap)
		}
	}
}

package core

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// mkAnalysis builds an analysis from events over the given horizon and
// window size.
func mkAnalysis(t *testing.T, nRecv int, horizon, ws int64, events []trace.Event) *trace.Analysis {
	t.Helper()
	tr := &trace.Trace{
		NumReceivers: nRecv,
		NumSenders:   1,
		Horizon:      horizon,
		Events:       events,
	}
	a, err := trace.Analyze(tr, ws)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBuildConflictsThreshold(t *testing.T) {
	// Receivers 0 and 1 overlap 60 of 100 cycles in window 0; receivers
	// 0 and 2 overlap 10 cycles.
	a := mkAnalysis(t, 3, 100, 100, []trace.Event{
		{Start: 0, Len: 60, Receiver: 0},
		{Start: 0, Len: 60, Receiver: 1},
		{Start: 60, Len: 10, Receiver: 0},
		{Start: 60, Len: 10, Receiver: 2},
	})
	c := BuildConflicts(a, Options{OverlapThreshold: 0.30})
	if !c[0][1] || !c[1][0] {
		t.Error("60% overlap not flagged at 30% threshold")
	}
	if c[0][2] {
		t.Error("10% overlap flagged at 30% threshold")
	}
	// Disabled preprocessing flags nothing.
	c = BuildConflicts(a, Options{OverlapThreshold: -1})
	if c[0][1] || c[0][2] {
		t.Error("disabled threshold still flags conflicts")
	}
	// Threshold 0 flags any overlap.
	c = BuildConflicts(a, Options{OverlapThreshold: 0})
	if !c[0][1] || !c[0][2] {
		t.Error("0% threshold should flag any overlap")
	}
}

func TestBuildConflictsCritical(t *testing.T) {
	a := mkAnalysis(t, 3, 100, 50, []trace.Event{
		{Start: 0, Len: 10, Receiver: 0, Critical: true},
		{Start: 5, Len: 10, Receiver: 1, Critical: true},
		{Start: 5, Len: 10, Receiver: 2}, // overlaps 0 but not critical
	})
	c := BuildConflicts(a, Options{OverlapThreshold: -1, SeparateCritical: true})
	if !c[0][1] {
		t.Error("overlapping critical streams not separated")
	}
	if c[0][2] {
		t.Error("non-critical overlap separated by critical rule")
	}
	c = BuildConflicts(a, Options{OverlapThreshold: -1, SeparateCritical: false})
	if c[0][1] {
		t.Error("critical separation applied when disabled")
	}
}

func TestDesignBandwidthForcesSplit(t *testing.T) {
	// Two receivers each 70% busy in the same window cannot share one
	// bus (140 > 100) but fit two buses.
	a := mkAnalysis(t, 2, 100, 100, []trace.Event{
		{Start: 0, Len: 70, Receiver: 0},
		{Start: 20, Len: 70, Receiver: 1},
	})
	d, err := DesignCrossbar(a, Options{OverlapThreshold: -1, OptimizeBinding: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumBuses != 2 {
		t.Errorf("NumBuses = %d, want 2", d.NumBuses)
	}
	if err := d.Validate(a, Options{OverlapThreshold: -1}); err != nil {
		t.Error(err)
	}
}

func TestDesignAllowsSharingWhenLight(t *testing.T) {
	// Four receivers, each 20% busy in disjoint quarters of the window:
	// all fit on one bus.
	a := mkAnalysis(t, 4, 100, 100, []trace.Event{
		{Start: 0, Len: 20, Receiver: 0},
		{Start: 25, Len: 20, Receiver: 1},
		{Start: 50, Len: 20, Receiver: 2},
		{Start: 75, Len: 20, Receiver: 3},
	})
	d, err := DesignCrossbar(a, Options{OverlapThreshold: -1, OptimizeBinding: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumBuses != 1 {
		t.Errorf("NumBuses = %d, want 1", d.NumBuses)
	}
}

func TestDesignMaxPerBus(t *testing.T) {
	// Six idle-ish receivers with maxtb 2 need 3 buses.
	var events []trace.Event
	for r := 0; r < 6; r++ {
		events = append(events, trace.Event{Start: int64(r), Len: 1, Receiver: r})
	}
	a := mkAnalysis(t, 6, 100, 100, events)
	d, err := DesignCrossbar(a, Options{OverlapThreshold: -1, MaxPerBus: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumBuses != 3 {
		t.Errorf("NumBuses = %d, want 3", d.NumBuses)
	}
	if err := d.Validate(a, Options{OverlapThreshold: -1, MaxPerBus: 2}); err != nil {
		t.Error(err)
	}
}

func TestDesignConflictsForceSeparation(t *testing.T) {
	// Three receivers all pairwise overlapping more than the threshold:
	// a conflict triangle needs 3 buses even though bandwidth is light.
	a := mkAnalysis(t, 3, 1000, 100, []trace.Event{
		{Start: 0, Len: 40, Receiver: 0},
		{Start: 0, Len: 40, Receiver: 1},
		{Start: 0, Len: 40, Receiver: 2},
	})
	d, err := DesignCrossbar(a, Options{OverlapThreshold: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumBuses != 3 {
		t.Errorf("NumBuses = %d, want 3 (conflict triangle)", d.NumBuses)
	}
	if d.Conflicts != 3 {
		t.Errorf("Conflicts = %d, want 3", d.Conflicts)
	}
}

func TestDesignWindowVsSingleWindow(t *testing.T) {
	// The window-based analysis detects a hot window that the
	// whole-trace average misses (the paper's central claim).
	// Both receivers are ~100% busy in window 0 but idle for the other
	// nine windows: average utilization 10% each, peak 100% each.
	events := []trace.Event{
		{Start: 0, Len: 95, Receiver: 0},
		{Start: 0, Len: 95, Receiver: 1},
	}
	tr := &trace.Trace{NumReceivers: 2, NumSenders: 1, Horizon: 1000, Events: events}

	windowed, err := trace.Analyze(tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	dWin, err := DesignCrossbar(windowed, Options{OverlapThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if dWin.NumBuses != 2 {
		t.Errorf("windowed design: NumBuses = %d, want 2", dWin.NumBuses)
	}

	avg, err := trace.SingleWindow(tr)
	if err != nil {
		t.Fatal(err)
	}
	dAvg, err := DesignCrossbar(avg, Options{OverlapThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if dAvg.NumBuses != 1 {
		t.Errorf("average design: NumBuses = %d, want 1 (misses the hot window)", dAvg.NumBuses)
	}
}

func TestDesignOptimalBindingMinimizesMaxOverlap(t *testing.T) {
	// Four receivers, two buses (cap 2). Overlaps: om(0,1)=50 and
	// om(2,3)=50 are large; om(0,2)=om(1,3)=5 small; om(0,3)=om(1,2)=0.
	// Optimal pairing is {0,3},{1,2} with max overlap 0; the naive
	// pairings score 50.
	events := []trace.Event{
		// om(0,1) = 50.
		{Start: 0, Len: 50, Receiver: 0},
		{Start: 0, Len: 50, Receiver: 1},
		// om(2,3) = 50.
		{Start: 100, Len: 50, Receiver: 2},
		{Start: 100, Len: 50, Receiver: 3},
		// om(0,2) = 5.
		{Start: 200, Len: 5, Receiver: 0},
		{Start: 200, Len: 5, Receiver: 2},
		// om(1,3) = 5.
		{Start: 300, Len: 5, Receiver: 1},
		{Start: 300, Len: 5, Receiver: 3},
	}
	a := mkAnalysis(t, 4, 1000, 1000, events)
	d, err := DesignCrossbar(a, Options{
		OverlapThreshold: -1,
		MaxPerBus:        2,
		OptimizeBinding:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumBuses != 2 {
		t.Fatalf("NumBuses = %d, want 2", d.NumBuses)
	}
	if d.MaxBusOverlap != 0 {
		t.Errorf("MaxBusOverlap = %d, want 0 (optimal binding)", d.MaxBusOverlap)
	}
	if d.BusOf[0] == d.BusOf[1] || d.BusOf[2] == d.BusOf[3] {
		t.Errorf("high-overlap pairs share a bus: %v", d.BusOf)
	}
}

func TestDesignEmptyAnalysis(t *testing.T) {
	if _, err := DesignCrossbar(nil, Options{}); err == nil {
		t.Error("nil analysis accepted")
	}
}

func TestDesignRejectsThresholdAboveOne(t *testing.T) {
	a := mkAnalysis(t, 2, 10, 10, nil)
	if _, err := DesignCrossbar(a, Options{OverlapThreshold: 1.5}); err == nil {
		t.Error("threshold > 1 accepted")
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	a := mkAnalysis(t, 2, 100, 100, []trace.Event{
		{Start: 0, Len: 70, Receiver: 0},
		{Start: 0, Len: 70, Receiver: 1},
	})
	// Overloaded single bus.
	d := &Design{NumBuses: 1, BusOf: []int{0, 0}}
	if err := d.Validate(a, Options{OverlapThreshold: -1}); err == nil {
		t.Error("overloaded bus accepted")
	}
	// Bad bus index.
	d = &Design{NumBuses: 1, BusOf: []int{0, 3}}
	if err := d.Validate(a, Options{OverlapThreshold: -1}); err == nil {
		t.Error("out-of-range bus accepted")
	}
	// Conflict violation (70% overlap >> 10% threshold) even with 2
	// buses declared, if both on one bus.
	d = &Design{NumBuses: 2, BusOf: []int{1, 1}}
	if err := d.Validate(a, Options{OverlapThreshold: 0.1}); err == nil {
		t.Error("conflicting receivers sharing a bus accepted")
	}
	// Wrong length.
	d = &Design{NumBuses: 1, BusOf: []int{0}}
	if err := d.Validate(a, Options{OverlapThreshold: -1}); err == nil {
		t.Error("short binding accepted")
	}
	// Cap violation.
	d = &Design{NumBuses: 2, BusOf: []int{0, 0}}
	if err := d.Validate(a, Options{OverlapThreshold: -1, MaxPerBus: 1}); err == nil {
		t.Error("cap violation accepted")
	}
}

// randomAnalysis builds a random trace analysis for property tests.
func randomAnalysis(t *testing.T, rng *rand.Rand, nRecv int) *trace.Analysis {
	t.Helper()
	horizon := int64(400)
	var events []trace.Event
	for r := 0; r < nRecv; r++ {
		n := 1 + rng.Intn(5)
		for e := 0; e < n; e++ {
			start := int64(rng.Intn(350))
			events = append(events, trace.Event{
				Start:    start,
				Len:      1 + int64(rng.Intn(49)),
				Receiver: r,
				Critical: rng.Intn(8) == 0,
			})
		}
	}
	return mkAnalysis(t, nRecv, horizon, 100, events)
}

// TestDesignQuickAlwaysValid: any produced design passes Validate.
func TestDesignQuickAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 40; iter++ {
		a := randomAnalysis(t, rng, 2+rng.Intn(6))
		opts := Options{
			OverlapThreshold: []float64{-1, 0.2, 0.4, 0.5}[rng.Intn(4)],
			SeparateCritical: rng.Intn(2) == 0,
			MaxPerBus:        rng.Intn(5), // 0 = unlimited
			OptimizeBinding:  rng.Intn(2) == 0,
		}
		d, err := DesignCrossbar(a, opts)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if err := d.Validate(a, opts); err != nil {
			t.Fatalf("iter %d: invalid design: %v (opts %+v)", iter, err, opts)
		}
	}
}

// bruteForce finds the true minimum bus count and optimal max overlap
// by enumerating all assignments of up to nT receivers.
func bruteForce(a *trace.Analysis, conflicts [][]bool, maxPerBus int) (minBuses int, bestOv int64) {
	nT := a.NumReceivers
	busOf := make([]int, nT)
	feasibleWith := func(k int) bool { return enumerate(a, conflicts, maxPerBus, busOf, 0, k, nil) }
	minBuses = -1
	for k := 1; k <= nT; k++ {
		if feasibleWith(k) {
			minBuses = k
			break
		}
	}
	if minBuses == -1 {
		return -1, 0
	}
	bestOv = int64(1) << 62
	enumerate(a, conflicts, maxPerBus, busOf, 0, minBuses, func(assign []int) {
		if ov := MaxOverlapOf(a, minBuses, assign); ov < bestOv {
			bestOv = ov
		}
	})
	return minBuses, bestOv
}

// enumerate walks all assignments into k buses that satisfy the
// constraints; if visit is nil it returns true at the first one.
func enumerate(a *trace.Analysis, conflicts [][]bool, maxPerBus int, busOf []int, idx, k int, visit func([]int)) bool {
	nT := a.NumReceivers
	if idx == nT {
		if visit != nil {
			visit(busOf)
			return false
		}
		return true
	}
	for b := 0; b < k; b++ {
		busOf[idx] = b
		ok := true
		cnt := 0
		for r := 0; r <= idx; r++ {
			if busOf[r] == b {
				cnt++
			}
		}
		if cnt > maxPerBus {
			ok = false
		}
		for r := 0; r < idx && ok; r++ {
			if busOf[r] == b && conflicts[r][idx] {
				ok = false
			}
		}
		for m := 0; m < a.NumWindows() && ok; m++ {
			var load int64
			for r := 0; r <= idx; r++ {
				if busOf[r] == b {
					load += a.Comm.At(r, m)
				}
			}
			if load > a.WindowLen(m) {
				ok = false
			}
		}
		if ok && enumerate(a, conflicts, maxPerBus, busOf, idx+1, k, visit) {
			return true
		}
	}
	busOf[idx] = 0
	return false
}

// TestDesignQuickMatchesBruteForce: the solver's bus count and optimal
// overlap objective match exhaustive enumeration on small instances.
func TestDesignQuickMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 25; iter++ {
		nRecv := 2 + rng.Intn(4) // up to 5 receivers
		a := randomAnalysis(t, rng, nRecv)
		opts := Options{
			OverlapThreshold: []float64{-1, 0.3, 0.5}[rng.Intn(3)],
			SeparateCritical: true,
			MaxPerBus:        2 + rng.Intn(3),
			OptimizeBinding:  true,
		}
		conflicts := BuildConflicts(a, opts)
		maxPerBus := opts.MaxPerBus
		wantBuses, wantOv := bruteForce(a, conflicts, maxPerBus)
		d, err := DesignCrossbar(a, opts)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if d.NumBuses != wantBuses {
			t.Errorf("iter %d: NumBuses = %d, brute force %d", iter, d.NumBuses, wantBuses)
		}
		if d.MaxBusOverlap != wantOv {
			t.Errorf("iter %d: MaxBusOverlap = %d, brute force %d", iter, d.MaxBusOverlap, wantOv)
		}
	}
}

// TestEnginesAgree: the specialized solver and the literal MILP
// formulation produce the same bus count and objective.
func TestEnginesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 10; iter++ {
		a := randomAnalysis(t, rng, 2+rng.Intn(4)) // up to 5 receivers
		base := Options{
			OverlapThreshold: 0.4,
			SeparateCritical: true,
			MaxPerBus:        3,
			OptimizeBinding:  true,
		}
		bb := base
		bb.Engine = EngineBranchBound
		dBB, err := DesignCrossbar(a, bb)
		if err != nil {
			t.Fatalf("iter %d: branch-bound: %v", iter, err)
		}
		mi := base
		mi.Engine = EngineMILP
		dMI, err := DesignCrossbar(a, mi)
		if err != nil {
			t.Fatalf("iter %d: milp: %v", iter, err)
		}
		if dBB.NumBuses != dMI.NumBuses {
			t.Errorf("iter %d: bus counts differ: bb=%d milp=%d", iter, dBB.NumBuses, dMI.NumBuses)
		}
		if dBB.MaxBusOverlap != dMI.MaxBusOverlap {
			t.Errorf("iter %d: objectives differ: bb=%d milp=%d", iter, dBB.MaxBusOverlap, dMI.MaxBusOverlap)
		}
		if err := dMI.Validate(a, mi); err != nil {
			t.Errorf("iter %d: MILP design invalid: %v", iter, err)
		}
	}
}

func TestEngineString(t *testing.T) {
	if EngineBranchBound.String() != "branch-and-bound" || EngineMILP.String() != "milp" {
		t.Error("Engine.String mismatch")
	}
}

func TestDefaultOptions(t *testing.T) {
	o := DefaultOptions()
	if o.OverlapThreshold != 0.30 || !o.SeparateCritical || o.MaxPerBus != 4 || !o.OptimizeBinding {
		t.Errorf("DefaultOptions = %+v", o)
	}
}

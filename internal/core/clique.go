package core

import "math/bits"

// maxClique returns the size of a maximum clique of the conflict graph
// — an exact lower bound on the number of buses, since every member of
// a clique needs its own bus. Worst-case exponential, but with bitmask
// pruning it is instantaneous at STbus sizes (≤ 32 receivers, which is
// also what lets the whole graph fit one uint64 mask per vertex).
// Graphs larger than 64 vertices fall back to a greedy clique (still a
// valid lower bound).
func maxClique(conflict [][]bool) int {
	n := len(conflict)
	if n == 0 {
		return 0
	}
	if n > 64 {
		return greedyClique(conflict)
	}
	adj := make([]uint64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && conflict[i][j] {
				adj[i] |= 1 << uint(j)
			}
		}
	}
	best := 0
	// expand grows the current clique (size so far) over candidate set P.
	var expand func(size int, p uint64)
	expand = func(size int, p uint64) {
		if size+bits.OnesCount64(p) <= best {
			return // even taking all candidates cannot improve
		}
		if p == 0 {
			if size > best {
				best = size
			}
			return
		}
		// Pivot on the candidate with most candidate-neighbours; only
		// branch on candidates outside its neighbourhood (standard
		// Bron–Kerbosch pivoting restricted to maximum search).
		pivot, bestDeg := -1, -1
		for q := p; q != 0; q &= q - 1 {
			v := bits.TrailingZeros64(q)
			if d := bits.OnesCount64(adj[v] & p); d > bestDeg {
				bestDeg = d
				pivot = v
			}
		}
		branch := p &^ adj[pivot]
		for q := branch; q != 0; q &= q - 1 {
			v := bits.TrailingZeros64(q)
			expand(size+1, p&adj[v])
			p &^= 1 << uint(v)
			if size+bits.OnesCount64(p) <= best {
				return
			}
		}
	}
	expand(0, (uint64(1)<<uint(n))-1)
	return best
}

// greedyClique grows a clique greedily by descending degree — a valid
// (possibly loose) lower bound for graphs too large for the exact
// search.
func greedyClique(conflict [][]bool) int {
	n := len(conflict)
	deg := make([]int, n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
		for j := 0; j < n; j++ {
			if i != j && conflict[i][j] {
				deg[i]++
			}
		}
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if deg[order[b]] > deg[order[a]] {
				order[a], order[b] = order[b], order[a]
			}
		}
	}
	var clique []int
	for _, v := range order {
		ok := true
		for _, c := range clique {
			if !conflict[v][c] {
				ok = false
				break
			}
		}
		if ok {
			clique = append(clique, v)
		}
	}
	return len(clique)
}

package core

import "math/bits"

// maxClique returns the size of a maximum clique of the conflict graph
// — an exact lower bound on the number of buses, since every member of
// a clique needs its own bus. Graphs up to 64 vertices run a
// single-word Bron–Kerbosch-style search (instantaneous at STbus
// sizes); larger graphs run a multi-word-bitset branch and bound with a
// greedy-coloring upper bound (Tomita-style), exact up to a node budget
// that covers the 128–512-receiver instances the scaled solver targets.
// Only if that budget runs out does the result degrade to the best
// clique found so far — still a valid lower bound, never an
// overestimate.
func maxClique(conflict [][]bool) int {
	n := len(conflict)
	if n == 0 {
		return 0
	}
	if n > 64 {
		return maxCliqueLarge(conflict)
	}
	adj := make([]uint64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && conflict[i][j] {
				adj[i] |= 1 << uint(j)
			}
		}
	}
	best := 0
	// expand grows the current clique (size so far) over candidate set P.
	var expand func(size int, p uint64)
	expand = func(size int, p uint64) {
		if size+bits.OnesCount64(p) <= best {
			return // even taking all candidates cannot improve
		}
		if p == 0 {
			if size > best {
				best = size
			}
			return
		}
		// Pivot on the candidate with most candidate-neighbours; only
		// branch on candidates outside its neighbourhood (standard
		// Bron–Kerbosch pivoting restricted to maximum search).
		pivot, bestDeg := -1, -1
		for q := p; q != 0; q &= q - 1 {
			v := bits.TrailingZeros64(q)
			if d := bits.OnesCount64(adj[v] & p); d > bestDeg {
				bestDeg = d
				pivot = v
			}
		}
		branch := p &^ adj[pivot]
		for q := branch; q != 0; q &= q - 1 {
			v := bits.TrailingZeros64(q)
			expand(size+1, p&adj[v])
			p &^= 1 << uint(v)
			if size+bits.OnesCount64(p) <= best {
				return
			}
		}
	}
	expand(0, (uint64(1)<<uint(n))-1)
	return best
}

// cliqueNodeBudget bounds the large-graph exact search. Conflict graphs
// of real window analyses are sparse-to-moderate and color-bounded
// search settles them in well under this; the budget exists so a
// pathological dense graph cannot stall the pre-search bound
// computation (the search degrades to its running best, which stays a
// valid lower bound).
const cliqueNodeBudget = 2_000_000

// wordset is a flat multi-word bitset over the vertices of one clique
// search. All operations are allocation-free against caller scratch.
type wordset []uint64

func newWordset(n int) wordset { return make(wordset, (n+63)/64) }

func (s wordset) set(i int)      { s[i>>6] |= 1 << uint(i&63) }
func (s wordset) clear(i int)    { s[i>>6] &^= 1 << uint(i&63) }
func (s wordset) has(i int) bool { return s[i>>6]&(1<<uint(i&63)) != 0 }

func (s wordset) count() int {
	total := 0
	for _, w := range s {
		total += bits.OnesCount64(w)
	}
	return total
}

func (s wordset) empty() bool {
	for _, w := range s {
		if w != 0 {
			return false
		}
	}
	return true
}

// intersectInto writes a∩b into dst (all same length).
func (dst wordset) intersectInto(a, b wordset) {
	for i := range dst {
		dst[i] = a[i] & b[i]
	}
}

func (dst wordset) copyFrom(src wordset) { copy(dst, src) }

// maxCliqueLarge is the exact search for graphs past the single-word
// limit: branch and bound over multi-word candidate bitsets, ordered
// and bounded by a greedy coloring of the candidate set (a proper
// coloring with c colors proves no clique larger than size+c hides in
// the candidates — the classic Tomita bound, far tighter than the
// popcount bound at these sizes).
func maxCliqueLarge(conflict [][]bool) int {
	n := len(conflict)
	adj := make([]wordset, n)
	for i := 0; i < n; i++ {
		adj[i] = newWordset(n)
		for j := 0; j < n; j++ {
			if i != j && conflict[i][j] {
				adj[i].set(j)
			}
		}
	}

	// Seed the incumbent with the greedy clique so even an immediately
	// exhausted budget returns a useful bound.
	best := greedyClique(conflict)
	nodes := 0
	capped := false

	// Scratch stacks: one candidate set and one color-order buffer per
	// depth (depth ≤ n). Allocated once up front.
	words := len(adj[0])
	candStack := make([]wordset, n+1)
	for i := range candStack {
		candStack[i] = make(wordset, words)
	}
	orderBuf := make([][]int32, n+1)
	colorBuf := make([][]int32, n+1)
	for i := range orderBuf {
		orderBuf[i] = make([]int32, 0, n)
		colorBuf[i] = make([]int32, 0, n)
	}
	uncolored := make(wordset, words)
	classAvail := make(wordset, words)

	// colorSort greedily colors the candidate set and returns the
	// vertices in increasing color order with their color numbers
	// (1-based). The buffers are shared across depths, which is safe
	// because each expand finishes its coloring before recursing.
	colorSort := func(p wordset, depth int) ([]int32, []int32) {
		order := orderBuf[depth][:0]
		colors := colorBuf[depth][:0]
		uncolored.copyFrom(p)
		color := int32(0)
		for !uncolored.empty() {
			color++
			// One color class: repeatedly take the lowest uncolored
			// vertex not adjacent to anything already in the class.
			classAvail.copyFrom(uncolored)
			for wi := 0; wi < words; wi++ {
				for w := classAvail[wi]; w != 0; w = classAvail[wi] {
					v := int32(wi*64 + bits.TrailingZeros64(w))
					uncolored.clear(int(v))
					classAvail.clear(int(v))
					// Remove v's neighbours from the current class.
					for k := 0; k < words; k++ {
						classAvail[k] &^= adj[v][k]
					}
					order = append(order, v)
					colors = append(colors, color)
				}
			}
		}
		orderBuf[depth] = order
		colorBuf[depth] = colors
		return order, colors
	}

	var expand func(size, depth int, p wordset)
	expand = func(size, depth int, p wordset) {
		nodes++
		if nodes > cliqueNodeBudget {
			capped = true
			return
		}
		order, colors := colorSort(p, depth)
		// Branch highest color first: the color bound prunes earliest
		// and each removal shrinks later siblings' candidate sets.
		for i := len(order) - 1; i >= 0; i-- {
			if capped {
				return
			}
			v := order[i]
			if size+int(colors[i]) <= best {
				return // every remaining vertex has a smaller-or-equal color
			}
			child := candStack[depth+1]
			child.intersectInto(p, adj[v])
			if child.empty() {
				if size+1 > best {
					best = size + 1
				}
			} else {
				expand(size+1, depth+1, child)
			}
			p.clear(int(v))
		}
	}

	root := candStack[0]
	for i := 0; i < n; i++ {
		root.set(i)
	}
	expand(0, 0, root)
	return best
}

// greedyClique grows a clique greedily by descending degree — a valid
// (possibly loose) lower bound used to seed the exact searches and as
// the last resort when the large-graph node budget runs out.
func greedyClique(conflict [][]bool) int {
	n := len(conflict)
	deg := make([]int, n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
		for j := 0; j < n; j++ {
			if i != j && conflict[i][j] {
				deg[i]++
			}
		}
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if deg[order[b]] > deg[order[a]] {
				order[a], order[b] = order[b], order[a]
			}
		}
	}
	var clique []int
	for _, v := range order {
		ok := true
		for _, c := range clique {
			if !conflict[v][c] {
				ok = false
				break
			}
		}
		if ok {
			clique = append(clique, v)
		}
	}
	return len(clique)
}

package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/lp"
	"repro/internal/milp"
	"repro/internal/trace"
)

// Formulation is the paper's MILP (Eq. 3–9, plus Eq. 11 in binding
// mode) over a fixed bus count, expressed for the internal solver.
// Variable layout:
//
//	x_{i,k}  — binding variables (Definition 3), binary
//	sb_{i,j,k}, s_{i,j} — sharing variables (Definition 4), binary,
//	           materialized only for pairs that need them (conflict
//	           pairs always; positive-overlap pairs in binding mode)
//	maxov    — continuous objective variable (binding mode only)
type Formulation struct {
	Problem  *milp.Problem
	NumBuses int
	nT       int
	// xIdx maps (receiver, bus) to the x variable index.
	xIdx func(i, k int) int
	// MaxovIdx is the maxov variable index, or -1 in feasibility mode.
	MaxovIdx int
}

// Formulate builds the MILP for one candidate bus count. The windowed
// bandwidth constraints use the Pareto-reduced window set (dominated
// windows cannot be binding).
func Formulate(a *trace.Analysis, conflicts [][]bool, numBuses, maxPerBus int, optimize bool) *Formulation {
	nT := a.NumReceivers
	nB := numBuses
	keep := reduceWindows(a)

	// Pair selection: sb/s variables exist only where they constrain
	// something.
	type pair struct{ i, j int }
	var pairs []pair
	pairIdx := map[pair]int{}
	for i := 0; i < nT; i++ {
		for j := i + 1; j < nT; j++ {
			if conflicts[i][j] || (optimize && a.OM.At(i, j) > 0) {
				pairIdx[pair{i, j}] = len(pairs)
				pairs = append(pairs, pair{i, j})
			}
		}
	}

	numX := nT * nB
	numSB := len(pairs) * nB
	numS := len(pairs)
	numVars := numX + numSB + numS
	maxovIdx := -1
	if optimize {
		maxovIdx = numVars
		numVars++
	}

	x := func(i, k int) int { return i*nB + k }
	sb := func(p, k int) int { return numX + p*nB + k }
	sv := func(p int) int { return numX + numSB + p }

	prob := &milp.Problem{
		LP:     lp.Problem{NumVars: numVars},
		Binary: make([]bool, numVars),
	}
	for v := 0; v < numX+numSB+numS; v++ {
		prob.Binary[v] = true
	}
	if optimize {
		obj := make([]float64, numVars)
		obj[maxovIdx] = 1
		prob.LP.Objective = obj
	}

	// Eq. 3: each receiver on exactly one bus.
	for i := 0; i < nT; i++ {
		terms := make([]lp.Term, nB)
		for k := 0; k < nB; k++ {
			terms[k] = lp.Term{Var: x(i, k), Coef: 1}
		}
		prob.LP.AddConstraint(lp.EQ, 1, terms...)
	}

	// Eq. 4: per-window per-bus bandwidth.
	for _, m := range keep {
		for k := 0; k < nB; k++ {
			var terms []lp.Term
			for i := 0; i < nT; i++ {
				if c := a.Comm.At(i, m); c > 0 {
					terms = append(terms, lp.Term{Var: x(i, k), Coef: float64(c)})
				}
			}
			if len(terms) > 0 {
				prob.LP.AddConstraint(lp.LE, float64(a.WindowLen(m)), terms...)
			}
		}
	}

	// Eq. 5: linearized sharing variables.
	for p, pr := range pairs {
		for k := 0; k < nB; k++ {
			// x_ik + x_jk - sb_ijk <= 1
			prob.LP.AddConstraint(lp.LE, 1,
				lp.Term{Var: x(pr.i, k), Coef: 1},
				lp.Term{Var: x(pr.j, k), Coef: 1},
				lp.Term{Var: sb(p, k), Coef: -1})
			// 0.5 x_ik + 0.5 x_jk - sb_ijk >= 0
			prob.LP.AddConstraint(lp.GE, 0,
				lp.Term{Var: x(pr.i, k), Coef: 0.5},
				lp.Term{Var: x(pr.j, k), Coef: 0.5},
				lp.Term{Var: sb(p, k), Coef: -1})
		}
	}

	// Eq. 6: s_ij = Σ_k sb_ijk.
	for p := range pairs {
		terms := []lp.Term{{Var: sv(p), Coef: 1}}
		for k := 0; k < nB; k++ {
			terms = append(terms, lp.Term{Var: sb(p, k), Coef: -1})
		}
		prob.LP.AddConstraint(lp.EQ, 0, terms...)
	}

	// Eq. 7: conflicting pairs never share (c_ij × s_ij = 0).
	for p, pr := range pairs {
		if conflicts[pr.i][pr.j] {
			prob.LP.AddConstraint(lp.EQ, 0, lp.Term{Var: sv(p), Coef: 1})
		}
	}

	// Eq. 8: at most maxtb receivers per bus.
	if maxPerBus < nT {
		for k := 0; k < nB; k++ {
			terms := make([]lp.Term, nT)
			for i := 0; i < nT; i++ {
				terms[i] = lp.Term{Var: x(i, k), Coef: 1}
			}
			prob.LP.AddConstraint(lp.LE, float64(maxPerBus), terms...)
		}
	}

	// Eq. 11: per-bus aggregate overlap bounded by maxov. The paper
	// sums om_{i,j} over ordered pairs; summing unordered pairs halves
	// the objective without changing the argmin.
	if optimize {
		for k := 0; k < nB; k++ {
			terms := []lp.Term{{Var: maxovIdx, Coef: -1}}
			for p, pr := range pairs {
				if om := a.OM.At(pr.i, pr.j); om > 0 {
					terms = append(terms, lp.Term{Var: sb(p, k), Coef: float64(om)})
				}
			}
			if len(terms) > 1 {
				prob.LP.AddConstraint(lp.LE, 0, terms...)
			}
		}
	}

	// Symmetry breaking (buses are interchangeable): receiver i may
	// only use buses 0..i. This is not in the paper but is sound and
	// keeps the branch-and-bound tree small.
	for i := 0; i < nT && i < nB; i++ {
		for k := i + 1; k < nB; k++ {
			prob.LP.AddConstraint(lp.EQ, 0, lp.Term{Var: x(i, k), Coef: 1})
		}
	}

	return &Formulation{
		Problem:  prob,
		NumBuses: nB,
		nT:       nT,
		xIdx:     x,
		MaxovIdx: maxovIdx,
	}
}

// Extract reads the receiver→bus binding out of a MILP solution.
func (f *Formulation) Extract(x []float64) ([]int, error) {
	busOf := make([]int, f.nT)
	for i := 0; i < f.nT; i++ {
		busOf[i] = -1
		for k := 0; k < f.NumBuses; k++ {
			if x[f.xIdx(i, k)] > 0.5 {
				if busOf[i] != -1 {
					return nil, fmt.Errorf("core: receiver %d bound to two buses", i)
				}
				busOf[i] = k
			}
		}
		if busOf[i] == -1 {
			return nil, fmt.Errorf("core: receiver %d unbound in MILP solution", i)
		}
	}
	return busOf, nil
}

// solveMILP runs the paper-literal formulation for one bus count. A
// cancellation of the underlying MILP search is re-labeled with the
// design-path sentinel so errors.Is(err, ErrCanceled) holds for every
// engine.
func solveMILP(ctx context.Context, a *trace.Analysis, conflicts [][]bool, numBuses, maxPerBus int, optimize bool) (*assignResult, error) {
	f := Formulate(a, conflicts, numBuses, maxPerBus, optimize)
	sol, err := milp.SolveCtx(ctx, f.Problem, milp.Options{FirstFeasible: !optimize})
	if err != nil {
		if errors.Is(err, milp.ErrCanceled) {
			return nil, fmt.Errorf("core: MILP solve (%d buses): %w: %w", numBuses, ErrCanceled, err)
		}
		return nil, fmt.Errorf("core: MILP solve (%d buses): %w", numBuses, err)
	}
	res := &assignResult{nodes: int64(sol.Nodes)}
	if sol.Status != lp.Optimal {
		return res, nil // infeasible for this bus count
	}
	busOf, err := f.Extract(sol.X)
	if err != nil {
		return nil, err
	}
	res.feasible = true
	res.busOf = busOf
	res.maxOverlap = MaxOverlapOfMatrix(a.OM, numBuses, busOf)
	return res, nil
}

package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/ds"
	"repro/internal/lp"
	"repro/internal/milp"
	"repro/internal/trace"
)

// SymmetryLevel selects how aggressively the MILP formulation breaks
// the interchangeability of buses. None of the levels is in the paper;
// all are sound (they remove only permuted copies of solutions, never
// the canonical representative), and because the binding objective
// maxov is invariant under bus relabeling they are valid in binding
// mode too.
type SymmetryLevel int

const (
	// SymFull adds the weak rows plus, in binding (optimize) mode,
	// canonical-ordering rows: receiver i may use bus k ≥ 1 only if
	// some receiver j < i uses bus k−1. Under the canonical labeling
	// (buses ordered by their minimal member, empty buses last) every
	// feasible binding satisfies these rows, so exactly one
	// representative of each orbit of the k! bus permutations
	// survives. The canonical rows are deliberately NOT emitted for
	// feasibility probes: an exhaustive optimality search profits from
	// pruning symmetric subtrees, but a first-feasible dive only needs
	// ANY solution, and on the benchprobs instances the extra rows
	// slow the dive several-fold (12 receivers: 27 vs 6 nodes;
	// 32 receivers: 35 vs 6). The default.
	SymFull SymmetryLevel = iota
	// SymWeak is the pre-incremental behavior: x_{i,k} = 0 for k > i
	// (receiver i may only use buses 0..i).
	SymWeak
	// SymNone disables symmetry breaking entirely (the paper-literal
	// formulation).
	SymNone
)

// Formulation is the paper's MILP (Eq. 3–9, plus Eq. 11 in binding
// mode) over a fixed bus count, expressed for the internal solver.
// Variable layout:
//
//	x_{i,k}  — binding variables (Definition 3), binary
//	sb_{i,j,k}, s_{i,j} — sharing variables (Definition 4), binary,
//	           materialized only for pairs that need them (conflict
//	           pairs always; positive-overlap pairs in binding mode)
//	maxov    — continuous objective variable (binding mode only)
type Formulation struct {
	Problem  *milp.Problem
	NumBuses int
	nT       int
	// xIdx maps (receiver, bus) to the x variable index.
	xIdx func(i, k int) int
	// MaxovIdx is the maxov variable index, or -1 in feasibility mode.
	MaxovIdx int

	// Retained for Inject: the materialized sharing pairs, their
	// variable index mappings, and the aggregate overlap matrix.
	pairs []pairIJ
	sbIdx func(p, k int) int
	sIdx  func(p int) int
	om    *ds.SymMatrix
}

type pairIJ struct{ i, j int }

// Formulator caches the bus-count-independent skeleton of the MILP
// formulation for one analysis: the Pareto-reduced window set and the
// sharing-pair selections. The parallel feasibility search (search.go)
// probes many adjacent bus counts against the same analysis, and
// without the cache every probe re-derived both from scratch.
// ForBusCount only materializes the bus-count-dependent constraint
// rows. The lazily built parts are guarded by sync.Once, so a
// Formulator is safe for concurrent probes.
type Formulator struct {
	a         *trace.Analysis
	conflicts [][]bool
	maxPerBus int
	symmetry  SymmetryLevel

	onceWindows sync.Once
	keep        []int

	// Pair selection differs between feasibility (conflict pairs only)
	// and binding (plus positive-overlap pairs); index by optimize.
	oncePairs [2]sync.Once
	pairs     [2][]pairIJ
}

// NewFormulator prepares the shared skeleton for the given analysis
// and conflict matrix. The heavy parts are computed lazily on first
// use and reused by every subsequent ForBusCount call.
func NewFormulator(a *trace.Analysis, conflicts [][]bool, maxPerBus int, symmetry SymmetryLevel) *Formulator {
	return &Formulator{a: a, conflicts: conflicts, maxPerBus: maxPerBus, symmetry: symmetry}
}

func (f *Formulator) windows() []int {
	f.onceWindows.Do(func() { f.keep = reduceWindows(f.a) })
	return f.keep
}

func (f *Formulator) pairsFor(optimize bool) []pairIJ {
	idx := 0
	if optimize {
		idx = 1
	}
	f.oncePairs[idx].Do(func() {
		nT := f.a.NumReceivers
		var pairs []pairIJ
		for i := 0; i < nT; i++ {
			for j := i + 1; j < nT; j++ {
				if f.conflicts[i][j] || (optimize && f.a.OM.At(i, j) > 0) {
					pairs = append(pairs, pairIJ{i, j})
				}
			}
		}
		f.pairs[idx] = pairs
	})
	return f.pairs[idx]
}

// ForBusCount materializes the MILP for one candidate bus count. The
// windowed bandwidth constraints use the Pareto-reduced window set
// (dominated windows cannot be binding).
func (f *Formulator) ForBusCount(numBuses int, optimize bool) *Formulation {
	a := f.a
	nT := a.NumReceivers
	nB := numBuses
	keep := f.windows()
	pairs := f.pairsFor(optimize)

	numX := nT * nB
	numSB := len(pairs) * nB
	numS := len(pairs)
	numVars := numX + numSB + numS
	maxovIdx := -1
	if optimize {
		maxovIdx = numVars
		numVars++
	}

	x := func(i, k int) int { return i*nB + k }
	sb := func(p, k int) int { return numX + p*nB + k }
	sv := func(p int) int { return numX + numSB + p }

	prob := &milp.Problem{
		LP:     lp.Problem{NumVars: numVars},
		Binary: make([]bool, numVars),
	}
	for v := 0; v < numX+numSB+numS; v++ {
		prob.Binary[v] = true
	}
	if optimize {
		obj := make([]float64, numVars)
		obj[maxovIdx] = 1
		prob.LP.Objective = obj
	}

	// Eq. 3: each receiver on exactly one bus.
	for i := 0; i < nT; i++ {
		terms := make([]lp.Term, nB)
		for k := 0; k < nB; k++ {
			terms[k] = lp.Term{Var: x(i, k), Coef: 1}
		}
		prob.LP.AddConstraint(lp.EQ, 1, terms...)
	}

	// Eq. 4: per-window per-bus bandwidth.
	for _, m := range keep {
		for k := 0; k < nB; k++ {
			var terms []lp.Term
			for i := 0; i < nT; i++ {
				if c := a.Comm.At(i, m); c > 0 {
					terms = append(terms, lp.Term{Var: x(i, k), Coef: float64(c)})
				}
			}
			if len(terms) > 0 {
				prob.LP.AddConstraint(lp.LE, float64(a.WindowLen(m)), terms...)
			}
		}
	}

	// Eq. 5: linearized sharing variables.
	for p, pr := range pairs {
		for k := 0; k < nB; k++ {
			// x_ik + x_jk - sb_ijk <= 1
			prob.LP.AddConstraint(lp.LE, 1,
				lp.Term{Var: x(pr.i, k), Coef: 1},
				lp.Term{Var: x(pr.j, k), Coef: 1},
				lp.Term{Var: sb(p, k), Coef: -1})
			// 0.5 x_ik + 0.5 x_jk - sb_ijk >= 0
			prob.LP.AddConstraint(lp.GE, 0,
				lp.Term{Var: x(pr.i, k), Coef: 0.5},
				lp.Term{Var: x(pr.j, k), Coef: 0.5},
				lp.Term{Var: sb(p, k), Coef: -1})
		}
	}

	// Eq. 6: s_ij = Σ_k sb_ijk.
	for p := range pairs {
		terms := []lp.Term{{Var: sv(p), Coef: 1}}
		for k := 0; k < nB; k++ {
			terms = append(terms, lp.Term{Var: sb(p, k), Coef: -1})
		}
		prob.LP.AddConstraint(lp.EQ, 0, terms...)
	}

	// Eq. 7: conflicting pairs never share (c_ij × s_ij = 0).
	for p, pr := range pairs {
		if f.conflicts[pr.i][pr.j] {
			prob.LP.AddConstraint(lp.EQ, 0, lp.Term{Var: sv(p), Coef: 1})
		}
	}

	// Eq. 8: at most maxtb receivers per bus.
	if f.maxPerBus < nT {
		for k := 0; k < nB; k++ {
			terms := make([]lp.Term, nT)
			for i := 0; i < nT; i++ {
				terms[i] = lp.Term{Var: x(i, k), Coef: 1}
			}
			prob.LP.AddConstraint(lp.LE, float64(f.maxPerBus), terms...)
		}
	}

	// Eq. 11: per-bus aggregate overlap bounded by maxov. The paper
	// sums om_{i,j} over ordered pairs; summing unordered pairs halves
	// the objective without changing the argmin.
	if optimize {
		for k := 0; k < nB; k++ {
			terms := []lp.Term{{Var: maxovIdx, Coef: -1}}
			for p, pr := range pairs {
				if om := a.OM.At(pr.i, pr.j); om > 0 {
					terms = append(terms, lp.Term{Var: sb(p, k), Coef: float64(om)})
				}
			}
			if len(terms) > 1 {
				prob.LP.AddConstraint(lp.LE, 0, terms...)
			}
		}
	}

	// Symmetry breaking (buses are interchangeable; see SymmetryLevel).
	if f.symmetry != SymNone {
		// Weak rows: receiver i may only use buses 0..i.
		for i := 0; i < nT && i < nB; i++ {
			for k := i + 1; k < nB; k++ {
				prob.LP.AddConstraint(lp.EQ, 0, lp.Term{Var: x(i, k), Coef: 1})
			}
		}
	}
	if f.symmetry == SymFull && optimize {
		// Canonical-ordering rows: x_{i,k} ≤ Σ_{j<i} x_{j,k−1} for
		// k ≥ 1 — bus k may only be opened by receiver i if bus k−1
		// was opened by an earlier receiver. Together with the weak
		// rows this admits exactly the bindings whose buses are
		// labeled in order of their minimal member (empty buses last),
		// one representative per permutation orbit. Relabeling
		// preserves feasibility and the maxov objective, so neither
		// mode loses its optimum.
		for i := 1; i < nT; i++ {
			for k := 1; k < nB && k <= i; k++ {
				terms := []lp.Term{{Var: x(i, k), Coef: 1}}
				for j := 0; j < i; j++ {
					terms = append(terms, lp.Term{Var: x(j, k-1), Coef: -1})
				}
				prob.LP.AddConstraint(lp.LE, 0, terms...)
			}
		}
	}

	return &Formulation{
		Problem:  prob,
		NumBuses: nB,
		nT:       nT,
		xIdx:     x,
		MaxovIdx: maxovIdx,
		pairs:    pairs,
		sbIdx:    sb,
		sIdx:     sv,
		om:       a.OM,
	}
}

// Inject converts a receiver→bus binding into a complete solution
// vector for this formulation, suitable as milp.Options.Incumbent. The
// binding is relabeled to the canonical bus ordering (buses numbered by
// first appearance in receiver order) so the vector satisfies the
// symmetry-breaking rows; relabeling changes neither feasibility nor
// the maxov objective, which is invariant under bus permutation. Only
// the shape is validated here — constraint satisfaction is the MILP
// solver's job (it re-checks any incumbent before trusting it).
func (f *Formulation) Inject(busOf []int) ([]float64, error) {
	if len(busOf) != f.nT {
		return nil, fmt.Errorf("core: binding covers %d receivers, formulation has %d", len(busOf), f.nT)
	}
	relabel := make([]int, f.NumBuses)
	for k := range relabel {
		relabel[k] = -1
	}
	canon := make([]int, f.nT)
	next := 0
	for i, b := range busOf {
		if b < 0 || b >= f.NumBuses {
			return nil, fmt.Errorf("core: receiver %d on bus %d outside [0,%d)", i, b, f.NumBuses)
		}
		if relabel[b] == -1 {
			relabel[b] = next
			next++
		}
		canon[i] = relabel[b]
	}
	x := make([]float64, f.Problem.LP.NumVars)
	for i, k := range canon {
		x[f.xIdx(i, k)] = 1
	}
	per := make([]int64, f.NumBuses)
	for p, pr := range f.pairs {
		if canon[pr.i] != canon[pr.j] {
			continue
		}
		k := canon[pr.i]
		x[f.sbIdx(p, k)] = 1
		x[f.sIdx(p)] = 1
		per[k] += f.om.At(pr.i, pr.j)
	}
	if f.MaxovIdx >= 0 {
		var maxov int64
		for _, v := range per {
			if v > maxov {
				maxov = v
			}
		}
		x[f.MaxovIdx] = float64(maxov)
	}
	return x, nil
}

// Formulate builds the MILP for one candidate bus count with the
// default symmetry level. Callers that probe several bus counts for
// the same analysis should construct a Formulator once and use
// ForBusCount, which reuses the analysis-dependent skeleton.
func Formulate(a *trace.Analysis, conflicts [][]bool, numBuses, maxPerBus int, optimize bool) *Formulation {
	return NewFormulator(a, conflicts, maxPerBus, SymFull).ForBusCount(numBuses, optimize)
}

// Extract reads the receiver→bus binding out of a MILP solution.
func (f *Formulation) Extract(x []float64) ([]int, error) {
	busOf := make([]int, f.nT)
	for i := 0; i < f.nT; i++ {
		busOf[i] = -1
		for k := 0; k < f.NumBuses; k++ {
			if x[f.xIdx(i, k)] > 0.5 {
				if busOf[i] != -1 {
					return nil, fmt.Errorf("core: receiver %d bound to two buses", i)
				}
				busOf[i] = k
			}
		}
		if busOf[i] == -1 {
			return nil, fmt.Errorf("core: receiver %d unbound in MILP solution", i)
		}
	}
	return busOf, nil
}

// solveFormulated runs one bus-count probe against a shared
// Formulator. A cancellation of the underlying MILP search is
// re-labeled with the design-path sentinel so errors.Is(err,
// ErrCanceled) holds for every engine.
func solveFormulated(ctx context.Context, fr *Formulator, numBuses int, optimize bool, solver milp.Options) (*assignResult, error) {
	f := fr.ForBusCount(numBuses, optimize)
	solver.FirstFeasible = !optimize
	sol, err := milp.SolveCtx(ctx, f.Problem, solver)
	if err != nil {
		if errors.Is(err, milp.ErrCanceled) {
			return nil, fmt.Errorf("core: MILP solve (%d buses): %w: %w", numBuses, ErrCanceled, err)
		}
		return nil, fmt.Errorf("core: MILP solve (%d buses): %w", numBuses, err)
	}
	res := &assignResult{nodes: int64(sol.Nodes)}
	if sol.Status != lp.Optimal {
		return res, nil // infeasible for this bus count
	}
	busOf, err := f.Extract(sol.X)
	if err != nil {
		return nil, err
	}
	res.feasible = true
	res.busOf = busOf
	res.maxOverlap = MaxOverlapOfMatrix(fr.a.OM, numBuses, busOf)
	return res, nil
}

// solveMILP runs the paper-literal formulation for one bus count with
// a fresh Formulator — the compatibility entry point for callers that
// probe a single count.
func solveMILP(ctx context.Context, a *trace.Analysis, conflicts [][]bool, numBuses, maxPerBus int, optimize bool) (*assignResult, error) {
	fr := NewFormulator(a, conflicts, maxPerBus, SymFull)
	return solveFormulated(ctx, fr, numBuses, optimize, milp.Options{})
}

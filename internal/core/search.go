package core

import (
	"context"
	"errors"
)

// solveFunc probes one candidate bus count. It must be safe for
// concurrent calls with distinct contexts and deterministic for a
// given (k, optimize) pair.
type solveFunc func(ctx context.Context, k int, optimize bool) (*assignResult, error)

// searchMinFeasible finds the minimum k in [lb, ub] for which solve
// reports a feasible assignment, exploiting that feasibility is
// monotone in k. It returns best == -1 when the whole range is
// infeasible, along with the assignResult of the minimal feasible k
// and the summed solver nodes of all completed probes.
//
// With workers == 1 this is the classic binary search. With more
// workers it becomes a speculative multi-point bisection: each round
// probes up to `workers` evenly spaced candidate counts of the current
// range concurrently and narrows the range as the results land —
// first-decisive-wins, canceling sibling probes that a result has made
// redundant (a probe at k is redundant once a count ≤ k proved
// feasible or a count ≥ k proved infeasible).
//
// The returned bus count and binding are independent of both the
// worker count and goroutine scheduling: the range only narrows on
// proven facts, every round's probe points are chosen deterministically
// from the range bounds, and each per-count solve is deterministic, so
// the search always converges to the same minimal feasible k and the
// same assignResult for it. Only the node totals (how much speculative
// work was done) vary between runs.
func searchMinFeasible(ctx context.Context, lb, ub, workers int, solve solveFunc) (best int, bestRes *assignResult, nodes int64, err error) {
	best = -1
	lo, hi := lb, ub
	for lo <= hi {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return -1, nil, nodes, canceledErr(ctx)
		}
		ks := probePoints(lo, hi, workers)
		if len(ks) == 1 {
			res, solveErr := solve(ctx, ks[0], false)
			if solveErr != nil {
				return -1, nil, nodes, solveErr
			}
			nodes += res.nodes
			if res.feasible {
				best, bestRes = ks[0], res
				hi = ks[0] - 1
			} else {
				lo = ks[0] + 1
			}
			continue
		}

		// Speculative round: one goroutine per probe point, each with
		// its own cancelable context so decided siblings can stop it.
		type probeOutcome struct {
			k   int
			res *assignResult
			err error
		}
		cancels := make(map[int]context.CancelCauseFunc, len(ks))
		outcomes := make(chan probeOutcome, len(ks))
		for _, k := range ks {
			pctx, cancel := context.WithCancelCause(ctx)
			cancels[k] = cancel
			go func(k int, pctx context.Context) {
				res, solveErr := solve(pctx, k, false)
				outcomes <- probeOutcome{k: k, res: res, err: solveErr}
			}(k, pctx)
		}
		var roundErr error
		for range ks {
			oc := <-outcomes
			if oc.err != nil {
				// A probe canceled because a sibling's result obsoleted
				// it carries no information; every other error —
				// including a cancellation of the search itself — is
				// propagated after the round drains.
				if errors.Is(oc.err, ErrCanceled) && ctx.Err() == nil {
					continue
				}
				if roundErr == nil {
					roundErr = oc.err
				}
				continue
			}
			nodes += oc.res.nodes
			if oc.res.feasible {
				if best == -1 || oc.k < best {
					best, bestRes = oc.k, oc.res
				}
				if best-1 < hi {
					hi = best - 1
				}
			} else if oc.k+1 > lo {
				lo = oc.k + 1
			}
			for k, cancel := range cancels {
				if k < lo || k > hi {
					cancel(errObsolete)
				}
			}
		}
		for _, cancel := range cancels {
			cancel(nil)
		}
		if roundErr != nil {
			return -1, nil, nodes, roundErr
		}
	}
	return best, bestRes, nodes, nil
}

// probePoints picks up to w candidate counts splitting [lo, hi] into
// roughly equal segments — the multi-point generalization of the
// binary-search midpoint (w == 1 yields exactly the midpoint). The
// choice depends only on (lo, hi, w), keeping rounds deterministic.
func probePoints(lo, hi, w int) []int {
	n := hi - lo + 1
	if w > n {
		w = n
	}
	if w <= 1 {
		return []int{(lo + hi) / 2}
	}
	pts := make([]int, 0, w)
	last := lo - 1
	for i := 1; i <= w; i++ {
		k := lo + n*i/(w+1)
		if k > hi {
			k = hi
		}
		if k > last {
			pts = append(pts, k)
			last = k
		}
	}
	if len(pts) == 0 {
		pts = append(pts, (lo+hi)/2)
	}
	return pts
}

// searchBelowIncumbent is the warm variant of searchMinFeasible: a
// validated cached binding already proves feasibility at warmK, so only
// the counts below it are in question. It first probes warmK−1 — in the
// common small-delta case the cached count is still minimal and that
// single infeasible probe is the whole search — and only when the probe
// is feasible does it fall back to the full interval search on
// [lb, warmK−2]. Each per-count probe is deterministic, so the returned
// count and binding are exactly what searchMinFeasible would have
// found over the full range. The returned bestRes is nil when the
// incumbent's own count is the answer (warmK == lb, or the warmK−1
// probe infeasible): no probe at that count ran.
func searchBelowIncumbent(ctx context.Context, lb, warmK, workers int, solve solveFunc) (best int, bestRes *assignResult, nodes int64, err error) {
	if warmK <= lb {
		return lb, nil, 0, nil
	}
	res, err := solve(ctx, warmK-1, false)
	if err != nil {
		return -1, nil, 0, err
	}
	nodes = res.nodes
	if !res.feasible {
		return warmK, nil, nodes, nil
	}
	if warmK-2 < lb {
		return warmK - 1, res, nodes, nil
	}
	b2, fr, n2, err := searchMinFeasible(ctx, lb, warmK-2, workers, solve)
	nodes += n2
	if err != nil {
		return -1, nil, nodes, err
	}
	if b2 != -1 {
		return b2, fr, nodes, nil
	}
	return warmK - 1, res, nodes, nil
}

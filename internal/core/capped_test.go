package core

import (
	"errors"
	"testing"

	"repro/internal/trace"
)

// cappedAnalysis builds a problem whose feasibility dive is a few
// nodes but whose exact binding search is combinatorial: 8 receivers
// with pairwise overlaps, no conflicts, light loads, forced onto 3
// buses.
func cappedAnalysis(t *testing.T) *trace.Analysis {
	t.Helper()
	tr := &trace.Trace{NumReceivers: 8, NumSenders: 1, Horizon: 800}
	for r := 0; r < 8; r++ {
		// Every receiver shares [0,20), so all pairs overlap and any
		// grouping has a positive objective — no zero-cost shortcut
		// ends the binding search early.
		tr.Events = append(tr.Events,
			trace.Event{Start: 0, Len: 20 + 2*int64(r), Sender: 0, Receiver: r},
		)
	}
	a, err := trace.Analyze(tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestCappedBindingSurfaced is the regression test for the silent
// suboptimal-capped-binding bug: an optimize-mode solve that exhausts
// Options.MaxNodes used to return its greedy incumbent as if it were
// the proven optimum. The truncation must now surface as
// Design.Capped.
func TestCappedBindingSurfaced(t *testing.T) {
	a := cappedAnalysis(t)
	opts := Options{
		OverlapThreshold: -1,
		OptimizeBinding:  true,
		MinBuses:         3,
		Workers:          1,
		MaxNodes:         20, // enough for the feasibility dive, far short of the binding tree
	}
	capped, err := DesignCrossbar(a, opts)
	if err != nil {
		t.Fatalf("capped design errored: %v", err)
	}
	if !capped.Capped {
		t.Fatalf("node-budget-exhausted binding not flagged: %+v", capped)
	}

	opts.MaxNodes = 0 // default budget: the search completes
	full, err := DesignCrossbar(a, opts)
	if err != nil {
		t.Fatalf("uncapped design errored: %v", err)
	}
	if full.Capped {
		t.Fatalf("completed search flagged as capped: %+v", full)
	}
	if full.MaxBusOverlap > capped.MaxBusOverlap {
		t.Errorf("proven optimum %d worse than capped incumbent %d",
			full.MaxBusOverlap, capped.MaxBusOverlap)
	}
	// The capped run must still hand back a feasible binding (the
	// incumbent), just not a proven-optimal one.
	if err := capped.Validate(a, opts); err != nil {
		t.Errorf("capped incumbent violates constraints: %v", err)
	}
}

// TestCappedFeasibilityStillErrors pins the companion behavior: a
// feasibility-phase budget exhaustion has no incumbent to fall back on
// and must keep failing loudly with ErrSearchLimit rather than being
// misread as "infeasible".
func TestCappedFeasibilityStillErrors(t *testing.T) {
	a := cappedAnalysis(t)
	opts := Options{
		OverlapThreshold: 0.0001, // dense conflicts make the dive backtrack
		OptimizeBinding:  false,
		Workers:          1,
		MaxNodes:         2,
	}
	_, err := DesignCrossbar(a, opts)
	if !errors.Is(err, ErrSearchLimit) {
		t.Fatalf("want ErrSearchLimit from a 2-node budget, got %v", err)
	}
}

package core

import (
	"context"
	"testing"

	"repro/internal/benchprobs"
	"repro/internal/obs"
)

// recordedSolve runs one Analysis12 branch-and-bound design under a
// fresh flight recorder and returns both the design and the recording.
func recordedSolve(t *testing.T, workers int) (*Design, []obs.Event) {
	t.Helper()
	rec := obs.NewFlightRecorder(obs.DefaultFlightCapacity)
	ctx := obs.WithFlightRecorder(context.Background(), rec)
	opts := DefaultOptions()
	opts.Engine = EngineBranchBound
	opts.Workers = workers
	d, err := DesignCrossbarCtx(ctx, benchprobs.Analysis12(), opts)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	if rec.Dropped() != 0 {
		t.Fatalf("workers=%d: recording overwrote %d events — capacity too small for the golden test", workers, rec.Dropped())
	}
	return d, rec.Events()
}

func sameDesign(t *testing.T, label string, a, b *Design) {
	t.Helper()
	if a.NumBuses != b.NumBuses || a.MaxBusOverlap != b.MaxBusOverlap || a.Capped != b.Capped {
		t.Fatalf("%s: designs differ: (%d buses, obj %d, capped %v) vs (%d buses, obj %d, capped %v)",
			label, a.NumBuses, a.MaxBusOverlap, a.Capped, b.NumBuses, b.MaxBusOverlap, b.Capped)
	}
	if len(a.BusOf) != len(b.BusOf) {
		t.Fatalf("%s: binding lengths differ: %d vs %d", label, len(a.BusOf), len(b.BusOf))
	}
	for i := range a.BusOf {
		if a.BusOf[i] != b.BusOf[i] {
			t.Fatalf("%s: binding differs at receiver %d: %d vs %d", label, i, a.BusOf[i], b.BusOf[i])
		}
	}
}

// TestFlightGoldenCanonical pins the schedule-invariant canonical
// reduction of a fixed 12-receiver branch-and-bound solve: the same
// problem recorded at Workers=1 and Workers=8 must reduce to the same
// canonical event sequence, and that sequence itself is pinned here so
// a change to the search's decision structure (not just its schedule)
// fails loudly.
func TestFlightGoldenCanonical(t *testing.T) {
	d1, ev1 := recordedSolve(t, 1)
	d8, ev8 := recordedSolve(t, 8)

	// The determinism contract from the parallel solver carries over:
	// recording must not perturb the design, at any worker count.
	sameDesign(t, "w1 vs w8", d1, d8)

	c1, c8 := obs.Canonical(ev1), obs.Canonical(ev8)
	if diff := obs.DiffEvents(c1, c8); diff != "" {
		t.Fatalf("canonical recordings diverge across worker counts:\n%s", diff)
	}

	// Pinned canonical sequence for benchprobs.Analysis12 under
	// DefaultOptions + EngineBranchBound. The clique lower bound starts
	// the search at k=4, which is feasible outright (first binding at
	// objective 856), so no infeasible close survives the reduction;
	// the optimize pass then settles the objective at 432. Seq/T and
	// node counts are schedule artifacts already zeroed by Canonical.
	if d1.NumBuses != 4 || d1.MaxBusOverlap != 432 {
		t.Fatalf("design drifted from the golden instance: %d buses, objective %d (want 4, 432)",
			d1.NumBuses, d1.MaxBusOverlap)
	}
	want := []obs.Event{
		{Kind: obs.EvDesignStart, Val: 12, Who: "branch-and-bound"},
		{Kind: obs.EvProbeClose, K: 4, Who: "feasible", Val: 856},
		{Kind: obs.EvProbeClose, K: 4, Flag: true, Who: "feasible", Val: 432},
		{Kind: obs.EvDesignDone, K: 4, Val: 432},
	}
	if diff := obs.DiffEvents(want, c1); diff != "" {
		t.Fatalf("canonical recording diverged from the pinned golden sequence:\n%s", diff)
	}
}

// TestFlightRecordingDoesNotPerturbDesign pins the acceptance
// criterion that recorded and unrecorded solves produce bit-identical
// designs: the recorder is observation only.
func TestFlightRecordingDoesNotPerturbDesign(t *testing.T) {
	for _, workers := range []int{1, 8} {
		opts := DefaultOptions()
		opts.Engine = EngineBranchBound
		opts.Workers = workers
		bare, err := DesignCrossbarCtx(context.Background(), benchprobs.Analysis12(), opts)
		if err != nil {
			t.Fatal(err)
		}
		recorded, _ := recordedSolve(t, workers)
		sameDesign(t, "recorded vs unrecorded", bare, recorded)
	}
}

package core

import (
	"context"
	"errors"
	"sync"

	"repro/internal/milp"
	"repro/internal/obs"
	"repro/internal/trace"
)

// The portfolio engine races the two exact solvers — the (parallel)
// assignment branch and bound and the warm-started MILP — on every
// bus-count probe, under one cancelable context: the first PROVEN
// answer wins and cancels the sibling. The two have complementary
// strengths the race exploits: the assignment search dives to feasible
// bindings orders of magnitude faster (hundreds of nodes where the
// MILP needs LP solves), while the MILP's LP relaxation can prove a
// count infeasible at the root where the combinatorial search would
// enumerate forever. Neither answer is trusted beyond what it proved:
// budget-exhausted contestants (ErrSearchLimit / milp.ErrNodeLimit)
// and capped incumbents are only fallbacks, so a definitive result is
// exact no matter which engine produced it — objectives across engines
// are equal by optimality, which the differential harness enforces.
//
// In binding mode the race additionally runs annealing as an incumbent
// feeder: a deterministic anneal from the greedy binding publishes its
// objective into the shared bound the branch-and-bound workers prune
// against (strict comparison — see parallel.go for why fed bounds
// cannot change the returned binding), and the greedy binding is
// injected as the MILP's starting incumbent. Incumbents therefore flow
// between engines without either depending on the other's completion.

// portfolioMILPDivisor scales the assignment-search node budget down
// to the MILP contestant's: MILP nodes each pay an LP solve, so node
// for node they cost several hundred times more. The division keeps
// the two contestants' worst-case wall time in the same ballpark,
// which is what bounds a probe's latency when both must exhaust
// (the budgeted-minimality path).
const portfolioMILPDivisor = 400

// portfolioMILPVarLimit caps the formulation size (nT·k assignment
// binaries) the MILP contestant will enter the race with. Beyond it
// the dense simplex tableau alone is gigabytes (the constraint count
// grows with nT·k too), so the probe runs the assignment search alone
// — at the 128–512-receiver scale that is the engine that works, and
// the race would otherwise lose the machine to an allocation, not a
// search.
const portfolioMILPVarLimit = 2048

// portfolio bundles the per-design-run state shared by every probe of
// the portfolio engine. All fields are read-only after construction
// (the Formulator memoizes internally under its own locks), so probes
// may run concurrently — the speculative feasibility search does.
type portfolio struct {
	prob      *assignProblem
	fr        *Formulator
	a         *trace.Analysis
	conflicts [][]bool
	maxPerBus int
	workers   int
}

func newPortfolio(prob *assignProblem, a *trace.Analysis, conflicts [][]bool, maxPerBus, workers int) *portfolio {
	return &portfolio{
		prob:      prob,
		fr:        NewFormulator(a, conflicts, maxPerBus, SymFull),
		a:         a,
		conflicts: conflicts,
		maxPerBus: maxPerBus,
		workers:   workers,
	}
}

// milpBudget is the MILP contestant's node budget for one probe.
func (pf *portfolio) milpBudget() int {
	b := pf.prob.maxNodes / portfolioMILPDivisor
	if b < 1000 {
		b = 1000
	}
	return int(b)
}

// solve runs one bus-count probe as a race. The returned result is the
// first definitive one; when every contestant exhausts its budget the
// best capped incumbent is returned (capped=true), and with nothing at
// all in hand the probe fails with ErrSearchLimit exactly like a
// single-engine budget exhaustion.
func (pf *portfolio) solve(ctx context.Context, k int, optimize bool) (*assignResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, canceledErr(ctx)
	}
	rctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	rec := obs.FlightRecorderFrom(ctx)

	runMILP := pf.prob.nT*k <= portfolioMILPVarLimit
	milpOpts := milp.Options{MaxNodes: pf.milpBudget()}
	var feed *parShared
	if optimize {
		feed = newParShared()
		if gBus, gObj, ok := pf.prob.greedyBinding(k); ok {
			feed.offerBound(gObj)
			// MILP side: start from the greedy binding as incumbent.
			// (Gated: ForBusCount builds the formulation skeleton, which
			// is exactly the allocation the tractability cap avoids.)
			if runMILP {
				if inc, err := pf.fr.ForBusCount(k, true).Inject(gBus); err == nil {
					milpOpts.Incumbent = inc
				}
			}
			// Annealing feeder: improve the greedy binding in the
			// background and publish the objective into the shared bound
			// the branch-and-bound workers prune with. The anneal is
			// deterministic (fixed seed) and its bound is the objective
			// of a real validated binding, so feeding it cannot change
			// the branch and bound's answer — only how fast it gets
			// there (see the determinism contract in parallel.go).
			go func() {
				annBus, annObj := AnnealBinding(pf.a, pf.conflicts, k, pf.maxPerBus, gBus, AnnealParams{Seed: 1})
				if pf.prob.validBinding(k, annBus) {
					feed.offerBound(annObj)
					rec.Emit(obs.Event{Kind: obs.EvIncumbent, K: k, Val: annObj, Who: "anneal"})
				}
			}()
		}
	}

	type outcome struct {
		res  *assignResult
		err  error
		milp bool
	}
	ch := make(chan outcome, 2)
	contestants := 1
	go func() {
		res, err := pf.prob.solveAuto(rctx, k, optimize, pf.workers, nil, 0, feed)
		ch <- outcome{res, err, false}
	}()
	rec.Emit(obs.Event{Kind: obs.EvRaceStart, K: k, Who: "bb"})
	if runMILP {
		contestants++
		go func() {
			res, err := solveFormulated(rctx, pf.fr, k, optimize, milpOpts)
			ch <- outcome{res, err, true}
		}()
		rec.Emit(obs.Event{Kind: obs.EvRaceStart, K: k, Who: "milp"})
	}

	var fallback *assignResult // best capped incumbent, if any
	var hardErr error
	var exhausted bool
	for i := 0; i < contestants; i++ {
		oc := <-ch
		// The assignment search's node budget is the probe's wall-clock
		// governor: its nodes cost nanoseconds where MILP nodes cost LP
		// solves whose rate varies by orders of magnitude across
		// instances (a tightly infeasible probe can sit minutes inside
		// single LPs). So when the assignment side exhausts undecided,
		// the MILP sibling is canceled rather than waited for — it had
		// the assignment search's whole runtime to land its root
		// infeasibility proof, which is the regime it wins in.
		if !oc.milp && (oc.err != nil || oc.res.capped) {
			cancel(errObsolete)
			if contestants == 2 && i == 0 {
				rec.Emit(obs.Event{Kind: obs.EvRaceCancel, K: k, Who: "milp"})
			}
		}
		switch {
		case oc.err == nil && !oc.res.capped:
			// Definitive: proven feasible/infeasible/optimal. Cancel the
			// sibling and return without waiting for it — it unwinds on
			// the canceled context and only touches its own state.
			cancel(errObsolete)
			winner, loser := "bb", "milp"
			if oc.milp {
				winner, loser = "milp", "bb"
			}
			rec.Emit(obs.Event{Kind: obs.EvRaceWin, K: k, Who: winner})
			if contestants == 2 && i == 0 {
				rec.Emit(obs.Event{Kind: obs.EvRaceCancel, K: k, Who: loser})
			}
			if fallback != nil {
				oc.res.nodes += fallback.nodes
			}
			return oc.res, nil
		case oc.err == nil:
			// A capped incumbent: feasible but unproven. Keep the best.
			if fallback == nil || oc.res.maxOverlap < fallback.maxOverlap {
				prev := fallback
				fallback = oc.res
				if prev != nil {
					fallback.nodes += prev.nodes
				}
			} else {
				fallback.nodes += oc.res.nodes
			}
			exhausted = true
		case errors.Is(oc.err, ErrSearchLimit) || errors.Is(oc.err, milp.ErrNodeLimit):
			exhausted = true // out of budget with nothing to show
		case errors.Is(oc.err, ErrCanceled) && ctx.Err() == nil:
			// Canceled by us after a sibling decision — but a decision
			// would have returned above, so this is a sibling's hard
			// error having canceled the group; fall through to drain.
		default:
			if hardErr == nil {
				hardErr = oc.err
				cancel(oc.err)
			}
		}
	}
	if hardErr != nil {
		return nil, hardErr
	}
	if ctx.Err() != nil {
		return nil, canceledErr(ctx)
	}
	if fallback != nil {
		return fallback, nil
	}
	if exhausted {
		return nil, ErrSearchLimit
	}
	// Unreachable: two outcomes, none definitive, erroneous, or capped.
	return nil, ErrSearchLimit
}

// undecidedTracker records bus counts whose portfolio probe exhausted
// every contestant, implementing the anytime ("budgeted minimality")
// semantics of the portfolio's phase-1 search: undecided counts are
// optimistically treated as infeasible so the search keeps narrowing,
// and the final design is flagged Capped when its minimality rests on
// such an assumption.
type undecidedTracker struct {
	mu  sync.Mutex
	min int // lowest undecided count; -1 when none
	any bool
}

// wrap converts probe-level ErrSearchLimit into an "assume infeasible"
// outcome, recording the count.
func (u *undecidedTracker) wrap(solve solveFunc) solveFunc {
	u.min = -1
	return func(ctx context.Context, k int, optimize bool) (*assignResult, error) {
		res, err := solve(ctx, k, optimize)
		if err != nil && errors.Is(err, ErrSearchLimit) {
			u.mu.Lock()
			if !u.any || k < u.min {
				u.min = k
			}
			u.any = true
			u.mu.Unlock()
			return &assignResult{}, nil
		}
		return res, err
	}
}

// cappedBelow reports whether an undecided count undermines the
// minimality of best (best == -1 means nothing was proven feasible, so
// any undecided count does).
func (u *undecidedTracker) cappedBelow(best int) bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.any && (best == -1 || u.min < best)
}

// anyUndecided reports whether any probe came back undecided.
func (u *undecidedTracker) anyUndecided() bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.any
}

// greedyUpperBound scans bus counts upward from lb looking for the
// first count the greedy binding heuristic settles, returning it with
// its witness binding (nil when the bounded scan finds none). Each
// attempt costs microseconds against the exponential worst case of an
// exact probe, and a greedy success is a real feasibility proof, so
// the scan narrows the exact search range for free: the searched
// interval shrinks to [lb, gub-1] with gub already decided. The scan
// span is bounded — greedy either succeeds within a few counts of the
// lower bound or the instance is so conflict-dense that the exact
// probes are cheap anyway.
func greedyUpperBound(prob *assignProblem, lb, ub int) (int, *assignResult) {
	const span = 8
	for k := lb; k <= ub && k-lb <= span; k++ {
		if busOf, _, ok := prob.greedyBinding(k); ok {
			return k, &assignResult{
				feasible:   true,
				busOf:      busOf,
				maxOverlap: MaxOverlapOfMatrix(prob.om, k, busOf),
			}
		}
	}
	return -1, nil
}

package core

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/trace"
)

// stressAnalysis synthesizes a 32-receiver analysis — the largest
// STbus crossbar the paper mentions ("the largest possible STbus
// crossbar size ... is 32") — with pipeline-group structure and
// realistic duty cycles.
func stressAnalysis(t testing.TB, seed int64) *trace.Analysis {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	const nRecv = 32
	const horizon = 40000
	tr := &trace.Trace{NumReceivers: nRecv, NumSenders: 8, Horizon: horizon}
	for r := 0; r < nRecv; r++ {
		group := r % 4
		// Periodic bursts, group-phased, ~25% duty.
		period := int64(2000)
		offset := int64(group)*500 + rng.Int63n(60)
		for start := offset; start+500 < horizon; start += period {
			tr.Events = append(tr.Events, trace.Event{
				Start:    start,
				Len:      400 + rng.Int63n(100),
				Sender:   r % 8,
				Receiver: r,
			})
		}
	}
	a, err := trace.Analyze(tr, 2000)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestDesign32TargetsCompletesQuickly(t *testing.T) {
	a := stressAnalysis(t, 1)
	opts := DefaultOptions()
	start := time.Now()
	d, err := DesignCrossbar(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if err := d.Validate(a, opts); err != nil {
		t.Fatalf("32-target design invalid: %v", err)
	}
	// The paper reports "under a few hours" with CPLEX on 1-GHz
	// hardware at this size; the specialized solver must stay
	// interactive. The race detector slows the search loop by well
	// over an order of magnitude, so its budget is scaled up.
	budget := 30 * time.Second
	if raceEnabled {
		budget = 15 * time.Minute
	}
	if elapsed > budget {
		t.Errorf("32-target design took %v", elapsed)
	}
	t.Logf("32 targets: %d buses, %d conflicts, %d nodes in %v",
		d.NumBuses, d.Conflicts, d.SearchNodes, elapsed)
	// Sanity on the result: pipeline groups of 8 at ~25% in-slot duty
	// should pack a handful of receivers per bus, nowhere near full.
	if d.NumBuses >= 32 {
		t.Errorf("design degenerated to a full crossbar (%d buses)", d.NumBuses)
	}
}

func TestDesign32TargetsAnnealEngine(t *testing.T) {
	a := stressAnalysis(t, 2)
	opts := DefaultOptions()
	opts.Engine = EngineAnneal
	d, err := DesignCrossbar(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(a, opts); err != nil {
		t.Fatalf("anneal design invalid: %v", err)
	}
}

func TestDesignNodeLimitSurfaces(t *testing.T) {
	a := stressAnalysis(t, 3)
	opts := DefaultOptions()
	opts.MaxNodes = 3 // absurdly small: must fail loudly, not silently
	_, err := DesignCrossbar(a, opts)
	if err == nil {
		t.Skip("instance solved within 3 nodes; limit not exercised")
	}
	// Either the explicit limit error or a search failure is fine, but
	// it must not return a design.
}

package core

import (
	"math/rand"
	"testing"
)

func cliqueGraph(n int, edges [][2]int) [][]bool {
	g := make([][]bool, n)
	for i := range g {
		g[i] = make([]bool, n)
	}
	for _, e := range edges {
		g[e[0]][e[1]] = true
		g[e[1]][e[0]] = true
	}
	return g
}

func TestMaxCliqueHandCases(t *testing.T) {
	cases := []struct {
		n     int
		edges [][2]int
		want  int
	}{
		{0, nil, 0},
		{1, nil, 1},
		{3, nil, 1},
		{3, [][2]int{{0, 1}}, 2},
		{3, [][2]int{{0, 1}, {1, 2}, {0, 2}}, 3},
		// Two triangles sharing a vertex.
		{5, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}}, 3},
		// 4-cycle: max clique 2.
		{4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, 2},
		// K4 minus one edge: 3.
		{4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 3}}, 3},
	}
	for i, c := range cases {
		if got := maxClique(cliqueGraph(c.n, c.edges)); got != c.want {
			t.Errorf("case %d: maxClique = %d, want %d", i, got, c.want)
		}
	}
}

func TestMaxCliqueComplete(t *testing.T) {
	n := 12
	g := make([][]bool, n)
	for i := range g {
		g[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			g[i][j] = i != j
		}
	}
	if got := maxClique(g); got != n {
		t.Errorf("K%d clique = %d", n, got)
	}
}

// bruteClique enumerates all subsets (n <= 16).
func bruteClique(g [][]bool) int {
	n := len(g)
	best := 0
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		var members []int
		for v := 0; v < n && ok; v++ {
			if mask&(1<<v) == 0 {
				continue
			}
			for _, u := range members {
				if !g[u][v] {
					ok = false
					break
				}
			}
			members = append(members, v)
		}
		if ok && len(members) > best {
			best = len(members)
		}
	}
	return best
}

func TestMaxCliqueQuickAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(11)
		g := make([][]bool, n)
		for i := range g {
			g[i] = make([]bool, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) != 0 {
					g[i][j], g[j][i] = true, true
				}
			}
		}
		want := bruteClique(g)
		if got := maxClique(g); got != want {
			t.Errorf("seed %d: maxClique = %d, brute force %d", seed, got, want)
		}
		if gr := greedyClique(g); gr > want {
			t.Errorf("seed %d: greedy clique %d exceeds maximum %d", seed, gr, want)
		}
	}
}

package core

import (
	"math/rand"
	"testing"
)

func cliqueGraph(n int, edges [][2]int) [][]bool {
	g := make([][]bool, n)
	for i := range g {
		g[i] = make([]bool, n)
	}
	for _, e := range edges {
		g[e[0]][e[1]] = true
		g[e[1]][e[0]] = true
	}
	return g
}

func TestMaxCliqueHandCases(t *testing.T) {
	cases := []struct {
		n     int
		edges [][2]int
		want  int
	}{
		{0, nil, 0},
		{1, nil, 1},
		{3, nil, 1},
		{3, [][2]int{{0, 1}}, 2},
		{3, [][2]int{{0, 1}, {1, 2}, {0, 2}}, 3},
		// Two triangles sharing a vertex.
		{5, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}}, 3},
		// 4-cycle: max clique 2.
		{4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}, 2},
		// K4 minus one edge: 3.
		{4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {2, 3}}, 3},
	}
	for i, c := range cases {
		if got := maxClique(cliqueGraph(c.n, c.edges)); got != c.want {
			t.Errorf("case %d: maxClique = %d, want %d", i, got, c.want)
		}
	}
}

func TestMaxCliqueComplete(t *testing.T) {
	n := 12
	g := make([][]bool, n)
	for i := range g {
		g[i] = make([]bool, n)
		for j := 0; j < n; j++ {
			g[i][j] = i != j
		}
	}
	if got := maxClique(g); got != n {
		t.Errorf("K%d clique = %d", n, got)
	}
}

// bruteClique enumerates all subsets (n <= 16).
func bruteClique(g [][]bool) int {
	n := len(g)
	best := 0
	for mask := 0; mask < 1<<n; mask++ {
		ok := true
		var members []int
		for v := 0; v < n && ok; v++ {
			if mask&(1<<v) == 0 {
				continue
			}
			for _, u := range members {
				if !g[u][v] {
					ok = false
					break
				}
			}
			members = append(members, v)
		}
		if ok && len(members) > best {
			best = len(members)
		}
	}
	return best
}

func TestMaxCliqueQuickAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(11)
		g := make([][]bool, n)
		for i := range g {
			g[i] = make([]bool, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(3) != 0 {
					g[i][j], g[j][i] = true, true
				}
			}
		}
		want := bruteClique(g)
		if got := maxClique(g); got != want {
			t.Errorf("seed %d: maxClique = %d, brute force %d", seed, got, want)
		}
		if gr := greedyClique(g); gr > want {
			t.Errorf("seed %d: greedy clique %d exceeds maximum %d", seed, gr, want)
		}
	}
}

// TestMaxCliqueLargeAgainstSmall: random graphs straddling the
// single-word limit must agree between the multi-word exact search and
// the uint64 path (both exact, so equal — validated by running the same
// adjacency through both entry sizes via padding with isolated
// vertices).
func TestMaxCliqueLargeAgainstSmall(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed + 1000))
		n := 30 + rng.Intn(30) // 30..59: single-word path
		g := make([][]bool, n)
		for i := range g {
			g[i] = make([]bool, n)
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(4) != 0 {
					g[i][j], g[j][i] = true, true
				}
			}
		}
		want := maxClique(g)
		// Pad with isolated vertices past 64 so the same graph runs the
		// multi-word path; isolated vertices change the clique number
		// only when the graph is empty (clique 1).
		padded := cliqueGraph(70, nil)
		for i := 0; i < n; i++ {
			copy(padded[i], append(g[i], make([]bool, 70-n)...))
		}
		got := maxClique(padded)
		if want > 1 && got != want {
			t.Errorf("seed %d (n=%d): multi-word clique %d, single-word %d", seed, n, got, want)
		}
	}
}

// plantClique embeds a known k-clique into a sparse random graph on n
// vertices; the planted clique is the maximum when the background
// density is low enough that no larger clique arises by chance.
func plantClique(n, k int, density float64, seed int64) [][]bool {
	rng := rand.New(rand.NewSource(seed))
	g := make([][]bool, n)
	for i := range g {
		g[i] = make([]bool, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				g[i][j], g[j][i] = true, true
			}
		}
	}
	members := rng.Perm(n)[:k]
	for _, a := range members {
		for _, b := range members {
			if a != b {
				g[a][b] = true
			}
		}
	}
	return g
}

// TestMaxCliqueBeyond64 exercises the multi-word exact search at the
// sizes the scaled solver targets: 65, 128 and 512 vertices. The exact
// result must find the planted clique and never fall below the greedy
// bound (the fallback it replaces).
func TestMaxCliqueBeyond64(t *testing.T) {
	cases := []struct {
		n, k    int
		density float64
	}{
		{65, 9, 0.08},
		{128, 12, 0.06},
		{512, 16, 0.02},
	}
	for _, c := range cases {
		g := plantClique(c.n, c.k, c.density, int64(c.n))
		got := maxClique(g)
		if got < c.k {
			t.Errorf("n=%d: maxClique = %d, planted clique has %d", c.n, got, c.k)
		}
		if gr := greedyClique(g); got < gr {
			t.Errorf("n=%d: exact clique %d below greedy bound %d", c.n, got, gr)
		}
	}
}

// TestMaxCliqueBeyond64Structured pins exact values on structured
// graphs where the clique number is known by construction: disjoint
// K8 blocks (clique 8) and a complete multipartite graph with parts of
// size 4 (clique = number of parts).
func TestMaxCliqueBeyond64Structured(t *testing.T) {
	// 16 disjoint K8s on 128 vertices.
	g := cliqueGraph(128, nil)
	for blk := 0; blk < 16; blk++ {
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				if i != j {
					g[blk*8+i][blk*8+j] = true
				}
			}
		}
	}
	if got := maxClique(g); got != 8 {
		t.Errorf("disjoint K8s: clique = %d, want 8", got)
	}

	// Complete 32-partite graph with parts of 4 on 128 vertices:
	// vertices conflict unless they share a part; clique number 32.
	m := cliqueGraph(128, nil)
	for i := 0; i < 128; i++ {
		for j := 0; j < 128; j++ {
			if i != j && i/4 != j/4 {
				m[i][j] = true
			}
		}
	}
	if got := maxClique(m); got != 32 {
		t.Errorf("32-partite: clique = %d, want 32", got)
	}

	// 512-vertex complete multipartite: 64 parts of 8, clique 64.
	big := cliqueGraph(512, nil)
	for i := 0; i < 512; i++ {
		for j := 0; j < 512; j++ {
			if i != j && i/8 != j/8 {
				big[i][j] = true
			}
		}
	}
	if got := maxClique(big); got != 64 {
		t.Errorf("64-partite on 512: clique = %d, want 64", got)
	}
}

package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/benchprobs"
	"repro/internal/trace"
)

// parallelTestProblem builds an assignProblem from an analysis under
// the default conflict options.
func parallelTestProblem(t *testing.T, a *trace.Analysis, maxNodes int64) *assignProblem {
	t.Helper()
	return newAssignProblem(a, BuildConflicts(a, DefaultOptions()), 4, maxNodes)
}

func sameResult(t *testing.T, label string, seq, par *assignResult) {
	t.Helper()
	if seq.feasible != par.feasible {
		t.Fatalf("%s: feasible %v != sequential %v", label, par.feasible, seq.feasible)
	}
	if seq.maxOverlap != par.maxOverlap {
		t.Fatalf("%s: objective %d != sequential %d", label, par.maxOverlap, seq.maxOverlap)
	}
	if seq.capped != par.capped {
		t.Fatalf("%s: capped %v != sequential %v", label, par.capped, seq.capped)
	}
	if len(seq.busOf) != len(par.busOf) {
		t.Fatalf("%s: binding length %d != sequential %d", label, len(par.busOf), len(seq.busOf))
	}
	for i := range seq.busOf {
		if seq.busOf[i] != par.busOf[i] {
			t.Fatalf("%s: binding differs at receiver %d: %d != sequential %d\npar: %v\nseq: %v",
				label, i, par.busOf[i], seq.busOf[i], par.busOf, seq.busOf)
		}
	}
}

// TestSolveParallelBitIdentical is the core determinism contract: the
// parallel solver must return byte-identical results to the sequential
// one at every worker count, in both feasibility and optimize mode,
// across a spread of instances and bus counts.
func TestSolveParallelBitIdentical(t *testing.T) {
	analyses := map[string]*trace.Analysis{
		"analysis8":  benchprobs.Analysis8(),
		"analysis12": benchprobs.Analysis12(),
	}
	for seed := int64(1); seed <= 3; seed++ {
		tr := benchprobs.PerturbTrace(benchprobs.TraceN(12), 0.3, seed)
		a, err := trace.Analyze(tr, benchprobs.AnalysisWindow)
		if err != nil {
			t.Fatal(err)
		}
		analyses["perturbed12"] = a
	}
	ctx := context.Background()
	for name, a := range analyses {
		prob := parallelTestProblem(t, a, 0)
		lb := prob.lowerBound()
		for k := lb; k <= lb+2 && k <= prob.nT; k++ {
			for _, optimize := range []bool{false, true} {
				seq, err := prob.solveSeeded(ctx, k, optimize, nil, 0)
				if err != nil {
					t.Fatalf("%s k=%d: sequential: %v", name, k, err)
				}
				for _, workers := range []int{2, 3, 8} {
					par, err := prob.solveParallel(ctx, k, optimize, workers, nil, 0, nil)
					if err != nil {
						t.Fatalf("%s k=%d w=%d: parallel: %v", name, k, workers, err)
					}
					label := name
					if optimize {
						label += "/opt"
					}
					sameResult(t, label, seq, par)
				}
			}
		}
	}
}

// TestSolveParallelSeeded checks the warm-incumbent path: seeding the
// parallel solver with a valid binding must leave the result identical
// to both the seeded and the unseeded sequential solve.
func TestSolveParallelSeeded(t *testing.T) {
	a := benchprobs.Analysis12()
	prob := parallelTestProblem(t, a, 0)
	ctx := context.Background()
	k := prob.lowerBound() + 1
	base, err := prob.solveSeeded(ctx, k, true, nil, 0)
	if err != nil || !base.feasible {
		t.Fatalf("baseline solve: feasible=%v err=%v", base != nil && base.feasible, err)
	}
	seedBus := base.busOf
	seedObj := base.maxOverlap
	for _, workers := range []int{2, 8} {
		par, err := prob.solveParallel(ctx, k, true, workers, seedBus, seedObj, nil)
		if err != nil {
			t.Fatalf("w=%d: %v", workers, err)
		}
		sameResult(t, "seeded", base, par)
	}
}

// TestSolveParallelFedBound checks that an externally fed shared bound
// (the annealing feeder of the portfolio) cannot change the answer —
// only how much is explored. The fed bound is the known optimum, the
// most aggressive valid feed possible.
func TestSolveParallelFedBound(t *testing.T) {
	a := benchprobs.Analysis12()
	prob := parallelTestProblem(t, a, 0)
	ctx := context.Background()
	k := prob.lowerBound()
	seq, err := prob.solveSeeded(ctx, k, true, nil, 0)
	if err != nil || !seq.feasible {
		t.Fatalf("sequential: feasible=%v err=%v", seq != nil && seq.feasible, err)
	}
	feed := newParShared()
	feed.offerBound(seq.maxOverlap) // optimum, as if annealing found it instantly
	par, err := prob.solveParallel(ctx, k, true, 4, nil, 0, feed)
	if err != nil {
		t.Fatalf("fed parallel: %v", err)
	}
	sameResult(t, "fed", seq, par)
}

// TestSolveParallelCancellation cancels a deliberately hopeless solve
// (32 receivers one bus count below feasibility, which exhausts any
// budget) and expects a prompt wrapped ErrCanceled from the workers.
func TestSolveParallelCancellation(t *testing.T) {
	a := benchprobs.Analysis32()
	prob := parallelTestProblem(t, a, 0)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := prob.solveParallel(ctx, prob.lowerBound(), false, 4, nil, 0, nil)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, ErrCanceled) {
			t.Fatalf("got %v, want ErrCanceled", err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("cancellation took %v", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parallel solve ignored cancellation")
	}
}

// TestSolveParallelSharedIncumbentStress hammers the shared incumbent
// from a racing feeder goroutine while repeated parallel solves run —
// meaningful under -race, and a determinism check besides: every
// iteration must reproduce the same binding.
func TestSolveParallelSharedIncumbentStress(t *testing.T) {
	a := benchprobs.Analysis12()
	prob := parallelTestProblem(t, a, 0)
	ctx := context.Background()
	k := prob.lowerBound()
	seq, err := prob.solveSeeded(ctx, k, true, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 8; iter++ {
		feed := newParShared()
		stop := make(chan struct{})
		go func() {
			// Feed progressively tighter valid bounds, racing the workers.
			for obj := seq.maxOverlap + 3; obj >= seq.maxOverlap; obj-- {
				feed.offerBound(obj)
			}
			close(stop)
		}()
		par, err := prob.solveParallel(ctx, k, true, 8, nil, 0, feed)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		<-stop
		sameResult(t, "stress", seq, par)
	}
}

// TestPortfolioMatchesBranchBound runs the full design through both
// engines on instances the branch and bound settles exactly: bus count
// and objective must agree (bindings may differ — the race winner's
// binding is returned).
func TestPortfolioMatchesBranchBound(t *testing.T) {
	for _, tc := range []struct {
		name string
		a    *trace.Analysis
	}{
		{"analysis8", benchprobs.Analysis8()},
		{"analysis12", benchprobs.Analysis12()},
	} {
		opts := DefaultOptions()
		opts.Workers = 2
		ref, err := DesignCrossbar(tc.a, opts)
		if err != nil {
			t.Fatalf("%s: branch-and-bound: %v", tc.name, err)
		}
		opts.Engine = EnginePortfolio
		got, err := DesignCrossbar(tc.a, opts)
		if err != nil {
			t.Fatalf("%s: portfolio: %v", tc.name, err)
		}
		if got.NumBuses != ref.NumBuses || got.MaxBusOverlap != ref.MaxBusOverlap {
			t.Fatalf("%s: portfolio (%d buses, obj %d) != branch-and-bound (%d buses, obj %d)",
				tc.name, got.NumBuses, got.MaxBusOverlap, ref.NumBuses, ref.MaxBusOverlap)
		}
		if got.Capped {
			t.Fatalf("%s: portfolio capped on an instance branch-and-bound settles", tc.name)
		}
		if err := got.Validate(tc.a, opts); err != nil {
			t.Fatalf("%s: portfolio design invalid: %v", tc.name, err)
		}
	}
}

// TestPortfolioObjectiveDeterminism re-runs the portfolio design and
// expects the same bus count and objective every time (the binding may
// come from either racing engine, but both are exact).
func TestPortfolioObjectiveDeterminism(t *testing.T) {
	a := benchprobs.Analysis12()
	opts := DefaultOptions()
	opts.Engine = EnginePortfolio
	opts.Workers = 4
	first, err := DesignCrossbar(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		d, err := DesignCrossbar(a, opts)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if d.NumBuses != first.NumBuses || d.MaxBusOverlap != first.MaxBusOverlap {
			t.Fatalf("run %d: (%d buses, obj %d) != first run (%d buses, obj %d)",
				i, d.NumBuses, d.MaxBusOverlap, first.NumBuses, first.MaxBusOverlap)
		}
	}
}

// TestLargeInstanceOptimality designs the 128-receiver production-scale
// instance to audited-equivalent optimality within the default budget:
// the exact clique bound (43 conflicting same-phase receivers) must
// meet the achieved count, proving minimality without search, and the
// binding objective must be the true optimum of the block-diagonal
// overlap structure, zero.
func TestLargeInstanceOptimality(t *testing.T) {
	for _, tc := range []struct {
		name  string
		a     *trace.Analysis
		buses int
	}{
		{"analysis128", benchprobs.Analysis128(), 43},
		{"analysis256", benchprobs.Analysis256(), 86},
		{"analysis512", benchprobs.Analysis512(), 171},
	} {
		prob := parallelTestProblem(t, tc.a, 0)
		if lb := prob.lowerBound(); lb != tc.buses {
			t.Fatalf("%s: lower bound %d, want %d (clique bound should be exact)", tc.name, lb, tc.buses)
		}
		for _, engine := range []Engine{EngineBranchBound, EnginePortfolio} {
			opts := DefaultOptions()
			opts.Engine = engine
			opts.Workers = 4
			d, err := DesignCrossbar(tc.a, opts)
			if err != nil {
				t.Fatalf("%s/%v: %v", tc.name, engine, err)
			}
			if d.NumBuses != tc.buses {
				t.Fatalf("%s/%v: %d buses, want %d", tc.name, engine, d.NumBuses, tc.buses)
			}
			if d.MaxBusOverlap != 0 {
				t.Fatalf("%s/%v: objective %d, want 0", tc.name, engine, d.MaxBusOverlap)
			}
			if d.Capped {
				t.Fatalf("%s/%v: capped, want proven", tc.name, engine)
			}
			if err := d.Validate(tc.a, opts); err != nil {
				t.Fatalf("%s/%v: invalid design: %v", tc.name, engine, err)
			}
		}
	}
}

package core

import (
	"math"
	"math/rand"

	"repro/internal/trace"
)

// AnnealParams tunes the simulated-annealing binding optimizer.
type AnnealParams struct {
	// Iterations is the number of proposed moves (0 = default).
	Iterations int
	// Seed makes the anneal deterministic.
	Seed int64
	// StartTemp and EndTemp bound the geometric cooling schedule, in
	// units of the overlap objective. Zero values pick defaults scaled
	// to the instance.
	StartTemp, EndTemp float64
}

// AnnealBinding improves a feasible binding by simulated annealing on
// the binding objective (maximum per-bus aggregate overlap, paper
// Eq. 11). It is a heuristic alternative to the exact branch-and-bound
// binding phase for instances near the STbus limit of 32 targets,
// where the exact search may be slow. Moves relocate one receiver to
// another bus or swap two receivers, and are only accepted when the
// result stays feasible (bandwidth, conflicts, cap).
//
// The starting binding must be feasible for (numBuses, maxPerBus);
// DesignCrossbar's feasibility phase provides one.
func AnnealBinding(a *trace.Analysis, conflicts [][]bool, numBuses, maxPerBus int, start []int, params AnnealParams) ([]int, int64) {
	p := newAssignProblem(a, conflicts, maxPerBus, 0)
	nT := p.nT
	nW := len(p.ws)
	if params.Iterations <= 0 {
		params.Iterations = 4000 * nT
	}

	busOf := append([]int(nil), start...)
	load := make([][]int64, numBuses)
	for b := range load {
		load[b] = make([]int64, nW)
	}
	count := make([]int, numBuses)
	overlap := make([]int64, numBuses)
	for r, b := range busOf {
		count[b]++
		for w := 0; w < nW; w++ {
			load[b][w] += p.comm[r][w]
		}
	}
	for i := 0; i < nT; i++ {
		for j := i + 1; j < nT; j++ {
			if busOf[i] == busOf[j] {
				overlap[busOf[i]] += p.om.At(i, j)
			}
		}
	}
	objective := func() int64 {
		var m int64
		for _, v := range overlap {
			if v > m {
				m = v
			}
		}
		return m
	}

	// pairDelta is the overlap receiver r contributes to bus b
	// (excluding a receiver being moved away in the same step).
	pairDelta := func(r, b, exclude int) int64 {
		var d int64
		for other, ob := range busOf {
			if ob == b && other != r && other != exclude {
				d += p.om.At(r, other)
			}
		}
		return d
	}
	fitsBandwidth := func(r, b int) bool {
		for w := 0; w < nW; w++ {
			if load[b][w]+p.comm[r][w] > p.ws[w] {
				return false
			}
		}
		return true
	}
	conflictFree := func(r, b, exclude int) bool {
		for other, ob := range busOf {
			if ob == b && other != r && other != exclude && p.conflict[r][other] {
				return false
			}
		}
		return true
	}
	apply := func(r, from, to int) {
		d := pairDelta(r, from, -1)
		overlap[from] -= d
		overlap[to] += pairDelta(r, to, -1)
		count[from]--
		count[to]++
		for w := 0; w < nW; w++ {
			load[from][w] -= p.comm[r][w]
			load[to][w] += p.comm[r][w]
		}
		busOf[r] = to
	}

	best := append([]int(nil), busOf...)
	bestObj := objective()
	cur := bestObj

	startTemp := params.StartTemp
	if startTemp <= 0 {
		startTemp = float64(bestObj)/2 + 1
	}
	endTemp := params.EndTemp
	if endTemp <= 0 {
		endTemp = startTemp / 1000
	}
	cooling := math.Pow(endTemp/startTemp, 1/float64(params.Iterations))
	temp := startTemp
	rng := rand.New(rand.NewSource(params.Seed))

	for it := 0; it < params.Iterations; it++ {
		temp *= cooling
		r := rng.Intn(nT)
		from := busOf[r]
		to := rng.Intn(numBuses)
		if to == from {
			continue
		}
		var undo func()
		if rng.Intn(2) == 0 {
			// Relocate r to bus `to`.
			if count[to] >= maxPerBus || !conflictFree(r, to, -1) || !fitsBandwidth(r, to) {
				continue
			}
			apply(r, from, to)
			undo = func() { apply(r, to, from) }
		} else {
			// Swap r with a receiver on bus `to`.
			var candidates []int
			for other, ob := range busOf {
				if ob == to {
					candidates = append(candidates, other)
				}
			}
			if len(candidates) == 0 {
				continue
			}
			s := candidates[rng.Intn(len(candidates))]
			if !conflictFree(r, to, s) || !conflictFree(s, from, r) {
				continue
			}
			// Bandwidth with both displaced.
			ok := true
			for w := 0; w < nW; w++ {
				if load[to][w]-p.comm[s][w]+p.comm[r][w] > p.ws[w] ||
					load[from][w]-p.comm[r][w]+p.comm[s][w] > p.ws[w] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			apply(r, from, to)
			apply(s, to, from)
			undo = func() {
				apply(r, to, from)
				apply(s, from, to)
			}
		}
		next := objective()
		if next <= cur || rng.Float64() < math.Exp(float64(cur-next)/temp) {
			cur = next
			if cur < bestObj {
				bestObj = cur
				copy(best, busOf)
			}
			continue
		}
		undo()
	}
	return best, bestObj
}

package core

import (
	"context"
	"sort"

	"repro/internal/ds"
	"repro/internal/obs"
	"repro/internal/trace"
)

// assignProblem is the specialized exact solver for the crossbar
// feasibility and binding problems. It exploits the assignment
// structure directly instead of going through the generic MILP: targets
// are placed one at a time (heaviest first) into buses under
// bandwidth/conflict/cap constraints, with symmetry breaking (a target
// may open at most one new bus) and capacity-based pruning.
type assignProblem struct {
	nT int
	// Reduced window view: only Pareto-maximal windows are kept for the
	// bandwidth constraints (a window whose per-target loads are all
	// dominated by another window can never be the binding constraint).
	ws   []int64   // reduced window lengths
	comm [][]int64 // comm[t][reduced window]

	conflict  [][]bool
	maxPerBus int
	om        *ds.SymMatrix
	order     []int // visit order (decreasing total demand)
	maxNodes  int64
}

// assignResult is the outcome of one solve.
type assignResult struct {
	feasible   bool
	busOf      []int
	maxOverlap int64
	nodes      int64
	// capped marks an optimize-mode solve whose node budget ran out
	// before the search tree was exhausted: busOf is the best incumbent
	// found, not a proven optimum.
	capped bool
}

const defaultMaxNodes = 20_000_000

func newAssignProblem(a *trace.Analysis, conflicts [][]bool, maxPerBus int, maxNodes int64) *assignProblem {
	if maxNodes <= 0 {
		maxNodes = defaultMaxNodes
	}
	nT := a.NumReceivers
	keep := reduceWindows(a)
	p := &assignProblem{
		nT:        nT,
		ws:        make([]int64, len(keep)),
		comm:      make([][]int64, nT),
		conflict:  conflicts,
		maxPerBus: maxPerBus,
		om:        a.OM,
		maxNodes:  maxNodes,
	}
	for wi, m := range keep {
		p.ws[wi] = a.WindowLen(m)
	}
	for t := 0; t < nT; t++ {
		p.comm[t] = make([]int64, len(keep))
		for wi, m := range keep {
			p.comm[t][wi] = a.Comm.At(t, m)
		}
	}
	// Heaviest-demand-first ordering makes infeasibility surface early.
	p.order = make([]int, nT)
	totals := make([]int64, nT)
	for t := 0; t < nT; t++ {
		p.order[t] = t
		for _, v := range p.comm[t] {
			totals[t] += v
		}
	}
	sort.SliceStable(p.order, func(x, y int) bool { return totals[p.order[x]] > totals[p.order[y]] })
	return p
}

// reduceWindows returns indices of windows that are not dominated:
// window m dominates m' when every target's load in m is ≥ its load in
// m' and m's length is ≤ m' (tighter capacity, higher demand).
func reduceWindows(a *trace.Analysis) []int {
	nW := a.NumWindows()
	nT := a.NumReceivers
	keep := make([]int, 0, nW)
	dominated := make([]bool, nW)
	for m := 0; m < nW; m++ {
		if dominated[m] {
			continue
		}
		for m2 := 0; m2 < nW; m2++ {
			if m2 == m || dominated[m2] {
				continue
			}
			// Does m dominate m2?
			if a.WindowLen(m) > a.WindowLen(m2) {
				continue
			}
			dom := true
			for t := 0; t < nT; t++ {
				if a.Comm.At(t, m) < a.Comm.At(t, m2) {
					dom = false
					break
				}
			}
			if dom {
				dominated[m2] = true
			}
		}
	}
	for m := 0; m < nW; m++ {
		if !dominated[m] {
			keep = append(keep, m)
		}
	}
	return keep
}

// lowerBound computes an analytic lower bound on the feasible bus
// count: peak windowed demand, the targets-per-bus cap, and a greedy
// clique of the conflict graph.
func (p *assignProblem) lowerBound() int {
	lb := 1
	// Bandwidth bound per reduced window.
	for wi, ws := range p.ws {
		var sum int64
		for t := 0; t < p.nT; t++ {
			sum += p.comm[t][wi]
		}
		if need := int((sum + ws - 1) / ws); need > lb {
			lb = need
		}
	}
	// Cap bound.
	if need := (p.nT + p.maxPerBus - 1) / p.maxPerBus; need > lb {
		lb = need
	}
	// Conflict-clique bound: all members of a clique need distinct
	// buses. Exact at STbus sizes (see clique.go).
	if c := maxClique(p.conflict); c > lb {
		lb = c
	}
	return lb
}

// searchState is the mutable backtracking state of one solve.
type searchState struct {
	p        *assignProblem
	ctx      context.Context
	nB       int
	busOf    []int     // target -> bus (-1 unassigned)
	load     [][]int64 // load[bus][reduced window]
	count    []int     // targets per bus
	overlap  []int64   // per-bus aggregate pairwise overlap
	total    []int64   // summed load per reduced window (for the global prune)
	suffix   [][]int64 // suffix[idx][w]: demand of targets order[idx:]
	used     int       // buses opened so far
	nodes    int64
	flushed  int64               // nodes already published to the core.solver_nodes metric
	rec      *obs.FlightRecorder // flight journal (nil-safe; looked up once per solve)
	best     int64               // incumbent objective (binding mode)
	bestBus  []int
	optimize bool
	capped   bool  // node budget exhausted
	stopErr  error // context cancellation observed mid-search

	// Parallel-solve fields (see parallel.go). par is nil on the
	// sequential path, keeping it bit-identical to the pre-parallel
	// solver; when set, the worker prunes against the cross-worker
	// incumbent, charges nodes to the shared budget, and abandons
	// feasibility subtrees outranked by an already-found witness.
	par     *parShared
	subtree int  // index of the frontier subtree being explored
	aborted bool // feasibility subtree abandoned (lower-index witness exists)
}

// cancelCheckMask throttles context polling in the hot search loop:
// the context is consulted once every cancelCheckMask+1 nodes, cheap
// enough to be invisible yet prompt against any realistic deadline.
const cancelCheckMask = 1023

// solve finds a feasible assignment into nB buses; with optimize set it
// continues to the minimum-max-overlap binding (branch and bound seeded
// by a greedy incumbent). The context is polled at node-expansion
// boundaries; cancellation surfaces as a wrapped ErrCanceled.
func (p *assignProblem) solve(ctx context.Context, nB int, optimize bool) (*assignResult, error) {
	return p.solveSeeded(ctx, nB, optimize, nil, 0)
}

// solveSeeded is solve with an optional external warm incumbent for the
// optimize mode: a known-feasible binding (seedBus, already validated by
// the caller) with objective seedObj on THIS problem. When the seed
// beats the greedy incumbent it becomes the starting incumbent with the
// bound tightened to seedObj+1, pruning every subtree that cannot
// strictly improve on it.
//
// The +1 keeps the output bit-identical to the unseeded solve. Let G be
// the greedy incumbent's objective and opt the true optimum.
//
//   - If opt < G, the unseeded search returns the first
//     depth-first binding achieving opt (each improvement overwrites
//     st.bestBus, and once st.best == opt no later equal binding can
//     displace it). Since seedObj ≥ opt, the seeded bound
//     min(G, seedObj+1) is still > opt, so every prefix of that first
//     opt-achiever (prefix overlaps ≤ opt < bound) survives pruning and
//     it is again the last binding recorded.
//   - If opt == G, then seedObj ≥ opt = G means seedObj+1 > G: the seed
//     does not tighten the bound, and the search is the unseeded one.
//
// Either way the returned binding is exactly the unseeded one; the seed
// only prunes subtrees that could not contain it.
func (p *assignProblem) solveSeeded(ctx context.Context, nB int, optimize bool, seedBus []int, seedObj int64) (*assignResult, error) {
	if nB <= 0 {
		return &assignResult{}, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, canceledErr(ctx)
	}
	st := p.newSearchState(ctx, nB, optimize, nil)

	if optimize {
		// Seed the incumbent with a greedy min-overlap binding so the
		// branch and bound starts with a good bound.
		if busOf, obj, ok := p.greedyBinding(nB); ok {
			st.best = obj
			st.bestBus = busOf
			st.rec.Emit(obs.Event{Kind: obs.EvIncumbent, K: nB, Val: obj, Who: "greedy"})
		}
		// An external warm incumbent tightens the bound further (see the
		// solveSeeded contract for why +1 preserves bit-identity).
		if seedBus != nil && seedObj+1 < st.best {
			st.best = seedObj + 1
			st.bestBus = append([]int(nil), seedBus...)
		}
	}

	found := st.dfs(0, 0)
	metNodes.Add(st.nodes - st.flushed)
	res := &assignResult{nodes: st.nodes}
	if st.stopErr != nil {
		return nil, st.stopErr
	}
	if st.capped && !found && st.bestBus == nil {
		return nil, ErrSearchLimit
	}
	if optimize {
		if st.bestBus == nil {
			return res, nil // infeasible
		}
		res.feasible = true
		res.busOf = st.bestBus
		res.maxOverlap = st.best
		// A truncated optimality search still holds a feasible
		// incumbent, but it is not proven optimal — surface that
		// instead of passing the incumbent off as the optimum.
		res.capped = st.capped
		return res, nil
	}
	if !found {
		return res, nil
	}
	res.feasible = true
	res.busOf = append([]int(nil), st.busOf...)
	res.maxOverlap = MaxOverlapOfMatrix(p.om, nB, res.busOf)
	return res, nil
}

// newSearchState builds the backtracking state for one solve of p into
// nB buses. suffix, when non-nil, is a prebuilt suffix-demand table
// shared read-only across parallel workers; nil computes it fresh.
func (p *assignProblem) newSearchState(ctx context.Context, nB int, optimize bool, suffix [][]int64) *searchState {
	nW := len(p.ws)
	st := &searchState{
		p:        p,
		ctx:      ctx,
		rec:      obs.FlightRecorderFrom(ctx),
		nB:       nB,
		busOf:    make([]int, p.nT),
		load:     make([][]int64, nB),
		count:    make([]int, nB),
		overlap:  make([]int64, nB),
		total:    make([]int64, nW),
		suffix:   suffix,
		optimize: optimize,
		best:     int64(1) << 62,
	}
	for t := range st.busOf {
		st.busOf[t] = -1
	}
	for b := range st.load {
		st.load[b] = make([]int64, nW)
	}
	if st.suffix == nil {
		st.suffix = make([][]int64, p.nT+1)
		st.suffix[p.nT] = make([]int64, nW)
		for idx := p.nT - 1; idx >= 0; idx-- {
			st.suffix[idx] = make([]int64, nW)
			t := p.order[idx]
			for w := 0; w < nW; w++ {
				st.suffix[idx][w] = st.suffix[idx+1][w] + p.comm[t][w]
			}
		}
	}
	return st
}

// dfs places targets order[idx:]; curMax is the running binding
// objective. In feasibility mode it returns true at the first complete
// assignment (leaving st.busOf filled); in optimize mode it records
// improvements into st.bestBus and always returns false so the search
// exhausts (subject to pruning).
func (st *searchState) dfs(idx int, curMax int64) bool {
	p := st.p
	st.nodes++
	if st.par == nil && st.nodes > p.maxNodes {
		st.capped = true
		return false
	}
	if st.nodes&cancelCheckMask == 0 {
		delta := st.nodes - st.flushed
		metNodes.Add(delta)
		st.rec.Emit(obs.Event{Kind: obs.EvNodes, K: st.nB, Val: delta, Who: "bb"})
		if st.par != nil {
			// The budget is shared across workers: charge this worker's
			// delta and stop once the global count runs out.
			global := st.par.nodes.Add(delta)
			st.flushed = st.nodes
			if global > p.maxNodes {
				st.capped = true
				return false
			}
			if !st.optimize && st.par.bestFeas.Load() < int64(st.subtree) {
				st.aborted = true // a lower-index subtree holds a witness
				return false
			}
		} else {
			st.flushed = st.nodes
		}
		if err := st.ctx.Err(); err != nil {
			st.stopErr = canceledErr(st.ctx)
			st.capped = true // unwind through the capped fast path
			return false
		}
	}
	if idx == p.nT {
		if st.optimize {
			if curMax < st.best {
				st.best = curMax
				st.bestBus = append([]int(nil), st.busOf...)
				st.rec.Emit(obs.Event{Kind: obs.EvIncumbent, K: st.nB,
					Val: curMax, Aux: int64(st.subtree), Who: "bb"})
				if st.par != nil {
					st.par.offerBound(curMax)
				}
			}
			return false
		}
		return true
	}
	t := p.order[idx]
	nW := len(p.ws)
	// Global capacity prune: remaining demand must fit the remaining
	// capacity across all buses.
	for w := 0; w < nW; w++ {
		if st.suffix[idx][w] > int64(st.nB)*p.ws[w]-st.total[w] {
			return false
		}
	}
	limit := st.used
	if limit >= st.nB {
		limit = st.nB - 1 // no new bus available
	}
	for b := 0; b <= limit; b++ {
		if st.count[b] >= p.maxPerBus {
			continue
		}
		// Conflict check against current members of bus b.
		ok := true
		for other, ob := range st.busOf {
			if ob == b && p.conflict[t][other] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// Bandwidth check (Eq. 4) on the reduced windows.
		for w := 0; w < nW; w++ {
			if st.load[b][w]+p.comm[t][w] > p.ws[w] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		// Binding objective bookkeeping and bound.
		var added int64
		if st.optimize {
			for other, ob := range st.busOf {
				if ob == b {
					added += p.om.At(t, other)
				}
			}
			newOv := st.overlap[b] + added
			if newOv >= st.best {
				continue // cannot improve the incumbent
			}
			// Cross-worker incumbent: st.par.bound holds the objective of
			// a binding some worker (or the annealing feeder) has already
			// realized, so strictly worse subtrees are dead. The
			// comparison is strict — ties are still explored — which is
			// what keeps parallel bindings bit-identical to sequential
			// (see the determinism contract in parallel.go).
			if st.par != nil && newOv > st.par.bound.Load() {
				continue
			}
		}
		// Place.
		newBus := b == st.used
		if newBus {
			st.used++
		}
		st.busOf[t] = b
		st.count[b]++
		st.overlap[b] += added
		for w := 0; w < nW; w++ {
			st.load[b][w] += p.comm[t][w]
			st.total[w] += p.comm[t][w]
		}
		next := curMax
		if st.overlap[b] > next {
			next = st.overlap[b]
		}
		if st.dfs(idx+1, next) {
			return true // feasibility mode: keep the assignment in place
		}
		// Undo.
		st.busOf[t] = -1
		st.count[b]--
		st.overlap[b] -= added
		for w := 0; w < nW; w++ {
			st.load[b][w] -= p.comm[t][w]
			st.total[w] -= p.comm[t][w]
		}
		if newBus {
			st.used--
		}
		if st.capped || st.aborted {
			return false
		}
	}
	return false
}

// validBinding reports whether busOf is a feasible binding of every
// target into nB buses under this problem's conflict, cap and reduced-
// window bandwidth constraints. It is the gate for externally supplied
// (cached) bindings: O(nT² + nB·nW) — cheap enough to run on every
// candidate, so cached state never has to be trusted.
func (p *assignProblem) validBinding(nB int, busOf []int) bool {
	if nB <= 0 || len(busOf) != p.nT {
		return false
	}
	count := make([]int, nB)
	for t, b := range busOf {
		if b < 0 || b >= nB {
			return false
		}
		count[b]++
		if count[b] > p.maxPerBus {
			return false
		}
		for o := 0; o < t; o++ {
			if busOf[o] == b && p.conflict[t][o] {
				return false
			}
		}
	}
	load := make([]int64, nB)
	for w, ws := range p.ws {
		for b := range load {
			load[b] = 0
		}
		for t, b := range busOf {
			load[b] += p.comm[t][w]
		}
		for _, l := range load {
			if l > ws {
				return false
			}
		}
	}
	return true
}

// greedyBinding builds a feasible binding by placing each target on the
// admissible bus that increases its overlap the least (ties: lightest
// bus). Returns ok=false if the greedy order dead-ends.
func (p *assignProblem) greedyBinding(nB int) (busOf []int, obj int64, ok bool) {
	nW := len(p.ws)
	busOf = make([]int, p.nT)
	for t := range busOf {
		busOf[t] = -1
	}
	load := make([][]int64, nB)
	for b := range load {
		load[b] = make([]int64, nW)
	}
	count := make([]int, nB)
	overlap := make([]int64, nB)
	for _, t := range p.order {
		bestBus, bestAdd, bestLoad := -1, int64(1)<<62, int64(1)<<62
		for b := 0; b < nB; b++ {
			if count[b] >= p.maxPerBus {
				continue
			}
			okBus := true
			for other, ob := range busOf {
				if ob == b && p.conflict[t][other] {
					okBus = false
					break
				}
			}
			if !okBus {
				continue
			}
			for w := 0; w < nW; w++ {
				if load[b][w]+p.comm[t][w] > p.ws[w] {
					okBus = false
					break
				}
			}
			if !okBus {
				continue
			}
			var added int64
			for other, ob := range busOf {
				if ob == b {
					added += p.om.At(t, other)
				}
			}
			var totalLoad int64
			for w := 0; w < nW; w++ {
				totalLoad += load[b][w]
			}
			if added < bestAdd || (added == bestAdd && totalLoad < bestLoad) {
				bestBus, bestAdd, bestLoad = b, added, totalLoad
			}
		}
		if bestBus == -1 {
			return nil, 0, false
		}
		busOf[t] = bestBus
		count[bestBus]++
		overlap[bestBus] += bestAdd
		for w := 0; w < nW; w++ {
			load[bestBus][w] += p.comm[t][w]
		}
	}
	for _, v := range overlap {
		if v > obj {
			obj = v
		}
	}
	return busOf, obj, true
}

// MaxOverlapOfMatrix is MaxOverlapOf against a raw overlap matrix.
func MaxOverlapOfMatrix(om *ds.SymMatrix, numBuses int, busOf []int) int64 {
	per := make([]int64, numBuses)
	for i := 0; i < om.N; i++ {
		for j := i + 1; j < om.N; j++ {
			if busOf[i] == busOf[j] {
				per[busOf[i]] += om.At(i, j)
			}
		}
	}
	var best int64
	for _, v := range per {
		if v > best {
			best = v
		}
	}
	return best
}

package core

import (
	"context"
	"testing"

	"repro/internal/trace"
)

func TestFormulateStructure(t *testing.T) {
	a := mkAnalysis(t, 3, 100, 100, []trace.Event{
		{Start: 0, Len: 40, Receiver: 0},
		{Start: 0, Len: 40, Receiver: 1},
		{Start: 50, Len: 20, Receiver: 2},
	})
	conflicts := BuildConflicts(a, Options{OverlapThreshold: 0.1})
	f := Formulate(a, conflicts, 2, 2, true)
	if f.NumBuses != 2 {
		t.Errorf("NumBuses = %d", f.NumBuses)
	}
	if f.MaxovIdx < 0 {
		t.Error("binding formulation missing maxov variable")
	}
	// Feasibility mode has no objective variable.
	ff := Formulate(a, conflicts, 2, 2, false)
	if ff.MaxovIdx != -1 {
		t.Error("feasibility formulation should have no maxov")
	}
	if ff.Problem.LP.Objective != nil {
		t.Error("feasibility formulation should have no objective")
	}
}

func TestFormulationExtractErrors(t *testing.T) {
	a := mkAnalysis(t, 2, 100, 100, nil)
	conflicts := BuildConflicts(a, Options{OverlapThreshold: -1})
	f := Formulate(a, conflicts, 2, 2, false)
	x := make([]float64, f.Problem.LP.NumVars)
	// Receiver 0 unbound.
	if _, err := f.Extract(x); err == nil {
		t.Error("unbound receiver accepted")
	}
	// Receiver 0 double-bound.
	x[0], x[1] = 1, 1 // x(0,0) and x(0,1)
	if _, err := f.Extract(x); err == nil {
		t.Error("double-bound receiver accepted")
	}
}

func TestSolveMILPInfeasibleBusCount(t *testing.T) {
	// Two receivers that must be separated; one bus is infeasible.
	a := mkAnalysis(t, 2, 100, 100, []trace.Event{
		{Start: 0, Len: 60, Receiver: 0},
		{Start: 0, Len: 60, Receiver: 1},
	})
	conflicts := BuildConflicts(a, Options{OverlapThreshold: -1})
	res, err := solveMILP(context.Background(), a, conflicts, 1, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.feasible {
		t.Error("infeasible bus count reported feasible")
	}
}

func TestMILPEngineFirstFeasibleMatchesValidate(t *testing.T) {
	a := mkAnalysis(t, 4, 200, 50, []trace.Event{
		{Start: 0, Len: 30, Receiver: 0},
		{Start: 0, Len: 30, Receiver: 1},
		{Start: 60, Len: 30, Receiver: 2},
		{Start: 100, Len: 30, Receiver: 3},
	})
	opts := Options{OverlapThreshold: 0.5, MaxPerBus: 3, Engine: EngineMILP}
	d, err := DesignCrossbar(a, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(a, opts); err != nil {
		t.Errorf("MILP design invalid: %v", err)
	}
	if d.Engine != EngineMILP {
		t.Errorf("Engine = %v", d.Engine)
	}
}

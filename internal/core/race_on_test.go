//go:build race

package core

// raceEnabled reports whether the race detector instruments this test
// binary. Wall-clock performance assertions scale their budgets by it:
// the detector slows the branch-and-bound hot loop by an order of
// magnitude, which says nothing about the solver itself.
const raceEnabled = true

package core

import (
	"context"
	"testing"

	"repro/internal/benchprobs"
	"repro/internal/milp"
	"repro/internal/trace"
)

// The solver benchmarks measure the MILP hot path on the deterministic
// benchprobs instances. "Legacy" is the pre-incremental configuration —
// a cold two-phase LP solve per node and weak symmetry breaking only —
// kept callable through milp.Options.Cold and SymWeak; the default
// configuration warm-starts every node from its parent's basis and adds
// the canonical-ordering symmetry rows.
//
// The 32-receiver feasibility instance (the STbus architectural
// maximum) has no legacy benchmark: the legacy path does not finish
// even its root LP relaxation within tens of minutes there, which is
// the gap the incremental solver exists to close. cmd/solverbench runs
// the same cases and records them in BENCH_solver.json.

func benchFeasibility(b *testing.B, a *trace.Analysis, numBuses int, sym SymmetryLevel, opts milp.Options) {
	conflicts := BuildConflicts(a, DefaultOptions())
	fr := NewFormulator(a, conflicts, 4, sym)
	f := fr.ForBusCount(numBuses, false)
	opts.FirstFeasible = true
	b.ResetTimer()
	var nodes, warm, pivots int64
	for i := 0; i < b.N; i++ {
		sol, err := milp.SolveCtx(context.Background(), f.Problem, opts)
		if err != nil {
			b.Fatal(err)
		}
		nodes += int64(sol.Nodes)
		warm += sol.WarmSolves
		pivots += sol.DualPivots
	}
	b.ReportMetric(float64(nodes)/float64(b.N), "nodes/op")
	b.ReportMetric(float64(warm)/float64(b.N), "warmsolves/op")
	b.ReportMetric(float64(pivots)/float64(b.N), "dualpivots/op")
}

// BenchmarkMILPFeasible12Legacy is the before state on the 12-receiver
// instance: cold node solves, weak symmetry rows.
func BenchmarkMILPFeasible12Legacy(b *testing.B) {
	benchFeasibility(b, benchprobs.Analysis12(), 4, SymWeak, milp.Options{Cold: true})
}

// BenchmarkMILPFeasible12Warm is the shipped configuration: the
// incremental warm-started node solver. (In feasibility mode SymFull
// emits the same rows as SymWeak — canonical ordering only applies to
// the optimize-mode search — so this also isolates the solver effect.)
func BenchmarkMILPFeasible12Warm(b *testing.B) {
	benchFeasibility(b, benchprobs.Analysis12(), 4, SymFull, milp.Options{})
}

// BenchmarkMILPFeasible32Warm solves the 32-receiver feasibility MILP
// at its first feasible bus count — the instance the legacy path
// cannot finish at all.
func BenchmarkMILPFeasible32Warm(b *testing.B) {
	benchFeasibility(b, benchprobs.Analysis32(), 12, SymFull, milp.Options{})
}

// BenchmarkMILPInfeasible32Root measures the fast-rejection path: one
// bus short of any conflict-free packing, proven infeasible at the root
// relaxation without branching.
func BenchmarkMILPInfeasible32Root(b *testing.B) {
	benchFeasibility(b, benchprobs.Analysis32(), 8, SymFull, milp.Options{})
}

func benchBinding(b *testing.B, sym SymmetryLevel, opts milp.Options) {
	a := benchprobs.Analysis8()
	conflicts := BuildConflicts(a, DefaultOptions())
	fr := NewFormulator(a, conflicts, 4, sym)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := solveFormulated(context.Background(), fr, 3, true, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !res.feasible {
			b.Fatal("binding instance became infeasible")
		}
	}
}

// BenchmarkMILPBinding8Legacy / BenchmarkMILPBinding8Warm exercise
// optimize mode (the exact binding MILP of Eq. 9–11) end to end. The
// binding objective keeps even the legacy LPs guided, so the warm-start
// gain here is a constant factor, not the orders of magnitude of the
// objective-free feasibility probes.
func BenchmarkMILPBinding8Legacy(b *testing.B) {
	benchBinding(b, SymWeak, milp.Options{Cold: true})
}

func BenchmarkMILPBinding8Warm(b *testing.B) {
	benchBinding(b, SymFull, milp.Options{})
}

// Package core implements the paper's primary contribution: the
// application-specific STbus crossbar design methodology (Sections
// 4–6). Given the window-based traffic analysis of one interconnect
// direction it
//
//  1. pre-processes the analysis into a conflict matrix — pairs of
//     receivers whose windowed overlap exceeds a threshold, or whose
//     real-time (critical) streams overlap, must not share a bus
//     (paper Eq. 2);
//  2. finds the minimum number of crossbar buses for which a binding
//     satisfying the per-window bandwidth constraints (Eq. 4), the
//     conflict constraints (Eq. 7) and the targets-per-bus cap (Eq. 8)
//     exists, by binary search over the bus count with an exact
//     feasibility check (the paper's MILP-1, Eq. 10); and
//  3. binds receivers to the chosen buses minimizing the maximum total
//     traffic overlap on any bus (the paper's MILP-2, Eq. 11), which
//     minimizes average and peak packet latency.
//
// Two interchangeable solution engines are provided: a specialized
// exact branch-and-bound over the assignment structure (the default,
// see assign.go) and a literal MILP formulation of Eq. 3–9/11 solved
// with internal/milp (see formulate.go), substituting for CPLEX.
package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/conc"
	"repro/internal/milp"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Methodology instruments (see internal/obs): designs run,
// feasibility/binding probes dispatched (including speculative ones
// later obsoleted), branch-and-bound nodes expanded by the specialized
// assignment solver, and the per-probe wall-time distribution. MILP-
// engine probes account their nodes under the milp.* metrics instead.
var (
	metDesigns = obs.NewCounter("core.designs")
	metProbes  = obs.NewCounter("core.probes")
	metNodes   = obs.NewCounter("core.solver_nodes")
	metProbeNS = obs.NewHistogram("core.probe_ns")
)

// Engine selects the solver used for feasibility and binding.
type Engine int

const (
	// EngineBranchBound is the specialized exact assignment solver.
	EngineBranchBound Engine = iota
	// EngineMILP solves the paper's literal MILP formulation with the
	// built-in branch-and-bound LP solver. Practical for small
	// instances; used to cross-validate EngineBranchBound.
	EngineMILP
	// EngineAnneal finds the configuration exactly (branch and bound)
	// but optimizes the binding by simulated annealing — a heuristic
	// for instances near the STbus limit of 32 targets where the exact
	// binding search may be slow.
	EngineAnneal
	// EnginePortfolio races the parallel branch and bound against the
	// warm-started MILP on every probe under one context — the first
	// proven answer cancels the rest — with annealing feeding incumbents
	// into the shared bound during the binding phase. Exact results
	// whenever either contestant settles within budget; past the budget
	// it degrades to the best incumbent with Design.Capped set instead
	// of failing (see portfolio.go). The engine for the 128–512-target
	// scale where no single solver dominates.
	EnginePortfolio
)

func (e Engine) String() string {
	switch e {
	case EngineBranchBound:
		return "branch-and-bound"
	case EngineMILP:
		return "milp"
	case EngineAnneal:
		return "anneal"
	case EnginePortfolio:
		return "portfolio"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// Options are the tunable parameters of the methodology (the design
// knobs explored in paper Sections 7.2–7.4).
type Options struct {
	// OverlapThreshold is the pre-processing threshold as a fraction of
	// the window size: receiver pairs whose overlap exceeds it in any
	// window are forced onto different buses. Negative disables the
	// pre-processing step. The useful range ends at 0.5 (Section 7.4).
	OverlapThreshold float64
	// SeparateCritical forces receivers with mutually overlapping
	// critical (real-time) streams onto different buses (Section 7.3).
	SeparateCritical bool
	// MaxPerBus caps receivers per bus (paper maxtb, Eq. 8).
	// Zero means no cap.
	MaxPerBus int
	// MinBuses / MaxBuses clamp the binary search range. Zero values
	// default to the analytic lower bound and the receiver count.
	MinBuses, MaxBuses int
	// OptimizeBinding enables the second phase (MILP-2): minimize the
	// maximum per-bus aggregate overlap. When false the first feasible
	// binding is returned.
	OptimizeBinding bool
	// Engine selects the solver.
	Engine Engine
	// MaxNodes bounds the search effort per solve (0 = default).
	MaxNodes int64
	// MILPLegacy runs EngineMILP with the pre-incremental solver: cold
	// per-node LP rebuilds and weak symmetry breaking only. It exists
	// to benchmark the warm-started engine against its predecessor and
	// as an escape hatch; it does not affect the other engines.
	MILPLegacy bool
	// Workers bounds the solver parallelism on two levels: up to Workers
	// candidate bus counts are probed concurrently during the
	// feasibility search (obsoleted probes canceled as soon as a sibling
	// result narrows the range past them), and each branch-and-bound
	// solve splits its search tree across up to Workers goroutines with
	// a shared pruning incumbent (see parallel.go). 0 means GOMAXPROCS;
	// 1 is fully serial. The designed crossbar is identical for every
	// Workers value: the search only narrows on proven feasibility
	// facts, each per-count solve is deterministic, and the parallel
	// branch and bound is bit-identical to the sequential one by
	// construction.
	Workers int
	// Audit re-checks every produced design against the paper's
	// constraints (Eq. 3–9, Eq. 11 objective consistency) with the
	// independent auditor in internal/check before it is returned.
	// The knob is honored by the stbusgen facade (Designer.Design,
	// Designer.DesignTrace); internal/check sits above this package,
	// so core itself cannot run the audit. Free when false.
	Audit bool
	// Cache, when non-nil, front-ends the design with a cross-request
	// content-addressed cache (see internal/cache): exact fingerprint
	// hits return the stored design with zero solver work, near hits
	// seed the solve with the cached binding as a warm incumbent. Both
	// paths produce designs bit-identical to a cold solve. Excluded
	// from Options.Fingerprint — it selects how the answer is obtained,
	// never what it is.
	Cache Cache
}

// Incumbent is a previously computed binding offered to a new design
// run as a warm starting point. It is a hint, never trusted: core
// re-validates it against the new analysis before any use.
type Incumbent struct {
	// NumBuses is the bus count the binding was produced for.
	NumBuses int
	// BusOf[r] is the bus receiver r is bound to.
	BusOf []int
}

// Cache is the reuse interface DesignCrossbarCtx consults when
// Options.Cache is set. Implementations live above core (see
// internal/cache); the interface is defined here so core does not
// import them.
//
// All methods must be safe for concurrent use. Designs and incumbents
// handed out must be private to the caller (no aliasing of cached
// state), and Store must likewise deep-copy what it retains.
//
// The context carries the caller's telemetry instruments (tracer,
// flight recorder) so implementations can journal their traffic; it is
// not used for cancellation — cache operations are bounded-time.
type Cache interface {
	// Lookup returns the design cached for exactly this problem
	// (analysis and options fingerprints both equal), or ok == false.
	Lookup(ctx context.Context, a *trace.Analysis, opts Options) (d *Design, ok bool)
	// Warm returns a binding cached for a nearby problem — same
	// receiver count and option fingerprint, small constraint diff —
	// or nil when nothing close enough is cached. The binding is only
	// a hint; core validates it against the new analysis before use.
	Warm(ctx context.Context, a *trace.Analysis, opts Options) *Incumbent
	// Store offers a finished, un-capped design for caching.
	Store(ctx context.Context, a *trace.Analysis, opts Options, d *Design)
}

// Validate rejects option sets that would otherwise panic deep in the
// pipeline or silently design against garbage constraints. The zero
// value and DefaultOptions are both valid. Every facade entry point
// calls it before doing any work; direct users of DesignCrossbar get
// the same check at the top of the solve.
func (o Options) Validate() error {
	if o.OverlapThreshold != o.OverlapThreshold { // NaN
		return errors.New("core: overlap threshold is NaN")
	}
	if o.OverlapThreshold > 1 {
		return fmt.Errorf("core: overlap threshold %v exceeds 1 (fraction of window size; negative disables pre-processing)", o.OverlapThreshold)
	}
	if o.MaxPerBus < 0 {
		return fmt.Errorf("core: MaxPerBus %d is negative (0 means no cap)", o.MaxPerBus)
	}
	if o.MinBuses < 0 {
		return fmt.Errorf("core: MinBuses %d is negative", o.MinBuses)
	}
	if o.MaxBuses < 0 {
		return fmt.Errorf("core: MaxBuses %d is negative (0 means no bound)", o.MaxBuses)
	}
	if o.MaxBuses > 0 && o.MinBuses > o.MaxBuses {
		return fmt.Errorf("core: MinBuses %d exceeds MaxBuses %d", o.MinBuses, o.MaxBuses)
	}
	if o.MaxNodes < 0 {
		return fmt.Errorf("core: MaxNodes %d is negative (0 means the default budget)", o.MaxNodes)
	}
	if o.Workers < 0 {
		return fmt.Errorf("core: Workers %d is negative (0 means GOMAXPROCS)", o.Workers)
	}
	switch o.Engine {
	case EngineBranchBound, EngineMILP, EngineAnneal, EnginePortfolio:
	default:
		return fmt.Errorf("core: unknown engine %d", int(o.Engine))
	}
	return nil
}

// DefaultOptions returns the parameter set used for the paper's main
// experiments: 30% overlap threshold (the "conservative" setting of
// Section 7.4), critical-stream separation, maxtb of 4 and optimal
// binding.
func DefaultOptions() Options {
	return Options{
		OverlapThreshold: 0.30,
		SeparateCritical: true,
		MaxPerBus:        4,
		OptimizeBinding:  true,
		Engine:           EngineBranchBound,
	}
}

// Design is the output of the methodology for one interconnect
// direction: a bus count and a receiver→bus binding.
type Design struct {
	// NumBuses is the minimum feasible crossbar size found.
	NumBuses int
	// BusOf[r] is the bus receiver r is bound to.
	BusOf []int
	// MaxBusOverlap is the achieved objective of the binding phase:
	// the maximum over buses of the summed pairwise aggregate overlap
	// (om_{i,j}) between receivers sharing the bus.
	MaxBusOverlap int64
	// Conflicts counts the receiver pairs separated by pre-processing.
	Conflicts int
	// SearchNodes counts solver nodes over all phases.
	SearchNodes int64
	// Engine records which solver produced the design.
	Engine Engine
	// Capped reports a result that is feasible but not fully proven
	// within the node budget (Options.MaxNodes): the binding-phase
	// search ran out before proving optimality — BusOf is the best
	// incumbent found and MaxBusOverlap an upper bound on the optimum —
	// or, for EnginePortfolio only, some bus count below NumBuses
	// exhausted every contestant undecided, so NumBuses is feasible but
	// its minimality is unproven (anytime semantics; the other engines
	// fail such searches with ErrSearchLimit instead). EngineAnneal
	// designs are heuristic by contract, so Capped stays false there.
	Capped bool
}

// ErrSearchLimit is returned when the solver exceeds its node budget
// before establishing feasibility.
var ErrSearchLimit = errors.New("core: search node limit exceeded")

// ErrInfeasible is returned when no bus count within the search range
// admits a binding satisfying the bandwidth, conflict and cap
// constraints. Callers distinguish it from solver-budget or
// cancellation failures with errors.Is.
var ErrInfeasible = errors.New("core: no feasible crossbar configuration")

// ErrCanceled is returned when the design is abandoned because the
// context was canceled or its deadline expired. The context's cause is
// wrapped, so errors.Is(err, context.Canceled) (or DeadlineExceeded)
// also holds.
var ErrCanceled = errors.New("core: design canceled")

// canceledErr wraps the context's cancellation cause under ErrCanceled.
func canceledErr(ctx context.Context) error {
	return fmt.Errorf("%w: %w", ErrCanceled, context.Cause(ctx))
}

// errObsolete is the cancellation cause used to stop a speculative
// feasibility probe once a sibling's result proved it redundant. It
// never escapes this package.
var errObsolete = errors.New("core: probe obsoleted by sibling result")

// DesignCrossbar runs the full methodology on one direction's analysis.
func DesignCrossbar(a *trace.Analysis, opts Options) (*Design, error) {
	return DesignCrossbarCtx(context.Background(), a, opts)
}

// DesignCrossbarCtx is DesignCrossbar with cooperative cancellation and
// speculative parallel feasibility probing (see Options.Workers). The
// context is polled at solver node-expansion boundaries, so a
// cancellation or deadline surfaces promptly as a wrapped ErrCanceled
// even from deep inside a branch-and-bound search.
func DesignCrossbarCtx(ctx context.Context, a *trace.Analysis, opts Options) (*Design, error) {
	if a == nil || a.NumReceivers == 0 {
		return nil, errors.New("core: empty analysis")
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	nT := a.NumReceivers
	maxPerBus := opts.MaxPerBus
	if maxPerBus <= 0 || maxPerBus > nT {
		maxPerBus = nT
	}

	ctx, designSpan := obs.Start(ctx, "core.design")
	defer designSpan.End()
	designSpan.SetInt("receivers", int64(nT))
	designSpan.SetStr("engine", opts.Engine.String())
	metDesigns.Inc()
	rec := obs.FlightRecorderFrom(ctx)
	rec.Emit(obs.Event{Kind: obs.EvDesignStart, Val: int64(nT), Who: opts.Engine.String()})

	// A content-addressed exact hit costs two fingerprints and a map
	// probe — checked before the conflict matrix or any solver state is
	// built, so a hit stays microseconds regardless of problem size.
	if opts.Cache != nil {
		if d, ok := opts.Cache.Lookup(ctx, a, opts); ok {
			designSpan.SetBool("cache_hit", true)
			designSpan.SetInt("buses", int64(d.NumBuses))
			rec.Emit(obs.Event{Kind: obs.EvDesignDone, K: d.NumBuses,
				Val: d.MaxBusOverlap, Aux: d.SearchNodes, Flag: d.Capped})
			return d, nil
		}
	}

	conflicts := BuildConflicts(a, opts)
	nConf := 0
	for i := 0; i < nT; i++ {
		for j := i + 1; j < nT; j++ {
			if conflicts[i][j] {
				nConf++
			}
		}
	}

	prob := newAssignProblem(a, conflicts, maxPerBus, opts.MaxNodes)

	lb := prob.lowerBound()
	if opts.MinBuses > lb {
		lb = opts.MinBuses
	}
	ub := nT
	if opts.MaxBuses > 0 && opts.MaxBuses < ub {
		ub = opts.MaxBuses
	}
	if lb > ub {
		lb = ub
	}

	// Near-hit warm start: a binding cached for a nearby problem. It is
	// a hint, never trusted — re-validated against THIS problem's
	// constraints first. Once validated it proves feasibility at its
	// bus count (narrowing the search to the counts below) and, for the
	// branch-and-bound engine, seeds the binding phase (see solveSeeded
	// for why the output stays bit-identical to a cold solve). The
	// other engines get the range narrowing only: their binding paths
	// are not seed-invariant, and warm results must equal cold ones.
	warmK := -1
	var seedBus []int
	var seedObj int64
	if opts.Cache != nil {
		if inc := opts.Cache.Warm(ctx, a, opts); inc != nil &&
			inc.NumBuses <= ub && prob.validBinding(inc.NumBuses, inc.BusOf) {
			warmK = inc.NumBuses
			if warmK < lb {
				// Valid in fewer buses than the analytic lower bound
				// requires: still valid at lb (extra buses stay idle).
				warmK = lb
			}
			seedBus = inc.BusOf
			seedObj = MaxOverlapOfMatrix(prob.om, warmK, seedBus)
			designSpan.SetBool("cache_warm", true)
		}
	}

	// The MILP engine shares one formulation skeleton (reduced windows,
	// pair selection) across every bus-count probe of this design run,
	// including the speculative parallel ones.
	var formulator *Formulator
	if opts.Engine == EngineMILP {
		sym := SymFull
		if opts.MILPLegacy {
			sym = SymWeak
		}
		formulator = NewFormulator(a, conflicts, maxPerBus, sym)
	}
	workers := conc.Workers(opts.Workers)
	var pf *portfolio
	if opts.Engine == EnginePortfolio {
		pf = newPortfolio(prob, a, conflicts, maxPerBus, workers)
	}

	rawSolve := func(ctx context.Context, k int, optimize bool) (*assignResult, error) {
		switch {
		case opts.Engine == EngineMILP:
			return solveFormulated(ctx, formulator, k, optimize, milp.Options{Cold: opts.MILPLegacy})
		case opts.Engine == EnginePortfolio:
			return pf.solve(ctx, k, optimize)
		case opts.Engine == EngineAnneal && optimize:
			res, err := prob.solveAuto(ctx, k, false, workers, nil, 0, nil)
			if err != nil || !res.feasible {
				return res, err
			}
			busOf, obj := AnnealBinding(a, conflicts, k, maxPerBus, res.busOf, AnnealParams{Seed: 1})
			return &assignResult{feasible: true, busOf: busOf, maxOverlap: obj, nodes: res.nodes}, nil
		default:
			return prob.solveAuto(ctx, k, optimize, workers, nil, 0, nil)
		}
	}
	// Every probe — serial, speculative, or the final binding solve —
	// goes through this wrapper, so each one shows up as its own span
	// (child of core.search or core.bind) in the trace, as an open/close
	// pair in the flight journal, and as a sample in the probe wall-time
	// histogram.
	solve := func(ctx context.Context, k int, optimize bool) (*assignResult, error) {
		ctx, sp := obs.Start(ctx, "core.probe")
		defer sp.End()
		sp.SetInt("buses", int64(k))
		sp.SetBool("optimize", optimize)
		metProbes.Inc()
		rec.Emit(obs.Event{Kind: obs.EvProbeOpen, K: k, Flag: optimize})
		start := time.Now()
		res, err := rawSolve(ctx, k, optimize)
		metProbeNS.Observe(time.Since(start).Nanoseconds())
		if err == nil && res != nil {
			sp.SetBool("feasible", res.feasible)
			sp.SetInt("nodes", res.nodes)
		}
		rec.Emit(probeCloseEvent(k, optimize, res, err))
		return res, err
	}
	// solveWarm is the binding-phase probe with the cache incumbent
	// installed (EngineBranchBound only; see solveSeeded).
	solveWarm := func(ctx context.Context, k int, seedBus []int, seedObj int64) (*assignResult, error) {
		ctx, sp := obs.Start(ctx, "core.probe")
		defer sp.End()
		sp.SetInt("buses", int64(k))
		sp.SetBool("optimize", true)
		sp.SetBool("seeded", true)
		metProbes.Inc()
		rec.Emit(obs.Event{Kind: obs.EvProbeOpen, K: k, Flag: true})
		start := time.Now()
		res, err := prob.solveAuto(ctx, k, true, workers, seedBus, seedObj, nil)
		metProbeNS.Observe(time.Since(start).Nanoseconds())
		if err == nil && res != nil {
			sp.SetBool("feasible", res.feasible)
			sp.SetInt("nodes", res.nodes)
		}
		rec.Emit(probeCloseEvent(k, true, res, err))
		return res, err
	}

	// Phase 1: find the minimum feasible bus count. Feasibility is
	// monotone in the bus count (extra buses can stay unused), so an
	// interval-narrowing search is exact (paper Section 6); with
	// Workers > 1 several candidate counts are probed speculatively in
	// parallel, canceling probes a sibling result makes redundant. A
	// validated warm incumbent replaces the upper half of the search
	// outright (searchBelowIncumbent).
	sctx, searchSpan := obs.Start(ctx, "core.search")
	searchSpan.SetInt("lb", int64(lb))
	searchSpan.SetInt("ub", int64(ub))
	// The portfolio engine gets anytime semantics: probes undecided
	// after every contestant's budget are treated as infeasible so the
	// search keeps narrowing, and the tracker flags the design Capped
	// when its minimality rests on such an assumption. A greedy-success
	// upper bound pre-narrows the cold search range for free.
	var und undecidedTracker
	feasSolve := solve
	gub, gubRes := -1, (*assignResult)(nil)
	if opts.Engine == EnginePortfolio {
		feasSolve = und.wrap(solve)
		if warmK < 0 {
			gub, gubRes = greedyUpperBound(prob, lb, ub)
			if gub >= 0 {
				searchSpan.SetInt("greedy_ub", int64(gub))
			}
		}
	}
	var (
		best          int
		firstFeasible *assignResult
		nodes         int64
		err           error
	)
	if warmK >= 0 {
		searchSpan.SetBool("warm", true)
		best, firstFeasible, nodes, err = searchBelowIncumbent(sctx, lb, warmK, workers, feasSolve)
	} else {
		searchUB := ub
		if gub >= 0 && gub-1 < searchUB {
			searchUB = gub - 1
		}
		best, firstFeasible, nodes, err = searchMinFeasible(sctx, lb, searchUB, workers, feasSolve)
		if err == nil && best == -1 && gub >= 0 {
			best, firstFeasible = gub, gubRes
		}
	}
	searchSpan.SetInt("best", int64(best))
	searchSpan.End()
	if err != nil {
		return nil, err
	}
	if best == -1 {
		if und.anyUndecided() {
			return nil, fmt.Errorf("core: feasibility of the range up to %d buses undecided within the node budget: %w", ub, ErrSearchLimit)
		}
		return nil, fmt.Errorf("core: no feasible crossbar with at most %d buses (conflicts or bus cap too tight): %w", ub, ErrInfeasible)
	}
	searchCapped := und.cappedBelow(best)

	// The warm search can prove the minimal count without a probe at
	// that count (the incumbent itself is the feasibility witness).
	// When the binding phase is off, run the probe the cold search
	// would have ended with — the per-count solve is deterministic, so
	// the binding is the one a cold run returns.
	if firstFeasible == nil && !opts.OptimizeBinding {
		res, err := solve(ctx, best, false)
		if err != nil {
			return nil, err
		}
		nodes += res.nodes
		firstFeasible = res
	}

	result := firstFeasible
	// Phase 2: optimal binding on the chosen configuration.
	if opts.OptimizeBinding {
		bctx, bindSpan := obs.Start(ctx, "core.bind")
		var res *assignResult
		if seedBus != nil && best == warmK && opts.Engine == EngineBranchBound {
			// The cached binding is valid at the chosen count: seed the
			// branch and bound with it (output unchanged, subtrees that
			// cannot beat it pruned).
			res, err = solveWarm(bctx, best, seedBus, seedObj)
		} else {
			res, err = solve(bctx, best, true)
		}
		bindSpan.End()
		if err != nil {
			return nil, err
		}
		nodes += res.nodes
		if res.feasible {
			result = res
		}
	}
	if result == nil || !result.feasible {
		// Unreachable unless a solver contract breaks: best was proven
		// feasible, so some phase must have produced a binding.
		return nil, fmt.Errorf("core: internal: no binding at proven-feasible count %d", best)
	}

	designSpan.SetInt("buses", int64(best))
	designSpan.SetInt("nodes", nodes)
	design := &Design{
		NumBuses:      best,
		BusOf:         result.busOf,
		MaxBusOverlap: result.maxOverlap,
		Conflicts:     nConf,
		SearchNodes:   nodes,
		Engine:        opts.Engine,
		Capped:        result.capped || searchCapped,
	}
	// Publish the finished design for reuse. Capped results are
	// excluded: they depend on the node budget, and MaxNodes is
	// deliberately outside the options fingerprint precisely because
	// un-capped results are budget-independent.
	if opts.Cache != nil && !design.Capped {
		opts.Cache.Store(ctx, a, opts, design)
	}
	rec.Emit(obs.Event{Kind: obs.EvDesignDone, K: design.NumBuses,
		Val: design.MaxBusOverlap, Aux: design.SearchNodes, Flag: design.Capped})
	return design, nil
}

// probeCloseEvent classifies one probe's outcome for the flight
// journal: Who is the outcome label, Val the objective when the probe
// settled feasible (or its best incumbent when capped), Aux the solver
// nodes spent.
func probeCloseEvent(k int, optimize bool, res *assignResult, err error) obs.Event {
	e := obs.Event{Kind: obs.EvProbeClose, K: k, Flag: optimize}
	switch {
	case err != nil:
		switch {
		case errors.Is(err, ErrSearchLimit):
			e.Who = "exhausted"
		case errors.Is(err, ErrCanceled):
			e.Who = "canceled"
		default:
			e.Who = "error"
		}
	case res == nil:
		e.Who = "error"
	case res.capped:
		e.Who, e.Val, e.Aux = "capped", res.maxOverlap, res.nodes
	case res.feasible:
		e.Who, e.Val, e.Aux = "feasible", res.maxOverlap, res.nodes
	default:
		e.Who, e.Aux = "infeasible", res.nodes
	}
	return e
}

// BuildConflicts computes the conflict matrix (paper Eq. 2) from the
// windowed analysis: pairs whose overlap exceeds the threshold fraction
// of the window size in any window, and — when SeparateCritical is set
// — pairs whose critical streams overlap in any window.
func BuildConflicts(a *trace.Analysis, opts Options) [][]bool {
	nT := a.NumReceivers
	conflicts := make([][]bool, nT)
	for i := range conflicts {
		conflicts[i] = make([]bool, nT)
	}
	for i := 0; i < nT; i++ {
		for j := i + 1; j < nT; j++ {
			c := false
			for m := 0; m < a.NumWindows() && !c; m++ {
				if opts.OverlapThreshold >= 0 {
					limit := opts.OverlapThreshold * float64(a.WindowLen(m))
					if float64(a.PairOverlap(i, j, m)) > limit {
						c = true
					}
				}
				if opts.SeparateCritical && a.PairCritOverlap(i, j, m) > 0 {
					c = true
				}
			}
			conflicts[i][j], conflicts[j][i] = c, c
		}
	}
	return conflicts
}

// Validate checks that a design satisfies all constraints of the
// analysis it was produced from; used by tests and by callers that
// construct bindings manually.
func (d *Design) Validate(a *trace.Analysis, opts Options) error {
	nT := a.NumReceivers
	if len(d.BusOf) != nT {
		return fmt.Errorf("core: binding covers %d receivers, want %d", len(d.BusOf), nT)
	}
	maxPerBus := opts.MaxPerBus
	if maxPerBus <= 0 || maxPerBus > nT {
		maxPerBus = nT
	}
	count := make([]int, d.NumBuses)
	for r, b := range d.BusOf {
		if b < 0 || b >= d.NumBuses {
			return fmt.Errorf("core: receiver %d on bus %d outside [0,%d)", r, b, d.NumBuses)
		}
		count[b]++
	}
	for b, c := range count {
		if c > maxPerBus {
			return fmt.Errorf("core: bus %d has %d receivers, cap is %d", b, c, maxPerBus)
		}
	}
	// Per-window bandwidth (Eq. 4).
	for m := 0; m < a.NumWindows(); m++ {
		load := make([]int64, d.NumBuses)
		for r, b := range d.BusOf {
			load[b] += a.Comm.At(r, m)
		}
		for b, l := range load {
			if l > a.WindowLen(m) {
				return fmt.Errorf("core: bus %d overloaded in window %d: %d > %d", b, m, l, a.WindowLen(m))
			}
		}
	}
	// Conflicts (Eq. 7).
	conflicts := BuildConflicts(a, opts)
	for i := 0; i < nT; i++ {
		for j := i + 1; j < nT; j++ {
			if conflicts[i][j] && d.BusOf[i] == d.BusOf[j] {
				return fmt.Errorf("core: conflicting receivers %d and %d share bus %d", i, j, d.BusOf[i])
			}
		}
	}
	return nil
}

// MaxOverlapOf computes the binding-phase objective for an arbitrary
// binding: the maximum per-bus sum of pairwise aggregate overlaps.
func MaxOverlapOf(a *trace.Analysis, numBuses int, busOf []int) int64 {
	per := make([]int64, numBuses)
	for i := 0; i < a.NumReceivers; i++ {
		for j := i + 1; j < a.NumReceivers; j++ {
			if busOf[i] == busOf[j] {
				per[busOf[i]] += a.OM.At(i, j)
			}
		}
	}
	var best int64
	for _, v := range per {
		if v > best {
			best = v
		}
	}
	return best
}

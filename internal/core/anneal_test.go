package core

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

func TestAnnealBindingImprovesGreedyStart(t *testing.T) {
	// Build an instance with a clear optimal structure: two groups of
	// heavily-overlapping receivers; optimal binding interleaves them.
	events := []trace.Event{
		// Group A = {0,1,2} overlap pairwise by 100.
		{Start: 0, Len: 100, Receiver: 0},
		{Start: 0, Len: 100, Receiver: 1},
		{Start: 0, Len: 100, Receiver: 2},
		// Group B = {3,4,5} overlap pairwise by 100.
		{Start: 500, Len: 100, Receiver: 3},
		{Start: 500, Len: 100, Receiver: 4},
		{Start: 500, Len: 100, Receiver: 5},
	}
	a := mkAnalysis(t, 6, 1000, 1000, events)
	opts := Options{OverlapThreshold: -1, MaxPerBus: 2, OptimizeBinding: false}
	conflicts := BuildConflicts(a, opts)

	// A deliberately bad but feasible start: groups together.
	start := []int{0, 0, 1, 1, 2, 2} // bus0={0,1} overlap 100, bus1={2,3} 0, bus2={4,5} 100
	busOf, obj := AnnealBinding(a, conflicts, 3, 2, start, AnnealParams{Seed: 3})
	// Optimal: pair each A with a B: max overlap 0.
	if obj != 0 {
		t.Errorf("anneal objective = %d, want 0 (bindings %v)", obj, busOf)
	}
	if got := MaxOverlapOf(a, 3, busOf); got != obj {
		t.Errorf("reported objective %d != recomputed %d", obj, got)
	}
}

func TestAnnealBindingStaysFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for iter := 0; iter < 15; iter++ {
		a := randomAnalysis(t, rng, 4+rng.Intn(4))
		opts := Options{OverlapThreshold: 0.5, SeparateCritical: true, MaxPerBus: 3, OptimizeBinding: false}
		d, err := DesignCrossbar(a, opts)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		conflicts := BuildConflicts(a, opts)
		busOf, obj := AnnealBinding(a, conflicts, d.NumBuses, 3, d.BusOf, AnnealParams{Seed: int64(iter)})
		check := &Design{NumBuses: d.NumBuses, BusOf: busOf}
		if err := check.Validate(a, opts); err != nil {
			t.Fatalf("iter %d: anneal produced infeasible binding: %v", iter, err)
		}
		if obj > d.MaxBusOverlap && d.MaxBusOverlap > 0 {
			// d came from feasibility only (no binding optimization),
			// so anneal may legitimately match it but must never be
			// worse than its own start.
			startObj := MaxOverlapOf(a, d.NumBuses, d.BusOf)
			if obj > startObj {
				t.Fatalf("iter %d: anneal worsened objective: %d > start %d", iter, obj, startObj)
			}
		}
	}
}

func TestEngineAnnealMatchesExactOnEasyInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 10; iter++ {
		a := randomAnalysis(t, rng, 3+rng.Intn(3))
		base := Options{OverlapThreshold: 0.5, MaxPerBus: 3, OptimizeBinding: true}
		exact, err := DesignCrossbar(a, base)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		annealOpts := base
		annealOpts.Engine = EngineAnneal
		heur, err := DesignCrossbar(a, annealOpts)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		if heur.NumBuses != exact.NumBuses {
			t.Errorf("iter %d: bus counts differ: %d vs %d", iter, heur.NumBuses, exact.NumBuses)
		}
		if heur.MaxBusOverlap < exact.MaxBusOverlap {
			t.Errorf("iter %d: heuristic beat the exact optimum: %d < %d",
				iter, heur.MaxBusOverlap, exact.MaxBusOverlap)
		}
		// On these tiny instances the anneal should find the optimum.
		if heur.MaxBusOverlap > exact.MaxBusOverlap {
			t.Logf("iter %d: anneal suboptimal: %d vs %d (allowed but logged)",
				iter, heur.MaxBusOverlap, exact.MaxBusOverlap)
		}
		if err := heur.Validate(a, annealOpts); err != nil {
			t.Errorf("iter %d: anneal design invalid: %v", iter, err)
		}
	}
}

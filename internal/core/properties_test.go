package core

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// Monotonicity properties of the methodology's knobs: relaxing a
// constraint must never increase the designed bus count.

func TestPropertyThresholdMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	thresholds := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5}
	for iter := 0; iter < 20; iter++ {
		a := randomAnalysis(t, rng, 3+rng.Intn(5))
		prev := -1
		for _, thr := range thresholds {
			d, err := DesignCrossbar(a, Options{OverlapThreshold: thr})
			if err != nil {
				t.Fatalf("iter %d thr %.1f: %v", iter, thr, err)
			}
			if prev != -1 && d.NumBuses > prev {
				t.Errorf("iter %d: raising threshold to %.1f increased buses %d→%d",
					iter, thr, prev, d.NumBuses)
			}
			prev = d.NumBuses
		}
	}
}

func TestPropertyCapMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for iter := 0; iter < 20; iter++ {
		a := randomAnalysis(t, rng, 4+rng.Intn(4))
		prev := -1
		for _, cap := range []int{1, 2, 3, 4, 0 /* unlimited */} {
			d, err := DesignCrossbar(a, Options{OverlapThreshold: -1, MaxPerBus: cap})
			if err != nil {
				t.Fatalf("iter %d cap %d: %v", iter, cap, err)
			}
			if prev != -1 && d.NumBuses > prev {
				t.Errorf("iter %d: loosening cap to %d increased buses %d→%d",
					iter, cap, prev, d.NumBuses)
			}
			prev = d.NumBuses
		}
	}
}

func TestPropertyBindingNeverChangesBusCount(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for iter := 0; iter < 20; iter++ {
		a := randomAnalysis(t, rng, 3+rng.Intn(5))
		opts := Options{OverlapThreshold: 0.4, MaxPerBus: 3}
		plain, err := DesignCrossbar(a, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.OptimizeBinding = true
		optimized, err := DesignCrossbar(a, opts)
		if err != nil {
			t.Fatal(err)
		}
		if plain.NumBuses != optimized.NumBuses {
			t.Errorf("iter %d: binding phase changed the configuration: %d vs %d",
				iter, plain.NumBuses, optimized.NumBuses)
		}
		if optimized.MaxBusOverlap > plain.MaxBusOverlap {
			t.Errorf("iter %d: optimal binding worse than first-feasible: %d > %d",
				iter, optimized.MaxBusOverlap, plain.MaxBusOverlap)
		}
	}
}

func TestPropertyDeterministicDesign(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	for iter := 0; iter < 10; iter++ {
		a := randomAnalysis(t, rng, 3+rng.Intn(5))
		opts := DefaultOptions()
		d1, err := DesignCrossbar(a, opts)
		if err != nil {
			t.Fatal(err)
		}
		d2, err := DesignCrossbar(a, opts)
		if err != nil {
			t.Fatal(err)
		}
		if d1.NumBuses != d2.NumBuses || d1.MaxBusOverlap != d2.MaxBusOverlap {
			t.Fatalf("iter %d: design not deterministic", iter)
		}
		for i := range d1.BusOf {
			if d1.BusOf[i] != d2.BusOf[i] {
				t.Fatalf("iter %d: bindings differ at %d", iter, i)
			}
		}
	}
}

// TestPropertySingleWindowLowerBound: the single-window (average-flow)
// design can never need more buses than the windowed design of the
// same trace, since its constraints are a relaxation.
func TestPropertySingleWindowLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	for iter := 0; iter < 15; iter++ {
		nRecv := 3 + rng.Intn(5)
		horizon := int64(400)
		var events []trace.Event
		for r := 0; r < nRecv; r++ {
			for e := 0; e < 1+rng.Intn(4); e++ {
				start := int64(rng.Intn(350))
				events = append(events, trace.Event{
					Start: start, Len: 1 + int64(rng.Intn(49)), Receiver: r,
				})
			}
		}
		tr := &trace.Trace{NumReceivers: nRecv, NumSenders: 1, Horizon: horizon, Events: events}
		windowed, err := trace.Analyze(tr, 100)
		if err != nil {
			t.Fatal(err)
		}
		single, err := trace.SingleWindow(tr)
		if err != nil {
			t.Fatal(err)
		}
		opts := Options{OverlapThreshold: -1}
		dWin, err := DesignCrossbar(windowed, opts)
		if err != nil {
			t.Fatal(err)
		}
		dAvg, err := DesignCrossbar(single, opts)
		if err != nil {
			t.Fatal(err)
		}
		if dAvg.NumBuses > dWin.NumBuses {
			t.Errorf("iter %d: average-flow design (%d) larger than windowed (%d)",
				iter, dAvg.NumBuses, dWin.NumBuses)
		}
	}
}

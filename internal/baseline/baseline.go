// Package baseline implements the comparison designers the paper
// measures its methodology against (Sections 2 and 7):
//
//   - AverageFlow: crossbar design from average communication traffic,
//     as in prior bus/NoC synthesis work — a single analysis window
//     spanning the whole trace, no overlap constraints, no bus cap.
//     This is one extreme of the paper's design spectrum.
//   - PeakBandwidth: contention-elimination design in the style of
//     Ho–Pinkston (reference [4]): any receivers whose streams ever
//     overlap get separate buses (overlap threshold zero). The other
//     extreme of the spectrum; it over-provisions the crossbar.
//   - RandomBinding: a random feasible binding onto a given bus count,
//     satisfying all constraints (Eq. 3–9) but ignoring the overlap
//     objective — the Section 7.3 binding comparison.
package baseline

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/trace"
)

// AverageFlow designs a crossbar from aggregate (whole-trace) traffic
// only. maxPerBus ≤ 0 disables the per-bus cap, matching prior-work
// designs driven purely by average bandwidth.
func AverageFlow(tr *trace.Trace, maxPerBus int) (*core.Design, error) {
	a, err := trace.SingleWindow(tr)
	if err != nil {
		return nil, fmt.Errorf("baseline: average-flow analysis: %w", err)
	}
	return core.DesignCrossbar(a, core.Options{
		OverlapThreshold: -1, // overlap constraints relaxed
		SeparateCritical: false,
		MaxPerBus:        maxPerBus,
		OptimizeBinding:  false,
	})
}

// PeakBandwidth designs a contention-free crossbar: receivers that
// overlap at all in any window are separated (threshold 0).
func PeakBandwidth(tr *trace.Trace, ws int64) (*core.Design, error) {
	a, err := trace.Analyze(tr, ws)
	if err != nil {
		return nil, fmt.Errorf("baseline: peak-bandwidth analysis: %w", err)
	}
	return core.DesignCrossbar(a, core.Options{
		OverlapThreshold: 0,
		SeparateCritical: true,
		OptimizeBinding:  false,
	})
}

// RandomBinding produces a uniformly random feasible binding of the
// analysis' receivers onto numBuses buses, subject to the same
// constraints the optimizer honors (window bandwidth, conflicts, bus
// cap) but with no overlap objective. It retries shuffled greedy
// placements until one is feasible; maxTries bounds the effort.
func RandomBinding(a *trace.Analysis, opts core.Options, numBuses int, rng *rand.Rand, maxTries int) (*core.Design, error) {
	if numBuses <= 0 {
		return nil, errors.New("baseline: numBuses must be positive")
	}
	if maxTries <= 0 {
		maxTries = 1000
	}
	nT := a.NumReceivers
	maxPerBus := opts.MaxPerBus
	if maxPerBus <= 0 || maxPerBus > nT {
		maxPerBus = nT
	}
	conflicts := core.BuildConflicts(a, opts)
	nW := a.NumWindows()

	order := make([]int, nT)
	for i := range order {
		order[i] = i
	}
	for try := 0; try < maxTries; try++ {
		rng.Shuffle(nT, func(i, j int) { order[i], order[j] = order[j], order[i] })
		busOf := make([]int, nT)
		for i := range busOf {
			busOf[i] = -1
		}
		count := make([]int, numBuses)
		load := make([][]int64, numBuses)
		for b := range load {
			load[b] = make([]int64, nW)
		}
		ok := true
		for _, t := range order {
			// Collect admissible buses, then pick one at random.
			var admissible []int
			for b := 0; b < numBuses; b++ {
				if count[b] >= maxPerBus {
					continue
				}
				good := true
				for other, ob := range busOf {
					if ob == b && conflicts[t][other] {
						good = false
						break
					}
				}
				for m := 0; m < nW && good; m++ {
					if load[b][m]+a.Comm.At(t, m) > a.WindowLen(m) {
						good = false
					}
				}
				if good {
					admissible = append(admissible, b)
				}
			}
			if len(admissible) == 0 {
				ok = false
				break
			}
			b := admissible[rng.Intn(len(admissible))]
			busOf[t] = b
			count[b]++
			for m := 0; m < nW; m++ {
				load[b][m] += a.Comm.At(t, m)
			}
		}
		if ok {
			return &core.Design{
				NumBuses:      numBuses,
				BusOf:         busOf,
				MaxBusOverlap: core.MaxOverlapOf(a, numBuses, busOf),
			}, nil
		}
	}
	return nil, fmt.Errorf("baseline: no feasible random binding found in %d tries: %w", maxTries, core.ErrInfeasible)
}

package baseline

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// peakyTrace has two receivers fully busy in the same short region of a
// long, otherwise idle trace: average demand is low but peak demand
// needs two buses.
func peakyTrace() *trace.Trace {
	return &trace.Trace{
		NumReceivers: 2,
		NumSenders:   1,
		Horizon:      1000,
		Events: []trace.Event{
			{Start: 0, Len: 95, Receiver: 0},
			{Start: 0, Len: 95, Receiver: 1},
		},
	}
}

func TestAverageFlowMissesPeaks(t *testing.T) {
	d, err := AverageFlow(peakyTrace(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumBuses != 1 {
		t.Errorf("average-flow design = %d buses, want 1 (averages hide the peak)", d.NumBuses)
	}
}

func TestPeakBandwidthOverProvisions(t *testing.T) {
	d, err := PeakBandwidth(peakyTrace(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumBuses != 2 {
		t.Errorf("peak-bandwidth design = %d buses, want 2 (any overlap separates)", d.NumBuses)
	}
}

func TestPeakBandwidthSeparatesEvenTinyOverlap(t *testing.T) {
	tr := &trace.Trace{
		NumReceivers: 2,
		NumSenders:   1,
		Horizon:      1000,
		Events: []trace.Event{
			{Start: 0, Len: 10, Receiver: 0},
			{Start: 9, Len: 10, Receiver: 1}, // 1 cycle of overlap
		},
	}
	d, err := PeakBandwidth(tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumBuses != 2 {
		t.Errorf("1-cycle overlap not separated: %d buses", d.NumBuses)
	}
	// The window-based designer with a threshold tolerates it.
	a, err := trace.Analyze(tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	win, err := core.DesignCrossbar(a, core.Options{OverlapThreshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if win.NumBuses != 1 {
		t.Errorf("window design = %d buses, want 1", win.NumBuses)
	}
}

func TestRandomBindingRespectsConstraints(t *testing.T) {
	// 6 receivers, one conflict pair, cap 3 per bus, on 3 buses.
	tr := &trace.Trace{NumReceivers: 6, NumSenders: 1, Horizon: 100}
	for r := 0; r < 6; r++ {
		tr.Events = append(tr.Events, trace.Event{Start: int64(10 * r), Len: 9, Receiver: r})
	}
	// Make receivers 0 and 1 overlap fully so a 0% threshold conflicts
	// them.
	tr.Events[1] = trace.Event{Start: 0, Len: 9, Receiver: 1}
	a, err := trace.Analyze(tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{OverlapThreshold: 0, MaxPerBus: 3}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		d, err := RandomBinding(a, opts, 3, rng, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Validate(a, opts); err != nil {
			t.Fatalf("trial %d: random binding invalid: %v", trial, err)
		}
		if d.BusOf[0] == d.BusOf[1] {
			t.Fatalf("trial %d: conflicting receivers share bus", trial)
		}
	}
}

func TestRandomBindingVariety(t *testing.T) {
	tr := &trace.Trace{NumReceivers: 6, NumSenders: 1, Horizon: 600}
	for r := 0; r < 6; r++ {
		tr.Events = append(tr.Events, trace.Event{Start: int64(100 * r), Len: 50, Receiver: r})
	}
	a, err := trace.Analyze(tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{OverlapThreshold: -1}
	rng := rand.New(rand.NewSource(1))
	seen := map[string]bool{}
	for trial := 0; trial < 30; trial++ {
		d, err := RandomBinding(a, opts, 3, rng, 0)
		if err != nil {
			t.Fatal(err)
		}
		key := ""
		for _, b := range d.BusOf {
			key += string(rune('0' + b))
		}
		seen[key] = true
	}
	if len(seen) < 5 {
		t.Errorf("random binding produced only %d distinct bindings in 30 trials", len(seen))
	}
}

func TestRandomBindingInfeasible(t *testing.T) {
	// Two receivers that must be separated, but only one bus.
	tr := &trace.Trace{
		NumReceivers: 2,
		NumSenders:   1,
		Horizon:      100,
		Events: []trace.Event{
			{Start: 0, Len: 60, Receiver: 0},
			{Start: 0, Len: 60, Receiver: 1},
		},
	}
	a, err := trace.Analyze(tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomBinding(a, core.Options{OverlapThreshold: -1}, 1, rng, 10); err == nil {
		t.Error("infeasible random binding succeeded")
	}
	if _, err := RandomBinding(a, core.Options{OverlapThreshold: -1}, 0, rng, 10); err == nil {
		t.Error("zero buses accepted")
	}
}

package stats

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	r := NewRecorder()
	for _, l := range []int64{10, 20, 30, 40} {
		r.Add(Sample{Latency: l})
	}
	s := r.Summarize()
	if s.Count != 4 {
		t.Errorf("Count = %d, want 4", s.Count)
	}
	if s.Avg != 25 {
		t.Errorf("Avg = %f, want 25", s.Avg)
	}
	if s.Max != 40 || s.Min != 10 {
		t.Errorf("Max/Min = %d/%d, want 40/10", s.Max, s.Min)
	}
	if s.P50 != 20 {
		t.Errorf("P50 = %d, want 20", s.P50)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := NewRecorder().Summarize()
	if s.Count != 0 || s.Avg != 0 || s.Max != 0 {
		t.Errorf("empty summary = %+v, want zeros", s)
	}
	if s.String() != "no samples" {
		t.Errorf("String = %q", s.String())
	}
}

func TestSummarizeCritical(t *testing.T) {
	r := NewRecorder()
	r.Add(Sample{Latency: 100, Critical: false})
	r.Add(Sample{Latency: 10, Critical: true})
	r.Add(Sample{Latency: 20, Critical: true})
	s := r.SummarizeCritical()
	if s.Count != 2 || s.Avg != 15 {
		t.Errorf("critical summary = %+v, want count 2, avg 15", s)
	}
}

func TestSummarizeTarget(t *testing.T) {
	r := NewRecorder()
	r.Add(Sample{Latency: 5, Target: 0})
	r.Add(Sample{Latency: 15, Target: 1})
	r.Add(Sample{Latency: 25, Target: 1})
	s := r.SummarizeTarget(1)
	if s.Count != 2 || s.Avg != 20 {
		t.Errorf("target summary = %+v, want count 2, avg 20", s)
	}
}

func TestSummarizeWhere(t *testing.T) {
	r := NewRecorder()
	r.Add(Sample{Latency: 5, Initiator: 0})
	r.Add(Sample{Latency: 10, Initiator: 1})
	s := r.SummarizeWhere(func(s Sample) bool { return s.Initiator == 1 })
	if s.Count != 1 || s.Max != 10 {
		t.Errorf("filtered summary = %+v", s)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(sorted, 0.5); got != 5 {
		t.Errorf("p50 = %d, want 5", got)
	}
	if got := percentile(sorted, 0.95); got != 10 {
		t.Errorf("p95 = %d, want 10", got)
	}
	if got := percentile(sorted, 0.99); got != 10 {
		t.Errorf("p99 = %d, want 10", got)
	}
}

// Property: summary invariants hold for random data.
func TestSummarizeQuickInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := NewRecorder()
		n := 1 + rng.Intn(200)
		var lats []int64
		for i := 0; i < n; i++ {
			l := int64(rng.Intn(1000))
			lats = append(lats, l)
			r.Add(Sample{Latency: l})
		}
		s := r.Summarize()
		sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
		if s.Min != lats[0] || s.Max != lats[n-1] {
			return false
		}
		if s.Avg < float64(s.Min) || s.Avg > float64(s.Max) {
			return false
		}
		if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max {
			return false
		}
		return s.Count == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarizePacketMetrics(t *testing.T) {
	r := NewRecorder()
	r.Add(Sample{Latency: 20, Packet: 5, Critical: true})
	r.Add(Sample{Latency: 30, Packet: 10})
	s := r.SummarizePacket()
	if s.Avg != 7.5 || s.Max != 10 {
		t.Errorf("packet summary = %+v, want avg 7.5 max 10", s)
	}
	crit := r.SummarizePacketWhere(func(s Sample) bool { return s.Critical })
	if crit.Count != 1 || crit.Avg != 5 {
		t.Errorf("critical packet summary = %+v", crit)
	}
}

func TestSummaryString(t *testing.T) {
	r := NewRecorder()
	r.Add(Sample{Latency: 10})
	got := r.Summarize().String()
	if got == "no samples" || len(got) == 0 {
		t.Errorf("String = %q", got)
	}
}

func TestPercentileEmpty(t *testing.T) {
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(nil) = %d", got)
	}
}

// Package stats collects per-packet latency measurements from
// simulation runs and summarizes them (average, maximum, percentiles),
// overall and per traffic class — the metrics reported in the paper's
// Table 1 and Figures 4(a)/4(b).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Sample is one completed transaction's latency record.
type Sample struct {
	// Latency is the cycles from issue to full transaction completion
	// (last beat of the response received).
	Latency int64
	// Packet is the cycles from issue to the first beat of the
	// response — the per-packet latency the paper's tables report
	// (a burst transfer is a stream of packets; queueing delay is
	// fully visible in the first one).
	Packet    int64
	Initiator int
	Target    int
	Critical  bool
}

// Recorder accumulates latency samples during a simulation run.
type Recorder struct {
	samples []Sample
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Add records one sample.
func (r *Recorder) Add(s Sample) { r.samples = append(r.samples, s) }

// Len returns the number of recorded samples.
func (r *Recorder) Len() int { return len(r.samples) }

// Samples returns the raw samples (not a copy).
func (r *Recorder) Samples() []Sample { return r.samples }

// Summary is the aggregate view of a set of latency samples.
type Summary struct {
	Count int
	Avg   float64
	Max   int64
	Min   int64
	P50   int64
	P95   int64
	P99   int64
}

// Summarize computes the summary of transaction latencies over all
// samples.
func (r *Recorder) Summarize() Summary { return summarize(r.samples, nil) }

// SummarizePacket computes the summary of per-packet latencies
// (issue to first response beat) over all samples.
func (r *Recorder) SummarizePacket() Summary {
	return summarizeBy(r.samples, nil, func(s Sample) int64 { return s.Packet })
}

// SummarizePacketWhere computes the packet-latency summary over
// samples matching the filter.
func (r *Recorder) SummarizePacketWhere(keep func(Sample) bool) Summary {
	return summarizeBy(r.samples, keep, func(s Sample) int64 { return s.Packet })
}

// SummarizeCritical computes the summary over critical samples only.
func (r *Recorder) SummarizeCritical() Summary {
	return summarize(r.samples, func(s Sample) bool { return s.Critical })
}

// SummarizeTarget computes the summary over samples to one target.
func (r *Recorder) SummarizeTarget(target int) Summary {
	return summarize(r.samples, func(s Sample) bool { return s.Target == target })
}

// SummarizeWhere computes the summary over samples matching the filter.
func (r *Recorder) SummarizeWhere(keep func(Sample) bool) Summary {
	return summarize(r.samples, keep)
}

func summarize(samples []Sample, keep func(Sample) bool) Summary {
	return summarizeBy(samples, keep, func(s Sample) int64 { return s.Latency })
}

func summarizeBy(samples []Sample, keep func(Sample) bool, metric func(Sample) int64) Summary {
	lat := make([]int64, 0, len(samples))
	for _, s := range samples {
		if keep == nil || keep(s) {
			lat = append(lat, metric(s))
		}
	}
	if len(lat) == 0 {
		return Summary{}
	}
	sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
	var sum float64
	for _, l := range lat {
		sum += float64(l)
	}
	return Summary{
		Count: len(lat),
		Avg:   sum / float64(len(lat)),
		Max:   lat[len(lat)-1],
		Min:   lat[0],
		P50:   percentile(lat, 0.50),
		P95:   percentile(lat, 0.95),
		P99:   percentile(lat, 0.99),
	}
}

// percentile returns the nearest-rank percentile of sorted data.
func percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

func (s Summary) String() string {
	if s.Count == 0 {
		return "no samples"
	}
	return fmt.Sprintf("n=%d avg=%.1f max=%d p95=%d", s.Count, s.Avg, s.Max, s.P95)
}

package check

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/trace"
)

// AnalysisGenParams sizes random traces for the analysis-kernel
// differential harness. Unlike the solver harness (which keeps cases
// tiny so the cold MILP path stays affordable) no solver runs here, so
// the traces are bigger and the receiver count deliberately exceeds 64:
// the sweep kernel's active-receiver bitset then spans multiple words,
// a code path the solver-sized cases never reach.
func AnalysisGenParams() GenParams {
	return GenParams{
		MaxReceivers: 70,
		MaxSenders:   4,
		MaxHorizon:   2000,
		MaxEvents:    300,
		MaxLen:       40,
		CriticalFrac: 0.2,
	}
}

// AnalysisDiff runs one random trace through the analysis paths —
// the sweep-line kernel (the Analyze default), the retained legacy
// pairwise kernel, the streaming reader fed the binary encoding of
// a start-sorted copy, and the sharded driver over the columnar v2
// byte image at a seed-drawn shard count — and returns a description
// per output mismatch. Every fourth seed additionally pins the kernels
// to each other on adaptive (variable-size) window boundaries, the
// irregular-edge case.
// The error return is reserved for harness failures (a kernel rejecting
// a valid case outright); disagreements between successful runs are
// data.
func AnalysisDiff(ctx context.Context, seed int64, p GenParams) ([]string, error) {
	if p == (GenParams{}) {
		p = AnalysisGenParams()
	}
	tr := RandomTrace(seed, p)
	rng := rand.New(rand.NewSource(seed ^ 0x7a11_ce11))
	ws := 1 + rng.Int63n(tr.Horizon)
	if rng.Intn(8) == 0 {
		ws = tr.Horizon + 1 + rng.Int63n(64) // window larger than horizon
	}

	sweep, err := trace.AnalyzeCtx(ctx, tr, ws)
	if err != nil {
		return nil, fmt.Errorf("check: case %d: sweep kernel: %w", seed, err)
	}
	legacy, err := trace.AnalyzeLegacyCtx(ctx, tr, ws)
	if err != nil {
		return nil, fmt.Errorf("check: case %d: legacy kernel: %w", seed, err)
	}
	streamed, err := analyzeStreamed(ctx, tr, ws)
	if err != nil {
		return nil, fmt.Errorf("check: case %d: streaming kernel: %w", seed, err)
	}

	var out []string
	for _, d := range trace.DiffAnalyses(sweep, legacy) {
		out = append(out, fmt.Sprintf("sweep vs legacy (ws=%d): %s", ws, d))
	}
	for _, d := range trace.DiffAnalyses(sweep, streamed) {
		out = append(out, fmt.Sprintf("sweep vs stream (ws=%d): %s", ws, d))
	}

	if seed%4 == 0 {
		minWS := 1 + rng.Int63n(tr.Horizon/2+1)
		maxWS := minWS + rng.Int63n(tr.Horizon+1)
		bs, err := trace.AdaptiveBoundaries(tr, minWS, maxWS)
		if err != nil {
			return nil, fmt.Errorf("check: case %d: adaptive boundaries: %w", seed, err)
		}
		got, err := trace.AnalyzeWithBoundariesCtx(ctx, tr, bs)
		if err != nil {
			return nil, fmt.Errorf("check: case %d: sweep kernel (adaptive): %w", seed, err)
		}
		want, err := trace.AnalyzeLegacyWithBoundariesCtx(ctx, tr, bs)
		if err != nil {
			return nil, fmt.Errorf("check: case %d: legacy kernel (adaptive): %w", seed, err)
		}
		for _, d := range trace.DiffAnalyses(got, want) {
			out = append(out, fmt.Sprintf("sweep vs legacy (adaptive %d..%d): %s", minWS, maxWS, d))
		}
	}

	// Sharded out-of-core driver over the columnar v2 container: encode,
	// then analyze the byte image partitioned into a seed-drawn number
	// of shards (0 exercises the per-core default). Drawn after every
	// earlier rng use so older seeds keep reproducing the same cases.
	shards := rng.Intn(10)
	sharded, err := analyzeShardedV2(ctx, tr, ws, shards)
	if err != nil {
		return nil, fmt.Errorf("check: case %d: sharded v2 kernel: %w", seed, err)
	}
	for _, d := range trace.DiffAnalyses(sweep, sharded) {
		out = append(out, fmt.Sprintf("sweep vs sharded-v2 (ws=%d shards=%d): %s", ws, shards, d))
	}
	return out, nil
}

// analyzeShardedV2 encodes the trace in the columnar v2 container and
// analyzes the byte image through the out-of-core sharded driver — the
// path a spooled server upload takes, minus the mmap.
func analyzeShardedV2(ctx context.Context, tr *trace.Trace, ws int64, shards int) (*trace.Analysis, error) {
	var buf bytes.Buffer
	if err := trace.WriteBinaryV2(&buf, tr); err != nil {
		return nil, err
	}
	return trace.AnalyzeBytesSharded(ctx, buf.Bytes(), ws, shards, nil)
}

// analyzeStreamed encodes a start-sorted copy of the trace in the
// binary format and analyzes it through trace.AnalyzeReader, never
// materializing the decoded events — the path a simulator pipe takes.
func analyzeStreamed(ctx context.Context, tr *trace.Trace, ws int64) (*trace.Analysis, error) {
	sorted := &trace.Trace{
		NumReceivers: tr.NumReceivers,
		NumSenders:   tr.NumSenders,
		Horizon:      tr.Horizon,
		Events:       append([]trace.Event(nil), tr.Events...),
	}
	sort.SliceStable(sorted.Events, func(a, b int) bool {
		return sorted.Events[a].Start < sorted.Events[b].Start
	})
	var buf bytes.Buffer
	if err := trace.WriteBinary(&buf, sorted); err != nil {
		return nil, err
	}
	return trace.AnalyzeReader(ctx, &buf, ws)
}

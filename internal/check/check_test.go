package check

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// mkAnalysis builds an analysis from literal events over the given
// shape: a tiny, fully transparent problem for violation injection.
func mkAnalysis(t *testing.T, nT int, horizon, ws int64, events []trace.Event) *trace.Analysis {
	t.Helper()
	tr := &trace.Trace{NumReceivers: nT, NumSenders: 1, Horizon: horizon, Events: events}
	a, err := trace.Analyze(tr, ws)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return a
}

// overlapPair returns an analysis where receivers 0 and 1 overlap for
// 10 cycles in window 0 (of 2 windows x 20 cycles) and receiver 2 is
// quiet — enough structure to trip every constraint kind.
func overlapPair(t *testing.T) *trace.Analysis {
	t.Helper()
	return mkAnalysis(t, 3, 40, 20, []trace.Event{
		{Start: 0, Len: 10, Sender: 0, Receiver: 0},
		{Start: 0, Len: 10, Sender: 0, Receiver: 1},
		{Start: 25, Len: 5, Sender: 0, Receiver: 2},
	})
}

func kinds(r *Report) []Kind {
	out := make([]Kind, len(r.Violations))
	for i, v := range r.Violations {
		out[i] = v.Kind
	}
	return out
}

func TestAuditCleanDesign(t *testing.T) {
	a := overlapPair(t)
	opts := core.DefaultOptions()
	d, err := core.DesignCrossbar(a, opts)
	if err != nil {
		t.Fatalf("DesignCrossbar: %v", err)
	}
	rep := Audit(d, a, opts)
	if !rep.OK() {
		t.Fatalf("clean design flagged: %v", rep.Err())
	}
	if rep.Checked == 0 {
		t.Fatal("clean report checked zero constraints")
	}
	if rep.Err() != nil {
		t.Fatalf("OK report returned error %v", rep.Err())
	}
}

func TestAuditDetectsBindingViolations(t *testing.T) {
	a := overlapPair(t)
	opts := core.DefaultOptions()
	short := &core.Design{NumBuses: 2, BusOf: []int{0, 1}}
	if rep := Audit(short, a, opts); rep.OK() || rep.Violations[0].Kind != KindBinding {
		t.Errorf("short binding: got %v, want binding violation", kinds(rep))
	}
	oob := &core.Design{NumBuses: 2, BusOf: []int{0, 1, 5}}
	if rep := Audit(oob, a, opts); rep.OK() || rep.Violations[0].Kind != KindBinding {
		t.Errorf("out-of-range bus: got %v, want binding violation", kinds(rep))
	}
	if rep := Audit(nil, a, opts); rep.OK() {
		t.Error("nil design passed the audit")
	}
	if rep := Audit(&core.Design{NumBuses: 0, BusOf: []int{0, 0, 0}}, a, opts); rep.OK() {
		t.Error("zero-bus design passed the audit")
	}
}

func TestAuditDetectsCapViolation(t *testing.T) {
	a := overlapPair(t)
	opts := core.Options{OverlapThreshold: -1, MaxPerBus: 1}
	d := &core.Design{NumBuses: 3, BusOf: []int{0, 0, 1}}
	d.MaxBusOverlap = core.MaxOverlapOf(a, d.NumBuses, d.BusOf)
	rep := Audit(d, a, opts)
	found := false
	for _, v := range rep.Violations {
		if v.Kind == KindCap && v.Bus == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("cap violation not reported: %v", kinds(rep))
	}
}

func TestAuditDetectsBandwidthViolation(t *testing.T) {
	// Receivers 0 and 1 are each busy 15/20 cycles of window 0; on a
	// shared bus the 30-cycle load exceeds the window.
	a := mkAnalysis(t, 2, 20, 20, []trace.Event{
		{Start: 0, Len: 15, Sender: 0, Receiver: 0},
		{Start: 5, Len: 15, Sender: 0, Receiver: 1},
	})
	opts := core.Options{OverlapThreshold: -1}
	d := &core.Design{NumBuses: 1, BusOf: []int{0, 0}}
	d.MaxBusOverlap = core.MaxOverlapOf(a, d.NumBuses, d.BusOf)
	rep := Audit(d, a, opts)
	found := false
	for _, v := range rep.Violations {
		if v.Kind == KindBandwidth && v.Bus == 0 && v.Window == 0 && v.Got == 30 && v.Want == 20 {
			found = true
		}
	}
	if !found {
		t.Errorf("bandwidth violation not located: %+v", rep.Violations)
	}
}

func TestAuditDetectsConflictViolation(t *testing.T) {
	a := overlapPair(t)
	// Threshold 0 makes the 10-cycle overlap of (0,1) a conflict.
	opts := core.Options{OverlapThreshold: 0}
	d := &core.Design{NumBuses: 2, BusOf: []int{0, 0, 1}}
	d.MaxBusOverlap = core.MaxOverlapOf(a, d.NumBuses, d.BusOf)
	rep := Audit(d, a, opts)
	found := false
	for _, v := range rep.Violations {
		if v.Kind == KindConflict && v.ReceiverI == 0 && v.ReceiverJ == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("conflict violation not reported: %v", kinds(rep))
	}
}

func TestAuditDetectsObjectiveMismatch(t *testing.T) {
	a := overlapPair(t)
	opts := core.Options{OverlapThreshold: -1}
	d := &core.Design{NumBuses: 2, BusOf: []int{0, 0, 1}}
	d.MaxBusOverlap = core.MaxOverlapOf(a, d.NumBuses, d.BusOf) + 7
	rep := Audit(d, a, opts)
	found := false
	for _, v := range rep.Violations {
		if v.Kind == KindObjective && v.Got == v.Want+7 {
			found = true
		}
	}
	if !found {
		t.Errorf("objective mismatch not reported: %+v", rep.Violations)
	}
	if err := rep.Err(); err == nil || !strings.Contains(err.Error(), "objective") {
		t.Errorf("Err() = %v, want objective summary", err)
	}
}

func TestViolationAndKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		KindBinding: "binding", KindCap: "cap", KindBandwidth: "bandwidth",
		KindConflict: "conflict", KindObjective: "objective", Kind(99): "Kind(99)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
	v := Violation{Kind: KindCap, Msg: "bus 0 over cap"}
	if got := v.String(); got != "cap: bus 0 over cap" {
		t.Errorf("Violation.String() = %q", got)
	}
}

package check

import (
	"context"
	"fmt"
	"testing"
)

// TestDifferentialAnalysisKernels is the analysis-kernel counterpart of
// TestDifferentialSolvers: on thousands of random traces the sweep-line
// kernel, the retained legacy pairwise kernel and the streaming binary
// reader must produce bit-identical analyses — including on receiver
// counts past 64 (multi-word active bitset) and, every fourth case, on
// adaptive variable-size window boundaries.
func TestDifferentialAnalysisKernels(t *testing.T) {
	cases := int64(2000)
	if testing.Short() {
		cases = 300
	}
	for seed := int64(1); seed <= cases; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			diffs, err := AnalysisDiff(context.Background(), seed, AnalysisGenParams())
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range diffs {
				t.Errorf("case %d: %s", seed, d)
			}
		})
	}
}

// TestAnalysisDiffDeterministic pins the harness itself: the same seed
// must generate the same case (and verdict) across runs, so a failing
// case number from CI can be replayed locally.
func TestAnalysisDiffDeterministic(t *testing.T) {
	a := RandomTrace(17, AnalysisGenParams())
	b := RandomTrace(17, AnalysisGenParams())
	if a.NumReceivers != b.NumReceivers || len(a.Events) != len(b.Events) {
		t.Fatalf("RandomTrace(17) not deterministic: %d/%d receivers, %d/%d events",
			a.NumReceivers, b.NumReceivers, len(a.Events), len(b.Events))
	}
}

package check

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
)

// SolverPath is one of the design-engine configurations whose
// agreement the differential harness asserts.
type SolverPath struct {
	// Name identifies the path in disagreement reports.
	Name string
	// Configure rewrites the case options into this path's engine
	// selection, leaving every problem knob untouched.
	Configure func(core.Options) core.Options
}

// Paths returns the solver paths pinned by the harness: the
// specialized exact assignment search, the warm-started incremental
// MILP, the legacy cold-restart MILP kept behind Options.MILPLegacy
// (milp.Options.Cold), and the racing portfolio, which must land on
// the same bus count and objective as the engines it races no matter
// which contestant wins each probe.
func Paths() []SolverPath {
	return []SolverPath{
		{Name: "assign", Configure: func(o core.Options) core.Options {
			o.Engine = core.EngineBranchBound
			return o
		}},
		{Name: "milp-warm", Configure: func(o core.Options) core.Options {
			o.Engine = core.EngineMILP
			o.MILPLegacy = false
			return o
		}},
		{Name: "milp-cold", Configure: func(o core.Options) core.Options {
			o.Engine = core.EngineMILP
			o.MILPLegacy = true
			return o
		}},
		{Name: "portfolio", Configure: func(o core.Options) core.Options {
			o.Engine = core.EnginePortfolio
			return o
		}},
	}
}

// Verdict is one solver path's outcome on a case.
type Verdict struct {
	Path string
	// Feasible is false when the path proved the whole bus range
	// infeasible (core.ErrInfeasible).
	Feasible bool
	// Design is the produced design when feasible.
	Design *core.Design
	// Err holds any non-infeasibility failure (a harness error: node
	// limit, cancellation, solver defect).
	Err error
}

// DiffOutcome is the differential result of one case across all paths.
type DiffOutcome struct {
	Case     Case
	Analysis *trace.Analysis
	Verdicts []Verdict
}

// Disagreements returns a description per solver-contract breach: a
// feasibility verdict mismatch, a minimal-bus-count mismatch, an
// optimal-objective mismatch (binding mode only — the exact paths
// must agree on the optimum even when tie-broken bindings differ), or
// an audit violation in any produced design. Empty means the paths
// agree and every design is constraint-clean.
func (o *DiffOutcome) Disagreements() []string {
	var out []string
	ref := o.Verdicts[0]
	for _, v := range o.Verdicts[1:] {
		if v.Feasible != ref.Feasible {
			out = append(out, fmt.Sprintf("feasibility: %s=%v, %s=%v", ref.Path, ref.Feasible, v.Path, v.Feasible))
			continue
		}
		if !v.Feasible {
			continue
		}
		if v.Design.NumBuses != ref.Design.NumBuses {
			out = append(out, fmt.Sprintf("bus count: %s=%d, %s=%d", ref.Path, ref.Design.NumBuses, v.Path, v.Design.NumBuses))
		}
		if o.Case.Opts.OptimizeBinding && v.Design.MaxBusOverlap != ref.Design.MaxBusOverlap {
			out = append(out, fmt.Sprintf("objective: %s=%d, %s=%d", ref.Path, ref.Design.MaxBusOverlap, v.Path, v.Design.MaxBusOverlap))
		}
	}
	for _, v := range o.Verdicts {
		if !v.Feasible {
			continue
		}
		if v.Design.Capped {
			// The differential cases are sized so every engine proves its
			// answer; a budget-capped (unproven) design here means a path
			// silently degraded to best-effort.
			out = append(out, fmt.Sprintf("capped(%s): returned an unproven design on a case every path must prove", v.Path))
		}
		if rep := Audit(v.Design, o.Analysis, o.Case.Opts); !rep.OK() {
			out = append(out, fmt.Sprintf("audit(%s): %v", v.Path, rep.Err()))
		}
	}
	return out
}

// Diff analyzes the case's trace once and solves the same problem on
// every solver path. It errs only on harness failures (analysis
// errors, unexpected solver errors); disagreements between successful
// runs are data, reported by DiffOutcome.Disagreements.
func Diff(ctx context.Context, c Case) (*DiffOutcome, error) {
	a, err := trace.AnalyzeCtx(ctx, c.Trace, c.WindowSize)
	if err != nil {
		return nil, fmt.Errorf("check: analyzing case %d: %w", c.Seed, err)
	}
	out := &DiffOutcome{Case: c, Analysis: a}
	for _, path := range Paths() {
		opts := path.Configure(c.Opts)
		d, err := core.DesignCrossbarCtx(ctx, a, opts)
		v := Verdict{Path: path.Name}
		switch {
		case err == nil:
			v.Feasible = true
			v.Design = d
		case errors.Is(err, core.ErrInfeasible):
			// The negative verdict: every path must reproduce it.
		default:
			v.Err = fmt.Errorf("check: case %d, path %s: %w", c.Seed, path.Name, err)
			return nil, v.Err
		}
		out.Verdicts = append(out.Verdicts, v)
	}
	return out, nil
}

package check

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/trace"
)

// GenParams shapes the random traces of the differential harness.
// The zero value is replaced by DefaultGenParams.
type GenParams struct {
	// MaxReceivers bounds the receiver count (uniform in [1, max]).
	MaxReceivers int
	// MaxSenders bounds the sender count (uniform in [1, max]).
	MaxSenders int
	// MaxHorizon bounds the trace horizon (uniform in [8, max]).
	MaxHorizon int64
	// MaxEvents bounds the event count (uniform in [0, max]).
	MaxEvents int
	// MaxLen bounds individual transfer lengths.
	MaxLen int64
	// CriticalFrac is the probability an event is critical.
	CriticalFrac float64
}

// DefaultGenParams sizes cases so that even the cold MILP path solves
// them in milliseconds, keeping a multi-hundred-case differential run
// affordable in CI.
func DefaultGenParams() GenParams {
	return GenParams{
		MaxReceivers: 6,
		MaxSenders:   4,
		MaxHorizon:   240,
		MaxEvents:    40,
		MaxLen:       12,
		CriticalFrac: 0.15,
	}
}

// RandomTrace generates a structurally valid trace from the seed.
// Identical seeds and params yield identical traces across runs and
// platforms (math/rand's generator sequence is stable for a source
// seed), which is what lets a failing case number be replayed.
func RandomTrace(seed int64, p GenParams) *trace.Trace {
	if p == (GenParams{}) {
		p = DefaultGenParams()
	}
	rng := rand.New(rand.NewSource(seed))
	nT := 1 + rng.Intn(p.MaxReceivers)
	nS := 1 + rng.Intn(p.MaxSenders)
	horizon := 8 + rng.Int63n(p.MaxHorizon-7)
	nE := rng.Intn(p.MaxEvents + 1)
	tr := &trace.Trace{
		NumReceivers: nT,
		NumSenders:   nS,
		Horizon:      horizon,
		Events:       make([]trace.Event, 0, nE),
	}
	for e := 0; e < nE; e++ {
		start := rng.Int63n(horizon)
		maxLen := p.MaxLen
		if rem := horizon - start; rem < maxLen {
			maxLen = rem
		}
		tr.Events = append(tr.Events, trace.Event{
			Start:    start,
			Len:      1 + rng.Int63n(maxLen),
			Sender:   rng.Intn(nS),
			Receiver: rng.Intn(nT),
			Critical: rng.Float64() < p.CriticalFrac,
		})
	}
	return tr
}

// Case is one differential problem: a trace, a window size and the
// methodology options to solve under (Engine is overridden per solver
// path by Diff).
type Case struct {
	Seed       int64
	Trace      *trace.Trace
	WindowSize int64
	Opts       core.Options
}

// RandomCase derives a full problem from the seed: a random trace plus
// randomized-but-valid methodology options spanning the knobs the
// three solver paths must agree under — overlap threshold (including
// disabled), critical separation, per-bus cap (including uncapped),
// bus-range clamps (including infeasibly tight MaxBuses, to exercise
// the infeasibility verdict), and both binding modes.
func RandomCase(seed int64, p GenParams) Case {
	tr := RandomTrace(seed, p)
	rng := rand.New(rand.NewSource(seed ^ 0x5bf0_3635))
	thresholds := []float64{-1, 0, 0.1, 0.3, 0.5, 1}
	opts := core.Options{
		OverlapThreshold: thresholds[rng.Intn(len(thresholds))],
		SeparateCritical: rng.Intn(2) == 0,
		MaxPerBus:        rng.Intn(4), // 0 = uncapped
		OptimizeBinding:  rng.Intn(4) != 0,
		Workers:          1,
	}
	if rng.Intn(4) == 0 {
		// Infeasibility exercise: a MaxBuses below the receiver count
		// can make every bus count in range infeasible; all solver
		// paths must agree that it is.
		opts.MaxBuses = 1 + rng.Intn(tr.NumReceivers)
	}
	ws := 1 + rng.Int63n(tr.Horizon)
	if rng.Intn(8) == 0 {
		ws = tr.Horizon + 1 + rng.Int63n(64) // window larger than horizon
	}
	return Case{Seed: seed, Trace: tr, WindowSize: ws, Opts: opts}
}

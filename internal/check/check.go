// Package check is the correctness harness of the design pipeline: an
// independent evaluator that keeps the optimizers honest, in the
// spirit of the external evaluators used by automated-NoC-design
// frameworks (see PAPERS.md).
//
// It provides two instruments:
//
//   - an auditor (Audit) that recomputes every paper constraint a
//     produced binding was solved under — Eq. 3 (one bus per target),
//     Eq. 4 (per-window per-bus bandwidth), Eq. 7 (conflict
//     separation), Eq. 8 (targets-per-bus cap) — plus objective
//     consistency (the reported maxov of Eq. 11 must equal the
//     recomputed maximum per-bus aggregate overlap), returning
//     structured violations rather than a bool; and
//   - a differential harness (Diff, RandomCase) that runs the
//     specialized assignment solver, the warm-started MILP and the
//     legacy cold MILP path on the same seeded random problem and
//     asserts identical feasibility verdicts and optimal objectives.
//
// The auditor deliberately shares no code with the solvers' pruned
// search state: it re-derives loads and overlaps from the Analysis
// matrices over all windows (not the Pareto-reduced set), so a solver
// bug in the reduction or the incremental bookkeeping cannot hide
// itself. It does share BuildConflicts — the conflict matrix is an
// input to the problem, not a solver artifact.
package check

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/trace"
)

// Kind classifies a violation by the paper constraint it breaks.
type Kind int

const (
	// KindBinding is a structural defect: the binding does not place
	// every receiver on exactly one in-range bus (Eq. 3).
	KindBinding Kind = iota
	// KindCap is a targets-per-bus cap violation (Eq. 8).
	KindCap
	// KindBandwidth is a per-window per-bus bandwidth violation (Eq. 4).
	KindBandwidth
	// KindConflict is a conflict pair sharing a bus (Eq. 2 / Eq. 7).
	KindConflict
	// KindObjective is an objective inconsistency: the design's
	// reported MaxBusOverlap differs from the recomputed maximum
	// per-bus aggregate overlap (Eq. 11).
	KindObjective
)

func (k Kind) String() string {
	switch k {
	case KindBinding:
		return "binding"
	case KindCap:
		return "cap"
	case KindBandwidth:
		return "bandwidth"
	case KindConflict:
		return "conflict"
	case KindObjective:
		return "objective"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Violation is one broken constraint, located as precisely as the
// constraint allows. Fields that do not apply hold -1.
type Violation struct {
	Kind Kind
	// Bus is the offending bus, or -1.
	Bus int
	// Window is the offending analysis window, or -1.
	Window int
	// ReceiverI / ReceiverJ locate the offending receiver (pair);
	// ReceiverJ is -1 for single-receiver violations.
	ReceiverI, ReceiverJ int
	// Got / Want quantify the violation where meaningful (load vs
	// window length, reported vs recomputed objective, ...).
	Got, Want int64
	// Msg is the human-readable description.
	Msg string
}

func (v Violation) String() string { return v.Kind.String() + ": " + v.Msg }

// Report is the structured outcome of one audit.
type Report struct {
	// Violations holds every broken constraint found, in deterministic
	// order (structural, cap, bandwidth, conflict, objective).
	Violations []Violation
	// Checked counts the individual constraints evaluated, so a
	// passing report can be told apart from a vacuous one.
	Checked int
}

// OK reports whether the audit found no violations.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Err returns nil for a clean report, or an error summarizing up to
// three violations (and the total count) otherwise.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "check: design violates %d constraint(s): ", len(r.Violations))
	for i, v := range r.Violations {
		if i == 3 {
			fmt.Fprintf(&b, "; ...")
			break
		}
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(v.String())
	}
	return fmt.Errorf("%s", b.String())
}

func (r *Report) add(v Violation) { r.Violations = append(r.Violations, v) }

// Audit recomputes every constraint the design was solved under
// against the analysis it was designed from, with the same option set.
// It returns a structured report; Audit(...).Err() is the one-liner
// form. A nil design or analysis yields a single structural violation
// rather than a panic, so the auditor is safe at trust boundaries.
func Audit(d *core.Design, a *trace.Analysis, opts core.Options) *Report {
	r := &Report{}
	if d == nil || a == nil {
		r.add(Violation{Kind: KindBinding, Bus: -1, Window: -1, ReceiverI: -1, ReceiverJ: -1,
			Msg: "nil design or analysis"})
		return r
	}
	nT := a.NumReceivers

	// Eq. 3 — every receiver on exactly one in-range bus. The slice
	// representation makes "at most one" structural; coverage and
	// range are what can break.
	r.Checked++
	if len(d.BusOf) != nT {
		r.add(Violation{Kind: KindBinding, Bus: -1, Window: -1, ReceiverI: -1, ReceiverJ: -1,
			Got: int64(len(d.BusOf)), Want: int64(nT),
			Msg: fmt.Sprintf("binding covers %d receivers, analysis has %d", len(d.BusOf), nT)})
		return r // every other check indexes by receiver; stop here
	}
	if d.NumBuses <= 0 {
		r.add(Violation{Kind: KindBinding, Bus: -1, Window: -1, ReceiverI: -1, ReceiverJ: -1,
			Got: int64(d.NumBuses), Want: 1,
			Msg: fmt.Sprintf("non-positive bus count %d", d.NumBuses)})
		return r
	}
	for t, b := range d.BusOf {
		r.Checked++
		if b < 0 || b >= d.NumBuses {
			r.add(Violation{Kind: KindBinding, Bus: b, Window: -1, ReceiverI: t, ReceiverJ: -1,
				Got: int64(b), Want: int64(d.NumBuses),
				Msg: fmt.Sprintf("receiver %d on bus %d outside [0,%d)", t, b, d.NumBuses)})
		}
	}
	if !r.OK() {
		return r // out-of-range buses would misindex the per-bus tallies
	}

	// Eq. 8 — targets-per-bus cap, resolved exactly as the solvers
	// resolve it (non-positive or over-wide caps mean "no cap").
	maxPerBus := opts.MaxPerBus
	if maxPerBus <= 0 || maxPerBus > nT {
		maxPerBus = nT
	}
	count := make([]int, d.NumBuses)
	for _, b := range d.BusOf {
		count[b]++
	}
	for b, c := range count {
		r.Checked++
		if c > maxPerBus {
			r.add(Violation{Kind: KindCap, Bus: b, Window: -1, ReceiverI: -1, ReceiverJ: -1,
				Got: int64(c), Want: int64(maxPerBus),
				Msg: fmt.Sprintf("bus %d carries %d receivers, cap is %d", b, c, maxPerBus)})
		}
	}

	// Eq. 4 — per-window per-bus bandwidth, over ALL windows. The
	// solvers constrain only the Pareto-maximal windows; auditing the
	// full set is exactly what catches a bug in that reduction.
	load := make([]int64, d.NumBuses)
	for m := 0; m < a.NumWindows(); m++ {
		for b := range load {
			load[b] = 0
		}
		for t, b := range d.BusOf {
			load[b] += a.Comm.At(t, m)
		}
		wl := a.WindowLen(m)
		for b, l := range load {
			r.Checked++
			if l > wl {
				r.add(Violation{Kind: KindBandwidth, Bus: b, Window: m, ReceiverI: -1, ReceiverJ: -1,
					Got: l, Want: wl,
					Msg: fmt.Sprintf("bus %d loaded %d cycles in window %d of length %d", b, l, m, wl)})
			}
		}
	}

	// Eq. 2 / Eq. 7 — conflict pairs must not share a bus. The
	// conflict matrix is re-derived from the analysis with the same
	// options the design was solved under.
	conflicts := core.BuildConflicts(a, opts)
	for i := 0; i < nT; i++ {
		for j := i + 1; j < nT; j++ {
			r.Checked++
			if conflicts[i][j] && d.BusOf[i] == d.BusOf[j] {
				r.add(Violation{Kind: KindConflict, Bus: d.BusOf[i], Window: -1, ReceiverI: i, ReceiverJ: j,
					Msg: fmt.Sprintf("conflicting receivers %d and %d share bus %d", i, j, d.BusOf[i])})
			}
		}
	}

	// Eq. 11 consistency — the reported objective must equal the
	// maximum per-bus aggregate overlap recomputed from OM.
	r.Checked++
	if got := core.MaxOverlapOf(a, d.NumBuses, d.BusOf); got != d.MaxBusOverlap {
		r.add(Violation{Kind: KindObjective, Bus: -1, Window: -1, ReceiverI: -1, ReceiverJ: -1,
			Got: d.MaxBusOverlap, Want: got,
			Msg: fmt.Sprintf("reported max bus overlap %d, recomputed %d", d.MaxBusOverlap, got)})
	}
	return r
}

package check

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/trace"
)

func mkEvent(start, length int64, r int) trace.Event {
	return trace.Event{Start: start, Len: length, Sender: 0, Receiver: r}
}

// TestRandomTraceDeterministic pins the generator's replayability: the
// same seed must produce the identical trace, or a reported failing
// case number would be useless.
func TestRandomTraceDeterministic(t *testing.T) {
	p := DefaultGenParams()
	for seed := int64(0); seed < 10; seed++ {
		a, b := RandomTrace(seed, p), RandomTrace(seed, p)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: non-deterministic trace", seed)
		}
	}
}

// TestRandomTraceValid ensures every generated trace satisfies the
// structural invariants the pipeline assumes.
func TestRandomTraceValid(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		if err := RandomTrace(seed, GenParams{}).Validate(); err != nil {
			t.Fatalf("seed %d: invalid trace: %v", seed, err)
		}
	}
}

// TestDifferentialSolvers is the solver-agreement gate: ≥200 seeded
// cases solved by the specialized assignment search, the warm MILP and
// the legacy cold MILP must produce identical feasibility verdicts,
// identical minimal bus counts, identical optimal objectives (binding
// mode), and constraint-clean designs under the independent auditor.
func TestDifferentialSolvers(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep skipped in -short mode")
	}
	const cases = 220
	for seed := int64(1); seed <= cases; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			c := RandomCase(seed, DefaultGenParams())
			out, err := Diff(context.Background(), c)
			if err != nil {
				t.Fatalf("case %d: %v", seed, err)
			}
			for _, d := range out.Disagreements() {
				t.Errorf("case %d (nT=%d, ws=%d, opts=%+v): %s",
					seed, c.Trace.NumReceivers, c.WindowSize, c.Opts, d)
			}
		})
	}
}

// TestDiffInfeasibleAgreement forces the infeasible verdict directly:
// MaxBuses=1 with a guaranteed conflict leaves no feasible count, and
// all three paths must say so.
func TestDiffInfeasibleAgreement(t *testing.T) {
	c := RandomCase(3, DefaultGenParams())
	// Rebuild a case that must be infeasible: two receivers that
	// overlap the full horizon, threshold 0, one bus allowed.
	c.Trace.NumReceivers = 2
	c.Trace.Events = c.Trace.Events[:0]
	for r := 0; r < 2; r++ {
		c.Trace.Events = append(c.Trace.Events, mkEvent(0, c.Trace.Horizon, r))
	}
	c.WindowSize = c.Trace.Horizon
	c.Opts.OverlapThreshold = 0
	c.Opts.MaxPerBus = 0
	c.Opts.MaxBuses = 1
	out, err := Diff(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range out.Verdicts {
		if v.Feasible {
			t.Errorf("path %s found the infeasible case feasible", v.Path)
		}
	}
	if ds := out.Disagreements(); len(ds) != 0 {
		t.Errorf("unexpected disagreements: %v", ds)
	}
}

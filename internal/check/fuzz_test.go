package check

import (
	"context"
	"encoding/binary"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// decodeDesignCase turns fuzz bytes into a small valid design problem:
// a trace, a window size and an option set. Sizes are capped so the
// exact search stays fast; nil means the bytes cannot shape a problem.
func decodeDesignCase(data []byte) (*trace.Trace, int64, core.Options) {
	if len(data) < 6 {
		return nil, 0, core.Options{}
	}
	tr := &trace.Trace{
		NumReceivers: 1 + int(data[0]%6),
		NumSenders:   1 + int(data[1]%3),
		Horizon:      16 + int64(binary.LittleEndian.Uint16(data[2:4]))%240,
	}
	thresholds := []float64{-1, 0, 0.1, 0.3, 0.5, 1}
	opts := core.Options{
		OverlapThreshold: thresholds[int(data[4])%len(thresholds)],
		SeparateCritical: data[4]&0x40 != 0,
		MaxPerBus:        int(data[5] % 4),
		OptimizeBinding:  data[5]&0x10 != 0,
		MaxNodes:         200_000,
		Workers:          1,
	}
	ws := 1 + int64(data[5]>>5)*int64(data[2])%tr.Horizon
	data = data[6:]
	const evBytes = 6
	for len(data) >= evBytes && len(tr.Events) < 32 {
		start := int64(binary.LittleEndian.Uint16(data[0:2])) % tr.Horizon
		rem := tr.Horizon - start
		tr.Events = append(tr.Events, trace.Event{
			Start:    start,
			Len:      1 + int64(binary.LittleEndian.Uint16(data[2:4]))%rem,
			Sender:   int(data[4]) % tr.NumSenders,
			Receiver: int(data[5]>>1) % tr.NumReceivers,
			Critical: data[5]&1 != 0,
		})
		data = data[evBytes:]
	}
	return tr, ws, opts
}

// FuzzDesignTrace runs the default solver end to end on arbitrary
// small problems: the design must either fail with a classified
// sentinel (infeasible / search limit) or produce a binding that the
// independent auditor certifies against every paper constraint.
func FuzzDesignTrace(f *testing.F) {
	f.Add([]byte{3, 1, 40, 0, 2, 0x13, 0, 0, 8, 0, 0, 2, 5, 0, 6, 0, 1, 4})
	f.Add([]byte{5, 2, 100, 0, 0, 0x31})
	f.Add([]byte{1, 1, 16, 0, 5, 0x02}) // single receiver, no overlap pairs
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, ws, opts := decodeDesignCase(data)
		if tr == nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("decoder produced an invalid trace: %v", err)
		}
		a, err := trace.Analyze(tr, ws)
		if err != nil {
			t.Fatalf("Analyze rejected a valid problem: %v", err)
		}
		d, err := core.DesignCrossbarCtx(context.Background(), a, opts)
		if err != nil {
			if errors.Is(err, core.ErrInfeasible) || errors.Is(err, core.ErrSearchLimit) {
				return
			}
			t.Fatalf("unclassified design failure: %v", err)
		}
		if rep := Audit(d, a, opts); !rep.OK() {
			t.Fatalf("design failed its audit: %v (binding %v over %d buses)",
				rep.Err(), d.BusOf, d.NumBuses)
		}
	})
}

package obs

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBusFanOutConcurrentPublishers(t *testing.T) {
	b := NewBus()
	const subs = 3
	const publishers, perPublisher = 4, 500
	var received [subs]int
	var wg sync.WaitGroup
	for i := 0; i < subs; i++ {
		s := b.Subscribe(publishers*perPublisher + 1)
		wg.Add(1)
		go func(i int, s *BusSub) {
			defer wg.Done()
			for {
				select {
				case <-s.ch:
					received[i]++
				case <-s.done:
					// Drain what the close raced past.
					for {
						select {
						case <-s.ch:
							received[i]++
						default:
							return
						}
					}
				}
			}
		}(i, s)
	}
	var pwg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		pwg.Add(1)
		go func() {
			defer pwg.Done()
			for i := 0; i < perPublisher; i++ {
				b.Publish("flight", []byte(`{}`))
			}
		}()
	}
	pwg.Wait()
	b.Close()
	wg.Wait()
	for i, got := range received {
		if got != publishers*perPublisher {
			t.Errorf("subscriber %d received %d frames, want %d (buffer was large enough for all)",
				i, got, publishers*perPublisher)
		}
	}
	if b.Subscribers() != 0 {
		t.Errorf("closed bus reports %d subscribers", b.Subscribers())
	}
}

func TestBusSlowSubscriberDropsNotBlocks(t *testing.T) {
	b := NewBus()
	slow := b.Subscribe(2) // tiny buffer, never drained
	fast := b.Subscribe(64)
	const frames = 32
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < frames; i++ {
			b.Publish("metrics", []byte(`{}`))
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publisher blocked on a slow subscriber")
	}
	if got := slow.Dropped(); got != frames-2 {
		t.Errorf("slow subscriber dropped %d frames, want %d", got, frames-2)
	}
	if fast.Dropped() != 0 {
		t.Errorf("fast subscriber dropped %d frames, want 0", fast.Dropped())
	}
	if len(fast.ch) != frames {
		t.Errorf("fast subscriber buffered %d frames, want %d", len(fast.ch), frames)
	}
	b.Unsubscribe(slow)
	b.Unsubscribe(fast)
	b.Publish("metrics", []byte(`{}`)) // no subscribers: must not panic
	// Subscribing after Close yields an already-terminated subscription.
	b.Close()
	dead := b.Subscribe(0)
	select {
	case <-dead.done:
	default:
		t.Error("subscription to a closed bus is not terminated")
	}
}

// readSSEEvent reads one "event:"/"data:" frame, skipping comments.
func readSSEEvent(t *testing.T, r *bufio.Reader) (name, data string) {
	t.Helper()
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE stream read: %v", err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case line == "" && name != "":
			return name, data
		}
	}
}

func TestBusSSEStream(t *testing.T) {
	b := NewBus()
	srv := httptest.NewServer(b)
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q, want text/event-stream", ct)
	}
	// Wait for the subscription before publishing, or the frame races
	// the handler's Subscribe.
	deadline := time.Now().Add(5 * time.Second)
	for b.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("SSE handler never subscribed")
		}
		time.Sleep(time.Millisecond)
	}

	br := bufio.NewReader(resp.Body)
	b.PublishEvent(Event{Seq: 7, Kind: EvIncumbent, K: 3, Val: 42, Who: "bb"})
	name, data := readSSEEvent(t, br)
	if name != "flight" {
		t.Fatalf("event name = %q, want flight", name)
	}
	for _, want := range []string{`"kind":"incumbent"`, `"val":42`, `"who":"bb"`} {
		if !strings.Contains(data, want) {
			t.Errorf("flight frame %q missing %s", data, want)
		}
	}

	// Cancel the request: the handler must unwind and unsubscribe —
	// the no-goroutine-leak property observable from outside.
	cancel()
	deadline = time.Now().Add(5 * time.Second)
	for b.Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("handler leaked its subscription after client cancel")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBusSSECloseSendsBye(t *testing.T) {
	b := NewBus()
	srv := httptest.NewServer(b)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for b.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("SSE handler never subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	b.Close()
	name, _ := readSSEEvent(t, bufio.NewReader(resp.Body))
	if name != "bye" {
		t.Fatalf("closing the bus sent %q, want bye", name)
	}
}

// TestBusSSEDroppedEventReported pins the backpressure surface: when the
// bus discards frames for a subscriber, the next delivered frame is
// preceded by a "dropped" event carrying the cumulative count.
func TestBusSSEDroppedEventReported(t *testing.T) {
	b := NewBus()
	// Drive ServeHTTP directly with a pipe-backed writer so the handler
	// can be stalled deterministically: no reads happen until the
	// publisher has overrun the subscription buffer.
	pr, pw := newBlockingRecorder()
	req := httptest.NewRequest(http.MethodGet, "/events", nil)
	handlerDone := make(chan struct{})
	go func() {
		defer close(handlerDone)
		b.ServeHTTP(pw, req)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for b.Subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("SSE handler never subscribed")
		}
		time.Sleep(time.Millisecond)
	}
	// The handler is stalled in its very first write (the recorder
	// blocks until the test reads), so no frames drain from the
	// subscription while the publisher overruns its buffer.
	var sub *BusSub
	b.mu.RLock()
	for s := range b.subs {
		sub = s
	}
	b.mu.RUnlock()
	for i := 0; i < 2*DefaultSubBuffer; i++ {
		b.Publish("metrics", []byte(`{"x":1}`))
	}
	if sub.Dropped() == 0 {
		t.Fatal("overrun never dropped a frame")
	}
	// Unblock the handler by reading: the first event frame delivered
	// must be the backpressure report.
	br := bufio.NewReader(pr)
	name, data := readSSEEvent(t, br)
	if name != "dropped" {
		t.Fatalf("first event after an overrun = %q, want dropped", name)
	}
	if !strings.Contains(data, `"dropped":`) {
		t.Errorf("dropped frame payload = %q", data)
	}
	b.Close()
	pr.CloseRead()
	<-handlerDone
}

// blockingRecorder is an http.ResponseWriter + Flusher whose Write
// blocks until a reader drains it, so a test controls exactly when the
// handler's writes complete — the deterministic stand-in for a stalled
// TCP client.
type blockingRecorder struct {
	w      *pipeWriter
	header http.Header
}

type pipeWriter struct {
	mu     sync.Mutex
	buf    []byte
	cond   *sync.Cond
	closed bool
}

func newBlockingRecorder() (*pipeReader, *blockingRecorder) {
	pw := &pipeWriter{}
	pw.cond = sync.NewCond(&pw.mu)
	return &pipeReader{pw: pw}, &blockingRecorder{w: pw, header: http.Header{}}
}

func (r *blockingRecorder) Header() http.Header { return r.header }
func (r *blockingRecorder) WriteHeader(int)     {}
func (r *blockingRecorder) Flush()              {}
func (r *blockingRecorder) Write(p []byte) (int, error) {
	r.w.mu.Lock()
	defer r.w.mu.Unlock()
	for len(r.w.buf) > 0 && !r.w.closed {
		r.w.cond.Wait()
	}
	if r.w.closed {
		return 0, fmt.Errorf("recorder closed")
	}
	r.w.buf = append(r.w.buf, p...)
	r.w.cond.Broadcast()
	return len(p), nil
}

type pipeReader struct{ pw *pipeWriter }

func (r *pipeReader) Read(p []byte) (int, error) {
	r.pw.mu.Lock()
	defer r.pw.mu.Unlock()
	for len(r.pw.buf) == 0 && !r.pw.closed {
		r.pw.cond.Wait()
	}
	if len(r.pw.buf) == 0 {
		return 0, fmt.Errorf("recorder closed")
	}
	n := copy(p, r.pw.buf)
	r.pw.buf = r.pw.buf[n:]
	if len(r.pw.buf) == 0 {
		r.pw.cond.Broadcast() // wake writers waiting for the drain
	}
	return n, nil
}

func (r *pipeReader) CloseRead() {
	r.pw.mu.Lock()
	r.pw.closed = true
	r.pw.cond.Broadcast()
	r.pw.mu.Unlock()
}

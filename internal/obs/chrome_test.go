package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestChromeTraceGolden locks the exported JSON down byte for byte.
// The fake clock makes the timestamps deterministic, and
// encoding/json sorts map keys, so any diff here is a real format
// change — chrome://tracing and Perfetto both parse this shape.
func TestChromeTraceGolden(t *testing.T) {
	tr, advance := fakeTracer()
	ctx := WithTracer(context.Background(), tr)

	ctx, root := Start(ctx, "designer.design")
	root.SetStr("app", "mat2")
	advance(2 * time.Millisecond)
	_, child := Start(ctx, "sim.run")
	child.SetInt("horizon", 1000)
	advance(3 * time.Millisecond)
	child.End()
	advance(1 * time.Millisecond)
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := `{"traceEvents":[` +
		`{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"stbusgen"}},` +
		`{"name":"designer.design","ph":"X","ts":0,"dur":6000,"pid":1,"tid":0,"args":{"app":"mat2"}},` +
		`{"name":"sim.run","ph":"X","ts":2000,"dur":3000,"pid":1,"tid":0,"args":{"horizon":1000}}` +
		`],"displayTimeUnit":"ms"}` + "\n"
	if got := buf.String(); got != golden {
		t.Errorf("chrome trace mismatch:\ngot:  %s\nwant: %s", got, golden)
	}
}

// TestChromeTraceLanes checks the lane (tid) assignment invariants on
// a parallel shape: two overlapping siblings must land on different
// lanes, and a child must share its parent's lane so the viewer nests
// them.
func TestChromeTraceLanes(t *testing.T) {
	tr, advance := fakeTracer()

	root := StartDetached(tr, nil, "root")
	a := StartDetached(tr, root, "worker.a")
	b := StartDetached(tr, root, "worker.b") // overlaps a
	advance(1 * time.Millisecond)
	aChild := StartDetached(tr, a, "worker.a.inner")
	advance(1 * time.Millisecond)
	aChild.End()
	a.End()
	b.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	lane := map[string]int{}
	for _, e := range parsed.TraceEvents {
		if e.Ph == "X" {
			lane[e.Name] = e.Tid
		}
	}
	if lane["worker.a"] == lane["worker.b"] {
		t.Errorf("overlapping siblings share lane %d", lane["worker.a"])
	}
	if lane["worker.a.inner"] != lane["worker.a"] {
		t.Errorf("child on lane %d, parent on %d; want same", lane["worker.a.inner"], lane["worker.a"])
	}
	if lane["root"] != 0 {
		t.Errorf("root on lane %d, want 0", lane["root"])
	}
}

// TestChromeTraceUnendedSpansOmitted: only finished spans are
// exported; an unended span must not corrupt the JSON.
func TestChromeTraceUnendedSpansOmitted(t *testing.T) {
	tr, advance := fakeTracer()
	open := StartDetached(tr, nil, "never.ends")
	done := StartDetached(tr, open, "done")
	advance(time.Millisecond)
	done.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "never.ends") {
		t.Error("unended span leaked into the export")
	}
	if !strings.Contains(out, `"done"`) {
		t.Error("finished span missing from the export")
	}
}

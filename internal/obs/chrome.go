package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event JSON array. Only
// the "X" (complete) and "M" (metadata) phases are emitted.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds since trace start
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports every finished span as Chrome trace-event
// JSON (the format chrome://tracing and Perfetto load). Spans are laid
// out on "threads" (tid lanes) such that each lane holds a laminar
// family — a child always sits on its parent's lane and overlapping
// siblings get distinct lanes — so the viewers render call-stack
// nesting correctly even for the engine's parallel phases.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	// Start-order (ties: longer first, then id) is the order lane
	// assignment must see spans in: a parent starts no later than its
	// children and outlives them, so it is placed first.
	sort.Slice(spans, func(a, b int) bool {
		if spans[a].Start != spans[b].Start {
			return spans[a].Start < spans[b].Start
		}
		if spans[a].Dur != spans[b].Dur {
			return spans[a].Dur > spans[b].Dur
		}
		return spans[a].ID < spans[b].ID
	})

	lanes := assignLanes(spans)

	events := make([]chromeEvent, 0, len(spans)+1)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": "stbusgen"},
	})
	for i, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start.Nanoseconds()) / 1e3,
			Dur:  float64(s.Dur.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  lanes[i],
		}
		if len(s.Attrs) > 0 {
			args := make(map[string]any, len(s.Attrs))
			for _, a := range s.Attrs {
				args[a.Key] = a.Value()
			}
			ev.Args = args
		}
		events = append(events, ev)
	}

	enc := json.NewEncoder(w)
	if err := enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"}); err != nil {
		return fmt.Errorf("obs: writing chrome trace: %w", err)
	}
	return nil
}

// assignLanes maps each span (in start order) to a tid lane so that
// every lane is a properly nested (laminar) interval family: a span
// goes on its parent's lane when the parent is the innermost interval
// still open there, otherwise on the first idle lane. Chrome's trace
// viewer stacks time-nested "X" events of one tid, so this renders
// parent/child structure without ever overlapping siblings.
func assignLanes(spans []SpanRecord) []int {
	type active struct {
		id  int64
		end int64 // ns offset
	}
	laneOf := make([]int, len(spans))
	var stacks [][]active // per-lane stack of open spans
	for i, s := range spans {
		startNS := s.Start.Nanoseconds()
		endNS := startNS + s.Dur.Nanoseconds()
		// Retire spans that ended at or before this start.
		for l := range stacks {
			st := stacks[l]
			for len(st) > 0 && st[len(st)-1].end <= startNS {
				st = st[:len(st)-1]
			}
			stacks[l] = st
		}
		lane := -1
		if s.Parent != 0 {
			for l, st := range stacks {
				if len(st) > 0 && st[len(st)-1].id == s.Parent {
					lane = l
					break
				}
			}
		}
		if lane == -1 {
			for l, st := range stacks {
				if len(st) == 0 {
					lane = l
					break
				}
			}
		}
		if lane == -1 {
			lane = len(stacks)
			stacks = append(stacks, nil)
		}
		stacks[lane] = append(stacks[lane], active{id: s.ID, end: endNS})
		laneOf[i] = lane
	}
	return laneOf
}

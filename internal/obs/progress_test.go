package obs

import (
	"bufio"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeTelemetryGracefulShutdown pins the shutdown contract: an SSE
// subscriber connected while the server shuts down sees its bye frame
// and a clean end of stream (io.EOF), never a connection reset. The old
// implementation called http.Server.Close, which hard-dropped the TCP
// connection under the still-running handler.
func TestServeTelemetryGracefulShutdown(t *testing.T) {
	bus := NewBus()
	bound, serveErr, shutdown, err := ServeTelemetry("127.0.0.1:0", TelemetryConfig{Bus: bus})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + bound + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	type streamEnd struct {
		bye bool
		err error
	}
	endCh := make(chan streamEnd, 1)
	go func() {
		br := bufio.NewReader(resp.Body)
		var end streamEnd
		for {
			line, err := br.ReadString('\n')
			if strings.HasPrefix(line, "event: bye") {
				end.bye = true
			}
			if err != nil {
				if err != io.EOF {
					end.err = err
				}
				endCh <- end
				return
			}
		}
	}()

	deadline := time.Now().Add(10 * time.Second)
	for bus.Subscribers() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("SSE subscriber never attached")
		}
		time.Sleep(time.Millisecond)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case end := <-endCh:
		if !end.bye {
			t.Error("stream ended without a bye frame")
		}
		if end.err != nil {
			t.Errorf("stream ended uncleanly: %v (want io.EOF)", end.err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not end after shutdown")
	}

	// The serve goroutine exited cleanly: the error channel is closed
	// and yields nil (ErrServerClosed is filtered).
	select {
	case err := <-serveErr:
		if err != nil {
			t.Errorf("serve error after clean shutdown: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("serve-error channel not closed after shutdown")
	}
}

// TestFlightEventsSince pins the incremental read the per-job SSE
// streamer depends on: a cursor past the retained window yields
// nothing, a mid-window cursor yields exactly the tail, and ring
// overwrite shifts the effective start forward.
func TestFlightEventsSince(t *testing.T) {
	r := NewFlightRecorder(4)
	for i := 0; i < 6; i++ {
		r.Emit(Event{Kind: EvNodes, Val: int64(i)})
	}
	// Seqs 0..5 emitted; ring of 4 retains 2..5.
	if got := len(r.EventsSince(0)); got != 4 {
		t.Fatalf("EventsSince(0) = %d events, want 4", got)
	}
	tail := r.EventsSince(4)
	if len(tail) != 2 || tail[0].Seq != 4 || tail[1].Seq != 5 {
		t.Fatalf("EventsSince(4) = %+v, want seqs 4,5", tail)
	}
	if got := r.EventsSince(6); got != nil {
		t.Fatalf("EventsSince(6) = %+v, want nil", got)
	}
	var nilRec *FlightRecorder
	if got := nilRec.EventsSince(0); got != nil {
		t.Fatalf("nil recorder EventsSince = %+v, want nil", got)
	}
}

package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeFlightRecorder returns a recorder driven by a manual clock, so
// event timestamps are deterministic.
func fakeFlightRecorder(capacity int) (r *FlightRecorder, advance func(d time.Duration)) {
	now := time.Unix(2000, 0)
	r = &FlightRecorder{now: func() time.Time { return now }, buf: make([]Event, capacity)}
	r.epoch = now
	return r, func(d time.Duration) { now = now.Add(d) }
}

func TestFlightRecorderStampsAndOrders(t *testing.T) {
	r, advance := fakeFlightRecorder(8)
	r.Emit(Event{Kind: EvDesignStart, Val: 12, Who: "portfolio"})
	advance(time.Millisecond)
	r.Emit(Event{Kind: EvProbeOpen, K: 3})
	advance(time.Millisecond)
	r.Emit(Event{Kind: EvProbeClose, K: 3, Who: "feasible", Val: 7})

	events := r.Events()
	if len(events) != 3 {
		t.Fatalf("got %d events, want 3", len(events))
	}
	for i, e := range events {
		if e.Seq != int64(i) {
			t.Errorf("event %d has Seq %d", i, e.Seq)
		}
	}
	if events[1].T != time.Millisecond.Nanoseconds() || events[2].T != (2*time.Millisecond).Nanoseconds() {
		t.Errorf("timestamps = %d, %d; want 1ms, 2ms", events[1].T, events[2].T)
	}
	if r.Emitted() != 3 || r.Dropped() != 0 {
		t.Errorf("emitted/dropped = %d/%d, want 3/0", r.Emitted(), r.Dropped())
	}
}

func TestFlightRecorderRingWrap(t *testing.T) {
	r, _ := fakeFlightRecorder(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Kind: EvNodes, Val: int64(i), Who: "bb"})
	}
	if r.Emitted() != 10 {
		t.Errorf("emitted = %d, want 10", r.Emitted())
	}
	if r.Dropped() != 6 {
		t.Errorf("dropped = %d, want 6", r.Dropped())
	}
	events := r.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d events, want 4", len(events))
	}
	for i, e := range events {
		if want := int64(6 + i); e.Val != want || e.Seq != want {
			t.Errorf("retained[%d] = Seq %d Val %d, want %d", i, e.Seq, e.Val, want)
		}
	}
}

func TestFlightNDJSONRoundTrip(t *testing.T) {
	r, advance := fakeFlightRecorder(16)
	r.Emit(Event{Kind: EvDesignStart, Val: 12, Who: "portfolio"})
	advance(time.Millisecond)
	r.Emit(Event{Kind: EvProbeOpen, K: 4, Flag: true})
	r.Emit(Event{Kind: EvIncumbent, K: 4, Val: 99, Aux: 2, Who: "bb"})
	r.Emit(Event{Kind: EvProbeClose, K: 4, Flag: true, Who: "feasible", Val: 42, Aux: 1234})
	r.Emit(Event{Kind: EvDesignDone, K: 4, Val: 42, Aux: 1234})

	var buf bytes.Buffer
	if err := r.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	events, meta, err := ReadNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Flight != 1 || meta.Emitted != 5 || meta.Dropped != 0 {
		t.Errorf("meta = %+v, want flight 1, 5 emitted, 0 dropped", meta)
	}
	want := r.Events()
	if len(events) != len(want) {
		t.Fatalf("round-trip kept %d events, want %d", len(events), len(want))
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("event %d round-tripped to %+v, want %+v", i, events[i], want[i])
		}
	}

	// Header-less input (a truncated or concatenated recording) still
	// parses; meta falls back to the observed counts.
	raw := `{"seq":0,"t_ns":5,"kind":"nodes","val":1024,"who":"bb"}` + "\n"
	events, meta, err = ReadNDJSON(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || meta.Emitted != 1 {
		t.Errorf("header-less parse: %d events, meta %+v", len(events), meta)
	}
	if _, _, err := ReadNDJSON(strings.NewReader(`{"kind":"no_such_kind"}` + "\n")); err == nil {
		t.Error("unknown event kind parsed without error")
	}
}

// TestCanonicalReduction feeds two synthetic recordings of the same
// logical solve — one shaped like a sequential run, one like a
// speculative multi-worker run with extra decided probes, interleaved
// node batches and race outcomes — and requires their canonical forms
// to be identical.
func TestCanonicalReduction(t *testing.T) {
	// Workers=1: probes k=2 (infeasible), k=3 (feasible), optimize k=3.
	w1 := []Event{
		{Seq: 0, T: 10, Kind: EvDesignStart, Val: 12, Who: "portfolio"},
		{Seq: 1, T: 20, Kind: EvProbeOpen, K: 2},
		{Seq: 2, T: 30, Kind: EvNodes, K: 2, Val: 1024, Who: "bb"},
		{Seq: 3, T: 40, Kind: EvProbeClose, K: 2, Who: "infeasible", Aux: 2048},
		{Seq: 4, T: 50, Kind: EvProbeOpen, K: 3},
		{Seq: 5, T: 60, Kind: EvProbeClose, K: 3, Who: "feasible", Val: 9, Aux: 300},
		{Seq: 6, T: 70, Kind: EvProbeOpen, K: 3, Flag: true},
		{Seq: 7, T: 80, Kind: EvIncumbent, K: 3, Val: 9, Who: "greedy"},
		{Seq: 8, T: 90, Kind: EvProbeClose, K: 3, Flag: true, Who: "feasible", Val: 7, Aux: 900},
		{Seq: 9, T: 95, Kind: EvCacheStore, K: 3},
		{Seq: 10, T: 99, Kind: EvDesignDone, K: 3, Val: 7, Aux: 3248},
	}
	// Workers=8: speculation also decided k=1 infeasible and k=4
	// feasible, probes closed out of order, races ran, one probe was
	// canceled — all schedule artifacts the reduction must strip.
	w8 := []Event{
		{Seq: 0, T: 11, Kind: EvDesignStart, Val: 12, Who: "portfolio"},
		{Seq: 1, T: 12, Kind: EvRaceStart, K: 4, Who: "bb"},
		{Seq: 2, T: 13, Kind: EvRaceStart, K: 4, Who: "milp"},
		{Seq: 3, T: 20, Kind: EvProbeOpen, K: 4},
		{Seq: 4, T: 25, Kind: EvProbeClose, K: 4, Who: "feasible", Val: 3, Aux: 50},
		{Seq: 5, T: 26, Kind: EvRaceWin, K: 4, Who: "bb"},
		{Seq: 6, T: 27, Kind: EvRaceCancel, K: 4, Who: "milp"},
		{Seq: 7, T: 30, Kind: EvProbeOpen, K: 1},
		{Seq: 8, T: 31, Kind: EvProbeClose, K: 1, Who: "infeasible", Aux: 10},
		{Seq: 9, T: 35, Kind: EvProbeOpen, K: 5},
		{Seq: 10, T: 36, Kind: EvProbeClose, K: 5, Who: "canceled"},
		{Seq: 11, T: 40, Kind: EvProbeOpen, K: 3},
		{Seq: 12, T: 44, Kind: EvNodes, K: 3, Val: 512, Who: "bb"},
		{Seq: 13, T: 45, Kind: EvProbeClose, K: 3, Who: "feasible", Val: 9, Aux: 290},
		{Seq: 14, T: 50, Kind: EvProbeOpen, K: 2},
		{Seq: 15, T: 55, Kind: EvProbeClose, K: 2, Who: "infeasible", Aux: 2100},
		{Seq: 16, T: 60, Kind: EvProbeOpen, K: 3, Flag: true},
		{Seq: 17, T: 65, Kind: EvIncumbent, K: 3, Val: 8, Who: "anneal"},
		{Seq: 18, T: 70, Kind: EvProbeClose, K: 3, Flag: true, Who: "feasible", Val: 7, Aux: 750},
		{Seq: 19, T: 75, Kind: EvCacheStore, K: 3},
		{Seq: 20, T: 99, Kind: EvDesignDone, K: 3, Val: 7, Aux: 5932},
	}
	c1, c8 := Canonical(w1), Canonical(w8)
	if d := DiffEvents(c1, c8); d != "" {
		t.Fatalf("canonical forms differ:\n%s\nW1: %+v\nW8: %+v", d, c1, c8)
	}
	// The reduction keeps the tight facts only: max infeasible k=2, min
	// feasible k=3 (not the speculative k=4 witness), the optimize close
	// at k=3, design start/done and the cache store.
	want := []Event{
		{Kind: EvDesignStart, Val: 12, Who: "portfolio"},
		{Kind: EvCacheStore, K: 3},
		{Kind: EvProbeClose, K: 2, Who: "infeasible"},
		{Kind: EvProbeClose, K: 3, Who: "feasible", Val: 9},
		{Kind: EvProbeClose, K: 3, Flag: true, Who: "feasible", Val: 7},
		{Kind: EvDesignDone, K: 3, Val: 7},
	}
	if d := DiffEvents(c1, want); d != "" {
		t.Fatalf("canonical form unexpected: %s\ngot: %+v", d, c1)
	}
	// A genuine divergence (different objective) must surface.
	w8[18].Val = 6
	if d := DiffEvents(Canonical(w1), Canonical(w8)); d == "" {
		t.Error("objective divergence not detected by canonical diff")
	}
}

func TestFlightRecorderConcurrentEmit(t *testing.T) {
	r := NewFlightRecorder(128)
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Emit(Event{Kind: EvNodes, Val: 1, Who: "bb"})
			}
		}(w)
	}
	wg.Wait()
	if r.Emitted() != workers*perWorker {
		t.Errorf("emitted = %d, want %d", r.Emitted(), workers*perWorker)
	}
	events := r.Events()
	if len(events) != 128 {
		t.Fatalf("retained %d, want 128", len(events))
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("retained sequence not contiguous at %d: %d after %d",
				i, events[i].Seq, events[i-1].Seq)
		}
	}
}

// TestFlightDisabledPathAllocationFree pins the recorder's overhead
// guarantee: with no recorder in the context, the lookup and every Emit
// must not allocate at all — that is what lets the hot solver loops
// leave instrumentation on unconditionally.
func TestFlightDisabledPathAllocationFree(t *testing.T) {
	ctx := context.Background()
	if n := testing.AllocsPerRun(1000, func() {
		rec := FlightRecorderFrom(ctx)
		rec.Emit(Event{Kind: EvNodes, K: 3, Val: 1024, Who: "bb"})
		rec.Emit(Event{Kind: EvIncumbent, K: 3, Val: 7, Aux: 2, Who: "bb"})
		if rec.Emitted() != 0 || rec.Dropped() != 0 || rec.Events() != nil {
			t.Fatal("nil recorder must be inert")
		}
	}); n != 0 {
		t.Errorf("disabled flight path allocates %.1f per op, want 0", n)
	}
	// The enabled path without a bus is allocation-free too: the event
	// is copied into preallocated ring storage.
	r := NewFlightRecorder(64)
	if n := testing.AllocsPerRun(1000, func() {
		r.Emit(Event{Kind: EvNodes, K: 3, Val: 1024, Who: "bb"})
	}); n != 0 {
		t.Errorf("enabled Emit allocates %.1f per op, want 0", n)
	}
}

func BenchmarkFlightEmitDisabled(b *testing.B) {
	rec := FlightRecorderFrom(context.Background())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Emit(Event{Kind: EvNodes, Val: int64(i), Who: "bb"})
	}
}

func BenchmarkFlightEmitEnabled(b *testing.B) {
	rec := NewFlightRecorder(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec.Emit(Event{Kind: EvNodes, Val: int64(i), Who: "bb"})
	}
}

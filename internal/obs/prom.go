package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) of the metrics
// registry, mounted at /metrics by ServeTelemetry. Zero-dependency by
// design, like the rest of obs: the format is a few lines of text per
// metric, and emitting it directly keeps the repository free of a
// client-library dependency while staying scrapeable by any Prometheus
// (or compatible) collector.

// promContentType is the content type Prometheus scrapers expect for
// the text exposition format.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName maps a dotted registry name ("milp.warm_solves") to a valid
// Prometheus metric name ("stbusgen_milp_warm_solves"): every character
// outside [a-zA-Z0-9_] becomes '_', and the shared namespace prefix
// keeps the exported names collision-free on a shared scrape target.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len("stbusgen_") + len(name))
	b.WriteString("stbusgen_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format: counters as <name>_total, gauges as-is, and
// histograms with their full cumulative power-of-two bucket series
// (le is the inclusive integer upper edge of each occupied bucket,
// trailing empty buckets elided, +Inf always last). Bucket counts,
// _count and _sum come from one consistent HistogramSnapshot per
// histogram, so the series is monotone within a single scrape.
func WritePrometheus(w io.Writer) error {
	regMu.Lock()
	keys := make([]string, len(regKeys))
	copy(keys, regKeys)
	vals := make(map[string]any, len(regVals))
	for k, v := range regVals {
		vals[k] = v
	}
	regMu.Unlock()

	bw := bufio.NewWriter(w)
	for _, k := range keys {
		name := promName(k)
		switch m := vals[k].(type) {
		case *Counter:
			fmt.Fprintf(bw, "# HELP %s_total Counter %s.\n", name, k)
			fmt.Fprintf(bw, "# TYPE %s_total counter\n", name)
			fmt.Fprintf(bw, "%s_total %d\n", name, m.Value())
		case *Gauge:
			fmt.Fprintf(bw, "# HELP %s Gauge %s.\n", name, k)
			fmt.Fprintf(bw, "# TYPE %s gauge\n", name)
			fmt.Fprintf(bw, "%s %d\n", name, m.Value())
		case *Histogram:
			snap := m.Snapshot()
			fmt.Fprintf(bw, "# HELP %s Power-of-two histogram %s.\n", name, k)
			fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
			var cum int64
			for _, b := range snap.Buckets {
				cum += b.N
				if b.Le == math.MaxInt64 {
					// The overflow bucket's finite edge would be misleading;
					// it is covered by +Inf below.
					continue
				}
				fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", name, b.Le, cum)
			}
			fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, snap.Count)
			fmt.Fprintf(bw, "%s_sum %d\n", name, snap.Sum)
			fmt.Fprintf(bw, "%s_count %d\n", name, snap.Count)
		}
	}
	return bw.Flush()
}

// PrometheusHandler serves WritePrometheus over HTTP — the /metrics
// endpoint of ServeTelemetry.
func PrometheusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", promContentType)
		WritePrometheus(w) //nolint:errcheck // best-effort diagnostics endpoint
	})
}

package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// Metrics for the exposition tests, registered once (global registry).
var (
	promTestCounter = NewCounter("promtest.counter")
	promTestGauge   = NewGauge("promtest.gauge")
	promTestHist    = NewHistogram("promtest.lat_ns")
)

func TestPromNameSanitization(t *testing.T) {
	for in, want := range map[string]string{
		"milp.warm_solves": "stbusgen_milp_warm_solves",
		"core.probe_ns":    "stbusgen_core_probe_ns",
		"weird-Name.2x":    "stbusgen_weird_Name_2x",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// parseExposition indexes "name{labels} value" sample lines and
// remembers which names saw HELP and TYPE comments.
func parseExposition(t *testing.T, body string) (samples map[string]int64, help, typ map[string]bool) {
	t.Helper()
	samples = map[string]int64{}
	help, typ = map[string]bool{}, map[string]bool{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			help[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			typ[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseInt(line[sp+1:], 10, 64)
		if err != nil {
			t.Fatalf("sample line %q has non-integer value: %v", line, err)
		}
		samples[line[:sp]] = v
	}
	return samples, help, typ
}

func TestPrometheusExposition(t *testing.T) {
	promTestCounter.Add(41)
	promTestCounter.Inc()
	promTestGauge.Set(-7)
	for _, v := range []int64{0, 1, 2, 3, 1000, 1000000} {
		promTestHist.Observe(v)
	}

	srv := httptest.NewServer(PrometheusHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != promContentType {
		t.Errorf("content type = %q, want %q", ct, promContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	samples, help, typ := parseExposition(t, body)

	if got := samples["stbusgen_promtest_counter_total"]; got != 42 {
		t.Errorf("counter sample = %d, want 42", got)
	}
	if got := samples["stbusgen_promtest_gauge"]; got != -7 {
		t.Errorf("gauge sample = %d, want -7", got)
	}
	for _, name := range []string{"stbusgen_promtest_counter_total", "stbusgen_promtest_gauge", "stbusgen_promtest_lat_ns"} {
		if !help[name] {
			t.Errorf("missing # HELP for %s", name)
		}
		if !typ[name] {
			t.Errorf("missing # TYPE for %s", name)
		}
	}

	// Histogram: cumulative buckets must be monotone, end in +Inf, and
	// agree with _count; _sum is the raw sum.
	hist := "stbusgen_promtest_lat_ns"
	count := samples[hist+"_count"]
	if count != 6 {
		t.Errorf("histogram _count = %d, want 6", count)
	}
	if got := samples[hist+"_sum"]; got != 1001006 {
		t.Errorf("histogram _sum = %d, want 1001006", got)
	}
	if got := samples[hist+`_bucket{le="+Inf"}`]; got != count {
		t.Errorf(`+Inf bucket = %d, want _count %d`, got, count)
	}
	// Walk the bucket series in document order.
	var prevCum int64 = -1
	var prevLe int64 = -1
	sawInf := false
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, hist+`_bucket{le="`) {
			continue
		}
		rest := strings.TrimPrefix(line, hist+`_bucket{le="`)
		end := strings.IndexByte(rest, '"')
		leStr := rest[:end]
		v, err := strconv.ParseInt(strings.Fields(rest[end+2:])[0], 10, 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if leStr == "+Inf" {
			sawInf = true
			if v < prevCum {
				t.Errorf("+Inf bucket %d below previous cumulative %d", v, prevCum)
			}
			continue
		}
		if sawInf {
			t.Error("+Inf bucket is not last")
		}
		le, err := strconv.ParseInt(leStr, 10, 64)
		if err != nil {
			t.Fatalf("bucket edge %q: %v", leStr, err)
		}
		if le <= prevLe {
			t.Errorf("bucket edges not increasing: %d after %d", le, prevLe)
		}
		if v < prevCum {
			t.Errorf("cumulative bucket counts not monotone: %d after %d", v, prevCum)
		}
		prevLe, prevCum = le, v
	}
	if !sawInf {
		t.Error("histogram series missing the +Inf bucket")
	}
	// Spot-check two edges: v=0 lands in le="0", v=1000 in le="1023".
	if got := samples[hist+`_bucket{le="0"}`]; got != 1 {
		t.Errorf(`le="0" cumulative = %d, want 1`, got)
	}
	if got := samples[hist+`_bucket{le="1023"}`]; got != 5 {
		t.Errorf(`le="1023" cumulative = %d, want 5`, got)
	}
}

func TestServeTelemetryEndpoints(t *testing.T) {
	bus := NewBus()
	bound, _, shutdown, err := ServeTelemetry("127.0.0.1:0", TelemetryConfig{Bus: bus})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown() //nolint:errcheck
	resp, err := http.Get("http://" + bound + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != promContentType {
		t.Errorf("/metrics content type = %q", ct)
	}
	if !strings.Contains(string(body), "# TYPE stbusgen_") {
		t.Error("/metrics exposition has no TYPE lines")
	}
	// /events without a bus answers 503; with one, it streams.
	noBus, _, stop2, err := ServeTelemetry("127.0.0.1:0", TelemetryConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer stop2() //nolint:errcheck
	resp, err = http.Get("http://" + noBus + "/events")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/events without a bus = %d, want 503", resp.StatusCode)
	}
}

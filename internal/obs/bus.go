package obs

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Bus fans telemetry frames out to any number of live subscribers —
// the transport behind the /events SSE endpoint (ServeTelemetry). It is
// built for publishers that must never block: Publish delivers to each
// subscriber's buffered channel with a non-blocking send and counts the
// frame as dropped for that subscriber when the buffer is full, so one
// stalled HTTP client costs itself data, never the solver.
type Bus struct {
	mu     sync.RWMutex
	subs   map[*BusSub]struct{}
	closed bool
}

// BusFrame is one named payload on the bus (an SSE event).
type BusFrame struct {
	Name string
	Data []byte
}

// BusSub is one subscription. Frames arrive on ch; dropped counts the
// frames the bus discarded because ch was full when they were
// published.
type BusSub struct {
	ch      chan BusFrame
	done    chan struct{} // closed by Bus.Close
	dropped atomic.Int64
}

// Frames returns the subscription's delivery channel. Callers that use
// the bus purely as a wakeup signal may receive and discard.
func (s *BusSub) Frames() <-chan BusFrame { return s.ch }

// Done returns a channel closed when the bus shuts down — the stream's
// end-of-life signal.
func (s *BusSub) Done() <-chan struct{} { return s.done }

// Dropped reports how many frames this subscriber lost to backpressure.
func (s *BusSub) Dropped() int64 { return s.dropped.Load() }

// Bus traffic instruments: frames published (counted once per Publish)
// and per-subscriber deliveries discarded by backpressure.
var (
	metBusPublished = NewCounter("bus.published")
	metBusDropped   = NewCounter("bus.dropped")
)

// DefaultSubBuffer is the per-subscriber frame buffer Subscribe(0)
// uses: deep enough to ride out scheduling hiccups and TCP stalls of a
// healthy client, small enough that a dead-slow one is dropped against
// rather than buffered without bound.
const DefaultSubBuffer = 256

// NewBus returns an empty bus.
func NewBus() *Bus {
	return &Bus{subs: map[*BusSub]struct{}{}}
}

// Subscribe registers a new subscriber with the given frame buffer
// (0 means DefaultSubBuffer). Subscribing to a closed bus returns a
// subscription whose done channel is already closed.
func (b *Bus) Subscribe(buffer int) *BusSub {
	if buffer <= 0 {
		buffer = DefaultSubBuffer
	}
	s := &BusSub{ch: make(chan BusFrame, buffer), done: make(chan struct{})}
	b.mu.Lock()
	if b.closed {
		close(s.done)
	} else {
		b.subs[s] = struct{}{}
	}
	b.mu.Unlock()
	return s
}

// Unsubscribe removes s; pending frames in its buffer are simply
// garbage. Safe to call twice.
func (b *Bus) Unsubscribe(s *BusSub) {
	b.mu.Lock()
	delete(b.subs, s)
	b.mu.Unlock()
}

// Subscribers reports the current subscriber count.
func (b *Bus) Subscribers() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.subs)
}

// Close terminates every subscription (their done channels close, which
// ends the SSE streams) and makes subsequent publishes no-ops.
func (b *Bus) Close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		for s := range b.subs {
			close(s.done)
			delete(b.subs, s)
		}
	}
	b.mu.Unlock()
}

// Publish fans one frame out to every subscriber, never blocking: a
// subscriber whose buffer is full loses the frame and has its drop
// counter incremented (surfaced to the SSE client as a "dropped"
// event). data is aliased by every subscriber, so callers must not
// mutate it after publishing.
func (b *Bus) Publish(name string, data []byte) {
	b.mu.RLock()
	for s := range b.subs {
		select {
		case s.ch <- BusFrame{Name: name, Data: data}:
		default:
			s.dropped.Add(1)
			metBusDropped.Inc()
		}
	}
	b.mu.RUnlock()
	metBusPublished.Inc()
}

// PublishEvent publishes a flight-recorder event as a "flight" frame,
// marshaled once for all subscribers.
func (b *Bus) PublishEvent(e Event) {
	if data := e.WireJSON(); data != nil {
		b.Publish("flight", data)
	}
}

// sseHeartbeat is the idle keepalive period of the SSE handler: a
// comment frame per period keeps proxies and idle-timeout middleboxes
// from killing a quiet stream.
const sseHeartbeat = 15 * time.Second

// ServeHTTP streams the bus to one client as Server-Sent Events:
// "flight" events carry recorder entries, "metrics" events carry
// metric-delta snapshots (see ServeTelemetry), and a "dropped" event is
// interleaved whenever backpressure discarded frames since the last
// report. The stream ends when the client disconnects (request context
// cancellation) or the bus closes.
func (b *Bus) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	sub := b.Subscribe(0)
	defer b.Unsubscribe(sub)
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fmt.Fprint(w, ": stream open\n\n")
	fl.Flush()

	heartbeat := time.NewTicker(sseHeartbeat)
	defer heartbeat.Stop()
	var reported int64
	for {
		select {
		case <-r.Context().Done():
			return
		case <-sub.done:
			fmt.Fprint(w, "event: bye\ndata: {}\n\n")
			fl.Flush()
			return
		case f := <-sub.ch:
			if d := sub.dropped.Load(); d > reported {
				fmt.Fprintf(w, "event: dropped\ndata: {\"dropped\":%d}\n\n", d)
				reported = d
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", f.Name, f.Data)
			fl.Flush()
		case <-heartbeat.C:
			fmt.Fprint(w, ": keepalive\n\n")
			fl.Flush()
		}
	}
}

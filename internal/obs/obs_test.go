package obs

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeTracer returns a tracer driven by a manual clock starting at
// epoch; advance moves the clock forward.
func fakeTracer() (tr *Tracer, advance func(d time.Duration)) {
	now := time.Unix(1000, 0)
	tr = &Tracer{now: func() time.Time { return now }}
	tr.epoch = now
	return tr, func(d time.Duration) { now = now.Add(d) }
}

func TestSpanNestingAndAttributes(t *testing.T) {
	tr, advance := fakeTracer()
	ctx := WithTracer(context.Background(), tr)

	ctx1, root := Start(ctx, "root")
	root.SetStr("app", "mat2")
	advance(10 * time.Millisecond)

	ctx2, child := Start(ctx1, "child")
	child.SetInt("buses", 3)
	child.SetBool("feasible", true)
	child.SetFloat("threshold", 0.3)
	advance(5 * time.Millisecond)
	child.End()

	if got := SpanFrom(ctx2); got != child {
		t.Errorf("SpanFrom(child ctx) = %v, want the child span", got)
	}
	if got := SpanFrom(ctx1); got != root {
		t.Errorf("SpanFrom(root ctx) = %v, want the root span", got)
	}

	advance(5 * time.Millisecond)
	root.End()

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Completion order: child first.
	c, r := spans[0], spans[1]
	if c.Name != "child" || r.Name != "root" {
		t.Fatalf("span order = %q, %q; want child, root", c.Name, r.Name)
	}
	if c.Parent != r.ID {
		t.Errorf("child.Parent = %d, want root ID %d", c.Parent, r.ID)
	}
	if r.Parent != 0 {
		t.Errorf("root.Parent = %d, want 0", r.Parent)
	}
	if c.Start != 10*time.Millisecond || c.Dur != 5*time.Millisecond {
		t.Errorf("child interval = (%v, %v), want (10ms, 5ms)", c.Start, c.Dur)
	}
	if r.Start != 0 || r.Dur != 20*time.Millisecond {
		t.Errorf("root interval = (%v, %v), want (0, 20ms)", r.Start, r.Dur)
	}
	want := map[string]any{"buses": int64(3), "feasible": true, "threshold": 0.3}
	got := map[string]any{}
	for _, a := range c.Attrs {
		got[a.Key] = a.Value()
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("child attr %s = %v, want %v", k, got[k], v)
		}
	}
}

func TestStartWithoutTracer(t *testing.T) {
	ctx := context.Background()
	ctx2, s := Start(ctx, "ignored")
	if ctx2 != ctx {
		t.Error("Start without tracer should return the input context")
	}
	if s != nil {
		t.Fatal("Start without tracer should return a nil span")
	}
	// Nil-span methods must be safe no-ops.
	s.SetInt("k", 1)
	s.SetStr("k", "v")
	s.SetBool("k", true)
	s.SetFloat("k", 1.5)
	s.End()
	if got := TracerFrom(ctx); got != nil {
		t.Errorf("TracerFrom(background) = %v, want nil", got)
	}
}

func TestStartDetached(t *testing.T) {
	if s := StartDetached(nil, nil, "x"); s != nil {
		t.Fatal("StartDetached(nil tracer) should return nil")
	}
	tr, advance := fakeTracer()
	parent := StartDetached(tr, nil, "parent")
	child := StartDetached(tr, parent, "child")
	advance(time.Millisecond)
	child.End()
	parent.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Parent != spans[1].ID {
		t.Errorf("detached child parent = %d, want %d", spans[0].Parent, spans[1].ID)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr, _ := fakeTracer()
	_, s := Start(WithTracer(context.Background(), tr), "once")
	s.End()
	s.End()
	if got := len(tr.Spans()); got != 1 {
		t.Errorf("double End recorded %d spans, want 1", got)
	}
}

// Metrics used across the metric tests; registered once since the
// registry rejects duplicate names.
var (
	testCounter  = NewCounter("test.counter")
	testGauge    = NewGauge("test.gauge")
	testHist     = NewHistogram("test.hist")
	testProgress = NewCounter("test.progress")
)

func TestConcurrentMetrics(t *testing.T) {
	const workers, perWorker = 8, 10_000
	// Deltas, not absolutes: other tests in the package share these
	// process-global metrics.
	c0, g0, h0 := testCounter.Value(), testGauge.Value(), testHist.Count()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				testCounter.Inc()
				testGauge.Add(1)
				testGauge.Add(-1)
				testHist.Observe(int64(i % 100))
			}
		}()
	}
	wg.Wait()
	if got := testCounter.Value() - c0; got != workers*perWorker {
		t.Errorf("counter delta = %d, want %d", got, workers*perWorker)
	}
	if got := testGauge.Value() - g0; got != 0 {
		t.Errorf("gauge delta = %d, want 0 after balanced adds", got)
	}
	if got := testHist.Count() - h0; got != workers*perWorker {
		t.Errorf("histogram count delta = %d, want %d", got, workers*perWorker)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 1006 {
		t.Errorf("count/sum = %d/%d, want 5/1006", h.Count(), h.Sum())
	}
	// p50 falls in the bucket of 2..3 → inclusive upper edge 3.
	if got := h.Quantile(0.5); got != 3 {
		t.Errorf("p50 = %d, want 3", got)
	}
	// p99 falls in the bucket of 1000 (512..1023) → inclusive edge 1023.
	if got := h.Quantile(0.99); got != 1023 {
		t.Errorf("p99 = %d, want 1023", got)
	}
	if got := (&Histogram{}).Quantile(0.5); got != 0 {
		t.Errorf("empty histogram p50 = %d, want 0", got)
	}
}

func TestSnapshotContainsRegisteredMetrics(t *testing.T) {
	testCounter.Add(0) // ensure registered
	snap := Snapshot()
	if _, ok := snap["test.counter"].(int64); !ok {
		t.Errorf("snapshot missing test.counter: %v", snap["test.counter"])
	}
	hv, ok := snap["test.hist"].(HistogramSnapshot)
	if !ok {
		t.Fatalf("snapshot test.hist = %T, want HistogramSnapshot", snap["test.hist"])
	}
	if hv.Count > 0 {
		var sum int64
		for _, b := range hv.Buckets {
			sum += b.N
		}
		if sum != hv.Count {
			t.Errorf("snapshot buckets sum to %d, count is %d", sum, hv.Count)
		}
	}
}

func TestServeMetrics(t *testing.T) {
	bound, _, shutdown, err := ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown() //nolint:errcheck

	for _, path := range []string{"/debug/vars", "/progress"} {
		resp, err := http.Get("http://" + bound + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		var parsed map[string]any
		if err := json.Unmarshal(body, &parsed); err != nil {
			t.Errorf("%s is not JSON: %v\n%s", path, err, body)
		}
	}
}

func TestLogProgress(t *testing.T) {
	var mu sync.Mutex
	var buf strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	stop := LogProgress(w, 10*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for {
		testProgress.Inc()
		mu.Lock()
		done := strings.Contains(buf.String(), "test.progress=")
		mu.Unlock()
		if done || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	stop()
	mu.Lock()
	out := buf.String()
	mu.Unlock()
	if !strings.Contains(out, "progress") || !strings.Contains(out, "test.progress=") {
		t.Errorf("progress output missing expected line:\n%s", out)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// TestDisabledPathAllocationFree is the overhead guarantee: with no
// tracer in the context, the full span API and the metric updates must
// not allocate at all.
func TestDisabledPathAllocationFree(t *testing.T) {
	ctx := context.Background()
	if n := testing.AllocsPerRun(1000, func() {
		ctx2, s := Start(ctx, "disabled")
		s.SetInt("k", 1)
		s.SetStr("k", "v")
		s.SetBool("k", true)
		s.End()
		_ = ctx2
	}); n != 0 {
		t.Errorf("disabled Start path allocates %.1f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		testCounter.Add(1)
		testGauge.Set(5)
		testHist.Observe(7)
	}); n != 0 {
		t.Errorf("metric updates allocate %.1f per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		_ = StartDetached(nil, nil, "disabled")
	}); n != 0 {
		t.Errorf("disabled StartDetached allocates %.1f per op, want 0", n)
	}
}

func BenchmarkStartDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := Start(ctx, "bench")
		s.SetInt("k", int64(i))
		s.End()
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		testCounter.Add(1)
	}
}

// TestSpanSetError pins the error-annotation contract: nil errors and
// nil spans are no-ops, real errors attach the error flag and text.
func TestSpanSetError(t *testing.T) {
	tr, _ := fakeTracer()
	ctx := WithTracer(context.Background(), tr)

	_, ok := Start(ctx, "ok")
	ok.SetError(nil)
	ok.End()
	_, bad := Start(ctx, "bad")
	bad.SetError(io.ErrUnexpectedEOF)
	bad.End()
	var nilSpan *Span
	nilSpan.SetError(io.ErrUnexpectedEOF) // must not panic

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	attrs := func(s SpanRecord) map[string]any {
		m := map[string]any{}
		for _, a := range s.Attrs {
			m[a.Key] = a.Value()
		}
		return m
	}
	if a := attrs(spans[0]); len(a) != 0 {
		t.Errorf("nil error annotated the span: %v", a)
	}
	a := attrs(spans[1])
	if a["error"] != true || a["error_msg"] != io.ErrUnexpectedEOF.Error() {
		t.Errorf("error attributes = %v", a)
	}
}

package obs

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// The flight recorder is the third obs instrument, next to spans and
// metrics: a bounded ring journal of typed solver events (incumbents
// found, node-expansion batches, LP pivot batches, portfolio race
// outcomes, cache traffic, probe open/close) cheap enough to stay on
// for production solves. Spans answer "where did the time go", metrics
// answer "how fast is it going right now"; the recorder answers "what
// did the search actually do, in what order" — and can replay it after
// the fact (cmd/flightview) or stream it live (Bus, see bus.go).
//
// Like the other instruments it is carried by the context and nil-safe:
// with no recorder attached, FlightRecorderFrom returns nil and every
// method on the nil *FlightRecorder returns immediately without
// allocating, so instrumentation stays on unconditionally in the hot
// loops (pinned by TestFlightDisabledPathAllocationFree).

// EventKind discriminates flight-recorder events.
type EventKind uint8

const (
	// EvDesignStart opens one design run: Val = receiver count,
	// Who = engine name.
	EvDesignStart EventKind = iota
	// EvDesignDone closes a design run: K = buses, Val = objective,
	// Aux = total solver nodes, Flag = capped.
	EvDesignDone
	// EvProbeOpen starts one bus-count probe: K = bus count,
	// Flag = optimize (binding phase) vs feasibility.
	EvProbeOpen
	// EvProbeClose finishes a probe: K/Flag as the open, Who = outcome
	// ("feasible", "infeasible", "capped", "exhausted", "canceled",
	// "error"), Val = objective when feasible, Aux = solver nodes.
	EvProbeClose
	// EvIncumbent records an improved incumbent binding: K = bus count
	// (0 when unknown, e.g. inside the MILP), Val = objective,
	// Aux = frontier subtree index (parallel branch and bound),
	// Who = producer ("bb", "milp", "anneal", "greedy").
	EvIncumbent
	// EvNodes is a node-expansion batch: Val = nodes expanded since the
	// previous batch, K = bus count (0 inside the MILP), Who = engine
	// ("bb", "milp").
	EvNodes
	// EvLPPivots is a simplex pivot batch from the incremental node
	// solver: Val = pivots since the previous batch, Who = "lp".
	EvLPPivots
	// EvRaceStart marks a portfolio contestant entering a probe race:
	// K = bus count, Who = contestant ("bb", "milp").
	EvRaceStart
	// EvRaceWin marks the contestant whose definitive answer won the
	// probe: K = bus count, Who = contestant.
	EvRaceWin
	// EvRaceCancel marks a contestant canceled because its sibling
	// decided the probe (or the wall-clock governor fired): K = bus
	// count, Who = the canceled contestant.
	EvRaceCancel
	// EvCacheHit is an exact content hit: K = cached bus count,
	// Who = tier ("memory", "disk").
	EvCacheHit
	// EvCacheWarm is a near-hit warm incumbent served: K = cached bus
	// count, Val = constraint-cell diff count.
	EvCacheWarm
	// EvCacheStore is a finished design offered to the cache:
	// K = bus count.
	EvCacheStore

	numEventKinds // sentinel; keep last
)

var eventKindNames = [numEventKinds]string{
	EvDesignStart: "design_start",
	EvDesignDone:  "design_done",
	EvProbeOpen:   "probe_open",
	EvProbeClose:  "probe_close",
	EvIncumbent:   "incumbent",
	EvNodes:       "nodes",
	EvLPPivots:    "lp_pivots",
	EvRaceStart:   "race_start",
	EvRaceWin:     "race_win",
	EvRaceCancel:  "race_cancel",
	EvCacheHit:    "cache_hit",
	EvCacheWarm:   "cache_warm",
	EvCacheStore:  "cache_store",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// ParseEventKind inverts EventKind.String (used by the NDJSON reader).
func ParseEventKind(s string) (EventKind, bool) {
	for k, name := range eventKindNames {
		if name == s {
			return EventKind(k), true
		}
	}
	return 0, false
}

// Event is one flight-recorder entry. It is a flat value type — no
// pointers beyond the static Who string — so emitting one allocates
// nothing and recording is a struct copy into the ring.
//
// The payload fields carry logical keys, not wall-clock artifacts: K is
// the bus count the event concerns, Val/Aux the kind-specific values
// documented on each EventKind. Only Seq and T are schedule-dependent;
// Canonical strips them, which is what makes recordings diffable across
// worker counts.
type Event struct {
	// Seq is the emission sequence number (0-based, assigned by the
	// recorder).
	Seq int64
	// T is nanoseconds since the recorder's epoch.
	T int64
	// Kind discriminates the payload.
	Kind EventKind
	// K is the bus count the event concerns (0 when not applicable).
	K int
	// Val and Aux are kind-specific payloads (see EventKind docs).
	Val int64
	Aux int64
	// Who names the emitting engine/tier/contestant; always a static
	// string so emission never allocates.
	Who string
	// Flag is the kind-specific boolean (optimize probes, capped runs).
	Flag bool
}

// Flight traffic instruments: events recorded and events overwritten in
// the ring before export.
var (
	metFlightEvents  = NewCounter("flight.events")
	metFlightDropped = NewCounter("flight.dropped")
)

// DefaultFlightCapacity is the ring size NewFlightRecorder(0) uses:
// large enough to hold every event of typical solves (batching keeps
// the rate low — a 20M-node search emits ~20k node batches), small
// enough to be an invisible allocation.
const DefaultFlightCapacity = 1 << 15

// FlightRecorder is a bounded ring journal of Events. All methods are
// safe for concurrent use, and all methods on a nil receiver are
// allocation-free no-ops — the disabled path.
type FlightRecorder struct {
	epoch time.Time
	now   func() time.Time // test hook; defaults to time.Now
	bus   atomic.Pointer[Bus]

	mu  sync.Mutex
	buf []Event // ring storage; entry for seq s lives at s % len(buf)
	n   int64   // events emitted so far (next Seq)
}

// NewFlightRecorder returns an empty recorder holding the last
// `capacity` events (0 means DefaultFlightCapacity). Its clock starts
// now.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	r := &FlightRecorder{now: time.Now, buf: make([]Event, capacity)}
	r.epoch = r.now()
	return r
}

// AttachBus mirrors every subsequently emitted event onto b (see
// bus.go), so live subscribers see the journal as it is written. A nil
// b detaches.
func (r *FlightRecorder) AttachBus(b *Bus) {
	if r == nil {
		return
	}
	r.bus.Store(b)
}

// Emit records e, stamping its Seq and T. The caller fills the payload
// fields only. Nil-safe and allocation-free (the event is copied into
// preallocated ring storage).
func (r *FlightRecorder) Emit(e Event) {
	if r == nil {
		return
	}
	e.T = r.now().Sub(r.epoch).Nanoseconds()
	r.mu.Lock()
	e.Seq = r.n
	r.buf[r.n%int64(len(r.buf))] = e
	r.n++
	dropped := r.n > int64(len(r.buf))
	r.mu.Unlock()
	metFlightEvents.Inc()
	if dropped {
		metFlightDropped.Inc()
	}
	if b := r.bus.Load(); b != nil {
		b.PublishEvent(e)
	}
}

// Emitted reports how many events have been emitted over the
// recorder's lifetime (not how many the ring still holds).
func (r *FlightRecorder) Emitted() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped reports how many events the ring has overwritten.
func (r *FlightRecorder) Dropped() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if d := r.n - int64(len(r.buf)); d > 0 {
		return d
	}
	return 0
}

// Events returns the retained events in emission order (oldest first).
func (r *FlightRecorder) Events() []Event {
	return r.EventsSince(0)
}

// EventsSince returns the retained events with Seq >= seq in emission
// order — the incremental read the per-job SSE streamer uses: keep a
// cursor of the last sequence seen and ask only for what is new, so a
// wakeup costs O(new events), not O(ring). Events already overwritten
// by the ring are silently absent (the caller observes the gap in Seq).
func (r *FlightRecorder) EventsSince(seq int64) []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	size := int64(len(r.buf))
	first := int64(0)
	if r.n > size {
		first = r.n - size
	}
	if seq > first {
		first = seq
	}
	if first >= r.n {
		return nil
	}
	out := make([]Event, 0, r.n-first)
	for s := first; s < r.n; s++ {
		out = append(out, r.buf[s%size])
	}
	return out
}

type ctxFlightKey struct{}

// WithFlightRecorder returns a context carrying r; instrumented layers
// under the returned context journal their events into it. A nil r
// returns ctx unchanged (recording stays disabled).
func WithFlightRecorder(ctx context.Context, r *FlightRecorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxFlightKey{}, r)
}

// FlightRecorderFrom returns the recorder attached to ctx, or nil when
// recording is disabled. Hot loops look it up once per solve and call
// the nil-safe Emit unconditionally.
func FlightRecorderFrom(ctx context.Context) *FlightRecorder {
	r, _ := ctx.Value(ctxFlightKey{}).(*FlightRecorder)
	return r
}

// --- NDJSON export/import ---

// FlightMeta is the header line of an NDJSON recording.
type FlightMeta struct {
	Flight  int   `json:"flight"` // format version, currently 1
	Emitted int64 `json:"emitted"`
	Dropped int64 `json:"dropped"`
}

// eventJSON is the NDJSON wire form of an Event.
type eventJSON struct {
	Seq  int64  `json:"seq"`
	T    int64  `json:"t_ns"`
	Kind string `json:"kind"`
	K    int    `json:"k,omitempty"`
	Val  int64  `json:"val,omitempty"`
	Aux  int64  `json:"aux,omitempty"`
	Who  string `json:"who,omitempty"`
	Flag bool   `json:"flag,omitempty"`
}

// WireJSON renders e in the recording wire form — the same JSON object
// the NDJSON export and the bus's "flight" SSE frames carry — so other
// packages (the daemon's per-job event streams) emit byte-identical
// frames without re-deriving the schema.
func (e Event) WireJSON() []byte {
	je := eventJSON{Seq: e.Seq, T: e.T, Kind: e.Kind.String(),
		K: e.K, Val: e.Val, Aux: e.Aux, Who: e.Who, Flag: e.Flag}
	data, err := json.Marshal(je)
	if err != nil {
		return nil // unreachable: eventJSON marshals cleanly by construction
	}
	return data
}

// WriteNDJSON exports the recording: one JSON header line (FlightMeta)
// followed by one JSON object per retained event, oldest first.
func (r *FlightRecorder) WriteNDJSON(w io.Writer) error {
	meta := FlightMeta{Flight: 1, Emitted: r.Emitted(), Dropped: r.Dropped()}
	return WriteEventsNDJSON(w, meta, r.Events())
}

// WriteEventsNDJSON writes an arbitrary event sequence in the recording
// wire format — the events' Seq/T stamps are written verbatim, so a
// canonical reduction (zeroed stamps) round-trips unchanged.
func WriteEventsNDJSON(w io.Writer, meta FlightMeta, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if meta.Flight == 0 {
		meta.Flight = 1
	}
	if err := enc.Encode(meta); err != nil {
		return fmt.Errorf("obs: flight header: %w", err)
	}
	for _, e := range events {
		je := eventJSON{Seq: e.Seq, T: e.T, Kind: e.Kind.String(),
			K: e.K, Val: e.Val, Aux: e.Aux, Who: e.Who, Flag: e.Flag}
		if err := enc.Encode(je); err != nil {
			return fmt.Errorf("obs: flight event %d: %w", e.Seq, err)
		}
	}
	return bw.Flush()
}

// ReadNDJSON parses a recording written by WriteNDJSON. A recording
// without a header line (or truncated mid-line) is tolerated: events
// parse until the input ends, and the meta defaults to the counts
// observed.
func ReadNDJSON(rd io.Reader) ([]Event, FlightMeta, error) {
	var meta FlightMeta
	var events []Event
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if first {
			first = false
			var m FlightMeta
			if err := json.Unmarshal(line, &m); err == nil && m.Flight > 0 {
				meta = m
				continue
			}
		}
		var je eventJSON
		if err := json.Unmarshal(line, &je); err != nil {
			return events, meta, fmt.Errorf("obs: flight event line: %w", err)
		}
		kind, ok := ParseEventKind(je.Kind)
		if !ok {
			return events, meta, fmt.Errorf("obs: unknown event kind %q", je.Kind)
		}
		events = append(events, Event{Seq: je.Seq, T: je.T, Kind: kind,
			K: je.K, Val: je.Val, Aux: je.Aux, Who: je.Who, Flag: je.Flag})
	}
	if err := sc.Err(); err != nil {
		return events, meta, err
	}
	if meta.Flight == 0 {
		meta = FlightMeta{Flight: 1, Emitted: int64(len(events))}
	}
	return events, meta, nil
}

// --- canonical reduction ---

// Canonical reduces a recording to its schedule-invariant skeleton, the
// form golden tests diff across worker counts. Wall-clock artifacts
// (Seq, T, node counts, pivot batches, race outcomes, canceled or
// budget-capped probes, raw incumbent streams) are dropped or zeroed;
// what remains are the logical facts every run proves identically no
// matter how probes were scheduled:
//
//   - the design's start (receivers, engine) and outcome (buses,
//     objective, capped) — bit-identical at every worker count by the
//     parallel determinism contract;
//   - the two tight feasibility facts: the largest bus count decided
//     infeasible and the smallest decided feasible. Speculative search
//     decides a worker-dependent *set* of counts, but the search cannot
//     terminate without deciding kmin feasible, and can only advance its
//     lower bound past kmin-1 by deciding it infeasible, so the extremes
//     are invariant (and the feasibility witness at kmin, hence its
//     objective, is deterministic per count);
//   - decided (un-capped) optimize-phase probe results, ordered by bus
//     count;
//   - cache traffic (hit/warm/store), which depends only on content.
func Canonical(events []Event) []Event {
	var out []Event
	maxInfeas, haveInfeas := 0, false
	var minFeas Event
	haveFeas := false
	var optClosed []Event
	for _, e := range events {
		switch e.Kind {
		case EvDesignStart, EvCacheHit, EvCacheWarm, EvCacheStore, EvDesignDone:
			c := e
			c.Seq, c.T = 0, 0
			if c.Kind == EvDesignDone {
				c.Aux = 0 // node totals vary with speculation
			}
			out = append(out, c)
		case EvProbeClose:
			if e.Flag {
				if e.Who == "feasible" {
					c := e
					c.Seq, c.T, c.Aux = 0, 0, 0
					optClosed = append(optClosed, c)
				}
				continue
			}
			switch e.Who {
			case "infeasible":
				if !haveInfeas || e.K > maxInfeas {
					maxInfeas, haveInfeas = e.K, true
				}
			case "feasible":
				if !haveFeas || e.K < minFeas.K {
					c := e
					c.Seq, c.T, c.Aux = 0, 0, 0
					minFeas, haveFeas = c, true
				}
			}
		}
	}
	// Assemble: start and cache events keep their relative order (they
	// are content-determined), then the feasibility facts, then the
	// optimize results by bus count, then the design outcome.
	reduced := make([]Event, 0, len(out)+2+len(optClosed))
	var done []Event
	for _, e := range out {
		if e.Kind == EvDesignDone {
			done = append(done, e)
			continue
		}
		reduced = append(reduced, e)
	}
	if haveInfeas {
		reduced = append(reduced, Event{Kind: EvProbeClose, K: maxInfeas, Who: "infeasible"})
	}
	if haveFeas {
		reduced = append(reduced, minFeas)
	}
	sortEventsByK(optClosed)
	reduced = append(reduced, optClosed...)
	reduced = append(reduced, done...)
	return reduced
}

func sortEventsByK(events []Event) {
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && events[j].K < events[j-1].K; j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
}

// DiffEvents compares two event sequences field by field and returns a
// human-readable description of the first difference, or "" when equal.
// Used by the golden tests and `flightview -canon -diff`.
func DiffEvents(a, b []Event) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprintf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	if len(a) != len(b) {
		return fmt.Sprintf("length differs: %d vs %d events", len(a), len(b))
	}
	return ""
}

package obs

import (
	"expvar"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Updates are single
// atomic adds; the zero value is ready to use (but prefer NewCounter
// so the value is visible in snapshots and expvar).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a point-in-time level (queue depth, active workers, current
// simulation cycle).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bits.Len64(v) == i, i.e. v in [2^(i-1),
// 2^i). Bucket 0 holds v <= 0.
const histBuckets = 64

// Histogram accumulates an int64 distribution in power-of-two buckets.
// Observe is wait-free (three atomic adds). Snapshot reads the bucket
// array once into a self-consistent view (its count is the sum of the
// buckets it read), which is what the Prometheus exposition and the
// progress reporter serve; individual accessors (Count, Sum, Quantile)
// each read live and may straddle a concurrent Observe.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	idx := 0
	if v > 0 {
		idx = bits.Len64(uint64(v))
		if idx >= histBuckets {
			idx = histBuckets - 1
		}
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// bucketEdge is the inclusive integer upper edge of bucket i: bucket 0
// holds v <= 0, bucket i >= 1 holds v in [2^(i-1), 2^i), whose largest
// integer is 2^i - 1. The last bucket's edge saturates at MaxInt64.
func bucketEdge(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<i - 1
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) from
// the power-of-two buckets: the inclusive upper edge of the bucket the
// quantile falls in. Returns 0 with no samples.
func (h *Histogram) Quantile(q float64) int64 {
	var counts [histBuckets]int64
	var total int64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	return quantileOf(&counts, total, q)
}

// quantileOf computes the bucket-edge quantile from an already-read
// bucket array, so a Snapshot's quantiles agree with its buckets.
func quantileOf(counts *[histBuckets]int64, total int64, q float64) int64 {
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += counts[i]
		if seen >= rank {
			return bucketEdge(i)
		}
	}
	return math.MaxInt64
}

// HistogramBucket is one occupied power-of-two bucket of a snapshot.
type HistogramBucket struct {
	// Le is the inclusive integer upper edge of the bucket (0, 1, 3, 7,
	// ..., MaxInt64).
	Le int64 `json:"le"`
	// N counts the samples in this bucket alone (not cumulative).
	N int64 `json:"n"`
}

// HistogramSnapshot is a self-consistent point-in-time view of a
// histogram: Count equals the sum of the bucket counts, and the
// quantiles are computed from the same bucket read — so exports built
// from one snapshot (the Prometheus bucket series, /progress) are
// internally monotone even while Observe runs concurrently. Sum is read
// separately and may trail the buckets by in-flight observations.
type HistogramSnapshot struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	P50     int64             `json:"p50"`
	P99     int64             `json:"p99"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot reads the histogram once into a consistent view; only
// occupied buckets are materialized.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var counts [histBuckets]int64
	var total int64
	occupied := 0
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
		if counts[i] > 0 {
			occupied++
		}
	}
	snap := HistogramSnapshot{
		Count: total,
		Sum:   h.sum.Load(),
		P50:   quantileOf(&counts, total, 0.50),
		P99:   quantileOf(&counts, total, 0.99),
	}
	if occupied > 0 {
		snap.Buckets = make([]HistogramBucket, 0, occupied)
		for i, n := range counts {
			if n > 0 {
				snap.Buckets = append(snap.Buckets, HistogramBucket{Le: bucketEdge(i), N: n})
			}
		}
	}
	return snap
}

// registry is the process-global metric namespace. Registration is
// rare (package init of the instrumented layers) and guarded by a
// mutex; reads and updates of the metrics themselves never touch it.
var (
	regMu   sync.Mutex
	regKeys []string
	regVals = map[string]any{} // *Counter | *Gauge | *Histogram

	expvarOnce sync.Once
)

func register(name string, m any) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := regVals[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	regVals[name] = m
	regKeys = append(regKeys, name)
	sort.Strings(regKeys)
	expvarOnce.Do(func() {
		expvar.Publish("stbusgen", expvar.Func(func() any { return Snapshot() }))
	})
}

// NewCounter registers and returns a named counter. Metric names are
// dotted lowercase paths ("milp.nodes"); registering a name twice
// panics, so instruments are declared once as package variables.
func NewCounter(name string) *Counter {
	c := &Counter{}
	register(name, c)
	return c
}

// NewGauge registers and returns a named gauge.
func NewGauge(name string) *Gauge {
	g := &Gauge{}
	register(name, g)
	return g
}

// NewHistogram registers and returns a named histogram.
func NewHistogram(name string) *Histogram {
	h := &Histogram{}
	register(name, h)
	return h
}

// Snapshot returns the current value of every registered metric keyed
// by name: int64 for counters and gauges, a HistogramSnapshot (count,
// sum, p50/p99 and the occupied buckets) for histograms. It is the
// payload of the expvar "stbusgen" var, the -metrics-addr /progress
// endpoint and the progress reporter.
func Snapshot() map[string]any {
	regMu.Lock()
	keys := make([]string, len(regKeys))
	copy(keys, regKeys)
	vals := make(map[string]any, len(regVals))
	for k, v := range regVals {
		vals[k] = v
	}
	regMu.Unlock()

	out := make(map[string]any, len(keys))
	for _, k := range keys {
		switch m := vals[k].(type) {
		case *Counter:
			out[k] = m.Value()
		case *Gauge:
			out[k] = m.Value()
		case *Histogram:
			out[k] = m.Snapshot()
		}
	}
	return out
}

package obs

import (
	"expvar"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Updates are single
// atomic adds; the zero value is ready to use (but prefer NewCounter
// so the value is visible in snapshots and expvar).
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a point-in-time level (queue depth, active workers, current
// simulation cycle).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bits.Len64(v) == i, i.e. v in [2^(i-1),
// 2^i). Bucket 0 holds v <= 0.
const histBuckets = 64

// Histogram accumulates an int64 distribution in power-of-two buckets.
// Observe is wait-free (three atomic adds); readers get a consistent-
// enough view for progress reporting (buckets are not snapshotted
// atomically with each other).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	idx := 0
	if v > 0 {
		idx = bits.Len64(uint64(v))
		if idx >= histBuckets {
			idx = histBuckets - 1
		}
	}
	h.buckets[idx].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) from
// the power-of-two buckets: the upper edge of the bucket the quantile
// falls in. Returns 0 with no samples.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			if i == 0 {
				return 0
			}
			if i >= 63 {
				return math.MaxInt64
			}
			return int64(1) << i
		}
	}
	return math.MaxInt64
}

// registry is the process-global metric namespace. Registration is
// rare (package init of the instrumented layers) and guarded by a
// mutex; reads and updates of the metrics themselves never touch it.
var (
	regMu   sync.Mutex
	regKeys []string
	regVals = map[string]any{} // *Counter | *Gauge | *Histogram

	expvarOnce sync.Once
)

func register(name string, m any) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := regVals[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	regVals[name] = m
	regKeys = append(regKeys, name)
	sort.Strings(regKeys)
	expvarOnce.Do(func() {
		expvar.Publish("stbusgen", expvar.Func(func() any { return Snapshot() }))
	})
}

// NewCounter registers and returns a named counter. Metric names are
// dotted lowercase paths ("milp.nodes"); registering a name twice
// panics, so instruments are declared once as package variables.
func NewCounter(name string) *Counter {
	c := &Counter{}
	register(name, c)
	return c
}

// NewGauge registers and returns a named gauge.
func NewGauge(name string) *Gauge {
	g := &Gauge{}
	register(name, g)
	return g
}

// NewHistogram registers and returns a named histogram.
func NewHistogram(name string) *Histogram {
	h := &Histogram{}
	register(name, h)
	return h
}

// Snapshot returns the current value of every registered metric keyed
// by name: int64 for counters and gauges, a small map (count/sum/p50/
// p99) for histograms. It is the payload of the expvar "stbusgen" var,
// the -metrics-addr /progress endpoint and the progress reporter.
func Snapshot() map[string]any {
	regMu.Lock()
	keys := make([]string, len(regKeys))
	copy(keys, regKeys)
	vals := make(map[string]any, len(regVals))
	for k, v := range regVals {
		vals[k] = v
	}
	regMu.Unlock()

	out := make(map[string]any, len(keys))
	for _, k := range keys {
		switch m := vals[k].(type) {
		case *Counter:
			out[k] = m.Value()
		case *Gauge:
			out[k] = m.Value()
		case *Histogram:
			out[k] = map[string]int64{
				"count": m.Count(),
				"sum":   m.Sum(),
				"p50":   m.Quantile(0.50),
				"p99":   m.Quantile(0.99),
			}
		}
	}
	return out
}

// Package obs is the zero-dependency telemetry layer of the design
// engine. It provides two independent instruments:
//
//   - Hierarchical spans: obs.Start(ctx, "phase1.search") opens a timed
//     span as a child of whatever span already lives in ctx, records
//     wall time and key/value attributes, and — when a Tracer is
//     attached to the context — exports the whole run as Chrome
//     trace-event JSON loadable in chrome://tracing or Perfetto.
//   - A lock-cheap metrics registry: named counters, gauges and
//     histograms backed by atomic operations, published through expvar
//     and snapshotted by the progress reporter and the optional HTTP
//     endpoint (see progress.go).
//
// Both are designed so that *disabled* instrumentation is near-free:
// with no Tracer in the context, Start performs one context lookup,
// allocates nothing and returns a nil *Span whose methods are no-ops;
// metric updates are single atomic adds. Hot loops (the MILP node
// expansion, the simulator event loop) therefore keep their
// instrumentation unconditionally, and golden designs are bit-identical
// with telemetry on or off — spans and metrics only observe, never
// steer.
package obs

import (
	"context"
	"sync"
	"time"
)

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
)

// WithTracer returns a context carrying tr; spans started under the
// returned context are recorded into it. A nil tr returns ctx unchanged
// (tracing stays disabled).
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, tr)
}

// TracerFrom returns the Tracer attached to ctx, or nil when tracing is
// disabled. Hot loops that sample spans (see internal/milp) look the
// tracer up once instead of calling Start per iteration.
func TracerFrom(ctx context.Context) *Tracer {
	tr, _ := ctx.Value(tracerKey).(*Tracer)
	return tr
}

// SpanFrom returns the innermost span open in ctx, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// Start opens a span named name as a child of the span in ctx and
// returns a derived context carrying the new span. When ctx has no
// Tracer the call is a no-op: it returns ctx itself and a nil span
// (whose End and attribute setters are safe no-ops), and performs no
// allocation.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	tr, _ := ctx.Value(tracerKey).(*Tracer)
	if tr == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey).(*Span)
	s := tr.startSpan(name, parent)
	return context.WithValue(ctx, spanKey, s), s
}

// StartDetached opens a span recorded into tr as a child of parent
// (nil for a root span) without touching any context. It exists for
// hot loops that already hold the tracer and a parent span and cannot
// afford a context allocation per span (per-node sampling in the MILP
// search).
func StartDetached(tr *Tracer, parent *Span, name string) *Span {
	if tr == nil {
		return nil
	}
	return tr.startSpan(name, parent)
}

// attrKind discriminates the typed attribute payload. Attributes are
// typed rather than `any` so that setting one on a nil (disabled) span
// cannot allocate through interface boxing.
type attrKind uint8

const (
	attrInt attrKind = iota
	attrFloat
	attrStr
	attrBool
)

// Attr is one key/value annotation of a span.
type Attr struct {
	Key  string
	kind attrKind
	i    int64
	f    float64
	s    string
	b    bool
}

// Value returns the attribute's payload as an any (used at export time).
func (a Attr) Value() any {
	switch a.kind {
	case attrFloat:
		return a.f
	case attrStr:
		return a.s
	case attrBool:
		return a.b
	default:
		return a.i
	}
}

// Span is one timed, attributed interval of a traced run. A nil *Span
// is the disabled instrument: every method returns immediately.
//
// A span is owned by the goroutine that started it: SetInt/SetStr/...
// and End must not race with each other. Distinct spans of one Tracer
// may be used concurrently.
type Span struct {
	tracer *Tracer
	name   string
	id     int64
	parent int64 // 0 = root
	start  time.Time
	attrs  []Attr
	ended  bool
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, kind: attrInt, i: v})
}

// SetFloat attaches a float attribute.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, kind: attrFloat, f: v})
}

// SetStr attaches a string attribute.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, kind: attrStr, s: v})
}

// SetBool attaches a boolean attribute.
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, kind: attrBool, b: v})
}

// SetError marks the span failed: a no-op on nil errors, otherwise it
// attaches error=true plus the error text. Pair it with a deferred End
// on functions with a named error return —
//
//	defer span.End()
//	defer func() { span.SetError(err) }()
//
// — so every failure path annotates the span without touching the
// success path.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.SetBool("error", true)
	s.SetStr("error_msg", err.Error())
}

// End closes the span and records it into its tracer. End is
// idempotent — a second call (e.g. a deferred safety End after an
// explicit one on the success path) is a no-op, as is calling it on a
// nil span.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.tracer.finishSpan(s)
}

// SpanRecord is a finished span as stored by the Tracer.
type SpanRecord struct {
	Name   string
	ID     int64
	Parent int64         // 0 = root
	Start  time.Duration // offset from the tracer's epoch
	Dur    time.Duration
	Attrs  []Attr
}

// Tracer collects finished spans for one run. It is safe for
// concurrent use by any number of goroutines.
type Tracer struct {
	epoch time.Time
	now   func() time.Time // test hook; defaults to time.Now

	mu     sync.Mutex
	nextID int64
	done   []SpanRecord
}

// NewTracer returns an empty tracer whose clock starts now.
func NewTracer() *Tracer {
	t := &Tracer{now: time.Now}
	t.epoch = t.now()
	return t
}

func (t *Tracer) startSpan(name string, parent *Span) *Span {
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	s := &Span{tracer: t, name: name, id: id, start: t.now()}
	if parent != nil {
		s.parent = parent.id
	}
	return s
}

func (t *Tracer) finishSpan(s *Span) {
	end := t.now()
	rec := SpanRecord{
		Name:   s.name,
		ID:     s.id,
		Parent: s.parent,
		Start:  s.start.Sub(t.epoch),
		Dur:    end.Sub(s.start),
		Attrs:  s.attrs,
	}
	t.mu.Lock()
	t.done = append(t.done, rec)
	t.mu.Unlock()
}

// Spans returns a copy of the finished spans in completion order.
func (t *Tracer) Spans() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.done))
	copy(out, t.done)
	return out
}

package obs

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"
)

// LogProgress starts a goroutine that writes a one-line progress
// report to w every interval until the returned stop function is
// called. Each line shows elapsed wall time and every counter or gauge
// that changed since the previous line, with per-second rates for
// counters — enough to see where a multi-minute solve is spending its
// time without attaching any other tooling.
func LogProgress(w io.Writer, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		start := time.Now()
		prev := flatSnapshot()
		prevT := start
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-tick.C:
				cur := flatSnapshot()
				line := progressLine(time.Since(start), cur, prev, now.Sub(prevT))
				if line != "" {
					fmt.Fprintln(w, line)
				}
				prev, prevT = cur, now
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// flatSnapshot reduces Snapshot to scalar metrics: counters and gauges
// as-is, histograms as their sample count plus p50/p99 pseudo-metrics —
// so the progress line and the bus's metric deltas surface quantiles,
// not just throughput.
func flatSnapshot() map[string]int64 {
	out := map[string]int64{}
	for k, v := range Snapshot() {
		switch t := v.(type) {
		case int64:
			out[k] = t
		case HistogramSnapshot:
			out[k+".count"] = t.Count
			if t.Count > 0 {
				out[k+".p50"] = t.P50
				out[k+".p99"] = t.P99
			}
		}
	}
	return out
}

// progressLine formats one report: elapsed time, then every metric
// that changed since prev as name=value(+rate/s), sorted by name.
// Quantile pseudo-metrics (.p50/.p99) are levels, not counts, so they
// print without a rate.
func progressLine(elapsed time.Duration, cur, prev map[string]int64, dt time.Duration) string {
	keys := make([]string, 0, len(cur))
	for k, v := range cur {
		if v != prev[k] {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return ""
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "progress %7.1fs", elapsed.Seconds())
	secs := dt.Seconds()
	for _, k := range keys {
		delta := cur[k] - prev[k]
		quantile := strings.HasSuffix(k, ".p50") || strings.HasSuffix(k, ".p99")
		if secs > 0 && delta > 0 && !quantile {
			fmt.Fprintf(&b, "  %s=%d (+%.0f/s)", k, cur[k], float64(delta)/secs)
		} else {
			fmt.Fprintf(&b, "  %s=%d", k, cur[k])
		}
	}
	return b.String()
}

// TelemetryConfig tunes ServeTelemetry beyond the always-on endpoints.
type TelemetryConfig struct {
	// Bus, when non-nil, is mounted at /events as a Server-Sent Events
	// stream and fed metric-delta frames by a pump goroutine. Attach the
	// same bus to a FlightRecorder to interleave live solver events.
	Bus *Bus
	// MetricsInterval is the pump's metric-delta publish period
	// (0 means one second). Ignored without a Bus.
	MetricsInterval time.Duration
	// ShutdownTimeout bounds how long the shutdown function waits for
	// in-flight requests (mid-scrape /metrics readers, SSE streams
	// writing their bye frame) before hard-closing the server
	// (0 means DefaultShutdownTimeout).
	ShutdownTimeout time.Duration
}

// DefaultShutdownTimeout is the graceful-drain budget of the telemetry
// server's shutdown function: generous against a slow scrape, short
// enough that a wedged client cannot stall process exit noticeably.
const DefaultShutdownTimeout = 5 * time.Second

// ServeTelemetry exposes the telemetry surface over HTTP on addr
// ("host:port"; ":0" picks a free port):
//
//	/debug/vars  expvar JSON (includes the "stbusgen" registry snapshot)
//	/progress    indented JSON snapshot of the metrics registry
//	/metrics     Prometheus text exposition with full histogram buckets
//	/events      live SSE stream (requires a TelemetryConfig.Bus; 503 otherwise)
//
// It returns the bound address, a channel on which a failed
// http.Server.Serve surfaces its error (closed when the serve loop
// ends; ErrServerClosed is filtered out, so a receive yields nil on any
// clean shutdown — long-running daemons select on it in their run
// loop), and a shutdown function.
//
// Shutdown is graceful: the metrics pump stops, the bus closes (every
// SSE subscriber receives its bye frame), then the server drains
// in-flight requests for TelemetryConfig.ShutdownTimeout before falling
// back to a hard Close — a subscriber connected at shutdown sees a
// clean end of stream, never a reset.
func ServeTelemetry(addr string, cfg TelemetryConfig) (bound string, serveErr <-chan error, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(Snapshot()) //nolint:errcheck // best-effort diagnostics endpoint
	})
	mux.Handle("/metrics", PrometheusHandler())
	if cfg.Bus != nil {
		mux.Handle("/events", cfg.Bus)
	} else {
		mux.HandleFunc("/events", func(w http.ResponseWriter, _ *http.Request) {
			http.Error(w, "no event bus attached (start with -metrics-addr via internal/cli)", http.StatusServiceUnavailable)
		})
	}
	srv := &http.Server{Handler: mux}
	errCh := make(chan error, 1)
	go func() {
		if e := srv.Serve(ln); e != nil && !errors.Is(e, http.ErrServerClosed) {
			errCh <- fmt.Errorf("obs: telemetry serve: %w", e)
		}
		close(errCh)
	}()

	stopPump := func() {}
	if cfg.Bus != nil {
		stopPump = startMetricsPump(cfg.Bus, cfg.MetricsInterval)
	}
	deadline := cfg.ShutdownTimeout
	if deadline <= 0 {
		deadline = DefaultShutdownTimeout
	}
	return ln.Addr().String(), errCh, func() error {
		stopPump()
		if cfg.Bus != nil {
			// Closing the bus first lets every SSE handler write its bye
			// frame and return before the server starts counting idle
			// connections, so Shutdown below drains instead of racing.
			cfg.Bus.Close()
		}
		sctx, cancel := context.WithTimeout(context.Background(), deadline)
		defer cancel()
		var errs []error
		if e := srv.Shutdown(sctx); e != nil {
			errs = append(errs, fmt.Errorf("obs: telemetry shutdown: %w", e))
			srv.Close() //nolint:errcheck // hard fallback past the drain deadline
		}
		// The serve goroutine has exited by now (Shutdown/Close closed
		// the listener); surface any error it hit, nil on clean close.
		errs = append(errs, <-errCh)
		return errors.Join(errs...)
	}, nil
}

// ServeMetrics is ServeTelemetry without a bus, kept for callers that
// only want the scrape endpoints.
func ServeMetrics(addr string) (bound string, serveErr <-chan error, shutdown func() error, err error) {
	return ServeTelemetry(addr, TelemetryConfig{})
}

// startMetricsPump publishes the changed flat metrics as "metrics"
// frames on the bus every interval, so SSE subscribers see live rates
// without polling /progress. Returns a stop function.
func startMetricsPump(bus *Bus, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		prev := flatSnapshot()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				cur := flatSnapshot()
				changed := map[string]int64{}
				for k, v := range cur {
					if v != prev[k] {
						changed[k] = v
					}
				}
				prev = cur
				if len(changed) == 0 {
					continue
				}
				data, err := json.Marshal(changed)
				if err != nil {
					continue // unreachable: map[string]int64 marshals cleanly
				}
				bus.Publish("metrics", data)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"
)

// LogProgress starts a goroutine that writes a one-line progress
// report to w every interval until the returned stop function is
// called. Each line shows elapsed wall time and every counter or gauge
// that changed since the previous line, with per-second rates for
// counters — enough to see where a multi-minute solve is spending its
// time without attaching any other tooling.
func LogProgress(w io.Writer, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		start := time.Now()
		prev := flatSnapshot()
		prevT := start
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-tick.C:
				cur := flatSnapshot()
				line := progressLine(time.Since(start), cur, prev, now.Sub(prevT))
				if line != "" {
					fmt.Fprintln(w, line)
				}
				prev, prevT = cur, now
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}

// flatSnapshot reduces Snapshot to the scalar metrics (counters and
// gauges); histograms are summarized by their sample count.
func flatSnapshot() map[string]int64 {
	out := map[string]int64{}
	for k, v := range Snapshot() {
		switch t := v.(type) {
		case int64:
			out[k] = t
		case map[string]int64:
			out[k+".count"] = t["count"]
		}
	}
	return out
}

// progressLine formats one report: elapsed time, then every metric
// that changed since prev as name=value(+rate/s), sorted by name.
func progressLine(elapsed time.Duration, cur, prev map[string]int64, dt time.Duration) string {
	keys := make([]string, 0, len(cur))
	for k, v := range cur {
		if v != prev[k] {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return ""
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "progress %7.1fs", elapsed.Seconds())
	secs := dt.Seconds()
	for _, k := range keys {
		delta := cur[k] - prev[k]
		if secs > 0 && delta > 0 {
			fmt.Fprintf(&b, "  %s=%d (+%.0f/s)", k, cur[k], float64(delta)/secs)
		} else {
			fmt.Fprintf(&b, "  %s=%d", k, cur[k])
		}
	}
	return b.String()
}

// ServeMetrics exposes the metrics registry over HTTP on addr
// ("host:port"; ":0" picks a free port): expvar at /debug/vars and a
// plain JSON snapshot of the registry at /progress. It returns the
// bound address and a function that shuts the server down.
func ServeMetrics(addr string) (bound string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(Snapshot()) //nolint:errcheck // best-effort diagnostics endpoint
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on shutdown
	return ln.Addr().String(), srv.Close, nil
}

// Package explore implements design-space exploration over the
// methodology's tuning parameters. The paper notes that "depending on
// the design objective, crossbar size-performance trade-offs can be
// explored in our approach by tuning the analysis parameters (such as
// the window size, overlap threshold, etc.)" (Section 7.1); this
// package sweeps those parameters, validates every candidate by
// cycle-accurate simulation, and extracts the Pareto frontier of
// (crossbar size, average packet latency).
package explore

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Grid is the swept parameter space.
type Grid struct {
	// Windows are analysis window sizes in cycles. Zero entries use
	// the application's recommended window.
	Windows []int64
	// Thresholds are overlap thresholds (fraction of window; negative
	// disables pre-processing).
	Thresholds []float64
	// MaxPerBus values cap receivers per bus (0 = unlimited).
	MaxPerBus []int
}

// DefaultGrid covers the ranges the paper explores in Sections
// 7.2–7.4.
func DefaultGrid(recommendedWS int64) Grid {
	return Grid{
		Windows:    []int64{recommendedWS / 2, recommendedWS, 2 * recommendedWS, 4 * recommendedWS},
		Thresholds: []float64{0.10, 0.30, 0.50},
		MaxPerBus:  []int{3, 4, 6},
	}
}

// Point is one evaluated design.
type Point struct {
	Window     int64
	Threshold  float64
	MaxPerBus  int
	Buses      int
	AvgLat     float64
	MaxLat     int64
	Infeasible bool // design failed (e.g. conflicts exceed any bus count)
}

// Sweep evaluates every grid combination on the application: one full
// crossbar simulation for the trace, then per-combination analysis,
// design and validation.
func Sweep(app *workloads.App, grid Grid) ([]Point, error) {
	return SweepCtx(context.Background(), app, grid)
}

// SweepCtx is Sweep with cancellation. The per-window analyses and the
// flattened (window, threshold, cap) combinations are evaluated
// concurrently, each writing its own point slot, so the sweep order
// and content match the sequential evaluation exactly.
//
// A point is marked Infeasible only when the design failed with
// core.ErrInfeasible or core.ErrSearchLimit (no configuration, or the
// solver budget ran out proving one); any other error — including a
// cancellation — aborts the whole sweep.
func SweepCtx(ctx context.Context, app *workloads.App, grid Grid) ([]Point, error) {
	run, err := experiments.PrepareCtx(ctx, app)
	if err != nil {
		return nil, err
	}
	type analyses struct{ req, resp *trace.Analysis }
	byWindow := make([]analyses, len(grid.Windows))
	err = conc.ForEach(ctx, len(grid.Windows), 0, func(ctx context.Context, w int) error {
		ws := grid.Windows[w]
		if ws <= 0 {
			ws = app.WindowSize
		}
		aReq, err := trace.AnalyzeCtx(ctx, run.Full.ReqTrace, ws)
		if err != nil {
			return fmt.Errorf("explore: analyze req at ws=%d: %w", ws, err)
		}
		aResp, err := trace.AnalyzeCtx(ctx, run.Full.RespTrace, ws)
		if err != nil {
			return fmt.Errorf("explore: analyze resp at ws=%d: %w", ws, err)
		}
		byWindow[w] = analyses{req: aReq, resp: aResp}
		return nil
	})
	if err != nil {
		return nil, err
	}

	nCombos := len(grid.Windows) * len(grid.Thresholds) * len(grid.MaxPerBus)
	points := make([]Point, nCombos)
	err = conc.ForEach(ctx, nCombos, 0, func(ctx context.Context, idx int) error {
		w := idx / (len(grid.Thresholds) * len(grid.MaxPerBus))
		rest := idx % (len(grid.Thresholds) * len(grid.MaxPerBus))
		thr := grid.Thresholds[rest/len(grid.MaxPerBus)]
		cap := grid.MaxPerBus[rest%len(grid.MaxPerBus)]
		ws := grid.Windows[w]
		if ws <= 0 {
			ws = app.WindowSize
		}
		opts := core.Options{
			OverlapThreshold: thr,
			SeparateCritical: true,
			MaxPerBus:        cap,
			OptimizeBinding:  true,
		}
		p := Point{Window: ws, Threshold: thr, MaxPerBus: cap}
		dReq, errReq := core.DesignCrossbarCtx(ctx, byWindow[w].req, opts)
		dResp, errResp := core.DesignCrossbarCtx(ctx, byWindow[w].resp, opts)
		if errReq != nil || errResp != nil {
			for _, derr := range []error{errReq, errResp} {
				if derr != nil && !errors.Is(derr, core.ErrInfeasible) && !errors.Is(derr, core.ErrSearchLimit) {
					return derr
				}
			}
			p.Infeasible = true
			points[idx] = p
			return nil
		}
		pair := &experiments.DesignPair{Req: dReq, Resp: dResp}
		res, err := run.ValidateCtx(ctx, pair)
		if err != nil {
			return err
		}
		s := res.Latency.SummarizePacket()
		p.Buses = pair.TotalBuses()
		p.AvgLat = s.Avg
		p.MaxLat = s.Max
		points[idx] = p
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// ParetoFront returns the points not dominated in (Buses, AvgLat):
// a point dominates another when it is no larger in both dimensions
// and strictly smaller in at least one. The result is sorted by bus
// count then latency.
func ParetoFront(points []Point) []Point {
	var feasible []Point
	for _, p := range points {
		if !p.Infeasible {
			feasible = append(feasible, p)
		}
	}
	var front []Point
	for _, p := range feasible {
		dominated := false
		for _, q := range feasible {
			if q.Buses <= p.Buses && q.AvgLat <= p.AvgLat &&
				(q.Buses < p.Buses || q.AvgLat < p.AvgLat) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].Buses != front[j].Buses {
			return front[i].Buses < front[j].Buses
		}
		return front[i].AvgLat < front[j].AvgLat
	})
	// Drop duplicate (Buses, AvgLat) pairs from different parameter
	// combinations; keep the first.
	out := front[:0]
	for i, p := range front {
		if i == 0 || p.Buses != front[i-1].Buses || p.AvgLat != front[i-1].AvgLat {
			out = append(out, p)
		}
	}
	return out
}

// Report renders a sweep result, marking Pareto-optimal rows.
func Report(title string, points []Point) *report.Table {
	onFront := map[Point]bool{}
	for _, p := range ParetoFront(points) {
		onFront[p] = true
	}
	t := report.NewTable(title,
		"Window", "Threshold", "MaxPerBus", "Buses", "Avg lat", "Max lat", "Pareto")
	for _, p := range points {
		if p.Infeasible {
			t.AddRow(p.Window, p.Threshold, p.MaxPerBus, "-", "infeasible", "-", "")
			continue
		}
		mark := ""
		if onFront[p] {
			mark = "*"
		}
		t.AddRow(p.Window, p.Threshold, p.MaxPerBus, p.Buses, p.AvgLat, p.MaxLat, mark)
	}
	return t
}

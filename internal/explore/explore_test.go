package explore

import (
	"strings"
	"testing"

	"repro/internal/workloads"
)

func smallGrid() Grid {
	return Grid{
		Windows:    []int64{0, 2000}, // 0 = app recommended
		Thresholds: []float64{0.30, 0.50},
		MaxPerBus:  []int{4},
	}
}

func TestSweepEvaluatesGrid(t *testing.T) {
	points, err := Sweep(workloads.QSort(1), smallGrid())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d, want 4", len(points))
	}
	for _, p := range points {
		if p.Infeasible {
			t.Errorf("point %+v infeasible", p)
			continue
		}
		if p.Buses <= 0 || p.AvgLat <= 0 {
			t.Errorf("point %+v has empty results", p)
		}
	}
}

func TestParetoFront(t *testing.T) {
	points := []Point{
		{Buses: 6, AvgLat: 8},
		{Buses: 8, AvgLat: 7},
		{Buses: 10, AvgLat: 7}, // dominated by (8,7)
		{Buses: 6, AvgLat: 9},  // dominated by (6,8)
		{Buses: 4, AvgLat: 12}, // front
		{Infeasible: true},     // ignored
		{Buses: 8, AvgLat: 7},  // duplicate of front point
	}
	front := ParetoFront(points)
	want := []Point{{Buses: 4, AvgLat: 12}, {Buses: 6, AvgLat: 8}, {Buses: 8, AvgLat: 7}}
	if len(front) != len(want) {
		t.Fatalf("front = %+v, want %+v", front, want)
	}
	for i := range want {
		if front[i].Buses != want[i].Buses || front[i].AvgLat != want[i].AvgLat {
			t.Errorf("front[%d] = %+v, want %+v", i, front[i], want[i])
		}
	}
}

func TestParetoFrontEmpty(t *testing.T) {
	if got := ParetoFront(nil); len(got) != 0 {
		t.Errorf("front of nothing = %v", got)
	}
	if got := ParetoFront([]Point{{Infeasible: true}}); len(got) != 0 {
		t.Errorf("front of infeasible = %v", got)
	}
}

func TestSweepParetoContainsExtremes(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	points, err := Sweep(workloads.QSort(1), DefaultGrid(workloads.QSort(1).WindowSize))
	if err != nil {
		t.Fatal(err)
	}
	front := ParetoFront(points)
	if len(front) == 0 {
		t.Fatal("empty Pareto front")
	}
	// The front must include the global minimum bus count and the
	// global minimum latency among feasible points.
	minBuses, minLat := 1<<30, 1e18
	for _, p := range points {
		if p.Infeasible {
			continue
		}
		if p.Buses < minBuses {
			minBuses = p.Buses
		}
		if p.AvgLat < minLat {
			minLat = p.AvgLat
		}
	}
	if front[0].Buses != minBuses {
		t.Errorf("front does not start at min buses %d: %+v", minBuses, front[0])
	}
	if front[len(front)-1].AvgLat != minLat {
		t.Errorf("front does not end at min latency %.2f: %+v", minLat, front[len(front)-1])
	}
}

func TestReportMarksPareto(t *testing.T) {
	points := []Point{
		{Window: 100, Buses: 4, AvgLat: 10},
		{Window: 200, Buses: 6, AvgLat: 12}, // dominated
		{Window: 300, Infeasible: true},
	}
	out := Report("sweep", points).String()
	if !strings.Contains(out, "*") {
		t.Errorf("no Pareto marker:\n%s", out)
	}
	if !strings.Contains(out, "infeasible") {
		t.Errorf("infeasible row missing:\n%s", out)
	}
}

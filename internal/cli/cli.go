// Package cli holds the scaffolding shared by the command-line tools:
// a root context wired to Ctrl-C / SIGTERM and an optional -timeout
// deadline, so every tool can be interrupted or bounded and still exit
// through its normal error path, plus the shared profiling
// (-cpuprofile, -memprofile) and observability (-trace-out,
// -flight-out, -metrics-addr, -progress) flags.
package cli

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Context returns the root context of a tool run. It is canceled on
// SIGINT or SIGTERM and, when timeout is positive, expires after that
// duration. The returned stop function releases the signal handler and
// any timer; call it (usually via defer) before exiting.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	return ctx, func() {
		cancel()
		stop()
	}
}

// Profiling flags shared by every tool. They are registered on the
// default flag set at package init, so importing cli is enough for a
// tool to accept -cpuprofile and -memprofile.
var (
	cpuProfilePath = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfilePath = flag.String("memprofile", "", "write a heap profile to this file at exit")
)

// StartProfiling honors the -cpuprofile / -memprofile flags. Call it
// after flag.Parse; the returned stop function finishes the CPU profile
// and writes the heap profile, so it must run on every exit path —
// tools use the run()-returns-error pattern so their deferred stop
// also fires on errors and Ctrl-C cancellation. Both profile files are
// created eagerly, so an unwritable path fails the run up front
// instead of being discovered (or silently dropped) at exit.
func StartProfiling() (stop func() error, err error) {
	var cpuFile, memFile *os.File
	if *cpuProfilePath != "" {
		cpuFile, err = os.Create(*cpuProfilePath)
		if err != nil {
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("-cpuprofile: %w", err)
		}
	}
	if *memProfilePath != "" {
		memFile, err = os.Create(*memProfilePath)
		if err != nil {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			return nil, fmt.Errorf("-memprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("-cpuprofile: %w", err)
			}
		}
		if memFile != nil {
			runtime.GC() // flush recently freed objects out of the heap profile
			if err := pprof.WriteHeapProfile(memFile); err != nil {
				memFile.Close()
				return fmt.Errorf("-memprofile: %w", err)
			}
			if err := memFile.Close(); err != nil {
				return fmt.Errorf("-memprofile: %w", err)
			}
		}
		return nil
	}, nil
}

// Observability flags shared by every tool, registered at package init
// like the profiling flags above.
var (
	traceOutPath  = flag.String("trace-out", "", "write a Chrome trace-event JSON of this run to the given file (open in chrome://tracing or Perfetto)")
	flightOutPath = flag.String("flight-out", "", "write an NDJSON flight recording of the solver's events to the given file (inspect with cmd/flightview)")
	metricsAddr   = flag.String("metrics-addr", "", "serve live telemetry over HTTP on this address: expvar at /debug/vars, JSON snapshot at /progress, Prometheus at /metrics, SSE stream at /events")
	progressIntv  = flag.Duration("progress", 0, "print a one-line metrics progress report to stderr at this interval (0 disables)")
)

// StartObs honors the -trace-out, -flight-out, -metrics-addr and
// -progress flags. Call it after flag.Parse with the tool's root
// context; run the workload under the returned context (it carries the
// span tracer when -trace-out is set and the flight recorder when
// -flight-out or -metrics-addr is set) and call finish on every exit
// path — it stops the progress reporter, shuts the telemetry endpoint
// down and writes the Chrome trace and the flight recording, so a
// canceled run still yields loadable partial artifacts. Output files
// are created eagerly so an unwritable path fails the run up front.
func StartObs(ctx context.Context) (_ context.Context, finish func() error, err error) {
	var (
		traceFile  *os.File
		tracer     *obs.Tracer
		flightFile *os.File
		rec        *obs.FlightRecorder
		stopProg   func()
		stopHTTP   func() error
	)
	if *traceOutPath != "" {
		traceFile, err = os.Create(*traceOutPath)
		if err != nil {
			return ctx, nil, fmt.Errorf("-trace-out: %w", err)
		}
		tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
	}
	closeFiles := func() {
		if traceFile != nil {
			traceFile.Close()
		}
		if flightFile != nil {
			flightFile.Close()
		}
	}
	if *flightOutPath != "" {
		flightFile, err = os.Create(*flightOutPath)
		if err != nil {
			closeFiles()
			return ctx, nil, fmt.Errorf("-flight-out: %w", err)
		}
	}
	// The recorder runs whenever anything can consume it: a -flight-out
	// file, or live SSE subscribers behind -metrics-addr.
	if *flightOutPath != "" || *metricsAddr != "" {
		rec = obs.NewFlightRecorder(0)
		ctx = obs.WithFlightRecorder(ctx, rec)
	}
	if *metricsAddr != "" {
		bus := obs.NewBus()
		rec.AttachBus(bus)
		bound, serveErr, stop, err := obs.ServeTelemetry(*metricsAddr, obs.TelemetryConfig{Bus: bus})
		if err != nil {
			closeFiles()
			return ctx, nil, fmt.Errorf("-metrics-addr: %w", err)
		}
		fmt.Fprintf(os.Stderr, "telemetry: http://%s — /debug/vars /progress /metrics /events\n", bound)
		// A telemetry server that dies mid-run (port stolen, fd
		// exhaustion) must not fail silently: log it when it happens; the
		// shutdown func surfaces it again on the tool's error path.
		go func() {
			if err := <-serveErr; err != nil {
				log.Print(err)
			}
		}()
		stopHTTP = stop
	}
	if *progressIntv > 0 {
		stopProg = obs.LogProgress(os.Stderr, *progressIntv)
	}
	return ctx, func() error {
		var errs []error
		if stopProg != nil {
			stopProg()
		}
		if stopHTTP != nil {
			if err := stopHTTP(); err != nil {
				errs = append(errs, fmt.Errorf("-metrics-addr: %w", err))
			}
		}
		if flightFile != nil {
			if err := rec.WriteNDJSON(flightFile); err != nil {
				flightFile.Close()
				errs = append(errs, fmt.Errorf("-flight-out: %w", err))
			} else if err := flightFile.Close(); err != nil {
				errs = append(errs, fmt.Errorf("-flight-out: %w", err))
			}
		}
		if traceFile != nil {
			if err := tracer.WriteChromeTrace(traceFile); err != nil {
				traceFile.Close()
				errs = append(errs, fmt.Errorf("-trace-out: %w", err))
			} else if err := traceFile.Close(); err != nil {
				errs = append(errs, fmt.Errorf("-trace-out: %w", err))
			}
		}
		return errors.Join(errs...)
	}, nil
}

// The tool timeout, registered at package init like the profiling
// flags: one definition, every tool.
var timeoutFlag = flag.Duration("timeout", 0, "abort the run after this duration (0 = no limit); Ctrl-C also cancels")

// The solver worker count, registered at package init like -timeout:
// one definition, every tool. Tools pass Workers() into
// core.Options.Workers, where 0 resolves to all CPU cores
// (conc.Workers). The parallel solver returns bit-identical results at
// every worker count, so the flag trades wall clock only — never the
// design.
var workersFlag = flag.Int("workers", 0, "parallel solver workers (0 = all CPU cores); the result is identical at any setting")

// Workers reports the -workers flag for tools to place into
// core.Options.Workers.
func Workers() int { return *workersFlag }

// The trace-analysis shard count, registered at package init like
// -workers: one definition, every tool. Tools pass Shards() into the
// trace.AnalyzeSharded family, where 0 resolves to one shard per CPU
// core. The sharded driver is bit-identical to the single-pass sweep
// at every shard count, so the flag trades wall clock and peak memory
// only — never the analysis.
var shardsFlag = flag.Int("shards", 0, "trace-analysis shards (0 = one per CPU core); the analysis is identical at any setting")

// Shards reports the -shards flag for tools to pass into the sharded
// trace-analysis entry points.
func Shards() int { return *shardsFlag }

// ParseEngine maps the user-facing engine names shared by the -engine
// flags and the daemon's engine= request parameter onto core.Engine.
func ParseEngine(name string) (core.Engine, error) {
	switch name {
	case "", "bb":
		return core.EngineBranchBound, nil
	case "milp":
		return core.EngineMILP, nil
	case "anneal":
		return core.EngineAnneal, nil
	case "portfolio":
		return core.EnginePortfolio, nil
	}
	return 0, fmt.Errorf("unknown engine %q (want bb, milp, anneal or portfolio)", name)
}

// Main is the shared entry point of the command-line tools: logger
// prefix, flag parsing, then Run around the tool body. Tools reduce to
//
//	func main() { cli.Main("xbargen", run) }
//	func run(ctx context.Context) error { ... }
//
// The body's error — joined with any scaffolding teardown error —
// exits through log.Fatal with the tool's prefix.
func Main(name string, run func(ctx context.Context) error) {
	log.SetFlags(0)
	log.SetPrefix(name + ": ")
	flag.Parse()
	if err := Run(run); err != nil {
		log.Fatal(err)
	}
}

// Run wires the shared scaffolding around one tool body: the root
// context (Ctrl-C / SIGTERM / -timeout), profiling and observability.
// Teardown runs on every exit path and its errors join the body's.
func Run(run func(ctx context.Context) error) (err error) {
	ctx, stop := Context(*timeoutFlag)
	defer stop()

	stopProf, err := StartProfiling()
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, stopProf()) }()

	ctx, stopObs, err := StartObs(ctx)
	if err != nil {
		return err
	}
	defer func() { err = errors.Join(err, stopObs()) }()

	return run(ctx)
}

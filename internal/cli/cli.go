// Package cli holds the scaffolding shared by the command-line tools:
// a root context wired to Ctrl-C / SIGTERM and an optional -timeout
// deadline, so every tool can be interrupted or bounded and still exit
// through its normal error path.
package cli

import (
	"context"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// Context returns the root context of a tool run. It is canceled on
// SIGINT or SIGTERM and, when timeout is positive, expires after that
// duration. The returned stop function releases the signal handler and
// any timer; call it (usually via defer) before exiting.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	return ctx, func() {
		cancel()
		stop()
	}
}

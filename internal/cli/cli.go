// Package cli holds the scaffolding shared by the command-line tools:
// a root context wired to Ctrl-C / SIGTERM and an optional -timeout
// deadline, so every tool can be interrupted or bounded and still exit
// through its normal error path.
package cli

import (
	"context"
	"flag"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"
)

// Context returns the root context of a tool run. It is canceled on
// SIGINT or SIGTERM and, when timeout is positive, expires after that
// duration. The returned stop function releases the signal handler and
// any timer; call it (usually via defer) before exiting.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	return ctx, func() {
		cancel()
		stop()
	}
}

// Profiling flags shared by every tool. They are registered on the
// default flag set at package init, so importing cli is enough for a
// tool to accept -cpuprofile and -memprofile.
var (
	cpuProfilePath = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfilePath = flag.String("memprofile", "", "write a heap profile to this file at exit")
)

// StartProfiling honors the -cpuprofile / -memprofile flags. Call it
// after flag.Parse; the returned stop function finishes the CPU profile
// and writes the heap profile, so it must run on the tool's normal exit
// path (profiles are not written when the tool dies via log.Fatal —
// that trade keeps the call sites to a single deferred stop).
func StartProfiling() (stop func() error, err error) {
	var cpuFile *os.File
	if *cpuProfilePath != "" {
		cpuFile, err = os.Create(*cpuProfilePath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if *memProfilePath != "" {
			f, err := os.Create(*memProfilePath)
			if err != nil {
				return err
			}
			runtime.GC() // flush recently freed objects out of the heap profile
			if err := pprof.WriteHeapProfile(f); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		}
		return nil
	}, nil
}

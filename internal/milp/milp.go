// Package milp implements a branch-and-bound solver for mixed integer
// linear programs whose integer variables are binary (0/1), layered on
// the simplex solver in internal/lp. Together with internal/lp it
// substitutes for the CPLEX package used by the paper: the crossbar
// feasibility MILP (paper Eq. 10) and binding MILP (paper Eq. 11) use
// only binary integer variables (x_{i,k}, sb_{i,j,k}, s_{i,j}) plus the
// continuous maxov objective variable.
//
// Binary bounds are enforced by the bounded-variable simplex (no
// explicit 0/1 rows), and branching fixes variables by substitution —
// a fixed variable is eliminated from the node LP entirely — so node
// relaxations shrink as the search deepens.
package milp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/lp"
)

// Problem is an LP plus binary integrality requirements.
type Problem struct {
	LP lp.Problem
	// Binary[v] marks variable v as required to take value 0 or 1.
	// The solver bounds the variable to [0,1] internally.
	Binary []bool
}

// Options tunes the branch-and-bound search.
type Options struct {
	// MaxNodes bounds the number of explored nodes (0 means a generous
	// default). Exceeding it returns ErrNodeLimit.
	MaxNodes int
	// FirstFeasible stops at the first integral solution instead of
	// proving optimality — the mode used for the paper's feasibility
	// MILP, which has no objective function.
	FirstFeasible bool
}

// Solution is the result of a MILP solve.
type Solution struct {
	Status    lp.Status
	X         []float64
	Objective float64
	Nodes     int // nodes explored
}

// ErrNodeLimit is returned when the node budget is exhausted before
// the search completes.
var ErrNodeLimit = errors.New("milp: node limit exceeded")

// ErrCanceled is returned when the context passed to SolveCtx is
// canceled (or its deadline expires) before the search completes. The
// underlying context error is wrapped, so both
// errors.Is(err, ErrCanceled) and errors.Is(err, context.Canceled)
// hold.
var ErrCanceled = errors.New("milp: solve canceled")

const intTol = 1e-6

// Solve runs best-first branch and bound.
func Solve(p *Problem, opts Options) (*Solution, error) {
	return SolveCtx(context.Background(), p, opts)
}

// SolveCtx is Solve with cooperative cancellation: the context is
// checked at every node expansion, so a cancellation surfaces within
// one LP relaxation solve.
func SolveCtx(ctx context.Context, p *Problem, opts Options) (*Solution, error) {
	if len(p.Binary) != p.LP.NumVars {
		return nil, fmt.Errorf("milp: Binary has %d entries, want %d", len(p.Binary), p.LP.NumVars)
	}
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 200000
	}
	n := p.LP.NumVars
	upper := make([]float64, n)
	for v := 0; v < n; v++ {
		if p.Binary[v] {
			upper[v] = 1
		} else {
			upper[v] = math.Inf(1)
		}
	}

	type node struct {
		fixed map[int]float64
		bound float64 // parent's LP relaxation objective
	}
	open := []node{{fixed: map[int]float64{}, bound: math.Inf(-1)}}

	var best *Solution
	nodes := 0
	for len(open) > 0 {
		// Pop the node with the most promising bound (best-first).
		bestIdx := 0
		for i := range open {
			if open[i].bound < open[bestIdx].bound {
				bestIdx = i
			}
		}
		cur := open[bestIdx]
		open = append(open[:bestIdx], open[bestIdx+1:]...)

		if best != nil && cur.bound >= best.Objective-1e-9 {
			continue
		}
		nodes++
		if nodes > maxNodes {
			return nil, ErrNodeLimit
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("%w after %d nodes: %w", ErrCanceled, nodes, err)
		}

		sol, err := solveNode(&p.LP, upper, cur.fixed)
		if err != nil {
			return nil, err
		}
		switch sol.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			return &Solution{Status: lp.Unbounded, Nodes: nodes}, nil
		}
		if best != nil && sol.Objective >= best.Objective-1e-9 {
			continue
		}

		// Most fractional binary variable.
		branchVar := -1
		worst := intTol
		for v, isBin := range p.Binary {
			if !isBin {
				continue
			}
			frac := math.Abs(sol.X[v] - math.Round(sol.X[v]))
			if frac > worst {
				worst = frac
				branchVar = v
			}
		}
		if branchVar == -1 {
			cand := &Solution{Status: lp.Optimal, X: roundBinaries(sol.X, p.Binary), Objective: sol.Objective, Nodes: nodes}
			if best == nil || cand.Objective < best.Objective {
				best = cand
			}
			if opts.FirstFeasible {
				best.Nodes = nodes
				return best, nil
			}
			continue
		}
		// Branch, trying the nearer value first.
		for _, val := range []float64{math.Round(sol.X[branchVar]), 1 - math.Round(sol.X[branchVar])} {
			child := node{fixed: make(map[int]float64, len(cur.fixed)+1), bound: sol.Objective}
			for k, v := range cur.fixed {
				child.fixed[k] = v
			}
			child.fixed[branchVar] = val
			open = append(open, child)
		}
	}
	if best == nil {
		return &Solution{Status: lp.Infeasible, Nodes: nodes}, nil
	}
	best.Nodes = nodes
	return best, nil
}

// solveNode solves the LP relaxation with the given variables fixed,
// by substituting them out of the constraints (the fixed variable's
// column is folded into the RHS and its bound pinned to zero). The
// returned solution is expressed over the original variables, with the
// fixed values patched back in and the objective including their
// contribution.
func solveNode(base *lp.Problem, upper []float64, fixed map[int]float64) (*lp.Solution, error) {
	if len(fixed) == 0 {
		return lp.SolveBounded(base, upper)
	}
	sub := lp.Problem{
		NumVars:     base.NumVars,
		Objective:   base.Objective,
		Constraints: make([]lp.Constraint, len(base.Constraints)),
	}
	for i, c := range base.Constraints {
		rhs := c.RHS
		terms := make([]lp.Term, 0, len(c.Terms))
		for _, term := range c.Terms {
			if v, ok := fixed[term.Var]; ok {
				rhs -= term.Coef * v
				continue
			}
			terms = append(terms, term)
		}
		sub.Constraints[i] = lp.Constraint{Terms: terms, Sense: c.Sense, RHS: rhs}
	}
	up := make([]float64, len(upper))
	copy(up, upper)
	var fixedObj float64
	vars := make([]int, 0, len(fixed))
	for v := range fixed {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	for _, v := range vars {
		up[v] = 0
		if base.Objective != nil {
			fixedObj += base.Objective[v] * fixed[v]
		}
	}
	sol, err := lp.SolveBounded(&sub, up)
	if err != nil || sol.Status != lp.Optimal {
		return sol, err
	}
	for _, v := range vars {
		sol.X[v] = fixed[v]
	}
	sol.Objective += fixedObj
	return sol, nil
}

func roundBinaries(x []float64, binary []bool) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	for v, isBin := range binary {
		if isBin {
			out[v] = math.Round(out[v])
		}
	}
	return out
}

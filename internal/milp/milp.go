// Package milp implements a branch-and-bound solver for mixed integer
// linear programs whose integer variables are binary (0/1), layered on
// the simplex solver in internal/lp. Together with internal/lp it
// substitutes for the CPLEX package used by the paper: the crossbar
// feasibility MILP (paper Eq. 10) and binding MILP (paper Eq. 11) use
// only binary integer variables (x_{i,k}, sb_{i,j,k}, s_{i,j}) plus the
// continuous maxov objective variable.
//
// Binary bounds are enforced by the bounded-variable simplex (no
// explicit 0/1 rows). The default search keeps one lp.NodeSolver for
// the whole tree: a node is the base problem plus a variable-fixing
// overlay, solved warm from the previous node's basis (dual-simplex
// reoptimization) with scratch buffers reused throughout — no per-node
// problem copies. The pre-incremental path, which rebuilds and re-solves
// every node relaxation from scratch, is kept behind Options.Cold for
// benchmarking and as an escape hatch.
package milp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/lp"
	"repro/internal/obs"
)

// Live solver metrics (see internal/obs). Per-node updates are plain
// atomic adds — three orders of magnitude cheaper than the node's LP
// solve — so they stay on unconditionally and the -metrics-addr /
// -progress instruments see node throughput while a solve runs.
var (
	metSolves     = obs.NewCounter("milp.solves")
	metNodes      = obs.NewCounter("milp.nodes")
	metWarm       = obs.NewCounter("milp.warm_solves")
	metCold       = obs.NewCounter("milp.cold_solves")
	metDualPivots = obs.NewCounter("milp.dual_pivots")
	metLPIters    = obs.NewCounter("milp.lp_iterations")
	metIncumbents = obs.NewCounter("milp.incumbents")
	metSeeded     = obs.NewCounter("milp.seeded")
	metRestarts   = obs.NewCounter("milp.snapshot_restarts")
)

// nodeSpanMask samples per-node tracing: with a Tracer attached, one
// node in (nodeSpanMask+1) records a span, so a 10k-node solve emits
// ~160 node spans instead of 10k (which would dominate the trace and
// its own cost).
const nodeSpanMask = 63

// Problem is an LP plus binary integrality requirements.
type Problem struct {
	LP lp.Problem
	// Binary[v] marks variable v as required to take value 0 or 1.
	// The solver bounds the variable to [0,1] internally.
	Binary []bool
}

// Options tunes the branch-and-bound search.
type Options struct {
	// MaxNodes bounds the number of explored nodes (0 means a generous
	// default). Exceeding it returns ErrNodeLimit.
	MaxNodes int
	// FirstFeasible stops at the first integral solution instead of
	// proving optimality — the mode used for the paper's feasibility
	// MILP, which has no objective function. The search then runs
	// depth-first, diving on the branch nearest the relaxation value,
	// which both finds integral points quickly and keeps consecutive
	// node LPs one fix apart so warm starts are cheap.
	FirstFeasible bool
	// Cold disables the incremental NodeSolver and runs the legacy
	// path that rebuilds each node relaxation from scratch. It exists
	// so benchmarks can measure the warm-start gain and as a fallback
	// while comparing solver revisions.
	Cold bool
	// Incumbent optionally seeds the search with a known-feasible
	// solution vector over all variables (len == NumVars), typically a
	// cached solution of a nearby problem. It is validated against the
	// constraints and integrality before use — an invalid or mis-sized
	// incumbent is silently ignored, never trusted. A valid incumbent
	// bounds the search from node one and is returned when nothing
	// strictly better is found, so the reported objective is exact; the
	// reported vector, however, may be the incumbent rather than the
	// equally-good vertex an unseeded search would have found. In
	// FirstFeasible mode a valid incumbent short-circuits the search
	// entirely (any feasible point suffices).
	Incumbent []float64
	// SnapshotRestart (incremental path, best-first mode) snapshots the
	// solver state after the root relaxation and restores it whenever
	// the search pops a node that does not extend the previously solved
	// node's fix chain, so every such solve warm-starts from the root
	// basis plus a depth-sized diff instead of an unrelated sibling's
	// basis. Sound for objective and status; the relaxation vertices —
	// and hence branching order and the returned vector among ties —
	// may differ from the default path, so it is off by default.
	SnapshotRestart bool
}

// Solution is the result of a MILP solve.
type Solution struct {
	Status    lp.Status
	X         []float64
	Objective float64
	Nodes     int // nodes explored
	// WarmSolves / ColdSolves count how many node relaxations were
	// solved by dual-simplex warm restart vs. a full two-phase solve.
	// The legacy (Options.Cold) path reports every node as cold.
	WarmSolves int64
	ColdSolves int64
	// DualPivots counts the dual-simplex pivots spent across all warm
	// solves.
	DualPivots int64
	// MaxDepth is the deepest branch explored, measured in fixed
	// variables (the root relaxation has depth 0).
	MaxDepth int
	// Incumbents counts how many times the search improved its best
	// integral solution (FirstFeasible solves stop at 1).
	Incumbents int64
	// LPIterations totals the simplex basis changes (primal and dual
	// pivots) across every node relaxation solve — the per-node work
	// metric warm starts exist to shrink. Zero on the legacy
	// (Options.Cold) path before any node completes.
	LPIterations int64
	// Seeded reports that Options.Incumbent passed validation and
	// bounded the search from the start.
	Seeded bool
	// Restarts counts root-snapshot restores (Options.SnapshotRestart).
	Restarts int64
}

// ErrNodeLimit is returned when the node budget is exhausted before
// the search completes.
var ErrNodeLimit = errors.New("milp: node limit exceeded")

// ErrCanceled is returned when the context passed to SolveCtx is
// canceled (or its deadline expires) before the search completes. The
// underlying context error is wrapped, so both
// errors.Is(err, ErrCanceled) and errors.Is(err, context.Canceled)
// hold.
var ErrCanceled = errors.New("milp: solve canceled")

const intTol = 1e-6

// Solve runs branch and bound.
func Solve(p *Problem, opts Options) (*Solution, error) {
	return SolveCtx(context.Background(), p, opts)
}

// SolveCtx is Solve with cooperative cancellation: the context is
// checked at every node expansion, so a cancellation surfaces within
// one LP relaxation solve.
func SolveCtx(ctx context.Context, p *Problem, opts Options) (*Solution, error) {
	if len(p.Binary) != p.LP.NumVars {
		return nil, fmt.Errorf("milp: Binary has %d entries, want %d", len(p.Binary), p.LP.NumVars)
	}
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 200000
	}
	metSolves.Inc()
	if opts.Cold {
		return solveLegacy(ctx, p, opts, maxNodes)
	}
	return solveIncremental(ctx, p, opts, maxNodes)
}

// chainFix is one link of a node's fix set. Sharing the parent chain
// means pushing a child costs one small allocation instead of copying
// a map of the whole path, and sibling nodes share their prefix.
type chainFix struct {
	parent *chainFix
	v      int
	val    float64
	depth  int // chain length; the root chain (nil) has depth 0
}

// appendTo collects the chain into buf (deepest fix last is fine — the
// NodeSolver does not care about order, and a chain never repeats a
// variable).
func (c *chainFix) appendTo(buf []lp.Fix) []lp.Fix {
	for ; c != nil; c = c.parent {
		buf = append(buf, lp.Fix{Var: c.v, Val: c.val})
	}
	return buf
}

// solveIncremental is the default search: one NodeSolver reused for
// every node, warm-started between consecutive solves.
func solveIncremental(ctx context.Context, p *Problem, opts Options, maxNodes int) (*Solution, error) {
	n := p.LP.NumVars
	upper := make([]float64, n)
	for v := 0; v < n; v++ {
		if p.Binary[v] {
			upper[v] = 1
		} else {
			upper[v] = math.Inf(1)
		}
	}
	ns, err := lp.NewNodeSolver(&p.LP, upper)
	if err != nil {
		return nil, err
	}
	// Pivot-level cancellation: a single node LP on a large instance can
	// pivot for minutes, far longer than the per-node ctx check below
	// can notice. The solver polls this between pivots.
	ns.Interrupt = func() bool { return ctx.Err() != nil }

	ctx, solveSpan := obs.Start(ctx, "milp.solve")
	solveSpan.SetInt("vars", int64(n))
	solveSpan.SetBool("first_feasible", opts.FirstFeasible)
	tracer := obs.TracerFrom(ctx)
	rec := obs.FlightRecorderFrom(ctx)
	ns.Rec = rec

	type node struct {
		fixes *chainFix
		bound float64 // parent's LP relaxation objective
	}
	open := []node{{fixes: nil, bound: math.Inf(-1)}}
	fixBuf := make([]lp.Fix, 0, 64)

	var best *Solution
	nodes := 0
	maxDepth := 0
	seeded := false
	var incumbents int64
	var lpIters int64
	var restarts int64
	var lastWarm, lastCold, lastDual int64
	var flushedNodes int
	finish := func(s *Solution) *Solution {
		s.Nodes = nodes
		s.WarmSolves, s.ColdSolves = ns.Stats()
		s.DualPivots = ns.DualPivots()
		s.MaxDepth = maxDepth
		s.Incumbents = incumbents
		s.LPIterations = lpIters
		s.Seeded = seeded
		s.Restarts = restarts
		solveSpan.SetInt("nodes", int64(nodes))
		solveSpan.SetInt("warm", s.WarmSolves)
		solveSpan.SetInt("cold", s.ColdSolves)
		solveSpan.SetInt("max_depth", int64(maxDepth))
		solveSpan.SetStr("status", s.Status.String())
		solveSpan.End()
		return s
	}
	if opts.Incumbent != nil {
		if s := seedIncumbent(p, opts.Incumbent); s != nil {
			best = s
			seeded = true
			metSeeded.Inc()
			rec.Emit(obs.Event{Kind: obs.EvIncumbent, Val: int64(math.Round(best.Objective)), Who: "milp"})
			solveSpan.SetBool("seeded", true)
			if opts.FirstFeasible {
				// Any feasible point suffices; the incumbent is one.
				return finish(best), nil
			}
		}
	}
	defer func() {
		// Stream warm/cold/dual-pivot deltas not yet flushed (error
		// paths included) so the live rates stay truthful, and close
		// the span if an error path skipped finish.
		w, c := ns.Stats()
		metWarm.Add(w - lastWarm)
		metCold.Add(c - lastCold)
		metDualPivots.Add(ns.DualPivots() - lastDual)
		solveSpan.End()
	}()
	flushSolves := func() {
		w, c := ns.Stats()
		d := ns.DualPivots()
		metWarm.Add(w - lastWarm)
		metCold.Add(c - lastCold)
		metDualPivots.Add(d - lastDual)
		lastWarm, lastCold, lastDual = w, c, d
	}
	// Root-snapshot restarts (see Options.SnapshotRestart): remember the
	// fix chain of the previously solved node so extension pops (a child
	// right after its parent — the cheap warm-start case) skip the
	// restore.
	var rootSnap *lp.NodeState
	var prevChain *chainFix
	prevValid := false
	for len(open) > 0 {
		var cur node
		if opts.FirstFeasible {
			// Depth-first dive: the nearest-value child was pushed last
			// and pops first, so consecutive nodes differ by one fix —
			// the cheapest possible warm start.
			cur = open[len(open)-1]
			open = open[:len(open)-1]
		} else {
			// Best-first on the parent bound (ties: earliest pushed).
			bestIdx := 0
			for i := range open {
				if open[i].bound < open[bestIdx].bound {
					bestIdx = i
				}
			}
			cur = open[bestIdx]
			open = append(open[:bestIdx], open[bestIdx+1:]...)
		}

		if best != nil && cur.bound >= best.Objective-1e-9 {
			continue
		}
		nodes++
		depth := 0
		if cur.fixes != nil {
			depth = cur.fixes.depth
		}
		if depth > maxDepth {
			maxDepth = depth
		}
		metNodes.Inc()
		if nodes&255 == 0 {
			rec.Emit(obs.Event{Kind: obs.EvNodes, Val: int64(nodes - flushedNodes), Who: "milp"})
			flushedNodes = nodes
		}
		if nodes > maxNodes {
			return nil, ErrNodeLimit
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("%w after %d nodes: %w", ErrCanceled, nodes, err)
		}

		if opts.SnapshotRestart && rootSnap != nil && !(prevValid && cur.fixes != nil && cur.fixes.parent == prevChain) {
			ns.Restore(rootSnap)
			restarts++
			metRestarts.Inc()
		}
		var nodeSpan *obs.Span
		if tracer != nil && nodes&nodeSpanMask == 1 {
			nodeSpan = obs.StartDetached(tracer, solveSpan, "milp.node")
			nodeSpan.SetInt("node", int64(nodes))
			nodeSpan.SetInt("depth", int64(depth))
		}
		sol, err := ns.Solve(cur.fixes.appendTo(fixBuf[:0]))
		if nodeSpan != nil {
			if err == nil {
				nodeSpan.SetStr("status", sol.Status.String())
			}
			nodeSpan.End()
		}
		if err != nil {
			if errors.Is(err, lp.ErrInterrupted) {
				return nil, fmt.Errorf("%w mid-node after %d nodes: %w", ErrCanceled, nodes, context.Cause(ctx))
			}
			return nil, err
		}
		prevChain, prevValid = cur.fixes, true
		if opts.SnapshotRestart && rootSnap == nil && cur.fixes == nil {
			rootSnap = ns.Snapshot()
		}
		lpIters += sol.Iterations
		metLPIters.Add(sol.Iterations)
		flushSolves()
		switch sol.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			return finish(&Solution{Status: lp.Unbounded}), nil
		}
		if best != nil && sol.Objective >= best.Objective-1e-9 {
			continue
		}

		branchVar := mostFractional(sol.X, p.Binary)
		if branchVar == -1 {
			rounded, ok, bv := roundBinaries(p, sol.X)
			if ok {
				cand := &Solution{Status: lp.Optimal, X: rounded, Objective: sol.Objective}
				if best == nil || cand.Objective < best.Objective {
					best = cand
					incumbents++
					metIncumbents.Inc()
					rec.Emit(obs.Event{Kind: obs.EvIncumbent, Val: int64(math.Round(cand.Objective)), Who: "milp"})
				}
				if opts.FirstFeasible {
					return finish(best), nil
				}
				continue
			}
			// The rounded point violates a constraint beyond what mere
			// rounding can explain (a drifted relaxation solve): branch
			// on an implicated binary to force an honest resolution, or
			// discard the node if none is identified.
			if bv == -1 {
				continue
			}
			branchVar = bv
		}

		near := math.Round(sol.X[branchVar])
		// Push the far child first so the near one pops first in DFS
		// mode; best-first mode breaks bound ties by push order, so
		// there push near first.
		if opts.FirstFeasible {
			open = append(open,
				node{fixes: &chainFix{cur.fixes, branchVar, 1 - near, depth + 1}, bound: sol.Objective},
				node{fixes: &chainFix{cur.fixes, branchVar, near, depth + 1}, bound: sol.Objective})
		} else {
			open = append(open,
				node{fixes: &chainFix{cur.fixes, branchVar, near, depth + 1}, bound: sol.Objective},
				node{fixes: &chainFix{cur.fixes, branchVar, 1 - near, depth + 1}, bound: sol.Objective})
		}
	}
	if best == nil {
		return finish(&Solution{Status: lp.Infeasible}), nil
	}
	return finish(best), nil
}

// solveLegacy is the pre-incremental best-first search: every node
// rebuilds a substituted copy of the LP and solves it cold.
func solveLegacy(ctx context.Context, p *Problem, opts Options, maxNodes int) (*Solution, error) {
	n := p.LP.NumVars
	upper := make([]float64, n)
	for v := 0; v < n; v++ {
		if p.Binary[v] {
			upper[v] = 1
		} else {
			upper[v] = math.Inf(1)
		}
	}

	type node struct {
		fixed map[int]float64
		bound float64 // parent's LP relaxation objective
	}
	open := []node{{fixed: map[int]float64{}, bound: math.Inf(-1)}}

	ctx, solveSpan := obs.Start(ctx, "milp.solve")
	solveSpan.SetInt("vars", int64(n))
	solveSpan.SetBool("first_feasible", opts.FirstFeasible)
	solveSpan.SetStr("config", "legacy")
	defer solveSpan.End()
	rec := obs.FlightRecorderFrom(ctx)

	var best *Solution
	nodes := 0
	maxDepth := 0
	seeded := false
	flushedNodes := 0
	var incumbents, lpIters int64
	finish := func(s *Solution) *Solution {
		s.Nodes = nodes
		s.ColdSolves = int64(nodes)
		s.MaxDepth = maxDepth
		s.Incumbents = incumbents
		s.LPIterations = lpIters
		s.Seeded = seeded
		solveSpan.SetInt("nodes", int64(nodes))
		solveSpan.SetInt("max_depth", int64(maxDepth))
		solveSpan.SetStr("status", s.Status.String())
		return s
	}
	if opts.Incumbent != nil {
		if s := seedIncumbent(p, opts.Incumbent); s != nil {
			best = s
			seeded = true
			metSeeded.Inc()
			rec.Emit(obs.Event{Kind: obs.EvIncumbent, Val: int64(math.Round(best.Objective)), Who: "milp"})
			solveSpan.SetBool("seeded", true)
			if opts.FirstFeasible {
				return finish(best), nil
			}
		}
	}
	for len(open) > 0 {
		// Pop the node with the most promising bound (best-first).
		bestIdx := 0
		for i := range open {
			if open[i].bound < open[bestIdx].bound {
				bestIdx = i
			}
		}
		cur := open[bestIdx]
		open = append(open[:bestIdx], open[bestIdx+1:]...)

		if best != nil && cur.bound >= best.Objective-1e-9 {
			continue
		}
		nodes++
		if d := len(cur.fixed); d > maxDepth {
			maxDepth = d
		}
		metNodes.Inc()
		metCold.Inc()
		if nodes&255 == 0 {
			rec.Emit(obs.Event{Kind: obs.EvNodes, Val: int64(nodes - flushedNodes), Who: "milp"})
			flushedNodes = nodes
		}
		if nodes > maxNodes {
			return nil, ErrNodeLimit
		}
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("%w after %d nodes: %w", ErrCanceled, nodes, err)
		}

		sol, err := solveNode(&p.LP, upper, cur.fixed)
		if err != nil {
			return nil, err
		}
		lpIters += sol.Iterations
		metLPIters.Add(sol.Iterations)
		switch sol.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			return finish(&Solution{Status: lp.Unbounded}), nil
		}
		if best != nil && sol.Objective >= best.Objective-1e-9 {
			continue
		}

		branchVar := mostFractional(sol.X, p.Binary)
		if branchVar == -1 {
			rounded, ok, bv := roundBinaries(p, sol.X)
			if ok {
				cand := &Solution{Status: lp.Optimal, X: rounded, Objective: sol.Objective}
				if best == nil || cand.Objective < best.Objective {
					best = cand
					incumbents++
					metIncumbents.Inc()
					rec.Emit(obs.Event{Kind: obs.EvIncumbent, Val: int64(math.Round(cand.Objective)), Who: "milp"})
				}
				if opts.FirstFeasible {
					return finish(best), nil
				}
				continue
			}
			if bv == -1 {
				continue
			}
			branchVar = bv
		}
		// Branch, trying the nearer value first.
		for _, val := range []float64{math.Round(sol.X[branchVar]), 1 - math.Round(sol.X[branchVar])} {
			child := node{fixed: make(map[int]float64, len(cur.fixed)+1), bound: sol.Objective}
			for k, v := range cur.fixed {
				child.fixed[k] = v
			}
			child.fixed[branchVar] = val
			open = append(open, child)
		}
	}
	if best == nil {
		return finish(&Solution{Status: lp.Infeasible}), nil
	}
	return finish(best), nil
}

// seedIncumbent validates a caller-provided incumbent vector and turns
// it into a starting best solution. The vector goes through the same
// check as any candidate integral point (roundBinaries: integrality to
// tolerance plus every constraint row), so a stale or corrupt cached
// solution can never leak into a result — it is simply ignored.
func seedIncumbent(p *Problem, x []float64) *Solution {
	if len(x) != p.LP.NumVars {
		return nil
	}
	// roundBinaries snaps first and checks constraints after, so a
	// far-from-integral vector could sneak in as its rounding; an
	// incumbent must already be integral to tolerance.
	for v, isBin := range p.Binary {
		if isBin && math.Abs(x[v]-math.Round(x[v])) > intTol {
			return nil
		}
	}
	rounded, ok, _ := roundBinaries(p, x)
	if !ok {
		return nil
	}
	var obj float64
	if p.LP.Objective != nil {
		for j, c := range p.LP.Objective {
			obj += c * rounded[j]
		}
	}
	return &Solution{Status: lp.Optimal, X: rounded, Objective: obj, Seeded: true}
}

// mostFractional returns the binary variable farthest from integrality
// (beyond intTol), or -1 when every binary is integral to tolerance.
func mostFractional(x []float64, binary []bool) int {
	branchVar := -1
	worst := intTol
	for v, isBin := range binary {
		if !isBin {
			continue
		}
		frac := math.Abs(x[v] - math.Round(x[v]))
		if frac > worst {
			worst = frac
			branchVar = v
		}
	}
	return branchVar
}

// solveNode solves the LP relaxation with the given variables fixed,
// by substituting them out of the constraints (the fixed variable's
// column is folded into the RHS and its bound pinned to zero). The
// returned solution is expressed over the original variables, with the
// fixed values patched back in and the objective including their
// contribution.
func solveNode(base *lp.Problem, upper []float64, fixed map[int]float64) (*lp.Solution, error) {
	if len(fixed) == 0 {
		return lp.SolveBounded(base, upper)
	}
	sub := lp.Problem{
		NumVars:     base.NumVars,
		Objective:   base.Objective,
		Constraints: make([]lp.Constraint, len(base.Constraints)),
	}
	for i, c := range base.Constraints {
		rhs := c.RHS
		terms := make([]lp.Term, 0, len(c.Terms))
		for _, term := range c.Terms {
			if v, ok := fixed[term.Var]; ok {
				rhs -= term.Coef * v
				continue
			}
			terms = append(terms, term)
		}
		sub.Constraints[i] = lp.Constraint{Terms: terms, Sense: c.Sense, RHS: rhs}
	}
	up := make([]float64, len(upper))
	copy(up, upper)
	var fixedObj float64
	vars := make([]int, 0, len(fixed))
	for v := range fixed {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	for _, v := range vars {
		up[v] = 0
		if base.Objective != nil {
			fixedObj += base.Objective[v] * fixed[v]
		}
	}
	sol, err := lp.SolveBounded(&sub, up)
	if err != nil || sol.Status != lp.Optimal {
		return sol, err
	}
	for _, v := range vars {
		sol.X[v] = fixed[v]
	}
	sol.Objective += fixedObj
	return sol, nil
}

// roundBinaries snaps the near-integral binaries of a relaxation
// solution to 0/1 and verifies the rounded point still satisfies every
// constraint. The per-row tolerance budgets for what honest rounding
// can shift (intTol per unit of coefficient mass) plus float noise, so
// a violation beyond it means the relaxation solution itself was bad —
// not merely fractional. In that case ok is false and branchVar names
// the binary with the largest residue appearing in a violated row (-1
// if none), which the search branches on instead of accepting the
// point.
func roundBinaries(p *Problem, x []float64) (out []float64, ok bool, branchVar int) {
	out = make([]float64, len(x))
	copy(out, x)
	for v, isBin := range p.Binary {
		if isBin {
			out[v] = math.Round(out[v])
		}
	}
	ok = true
	branchVar = -1
	worst := 0.0
	for _, c := range p.LP.Constraints {
		var lhs, mass float64
		for _, t := range c.Terms {
			lhs += t.Coef * out[t.Var]
			mass += math.Abs(t.Coef)
		}
		tol := intTol*(1+mass) + 1e-9*(1+math.Abs(c.RHS))
		var viol bool
		switch c.Sense {
		case lp.LE:
			viol = lhs > c.RHS+tol
		case lp.GE:
			viol = lhs < c.RHS-tol
		case lp.EQ:
			viol = math.Abs(lhs-c.RHS) > tol
		}
		if !viol {
			continue
		}
		ok = false
		for _, t := range c.Terms {
			if !p.Binary[t.Var] {
				continue
			}
			if frac := math.Abs(x[t.Var] - out[t.Var]); frac > worst {
				worst = frac
				branchVar = t.Var
			}
		}
	}
	if ok {
		return out, true, -1
	}
	return nil, false, branchVar
}

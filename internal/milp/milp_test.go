package milp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lp"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestKnapsack(t *testing.T) {
	// max 5a+4b+3c s.t. 2a+3b+c <= 5, binary.
	// Optimum: a=1, c=1 (weight 3) + b? weight 2+3+1=6 > 5, so a,c and
	// value 8; a,b = 9 weight 5 feasible -> best is a=b=1, value 9.
	p := &Problem{
		LP: lp.Problem{
			NumVars:   3,
			Objective: []float64{-5, -4, -3},
		},
		Binary: []bool{true, true, true},
	}
	p.LP.AddConstraint(lp.LE, 5, lp.Term{Var: 0, Coef: 2}, lp.Term{Var: 1, Coef: 3}, lp.Term{Var: 2, Coef: 1})
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != lp.Optimal || !approx(s.Objective, -9) {
		t.Fatalf("got %v obj=%f X=%v, want optimal -9", s.Status, s.Objective, s.X)
	}
	if !approx(s.X[0], 1) || !approx(s.X[1], 1) || !approx(s.X[2], 0) {
		t.Errorf("X = %v, want [1 1 0]", s.X)
	}
}

func TestInfeasibleBinary(t *testing.T) {
	// x + y = 1.5 with x, y binary has no integral solution, though the
	// LP relaxation is feasible.
	p := &Problem{
		LP:     lp.Problem{NumVars: 2},
		Binary: []bool{true, true},
	}
	p.LP.AddConstraint(lp.EQ, 1.5, lp.Term{Var: 0, Coef: 1}, lp.Term{Var: 1, Coef: 1})
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != lp.Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestFirstFeasibleStopsEarly(t *testing.T) {
	// Pure feasibility: any assignment with x0+x1 >= 1.
	p := &Problem{
		LP:     lp.Problem{NumVars: 2},
		Binary: []bool{true, true},
	}
	p.LP.AddConstraint(lp.GE, 1, lp.Term{Var: 0, Coef: 1}, lp.Term{Var: 1, Coef: 1})
	s, err := Solve(p, Options{FirstFeasible: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != lp.Optimal {
		t.Fatalf("status = %v, want optimal (feasible)", s.Status)
	}
	if s.X[0]+s.X[1] < 1-1e-6 {
		t.Errorf("X = %v violates constraint", s.X)
	}
}

func TestMixedContinuousBinary(t *testing.T) {
	// min t s.t. t >= 3x, t >= 5(1-x), x binary, t continuous.
	// x=1 -> t=3; x=0 -> t=5. Optimum t=3.
	p := &Problem{
		LP: lp.Problem{
			NumVars:   2, // 0: x (binary), 1: t
			Objective: []float64{0, 1},
		},
		Binary: []bool{true, false},
	}
	p.LP.AddConstraint(lp.GE, 0, lp.Term{Var: 1, Coef: 1}, lp.Term{Var: 0, Coef: -3})
	p.LP.AddConstraint(lp.GE, 5, lp.Term{Var: 1, Coef: 1}, lp.Term{Var: 0, Coef: 5})
	s, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != lp.Optimal || !approx(s.Objective, 3) {
		t.Fatalf("got %v obj=%f X=%v, want optimal 3", s.Status, s.Objective, s.X)
	}
	if !approx(s.X[0], 1) {
		t.Errorf("x = %f, want 1", s.X[0])
	}
}

func TestNodeLimit(t *testing.T) {
	// A problem engineered to need several nodes with a tiny budget.
	n := 8
	p := &Problem{
		LP:     lp.Problem{NumVars: n, Objective: make([]float64, n)},
		Binary: make([]bool, n),
	}
	terms := make([]lp.Term, n)
	for i := 0; i < n; i++ {
		p.Binary[i] = true
		p.LP.Objective[i] = -1
		terms[i] = lp.Term{Var: i, Coef: float64(2*i + 1)}
	}
	p.LP.AddConstraint(lp.LE, 17.5, terms...)
	if _, err := Solve(p, Options{MaxNodes: 1}); err != ErrNodeLimit {
		t.Fatalf("err = %v, want ErrNodeLimit", err)
	}
}

func TestBinaryLengthMismatch(t *testing.T) {
	p := &Problem{LP: lp.Problem{NumVars: 2}, Binary: []bool{true}}
	if _, err := Solve(p, Options{}); err == nil {
		t.Error("mismatched Binary length accepted")
	}
}

// exhaustive solves a small pure-binary MILP by enumeration.
func exhaustive(p *Problem) (bestObj float64, feasible bool) {
	n := p.LP.NumVars
	bestObj = math.Inf(1)
	for mask := 0; mask < 1<<n; mask++ {
		x := make([]float64, n)
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				x[v] = 1
			}
		}
		ok := true
		for _, c := range p.LP.Constraints {
			var lhs float64
			for _, term := range c.Terms {
				lhs += term.Coef * x[term.Var]
			}
			switch c.Sense {
			case lp.LE:
				ok = ok && lhs <= c.RHS+1e-9
			case lp.GE:
				ok = ok && lhs >= c.RHS-1e-9
			case lp.EQ:
				ok = ok && math.Abs(lhs-c.RHS) <= 1e-9
			}
		}
		if !ok {
			continue
		}
		var obj float64
		for v := 0; v < n; v++ {
			if p.LP.Objective != nil {
				obj += p.LP.Objective[v] * x[v]
			}
		}
		if obj < bestObj {
			bestObj = obj
			feasible = true
		}
	}
	return bestObj, feasible
}

// Property: branch and bound agrees with exhaustive enumeration on
// random small pure-binary problems.
func TestQuickAgainstExhaustive(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		p := &Problem{
			LP:     lp.Problem{NumVars: n, Objective: make([]float64, n)},
			Binary: make([]bool, n),
		}
		for v := 0; v < n; v++ {
			p.Binary[v] = true
			p.LP.Objective[v] = float64(rng.Intn(21) - 10)
		}
		for r := 0; r < 1+rng.Intn(3); r++ {
			var terms []lp.Term
			for v := 0; v < n; v++ {
				if rng.Intn(2) == 0 {
					terms = append(terms, lp.Term{Var: v, Coef: float64(rng.Intn(7) - 3)})
				}
			}
			if len(terms) == 0 {
				continue
			}
			sense := []lp.Sense{lp.LE, lp.GE}[rng.Intn(2)]
			p.LP.AddConstraint(sense, float64(rng.Intn(9)-4), terms...)
		}
		want, feasible := exhaustive(p)
		got, err := Solve(p, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !feasible {
			if got.Status != lp.Infeasible {
				t.Errorf("seed %d: got %v, want infeasible", seed, got.Status)
			}
			continue
		}
		if got.Status != lp.Optimal {
			t.Errorf("seed %d: got %v, want optimal", seed, got.Status)
			continue
		}
		if !approx(got.Objective, want) {
			t.Errorf("seed %d: objective %f, want %f", seed, got.Objective, want)
		}
	}
}

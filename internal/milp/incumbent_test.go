package milp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lp"
)

// solutionOf brute-forces the optimal objective of a small pure-binary
// MILP (the test problems have ≤ ~10 binaries).
func bruteBest(p *Problem) (float64, []float64, bool) {
	n := p.LP.NumVars
	bestObj := math.Inf(1)
	var bestX []float64
	x := make([]float64, n)
	var found bool
	for mask := 0; mask < 1<<n; mask++ {
		for v := 0; v < n; v++ {
			x[v] = float64((mask >> v) & 1)
		}
		feasible := true
		for _, c := range p.LP.Constraints {
			var lhs float64
			for _, tm := range c.Terms {
				lhs += tm.Coef * x[tm.Var]
			}
			switch c.Sense {
			case lp.LE:
				feasible = feasible && lhs <= c.RHS+1e-9
			case lp.GE:
				feasible = feasible && lhs >= c.RHS-1e-9
			case lp.EQ:
				feasible = feasible && math.Abs(lhs-c.RHS) <= 1e-9
			}
			if !feasible {
				break
			}
		}
		if !feasible {
			continue
		}
		var obj float64
		for v, c := range p.LP.Objective {
			obj += c * x[v]
		}
		if !found || obj < bestObj {
			bestObj = obj
			bestX = append([]float64(nil), x...)
			found = true
		}
	}
	return bestObj, bestX, found
}

// TestIncumbentSeedingExactObjective seeds random solves with their own
// brute-forced optimum and with feasible-but-suboptimal points, and
// checks the reported objective stays exactly the optimum either way,
// on both solver paths.
func TestIncumbentSeedingExactObjective(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomMILP(rng)
		if p.LP.Objective == nil {
			continue
		}
		wantObj, wantX, feasible := bruteBest(p)
		if !feasible {
			continue
		}
		for _, cold := range []bool{false, true} {
			for _, inc := range [][]float64{wantX, nil} {
				sol, err := Solve(p, Options{Incumbent: inc, Cold: cold})
				if err != nil {
					t.Fatalf("seed %d cold=%v: %v", seed, cold, err)
				}
				if sol.Status != lp.Optimal {
					t.Fatalf("seed %d cold=%v: status %v on feasible problem", seed, cold, sol.Status)
				}
				if math.Abs(sol.Objective-wantObj) > 1e-6 {
					t.Fatalf("seed %d cold=%v inc=%v: objective %v, want %v",
						seed, cold, inc != nil, sol.Objective, wantObj)
				}
				if inc != nil && !sol.Seeded {
					t.Fatalf("seed %d cold=%v: valid incumbent not reported as seeded", seed, cold)
				}
			}
		}
	}
}

// TestIncumbentRejected pins the never-trust contract: mis-sized and
// constraint-violating incumbents are ignored, and the solve proceeds
// as if unseeded.
func TestIncumbentRejected(t *testing.T) {
	n := 4
	p := &Problem{LP: lp.Problem{NumVars: n}, Binary: []bool{true, true, true, true}}
	p.LP.Objective = []float64{1, 1, 1, 1}
	p.LP.AddConstraint(lp.GE, 2,
		lp.Term{Var: 0, Coef: 1}, lp.Term{Var: 1, Coef: 1},
		lp.Term{Var: 2, Coef: 1}, lp.Term{Var: 3, Coef: 1})

	for name, inc := range map[string][]float64{
		"mis-sized":  {1, 1},
		"violating":  {0, 0, 0, 0},         // sum 0 < 2
		"fractional": {0.5, 0.5, 0.5, 0.5}, // integral to tolerance it is not
	} {
		sol, err := Solve(p, Options{Incumbent: inc})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sol.Seeded {
			t.Fatalf("%s incumbent was accepted", name)
		}
		if sol.Status != lp.Optimal || math.Abs(sol.Objective-2) > 1e-6 {
			t.Fatalf("%s: status %v objective %v, want optimal 2", name, sol.Status, sol.Objective)
		}
	}
}

// TestIncumbentFirstFeasibleShortCircuits checks a valid incumbent ends
// a feasibility solve with zero nodes explored.
func TestIncumbentFirstFeasibleShortCircuits(t *testing.T) {
	n := 4
	p := &Problem{LP: lp.Problem{NumVars: n}, Binary: []bool{true, true, true, true}}
	p.LP.AddConstraint(lp.GE, 2,
		lp.Term{Var: 0, Coef: 1}, lp.Term{Var: 1, Coef: 1},
		lp.Term{Var: 2, Coef: 1}, lp.Term{Var: 3, Coef: 1})
	sol, err := Solve(p, Options{FirstFeasible: true, Incumbent: []float64{1, 1, 0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Seeded || sol.Nodes != 0 {
		t.Fatalf("seeded=%v nodes=%d, want seeded with 0 nodes", sol.Seeded, sol.Nodes)
	}
	if sol.Status != lp.Optimal || sol.X[0] != 1 || sol.X[1] != 1 {
		t.Fatalf("unexpected solution: %+v", sol)
	}
}

// TestSnapshotRestartMatchesDefault cross-checks the root-restart
// variant against the default incremental path: status and optimal
// objective must agree on random MILPs (vectors may differ among ties).
func TestSnapshotRestartMatchesDefault(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed + 7000))
		p := randomMILP(rng)
		a, errA := Solve(p, Options{})
		b, errB := Solve(p, Options{SnapshotRestart: true})
		if (errA != nil) != (errB != nil) {
			t.Fatalf("seed %d: default err=%v restart err=%v", seed, errA, errB)
		}
		if errA != nil {
			continue
		}
		if a.Status != b.Status {
			t.Fatalf("seed %d: default status %v, restart %v", seed, a.Status, b.Status)
		}
		if a.Status == lp.Optimal && p.LP.Objective != nil && math.Abs(a.Objective-b.Objective) > 1e-6 {
			t.Fatalf("seed %d: default objective %v, restart %v", seed, a.Objective, b.Objective)
		}
	}
}

package milp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lp"
)

// randomMILP builds a small random pure-binary MILP in the shape of
// the paper's formulations: cover rows, capacity rows, and occasional
// equalities, with or without an objective.
func randomMILP(rng *rand.Rand) *Problem {
	n := 3 + rng.Intn(8)
	p := &Problem{
		LP:     lp.Problem{NumVars: n},
		Binary: make([]bool, n),
	}
	for v := 0; v < n; v++ {
		p.Binary[v] = true
	}
	if rng.Intn(3) > 0 {
		obj := make([]float64, n)
		for v := range obj {
			obj[v] = float64(rng.Intn(21) - 10)
		}
		p.LP.Objective = obj
	}
	for r := 0; r < 1+rng.Intn(4); r++ {
		var terms []lp.Term
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				terms = append(terms, lp.Term{Var: v, Coef: float64(rng.Intn(7) - 3)})
			}
		}
		if len(terms) == 0 {
			continue
		}
		sense := []lp.Sense{lp.LE, lp.GE, lp.EQ}[rng.Intn(3)]
		p.LP.AddConstraint(sense, float64(rng.Intn(9)-4), terms...)
	}
	return p
}

// TestWarmMatchesLegacy cross-checks the incremental warm-started
// search against the legacy cold path on random MILPs: identical
// status, and identical optimal objective (bindings may differ when
// several optima exist). Both optimizing and first-feasible modes.
func TestWarmMatchesLegacy(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p := randomMILP(rng)
		for _, ff := range []bool{false, true} {
			warm, errW := Solve(p, Options{FirstFeasible: ff})
			cold, errC := Solve(p, Options{FirstFeasible: ff, Cold: true})
			if (errW != nil) != (errC != nil) {
				t.Fatalf("seed %d ff=%v: warm err=%v cold err=%v", seed, ff, errW, errC)
			}
			if errW != nil {
				continue
			}
			if warm.Status != cold.Status {
				t.Fatalf("seed %d ff=%v: warm status %v, cold %v", seed, ff, warm.Status, cold.Status)
			}
			if warm.Status != lp.Optimal {
				continue
			}
			if !ff && !approx(warm.Objective, cold.Objective) {
				t.Fatalf("seed %d: warm objective %f, cold %f", seed, warm.Objective, cold.Objective)
			}
			// Whatever mode, the warm solution must satisfy the problem.
			for ci, c := range p.LP.Constraints {
				var lhs float64
				for _, tm := range c.Terms {
					lhs += tm.Coef * warm.X[tm.Var]
				}
				bad := false
				switch c.Sense {
				case lp.LE:
					bad = lhs > c.RHS+1e-6
				case lp.GE:
					bad = lhs < c.RHS-1e-6
				case lp.EQ:
					bad = math.Abs(lhs-c.RHS) > 1e-6
				}
				if bad {
					t.Fatalf("seed %d ff=%v: constraint %d violated by warm X=%v", seed, ff, ci, warm.X)
				}
			}
			for v, isBin := range p.Binary {
				if isBin && warm.X[v] != 0 && warm.X[v] != 1 {
					t.Fatalf("seed %d ff=%v: x[%d]=%v not integral", seed, ff, v, warm.X[v])
				}
			}
		}
	}
}

// TestWarmSolvesCounted ensures the incremental path actually reuses
// bases instead of silently re-solving cold: on a dive-friendly
// feasibility problem most node solves must be warm.
func TestWarmSolvesCounted(t *testing.T) {
	n := 12
	p := &Problem{LP: lp.Problem{NumVars: n}, Binary: make([]bool, n)}
	for v := 0; v < n; v++ {
		p.Binary[v] = true
	}
	// Three overlapping cover rows and one capacity row force a few
	// levels of branching before an integral point appears.
	p.LP.AddConstraint(lp.GE, 2, lp.Term{Var: 0, Coef: 1}, lp.Term{Var: 1, Coef: 1}, lp.Term{Var: 2, Coef: 1}, lp.Term{Var: 3, Coef: 1})
	p.LP.AddConstraint(lp.GE, 2, lp.Term{Var: 4, Coef: 1}, lp.Term{Var: 5, Coef: 1}, lp.Term{Var: 6, Coef: 1}, lp.Term{Var: 7, Coef: 1})
	p.LP.AddConstraint(lp.GE, 2, lp.Term{Var: 8, Coef: 1}, lp.Term{Var: 9, Coef: 1}, lp.Term{Var: 10, Coef: 1}, lp.Term{Var: 11, Coef: 1})
	terms := make([]lp.Term, n)
	for v := 0; v < n; v++ {
		terms[v] = lp.Term{Var: v, Coef: 1}
	}
	p.LP.AddConstraint(lp.LE, 6, terms...)
	s, err := Solve(p, Options{FirstFeasible: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != lp.Optimal {
		t.Fatalf("status %v, want feasible", s.Status)
	}
	if s.Nodes > 1 && s.WarmSolves == 0 {
		t.Fatalf("explored %d nodes with zero warm solves (warm path inert)", s.Nodes)
	}
	// Nodes can be popped and pruned without an LP solve, so warm+cold
	// ≤ nodes is the invariant, not equality.
	if s.WarmSolves+s.ColdSolves > int64(s.Nodes) {
		t.Fatalf("solve counts warm=%d cold=%d exceed nodes=%d", s.WarmSolves, s.ColdSolves, s.Nodes)
	}
}

// TestRoundBinariesRejectsViolation is the regression test for the
// blind-rounding bug: a near-integral point whose rounded image
// violates a constraint far beyond rounding tolerance must be rejected
// and an implicated branch variable suggested — previously it was
// returned as a valid integral solution.
func TestRoundBinariesRejectsViolation(t *testing.T) {
	p := &Problem{LP: lp.Problem{NumVars: 2}, Binary: []bool{true, true}}
	p.LP.AddConstraint(lp.LE, 1, lp.Term{Var: 0, Coef: 1}, lp.Term{Var: 1, Coef: 1})

	// A (corrupted) relaxation point: both binaries within intTol of 1,
	// so the search would deem it integral, but rounding yields (1,1)
	// with row value 2 > 1 — a violation no honest rounding of a
	// feasible LP point can produce.
	x := []float64{1 - 1e-7, 1 - 1e-7}
	rounded, ok, bv := roundBinaries(p, x)
	if ok {
		t.Fatalf("accepted rounded point %v violating x0+x1<=1", rounded)
	}
	if bv != 0 && bv != 1 {
		t.Fatalf("branch variable %d, want an implicated binary (0 or 1)", bv)
	}

	// The benign case: rounding within tolerance of a feasible point is
	// accepted and snaps exactly to integers.
	x = []float64{1 - 1e-7, 1e-7}
	rounded, ok, bv = roundBinaries(p, x)
	if !ok || bv != -1 {
		t.Fatalf("rejected a legitimately roundable point (ok=%v bv=%d)", ok, bv)
	}
	if rounded[0] != 1 || rounded[1] != 0 {
		t.Fatalf("rounded = %v, want [1 0]", rounded)
	}
}

// TestRoundBinariesEquality covers the EQ sense: a rounded point
// drifting off an equality row by more than the rounding budget is
// rejected.
func TestRoundBinariesEquality(t *testing.T) {
	p := &Problem{LP: lp.Problem{NumVars: 3}, Binary: []bool{true, true, true}}
	p.LP.AddConstraint(lp.EQ, 2, lp.Term{Var: 0, Coef: 1}, lp.Term{Var: 1, Coef: 1}, lp.Term{Var: 2, Coef: 1})
	if _, ok, _ := roundBinaries(p, []float64{1 - 1e-7, 1 - 1e-7, 1 - 1e-7}); ok {
		t.Fatal("accepted rounding to (1,1,1) on x0+x1+x2=2")
	}
	if _, ok, _ := roundBinaries(p, []float64{1 - 1e-7, 1 - 1e-7, 1e-7}); !ok {
		t.Fatal("rejected exact-cardinality rounding on x0+x1+x2=2")
	}
}

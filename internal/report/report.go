// Package report renders experiment results as aligned ASCII tables
// and simple series plots, the output format of cmd/experiments and the
// benchmark harness.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a labelled (x, y) sequence for figure-style results.
type Series struct {
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Y      []float64
}

// Add appends one point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// String renders the series as an aligned two-column listing plus a
// coarse ASCII bar per point, enough to eyeball the trend in a
// terminal.
func (s *Series) String() string {
	var b strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&b, "%s\n", s.Title)
	}
	maxY := 0.0
	for _, y := range s.Y {
		if y > maxY {
			maxY = y
		}
	}
	fmt.Fprintf(&b, "%14s  %10s\n", s.XLabel, s.YLabel)
	for i := range s.X {
		bar := ""
		if maxY > 0 {
			n := int(s.Y[i] / maxY * 40)
			bar = strings.Repeat("#", n)
		}
		fmt.Fprintf(&b, "%14.6g  %10.4g  %s\n", s.X[i], s.Y[i], bar)
	}
	return b.String()
}

package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("Title", "A", "Longer Header")
	tab.AddRow("x", 1)
	tab.AddRow("longer cell", 3.14159)
	out := tab.String()
	if !strings.HasPrefix(out, "Title\n") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "Longer Header") {
		t.Errorf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "3.14") {
		t.Errorf("float not formatted to two decimals:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("line count = %d, want 5:\n%s", len(lines), out)
	}
	// Columns aligned: header and separator equal length.
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("separator not aligned with header:\n%s", out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tab := NewTable("", "X")
	tab.AddRow(1)
	if strings.HasPrefix(tab.String(), "\n") {
		t.Error("empty title rendered as blank line")
	}
}

func TestSeriesRendering(t *testing.T) {
	s := &Series{Title: "T", XLabel: "x", YLabel: "y"}
	s.Add(1, 10)
	s.Add(2, 5)
	s.Add(3, 0)
	out := s.String()
	if !strings.Contains(out, "T\n") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, 3 points
		t.Errorf("line count = %d, want 5:\n%s", len(lines), out)
	}
	// The max point carries the longest bar.
	if !strings.Contains(lines[2], strings.Repeat("#", 40)) {
		t.Errorf("max point missing full bar:\n%s", out)
	}
	if strings.Contains(lines[4], "#") {
		t.Errorf("zero point should have no bar:\n%s", out)
	}
}

func TestSeriesAllZeros(t *testing.T) {
	s := &Series{XLabel: "x", YLabel: "y"}
	s.Add(1, 0)
	out := s.String() // must not divide by zero
	if strings.Contains(out, "#") {
		t.Errorf("all-zero series rendered bars:\n%s", out)
	}
}

package conc

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got < 1 {
		t.Errorf("Workers(0) = %d, want >= 1", got)
	}
	if got := Workers(-5); got < 1 {
		t.Errorf("Workers(-5) = %d, want >= 1", got)
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		const n = 100
		counts := make([]atomic.Int32, n)
		err := ForEach(context.Background(), n, workers, func(ctx context.Context, i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachIndexedWritesAreDeterministic(t *testing.T) {
	const n = 64
	want := make([]int, n)
	for i := range want {
		want[i] = i * i
	}
	for _, workers := range []int{1, 3, 8} {
		got := make([]int, n)
		if err := ForEach(context.Background(), n, workers, func(ctx context.Context, i int) error {
			got[i] = i * i
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestForEachSerialFastPathStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	var visited []int
	err := ForEach(context.Background(), 10, 1, func(ctx context.Context, i int) error {
		visited = append(visited, i)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if len(visited) != 4 {
		t.Errorf("visited %v, want [0 1 2 3]", visited)
	}
}

func TestForEachPrefersLowestNonCancellationError(t *testing.T) {
	// Every item fails; the reported error must be the failure of the
	// lowest index regardless of workers/scheduling, never a
	// cancellation triggered by a sibling.
	for _, workers := range []int{2, 4, 8} {
		err := ForEach(context.Background(), 20, workers, func(ctx context.Context, i int) error {
			return fmt.Errorf("item %d failed", i)
		})
		if err == nil || err.Error() != "item 0 failed" {
			t.Errorf("workers=%d: err = %v, want item 0 failed", workers, err)
		}
	}
}

func TestForEachCancellationPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEach(ctx, 10, 4, func(ctx context.Context, i int) error {
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	// Serial fast path too.
	if err := ForEach(ctx, 10, 1, func(ctx context.Context, i int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Errorf("serial err = %v, want context.Canceled", err)
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, nil); err != nil {
		t.Errorf("n=0: %v", err)
	}
}

func TestGroupLimitBoundsConcurrency(t *testing.T) {
	var g Group
	g.SetLimit(2)
	var running, peak atomic.Int32
	for i := 0; i < 20; i++ {
		g.Go(func() error {
			cur := running.Add(1)
			for {
				p := peak.Load()
				if cur <= p || peak.CompareAndSwap(p, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			running.Add(-1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("peak concurrency %d, limit 2", p)
	}
}

func TestGroupWithContextCancelsOnError(t *testing.T) {
	g, ctx := WithContext(context.Background())
	boom := errors.New("boom")
	g.Go(func() error { return boom })
	g.Go(func() error {
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(5 * time.Second):
			return errors.New("sibling error did not cancel the context")
		}
	})
	if err := g.Wait(); !errors.Is(err, boom) {
		t.Fatalf("Wait = %v, want boom", err)
	}
	if cause := context.Cause(ctx); !errors.Is(cause, boom) {
		t.Errorf("cause = %v, want boom", cause)
	}
}

func TestGroupWaitCancelsContext(t *testing.T) {
	g, ctx := WithContext(context.Background())
	g.Go(func() error { return nil })
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	default:
		t.Error("context not canceled after Wait")
	}
}

// Package conc provides the small concurrency toolkit the design
// engine is built on: a bounded errgroup-style Group and a
// deterministic indexed ForEach. The repository is dependency-free, so
// this substitutes for golang.org/x/sync/errgroup.
//
// Both helpers are context-aware: the first failure cancels the
// context handed to the remaining work, and a canceled parent context
// stops new work from starting. Crucially for the reproduction, both
// are *deterministic in their results*: ForEach writes outcomes by
// index, so the output of a parallel loop is byte-identical to the
// serial loop regardless of GOMAXPROCS or scheduling order.
package conc

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// Worker-pool instruments (see internal/obs): conc.active is the
// number of currently running tasks/workers across every Group and
// ForEach in the process, conc.queued the tasks blocked on a Group's
// concurrency limit, conc.tasks / conc.items the totals. Updates are
// per-task (not per-inner-iteration) atomic adds, so the pool's
// utilization is observable live at negligible cost.
var (
	metActive = obs.NewGauge("conc.active")
	metQueued = obs.NewGauge("conc.queued")
	metTasks  = obs.NewCounter("conc.tasks")
	metItems  = obs.NewCounter("conc.items")
)

// Workers resolves a worker-count knob: n itself when positive,
// otherwise GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Group is a bounded goroutine group with first-error capture, an
// errgroup clone. The zero value is usable and unbounded.
type Group struct {
	wg      sync.WaitGroup
	sem     chan struct{}
	errOnce sync.Once
	err     error
	cancel  context.CancelCauseFunc
}

// WithContext returns a Group and a context derived from ctx that is
// canceled the first time a task returns a non-nil error or Wait
// returns.
func WithContext(ctx context.Context) (*Group, context.Context) {
	ctx, cancel := context.WithCancelCause(ctx)
	return &Group{cancel: cancel}, ctx
}

// SetLimit bounds the number of concurrently running tasks. It must be
// called before the first Go.
func (g *Group) SetLimit(n int) {
	if n <= 0 {
		g.sem = nil
		return
	}
	g.sem = make(chan struct{}, n)
}

// Go runs fn on a new goroutine, blocking first if the group is at its
// concurrency limit.
func (g *Group) Go(fn func() error) {
	metTasks.Inc()
	if g.sem != nil {
		metQueued.Add(1)
		g.sem <- struct{}{}
		metQueued.Add(-1)
	}
	g.wg.Add(1)
	go func() {
		metActive.Add(1)
		defer func() {
			metActive.Add(-1)
			if g.sem != nil {
				<-g.sem
			}
			g.wg.Done()
		}()
		if err := fn(); err != nil {
			g.errOnce.Do(func() {
				g.err = err
				if g.cancel != nil {
					g.cancel(err)
				}
			})
		}
	}()
}

// Wait blocks until every task started with Go has finished and
// returns the first error observed.
func (g *Group) Wait() error {
	g.wg.Wait()
	if g.cancel != nil {
		g.cancel(g.err)
	}
	return g.err
}

// ForEach runs fn(ctx, i) for every i in [0, n) on up to workers
// goroutines (Workers(workers) resolves the knob). The first error
// cancels the context seen by the remaining items; items that never
// started report no error. The returned error is deterministic: the
// non-cancellation error with the lowest index wins, falling back to
// the lowest-index cancellation error.
//
// With workers resolved to 1 the items run serially on the calling
// goroutine, so serial baselines pay no synchronization cost.
func ForEach(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			metItems.Inc()
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			metActive.Add(1)
			defer metActive.Add(-1)
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					return
				}
				metItems.Inc()
				if err := fn(ctx, i); err != nil {
					errs[i] = err
					cancel(err)
					if !isCancellation(err) {
						return
					}
				}
			}
		}()
	}
	wg.Wait()

	var firstCancel error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !isCancellation(err) {
			return err
		}
		if firstCancel == nil {
			firstCancel = err
		}
	}
	return firstCancel
}

// isCancellation reports whether err stems from context cancellation
// or deadline expiry rather than from the work itself.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Package vcd writes Value Change Dump (IEEE 1364) waveform files of
// the interconnect activity, viewable in standard EDA waveform viewers
// (GTKWave etc.). The dump is reconstructed from a functional traffic
// trace: per-bus busy wires and per-receiver activity wires for each
// direction of the STbus instantiation.
package vcd

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/stbus"
	"repro/internal/trace"
)

// Writer is a minimal streaming VCD writer. Declare signals, call
// Begin, then emit monotonically-timed value changes.
type Writer struct {
	w       *bufio.Writer
	nextID  int
	signals []signal
	began   bool
	lastT   int64
	curT    int64
	hasT    bool
	err     error
}

type signal struct {
	id     string
	name   string
	module string
	last   int64
	hasVal bool
}

// SignalID refers to a declared signal.
type SignalID int

// NewWriter starts a VCD document on w with a 1ns-per-cycle timescale.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w)}
}

// vcdID converts an index to a short VCD identifier.
func vcdID(n int) string {
	const chars = 94 // printable ASCII 33..126
	id := ""
	for {
		id += string(rune(33 + n%chars))
		n /= chars
		if n == 0 {
			return id
		}
		n--
	}
}

// DeclareWire registers a 1-bit-or-wider wire under a module scope.
// All declarations must precede Begin.
func (v *Writer) DeclareWire(module, name string) SignalID {
	if v.began {
		v.fail(errors.New("vcd: declaration after Begin"))
		return -1
	}
	id := SignalID(len(v.signals))
	v.signals = append(v.signals, signal{id: vcdID(v.nextID), name: name, module: module})
	v.nextID++
	return id
}

// Begin emits the header and variable definitions.
func (v *Writer) Begin() error {
	if v.err != nil {
		return v.err
	}
	if v.began {
		return errors.New("vcd: Begin called twice")
	}
	v.began = true
	fmt.Fprintf(v.w, "$date reproduction run $end\n$version stbusgen $end\n$timescale 1ns $end\n")
	// Group by module.
	byModule := map[string][]int{}
	var order []string
	for i, s := range v.signals {
		if _, ok := byModule[s.module]; !ok {
			order = append(order, s.module)
		}
		byModule[s.module] = append(byModule[s.module], i)
	}
	for _, mod := range order {
		fmt.Fprintf(v.w, "$scope module %s $end\n", mod)
		for _, i := range byModule[mod] {
			fmt.Fprintf(v.w, "$var wire 8 %s %s $end\n", v.signals[i].id, v.signals[i].name)
		}
		fmt.Fprintf(v.w, "$upscope $end\n")
	}
	fmt.Fprintf(v.w, "$enddefinitions $end\n$dumpvars\n")
	for i := range v.signals {
		v.signals[i].last = 0
		v.signals[i].hasVal = true
		fmt.Fprintf(v.w, "b0 %s\n", v.signals[i].id)
	}
	fmt.Fprintf(v.w, "$end\n")
	return nil
}

func (v *Writer) fail(err error) {
	if v.err == nil {
		v.err = err
	}
}

// Set records signal sig holding value from time t onward. Times must
// be non-decreasing across all calls.
func (v *Writer) Set(t int64, sig SignalID, value int64) {
	if v.err != nil {
		return
	}
	if !v.began {
		v.fail(errors.New("vcd: Set before Begin"))
		return
	}
	if sig < 0 || int(sig) >= len(v.signals) {
		v.fail(fmt.Errorf("vcd: unknown signal %d", sig))
		return
	}
	if v.hasT && t < v.curT {
		v.fail(fmt.Errorf("vcd: time went backwards: %d after %d", t, v.curT))
		return
	}
	s := &v.signals[sig]
	if s.hasVal && s.last == value {
		return // no change
	}
	if !v.hasT || t != v.curT {
		fmt.Fprintf(v.w, "#%d\n", t)
		v.curT = t
		v.hasT = true
	}
	fmt.Fprintf(v.w, "b%b %s\n", value, s.id)
	s.last = value
	s.hasVal = true
}

// Close flushes the document, stamping a final time marker.
func (v *Writer) Close(endTime int64) error {
	if v.err != nil {
		return v.err
	}
	if !v.began {
		return errors.New("vcd: Close before Begin")
	}
	if !v.hasT || endTime > v.curT {
		fmt.Fprintf(v.w, "#%d\n", endTime)
	}
	return v.w.Flush()
}

// FromTraces reconstructs the per-bus busy waveforms of one STbus
// instantiation from its two functional traces and writes them as a
// VCD document: one module per direction, one wire per bus carrying
// the number of in-flight data beats (0 or 1 per the bus serialization
// invariant), and one wire per receiver.
func FromTraces(w io.Writer, reqCfg *stbus.Config, req *trace.Trace, respCfg *stbus.Config, resp *trace.Trace) error {
	if err := reqCfg.Validate(); err != nil {
		return fmt.Errorf("vcd: request config: %w", err)
	}
	if err := respCfg.Validate(); err != nil {
		return fmt.Errorf("vcd: response config: %w", err)
	}
	if err := req.Validate(); err != nil {
		return fmt.Errorf("vcd: request trace: %w", err)
	}
	if err := resp.Validate(); err != nil {
		return fmt.Errorf("vcd: response trace: %w", err)
	}
	v := NewWriter(w)

	busSignals := func(module string, cfg *stbus.Config) []SignalID {
		ids := make([]SignalID, cfg.NumBuses)
		for b := range ids {
			ids[b] = v.DeclareWire(module, fmt.Sprintf("bus%d_busy", b))
		}
		return ids
	}
	recvSignals := func(module string, n int) []SignalID {
		ids := make([]SignalID, n)
		for r := range ids {
			ids[r] = v.DeclareWire(module, fmt.Sprintf("recv%d_active", r))
		}
		return ids
	}
	reqBus := busSignals("request", reqCfg)
	reqRecv := recvSignals("request", req.NumReceivers)
	respBus := busSignals("response", respCfg)
	respRecv := recvSignals("response", resp.NumReceivers)
	if err := v.Begin(); err != nil {
		return err
	}

	// Merge both directions' edge events into one timeline.
	type edge struct {
		t     int64
		sig   SignalID
		delta int64
	}
	var edges []edge
	add := func(tr *trace.Trace, cfg *stbus.Config, bus, recv []SignalID) {
		for _, e := range tr.Events {
			edges = append(edges,
				edge{e.Start, bus[cfg.BusOf[e.Receiver]], 1},
				edge{e.End(), bus[cfg.BusOf[e.Receiver]], -1},
				edge{e.Start, recv[e.Receiver], 1},
				edge{e.End(), recv[e.Receiver], -1},
			)
		}
	}
	add(req, reqCfg, reqBus, reqRecv)
	add(resp, respCfg, respBus, respRecv)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].t != edges[j].t {
			return edges[i].t < edges[j].t
		}
		return edges[i].delta < edges[j].delta // falls before rises at equal time
	})

	// Apply all deltas of one timestamp before emitting, so
	// back-to-back transfers do not produce spurious 1→0→1 glitches,
	// and emit in signal order for deterministic output.
	level := make(map[SignalID]int64)
	for i := 0; i < len(edges); {
		t := edges[i].t
		var changed []SignalID
		seen := map[SignalID]bool{}
		for ; i < len(edges) && edges[i].t == t; i++ {
			level[edges[i].sig] += edges[i].delta
			if !seen[edges[i].sig] {
				seen[edges[i].sig] = true
				changed = append(changed, edges[i].sig)
			}
		}
		sort.Slice(changed, func(a, b int) bool { return changed[a] < changed[b] })
		for _, sig := range changed {
			v.Set(t, sig, level[sig])
		}
	}
	horizon := req.Horizon
	if resp.Horizon > horizon {
		horizon = resp.Horizon
	}
	return v.Close(horizon)
}

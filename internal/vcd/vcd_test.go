package vcd

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/stbus"
	"repro/internal/trace"
)

func TestWriterBasics(t *testing.T) {
	var buf bytes.Buffer
	v := NewWriter(&buf)
	a := v.DeclareWire("top", "sigA")
	b := v.DeclareWire("top", "sigB")
	if err := v.Begin(); err != nil {
		t.Fatal(err)
	}
	v.Set(5, a, 1)
	v.Set(5, b, 1)
	v.Set(9, a, 0)
	v.Set(9, a, 0) // duplicate: no change emitted
	if err := v.Close(20); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module top $end",
		"$enddefinitions $end",
		"#5", "#9", "#20",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Signal A toggles twice after dumpvars: one rise, one fall.
	idA := "!"
	if got := strings.Count(out, "b1 "+idA+"\n"); got != 1 {
		t.Errorf("sigA rises = %d, want 1:\n%s", got, out)
	}
}

func TestWriterErrors(t *testing.T) {
	var buf bytes.Buffer
	v := NewWriter(&buf)
	sig := v.DeclareWire("m", "s")
	v.Set(1, sig, 1) // before Begin
	if err := v.Begin(); err == nil {
		t.Error("Begin after failed Set should carry the error")
	}

	v2 := NewWriter(&buf)
	s2 := v2.DeclareWire("m", "s")
	if err := v2.Begin(); err != nil {
		t.Fatal(err)
	}
	v2.Set(10, s2, 1)
	v2.Set(5, s2, 0) // time goes backwards
	if err := v2.Close(20); err == nil {
		t.Error("backwards time not reported")
	}

	v3 := NewWriter(&buf)
	if err := v3.Close(1); err == nil {
		t.Error("Close before Begin accepted")
	}
}

func TestVCDIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for n := 0; n < 500; n++ {
		id := vcdID(n)
		if seen[id] {
			t.Fatalf("duplicate id %q at %d", id, n)
		}
		seen[id] = true
		for _, r := range id {
			if r < 33 || r > 126 {
				t.Fatalf("id %q contains non-printable rune", id)
			}
		}
	}
}

func TestFromTraces(t *testing.T) {
	reqCfg := stbus.Partial(2, []int{0, 0})
	respCfg := stbus.Full(2, 2)
	req := &trace.Trace{
		NumReceivers: 2, NumSenders: 2, Horizon: 100,
		Events: []trace.Event{
			{Start: 0, Len: 10, Sender: 0, Receiver: 0},
			{Start: 10, Len: 5, Sender: 1, Receiver: 1}, // back-to-back on the shared bus
		},
	}
	resp := &trace.Trace{
		NumReceivers: 2, NumSenders: 2, Horizon: 100,
		Events: []trace.Event{
			{Start: 20, Len: 4, Sender: 0, Receiver: 1},
		},
	}
	var buf bytes.Buffer
	if err := FromTraces(&buf, reqCfg, req, respCfg, resp); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "$scope module request $end") ||
		!strings.Contains(out, "$scope module response $end") {
		t.Errorf("missing direction scopes:\n%s", out)
	}
	if !strings.Contains(out, "bus0_busy") || !strings.Contains(out, "recv1_active") {
		t.Errorf("missing signals:\n%s", out)
	}
	// The shared request bus is busy [0,15) with a back-to-back
	// handover at 10 — no glitch: at #10 bus0_busy must not revisit 0.
	lines := strings.Split(out, "\n")
	busID := ""
	for _, l := range lines {
		if strings.Contains(l, "bus0_busy") && strings.Contains(l, "$var") {
			parts := strings.Fields(l)
			busID = parts[3]
		}
	}
	if busID == "" {
		t.Fatal("bus0_busy id not found")
	}
	inBlock := false
	for _, l := range lines {
		if l == "#10" {
			inBlock = true
			continue
		}
		if inBlock && strings.HasPrefix(l, "#") {
			break
		}
		if inBlock && l == "b0 "+busID {
			t.Errorf("glitch: bus busy dropped to 0 at back-to-back handover:\n%s", out)
		}
	}
	// Final timestamp is the horizon.
	if !strings.Contains(out, "#100") {
		t.Errorf("missing end-of-trace timestamp:\n%s", out)
	}
}

func TestFromTracesRejectsInvalid(t *testing.T) {
	good := &trace.Trace{NumReceivers: 1, NumSenders: 1, Horizon: 10}
	bad := &trace.Trace{NumReceivers: 0, NumSenders: 1, Horizon: 10}
	cfg := stbus.Full(1, 1)
	var buf bytes.Buffer
	if err := FromTraces(&buf, cfg, bad, cfg, good); err == nil {
		t.Error("invalid request trace accepted")
	}
	if err := FromTraces(&buf, cfg, good, cfg, bad); err == nil {
		t.Error("invalid response trace accepted")
	}
	badCfg := &stbus.Config{NumSenders: 1, NumReceivers: 1, NumBuses: 0}
	if err := FromTraces(&buf, badCfg, good, cfg, good); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestFromTracesDeterministic(t *testing.T) {
	cfg := stbus.Shared(2, 3)
	tr := &trace.Trace{
		NumReceivers: 3, NumSenders: 2, Horizon: 50,
		Events: []trace.Event{
			{Start: 0, Len: 5, Receiver: 0},
			{Start: 0, Len: 5, Receiver: 1, Sender: 1},
			{Start: 5, Len: 5, Receiver: 2},
		},
	}
	respCfg := stbus.Full(3, 2)
	resp := &trace.Trace{NumReceivers: 2, NumSenders: 3, Horizon: 50}
	var a, b bytes.Buffer
	if err := FromTraces(&a, cfg, tr, respCfg, resp); err != nil {
		t.Fatal(err)
	}
	if err := FromTraces(&b, cfg, tr, respCfg, resp); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("VCD output not deterministic")
	}
}

package workloads

import (
	"testing"

	"repro/internal/sim"
)

func TestPlatformLayouts(t *testing.T) {
	cases := []struct {
		app       *App
		wantCores int
		wantInit  int
	}{
		{Mat1(1), 25, 11},
		{Mat2(1), 21, 9},
		{FFT(1), 29, 13},
		{QSort(1), 15, 6},
		{DES(1), 19, 8},
	}
	for _, c := range cases {
		t.Run(c.app.Name, func(t *testing.T) {
			if got := c.app.NumCores(); got != c.wantCores {
				t.Errorf("NumCores = %d, want %d (paper core count)", got, c.wantCores)
			}
			if c.app.NumInitiators != c.wantInit {
				t.Errorf("NumInitiators = %d, want %d", c.app.NumInitiators, c.wantInit)
			}
			if c.app.NumTargets != c.wantInit+3 {
				t.Errorf("NumTargets = %d, want %d (privates + shared + sem + interrupt)",
					c.app.NumTargets, c.wantInit+3)
			}
			if len(c.app.Programs) != c.app.NumInitiators {
				t.Errorf("Programs = %d, want %d", len(c.app.Programs), c.app.NumInitiators)
			}
			if c.app.Horizon <= 0 || c.app.WindowSize <= 0 {
				t.Error("Horizon and WindowSize must be positive")
			}
		})
	}
}

func TestProgramsValidate(t *testing.T) {
	apps := All(1)
	apps = append(apps, Synthetic(1, 1000), Mat2Critical(1, 0, 3))
	for _, app := range apps {
		t.Run(app.Name, func(t *testing.T) {
			req, resp := app.FullConfig()
			cfg := app.SimConfig(req, resp)
			if err := cfg.Validate(); err != nil {
				t.Fatalf("generated config invalid: %v", err)
			}
		})
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, b := Mat2(7), Mat2(7)
	if len(a.Programs) != len(b.Programs) {
		t.Fatal("program counts differ")
	}
	for i := range a.Programs {
		if len(a.Programs[i]) != len(b.Programs[i]) {
			t.Fatalf("core %d program lengths differ", i)
		}
		for pc := range a.Programs[i] {
			if a.Programs[i][pc] != b.Programs[i][pc] {
				t.Fatalf("core %d op %d differs", i, pc)
			}
		}
	}
	c := Mat2(8)
	same := true
	for i := range a.Programs {
		if len(a.Programs[i]) != len(c.Programs[i]) {
			same = false
			break
		}
		for pc := range a.Programs[i] {
			if a.Programs[i][pc] != c.Programs[i][pc] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical programs")
	}
}

func TestPipelineGroupsShareSchedule(t *testing.T) {
	// Mat2 uses 3 pipeline stages: cores 0 and 3 are the same stage and
	// must have identical access schedules apart from the skew/shared
	// accesses; cores 0 and 1 are different stages and must differ.
	app := Mat2(1)
	count := func(core int, kind sim.OpKind) int {
		n := 0
		for _, op := range app.Programs[core] {
			if op.Kind == kind {
				n++
			}
		}
		return n
	}
	if count(0, sim.OpRead) != count(3, sim.OpRead) {
		t.Error("same-stage cores have different read counts")
	}
	// Different stages: core 1 delays its phase (stage offset compute op
	// right after each barrier).
	foundOffset := false
	for pc, op := range app.Programs[1] {
		if op.Kind == sim.OpBarrier && pc+1 < len(app.Programs[1]) {
			next := app.Programs[1][pc+1]
			if next.Kind == sim.OpCompute && next.Cycles >= 300 {
				foundOffset = true
			}
			break
		}
	}
	if !foundOffset {
		t.Error("stage-1 core does not delay its phase after the barrier")
	}
}

func TestCriticalMarking(t *testing.T) {
	app := Mat2Critical(1, 0, 4)
	for _, core := range []int{0, 4} {
		hasCritical := false
		for _, op := range app.Programs[core] {
			if (op.Kind == sim.OpRead || op.Kind == sim.OpWrite) && op.Target == app.PrivateOf[core] && op.Critical {
				hasCritical = true
			}
		}
		if !hasCritical {
			t.Errorf("core %d private accesses not marked critical", core)
		}
	}
	// Unmarked core stays non-critical.
	for _, op := range app.Programs[1] {
		if op.Critical {
			t.Error("core 1 has critical ops but was not marked")
			break
		}
	}
}

func TestSyntheticShape(t *testing.T) {
	app := Synthetic(1, 1000)
	if app.NumCores() != 20 {
		t.Errorf("NumCores = %d, want 20", app.NumCores())
	}
	if app.SemTarget != -1 || len(app.SemTargets()) != 0 {
		t.Error("synthetic app should have no semaphore")
	}
	// Each core only writes to its own target.
	for i, prog := range app.Programs {
		for _, op := range prog {
			if op.Kind == sim.OpWrite && op.Target != i {
				t.Errorf("core %d writes target %d, want %d", i, op.Target, i)
			}
		}
	}
}

func TestSyntheticPanicsOnBadBurst(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive burst")
		}
	}()
	Synthetic(1, 0)
}

func TestSyntheticBurstLengthsScale(t *testing.T) {
	// The nominal burst parameter controls the generated burst scale.
	small := Synthetic(1, 500)
	large := Synthetic(1, 4000)
	maxBurst := func(app *App) int64 {
		var m int64
		for _, prog := range app.Programs {
			for _, op := range prog {
				if op.Kind == sim.OpWrite && op.Burst > m {
					m = op.Burst
				}
			}
		}
		return m
	}
	if maxBurst(large) < 4*maxBurst(small) {
		t.Errorf("burst scaling broken: max %d (500) vs %d (4000)", maxBurst(small), maxBurst(large))
	}
}

func TestAppsCompleteOnFullCrossbar(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations in -short mode")
	}
	for _, app := range All(1) {
		t.Run(app.Name, func(t *testing.T) {
			req, resp := app.FullConfig()
			res, err := sim.Run(app.SimConfig(req, resp))
			if err != nil {
				t.Fatal(err)
			}
			if res.Completed != app.NumInitiators {
				t.Errorf("only %d/%d cores completed within the horizon",
					res.Completed, app.NumInitiators)
			}
		})
	}
}

// Package workloads generates the MPSoC benchmark applications the
// paper evaluates (Section 7.1): two matrix-multiplication suites
// (Mat1, Mat2), an FFT suite, a Quick-Sort suite and a DES encryption
// system, plus the 20-core synthetic benchmark used for the window,
// burst and threshold sweeps (Sections 7.2 and 7.4).
//
// Every application follows the paper's platform template (Figure
// 2(a)): N ARM initiator cores, one private memory per core, a shared
// memory for inter-processor communication, a semaphore memory
// guarding it, and an interrupt device — 2N+3 cores total. The paper's
// five applications map to N = 11 (Mat1, 25 cores), 9 (Mat2, 21),
// 13 (FFT, 29), 6 (QSort, 15) and 8 (DES, 19).
//
// The generators are synthetic substitutes for the proprietary MPARM
// benchmark binaries: they reproduce the communication *structure* the
// methodology depends on — barrier-aligned computation phases that make
// the private-memory streams of different cores overlap in time, bursty
// memory accesses with per-core jitter, and rare lock-mediated shared
// memory traffic — with deterministic seeds.
package workloads

import (
	"fmt"
	"math/rand"

	"repro/internal/sim"
	"repro/internal/stbus"
)

// App is a generated benchmark application plus its platform layout.
type App struct {
	Name          string
	NumInitiators int
	NumTargets    int
	// Programs[i] is initiator i's op sequence.
	Programs [][]sim.Op
	// PrivateOf[i] is the private-memory target of initiator i.
	PrivateOf []int
	// SharedTarget, SemTarget and InterruptTarget index the three
	// common targets.
	SharedTarget, SemTarget, InterruptTarget int
	// Horizon is the recommended simulation length in cycles.
	Horizon int64
	// WindowSize is the recommended analysis window (≈ one computation
	// phase, per Section 7.2's guidance of 1–4× the burst scale).
	WindowSize int64
	// Description summarizes the workload for tooling output.
	Description string
}

// NumCores returns the platform core count (initiators + targets).
func (a *App) NumCores() int { return a.NumInitiators + a.NumTargets }

// SemTargets returns the semaphore device list for sim.Config (empty
// for applications without a semaphore, like the synthetic benchmark).
func (a *App) SemTargets() []int {
	if a.SemTarget < 0 {
		return nil
	}
	return []int{a.SemTarget}
}

// SimConfig wires the application onto the given interconnect
// configurations with the platform timing used throughout the
// experiments (2-cycle memories, 1-cycle request beats).
func (a *App) SimConfig(req, resp *stbus.Config) sim.Config {
	return sim.Config{
		NumInitiators: a.NumInitiators,
		NumTargets:    a.NumTargets,
		Programs:      a.Programs,
		Req:           req,
		Resp:          resp,
		MemWait:       2,
		ReqCycles:     1,
		LockRetry:     24,
		SemTargets:    a.SemTargets(),
		Horizon:       a.Horizon,
		CollectTrace:  true,
	}
}

// FullConfig returns the full-crossbar fabric pair for the app (the
// phase-1 trace-collection platform).
func (a *App) FullConfig() (req, resp *stbus.Config) {
	return stbus.Full(a.NumInitiators, a.NumTargets), stbus.Full(a.NumTargets, a.NumInitiators)
}

// SharedConfig returns the shared-bus fabric pair.
func (a *App) SharedConfig() (req, resp *stbus.Config) {
	return stbus.Shared(a.NumInitiators, a.NumTargets), stbus.Shared(a.NumTargets, a.NumInitiators)
}

// profile parameterizes the phase-structured generator.
type profile struct {
	name       string
	numARM     int
	iters      int
	reads      int   // reads per phase (to the private memory)
	readBurst  int64 // words per read
	writes     int   // writes per phase
	writeBurst int64 // words per write
	gap        int64 // mean compute cycles between accesses
	// burstAccesses > 0 groups accesses into contiguous sub-bursts of
	// that many back-to-back accesses, separated by `pause` compute
	// cycles (cache-refill-like traffic); gap is then ignored.
	burstAccesses int
	pause         int64
	idle          int64 // mean idle tail after each phase
	// groups > 1 splits the cores into pipeline stages: stage g delays
	// its active phase by g*groupOffset cycles after the barrier, so
	// same-stage private-memory streams overlap heavily while
	// cross-stage streams overlap only partially — the heterogeneous
	// overlap structure that makes the binding phase matter (the
	// paper's "pipelined" benchmark suites).
	groups      int
	groupOffset int64
	sharedEvery int // a core visits the shared memory every k iterations
	sharedBurst int64
	jitter      int64 // uniform jitter applied to gaps
	stagger     int64 // max initial per-core offset
	description string
}

// criticalSpec marks the private-memory traffic of selected cores as
// real-time streams (Section 7.3).
type criticalSpec map[int]bool

// build generates the application from a profile, deterministically in
// the seed.
func build(p profile, seed int64, critical criticalSpec) *App {
	n := p.numARM
	app := &App{
		Name:            p.name,
		NumInitiators:   n,
		NumTargets:      n + 3,
		PrivateOf:       make([]int, n),
		SharedTarget:    n,
		SemTarget:       n + 1,
		InterruptTarget: n + 2,
		WindowSize:      phaseEstimate(p),
		Description:     p.description,
	}
	for i := 0; i < n; i++ {
		app.PrivateOf[i] = i
	}
	// Period with margin for barrier waits and lock serialization at
	// the shared memory (which stretch iterations beyond the idle-bus
	// estimate).
	period := phaseEstimate(p) + p.idle + 64
	if p.groups > 1 {
		period += int64(p.groups-1) * p.groupOffset
	}
	overhead := int64(0)
	if p.sharedEvery > 0 {
		perVisit := 2*(4+p.sharedBurst) + 16 // lock+read+write+unlock, serialized
		overhead = int64(p.numARM/p.sharedEvery+1) * perVisit
	}
	app.Horizon = int64(p.iters)*(period+overhead)*11/10 + 2*period

	for i := 0; i < n; i++ {
		// With pipeline groups, cores of the same stage share one RNG
		// seed and hence one access schedule — the paper's observation
		// that cores performing similar computations access their
		// memories at almost the same time. A tiny per-core offset
		// (applied in coreProgram) keeps the alignment imperfect.
		rngSeed := seed*1000003 + int64(i)
		if p.groups > 1 {
			rngSeed = seed*1000003 + int64(i%p.groups)
		}
		rng := rand.New(rand.NewSource(rngSeed))
		app.Programs = append(app.Programs, coreProgram(p, app, i, rng, critical[i]))
	}
	return app
}

// phaseEstimate approximates the active-phase length on an idle full
// crossbar (read latency 3+burst, write latency 4+burst, plus gaps or
// sub-burst pauses).
func phaseEstimate(p profile) int64 {
	if p.burstAccesses > 0 {
		busy := int64(p.reads)*(3+p.readBurst) + int64(p.writes)*(4+p.writeBurst)
		pauses := int64((p.reads+p.writes)/p.burstAccesses) * p.pause
		return busy + pauses
	}
	reads := int64(p.reads) * (3 + p.readBurst + p.gap)
	writes := int64(p.writes) * (4 + p.writeBurst + p.gap)
	return reads + writes
}

// coreProgram emits one initiator's op sequence.
func coreProgram(p profile, app *App, coreID int, rng *rand.Rand, critical bool) []sim.Op {
	var ops []sim.Op
	priv := app.PrivateOf[coreID]
	jit := func(base int64) int64 {
		if p.jitter <= 0 {
			return base
		}
		v := base + rng.Int63n(2*p.jitter+1) - p.jitter
		if v < 0 {
			return 0
		}
		return v
	}
	if p.stagger > 0 {
		// Same-stage cores draw the same stagger from the shared RNG;
		// the within-group index adds a couple of cycles of skew.
		skew := int64(0)
		if p.groups > 1 {
			skew = int64(coreID / p.groups * 2)
		}
		ops = append(ops, sim.Compute(rng.Int63n(p.stagger)+skew))
	}
	mkAccess := func(write bool) sim.Op {
		if write {
			op := sim.Write(priv, p.writeBurst)
			op.Critical = critical
			return op
		}
		op := sim.Read(priv, p.readBurst)
		op.Critical = critical
		return op
	}
	group := 0
	if p.groups > 1 {
		group = coreID % p.groups
	}
	for it := 0; it < p.iters; it++ {
		ops = append(ops, sim.Barrier(it, app.InterruptTarget))
		if p.groups > 1 && group > 0 {
			// Wait for this core's pipeline stage.
			ops = append(ops, sim.Compute(int64(group)*p.groupOffset))
		}
		// Interleave reads and writes through the phase in proportion.
		// With burstAccesses set, accesses come back to back in
		// cache-refill-like sub-bursts separated by jittered pauses;
		// otherwise each access is followed by a jittered compute gap.
		// Jitter de-aligns the cores' fine-grained patterns.
		r, w := p.reads, p.writes
		emitted := 0
		for r > 0 || w > 0 {
			doWrite := w > 0 && (r == 0 || rng.Intn(p.reads+p.writes) < p.writes)
			if doWrite {
				w--
			} else {
				r--
			}
			ops = append(ops, mkAccess(doWrite))
			emitted++
			if p.burstAccesses > 0 {
				if emitted%p.burstAccesses == 0 {
					ops = append(ops, sim.Compute(jit(p.pause)))
				}
			} else {
				ops = append(ops, sim.Compute(jit(p.gap)))
			}
		}
		// Periodic lock-mediated shared-memory exchange.
		if p.sharedEvery > 0 && (it+coreID)%p.sharedEvery == 0 {
			ops = append(ops,
				sim.Lock(app.SemTarget),
				sim.Read(app.SharedTarget, p.sharedBurst),
				sim.Write(app.SharedTarget, p.sharedBurst),
				sim.Unlock(app.SemTarget),
			)
		}
		ops = append(ops, sim.Compute(jit(p.idle)))
	}
	return ops
}

// Mat1 is the 25-core matrix-multiplication suite (11 ARM cores).
// Response-side load (~0.31 duty per initiator within a phase) forces
// 4 target→initiator buses; the targets-per-bus cap yields 4
// initiator→target buses for its 14 targets.
func Mat1(seed int64) *App {
	return build(mat1Profile(), seed, nil)
}

func mat1Profile() profile {
	return profile{
		name: "Mat1", numARM: 11, iters: 36,
		reads: 19, readBurst: 16, writes: 8, writeBurst: 4,
		burstAccesses: 9, pause: 122,
		idle: 1200, groups: 3, groupOffset: 790,
		sharedEvery: 4, sharedBurst: 8,
		jitter: 3, stagger: 160,
		description: "matrix multiplication suite 1 (25 cores)",
	}
}

// Mat2 is the 21-core matrix-multiplication suite of the paper's
// running example (9 ARM cores, Figure 2): moderate phase loads let
// three private memories and one common target share each of 3 buses.
func Mat2(seed int64) *App {
	return build(mat2Profile(), seed, nil)
}

func mat2Profile() profile {
	return profile{
		name: "Mat2", numARM: 9, iters: 40,
		reads: 12, readBurst: 16, writes: 12, writeBurst: 4,
		burstAccesses: 6, pause: 117,
		idle: 1200, groups: 3, groupOffset: 300,
		sharedEvery: 3, sharedBurst: 8,
		jitter: 4, stagger: 160,
		description: "matrix multiplication suite 2 (21 cores)",
	}
}

// Mat2Critical is Mat2 with the private-memory streams of the given
// cores marked as real-time (critical) traffic, used by the Section
// 7.3 real-time experiment.
func Mat2Critical(seed int64, criticalCores ...int) *App {
	spec := criticalSpec{}
	for _, c := range criticalCores {
		spec[c] = true
	}
	p := mat2Profile()
	p.name = "Mat2-RT"
	p.description = "Mat2 with real-time streams on selected cores"
	return build(p, seed, spec)
}

// FFT is the 29-core FFT suite (13 ARM cores). Streaming butterfly
// stages read and write equally with almost no compute gaps, driving
// ~0.4 duty on both directions so only two hot cores can share a bus.
func FFT(seed int64) *App {
	return build(fftProfile(), seed, nil)
}

func fftProfile() profile {
	return profile{
		name: "FFT", numARM: 13, iters: 42,
		reads: 18, readBurst: 8, writes: 18, writeBurst: 8,
		gap: 1, idle: 700, sharedEvery: 4, sharedBurst: 12,
		jitter: 2, stagger: 120,
		description: "FFT suite (29 cores)",
	}
}

// QSort is the 15-core Quick-Sort suite (6 ARM cores): read-dominated
// partitioning sweeps at ~0.4 response duty.
func QSort(seed int64) *App {
	return build(qsortProfile(), seed, nil)
}

func qsortProfile() profile {
	return profile{
		name: "QSort", numARM: 6, iters: 40,
		reads: 25, readBurst: 16, writes: 6, writeBurst: 4,
		burstAccesses: 10, pause: 126,
		idle: 1300, groups: 2, groupOffset: 900,
		sharedEvery: 3, sharedBurst: 8,
		jitter: 3, stagger: 140,
		description: "quick sort suite (15 cores)",
	}
}

// DES is the 19-core DES encryption system (8 ARM cores): block
// streaming reads with small key/state writes, ~0.3 response duty.
func DES(seed int64) *App {
	return build(desProfile(), seed, nil)
}

func desProfile() profile {
	return profile{
		name: "DES", numARM: 8, iters: 44,
		reads: 48, readBurst: 5, writes: 8, writeBurst: 2,
		burstAccesses: 8, pause: 55,
		idle:        1100,
		sharedEvery: 4, sharedBurst: 6,
		jitter: 3, stagger: 140,
		description: "DES encryption system (19 cores)",
	}
}

// All returns the five paper benchmarks in Table 2 order.
func All(seed int64) []*App {
	return []*App{Mat1(seed), Mat2(seed), FFT(seed), QSort(seed), DES(seed)}
}

// Synthetic builds the 20-core synthetic benchmark of Sections 7.2 and
// 7.4: 10 initiators stream DMA-like write bursts to their own targets
// at ~20–25% duty. Burst lengths are heterogeneous across cores
// (0.3–1.2× the nominal burstLen, "typical" bursts near burstLen as in
// Section 7.2) and the cores' periods differ slightly, so the bursts
// drift relative to each other over the run: every target pair
// eventually overlaps somewhere, with per-pair overlap magnitudes
// spread over a wide range — exactly the traffic whose windowed
// analysis the window-size (Fig. 5) and threshold (Fig. 6) sweeps
// probe. There are no common targets and no barriers.
func Synthetic(seed int64, burstLen int64) *App {
	if burstLen <= 0 {
		panic(fmt.Sprintf("workloads: burst length must be positive, got %d", burstLen))
	}
	const nCores = 10
	const iters = 48
	basePeriod := 4 * burstLen
	app := &App{
		Name:            "Synth",
		NumInitiators:   nCores,
		NumTargets:      nCores,
		PrivateOf:       make([]int, nCores),
		SharedTarget:    -1,
		SemTarget:       -1,
		InterruptTarget: -1,
		Horizon:         int64(iters+3) * (basePeriod + nCores*burstLen/10),
		WindowSize:      2 * burstLen,
		Description:     fmt.Sprintf("synthetic 20-core streaming benchmark (burst %d cycles)", burstLen),
	}
	for i := 0; i < nCores; i++ {
		rng := rand.New(rand.NewSource(seed*999983 + int64(i)))
		app.PrivateOf[i] = i
		// Core i streams bursts of 0.3–1.2× burstLen with a period of
		// 4–5× burstLen; the per-core period offset makes relative
		// burst positions sweep through all alignments over the run.
		burst := burstLen * int64(3+i) / 10
		period := basePeriod + int64(i)*burstLen/10
		gap := period - burst - 5
		prog := []sim.Op{sim.Compute(rng.Int63n(basePeriod))}
		for it := 0; it < iters; it++ {
			// One long streaming write: occupies the initiator→target
			// bus for 1+burst cycles contiguously.
			prog = append(prog,
				sim.Write(i, burst),
				sim.Compute(gap-16+rng.Int63n(32)),
			)
		}
		app.Programs = append(app.Programs, prog)
	}
	return app
}

// builtinProfiles indexes the benchmark profiles by name, for SpecOf.
func builtinProfiles() map[string]profile {
	return map[string]profile{
		"Mat1":  mat1Profile(),
		"Mat2":  mat2Profile(),
		"FFT":   fftProfile(),
		"QSort": qsortProfile(),
		"DES":   desProfile(),
	}
}

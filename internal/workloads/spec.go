package workloads

import (
	"encoding/json"
	"fmt"
	"io"
)

// Spec is a JSON-serializable description of a custom MPSoC workload,
// so platforms beyond the built-in benchmarks can be driven through
// the same design flow without writing Go. It mirrors the generator
// profile: a 2N+3-core platform template with phase-structured
// initiator programs.
//
// Example:
//
//	{
//	  "name": "MyApp",
//	  "arm_cores": 4,
//	  "iterations": 20,
//	  "reads": 16, "read_burst": 8,
//	  "writes": 4, "write_burst": 4,
//	  "burst_accesses": 5, "pause": 40,
//	  "idle": 800,
//	  "groups": 2, "group_offset": 400,
//	  "shared_every": 3, "shared_burst": 8,
//	  "jitter": 3, "stagger": 100,
//	  "critical_cores": [0]
//	}
type Spec struct {
	Name          string `json:"name"`
	ARMCores      int    `json:"arm_cores"`
	Iterations    int    `json:"iterations"`
	Reads         int    `json:"reads"`
	ReadBurst     int64  `json:"read_burst"`
	Writes        int    `json:"writes"`
	WriteBurst    int64  `json:"write_burst"`
	Gap           int64  `json:"gap,omitempty"`
	BurstAccesses int    `json:"burst_accesses,omitempty"`
	Pause         int64  `json:"pause,omitempty"`
	Idle          int64  `json:"idle"`
	Groups        int    `json:"groups,omitempty"`
	GroupOffset   int64  `json:"group_offset,omitempty"`
	SharedEvery   int    `json:"shared_every,omitempty"`
	SharedBurst   int64  `json:"shared_burst,omitempty"`
	Jitter        int64  `json:"jitter,omitempty"`
	Stagger       int64  `json:"stagger,omitempty"`
	CriticalCores []int  `json:"critical_cores,omitempty"`
	Description   string `json:"description,omitempty"`
}

// Validate checks the spec's structural constraints.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workloads: spec needs a name")
	}
	if s.ARMCores < 1 || s.ARMCores > 29 {
		return fmt.Errorf("workloads: arm_cores %d outside [1,29] (STbus crossbars max out at 32 targets)", s.ARMCores)
	}
	if s.Iterations < 1 {
		return fmt.Errorf("workloads: iterations must be positive")
	}
	if s.Reads < 0 || s.Writes < 0 || s.Reads+s.Writes == 0 {
		return fmt.Errorf("workloads: need at least one access per phase")
	}
	if s.Reads > 0 && s.ReadBurst < 1 {
		return fmt.Errorf("workloads: read_burst must be positive")
	}
	if s.Writes > 0 && s.WriteBurst < 1 {
		return fmt.Errorf("workloads: write_burst must be positive")
	}
	if s.Gap < 0 || s.Pause < 0 || s.Idle < 0 || s.Jitter < 0 || s.Stagger < 0 || s.GroupOffset < 0 {
		return fmt.Errorf("workloads: timing parameters must be non-negative")
	}
	if s.BurstAccesses < 0 || s.Groups < 0 {
		return fmt.Errorf("workloads: counts must be non-negative")
	}
	if s.SharedEvery < 0 || (s.SharedEvery > 0 && s.SharedBurst < 1) {
		return fmt.Errorf("workloads: shared_every needs a positive shared_burst")
	}
	for _, c := range s.CriticalCores {
		if c < 0 || c >= s.ARMCores {
			return fmt.Errorf("workloads: critical core %d outside [0,%d)", c, s.ARMCores)
		}
	}
	return nil
}

// Build generates the application from the spec, deterministically in
// the seed.
func (s *Spec) Build(seed int64) (*App, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	crit := criticalSpec{}
	for _, c := range s.CriticalCores {
		crit[c] = true
	}
	p := profile{
		name:          s.Name,
		numARM:        s.ARMCores,
		iters:         s.Iterations,
		reads:         s.Reads,
		readBurst:     s.ReadBurst,
		writes:        s.Writes,
		writeBurst:    s.WriteBurst,
		gap:           s.Gap,
		burstAccesses: s.BurstAccesses,
		pause:         s.Pause,
		idle:          s.Idle,
		groups:        s.Groups,
		groupOffset:   s.GroupOffset,
		sharedEvery:   s.SharedEvery,
		sharedBurst:   s.SharedBurst,
		jitter:        s.Jitter,
		stagger:       s.Stagger,
		description:   s.Description,
	}
	if p.description == "" {
		p.description = fmt.Sprintf("custom workload %q (%d cores)", s.Name, 2*s.ARMCores+3)
	}
	return build(p, seed, crit), nil
}

// ReadSpec parses a JSON workload spec.
func ReadSpec(r io.Reader) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("workloads: decoding spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// WriteSpec serializes a spec as indented JSON.
func WriteSpec(w io.Writer, s *Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// SpecOf reconstructs an equivalent Spec for a built-in benchmark, as
// a starting point for customization (the exported counterpart of the
// internal profiles).
func SpecOf(name string) (*Spec, error) {
	p, ok := builtinProfiles()[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown benchmark %q", name)
	}
	return &Spec{
		Name:          p.name,
		ARMCores:      p.numARM,
		Iterations:    p.iters,
		Reads:         p.reads,
		ReadBurst:     p.readBurst,
		Writes:        p.writes,
		WriteBurst:    p.writeBurst,
		Gap:           p.gap,
		BurstAccesses: p.burstAccesses,
		Pause:         p.pause,
		Idle:          p.idle,
		Groups:        p.groups,
		GroupOffset:   p.groupOffset,
		SharedEvery:   p.sharedEvery,
		SharedBurst:   p.sharedBurst,
		Jitter:        p.jitter,
		Stagger:       p.stagger,
		Description:   p.description,
	}, nil
}

package workloads

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

func validSpec() *Spec {
	return &Spec{
		Name:       "Custom",
		ARMCores:   4,
		Iterations: 10,
		Reads:      8, ReadBurst: 4,
		Writes: 2, WriteBurst: 4,
		Gap:  5,
		Idle: 400,
	}
}

func TestSpecBuild(t *testing.T) {
	app, err := validSpec().Build(1)
	if err != nil {
		t.Fatal(err)
	}
	if app.NumCores() != 2*4+3 {
		t.Errorf("NumCores = %d, want 11", app.NumCores())
	}
	req, resp := app.FullConfig()
	cfg := app.SimConfig(req, resp)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("built app's config invalid: %v", err)
	}
	res, err := sim.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 4 {
		t.Errorf("completed = %d, want 4", res.Completed)
	}
}

func TestSpecValidationErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"no name", func(s *Spec) { s.Name = "" }},
		{"zero cores", func(s *Spec) { s.ARMCores = 0 }},
		{"too many cores", func(s *Spec) { s.ARMCores = 30 }},
		{"zero iterations", func(s *Spec) { s.Iterations = 0 }},
		{"no accesses", func(s *Spec) { s.Reads = 0; s.Writes = 0 }},
		{"zero read burst", func(s *Spec) { s.ReadBurst = 0 }},
		{"zero write burst", func(s *Spec) { s.WriteBurst = 0 }},
		{"negative idle", func(s *Spec) { s.Idle = -1 }},
		{"shared without burst", func(s *Spec) { s.SharedEvery = 2; s.SharedBurst = 0 }},
		{"critical out of range", func(s *Spec) { s.CriticalCores = []int{9} }},
		{"negative critical", func(s *Spec) { s.CriticalCores = []int{-1} }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := validSpec()
			c.mutate(s)
			if err := s.Validate(); err == nil {
				t.Error("invalid spec accepted")
			}
			if _, err := s.Build(1); err == nil {
				t.Error("Build accepted invalid spec")
			}
		})
	}
}

func TestSpecJSONRoundTrip(t *testing.T) {
	s := validSpec()
	s.CriticalCores = []int{0, 2}
	s.Groups = 2
	s.GroupOffset = 300
	var buf bytes.Buffer
	if err := WriteSpec(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != s.Name || back.Groups != 2 || len(back.CriticalCores) != 2 {
		t.Errorf("round trip lost fields: %+v", back)
	}
	// Same seed ⇒ identical applications.
	a, err := s.Build(5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Build(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Programs[0]) != len(b.Programs[0]) {
		t.Error("round-tripped spec builds different programs")
	}
}

func TestReadSpecRejectsUnknownFields(t *testing.T) {
	_, err := ReadSpec(strings.NewReader(`{"name":"x","arm_cores":2,"iterations":1,"reads":1,"read_burst":4,"idle":10,"bogus":true}`))
	if err == nil {
		t.Error("unknown field accepted")
	}
}

func TestReadSpecGarbage(t *testing.T) {
	if _, err := ReadSpec(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSpecCriticalMarksOps(t *testing.T) {
	s := validSpec()
	s.CriticalCores = []int{1}
	app, err := s.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, op := range app.Programs[1] {
		if op.Critical {
			found = true
		}
	}
	if !found {
		t.Error("critical core has no critical ops")
	}
}

func TestSpecOfBuiltins(t *testing.T) {
	for _, name := range []string{"Mat1", "Mat2", "FFT", "QSort", "DES"} {
		spec, err := SpecOf(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: builtin spec invalid: %v", name, err)
		}
		// Building the spec reproduces the builtin app exactly.
		fromSpec, err := spec.Build(1)
		if err != nil {
			t.Fatal(err)
		}
		var builtin *App
		switch name {
		case "Mat1":
			builtin = Mat1(1)
		case "Mat2":
			builtin = Mat2(1)
		case "FFT":
			builtin = FFT(1)
		case "QSort":
			builtin = QSort(1)
		case "DES":
			builtin = DES(1)
		}
		if fromSpec.NumCores() != builtin.NumCores() || fromSpec.Horizon != builtin.Horizon {
			t.Errorf("%s: spec build differs from builtin", name)
		}
		for i := range builtin.Programs {
			if len(fromSpec.Programs[i]) != len(builtin.Programs[i]) {
				t.Errorf("%s: core %d program length differs", name, i)
				break
			}
			for pc := range builtin.Programs[i] {
				if fromSpec.Programs[i][pc] != builtin.Programs[i][pc] {
					t.Errorf("%s: core %d op %d differs", name, i, pc)
					break
				}
			}
		}
	}
	if _, err := SpecOf("Nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

package stbus

import (
	"bytes"
	"strings"
	"testing"
)

func TestGenerateNetlist(t *testing.T) {
	req := Partial(3, []int{0, 0, 1, 1})
	resp := Full(4, 3)
	n, err := GenerateNetlist("mat2 xbar", req, resp)
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Request.Buses) != 2 {
		t.Errorf("request buses = %d, want 2", len(n.Request.Buses))
	}
	if len(n.Response.Buses) != 3 {
		t.Errorf("response buses = %d, want 3", len(n.Response.Buses))
	}
	// Receiver partitioning: every receiver appears exactly once.
	seen := map[int]int{}
	for _, bus := range n.Request.Buses {
		for _, r := range bus.Receivers {
			seen[r]++
		}
	}
	for r := 0; r < 4; r++ {
		if seen[r] != 1 {
			t.Errorf("receiver %d appears %d times in request netlist", r, seen[r])
		}
	}
	wantComps := PairComponents(req, resp)
	if n.Summary.Buses != wantComps.Buses || n.Summary.Arbiters != wantComps.Arbiters || n.Summary.Adapters != wantComps.Adapters {
		t.Errorf("summary %+v does not match component count %+v", n.Summary, wantComps)
	}
}

func TestGenerateNetlistRejectsInvalid(t *testing.T) {
	bad := &Config{NumSenders: 1, NumReceivers: 1, NumBuses: 0}
	if _, err := GenerateNetlist("x", bad, Full(1, 1)); err == nil {
		t.Error("invalid request config accepted")
	}
	if _, err := GenerateNetlist("x", Full(1, 1), bad); err == nil {
		t.Error("invalid response config accepted")
	}
}

func TestNetlistJSONRoundTrip(t *testing.T) {
	n, err := GenerateNetlist("x", Shared(2, 3), Full(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNetlistJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != n.Name || len(back.Request.Buses) != len(n.Request.Buses) {
		t.Error("JSON round trip lost structure")
	}
	if back.Summary != n.Summary {
		t.Errorf("summary changed: %+v vs %+v", back.Summary, n.Summary)
	}
}

func TestNetlistStructuralOutput(t *testing.T) {
	n, err := GenerateNetlist("my design!", Partial(2, []int{0, 1, 0}), Full(3, 2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.WriteStructural(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "module my_design__request_crossbar") {
		t.Errorf("module name not sanitized/emitted:\n%s", out)
	}
	if !strings.Contains(out, "req_bus0") || !strings.Contains(out, "req_arb1") {
		t.Errorf("bus/arbiter instances missing:\n%s", out)
	}
	if strings.Count(out, "endmodule") != 2 {
		t.Errorf("want 2 modules:\n%s", out)
	}
	// Every sender connects to every request bus: 2 senders × 2 buses.
	if got := strings.Count(out, "initiator_port"); got < 4 {
		t.Errorf("sender connections = %d, want >= 4:\n%s", got, out)
	}
}

func TestReadNetlistJSONGarbage(t *testing.T) {
	if _, err := ReadNetlistJSON(strings.NewReader("{oops")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSanitize(t *testing.T) {
	if got := sanitize(""); got != "xbar" {
		t.Errorf("empty name -> %q, want xbar", got)
	}
	if got := sanitize("a-b c9_Z"); got != "a_b_c9_Z" {
		t.Errorf("sanitize = %q", got)
	}
}

func TestNetlistConfigsRoundTrip(t *testing.T) {
	req := Partial(3, []int{0, 1, 0, 2})
	req.Arbitration = FixedPriority
	resp := Full(4, 3)
	n, err := GenerateNetlist("rt", req, resp)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := ReadNetlistJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gotReq, gotResp, err := parsed.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if gotReq.NumBuses != 3 || gotReq.NumSenders != 3 || gotReq.NumReceivers != 4 {
		t.Errorf("request config = %+v", gotReq)
	}
	for r, b := range req.BusOf {
		if gotReq.BusOf[r] != b {
			t.Errorf("receiver %d on bus %d, want %d", r, gotReq.BusOf[r], b)
		}
	}
	if gotReq.Arbitration != FixedPriority {
		t.Error("arbitration policy lost")
	}
	if gotResp.Kind != FullCrossbar || gotResp.NumBuses != 3 {
		t.Errorf("response config = %+v", gotResp)
	}
}

func TestNetlistConfigsRejectsCorrupt(t *testing.T) {
	n, err := GenerateNetlist("x", Partial(2, []int{0, 1}), Full(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Receiver attached twice.
	n.Request.Buses[0].Receivers = append(n.Request.Buses[0].Receivers, 1)
	if _, _, err := n.Configs(); err == nil {
		t.Error("double attachment accepted")
	}
	// Unattached receiver.
	n2, _ := GenerateNetlist("y", Partial(2, []int{0, 1}), Full(2, 2))
	n2.Request.Buses[1].Receivers = nil
	if _, _, err := n2.Configs(); err == nil {
		t.Error("unattached receiver accepted")
	}
}

package stbus

import (
	"fmt"

	"repro/internal/trace"
)

// Scheduler is the minimal simulation-clock interface the fabric needs;
// it is implemented by sim.Engine. Callbacks scheduled for the current
// cycle run later in the same cycle, in scheduling order.
type Scheduler interface {
	Now() int64
	At(cycle int64, fn func())
}

// Transfer is one bus transaction: Cycles consecutive data beats from
// Sender toward Receiver. Done is invoked at the cycle the transfer
// completes (i.e. the first cycle after its last beat).
type Transfer struct {
	Sender   int
	Receiver int
	Cycles   int64
	Critical bool
	Done     func(completeCycle int64)
}

// Fabric is the runtime state of one interconnect direction.
type Fabric struct {
	cfg   *Config
	sched Scheduler
	buses []bus

	// Probe, when non-nil, observes every granted transfer; it is how
	// the simulator collects the functional traffic trace.
	Probe func(ev trace.Event)
}

type bus struct {
	busyUntil   int64
	queue       []*Transfer
	lastGranted int   // sender index of the last grant (round-robin state)
	busyCycles  int64 // total occupancy, for utilization reporting
	dataBeats   int64 // data cycles only (occupancy minus adapter delay)
	grants      int64
}

// NewFabric creates a fabric over the given configuration and clock.
func NewFabric(cfg *Config, sched Scheduler) (*Fabric, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f := &Fabric{cfg: cfg, sched: sched, buses: make([]bus, cfg.NumBuses)}
	for i := range f.buses {
		f.buses[i].lastGranted = cfg.NumSenders - 1 // so sender 0 is first
	}
	return f, nil
}

// Config returns the fabric's configuration.
func (f *Fabric) Config() *Config { return f.cfg }

// Submit requests a transfer. It is granted immediately if the
// receiver's bus is idle, otherwise it queues under the bus arbiter.
func (f *Fabric) Submit(t *Transfer) {
	if t.Cycles <= 0 {
		panic(fmt.Sprintf("stbus: transfer with non-positive length %d", t.Cycles))
	}
	if t.Receiver < 0 || t.Receiver >= f.cfg.NumReceivers {
		panic(fmt.Sprintf("stbus: receiver %d out of range", t.Receiver))
	}
	if t.Sender < 0 || t.Sender >= f.cfg.NumSenders {
		panic(fmt.Sprintf("stbus: sender %d out of range", t.Sender))
	}
	bi := f.cfg.BusOf[t.Receiver]
	b := &f.buses[bi]
	now := f.sched.Now()
	if b.busyUntil <= now && len(b.queue) == 0 {
		f.grant(bi, t, now)
		return
	}
	b.queue = append(b.queue, t)
}

// grant starts a transfer on bus bi at the given cycle. The adapter
// delay extends the occupancy but not the traced data length.
func (f *Fabric) grant(bi int, t *Transfer, start int64) {
	b := &f.buses[bi]
	occupancy := t.Cycles + f.cfg.AdapterDelay
	b.busyUntil = start + occupancy
	b.busyCycles += occupancy
	b.dataBeats += t.Cycles
	b.grants++
	b.lastGranted = t.Sender
	if f.Probe != nil {
		f.Probe(trace.Event{
			Start:    start,
			Len:      t.Cycles,
			Sender:   t.Sender,
			Receiver: t.Receiver,
			Critical: t.Critical,
		})
	}
	done := t.Done
	end := b.busyUntil
	f.sched.At(end, func() {
		f.release(bi, end)
		if done != nil {
			done(end)
		}
	})
}

// release is called when a transfer finishes; it grants the next
// queued transfer (if any) per the arbitration policy, back to back.
func (f *Fabric) release(bi int, now int64) {
	b := &f.buses[bi]
	if len(b.queue) == 0 {
		return
	}
	idx := f.pick(b)
	t := b.queue[idx]
	b.queue = append(b.queue[:idx], b.queue[idx+1:]...)
	f.grant(bi, t, now)
}

// pick selects the next queued transfer index per the policy.
func (f *Fabric) pick(b *bus) int {
	switch f.cfg.Arbitration {
	case FixedPriority:
		best := 0
		for i := 1; i < len(b.queue); i++ {
			if b.queue[i].Sender < b.queue[best].Sender {
				best = i
			}
		}
		return best
	default: // RoundRobin
		n := f.cfg.NumSenders
		best, bestDist := 0, n+1
		for i, t := range b.queue {
			dist := (t.Sender - b.lastGranted - 1 + 2*n) % n
			if dist < bestDist {
				best, bestDist = i, dist
			}
		}
		return best
	}
}

// BusUtilization returns per-bus occupancy fractions over the given
// number of simulated cycles.
func (f *Fabric) BusUtilization(horizon int64) []float64 {
	out := make([]float64, len(f.buses))
	for i := range f.buses {
		out[i] = float64(f.buses[i].busyCycles) / float64(horizon)
	}
	return out
}

// Grants returns the total number of transfers granted per bus.
func (f *Fabric) Grants() []int64 {
	out := make([]int64, len(f.buses))
	for i := range f.buses {
		out[i] = f.buses[i].grants
	}
	return out
}

// DataBeats returns the total delivered data beats across all buses
// (excluding adapter-delay stretch), the numerator of the fabric's
// aggregate throughput.
func (f *Fabric) DataBeats() int64 {
	var n int64
	for i := range f.buses {
		n += f.buses[i].dataBeats
	}
	return n
}

// Pending returns the total number of queued (not yet granted)
// transfers across all buses; useful for drain checks in tests.
func (f *Fabric) Pending() int {
	n := 0
	for i := range f.buses {
		n += len(f.buses[i].queue)
	}
	return n
}

package stbus

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzNetlistRoundTrip feeds arbitrary JSON documents to the netlist
// decoder. Anything it accepts must reconstruct into validated
// configurations without panicking, and regenerating the netlist from
// those configurations must round-trip to the same configurations.
func FuzzNetlistRoundTrip(f *testing.F) {
	// A well-formed netlist generated from a real design pair.
	req := Partial(3, []int{0, 1, 0, 1})
	resp := Partial(4, []int{0, 0, 1})
	nl, err := GenerateNetlist("fuzz-seed", req, resp)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := nl.WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	// Regression: an absurd receiver count used to reach
	// make([]int, numReceivers) before any plausibility check.
	f.Add([]byte(`{"name":"x","request":{"kind":"partial","arbitration":"round-robin",` +
		`"num_senders":1,"num_receivers":1000000000000,"buses":[{"name":"b","arbiter":"a","receivers":[0]}]},` +
		`"response":{"num_senders":1,"num_receivers":1,"buses":[{"receivers":[0]}]}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		nl, err := ReadNetlistJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		req, resp, err := nl.Configs()
		if err != nil {
			return // rejected; the point is it must not panic
		}
		if err := req.Validate(); err != nil {
			t.Fatalf("Configs returned invalid request config: %v", err)
		}
		if err := resp.Validate(); err != nil {
			t.Fatalf("Configs returned invalid response config: %v", err)
		}
		regen, err := GenerateNetlist(nl.Name, req, resp)
		if err != nil {
			t.Fatalf("GenerateNetlist on validated configs: %v", err)
		}
		var buf bytes.Buffer
		if err := regen.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		back, err := ReadNetlistJSON(&buf)
		if err != nil {
			t.Fatalf("re-decoding generated netlist: %v", err)
		}
		req2, resp2, err := back.Configs()
		if err != nil {
			t.Fatalf("Configs on round-tripped netlist: %v", err)
		}
		if !reflect.DeepEqual(req, req2) || !reflect.DeepEqual(resp, resp2) {
			t.Fatalf("netlist round-trip changed the configurations:\nreq  %+v\nreq' %+v\nresp  %+v\nresp' %+v",
				req, req2, resp, resp2)
		}
	})
}

package stbus

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Netlist is a structural description of a complete STbus
// instantiation (both directions): the buses, the per-bus arbiters,
// and the adapter ports connecting cores to buses. It is the
// "generated crossbar" artifact a downstream flow would consume —
// serializable as JSON or as a structural-Verilog-style text.
type Netlist struct {
	Name     string        `json:"name"`
	Request  DirectionNet  `json:"request"`  // initiator→target
	Response DirectionNet  `json:"response"` // target→initiator
	Summary  NetlistCounts `json:"summary"`
}

// DirectionNet describes one direction's crossbar.
type DirectionNet struct {
	Kind         string    `json:"kind"`
	Arbitration  string    `json:"arbitration"`
	NumSenders   int       `json:"num_senders"`
	NumReceivers int       `json:"num_receivers"`
	Buses        []BusInst `json:"buses"`
}

// BusInst is one bus with its arbiter and attached receiver ports.
// Every sender of the direction connects to every bus (the STbus
// crossbar structure), so sender ports are implicit in NumSenders.
type BusInst struct {
	Name      string `json:"name"`
	Arbiter   string `json:"arbiter"`
	Receivers []int  `json:"receivers"`
}

// NetlistCounts is the component inventory of the whole instantiation.
type NetlistCounts struct {
	Buses    int `json:"buses"`
	Arbiters int `json:"arbiters"`
	Adapters int `json:"adapters"`
}

// GenerateNetlist builds the structural netlist for a request/response
// configuration pair.
func GenerateNetlist(name string, req, resp *Config) (*Netlist, error) {
	if err := req.Validate(); err != nil {
		return nil, fmt.Errorf("stbus: request config: %w", err)
	}
	if err := resp.Validate(); err != nil {
		return nil, fmt.Errorf("stbus: response config: %w", err)
	}
	comps := PairComponents(req, resp)
	return &Netlist{
		Name:     name,
		Request:  directionNet("req", req),
		Response: directionNet("resp", resp),
		Summary: NetlistCounts{
			Buses:    comps.Buses,
			Arbiters: comps.Arbiters,
			Adapters: comps.Adapters,
		},
	}, nil
}

func directionNet(prefix string, cfg *Config) DirectionNet {
	net := DirectionNet{
		Kind:         cfg.Kind.String(),
		Arbitration:  cfg.Arbitration.String(),
		NumSenders:   cfg.NumSenders,
		NumReceivers: cfg.NumReceivers,
	}
	byBus := make([][]int, cfg.NumBuses)
	for r, b := range cfg.BusOf {
		byBus[b] = append(byBus[b], r)
	}
	for b, receivers := range byBus {
		sort.Ints(receivers)
		net.Buses = append(net.Buses, BusInst{
			Name:      fmt.Sprintf("%s_bus%d", prefix, b),
			Arbiter:   fmt.Sprintf("%s_arb%d", prefix, b),
			Receivers: receivers,
		})
	}
	return net
}

// WriteJSON serializes the netlist as indented JSON.
func (n *Netlist) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(n)
}

// ReadNetlistJSON parses a netlist written by WriteJSON.
func ReadNetlistJSON(r io.Reader) (*Netlist, error) {
	var n Netlist
	if err := json.NewDecoder(r).Decode(&n); err != nil {
		return nil, fmt.Errorf("stbus: decoding netlist: %w", err)
	}
	return &n, nil
}

// WriteStructural renders the netlist in a structural-HDL-like text
// form: one module per direction, bus and arbiter instances, and the
// receiver port binding of each bus.
func (n *Netlist) WriteStructural(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "// STbus crossbar instantiation %q\n", n.Name)
	fmt.Fprintf(&b, "// %d buses, %d arbiters, %d adapter ports\n\n",
		n.Summary.Buses, n.Summary.Arbiters, n.Summary.Adapters)
	for _, dir := range []struct {
		label string
		net   DirectionNet
	}{{"request", n.Request}, {"response", n.Response}} {
		fmt.Fprintf(&b, "module %s_%s_crossbar; // %s, %s arbitration\n",
			sanitize(n.Name), dir.label, dir.net.Kind, dir.net.Arbitration)
		for _, bus := range dir.net.Buses {
			fmt.Fprintf(&b, "  stbus_node %s (.arbiter(%s));\n", bus.Name, bus.Arbiter)
			for s := 0; s < dir.net.NumSenders; s++ {
				fmt.Fprintf(&b, "    connect %s.initiator_port[%d] <- sender%d;\n", bus.Name, s, s)
			}
			for _, r := range bus.Receivers {
				fmt.Fprintf(&b, "    connect %s.target_port -> receiver%d; // via adapter\n", bus.Name, r)
			}
		}
		fmt.Fprintf(&b, "endmodule\n\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "xbar"
	}
	return b.String()
}

// Configs reconstructs the interconnect configurations from a netlist,
// so a serialized design can be re-instantiated for validation. The
// arbitration policy and kind are restored from their string forms;
// unknown strings fall back to round-robin / partial.
func (n *Netlist) Configs() (req, resp *Config, err error) {
	req, err = n.Request.config()
	if err != nil {
		return nil, nil, fmt.Errorf("stbus: request netlist: %w", err)
	}
	resp, err = n.Response.config()
	if err != nil {
		return nil, nil, fmt.Errorf("stbus: response netlist: %w", err)
	}
	return req, resp, nil
}

func (d *DirectionNet) config() (*Config, error) {
	numReceivers := d.NumReceivers
	if numReceivers <= 0 || d.NumSenders <= 0 || len(d.Buses) == 0 {
		return nil, errors.New("empty direction")
	}
	// Sanity-bound the declared shape before allocating per-receiver
	// state: the counts come from an untrusted JSON document, and the
	// STbus crossbar tops out at 32 ports anyway.
	const maxPorts = 1 << 20
	if numReceivers > maxPorts || d.NumSenders > maxPorts {
		return nil, fmt.Errorf("implausible port counts (%d receivers, %d senders)", numReceivers, d.NumSenders)
	}
	for _, bus := range d.Buses {
		for _, r := range bus.Receivers {
			if r < 0 || r >= numReceivers {
				return nil, fmt.Errorf("receiver %d outside [0,%d)", r, numReceivers)
			}
		}
	}
	busOf := make([]int, numReceivers)
	for i := range busOf {
		busOf[i] = -1
	}
	for b, bus := range d.Buses {
		for _, r := range bus.Receivers {
			if busOf[r] != -1 {
				return nil, fmt.Errorf("receiver %d attached twice", r)
			}
			busOf[r] = b
		}
	}
	for r, b := range busOf {
		if b == -1 {
			return nil, fmt.Errorf("receiver %d unattached", r)
		}
	}
	cfg := &Config{
		NumSenders:   d.NumSenders,
		NumReceivers: numReceivers,
		NumBuses:     len(d.Buses),
		BusOf:        busOf,
	}
	switch d.Kind {
	case "shared":
		cfg.Kind = SharedBus
	case "full":
		cfg.Kind = FullCrossbar
	default:
		cfg.Kind = PartialCrossbar
	}
	if d.Arbitration == "fixed-priority" {
		cfg.Arbitration = FixedPriority
	}
	return cfg, cfg.Validate()
}

package stbus

import "testing"

func TestSharedConfig(t *testing.T) {
	c := Shared(4, 6)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumBuses != 1 {
		t.Errorf("NumBuses = %d, want 1", c.NumBuses)
	}
	for r, b := range c.BusOf {
		if b != 0 {
			t.Errorf("receiver %d on bus %d, want 0", r, b)
		}
	}
	if c.Kind != SharedBus {
		t.Errorf("Kind = %v", c.Kind)
	}
}

func TestFullConfig(t *testing.T) {
	c := Full(3, 5)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumBuses != 5 {
		t.Errorf("NumBuses = %d, want 5", c.NumBuses)
	}
	for r, b := range c.BusOf {
		if b != r {
			t.Errorf("receiver %d on bus %d, want %d", r, b, r)
		}
	}
}

func TestPartialConfig(t *testing.T) {
	c := Partial(2, []int{0, 1, 0, 2, 1})
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumBuses != 3 {
		t.Errorf("NumBuses = %d, want 3", c.NumBuses)
	}
	if c.NumReceivers != 5 {
		t.Errorf("NumReceivers = %d, want 5", c.NumReceivers)
	}
}

func TestPartialCopiesBinding(t *testing.T) {
	busOf := []int{0, 1}
	c := Partial(2, busOf)
	busOf[0] = 1
	if c.BusOf[0] != 0 {
		t.Error("Partial aliases caller slice")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no senders", Config{NumSenders: 0, NumReceivers: 1, NumBuses: 1, BusOf: []int{0}}},
		{"no receivers", Config{NumSenders: 1, NumReceivers: 0, NumBuses: 1, BusOf: []int{}}},
		{"no buses", Config{NumSenders: 1, NumReceivers: 1, NumBuses: 0, BusOf: []int{0}}},
		{"busof length", Config{NumSenders: 1, NumReceivers: 2, NumBuses: 1, BusOf: []int{0}}},
		{"bus out of range", Config{NumSenders: 1, NumReceivers: 1, NumBuses: 1, BusOf: []int{1}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.cfg.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
}

func TestComponentCount(t *testing.T) {
	c := Full(9, 12)
	comps := c.ComponentCount()
	if comps.Buses != 12 || comps.Arbiters != 12 {
		t.Errorf("Buses/Arbiters = %d/%d, want 12/12", comps.Buses, comps.Arbiters)
	}
	if comps.Adapters != 9*12+12 {
		t.Errorf("Adapters = %d, want %d", comps.Adapters, 9*12+12)
	}
	if comps.Total() != comps.Buses+comps.Arbiters+comps.Adapters {
		t.Error("Total mismatch")
	}
}

func TestPairComponentsMat2FullVsShared(t *testing.T) {
	// The paper's Table 1 size ratio normalizes by buses: a full
	// crossbar for Mat2 (9 initiators, 12 targets) has 12+9=21 buses
	// against the shared configuration's 2, giving the paper's 10.5×.
	full := PairComponents(Full(9, 12), Full(12, 9))
	shared := PairComponents(Shared(9, 12), Shared(12, 9))
	if full.Buses != 21 {
		t.Errorf("full buses = %d, want 21", full.Buses)
	}
	if shared.Buses != 2 {
		t.Errorf("shared buses = %d, want 2", shared.Buses)
	}
	if ratio := float64(full.Buses) / float64(shared.Buses); ratio != 10.5 {
		t.Errorf("size ratio = %f, want 10.5", ratio)
	}
}

func TestKindPolicyStrings(t *testing.T) {
	if SharedBus.String() != "shared" || PartialCrossbar.String() != "partial" || FullCrossbar.String() != "full" {
		t.Error("Kind.String mismatch")
	}
	if RoundRobin.String() != "round-robin" || FixedPriority.String() != "fixed-priority" {
		t.Error("Policy.String mismatch")
	}
}

package stbus

import (
	"container/heap"
	"testing"

	"repro/internal/trace"
)

// testClock is a minimal deterministic scheduler for fabric tests.
type testClock struct {
	now int64
	pq  clockHeap
	seq int64
}

type clockEvent struct {
	cycle, seq int64
	fn         func()
}

type clockHeap []clockEvent

func (h clockHeap) Len() int { return len(h) }
func (h clockHeap) Less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}
func (h clockHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *clockHeap) Push(x any)   { *h = append(*h, x.(clockEvent)) }
func (h *clockHeap) Pop() any {
	old := *h
	it := old[len(old)-1]
	*h = old[:len(old)-1]
	return it
}

func (c *testClock) Now() int64 { return c.now }
func (c *testClock) At(cycle int64, fn func()) {
	if cycle < c.now {
		cycle = c.now
	}
	heap.Push(&c.pq, clockEvent{cycle, c.seq, fn})
	c.seq++
}

func (c *testClock) run() {
	for c.pq.Len() > 0 {
		ev := heap.Pop(&c.pq).(clockEvent)
		c.now = ev.cycle
		ev.fn()
	}
}

func TestFabricImmediateGrant(t *testing.T) {
	clk := &testClock{}
	f, err := NewFabric(Full(2, 2), clk)
	if err != nil {
		t.Fatal(err)
	}
	var completed int64 = -1
	f.Submit(&Transfer{Sender: 0, Receiver: 1, Cycles: 5, Done: func(c int64) { completed = c }})
	clk.run()
	if completed != 5 {
		t.Errorf("completed at %d, want 5", completed)
	}
}

func TestFabricSerializesSameBus(t *testing.T) {
	clk := &testClock{}
	f, err := NewFabric(Shared(2, 2), clk)
	if err != nil {
		t.Fatal(err)
	}
	var doneA, doneB int64
	f.Submit(&Transfer{Sender: 0, Receiver: 0, Cycles: 10, Done: func(c int64) { doneA = c }})
	f.Submit(&Transfer{Sender: 1, Receiver: 1, Cycles: 10, Done: func(c int64) { doneB = c }})
	clk.run()
	if doneA != 10 {
		t.Errorf("first transfer completed at %d, want 10", doneA)
	}
	if doneB != 20 {
		t.Errorf("second transfer completed at %d, want 20 (serialized)", doneB)
	}
}

func TestFabricParallelBuses(t *testing.T) {
	clk := &testClock{}
	f, err := NewFabric(Full(2, 2), clk)
	if err != nil {
		t.Fatal(err)
	}
	var doneA, doneB int64
	f.Submit(&Transfer{Sender: 0, Receiver: 0, Cycles: 10, Done: func(c int64) { doneA = c }})
	f.Submit(&Transfer{Sender: 1, Receiver: 1, Cycles: 10, Done: func(c int64) { doneB = c }})
	clk.run()
	if doneA != 10 || doneB != 10 {
		t.Errorf("completions %d,%d, want 10,10 (parallel buses)", doneA, doneB)
	}
}

func TestFabricRoundRobinFairness(t *testing.T) {
	clk := &testClock{}
	cfg := Shared(3, 1)
	cfg.Arbitration = RoundRobin
	f, err := NewFabric(cfg, clk)
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	mk := func(sender int) *Transfer {
		return &Transfer{Sender: sender, Receiver: 0, Cycles: 1, Done: func(int64) { order = append(order, sender) }}
	}
	// Sender 2 submits first and wins the idle bus; 1 and 0 queue.
	// Round-robin after a grant to 2 prefers 0 over 1.
	f.Submit(mk(2))
	f.Submit(mk(1))
	f.Submit(mk(0))
	clk.run()
	want := []int{2, 0, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
}

func TestFabricFixedPriority(t *testing.T) {
	clk := &testClock{}
	cfg := Shared(3, 1)
	cfg.Arbitration = FixedPriority
	f, err := NewFabric(cfg, clk)
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	mk := func(sender int) *Transfer {
		return &Transfer{Sender: sender, Receiver: 0, Cycles: 1, Done: func(int64) { order = append(order, sender) }}
	}
	f.Submit(mk(2)) // wins idle bus
	f.Submit(mk(1))
	f.Submit(mk(0))
	clk.run()
	want := []int{2, 0, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
}

func TestFabricProbeRecordsEvents(t *testing.T) {
	clk := &testClock{}
	f, err := NewFabric(Shared(2, 2), clk)
	if err != nil {
		t.Fatal(err)
	}
	var events []trace.Event
	f.Probe = func(ev trace.Event) { events = append(events, ev) }
	f.Submit(&Transfer{Sender: 0, Receiver: 1, Cycles: 4, Critical: true})
	f.Submit(&Transfer{Sender: 1, Receiver: 0, Cycles: 2})
	clk.run()
	if len(events) != 2 {
		t.Fatalf("probe saw %d events, want 2", len(events))
	}
	if events[0] != (trace.Event{Start: 0, Len: 4, Sender: 0, Receiver: 1, Critical: true}) {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[1] != (trace.Event{Start: 4, Len: 2, Sender: 1, Receiver: 0}) {
		t.Errorf("event 1 = %+v (should start after first completes)", events[1])
	}
}

func TestFabricUtilizationAndGrants(t *testing.T) {
	clk := &testClock{}
	f, err := NewFabric(Partial(1, []int{0, 1}), clk)
	if err != nil {
		t.Fatal(err)
	}
	f.Submit(&Transfer{Sender: 0, Receiver: 0, Cycles: 30})
	f.Submit(&Transfer{Sender: 0, Receiver: 1, Cycles: 10})
	clk.run()
	util := f.BusUtilization(100)
	if util[0] != 0.3 || util[1] != 0.1 {
		t.Errorf("utilization = %v, want [0.3 0.1]", util)
	}
	grants := f.Grants()
	if grants[0] != 1 || grants[1] != 1 {
		t.Errorf("grants = %v, want [1 1]", grants)
	}
	if f.Pending() != 0 {
		t.Errorf("pending = %d, want 0", f.Pending())
	}
}

func TestFabricSubmitPanics(t *testing.T) {
	clk := &testClock{}
	f, _ := NewFabric(Shared(1, 1), clk)
	for name, tr := range map[string]*Transfer{
		"zero cycles":  {Sender: 0, Receiver: 0, Cycles: 0},
		"bad receiver": {Sender: 0, Receiver: 5, Cycles: 1},
		"bad sender":   {Sender: 9, Receiver: 0, Cycles: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f.Submit(tr)
		}()
	}
}

func TestNewFabricRejectsInvalidConfig(t *testing.T) {
	cfg := &Config{NumSenders: 1, NumReceivers: 1, NumBuses: 0}
	if _, err := NewFabric(cfg, &testClock{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestFabricBackToBackGrants(t *testing.T) {
	// Three queued transfers on one bus must occupy contiguous slots.
	clk := &testClock{}
	f, _ := NewFabric(Shared(1, 3), clk)
	var events []trace.Event
	f.Probe = func(ev trace.Event) { events = append(events, ev) }
	for r := 0; r < 3; r++ {
		f.Submit(&Transfer{Sender: 0, Receiver: r, Cycles: 7})
	}
	clk.run()
	for i, ev := range events {
		if ev.Start != int64(i)*7 {
			t.Errorf("event %d starts at %d, want %d", i, ev.Start, i*7)
		}
	}
}

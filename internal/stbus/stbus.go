// Package stbus provides a behavioural model of the STbus interconnect
// in its three instantiation modes — shared bus, partial crossbar and
// full crossbar (paper Section 3.1, Figure 1).
//
// One Fabric models one direction of communication. Following the
// STbus crossbar structure, every sender is connected to every bus of
// the fabric, while each receiver is attached to exactly one bus; a bus
// carries one transfer at a time at one data word per cycle, so
// concurrent transfers whose receivers share a bus serialize under the
// bus arbiter. A complete system instantiates two fabrics: the
// initiator→target crossbar (receivers are the targets) and the
// target→initiator crossbar (receivers are the initiators).
package stbus

import (
	"errors"
	"fmt"
)

// Kind enumerates the STbus instantiation modes.
type Kind int

const (
	// SharedBus places every receiver on one bus.
	SharedBus Kind = iota
	// PartialCrossbar groups receivers onto a reduced set of buses.
	PartialCrossbar
	// FullCrossbar gives every receiver its own bus.
	FullCrossbar
)

func (k Kind) String() string {
	switch k {
	case SharedBus:
		return "shared"
	case PartialCrossbar:
		return "partial"
	case FullCrossbar:
		return "full"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Policy selects the per-bus arbitration discipline.
type Policy int

const (
	// RoundRobin grants pending senders in circular order (the STbus
	// default used throughout the experiments).
	RoundRobin Policy = iota
	// FixedPriority always grants the lowest-numbered sender first.
	FixedPriority
)

func (p Policy) String() string {
	switch p {
	case RoundRobin:
		return "round-robin"
	case FixedPriority:
		return "fixed-priority"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Config describes one direction of the interconnect.
type Config struct {
	Kind         Kind
	NumSenders   int
	NumReceivers int
	// NumBuses is the number of parallel buses in the crossbar.
	NumBuses int
	// BusOf[r] gives the bus index receiver r is attached to.
	BusOf []int
	// Arbitration is the per-bus arbitration policy.
	Arbitration Policy
	// AdapterDelay models the frequency/data-width adapters between
	// heterogeneous cores and the bus: every transfer holds its bus
	// for this many extra cycles while the adapter converts rates.
	// Zero models homogeneous cores (the default).
	AdapterDelay int64
}

// Shared returns a single-bus configuration.
func Shared(numSenders, numReceivers int) *Config {
	busOf := make([]int, numReceivers)
	return &Config{
		Kind:         SharedBus,
		NumSenders:   numSenders,
		NumReceivers: numReceivers,
		NumBuses:     1,
		BusOf:        busOf,
	}
}

// Full returns a configuration with one bus per receiver.
func Full(numSenders, numReceivers int) *Config {
	busOf := make([]int, numReceivers)
	for r := range busOf {
		busOf[r] = r
	}
	return &Config{
		Kind:         FullCrossbar,
		NumSenders:   numSenders,
		NumReceivers: numReceivers,
		NumBuses:     numReceivers,
		BusOf:        busOf,
	}
}

// Partial returns a crossbar with the given receiver→bus binding.
// The bus count is inferred as max(busOf)+1.
func Partial(numSenders int, busOf []int) *Config {
	numBuses := 0
	for _, b := range busOf {
		if b+1 > numBuses {
			numBuses = b + 1
		}
	}
	bound := make([]int, len(busOf))
	copy(bound, busOf)
	return &Config{
		Kind:         PartialCrossbar,
		NumSenders:   numSenders,
		NumReceivers: len(busOf),
		NumBuses:     numBuses,
		BusOf:        bound,
	}
}

// Validate checks structural invariants of the configuration.
func (c *Config) Validate() error {
	if c.NumSenders <= 0 {
		return errors.New("stbus: NumSenders must be positive")
	}
	if c.NumReceivers <= 0 {
		return errors.New("stbus: NumReceivers must be positive")
	}
	if c.NumBuses <= 0 {
		return errors.New("stbus: NumBuses must be positive")
	}
	if len(c.BusOf) != c.NumReceivers {
		return fmt.Errorf("stbus: BusOf has %d entries, want %d", len(c.BusOf), c.NumReceivers)
	}
	for r, b := range c.BusOf {
		if b < 0 || b >= c.NumBuses {
			return fmt.Errorf("stbus: receiver %d bound to bus %d outside [0,%d)", r, b, c.NumBuses)
		}
	}
	if c.AdapterDelay < 0 {
		return errors.New("stbus: AdapterDelay must be non-negative")
	}
	return nil
}

// Components is the interconnect resource inventory used for the
// paper's size comparisons (Table 1's size ratio counts buses; the
// arbiter and adapter counts quantify the "communication components"
// savings the introduction cites).
type Components struct {
	Buses    int
	Arbiters int // one per bus
	Adapters int // one frequency/width adapter per attached core port
}

// Total returns the summed component count.
func (c Components) Total() int { return c.Buses + c.Arbiters + c.Adapters }

// ComponentCount inventories one fabric: each bus has an arbiter, each
// sender has an adapter port onto every bus, and each receiver one
// adapter onto its bus.
func (c *Config) ComponentCount() Components {
	return Components{
		Buses:    c.NumBuses,
		Arbiters: c.NumBuses,
		Adapters: c.NumSenders*c.NumBuses + c.NumReceivers,
	}
}

// PairComponents sums the component inventories of the two directions
// of a complete STbus instantiation.
func PairComponents(req, resp *Config) Components {
	a, b := req.ComponentCount(), resp.ComponentCount()
	return Components{
		Buses:    a.Buses + b.Buses,
		Arbiters: a.Arbiters + b.Arbiters,
		Adapters: a.Adapters + b.Adapters,
	}
}

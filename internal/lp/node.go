package lp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/obs"
)

// Fix pins one variable to an exact value for a node solve.
type Fix struct {
	Var int
	Val float64
}

// NodeSolver solves the family of LP relaxations that a branch-and-
// bound search derives from one base problem: the constraint matrix,
// senses and bounds never change, only a per-node set of variable
// fixings does. It exists to kill the two per-node costs of calling
// SolveBounded in a loop:
//
//   - Allocation: the tableau, basis, price row and solution buffers
//     are owned by the solver and reused across every node.
//   - Cold starts: after a solve, the tableau holds an optimal basis.
//     The next node's fixings are applied as bound shifts on nonbasic
//     columns (or left to a dual-simplex pass when the variable is
//     basic), and feasibility is restored by dual-simplex pivots from
//     the previous basis instead of re-running Phase 1 from scratch.
//
// Warm starts are strictly an optimization: any numerical trouble
// (stalled dual pass, iteration limit) falls back to a cold two-phase
// solve of the same node, and every 64th warm solve is re-anchored
// with a cold solve to bound drift of the incrementally maintained
// tableau. Results are deterministic for a given call sequence.
//
// The returned Solution's X slice is owned by the solver and is only
// valid until the next Solve call; callers keep what they need by
// copying.
type NodeSolver struct {
	p     *Problem
	n     int // structural variables
	m     int // constraint rows
	upper []float64

	// Immutable base image, built once.
	baseRows [][]float64 // m × n structural coefficients (dense)
	baseRHS  []float64
	sense    []Sense
	slackCol []int // per row; -1 for EQ rows
	artCol   []int // per row: every row owns an artificial column
	numCols  int
	artStart int

	// Scratch state reused across solves.
	t       boundedTableau
	costs   []float64 // phase-2 cost row over all columns
	z       []float64
	cb      []float64
	xOut    []float64
	ready   bool // scratch holds a consistent basis to warm-start from
	sinceRe int  // warm solves since the last cold re-anchor
	fixed   []int
	mark    []int
	markVal []float64
	epoch   int

	// Per-dual-pass flip accounting (see dualSimplex).
	flipMark  []int
	flipCnt   []int
	flipEpoch int

	// Interrupt, when set, is polled every few pivots of every simplex
	// pass; returning true makes the in-flight Solve return
	// ErrInterrupted promptly instead of running the pass to completion
	// (a single pass on a large node can take minutes). Callers set it
	// once after construction — typically to a context-cancellation
	// check — and must not change it while a Solve is in flight.
	Interrupt func() bool
	stopped   bool // an interrupt fired during the current Solve

	// Rec, when set, receives batched EvLPPivots flight events (one per
	// lpPivotBatch pivots) so a replay shows where simplex time went
	// without paying an event per pivot. Nil disables emission entirely.
	Rec      *obs.FlightRecorder
	pivotAcc int64 // pivots since the last flight event

	// Stats observe how many node solves took each path.
	warm, cold int64
	dualPivots int64
}

// resyncEvery bounds how many consecutive warm solves may reuse the
// incrementally updated tableau before a cold solve re-anchors it
// against numerical drift.
const resyncEvery = 64

// lpPivotBatch is how many simplex pivots accumulate between EvLPPivots
// flight events; one event per pivot would swamp the journal.
const lpPivotBatch = 4096

// notePivots accumulates n pivots toward the next EvLPPivots event.
func (s *NodeSolver) notePivots(n int64) {
	if s.Rec == nil || n <= 0 {
		return
	}
	s.pivotAcc += n
	if s.pivotAcc >= lpPivotBatch {
		s.Rec.Emit(obs.Event{Kind: obs.EvLPPivots, Val: s.pivotAcc, Who: "lp"})
		s.pivotAcc = 0
	}
}

// NewNodeSolver validates p and precomputes the dense base image the
// per-node tableau is rebuilt from. upper follows SolveBounded: nil
// means unbounded, math.Inf(1) entries are unbounded variables.
func NewNodeSolver(p *Problem, upper []float64) (*NodeSolver, error) {
	if p.NumVars < 0 {
		return nil, errors.New("lp: negative variable count")
	}
	if p.Objective != nil && len(p.Objective) != p.NumVars {
		return nil, fmt.Errorf("lp: objective has %d coefficients, want %d", len(p.Objective), p.NumVars)
	}
	if upper != nil && len(upper) != p.NumVars {
		return nil, fmt.Errorf("lp: upper has %d entries, want %d", len(upper), p.NumVars)
	}
	for _, c := range p.Constraints {
		for _, t := range c.Terms {
			if t.Var < 0 || t.Var >= p.NumVars {
				return nil, fmt.Errorf("lp: constraint references variable %d outside [0,%d)", t.Var, p.NumVars)
			}
		}
	}
	n := p.NumVars
	m := len(p.Constraints)
	s := &NodeSolver{
		p:        p,
		n:        n,
		m:        m,
		upper:    make([]float64, n),
		baseRows: make([][]float64, m),
		baseRHS:  make([]float64, m),
		sense:    make([]Sense, m),
		slackCol: make([]int, m),
		artCol:   make([]int, m),
	}
	for j := 0; j < n; j++ {
		s.upper[j] = math.Inf(1)
	}
	if upper != nil {
		copy(s.upper, upper)
		for j, u := range upper {
			if u < 0 {
				return nil, fmt.Errorf("lp: negative upper bound on variable %d", j)
			}
		}
	}
	// Column layout: structural | slack/surplus (LE and GE rows) |
	// artificial (every row). Giving every row an artificial keeps the
	// column layout identical for every node, whatever sign the fixed
	// variables push a row's effective RHS to.
	col := n
	backing := make([]float64, m*n)
	for i, c := range p.Constraints {
		row := backing[i*n : (i+1)*n]
		for _, term := range c.Terms {
			row[term.Var] += term.Coef
		}
		s.baseRows[i] = row
		s.baseRHS[i] = c.RHS
		s.sense[i] = c.Sense
		if c.Sense == EQ {
			s.slackCol[i] = -1
		} else {
			s.slackCol[i] = col
			col++
		}
	}
	s.artStart = col
	for i := range p.Constraints {
		s.artCol[i] = col
		col++
	}
	s.numCols = col

	// Scratch tableau and buffers.
	t := &s.t
	t.m = m
	t.numCols = col
	t.numArtificial = m
	t.artStart = s.artStart
	// Artificial columns never enter the basis for this solver's whole
	// lifetime, so their tableau entries are dead after construction;
	// capping the row-operation width at artStart removes them from
	// every pivot's arithmetic (an m-wide block — a large constant-factor
	// win, since here every row owns an artificial).
	t.width = s.artStart
	t.rows = make([][]float64, m)
	tb := make([]float64, m*col)
	for i := 0; i < m; i++ {
		t.rows[i] = tb[i*col : (i+1)*col]
	}
	t.xB = make([]float64, m)
	t.basis = make([]int, m)
	t.isBasic = make([]bool, col)
	t.atUpper = make([]bool, col)
	t.upper = make([]float64, col)
	t.noEnter = make([]bool, col)
	t.fixVal = make([]float64, col)

	s.costs = make([]float64, col)
	if p.Objective != nil {
		copy(s.costs[:n], p.Objective)
	} else {
		// A problem with no objective is fully dual-degenerate: every
		// dual-simplex ratio ties at zero and the warm-restart pass has
		// no progress measure, so it wanders (classical cycling on
		// degenerate polytopes). Since any feasible point is acceptable,
		// steer the simplex with a small deterministic perturbation
		// objective instead. Positive costs on bounded-below columns
		// keep phase 2 bounded; reported Solution.Objective still comes
		// from p.Objective, so callers observe a zero objective.
		for j := 0; j < n; j++ {
			h := uint64(j)*0x9e3779b97f4a7c15 + 0x632be59bd9b4e019
			h ^= h >> 29
			s.costs[j] = 1e-3 * (1 + float64(h%4096)/4096)
		}
	}
	s.z = make([]float64, col)
	s.cb = make([]float64, m)
	s.xOut = make([]float64, n)
	s.mark = make([]int, n)
	s.markVal = make([]float64, n)
	s.flipMark = make([]int, col)
	s.flipCnt = make([]int, col)
	return s, nil
}

// Stats reports how many node solves ran warm (dual-simplex restart
// from the previous basis) and cold (full two-phase solve).
func (s *NodeSolver) Stats() (warm, cold int64) { return s.warm, s.cold }

// DualPivots reports the total dual-simplex pivots across all warm
// solves — the per-node work metric the warm start exists to shrink.
func (s *NodeSolver) DualPivots() int64 { return s.dualPivots }

// Solve optimizes the base problem with the given variables pinned.
// Fixing values must lie within the variable's [0, upper] range; for
// the MILP use they are always 0 or 1. The fixes slice is not retained.
//
// The solver warm-starts from the basis of the previous Solve call
// whenever it can and silently falls back to a cold two-phase solve
// otherwise, so callers may pass any fix set in any order.
func (s *NodeSolver) Solve(fixes []Fix) (*Solution, error) {
	for _, fx := range fixes {
		if fx.Var < 0 || fx.Var >= s.n {
			return nil, fmt.Errorf("lp: fix references variable %d outside [0,%d)", fx.Var, s.n)
		}
		if fx.Val < -eps || fx.Val > s.upper[fx.Var]+eps {
			return nil, fmt.Errorf("lp: fix pins variable %d to %v outside [0,%v]", fx.Var, fx.Val, s.upper[fx.Var])
		}
	}
	before := s.t.pivots
	s.t.interrupt = s.Interrupt
	s.stopped = false
	if s.ready && s.sinceRe < resyncEvery {
		if sol, ok := s.solveWarm(fixes); ok {
			s.warm++
			s.sinceRe++
			sol.Iterations = s.t.pivots - before
			s.notePivots(sol.Iterations)
			return sol, nil
		}
		if s.stopped {
			// An interrupted warm pass must not fall back to a cold solve
			// — the caller asked to stop, not to try harder. ready is
			// already false, so the next Solve re-anchors cold.
			return nil, ErrInterrupted
		}
	}
	s.cold++
	s.sinceRe = 0
	sol, err := s.solveCold(fixes)
	if sol != nil {
		sol.Iterations = s.t.pivots - before
		s.notePivots(sol.Iterations)
	}
	return sol, err
}

// Pivots reports the total simplex basis changes (primal and dual)
// performed over the solver's lifetime.
func (s *NodeSolver) Pivots() int64 { return s.t.pivots }

// --- warm path ---

// solveWarm transforms the scratch tableau from the previous node's
// fix set to the requested one, restores primal feasibility with dual
// simplex, and (when there is an objective) re-optimizes with primal
// phase-2 pivots. ok=false means the caller must fall back to a cold
// solve; the scratch state is then rebuilt from the base image, so no
// consistency is lost.
func (s *NodeSolver) solveWarm(fixes []Fix) (*Solution, bool) {
	t := &s.t
	// Diff the live fix set against the requested one.
	s.epoch++
	for _, fx := range fixes {
		s.mark[fx.Var] = s.epoch
		s.markVal[fx.Var] = fx.Val
	}
	keep := s.fixed[:0]
	for _, v := range s.fixed {
		if s.mark[v] != s.epoch {
			// Unfix: the column keeps its current value (fixVal when
			// nonbasic — the atUpper flag of a fixed column is not
			// trustworthy, pivots set it from collapsed bounds), so the
			// point stays consistent; only its bounds relax.
			if !t.isBasic[v] {
				t.atUpper[v] = t.fixVal[v] == t.upper[v] && t.fixVal[v] != 0
			}
			t.fixVal[v] = math.NaN()
			t.noEnter[v] = false
			continue
		}
		keep = append(keep, v)
		if want := s.markVal[v]; t.fixVal[v] != want {
			s.shiftFixed(v, want)
		}
	}
	s.fixed = keep
	for _, fx := range fixes {
		if t.isFixed(fx.Var) {
			continue
		}
		t.noEnter[fx.Var] = true
		s.shiftFixed(fx.Var, fx.Val)
		s.fixed = append(s.fixed, fx.Var)
	}

	// Restore primal feasibility from the shifted basis.
	s.refreshZ()
	switch s.dualSimplex() {
	case dualInfeasible:
		return &Solution{Status: Infeasible}, true
	case dualStalled:
		s.ready = false
		return nil, false
	case dualInterrupted:
		s.ready = false
		s.stopped = true
		return nil, false
	}
	// Dual pivots restored feasibility; primal phase-2 pivots from this
	// (feasible) basis restore optimality — which also keeps the basis
	// dual feasible for the NEXT node's dual pass. Phase 1 is skipped
	// entirely; that is the point of the warm start.
	if err := t.run(s.costs); err != nil {
		if errors.Is(err, errUnbounded) {
			return &Solution{Status: Unbounded}, true
		}
		if errors.Is(err, ErrInterrupted) {
			s.stopped = true
		}
		s.ready = false
		return nil, false
	}
	return s.extract(), true
}

// shiftFixed pins column v to val. Nonbasic columns move in a single
// bound shift (xB absorbs the move through the current B⁻¹A column);
// basic columns are only re-pinned — the next dual-simplex pass prices
// them out toward the pinned value.
func (s *NodeSolver) shiftFixed(v int, val float64) {
	t := &s.t
	if !t.isBasic[v] {
		cur := t.nbValue(v)
		if t.isFixed(v) {
			cur = t.fixVal[v]
		}
		if d := val - cur; d != 0 {
			col := v
			for i := 0; i < t.m; i++ {
				if y := t.rows[i][col]; y != 0 {
					t.xB[i] -= y * d
				}
			}
		}
		t.atUpper[v] = val == t.upper[v] && val != 0
	}
	t.fixVal[v] = val
}

type dualStatus int

const (
	dualFeasible dualStatus = iota
	dualInfeasible
	dualStalled
	dualInterrupted
)

// dualSimplex pivots until every basic variable is back inside its
// effective bounds. Leaving row: largest violation (ties: smallest row
// index). Entering column: smallest |z_j|/|a_lj| among sign-admissible
// nonbasic columns (ties: smallest column index), which preserves dual
// feasibility when the starting basis is dual feasible — in particular
// always for the zero objective of the feasibility MILPs. A row with
// no admissible column proves the node infeasible. The pass gives up
// (dualStalled) after a budget proportional to the tableau size; the
// caller then re-solves cold, so correctness never depends on it.
func (s *NodeSolver) dualSimplex() dualStatus {
	t := &s.t
	const feasTol = 1e-7
	maxIters := 2 * (t.m + t.numCols + 100)
	if debugDualBudget > 0 {
		maxIters = debugDualBudget
	}
	// Bound flips carry no progress measure: a flip changes neither the
	// basis nor the dual objective, so flips alone can ping-pong between
	// rows forever (pivots cannot — each strictly improves the perturbed
	// dual objective). Each column therefore gets at most two flips per
	// pass; beyond that it is pass-locally retired from entering, which
	// forces real pivots. The retirement is tracked with the solver's
	// epoch trick so no per-pass clearing is needed.
	s.flipEpoch++
	barredByFlips := false
	for iter := 0; iter < maxIters; iter++ {
		if t.interrupted(iter) {
			return dualInterrupted
		}
		// Most-violated basic variable.
		l, worst, above := -1, feasTol, false
		for i := 0; i < t.m; i++ {
			b := t.basis[i]
			if d := t.loCol(b) - t.xB[i]; d > worst {
				l, worst, above = i, d, false
			}
			if d := t.xB[i] - t.upCol(b); d > worst {
				l, worst, above = i, d, true
			}
		}
		if l == -1 {
			return dualFeasible
		}
		target := t.loCol(t.basis[l])
		if above {
			target = t.upCol(t.basis[l])
		}
		need := t.xB[l] - target
		row := t.rows[l]
		entering := -1
		bestRatio := math.Inf(1)
		bestMag := 0.0
		for j := 0; j < t.width; j++ {
			if t.isBasic[j] || t.barred(j) || t.isFixed(j) {
				continue
			}
			a := row[j]
			if a > -eps && a < eps {
				continue
			}
			// Below its lower bound the basic variable must rise, above
			// its upper bound it must fall; which nonbasic moves help
			// depends on their own bound side.
			var admissible bool
			if !above {
				admissible = (!t.atUpper[j] && a < 0) || (t.atUpper[j] && a > 0)
			} else {
				admissible = (!t.atUpper[j] && a > 0) || (t.atUpper[j] && a < 0)
			}
			if !admissible {
				continue
			}
			if s.flipMark[j] == s.flipEpoch && s.flipCnt[j] >= 2 {
				// Flip-retired this pass. An admissible column was skipped,
				// so an empty scan below is a stall, not an infeasibility
				// certificate.
				barredByFlips = true
				continue
			}
			mag := math.Abs(a)
			ratio := math.Abs(s.z[j]) / mag
			// Strictly smallest reduced-cost ratio: the textbook dual
			// ratio test, which preserves dual feasibility of the basis —
			// so the primal clean-up pass after this one has (near)
			// nothing left to do. The cost perturbation installed by
			// NewNodeSolver for objective-free problems keeps the ratios
			// distinct, so ties are rare; break them toward the largest
			// pivot magnitude for numerical stability.
			better := ratio < bestRatio-eps
			if !better && ratio < bestRatio+eps {
				better = mag > bestMag
			}
			if better {
				bestRatio = ratio
				bestMag = mag
				entering = j
			}
		}
		if entering == -1 {
			if barredByFlips {
				return dualStalled
			}
			return dualInfeasible
		}
		delta := need / row[entering]
		// Bound flip: the admissibility rules make delta move the
		// entering column into its range, but if the full pivot would
		// overshoot its opposite bound, move it bound-to-bound instead —
		// an O(m) update with no basis change that still shrinks the
		// violation. Without this, every overshoot manufactures a fresh
		// violation and the pass zigzags.
		if rng := t.upCol(entering) - t.loCol(entering); !math.IsInf(rng, 1) && math.Abs(delta) > rng+eps {
			d := rng
			if delta < 0 {
				d = -rng
			}
			if d != 0 {
				for i := 0; i < t.m; i++ {
					if y := t.rows[i][entering]; y != 0 {
						t.xB[i] -= y * d
					}
				}
			}
			t.atUpper[entering] = !t.atUpper[entering]
			if s.flipMark[entering] != s.flipEpoch {
				s.flipMark[entering] = s.flipEpoch
				s.flipCnt[entering] = 0
			}
			s.flipCnt[entering]++
			continue
		}
		enterVal := t.nbValue(entering) + delta
		for i := 0; i < t.m; i++ {
			if i == l {
				continue
			}
			if y := t.rows[i][entering]; y != 0 {
				t.xB[i] -= y * delta
			}
		}
		leavingCol := t.basis[l]
		s.dualPivots++
		t.pivot(l, entering, enterVal)
		if t.isFixed(leavingCol) {
			t.atUpper[leavingCol] = t.fixVal[leavingCol] == t.upper[leavingCol] && t.fixVal[leavingCol] != 0
		} else {
			t.atUpper[leavingCol] = above
		}
		// Maintain the price row across the pivot.
		if f := s.z[entering]; f != 0 {
			nrow := t.rows[l]
			for j := 0; j < t.width; j++ {
				s.z[j] -= f * nrow[j]
			}
			s.z[entering] = 0
		}
	}
	return dualStalled
}

// refreshZ recomputes the reduced-cost row for the phase-2 costs.
func (s *NodeSolver) refreshZ() {
	t := &s.t
	cb := s.cb
	any := false
	for i, bv := range t.basis {
		cb[i] = s.costs[bv]
		if cb[i] != 0 {
			any = true
		}
	}
	for j := 0; j < t.width; j++ {
		v := s.costs[j]
		if any {
			for i := 0; i < t.m; i++ {
				if cb[i] != 0 {
					v -= cb[i] * t.rows[i][j]
				}
			}
		}
		s.z[j] = v
	}
}

// --- cold path ---

// solveCold rebuilds the tableau from the base image with the fixings
// folded in and runs the ordinary two-phase bounded simplex.
func (s *NodeSolver) solveCold(fixes []Fix) (*Solution, error) {
	t := &s.t
	s.ready = false

	// Reset column state.
	for j := 0; j < t.numCols; j++ {
		t.isBasic[j] = false
		t.atUpper[j] = false
		t.noEnter[j] = false
		t.fixVal[j] = math.NaN()
		t.upper[j] = math.Inf(1)
	}
	copy(t.upper, s.upper)
	for j := s.artStart; j < t.numCols; j++ {
		t.noEnter[j] = true // artificials may leave but never re-enter
	}
	s.fixed = s.fixed[:0]
	for _, fx := range fixes {
		t.fixVal[fx.Var] = fx.Val
		t.noEnter[fx.Var] = true
		t.atUpper[fx.Var] = fx.Val == t.upper[fx.Var] && fx.Val != 0
		s.fixed = append(s.fixed, fx.Var)
	}

	// Rebuild rows. Each row is normalized so the initial basic column
	// (slack where possible, artificial otherwise) has coefficient +1
	// and a non-negative starting value, accounting for the fixed
	// variables' contributions.
	anyArt := false
	for i := 0; i < t.m; i++ {
		row := t.rows[i]
		copy(row[:s.n], s.baseRows[i])
		for j := s.n; j < t.width; j++ {
			row[j] = 0
		}
		eff := s.baseRHS[i]
		for _, fx := range fixes {
			if fx.Val != 0 {
				eff -= row[fx.Var] * fx.Val
			}
		}
		sense := s.sense[i]
		if eff < 0 {
			for j := 0; j < s.n; j++ {
				row[j] = -row[j]
			}
			eff = -eff
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		if sc := s.slackCol[i]; sc >= 0 {
			if sense == LE {
				row[sc] = 1
			} else {
				row[sc] = -1
			}
		}
		// The artificial's unit coefficient is implied: its column lies
		// beyond t.width and is never read, so only basis/xB record it.
		if sense == LE {
			t.basis[i] = s.slackCol[i]
		} else {
			t.basis[i] = s.artCol[i]
			anyArt = true
		}
		t.xB[i] = eff
		t.isBasic[t.basis[i]] = true
	}

	// Phase 1: price out the artificial columns.
	if anyArt {
		if err := t.run(t.phase1Costs()); err != nil {
			if errors.Is(err, errUnbounded) {
				// Phase 1 is bounded below by zero; treat as numerical
				// trouble rather than misreporting the problem.
				return nil, ErrIterationLimit
			}
			return nil, err
		}
		if t.phase1Value() > 1e-7 {
			// Infeasible node. Do NOT pinArtificials here: its degenerate
			// pivots assume artificial levels ≈ 0, and pivoting out a
			// positive-level artificial would desynchronize xB from the
			// tableau. Clamping the artificial bounds to zero keeps the
			// state point-consistent; the residual basic artificials are
			// then plain bound violations, exactly what the next node's
			// warm dual-simplex pass knows how to repair (or turn into an
			// infeasibility certificate).
			for j := s.artStart; j < t.numCols; j++ {
				t.upper[j] = 0
				t.atUpper[j] = false
			}
			s.ready = true
			s.refreshZ()
			return &Solution{Status: Infeasible}, nil
		}
		t.pinArtificials()
	} else {
		for j := s.artStart; j < t.numCols; j++ {
			t.upper[j] = 0
		}
	}

	// Phase 2.
	if err := t.run(s.costs); err != nil {
		if errors.Is(err, errUnbounded) {
			return &Solution{Status: Unbounded}, nil
		}
		return nil, err
	}
	s.ready = true
	s.refreshZ()
	return s.extract(), nil
}

// extract reads the current tableau into the reusable Solution.
func (s *NodeSolver) extract() *Solution {
	t := &s.t
	x := s.xOut
	for j := 0; j < s.n; j++ {
		switch {
		case t.isFixed(j) && !t.isBasic[j]:
			x[j] = t.fixVal[j]
		case !t.isBasic[j] && t.atUpper[j]:
			x[j] = t.upper[j]
		default:
			x[j] = 0
		}
	}
	for i, bv := range t.basis {
		if bv < s.n {
			x[bv] = t.xB[i]
		}
	}
	var obj float64
	if s.p.Objective != nil {
		for j := 0; j < s.n; j++ {
			obj += s.p.Objective[j] * x[j]
		}
	}
	return &Solution{Status: Optimal, X: x, Objective: obj}
}

package lp

import (
	"math/rand"
	"testing"
)

// TestSnapshotRestoreReplaysExactly pins the Snapshot/Restore contract:
// after restoring, replaying the same fix sequence reproduces the exact
// same solutions — bit-identical X vectors, not merely equal objectives
// — because the solver warm-starts from the identical basis.
func TestSnapshotRestoreReplaysExactly(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		p, upper := randomBinaryProblem(rng)
		ns, err := NewNodeSolver(p, upper)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Arrive at some state via a couple of solves.
		warmup := [][]Fix{nil, {{Var: 0, Val: 1}}}
		for _, fx := range warmup {
			if _, err := ns.Solve(fx); err != nil {
				t.Fatalf("trial %d warmup: %v", trial, err)
			}
		}
		snap := ns.Snapshot()

		// Reference continuation from the snapshot point.
		cont := make([][]Fix, 0, 4)
		for step := 0; step < 4; step++ {
			var fixes []Fix
			seen := map[int]bool{}
			for k := 0; k <= rng.Intn(3); k++ {
				v := rng.Intn(p.NumVars)
				if !seen[v] {
					seen[v] = true
					fixes = append(fixes, Fix{Var: v, Val: float64(rng.Intn(2))})
				}
			}
			cont = append(cont, fixes)
		}
		type outcome struct {
			status Status
			obj    float64
			x      []float64
		}
		run := func() []outcome {
			outs := make([]outcome, 0, len(cont))
			for _, fixes := range cont {
				sol, err := ns.Solve(fixes)
				if err != nil {
					t.Fatalf("trial %d continuation: %v", trial, err)
				}
				o := outcome{status: sol.Status, obj: sol.Objective}
				if sol.X != nil {
					o.x = append([]float64(nil), sol.X...)
				}
				outs = append(outs, o)
			}
			return outs
		}
		want := run()

		// Wander somewhere unrelated, then restore and replay.
		for step := 0; step < 3; step++ {
			v := rng.Intn(p.NumVars)
			if _, err := ns.Solve([]Fix{{Var: v, Val: float64(rng.Intn(2))}}); err != nil {
				t.Fatalf("trial %d wander: %v", trial, err)
			}
		}
		ns.Restore(snap)
		got := run()

		for i := range want {
			if got[i].status != want[i].status || got[i].obj != want[i].obj {
				t.Fatalf("trial %d step %d: (%v, %v) after restore, want (%v, %v)",
					trial, i, got[i].status, got[i].obj, want[i].status, want[i].obj)
			}
			for j := range want[i].x {
				if got[i].x[j] != want[i].x[j] {
					t.Fatalf("trial %d step %d: x[%d]=%v after restore, want %v",
						trial, i, j, got[i].x[j], want[i].x[j])
				}
			}
		}

		// The snapshot is reusable: restore again and check the first
		// continuation step once more.
		ns.Restore(snap)
		sol, err := ns.Solve(cont[0])
		if err != nil {
			t.Fatal(err)
		}
		if sol.Status != want[0].status {
			t.Fatalf("trial %d: second restore diverged", trial)
		}
	}
}

package lp

import (
	"errors"
	"fmt"
	"math"
)

// SolveBounded solves
//
//	minimize    c·x
//	subject to  a_r·x {≤,≥,=} b_r
//	            0 ≤ x_j ≤ upper[j]
//
// with the bounded-variable simplex method: upper bounds are handled
// implicitly by the pivoting rules instead of as explicit constraint
// rows, which keeps the tableau at the structural constraint count.
// This is the LP engine the MILP branch-and-bound uses — binaries get
// upper bound 1 without inflating the basis. Pass math.Inf(1) for
// unbounded variables; upper == nil means all variables unbounded.
func SolveBounded(p *Problem, upper []float64) (*Solution, error) {
	if p.NumVars < 0 {
		return nil, errors.New("lp: negative variable count")
	}
	if p.Objective != nil && len(p.Objective) != p.NumVars {
		return nil, fmt.Errorf("lp: objective has %d coefficients, want %d", len(p.Objective), p.NumVars)
	}
	if upper != nil && len(upper) != p.NumVars {
		return nil, fmt.Errorf("lp: upper has %d entries, want %d", len(upper), p.NumVars)
	}
	for _, c := range p.Constraints {
		for _, t := range c.Terms {
			if t.Var < 0 || t.Var >= p.NumVars {
				return nil, fmt.Errorf("lp: constraint references variable %d outside [0,%d)", t.Var, p.NumVars)
			}
		}
	}
	if upper != nil {
		for j, u := range upper {
			if u < 0 {
				return nil, fmt.Errorf("lp: negative upper bound on variable %d", j)
			}
		}
	}

	t := newBoundedTableau(p, upper)
	// Phase 1: minimize the artificial sum.
	if t.numArtificial > 0 {
		if err := t.run(t.phase1Costs()); err != nil {
			return nil, err
		}
		if t.phase1Value() > 1e-7 {
			return &Solution{Status: Infeasible, Iterations: t.pivots}, nil
		}
		t.pinArtificials()
	}
	costs := make([]float64, t.numCols)
	for j := 0; j < p.NumVars && p.Objective != nil; j++ {
		costs[j] = p.Objective[j]
	}
	if err := t.run(costs); err != nil {
		if errors.Is(err, errUnbounded) {
			return &Solution{Status: Unbounded, Iterations: t.pivots}, nil
		}
		return nil, err
	}
	x := make([]float64, p.NumVars)
	vals := t.values()
	copy(x, vals[:p.NumVars])
	var obj float64
	for j := 0; j < p.NumVars && p.Objective != nil; j++ {
		obj += p.Objective[j] * x[j]
	}
	return &Solution{Status: Optimal, X: x, Objective: obj, Iterations: t.pivots}, nil
}

// boundedTableau is the bounded-variable simplex working state.
// rows holds B⁻¹A (no RHS column); basic values are carried in xB.
// Nonbasic variables sit at 0 (their lower bound) or at upper[j].
//
// The two optional overlays (nil in the plain SolveBounded path) exist
// for the NodeSolver: noEnter marks columns that may never be chosen as
// an entering column (artificial variables and branch-fixed binaries),
// and fixVal pins a column to an exact value — its effective bounds
// collapse to [fixVal, fixVal] — without rewriting the constraint rows.
type boundedTableau struct {
	m, numCols    int
	numArtificial int
	artStart      int
	// width is the number of leading columns that row operations keep
	// current; columns in [width, numCols) are write-once and never read
	// again. SolveBounded uses the full width. The NodeSolver sets width
	// to artStart: its artificial columns are barred from entering for
	// the solver's whole lifetime, so their tableau entries are dead —
	// only their basis membership and xB values matter — and skipping
	// them removes an m-sized block from every pivot's row arithmetic.
	width   int
	rows    [][]float64
	xB      []float64
	basis   []int
	isBasic []bool
	atUpper []bool // for nonbasic columns
	upper   []float64
	noEnter []bool    // columns barred from entering the basis
	fixVal  []float64 // NaN = free; otherwise the pinned value
	pivots  int64     // basis changes performed over the tableau's lifetime
	// interrupt, when non-nil, is polled every few simplex iterations;
	// returning true aborts the pass with ErrInterrupted. A single LP on
	// a large node can run for minutes, so without a pivot-level poll a
	// canceled caller (a losing portfolio contestant, say) would stay
	// wedged until the pass finished on its own.
	interrupt func() bool
}

// interruptCheckMask throttles the interrupt poll to every 64 simplex
// iterations: each iteration already costs O(m·width) row arithmetic,
// so the poll is noise, but checking every iteration would still put a
// branch + indirect call in the hottest loop for nothing.
const interruptCheckMask = 63

func (t *boundedTableau) interrupted(iter int) bool {
	return iter&interruptCheckMask == interruptCheckMask && t.interrupt != nil && t.interrupt()
}

// isFixed reports whether column j is pinned to an exact value.
func (t *boundedTableau) isFixed(j int) bool {
	return t.fixVal != nil && !math.IsNaN(t.fixVal[j])
}

// loCol / upCol are the effective bounds of column j: [0, upper[j]]
// normally, collapsed to the pinned value for fixed columns.
func (t *boundedTableau) loCol(j int) float64 {
	if t.isFixed(j) {
		return t.fixVal[j]
	}
	return 0
}

func (t *boundedTableau) upCol(j int) float64 {
	if t.isFixed(j) {
		return t.fixVal[j]
	}
	return t.upper[j]
}

// nbValue is the value a nonbasic column currently sits at.
func (t *boundedTableau) nbValue(j int) float64 {
	if t.atUpper[j] {
		return t.upper[j]
	}
	return 0
}

func (t *boundedTableau) barred(j int) bool {
	return t.noEnter != nil && t.noEnter[j]
}

func newBoundedTableau(p *Problem, structUpper []float64) *boundedTableau {
	m := len(p.Constraints)
	numSlack, numArt := 0, 0
	for _, c := range p.Constraints {
		sense := c.Sense
		if c.RHS < 0 {
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		switch sense {
		case LE:
			numSlack++
		case GE:
			numSlack++
			numArt++
		case EQ:
			numArt++
		}
	}
	numCols := p.NumVars + numSlack + numArt
	t := &boundedTableau{
		m:             m,
		numCols:       numCols,
		width:         numCols,
		numArtificial: numArt,
		artStart:      p.NumVars + numSlack,
		rows:          make([][]float64, m),
		xB:            make([]float64, m),
		basis:         make([]int, m),
		isBasic:       make([]bool, numCols),
		atUpper:       make([]bool, numCols),
		upper:         make([]float64, numCols),
	}
	for j := 0; j < numCols; j++ {
		t.upper[j] = math.Inf(1)
	}
	if structUpper != nil {
		copy(t.upper, structUpper)
	}
	slackCol := p.NumVars
	artCol := t.artStart
	for i, c := range p.Constraints {
		row := make([]float64, numCols)
		sign := 1.0
		sense := c.Sense
		if c.RHS < 0 {
			sign = -1
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		for _, term := range c.Terms {
			row[term.Var] += sign * term.Coef
		}
		rhs := sign * c.RHS
		switch sense {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
		t.rows[i] = row
		t.xB[i] = rhs // all structural nonbasics start at 0
	}
	for _, bv := range t.basis {
		t.isBasic[bv] = true
	}
	return t
}

func (t *boundedTableau) phase1Costs() []float64 {
	costs := make([]float64, t.numCols)
	for j := t.artStart; j < t.numCols; j++ {
		costs[j] = 1
	}
	return costs
}

func (t *boundedTableau) phase1Value() float64 {
	var v float64
	for i, bv := range t.basis {
		if bv >= t.artStart {
			v += t.xB[i]
		}
	}
	return v
}

// pinArtificials freezes artificial variables at zero after phase 1:
// nonbasic artificials get upper bound 0; basic ones (at level 0 after
// a feasible phase 1) are pivoted out where possible.
func (t *boundedTableau) pinArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		// Degenerate pivot: swap in any nonbasic structural/slack
		// column; the entering variable keeps its current bound value
		// (the artificial leaves at level ≈ 0, so nothing moves).
		for j := 0; j < t.artStart; j++ {
			if !t.isBasic[j] && !t.barred(j) && math.Abs(t.rows[i][j]) > eps {
				val := 0.0
				if t.atUpper[j] {
					val = t.upper[j]
				}
				t.pivot(i, j, val)
				break
			}
		}
	}
	// Freeze every artificial at zero — including any still basic in a
	// redundant row, which the ratio test then holds at level 0.
	for j := t.artStart; j < t.numCols; j++ {
		t.upper[j] = 0
		t.atUpper[j] = false
	}
}

// values returns the full variable vector.
func (t *boundedTableau) values() []float64 {
	x := make([]float64, t.numCols)
	for j := 0; j < t.numCols; j++ {
		if !t.isBasic[j] && t.atUpper[j] {
			x[j] = t.upper[j]
		}
	}
	for i, bv := range t.basis {
		x[bv] = t.xB[i]
	}
	return x
}

// run iterates bounded-variable pivots to optimality for the costs.
func (t *boundedTableau) run(costs []float64) error {
	maxIters := 1000 * (t.m + t.numCols + 10)
	blandAfter := 20 * (t.m + t.numCols + 10)
	if debugIterBudget > 0 {
		maxIters = debugIterBudget
	}
	z := make([]float64, t.numCols)
	refresh := func() {
		// z_j = c_j − c_B·B⁻¹A_j.
		cb := make([]float64, t.m)
		any := false
		for i, bv := range t.basis {
			cb[i] = costs[bv]
			if cb[i] != 0 {
				any = true
			}
		}
		for j := 0; j < t.width; j++ {
			v := costs[j]
			if any {
				for i := 0; i < t.m; i++ {
					if cb[i] != 0 {
						v -= cb[i] * t.rows[i][j]
					}
				}
			}
			z[j] = v
		}
	}
	refresh()
	const refreshEvery = 256

	// eligible reports whether nonbasic column j can improve the
	// objective, and the movement direction (+1 from lower, −1 from
	// upper).
	eligible := func(j int) (float64, bool) {
		if t.isBasic[j] || t.barred(j) {
			return 0, false
		}
		if !t.atUpper[j] && z[j] < -eps {
			return 1, true
		}
		if t.atUpper[j] && z[j] > eps {
			return -1, true
		}
		return 0, false
	}

	for iter := 0; iter < maxIters; iter++ {
		if t.interrupted(iter) {
			return ErrInterrupted
		}
		if iter%refreshEvery == refreshEvery-1 {
			refresh()
		}
		entering, dir := -1, 0.0
		if iter < blandAfter {
			best := eps
			for j := 0; j < t.width; j++ {
				if d, ok := eligible(j); ok && math.Abs(z[j]) > best {
					best = math.Abs(z[j])
					entering, dir = j, d
				}
			}
		} else {
			for j := 0; j < t.width; j++ {
				if d, ok := eligible(j); ok {
					entering, dir = j, d
					break
				}
			}
		}
		if entering == -1 {
			refresh()
			for j := 0; j < t.width; j++ {
				if d, ok := eligible(j); ok {
					entering, dir = j, d
					break
				}
			}
			if entering == -1 {
				return nil
			}
		}

		// Ratio test: the entering variable moves by step ≥ 0 in
		// direction dir; basic variable i changes by −dir·y_i·step.
		step := t.upper[entering] // bound-to-bound flip distance
		leaving := -1
		leavingToUpper := false
		for i := 0; i < t.m; i++ {
			y := t.rows[i][entering]
			if math.Abs(y) <= eps {
				continue
			}
			delta := -dir * y // d(xB_i)/d(step)
			var limit float64
			var hitsUpper bool
			if delta < 0 {
				limit = (t.xB[i] - t.loCol(t.basis[i])) / -delta // falls to its lower bound
				hitsUpper = false
			} else {
				ub := t.upCol(t.basis[i])
				if math.IsInf(ub, 1) {
					continue
				}
				limit = (ub - t.xB[i]) / delta // rises to its upper bound
				hitsUpper = true
			}
			if limit < -eps {
				limit = 0
			}
			if limit < step-eps || (limit < step+eps && (leaving == -1 || t.basis[i] < t.basis[leaving])) {
				if limit < 0 {
					limit = 0
				}
				step = limit
				leaving = i
				leavingToUpper = hitsUpper
			}
		}
		if math.IsInf(step, 1) {
			return errUnbounded
		}

		if leaving == -1 {
			// Bound-to-bound flip: the entering variable swaps bounds
			// without a basis change.
			for i := 0; i < t.m; i++ {
				t.xB[i] += -dir * t.rows[i][entering] * step
			}
			t.atUpper[entering] = !t.atUpper[entering]
			continue
		}

		// Update basic values, then pivot.
		for i := 0; i < t.m; i++ {
			t.xB[i] += -dir * t.rows[i][entering] * step
		}
		enterVal := 0.0
		if t.atUpper[entering] {
			enterVal = t.upper[entering]
		}
		enterVal += dir * step

		leavingCol := t.basis[leaving]
		t.pivot(leaving, entering, enterVal)
		t.atUpper[leavingCol] = leavingToUpper

		// Maintain the price row.
		f := z[entering]
		if f != 0 {
			row := t.rows[leaving]
			for j := 0; j < t.width; j++ {
				z[j] -= f * row[j]
			}
			z[entering] = 0
		}
	}
	return ErrIterationLimit
}

// pivot makes column e basic in row l with value val.
func (t *boundedTableau) pivot(l, e int, val float64) {
	t.pivots++
	leavingCol := t.basis[l]
	row := t.rows[l]
	inv := 1.0 / row[e]
	for j := 0; j < t.width; j++ {
		row[j] *= inv
	}
	row[e] = 1
	for i := 0; i < t.m; i++ {
		if i == l {
			continue
		}
		f := t.rows[i][e]
		if f == 0 {
			continue
		}
		other := t.rows[i]
		for j := 0; j < t.width; j++ {
			other[j] -= f * row[j]
		}
		other[e] = 0
	}
	t.isBasic[leavingCol] = false
	t.isBasic[e] = true
	t.basis[l] = e
	t.xB[l] = val
}

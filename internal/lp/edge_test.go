package lp

import (
	"errors"
	"math"
	"testing"
)

// TestBealeDegenerateCycle solves Beale's classical cycling example.
// Under the pure most-negative-reduced-cost (Dantzig) rule with
// smallest-index ratio ties, the simplex revisits the same degenerate
// bases forever; the solver must escape via its Bland's-rule
// switchover and still reach the known optimum of −1/20.
func TestBealeDegenerateCycle(t *testing.T) {
	p := &Problem{
		NumVars:   4,
		Objective: []float64{-0.75, 150, -0.02, 6},
	}
	p.AddConstraint(LE, 0,
		Term{Var: 0, Coef: 0.25}, Term{Var: 1, Coef: -60},
		Term{Var: 2, Coef: -0.04}, Term{Var: 3, Coef: 9})
	p.AddConstraint(LE, 0,
		Term{Var: 0, Coef: 0.5}, Term{Var: 1, Coef: -90},
		Term{Var: 2, Coef: -0.02}, Term{Var: 3, Coef: 3})
	p.AddConstraint(LE, 1, Term{Var: 2, Coef: 1})

	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v, want optimal", sol.Status)
	}
	if math.Abs(sol.Objective-(-0.05)) > 1e-9 {
		t.Fatalf("objective %v, want -0.05", sol.Objective)
	}

	// The bounded-variable engine shares the degenerate vertex structure
	// when the bounds are slack; it must converge to the same optimum.
	bsol, err := SolveBounded(p, []float64{1e6, 1e6, 1e6, 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if bsol.Status != Optimal || math.Abs(bsol.Objective-(-0.05)) > 1e-9 {
		t.Fatalf("bounded: status %v objective %v, want optimal -0.05", bsol.Status, bsol.Objective)
	}
}

// TestBoundedUpperBoundOptimum drives SolveBounded to solutions that
// sit on variable upper bounds, which only the bound-flip machinery
// (nonbasic-at-upper, flip without basis change) can reach: no
// constraint row limits the variables, so a simplex that only knows
// lower bounds would declare the problem unbounded.
func TestBoundedUpperBoundOptimum(t *testing.T) {
	// Pure bound flips: maximize x0+x1+x2 under a capacity that never
	// binds; every variable must land exactly on its upper bound.
	p := &Problem{NumVars: 3, Objective: []float64{-1, -1, -1}}
	p.AddConstraint(LE, 10,
		Term{Var: 0, Coef: 1}, Term{Var: 1, Coef: 1}, Term{Var: 2, Coef: 1})
	sol, err := SolveBounded(p, []float64{1, 2, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v, want optimal", sol.Status)
	}
	want := []float64{1, 2, 0.5}
	for j, w := range want {
		if math.Abs(sol.X[j]-w) > 1e-9 {
			t.Fatalf("x[%d]=%v, want %v (upper bound)", j, sol.X[j], w)
		}
	}

	// Mixed: the capacity binds, so one variable is basic strictly
	// between its bounds while the cheaper ones saturate their uppers.
	p2 := &Problem{NumVars: 3, Objective: []float64{-3, -2, -1}}
	p2.AddConstraint(LE, 2,
		Term{Var: 0, Coef: 1}, Term{Var: 1, Coef: 1}, Term{Var: 2, Coef: 1})
	sol2, err := SolveBounded(p2, []float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Status != Optimal || math.Abs(sol2.Objective-(-5)) > 1e-9 {
		t.Fatalf("status %v objective %v, want optimal -5", sol2.Status, sol2.Objective)
	}
	if math.Abs(sol2.X[0]-1) > 1e-9 || math.Abs(sol2.X[1]-1) > 1e-9 || math.Abs(sol2.X[2]) > 1e-9 {
		t.Fatalf("x=%v, want [1 1 0]", sol2.X)
	}

	// A GE row that forces a variable onto its upper bound through
	// phase 1: x0+x1 ≥ 3 with uppers 2 and 1 admits only x=(2,1).
	p3 := &Problem{NumVars: 2, Objective: []float64{1, 1}}
	p3.AddConstraint(GE, 3, Term{Var: 0, Coef: 1}, Term{Var: 1, Coef: 1})
	sol3, err := SolveBounded(p3, []float64{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol3.Status != Optimal {
		t.Fatalf("status %v, want optimal", sol3.Status)
	}
	if math.Abs(sol3.X[0]-2) > 1e-9 || math.Abs(sol3.X[1]-1) > 1e-9 {
		t.Fatalf("x=%v, want [2 1]", sol3.X)
	}

	// Tightening the uppers below the requirement must flip the answer
	// to infeasible, not clamp silently.
	sol4, err := SolveBounded(p3, []float64{1.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol4.Status != Infeasible {
		t.Fatalf("status %v, want infeasible (uppers sum to 2.5 < 3)", sol4.Status)
	}
}

// TestIterationLimitSurfaces forces the pivot budget to one iteration
// and checks both simplex engines surface ErrIterationLimit instead of
// returning a half-optimized point as optimal.
func TestIterationLimitSurfaces(t *testing.T) {
	defer func(old int) { debugIterBudget = old }(debugIterBudget)

	// Needs at least two pivots: two GE rows on disjoint variables, so
	// phase 1 alone exceeds the single-iteration budget.
	p := &Problem{NumVars: 2, Objective: []float64{1, 1}}
	p.AddConstraint(GE, 1, Term{Var: 0, Coef: 1})
	p.AddConstraint(GE, 1, Term{Var: 1, Coef: 1})

	debugIterBudget = 1
	_, err := Solve(p)
	if !errors.Is(err, ErrIterationLimit) {
		t.Fatalf("Solve err = %v, want ErrIterationLimit", err)
	}
	_, err = SolveBounded(p, []float64{5, 5})
	if !errors.Is(err, ErrIterationLimit) {
		t.Fatalf("SolveBounded err = %v, want ErrIterationLimit", err)
	}
	debugIterBudget = 0

	// Sanity: with the budget restored both engines solve it.
	sol, err := Solve(p)
	if err != nil || sol.Status != Optimal || math.Abs(sol.Objective-2) > 1e-9 {
		t.Fatalf("restored Solve = %+v, %v; want optimal objective 2", sol, err)
	}
}

package lp

// NodeState is a saved copy of a NodeSolver's mutable solve state: the
// tableau image, basis, bounds, fix overlay and warm-start bookkeeping.
// It lets a branch-and-bound search return to a previously factored
// point (typically the root relaxation) in O(m·cols) copy time instead
// of re-deriving it — either by a long chain of dual-simplex diffs from
// an unrelated node or by a full cold two-phase solve.
//
// A state is only meaningful for the solver that produced it; restoring
// it into a different solver corrupts both.
type NodeState struct {
	tableau []float64 // m × numCols row image, rows concatenated
	xB      []float64
	basis   []int
	isBasic []bool
	atUpper []bool
	upper   []float64
	noEnter []bool
	fixVal  []float64
	fixed   []int
	ready   bool
	sinceRe int
}

// Snapshot copies the solver's current solve state. Call it after a
// Solve; the snapshot then reproduces, via Restore, exactly the state
// the next Solve would have warm-started from. Stats counters (pivot
// and warm/cold counts) are not part of the state — they keep
// accumulating monotonically across restores.
func (s *NodeSolver) Snapshot() *NodeState {
	t := &s.t
	st := &NodeState{
		tableau: make([]float64, t.m*t.numCols),
		xB:      append([]float64(nil), t.xB...),
		basis:   append([]int(nil), t.basis...),
		isBasic: append([]bool(nil), t.isBasic...),
		atUpper: append([]bool(nil), t.atUpper...),
		upper:   append([]float64(nil), t.upper...),
		noEnter: append([]bool(nil), t.noEnter...),
		fixVal:  append([]float64(nil), t.fixVal...),
		fixed:   append([]int(nil), s.fixed...),
		ready:   s.ready,
		sinceRe: s.sinceRe,
	}
	for i := 0; i < t.m; i++ {
		copy(st.tableau[i*t.numCols:(i+1)*t.numCols], t.rows[i])
	}
	return st
}

// Restore copies a snapshot back into the solver's live buffers. The
// next Solve then behaves exactly as if it followed the Solve the
// snapshot was taken after: same warm-start basis, same fix overlay,
// same results for the same fix sequence. The snapshot itself is not
// consumed and may be restored again.
func (s *NodeSolver) Restore(st *NodeState) {
	t := &s.t
	for i := 0; i < t.m; i++ {
		copy(t.rows[i], st.tableau[i*t.numCols:(i+1)*t.numCols])
	}
	copy(t.xB, st.xB)
	copy(t.basis, st.basis)
	copy(t.isBasic, st.isBasic)
	copy(t.atUpper, st.atUpper)
	copy(t.upper, st.upper)
	copy(t.noEnter, st.noEnter)
	copy(t.fixVal, st.fixVal)
	s.fixed = append(s.fixed[:0], st.fixed...)
	s.ready = st.ready
	s.sinceRe = st.sinceRe
}

package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSolveSimpleMax(t *testing.T) {
	// max x+y s.t. x+2y<=4, 3x+y<=6  => min -(x+y).
	// Optimum at x=1.6, y=1.2, value 2.8.
	p := &Problem{NumVars: 2, Objective: []float64{-1, -1}}
	p.AddConstraint(LE, 4, Term{0, 1}, Term{1, 2})
	p.AddConstraint(LE, 6, Term{0, 3}, Term{1, 1})
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if !approx(s.Objective, -2.8) {
		t.Errorf("objective = %f, want -2.8 (x=%v)", s.Objective, s.X)
	}
}

func TestSolveEquality(t *testing.T) {
	// min x+y s.t. x+y = 5, x <= 2  => x=2? No: min x+y with x+y=5 is 5.
	p := &Problem{NumVars: 2, Objective: []float64{1, 1}}
	p.AddConstraint(EQ, 5, Term{0, 1}, Term{1, 1})
	p.AddConstraint(LE, 2, Term{0, 1})
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, 5) {
		t.Fatalf("got %v obj=%f, want optimal 5", s.Status, s.Objective)
	}
	if s.X[0] > 2+1e-9 {
		t.Errorf("x = %f violates x<=2", s.X[0])
	}
	if !approx(s.X[0]+s.X[1], 5) {
		t.Errorf("x+y = %f, want 5", s.X[0]+s.X[1])
	}
}

func TestSolveGE(t *testing.T) {
	// min 2x+3y s.t. x+y >= 10, x >= 2. Optimum x=10 (y=0): 20? Check:
	// cost of x is 2 < 3, so push x: x=10,y=0 satisfies both, obj 20.
	p := &Problem{NumVars: 2, Objective: []float64{2, 3}}
	p.AddConstraint(GE, 10, Term{0, 1}, Term{1, 1})
	p.AddConstraint(GE, 2, Term{0, 1})
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, 20) {
		t.Fatalf("got %v obj=%f X=%v, want optimal 20", s.Status, s.Objective, s.X)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := &Problem{NumVars: 1, Objective: []float64{1}}
	p.AddConstraint(GE, 5, Term{0, 1})
	p.AddConstraint(LE, 3, Term{0, 1})
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", s.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// min -x with only x >= 0: unbounded below.
	p := &Problem{NumVars: 1, Objective: []float64{-1}}
	p.AddConstraint(GE, 0, Term{0, 1})
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", s.Status)
	}
}

func TestSolveNegativeRHS(t *testing.T) {
	// x - y <= -2 with min x+y: normalized internally to y - x >= 2.
	// Optimum x=0, y=2.
	p := &Problem{NumVars: 2, Objective: []float64{1, 1}}
	p.AddConstraint(LE, -2, Term{0, 1}, Term{1, -1})
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, 2) {
		t.Fatalf("got %v obj=%f X=%v, want optimal 2", s.Status, s.Objective, s.X)
	}
}

func TestSolveDegenerate(t *testing.T) {
	// A classically degenerate LP (redundant constraints at the optimum).
	p := &Problem{NumVars: 2, Objective: []float64{-1, -1}}
	p.AddConstraint(LE, 1, Term{0, 1})
	p.AddConstraint(LE, 1, Term{1, 1})
	p.AddConstraint(LE, 2, Term{0, 1}, Term{1, 1})
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, -2) {
		t.Fatalf("got %v obj=%f, want optimal -2", s.Status, s.Objective)
	}
}

func TestSolveZeroObjectiveFeasibility(t *testing.T) {
	// Pure feasibility problem (paper MILP1 style): nil objective.
	p := &Problem{NumVars: 2}
	p.AddConstraint(EQ, 1, Term{0, 1}, Term{1, 1})
	p.AddConstraint(LE, 0.6, Term{0, 1})
	s, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status = %v, want optimal", s.Status)
	}
	if !approx(s.X[0]+s.X[1], 1) {
		t.Errorf("x+y = %f, want 1", s.X[0]+s.X[1])
	}
}

func TestSolveRejectsBadInput(t *testing.T) {
	p := &Problem{NumVars: 1, Objective: []float64{1, 2}}
	if _, err := Solve(p); err == nil {
		t.Error("mismatched objective length accepted")
	}
	p2 := &Problem{NumVars: 1}
	p2.AddConstraint(LE, 1, Term{5, 1})
	if _, err := Solve(p2); err == nil {
		t.Error("out-of-range variable accepted")
	}
}

func TestSolveEmptyProblem(t *testing.T) {
	s, err := Solve(&Problem{NumVars: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || s.X[0] != 0 || s.X[1] != 0 {
		t.Fatalf("empty problem: got %v %v", s.Status, s.X)
	}
}

// Property: for random feasible assignment-like LPs the solution
// satisfies every constraint within tolerance.
func TestSolveQuickFeasibilityRespected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		p := &Problem{NumVars: n, Objective: make([]float64, n)}
		for j := range p.Objective {
			p.Objective[j] = rng.Float64()*4 - 1
		}
		// Box constraints keep it bounded and feasible (0 is feasible).
		for j := 0; j < n; j++ {
			p.AddConstraint(LE, 1+rng.Float64()*5, Term{j, 1})
		}
		for r := 0; r < 1+rng.Intn(4); r++ {
			var terms []Term
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					terms = append(terms, Term{j, rng.Float64() * 3})
				}
			}
			if len(terms) == 0 {
				continue
			}
			p.AddConstraint(LE, rng.Float64()*10, terms...)
		}
		s, err := Solve(p)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if s.Status != Optimal {
			t.Logf("seed %d: status %v", seed, s.Status)
			return false
		}
		for _, c := range p.Constraints {
			var lhs float64
			for _, term := range c.Terms {
				lhs += term.Coef * s.X[term.Var]
			}
			switch c.Sense {
			case LE:
				if lhs > c.RHS+1e-6 {
					return false
				}
			case GE:
				if lhs < c.RHS-1e-6 {
					return false
				}
			case EQ:
				if math.Abs(lhs-c.RHS) > 1e-6 {
					return false
				}
			}
		}
		for _, x := range s.X {
			if x < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSenseString(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("Sense.String mismatch")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("Status.String mismatch")
	}
}

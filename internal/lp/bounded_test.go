package lp

import (
	"math"
	"math/rand"
	"testing"
)

func TestSolveBoundedSimple(t *testing.T) {
	// max x+y s.t. x+y <= 3, x ≤ 1, y ≤ 1 (bounds) — optimum 2.
	p := &Problem{NumVars: 2, Objective: []float64{-1, -1}}
	p.AddConstraint(LE, 3, Term{0, 1}, Term{1, 1})
	s, err := SolveBounded(p, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, -2) {
		t.Fatalf("got %v obj=%f X=%v, want optimal -2", s.Status, s.Objective, s.X)
	}
}

func TestSolveBoundedBindingConstraintNotBounds(t *testing.T) {
	// max x+y s.t. x+y ≤ 1.2 with x,y ≤ 1: constraint binds first.
	p := &Problem{NumVars: 2, Objective: []float64{-1, -1}}
	p.AddConstraint(LE, 1.2, Term{0, 1}, Term{1, 1})
	s, err := SolveBounded(p, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.Objective, -1.2) {
		t.Fatalf("got %v obj=%f, want -1.2", s.Status, s.Objective)
	}
}

func TestSolveBoundedEquality(t *testing.T) {
	// x + y = 1.5 with binaries relaxed to [0,1]: feasible (e.g. 1, .5).
	p := &Problem{NumVars: 2}
	p.AddConstraint(EQ, 1.5, Term{0, 1}, Term{1, 1})
	s, err := SolveBounded(p, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal {
		t.Fatalf("status %v, want optimal", s.Status)
	}
	if !approx(s.X[0]+s.X[1], 1.5) {
		t.Errorf("x+y = %f", s.X[0]+s.X[1])
	}
	for _, v := range s.X {
		if v < -1e-9 || v > 1+1e-9 {
			t.Errorf("bound violated: %v", s.X)
		}
	}
}

func TestSolveBoundedInfeasibleByBounds(t *testing.T) {
	// x + y = 3 with x,y ≤ 1 is infeasible.
	p := &Problem{NumVars: 2}
	p.AddConstraint(EQ, 3, Term{0, 1}, Term{1, 1})
	s, err := SolveBounded(p, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Infeasible {
		t.Fatalf("status %v, want infeasible", s.Status)
	}
}

func TestSolveBoundedUnbounded(t *testing.T) {
	p := &Problem{NumVars: 1, Objective: []float64{-1}}
	s, err := SolveBounded(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Unbounded {
		t.Fatalf("status %v, want unbounded", s.Status)
	}
}

func TestSolveBoundedZeroUpper(t *testing.T) {
	// A variable pinned at 0 by its bound.
	p := &Problem{NumVars: 2, Objective: []float64{-5, -1}}
	p.AddConstraint(LE, 10, Term{0, 1}, Term{1, 1})
	s, err := SolveBounded(p, []float64{0, math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	if s.Status != Optimal || !approx(s.X[0], 0) || !approx(s.X[1], 10) {
		t.Fatalf("got %v X=%v, want x0=0 x1=10", s.Status, s.X)
	}
}

func TestSolveBoundedRejectsBadInput(t *testing.T) {
	p := &Problem{NumVars: 2}
	if _, err := SolveBounded(p, []float64{1}); err == nil {
		t.Error("short upper accepted")
	}
	if _, err := SolveBounded(p, []float64{1, -2}); err == nil {
		t.Error("negative upper accepted")
	}
}

// TestSolveBoundedQuickAgainstRowBounds: on random problems, the
// bounded-variable simplex agrees with the row-based formulation
// solved by the plain simplex.
func TestSolveBoundedQuickAgainstRowBounds(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		p := &Problem{NumVars: n, Objective: make([]float64, n)}
		upper := make([]float64, n)
		for j := 0; j < n; j++ {
			p.Objective[j] = float64(rng.Intn(11) - 5)
			upper[j] = float64(1 + rng.Intn(4))
		}
		for r := 0; r < 1+rng.Intn(4); r++ {
			var terms []Term
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					terms = append(terms, Term{j, float64(rng.Intn(7) - 3)})
				}
			}
			if len(terms) == 0 {
				continue
			}
			sense := []Sense{LE, GE, EQ}[rng.Intn(3)]
			p.AddConstraint(sense, float64(rng.Intn(9)-2), terms...)
		}

		// Reference: plain simplex with explicit bound rows.
		ref := Problem{NumVars: n, Objective: p.Objective,
			Constraints: append([]Constraint(nil), p.Constraints...)}
		for j := 0; j < n; j++ {
			ref.AddConstraint(LE, upper[j], Term{j, 1})
		}
		want, err := Solve(&ref)
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		got, err := SolveBounded(p, upper)
		if err != nil {
			t.Fatalf("seed %d: bounded: %v", seed, err)
		}
		if got.Status != want.Status {
			t.Fatalf("seed %d: status %v vs reference %v", seed, got.Status, want.Status)
		}
		if got.Status != Optimal {
			continue
		}
		if math.Abs(got.Objective-want.Objective) > 1e-6 {
			t.Errorf("seed %d: objective %f vs reference %f (X=%v refX=%v)",
				seed, got.Objective, want.Objective, got.X, want.X)
		}
		// Solution must satisfy constraints and bounds.
		for j, v := range got.X {
			if v < -1e-7 || v > upper[j]+1e-7 {
				t.Errorf("seed %d: bound violated: x%d=%f ∉ [0,%f]", seed, j, v, upper[j])
			}
		}
		for _, c := range p.Constraints {
			var lhs float64
			for _, term := range c.Terms {
				lhs += term.Coef * got.X[term.Var]
			}
			switch c.Sense {
			case LE:
				if lhs > c.RHS+1e-6 {
					t.Errorf("seed %d: LE violated", seed)
				}
			case GE:
				if lhs < c.RHS-1e-6 {
					t.Errorf("seed %d: GE violated", seed)
				}
			case EQ:
				if math.Abs(lhs-c.RHS) > 1e-6 {
					t.Errorf("seed %d: EQ violated", seed)
				}
			}
		}
	}
}

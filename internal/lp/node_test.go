package lp

import (
	"math"
	"math/rand"
	"testing"
)

// fixProblem folds a fix set into a fresh Problem the way the legacy
// MILP node solver does: fixed variables keep their column but are
// pinned by equality rows. This gives an independent reference for
// what NodeSolver should compute.
func fixProblem(p *Problem, upper []float64, fixes []Fix) (*Problem, []float64) {
	q := &Problem{NumVars: p.NumVars, Objective: p.Objective}
	q.Constraints = append(q.Constraints, p.Constraints...)
	u := make([]float64, len(upper))
	copy(u, upper)
	for _, fx := range fixes {
		q.AddConstraint(EQ, fx.Val, Term{Var: fx.Var, Coef: 1})
	}
	return q, u
}

// randomBinaryProblem builds a small random LP over binary-bounded
// variables, shaped like the MILP relaxations the solver serves:
// cover rows (GE), capacity rows (LE), and linking equalities.
func randomBinaryProblem(rng *rand.Rand) (*Problem, []float64) {
	n := 4 + rng.Intn(6)
	p := &Problem{NumVars: n}
	if rng.Intn(2) == 0 {
		obj := make([]float64, n)
		for j := range obj {
			obj[j] = float64(rng.Intn(7) - 3)
		}
		p.Objective = obj
	}
	rows := 2 + rng.Intn(5)
	for r := 0; r < rows; r++ {
		var terms []Term
		for j := 0; j < n; j++ {
			if rng.Intn(2) == 0 {
				terms = append(terms, Term{Var: j, Coef: float64(1 + rng.Intn(3))})
			}
		}
		if len(terms) == 0 {
			terms = append(terms, Term{Var: rng.Intn(n), Coef: 1})
		}
		switch rng.Intn(3) {
		case 0:
			p.AddConstraint(GE, float64(1+rng.Intn(2)), terms...)
		case 1:
			p.AddConstraint(LE, float64(1+rng.Intn(4)), terms...)
		default:
			p.AddConstraint(EQ, float64(1+rng.Intn(2)), terms...)
		}
	}
	upper := make([]float64, n)
	for j := range upper {
		upper[j] = 1
	}
	return p, upper
}

// TestNodeSolverMatchesSolveBounded drives a NodeSolver through random
// branch-and-bound-like fix sequences and cross-checks every node
// against a cold SolveBounded on the equivalent folded problem. The
// sequences deliberately mix supersets (diving), rollbacks (sibling
// nodes), and value changes so both the warm and cold paths run.
func TestNodeSolverMatchesSolveBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 1000; trial++ {
		p, upper := randomBinaryProblem(rng)
		ns, err := NewNodeSolver(p, upper)
		if err != nil {
			t.Fatalf("trial %d: NewNodeSolver: %v", trial, err)
		}
		var fixes []Fix
		for step := 0; step < 12; step++ {
			// Mutate the fix set: push, pop, or flip.
			switch {
			case len(fixes) == 0 || rng.Intn(3) == 0:
				v := rng.Intn(p.NumVars)
				dup := false
				for _, fx := range fixes {
					if fx.Var == v {
						dup = true
					}
				}
				if !dup {
					fixes = append(fixes, Fix{Var: v, Val: float64(rng.Intn(2))})
				}
			case rng.Intn(2) == 0:
				fixes = fixes[:len(fixes)-1]
			default:
				i := rng.Intn(len(fixes))
				fixes[i].Val = 1 - fixes[i].Val
			}

			got, err := ns.Solve(fixes)
			if err != nil {
				t.Fatalf("trial %d step %d: NodeSolver.Solve: %v", trial, step, err)
			}
			q, u := fixProblem(p, upper, fixes)
			want, err := SolveBounded(q, u)
			if err != nil {
				t.Fatalf("trial %d step %d: SolveBounded: %v", trial, step, err)
			}
			if got.Status != want.Status {
				t.Fatalf("trial %d step %d fixes %v: status %v, want %v",
					trial, step, fixes, got.Status, want.Status)
			}
			if got.Status != Optimal {
				continue
			}
			if p.Objective != nil && math.Abs(got.Objective-want.Objective) > 1e-6 {
				t.Fatalf("trial %d step %d fixes %v: objective %v, want %v",
					trial, step, fixes, got.Objective, want.Objective)
			}
			// The solution must satisfy bounds, fixes, and constraints.
			for j, xj := range got.X {
				if xj < -1e-7 || xj > u[j]+1e-7 {
					t.Fatalf("trial %d step %d: x[%d]=%v outside [0,%v]", trial, step, j, xj, u[j])
				}
			}
			for _, fx := range fixes {
				if math.Abs(got.X[fx.Var]-fx.Val) > 1e-7 {
					t.Fatalf("trial %d step %d: x[%d]=%v, fixed to %v", trial, step, fx.Var, got.X[fx.Var], fx.Val)
				}
			}
			for ci, c := range p.Constraints {
				var lhs float64
				for _, tm := range c.Terms {
					lhs += tm.Coef * got.X[tm.Var]
				}
				viol := false
				switch c.Sense {
				case LE:
					viol = lhs > c.RHS+1e-6
				case GE:
					viol = lhs < c.RHS-1e-6
				case EQ:
					viol = math.Abs(lhs-c.RHS) > 1e-6
				}
				if viol {
					t.Fatalf("trial %d step %d: constraint %d violated: lhs=%v rhs=%v sense=%v",
						trial, step, ci, lhs, c.RHS, c.Sense)
				}
			}
		}
	}
}

// TestNodeSolverWarmPathRuns guards against the warm path silently
// degrading into cold solves on the easiest possible diving sequence.
func TestNodeSolverWarmPathRuns(t *testing.T) {
	p := &Problem{NumVars: 6}
	p.AddConstraint(GE, 2, Term{Var: 0, Coef: 1}, Term{Var: 1, Coef: 1}, Term{Var: 2, Coef: 1})
	p.AddConstraint(GE, 2, Term{Var: 3, Coef: 1}, Term{Var: 4, Coef: 1}, Term{Var: 5, Coef: 1})
	p.AddConstraint(LE, 4, Term{Var: 0, Coef: 1}, Term{Var: 1, Coef: 1}, Term{Var: 2, Coef: 1},
		Term{Var: 3, Coef: 1}, Term{Var: 4, Coef: 1}, Term{Var: 5, Coef: 1})
	upper := []float64{1, 1, 1, 1, 1, 1}
	ns, err := NewNodeSolver(p, upper)
	if err != nil {
		t.Fatal(err)
	}
	var fixes []Fix
	for v := 0; v < 4; v++ {
		fixes = append(fixes, Fix{Var: v, Val: 1})
		if _, err := ns.Solve(fixes); err != nil {
			t.Fatalf("solve with %d fixes: %v", len(fixes), err)
		}
	}
	warm, cold := ns.Stats()
	if cold != 1 || warm != 3 {
		t.Fatalf("stats warm=%d cold=%d, want warm=3 cold=1 (first solve cold, dives warm)", warm, cold)
	}
}

// TestNodeSolverColdFallback forces the dual pass to give up via the
// debug iteration budget and checks the solver still answers correctly
// through the cold path.
func TestNodeSolverColdFallback(t *testing.T) {
	defer func(old int) { debugDualBudget = old }(debugDualBudget)

	p := &Problem{NumVars: 4}
	p.AddConstraint(GE, 2, Term{Var: 0, Coef: 1}, Term{Var: 1, Coef: 1}, Term{Var: 2, Coef: 1}, Term{Var: 3, Coef: 1})
	p.AddConstraint(LE, 3, Term{Var: 0, Coef: 1}, Term{Var: 1, Coef: 1}, Term{Var: 2, Coef: 1}, Term{Var: 3, Coef: 1})
	upper := []float64{1, 1, 1, 1}
	ns, err := NewNodeSolver(p, upper)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ns.Solve(nil); err != nil {
		t.Fatal(err)
	}
	debugDualBudget = 1 // dual pass exhausts instantly → cold fallback
	sol, err := ns.Solve([]Fix{{Var: 0, Val: 0}, {Var: 1, Val: 0}})
	debugDualBudget = 0
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status %v, want optimal", sol.Status)
	}
	if sol.X[2]+sol.X[3] < 2-1e-7 {
		t.Fatalf("cover constraint unmet: %v", sol.X)
	}
}

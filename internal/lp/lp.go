// Package lp implements a two-phase dense-tableau simplex solver for
// linear programs in the form
//
//	minimize    c·x
//	subject to  a_r·x {≤,≥,=} b_r   for each constraint r
//	            x ≥ 0
//
// It is the LP engine under the branch-and-bound MILP solver in
// internal/milp, which together substitute for the CPLEX package the
// paper uses to solve its crossbar-design MILPs (paper Section 6).
// Problem sizes there are small (the largest STbus crossbar has 32
// targets), so a dense tableau is appropriate.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the relation of a constraint row to its right-hand side.
type Sense int

const (
	// LE is a_r·x ≤ b_r.
	LE Sense = iota
	// GE is a_r·x ≥ b_r.
	GE
	// EQ is a_r·x = b_r.
	EQ
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return fmt.Sprintf("Sense(%d)", int(s))
}

// Term is one coefficient of a sparse constraint row.
type Term struct {
	Var  int
	Coef float64
}

// Constraint is a sparse constraint row.
type Constraint struct {
	Terms []Term
	Sense Sense
	RHS   float64
}

// Problem is an LP in minimization form. Variables are implicitly
// non-negative; upper bounds must be expressed as constraints.
type Problem struct {
	NumVars     int
	Objective   []float64 // length NumVars; nil means the zero objective
	Constraints []Constraint
}

// AddConstraint appends a constraint built from (var, coef) pairs.
func (p *Problem) AddConstraint(sense Sense, rhs float64, terms ...Term) {
	p.Constraints = append(p.Constraints, Constraint{Terms: terms, Sense: sense, RHS: rhs})
}

// Status is the outcome of a solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective decreases without bound.
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution holds the result of a solve.
type Solution struct {
	Status    Status
	X         []float64 // variable values when Status == Optimal
	Objective float64   // c·x when Status == Optimal
	// Iterations counts the simplex basis changes (primal and dual
	// pivots) spent producing this solution — the per-solve work metric
	// the MILP layer aggregates into its LPIterations statistic.
	Iterations int64
}

const eps = 1e-9

// ErrIterationLimit is returned when the simplex fails to converge
// within the iteration budget (indicative of numerical trouble).
var ErrIterationLimit = errors.New("lp: simplex iteration limit exceeded")

// ErrInterrupted is returned when a NodeSolver's Interrupt callback
// asked a running simplex pass to stop. The solve's intermediate state
// is discarded (the solver re-anchors cold on the next call), so an
// interrupted solver remains usable.
var ErrInterrupted = errors.New("lp: solve interrupted")

// debugIterBudget, when positive, overrides the pivot budget of the
// primal simplex loops. debugDualBudget does the same for the
// NodeSolver's dual-simplex pass. They exist purely so tests can force
// the ErrIterationLimit and warm-start fallback paths on small
// problems.
var (
	debugIterBudget = 0
	debugDualBudget = 0
)

// Solve runs the two-phase simplex method on p.
func Solve(p *Problem) (*Solution, error) {
	if p.NumVars < 0 {
		return nil, errors.New("lp: negative variable count")
	}
	if p.Objective != nil && len(p.Objective) != p.NumVars {
		return nil, fmt.Errorf("lp: objective has %d coefficients, want %d", len(p.Objective), p.NumVars)
	}
	for _, c := range p.Constraints {
		for _, t := range c.Terms {
			if t.Var < 0 || t.Var >= p.NumVars {
				return nil, fmt.Errorf("lp: constraint references variable %d outside [0,%d)", t.Var, p.NumVars)
			}
		}
	}

	t := newTableau(p)
	// Phase 1: minimize the sum of artificial variables.
	if t.numArtificial > 0 {
		if err := t.runSimplex(t.phase1Costs()); err != nil {
			return nil, err
		}
		if t.objectiveValue(t.phase1Costs()) > 1e-7 {
			return &Solution{Status: Infeasible}, nil
		}
		t.driveOutArtificials()
	}
	// Phase 2: minimize the real objective.
	costs := make([]float64, t.numCols)
	for j := 0; j < p.NumVars && p.Objective != nil; j++ {
		costs[j] = p.Objective[j]
	}
	if err := t.runSimplex(costs); err != nil {
		if errors.Is(err, errUnbounded) {
			return &Solution{Status: Unbounded}, nil
		}
		return nil, err
	}
	x := make([]float64, p.NumVars)
	for i, bv := range t.basis {
		if bv < p.NumVars {
			x[bv] = t.rhs(i)
		}
	}
	var obj float64
	for j := 0; j < p.NumVars && p.Objective != nil; j++ {
		obj += p.Objective[j] * x[j]
	}
	return &Solution{Status: Optimal, X: x, Objective: obj}, nil
}

var errUnbounded = errors.New("lp: unbounded")

// tableau is the dense simplex working state: m constraint rows over
// structural + slack/surplus + artificial columns, plus the RHS column.
type tableau struct {
	m, numCols    int // numCols excludes the RHS column
	numStructural int
	numArtificial int
	rows          [][]float64 // m rows, each numCols+1 wide (last = RHS)
	basis         []int       // basis[i] = column basic in row i
	artStart      int         // first artificial column index
}

func (t *tableau) rhs(i int) float64 { return t.rows[i][t.numCols] }

func newTableau(p *Problem) *tableau {
	m := len(p.Constraints)
	// Count auxiliary columns.
	numSlack := 0
	numArt := 0
	for _, c := range p.Constraints {
		rhs, sense := c.RHS, c.Sense
		if rhs < 0 {
			// Normalizing to a non-negative RHS flips the sense.
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		switch sense {
		case LE:
			numSlack++ // slack enters the basis directly
		case GE:
			numSlack++ // surplus
			numArt++
		case EQ:
			numArt++
		}
	}
	numCols := p.NumVars + numSlack + numArt
	t := &tableau{
		m:             m,
		numCols:       numCols,
		numStructural: p.NumVars,
		numArtificial: numArt,
		rows:          make([][]float64, m),
		basis:         make([]int, m),
		artStart:      p.NumVars + numSlack,
	}
	slackCol := p.NumVars
	artCol := t.artStart
	for i, c := range p.Constraints {
		row := make([]float64, numCols+1)
		sign := 1.0
		sense := c.Sense
		if c.RHS < 0 {
			sign = -1.0
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		for _, term := range c.Terms {
			row[term.Var] += sign * term.Coef
		}
		row[numCols] = sign * c.RHS
		switch sense {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
		t.rows[i] = row
	}
	return t
}

func (t *tableau) phase1Costs() []float64 {
	costs := make([]float64, t.numCols)
	for j := t.artStart; j < t.numCols; j++ {
		costs[j] = 1
	}
	return costs
}

// objectiveValue returns c_B · x_B for the current basis.
func (t *tableau) objectiveValue(costs []float64) float64 {
	var v float64
	for i, bv := range t.basis {
		v += costs[bv] * t.rhs(i)
	}
	return v
}

// reducedCost returns c_j - c_B·B⁻¹A_j for column j.
func (t *tableau) reducedCost(costs []float64, j int) float64 {
	v := costs[j]
	for i, bv := range t.basis {
		if costs[bv] != 0 {
			v -= costs[bv] * t.rows[i][j]
		}
	}
	return v
}

// runSimplex iterates pivots until optimality for the given costs.
// It uses Dantzig's rule, switching to Bland's rule (which cannot
// cycle) once the iteration count grows suspicious. The price row of
// reduced costs is maintained incrementally across pivots (refreshed
// periodically against numerical drift) so entering-column selection
// costs O(n) instead of O(m·n).
func (t *tableau) runSimplex(costs []float64) error {
	// Dantzig's rule makes rapid progress but can stall on degenerate
	// vertices; switch to Bland's rule (provably finite) early enough
	// that the remaining budget is effectively unbounded for it.
	maxIters := 1000 * (t.m + t.numCols + 10)
	blandAfter := 20 * (t.m + t.numCols + 10)
	if debugIterBudget > 0 {
		maxIters = debugIterBudget
	}
	z := make([]float64, t.numCols)
	refresh := func() {
		for j := 0; j < t.numCols; j++ {
			z[j] = t.reducedCost(costs, j)
		}
	}
	refresh()
	const refreshEvery = 256
	for iter := 0; iter < maxIters; iter++ {
		if iter%refreshEvery == refreshEvery-1 {
			refresh()
		}
		entering := -1
		if iter < blandAfter {
			best := -eps
			for j := 0; j < t.numCols; j++ {
				if z[j] < best {
					best = z[j]
					entering = j
				}
			}
		} else {
			for j := 0; j < t.numCols; j++ {
				if z[j] < -eps {
					entering = j
					break
				}
			}
		}
		if entering == -1 {
			// Verify against exactly recomputed reduced costs before
			// declaring optimality (the incremental row may drift).
			refresh()
			for j := 0; j < t.numCols; j++ {
				if z[j] < -eps {
					entering = j
					break
				}
			}
			if entering == -1 {
				return nil // optimal
			}
		}
		// Ratio test; ties broken by smallest basis index (Bland-safe).
		leaving := -1
		bestRatio := math.Inf(1)
		for i := 0; i < t.m; i++ {
			a := t.rows[i][entering]
			if a > eps {
				ratio := t.rhs(i) / a
				if ratio < bestRatio-eps || (ratio < bestRatio+eps && (leaving == -1 || t.basis[i] < t.basis[leaving])) {
					bestRatio = ratio
					leaving = i
				}
			}
		}
		if leaving == -1 {
			return errUnbounded
		}
		t.pivot(leaving, entering)
		// Update the price row: the pivot row is normalized, so
		// z' = z - z[e]·row_l.
		f := z[entering]
		if f != 0 {
			row := t.rows[leaving]
			for j := 0; j < t.numCols; j++ {
				z[j] -= f * row[j]
			}
			z[entering] = 0
		}
	}
	return ErrIterationLimit
}

// pivot makes column e basic in row l.
func (t *tableau) pivot(l, e int) {
	row := t.rows[l]
	pv := row[e]
	inv := 1.0 / pv
	for j := range row {
		row[j] *= inv
	}
	row[e] = 1 // exact
	for i := 0; i < t.m; i++ {
		if i == l {
			continue
		}
		f := t.rows[i][e]
		if f == 0 {
			continue
		}
		other := t.rows[i]
		for j := range other {
			other[j] -= f * row[j]
		}
		other[e] = 0 // exact
	}
	t.basis[l] = e
}

// driveOutArtificials pivots any artificial variables remaining in the
// basis at level zero out of it, so phase 2 cannot reactivate them.
func (t *tableau) driveOutArtificials() {
	for i := 0; i < t.m; i++ {
		if t.basis[i] < t.artStart {
			continue
		}
		// Find any non-artificial column with a nonzero entry to pivot in.
		pivoted := false
		for j := 0; j < t.artStart; j++ {
			if math.Abs(t.rows[i][j]) > eps {
				t.pivot(i, j)
				pivoted = true
				break
			}
		}
		if !pivoted {
			// Row is redundant (all-zero over structural columns);
			// neutralize it so the artificial stays pinned at zero.
			for j := range t.rows[i] {
				t.rows[i][j] = 0
			}
			t.rows[i][t.basis[i]] = 1
		}
	}
	// Forbid artificials from re-entering by zeroing their columns.
	for i := 0; i < t.m; i++ {
		for j := t.artStart; j < t.numCols; j++ {
			if t.basis[i] != j {
				t.rows[i][j] = 0
			}
		}
	}
}

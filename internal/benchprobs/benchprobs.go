// Package benchprobs builds deterministic solver benchmark instances.
// They are shared by the in-tree `go test -bench` microbenchmarks and
// the cmd/solverbench runner that writes BENCH_solver.json, so both
// always measure the same problems.
//
// The package deliberately depends only on internal/trace: benchmark
// code living inside internal/core (and the solverbench command) can
// import it without an import cycle.
package benchprobs

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/trace"
)

// Analysis32 returns the window analysis of a synthetic trace with 32
// receivers — the STbus architectural maximum and the largest
// feasibility MILP the crossbar methodology ever formulates. The
// traffic is staggered DMA-style bursts with a deterministic layout:
// heavy enough that several buses are needed, light enough that the
// instance stays feasible well below 32 buses.
func Analysis32() *trace.Analysis {
	return analysisN(32)
}

// Analysis12 is a mid-size (12-receiver) variant used for the
// feasibility before/after comparison: unlike Analysis32 it is small
// enough for the legacy cold-solve path to finish.
func Analysis12() *trace.Analysis {
	return analysisN(12)
}

// Analysis8 is the small variant used for the binding (optimize-mode)
// benchmarks: the exact binding MILP of Eq. 9–11 couples every bus pair
// through the shared max-overlap variable and is far more expensive per
// bus count than the feasibility probe, so it gets the smallest
// instance.
func Analysis8() *trace.Analysis {
	return analysisN(8)
}

// TraceN returns the synthetic staggered-burst trace behind AnalysisN
// without analyzing it, for callers that want to drive the analysis
// kernels themselves (the adaptive-window equivalence tests, for one).
func TraceN(n int) *trace.Trace {
	return traceN(n)
}

// ScaledTrace builds a deterministic trace with exactly the given
// receiver and event counts, for the analysis-kernel benchmarks
// (cmd/analysisbench). Events are emitted in nondecreasing start order
// — groups of four share a start cycle (coincident endpoints are the
// common case in cycle-accurate traces) — with burst lengths that
// overrun the inter-group stride, so at any instant several receivers
// are busy and the pairwise overlap structure is non-trivial. The
// horizon scales with the event count; window size is the caller's
// choice (ScaledWindow gives the benchmark default of 256 windows).
func ScaledTrace(receivers, events int) *trace.Trace {
	const stride = 28 // cycles between group starts; bursts overrun it
	rng := rand.New(rand.NewSource(int64(receivers)*1_000_003 + int64(events)))
	maxLen := int64(0)
	tr := &trace.Trace{
		NumReceivers: receivers,
		NumSenders:   4,
		Events:       make([]trace.Event, events),
	}
	for k := 0; k < events; k++ {
		start := int64(k/4) * stride
		length := int64(9 + rng.Intn(24))
		if length > maxLen {
			maxLen = length
		}
		tr.Events[k] = trace.Event{
			Start:    start,
			Len:      length,
			Sender:   k % 4,
			Receiver: (k*13 + k/4) % receivers,
			Critical: rng.Intn(8) == 0,
		}
	}
	tr.Horizon = int64((events+3)/4)*stride + maxLen
	if tr.Horizon == 0 {
		tr.Horizon = 1
	}
	return tr
}

// WriteScaledV2 streams the ScaledTrace event shape with the given
// receiver and event counts directly into a columnar v2 trace container
// on w, never materializing the event slice — the generator for the
// out-of-core benchmark cases (cmd/analysisbench -full), whose traces
// would dwarf memory as a []trace.Event. The event sequence matches
// ScaledTrace draw for draw; only the horizon differs (the worst-case
// burst bound instead of the observed maximum, since the container
// header precedes the events). Returns the horizon written.
func WriteScaledV2(w io.Writer, receivers, events int) (int64, error) {
	const stride = 28
	const maxBurst = 9 + 23 // the largest 9+Intn(24) draw
	horizon := int64((events+3)/4)*stride + maxBurst
	rng := rand.New(rand.NewSource(int64(receivers)*1_000_003 + int64(events)))
	vw, err := trace.NewV2Writer(w, receivers, 4, horizon, uint64(events))
	if err != nil {
		return 0, err
	}
	for k := 0; k < events; k++ {
		e := trace.Event{
			Start:    int64(k/4) * stride,
			Len:      int64(9 + rng.Intn(24)),
			Sender:   k % 4,
			Receiver: (k*13 + k/4) % receivers,
			Critical: rng.Intn(8) == 0,
		}
		if err := vw.Add(e); err != nil {
			return 0, err
		}
	}
	return horizon, vw.Close()
}

// ScaledWindow returns the analysis window size for a ScaledTrace:
// fixed 500-cycle windows, the contention granularity of the paper's
// methodology (windows a few bursts wide, so per-window overlap is
// meaningful for bus binding). The window count therefore grows with
// the trace horizon — ~14k windows at a million events — which is
// exactly the regime where per-window table construction cost matters.
func ScaledWindow(tr *trace.Trace) int64 {
	ws := int64(500)
	if ws > tr.Horizon {
		ws = tr.Horizon
	}
	return ws
}

func analysisN(n int) *trace.Analysis {
	tr := traceN(n)
	a, err := trace.Analyze(tr, analysisWindow)
	if err != nil {
		panic(fmt.Sprintf("benchprobs: %v", err))
	}
	return a
}

const analysisWindow = 400

func traceN(n int) *trace.Trace {
	const horizon = 4000
	rng := rand.New(rand.NewSource(int64(n) * 7919))
	tr := &trace.Trace{NumReceivers: n, NumSenders: 1, Horizon: horizon}
	for r := 0; r < n; r++ {
		// Each receiver bursts once per period; periods and phases are
		// spread so windows see varied pairings and some hot spots.
		period := int64(400 + 25*(r%5))
		phase := int64((r * 137) % 400)
		burst := int64(100 + 12*(r%4) + rng.Intn(8))
		for s := phase; s < horizon; s += period {
			l := burst
			if s+l > horizon {
				l = horizon - s
			}
			if l <= 0 {
				continue
			}
			tr.Events = append(tr.Events, trace.Event{Start: s, Len: l, Receiver: r})
		}
	}
	return tr
}

// Analysis128 returns the window analysis of the 128-receiver
// production-scale instance (see analysisLarge). It is the smallest of
// the large set and the one the solver benchmarks pin to audited
// optimality under the default node budget.
func Analysis128() *trace.Analysis {
	return analysisLarge(128)
}

// Analysis256 is the 256-receiver variant of analysisLarge.
func Analysis256() *trace.Analysis {
	return analysisLarge(256)
}

// Analysis512 is the 512-receiver variant of analysisLarge — the upper
// end of the application-specific NoC scale the solver targets, and
// well past the 64-vertex limit of the old single-word clique bound.
func Analysis512() *trace.Analysis {
	return analysisLarge(512)
}

// analysisLarge builds the production-scale instances: n receivers in
// three phase classes (offsets 0/130/260 inside each 400-cycle window)
// bursting 121–128 cycles per window. Same-class pairs overlap by more
// than the 30% conflict threshold, so every class is a conflict clique
// of ~n/3 receivers — past 64 vertices the exact multi-word clique
// bound is what proves the minimal bus count outright. Cross-class
// pairs never overlap (130 ≥ max burst), so the aggregate-overlap
// matrix is block-diagonal and the optimal binding objective is
// exactly zero: a correct solver settles these instances through its
// bounds rather than through search, which is the point — they verify
// that the bounds, the conflict machinery and the binding proof all
// scale, and any regression that breaks a bound turns them from
// milliseconds into an exponential search.
func analysisLarge(n int) *trace.Analysis {
	const horizon = 4000
	rng := rand.New(rand.NewSource(int64(n) * 104729))
	tr := &trace.Trace{NumReceivers: n, NumSenders: 1, Horizon: horizon}
	for r := 0; r < n; r++ {
		off := int64((r % 3) * 130)
		for w := int64(0); w < horizon/analysisWindow; w++ {
			l := int64(121 + rng.Intn(8))
			tr.Events = append(tr.Events, trace.Event{Start: w*analysisWindow + off, Len: l, Receiver: r})
		}
	}
	a, err := trace.Analyze(tr, analysisWindow)
	if err != nil {
		panic(fmt.Sprintf("benchprobs: %v", err))
	}
	return a
}

// PerturbTrace returns a copy of tr with roughly frac of its events'
// burst lengths jittered by a few cycles — the "yesterday's trace,
// today's firmware" scenario the warm re-solve benchmarks model. The
// perturbation is deterministic in seed, structurally valid (lengths
// stay positive and inside the horizon), and proportional: frac 0.01
// touches ~1% of events, so the window analysis of the result differs
// from the original's in a correspondingly small number of cells.
func PerturbTrace(tr *trace.Trace, frac float64, seed int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	out := &trace.Trace{
		NumReceivers: tr.NumReceivers,
		NumSenders:   tr.NumSenders,
		Horizon:      tr.Horizon,
		Events:       append([]trace.Event(nil), tr.Events...),
	}
	for i := range out.Events {
		if rng.Float64() >= frac {
			continue
		}
		ev := &out.Events[i]
		ev.Len += int64(rng.Intn(9) - 4) // ±4 cycles
		if ev.Len < 1 {
			ev.Len = 1
		}
		if ev.Start+ev.Len > out.Horizon {
			ev.Len = out.Horizon - ev.Start
		}
		if ev.Len < 1 {
			ev.Len = 1
		}
	}
	return out
}

// AnalysisWindow is the window size behind Analysis8/12/32, exported
// so perturbed variants of those instances can be re-analyzed under
// identical options (a cache key requirement).
const AnalysisWindow = analysisWindow

// DeltaTrace32 is the 32-receiver instance of the warm re-solve
// (delta) benchmarks: uniform light traffic — every receiver busy
// ~45 cycles per 400-cycle window at staggered offsets — chosen so the
// analytic lower bound meets the optimum (bandwidth needs ceil(32·45
// /400) = 4 buses, and with 8 receivers per bus the packing fits).
// A warm solve that revalidates a cached 4-bus binding therefore needs
// zero feasibility probes, while a cold solve must binary-search the
// full [4, 32] range through several much larger MILP relaxations;
// the gap between those two is exactly what the delta benchmarks pin.
// Small PerturbTrace jitters keep both the bound and the cached
// binding's validity intact, so the instance warm-starts until the
// delta budget cuts reuse off.
func DeltaTrace32() *trace.Trace {
	const (
		n       = 32
		horizon = 4000
	)
	rng := rand.New(rand.NewSource(n * 7717))
	tr := &trace.Trace{NumReceivers: n, NumSenders: 1, Horizon: horizon}
	for r := 0; r < n; r++ {
		off := int64((r * 12) % 350)
		for w := int64(0); w < horizon/analysisWindow; w++ {
			l := int64(44 + rng.Intn(4))
			tr.Events = append(tr.Events, trace.Event{Start: w*analysisWindow + off, Len: l, Receiver: r})
		}
	}
	return tr
}

// Package benchprobs builds deterministic solver benchmark instances.
// They are shared by the in-tree `go test -bench` microbenchmarks and
// the cmd/solverbench runner that writes BENCH_solver.json, so both
// always measure the same problems.
//
// The package deliberately depends only on internal/trace: benchmark
// code living inside internal/core (and the solverbench command) can
// import it without an import cycle.
package benchprobs

import (
	"fmt"
	"math/rand"

	"repro/internal/trace"
)

// Analysis32 returns the window analysis of a synthetic trace with 32
// receivers — the STbus architectural maximum and the largest
// feasibility MILP the crossbar methodology ever formulates. The
// traffic is staggered DMA-style bursts with a deterministic layout:
// heavy enough that several buses are needed, light enough that the
// instance stays feasible well below 32 buses.
func Analysis32() *trace.Analysis {
	return analysisN(32)
}

// Analysis12 is a mid-size (12-receiver) variant used for the
// feasibility before/after comparison: unlike Analysis32 it is small
// enough for the legacy cold-solve path to finish.
func Analysis12() *trace.Analysis {
	return analysisN(12)
}

// Analysis8 is the small variant used for the binding (optimize-mode)
// benchmarks: the exact binding MILP of Eq. 9–11 couples every bus pair
// through the shared max-overlap variable and is far more expensive per
// bus count than the feasibility probe, so it gets the smallest
// instance.
func Analysis8() *trace.Analysis {
	return analysisN(8)
}

func analysisN(n int) *trace.Analysis {
	const (
		horizon = 4000
		window  = 400
	)
	rng := rand.New(rand.NewSource(int64(n) * 7919))
	tr := &trace.Trace{NumReceivers: n, NumSenders: 1, Horizon: horizon}
	for r := 0; r < n; r++ {
		// Each receiver bursts once per period; periods and phases are
		// spread so windows see varied pairings and some hot spots.
		period := int64(400 + 25*(r%5))
		phase := int64((r * 137) % 400)
		burst := int64(100 + 12*(r%4) + rng.Intn(8))
		for s := phase; s < horizon; s += period {
			l := burst
			if s+l > horizon {
				l = horizon - s
			}
			if l <= 0 {
				continue
			}
			tr.Events = append(tr.Events, trace.Event{Start: s, Len: l, Receiver: r})
		}
	}
	a, err := trace.Analyze(tr, window)
	if err != nil {
		panic(fmt.Sprintf("benchprobs: %v", err))
	}
	return a
}

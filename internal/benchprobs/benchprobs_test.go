package benchprobs

import (
	"bytes"
	"testing"

	"repro/internal/trace"
)

// TestWriteScaledV2MatchesScaledTrace pins the streaming generator to
// the in-memory one: same seed, same draws, same event sequence. Only
// the horizon may differ (worst-case bound vs observed maximum).
func TestWriteScaledV2MatchesScaledTrace(t *testing.T) {
	for _, events := range []int{0, 1, 7, 10_000} {
		want := ScaledTrace(16, events)
		var buf bytes.Buffer
		horizon, err := WriteScaledV2(&buf, 16, events)
		if err != nil {
			t.Fatalf("events=%d: WriteScaledV2: %v", events, err)
		}
		if horizon < want.Horizon {
			t.Fatalf("events=%d: streamed horizon %d below observed %d", events, horizon, want.Horizon)
		}
		got, err := trace.ReadBinary(&buf)
		if err != nil {
			t.Fatalf("events=%d: ReadBinary: %v", events, err)
		}
		if got.NumReceivers != want.NumReceivers || got.NumSenders != want.NumSenders {
			t.Fatalf("events=%d: core counts %d/%d, want %d/%d",
				events, got.NumReceivers, got.NumSenders, want.NumReceivers, want.NumSenders)
		}
		if got.Horizon != horizon {
			t.Fatalf("events=%d: decoded horizon %d, want %d", events, got.Horizon, horizon)
		}
		if len(got.Events) != len(want.Events) {
			t.Fatalf("events=%d: decoded %d events, want %d", events, len(got.Events), len(want.Events))
		}
		for k := range got.Events {
			if got.Events[k] != want.Events[k] {
				t.Fatalf("events=%d: event %d = %+v, want %+v", events, k, got.Events[k], want.Events[k])
			}
		}
	}
}

package ds

import "fmt"

// Int64Matrix is a dense rows×cols matrix of int64, stored row-major.
// It backs the per-window communication and overlap tables of the
// traffic analysis.
type Int64Matrix struct {
	Rows, Cols int
	data       []int64
}

// NewInt64Matrix allocates a zeroed rows×cols matrix.
func NewInt64Matrix(rows, cols int) *Int64Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("ds: invalid matrix shape %dx%d", rows, cols))
	}
	return &Int64Matrix{Rows: rows, Cols: cols, data: make([]int64, rows*cols)}
}

// At returns the element at (r, c).
func (m *Int64Matrix) At(r, c int) int64 { return m.data[r*m.Cols+c] }

// Set stores v at (r, c).
func (m *Int64Matrix) Set(r, c int, v int64) { m.data[r*m.Cols+c] = v }

// AddAt adds v to the element at (r, c).
func (m *Int64Matrix) AddAt(r, c int, v int64) { m.data[r*m.Cols+c] += v }

// Row returns a view of row r. The slice aliases the matrix storage.
func (m *Int64Matrix) Row(r int) []int64 { return m.data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of the matrix.
func (m *Int64Matrix) Clone() *Int64Matrix {
	out := NewInt64Matrix(m.Rows, m.Cols)
	copy(out.data, m.data)
	return out
}

// MaxRowSum returns the largest row sum and the row achieving it.
func (m *Int64Matrix) MaxRowSum() (row int, sum int64) {
	row = -1
	for r := 0; r < m.Rows; r++ {
		var s int64
		for _, v := range m.Row(r) {
			s += v
		}
		if row == -1 || s > sum {
			row, sum = r, s
		}
	}
	return row, sum
}

// SymMatrix is a symmetric n×n matrix of int64 with a zero diagonal,
// storing only the strict upper triangle. It backs the aggregate
// overlap matrix OM of the paper (Eq. 1).
type SymMatrix struct {
	N    int
	data []int64
}

// NewSymMatrix allocates a zeroed n×n symmetric matrix.
func NewSymMatrix(n int) *SymMatrix {
	return &SymMatrix{N: n, data: make([]int64, n*(n-1)/2)}
}

func (m *SymMatrix) index(i, j int) int {
	if i > j {
		i, j = j, i
	}
	// Strict upper triangle, row-major: row i holds N-1-i entries.
	return i*(2*m.N-i-1)/2 + (j - i - 1)
}

// At returns the element at (i, j); the diagonal is always zero.
func (m *SymMatrix) At(i, j int) int64 {
	if i == j {
		return 0
	}
	return m.data[m.index(i, j)]
}

// Set stores v at (i, j) and (j, i). Setting the diagonal panics.
func (m *SymMatrix) Set(i, j int, v int64) {
	if i == j {
		panic("ds: SymMatrix diagonal is fixed at zero")
	}
	m.data[m.index(i, j)] = v
}

// AddAt adds v at (i, j)/(j, i).
func (m *SymMatrix) AddAt(i, j int, v int64) {
	if i == j {
		panic("ds: SymMatrix diagonal is fixed at zero")
	}
	m.data[m.index(i, j)] += v
}

// Clone returns a deep copy.
func (m *SymMatrix) Clone() *SymMatrix {
	out := NewSymMatrix(m.N)
	copy(out.data, m.data)
	return out
}

// Max returns the largest element value.
func (m *SymMatrix) Max() int64 {
	var best int64
	for _, v := range m.data {
		if v > best {
			best = v
		}
	}
	return best
}

// Total returns the sum over all unordered pairs.
func (m *SymMatrix) Total() int64 {
	var total int64
	for _, v := range m.data {
		total += v
	}
	return total
}

package ds

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalLen(t *testing.T) {
	cases := []struct {
		iv   Interval
		want int64
	}{
		{Interval{0, 10}, 10},
		{Interval{5, 5}, 0},
		{Interval{7, 3}, 0},
		{Interval{-4, 4}, 8},
	}
	for _, c := range cases {
		if got := c.iv.Len(); got != c.want {
			t.Errorf("%v.Len() = %d, want %d", c.iv, got, c.want)
		}
	}
}

func TestIntervalIntersect(t *testing.T) {
	cases := []struct {
		a, b Interval
		want int64
	}{
		{Interval{0, 10}, Interval{5, 15}, 5},
		{Interval{0, 10}, Interval{10, 20}, 0},
		{Interval{0, 10}, Interval{2, 4}, 2},
		{Interval{3, 7}, Interval{0, 20}, 4},
		{Interval{0, 5}, Interval{8, 9}, 0},
	}
	for _, c := range cases {
		if got := c.a.Intersect(c.b).Len(); got != c.want {
			t.Errorf("%v∩%v len = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.b.Intersect(c.a).Len(); got != c.want {
			t.Errorf("intersect not symmetric for %v,%v", c.a, c.b)
		}
	}
}

func TestIntervalSetAddMerges(t *testing.T) {
	s := NewIntervalSet()
	s.Add(Interval{0, 5})
	s.Add(Interval{10, 15})
	s.Add(Interval{4, 11}) // bridges both
	if s.Count() != 1 {
		t.Fatalf("expected 1 merged interval, got %d: %v", s.Count(), s.Intervals())
	}
	if got := s.Len(); got != 15 {
		t.Errorf("Len = %d, want 15", got)
	}
}

func TestIntervalSetAddAdjacent(t *testing.T) {
	s := NewIntervalSet()
	s.Add(Interval{0, 5})
	s.Add(Interval{5, 10}) // adjacent: should merge
	if s.Count() != 1 {
		t.Fatalf("adjacent intervals not merged: %v", s.Intervals())
	}
	if s.Len() != 10 {
		t.Errorf("Len = %d, want 10", s.Len())
	}
}

func TestIntervalSetAppendFastPath(t *testing.T) {
	s := NewIntervalSet()
	for i := int64(0); i < 100; i++ {
		s.Add(Interval{i * 10, i*10 + 3})
	}
	if s.Count() != 100 {
		t.Fatalf("Count = %d, want 100", s.Count())
	}
	if s.Len() != 300 {
		t.Errorf("Len = %d, want 300", s.Len())
	}
}

func TestIntervalSetEmptyAddIgnored(t *testing.T) {
	s := NewIntervalSet()
	s.Add(Interval{5, 5})
	s.Add(Interval{9, 2})
	if s.Count() != 0 || s.Len() != 0 {
		t.Errorf("empty adds should be ignored, got %v", s.Intervals())
	}
}

func TestIntervalSetClipLen(t *testing.T) {
	s := NewIntervalSet(Interval{0, 10}, Interval{20, 30}, Interval{40, 50})
	cases := []struct {
		lo, hi, want int64
	}{
		{0, 60, 30},
		{5, 25, 10},
		{10, 20, 0},
		{25, 45, 10},
		{-10, 0, 0},
		{50, 100, 0},
		{22, 28, 6},
	}
	for _, c := range cases {
		if got := s.ClipLen(c.lo, c.hi); got != c.want {
			t.Errorf("ClipLen(%d,%d) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

func TestIntervalSetIntersectLen(t *testing.T) {
	a := NewIntervalSet(Interval{0, 10}, Interval{20, 30})
	b := NewIntervalSet(Interval{5, 25})
	if got := a.IntersectLen(b); got != 10 {
		t.Errorf("IntersectLen = %d, want 10", got)
	}
	if got := b.IntersectLen(a); got != 10 {
		t.Errorf("IntersectLen not symmetric: %d", got)
	}
	empty := NewIntervalSet()
	if got := a.IntersectLen(empty); got != 0 {
		t.Errorf("IntersectLen with empty = %d, want 0", got)
	}
}

func TestIntervalSetIntersection(t *testing.T) {
	a := NewIntervalSet(Interval{0, 10}, Interval{20, 30})
	b := NewIntervalSet(Interval{5, 25}, Interval{28, 40})
	got := a.Intersection(b)
	want := []Interval{{5, 10}, {20, 25}, {28, 30}}
	if got.Count() != len(want) {
		t.Fatalf("Intersection = %v, want %v", got.Intervals(), want)
	}
	for i, iv := range got.Intervals() {
		if iv != want[i] {
			t.Errorf("Intersection[%d] = %v, want %v", i, iv, want[i])
		}
	}
	if got.Len() != a.IntersectLen(b) {
		t.Errorf("Intersection.Len=%d disagrees with IntersectLen=%d", got.Len(), a.IntersectLen(b))
	}
}

func TestIntervalSetContains(t *testing.T) {
	s := NewIntervalSet(Interval{10, 20})
	for _, c := range []struct {
		cy   int64
		want bool
	}{{9, false}, {10, true}, {19, true}, {20, false}} {
		if got := s.Contains(c.cy); got != c.want {
			t.Errorf("Contains(%d) = %v, want %v", c.cy, got, c.want)
		}
	}
}

func TestIntervalSetBounds(t *testing.T) {
	if b := NewIntervalSet().Bounds(); !b.Empty() {
		t.Errorf("empty set bounds = %v, want empty", b)
	}
	s := NewIntervalSet(Interval{5, 10}, Interval{50, 60})
	if b := s.Bounds(); b != (Interval{5, 60}) {
		t.Errorf("Bounds = %v, want [5,60)", b)
	}
}

// reference is a brute-force cycle-set model used to validate IntervalSet.
type reference map[int64]bool

func (r reference) add(iv Interval) {
	for c := iv.Start; c < iv.End; c++ {
		r[c] = true
	}
}

func (r reference) len() int64 { return int64(len(r)) }

func (r reference) intersectLen(o reference) int64 {
	var n int64
	for c := range r {
		if o[c] {
			n++
		}
	}
	return n
}

// randomSet builds a matching (IntervalSet, reference) pair.
func randomSet(rng *rand.Rand) (*IntervalSet, reference) {
	s := NewIntervalSet()
	ref := reference{}
	n := rng.Intn(30)
	for i := 0; i < n; i++ {
		start := int64(rng.Intn(200))
		iv := Interval{start, start + int64(rng.Intn(20))}
		s.Add(iv)
		ref.add(iv)
	}
	return s, ref
}

func TestIntervalSetQuickAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, refA := randomSet(r)
		b, refB := randomSet(r)
		if a.Len() != refA.len() {
			t.Logf("Len mismatch: %d vs %d", a.Len(), refA.len())
			return false
		}
		if a.IntersectLen(b) != refA.intersectLen(refB) {
			t.Logf("IntersectLen mismatch")
			return false
		}
		// Invariants: sorted, disjoint, non-adjacent.
		ivs := a.Intervals()
		for i := 1; i < len(ivs); i++ {
			if ivs[i-1].End >= ivs[i].Start {
				t.Logf("intervals not disjoint/sorted: %v", ivs)
				return false
			}
		}
		// ClipLen agrees with reference on random windows.
		lo := int64(rng.Intn(250)) - 10
		hi := lo + int64(rng.Intn(100))
		var want int64
		for c := lo; c < hi; c++ {
			if refA[c] {
				want++
			}
		}
		if a.ClipLen(lo, hi) != want {
			t.Logf("ClipLen(%d,%d) mismatch: %d vs %d", lo, hi, a.ClipLen(lo, hi), want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalSetClone(t *testing.T) {
	a := NewIntervalSet(Interval{0, 10})
	b := a.Clone()
	b.Add(Interval{100, 110})
	if a.Len() != 10 {
		t.Errorf("Clone is not independent: original Len=%d", a.Len())
	}
	if b.Len() != 20 {
		t.Errorf("clone Len=%d, want 20", b.Len())
	}
}

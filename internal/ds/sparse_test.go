package ds

import (
	"reflect"
	"testing"
)

func TestSparseAppendAt(t *testing.T) {
	m := NewSparseInt64Matrix(3, 10)
	m.Append(0, 2, 5)
	m.Append(0, 2, 3) // same column accumulates
	m.Append(0, 7, 1)
	m.Append(2, 0, 9)
	m.Append(1, 4, 0) // zero append is dropped

	if got := m.At(0, 2); got != 8 {
		t.Errorf("At(0,2) = %d, want 8", got)
	}
	if got := m.At(0, 7); got != 1 {
		t.Errorf("At(0,7) = %d, want 1", got)
	}
	if got := m.At(0, 3); got != 0 {
		t.Errorf("At(0,3) = %d, want 0", got)
	}
	if got := m.At(1, 4); got != 0 {
		t.Errorf("zero append stored: At(1,4) = %d", got)
	}
	if got := m.At(2, 0); got != 9 {
		t.Errorf("At(2,0) = %d, want 9", got)
	}
	if got := m.NNZ(); got != 3 {
		t.Errorf("NNZ = %d, want 3", got)
	}
	if got := m.RowSum(0); got != 9 {
		t.Errorf("RowSum(0) = %d, want 9", got)
	}
	wantFill := 3.0 / 30.0
	if got := m.FillRatio(); got != wantFill {
		t.Errorf("FillRatio = %g, want %g", got, wantFill)
	}
}

func TestSparseAppendOutOfOrderPanics(t *testing.T) {
	m := NewSparseInt64Matrix(1, 10)
	m.Append(0, 5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("decreasing-column append did not panic")
		}
	}()
	m.Append(0, 4, 1)
}

func TestSparseColumnRangePanics(t *testing.T) {
	m := NewSparseInt64Matrix(1, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range column did not panic")
		}
	}()
	m.Append(0, 4, 1)
}

// TestSparseCompactCanonical: two matrices with the same content but
// different build histories (different interleavings, accumulation
// patterns, arena states) are deeply equal after Compact.
func TestSparseCompactCanonical(t *testing.T) {
	a := NewSparseInt64Matrix(4, 100)
	b := NewSparseInt64Matrix(4, 100)

	// a: row-major bulk fill; b: interleaved with accumulation.
	for r := 0; r < 4; r++ {
		for c := 0; c < 100; c += 3 {
			a.Append(r, c, int64(r*1000+c+7))
		}
	}
	for c := 0; c < 100; c += 3 {
		for r := 0; r < 4; r++ {
			b.Append(r, c, int64(r*1000+c+6))
			b.Append(r, c, 1)
		}
	}
	a.Compact()
	b.Compact()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal-content matrices differ after Compact")
	}

	// Content survives compaction.
	if got := a.At(2, 99); got != 2106 {
		t.Errorf("At(2,99) = %d, want 2106", got)
	}
	if got := a.At(2, 98); got != 0 {
		t.Errorf("At(2,98) = %d, want 0", got)
	}
}

func TestSparseGrowthAcrossArenaBlocks(t *testing.T) {
	// Grow many rows in parallel so rows repeatedly relocate across
	// arena blocks; every stored value must survive.
	const rows, cols = 64, 5000
	m := NewSparseInt64Matrix(rows, cols)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			m.Append(r, c, int64(r+1)*int64(c+1))
		}
	}
	m.Compact()
	if m.NNZ() != rows*cols {
		t.Fatalf("NNZ = %d, want %d", m.NNZ(), rows*cols)
	}
	for _, rc := range [][2]int{{0, 0}, {63, 4999}, {17, 2500}, {40, 1}} {
		want := int64(rc[0]+1) * int64(rc[1]+1)
		if got := m.At(rc[0], rc[1]); got != want {
			t.Errorf("At(%d,%d) = %d, want %d", rc[0], rc[1], got, want)
		}
	}
}

func TestSparseClone(t *testing.T) {
	m := NewSparseInt64Matrix(2, 8)
	m.Append(0, 1, 3)
	m.Append(1, 7, 4)
	cl := m.Clone()
	m.Append(1, 7, 10)
	if got := cl.At(1, 7); got != 4 {
		t.Errorf("clone mutated: At(1,7) = %d, want 4", got)
	}
	if cl.NNZ() != 2 {
		t.Errorf("clone NNZ = %d, want 2", cl.NNZ())
	}
}

func TestSparseEmptyShapes(t *testing.T) {
	m := NewSparseInt64Matrix(0, 5)
	if m.FillRatio() != 0 || m.NNZ() != 0 {
		t.Error("empty matrix not empty")
	}
	m.Compact()
	n := NewSparseInt64Matrix(3, 0)
	n.Compact()
	if n.At(2, 0) != 0 {
		// At on a zero-column matrix is out of contract, but rows exist.
		t.Error("unexpected value in zero-column matrix")
	}
}

package ds

import "math/bits"

// Bitset is a fixed-capacity set of small non-negative integers, used to
// track assignment state during branch-and-bound search.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an empty bitset able to hold values in [0, n).
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Cap returns the capacity the set was created with.
func (b *Bitset) Cap() int { return b.n }

// Set adds i to the set.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << uint(i&63) }

// Clear removes i from the set.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << uint(i&63) }

// Has reports whether i is in the set.
func (b *Bitset) Has(i int) bool { return b.words[i>>6]&(1<<uint(i&63)) != 0 }

// Count returns the number of elements in the set.
func (b *Bitset) Count() int {
	total := 0
	for _, w := range b.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// Clone returns a deep copy of the set.
func (b *Bitset) Clone() *Bitset {
	out := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(out.words, b.words)
	return out
}

// Reset removes all elements.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// IntersectsWith reports whether the two sets share any element.
func (b *Bitset) IntersectsWith(other *Bitset) bool {
	n := len(b.words)
	if len(other.words) < n {
		n = len(other.words)
	}
	for i := 0; i < n; i++ {
		if b.words[i]&other.words[i] != 0 {
			return true
		}
	}
	return false
}

// ForEach calls fn for every element in ascending order.
func (b *Bitset) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			fn(wi*64 + bit)
			w &= w - 1
		}
	}
}

package ds

import (
	"testing"
	"testing/quick"
)

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	if b.Cap() != 130 {
		t.Errorf("Cap = %d, want 130", b.Cap())
	}
	for _, i := range []int{0, 63, 64, 127, 129} {
		b.Set(i)
	}
	for _, i := range []int{0, 63, 64, 127, 129} {
		if !b.Has(i) {
			t.Errorf("Has(%d) = false after Set", i)
		}
	}
	if b.Has(1) || b.Has(128) {
		t.Error("Has reports elements never set")
	}
	if got := b.Count(); got != 5 {
		t.Errorf("Count = %d, want 5", got)
	}
	b.Clear(64)
	if b.Has(64) {
		t.Error("Has(64) = true after Clear")
	}
	if got := b.Count(); got != 4 {
		t.Errorf("Count after Clear = %d, want 4", got)
	}
}

func TestBitsetCloneIndependent(t *testing.T) {
	a := NewBitset(10)
	a.Set(3)
	b := a.Clone()
	b.Set(7)
	if a.Has(7) {
		t.Error("Clone shares storage with original")
	}
	if !b.Has(3) {
		t.Error("Clone lost element 3")
	}
}

func TestBitsetReset(t *testing.T) {
	b := NewBitset(100)
	for i := 0; i < 100; i += 3 {
		b.Set(i)
	}
	b.Reset()
	if b.Count() != 0 {
		t.Errorf("Count after Reset = %d, want 0", b.Count())
	}
}

func TestBitsetIntersectsWith(t *testing.T) {
	a, b := NewBitset(200), NewBitset(200)
	a.Set(150)
	b.Set(151)
	if a.IntersectsWith(b) {
		t.Error("disjoint sets report intersection")
	}
	b.Set(150)
	if !a.IntersectsWith(b) {
		t.Error("intersecting sets report disjoint")
	}
}

func TestBitsetForEachOrdered(t *testing.T) {
	b := NewBitset(300)
	want := []int{2, 64, 65, 200, 299}
	for _, i := range want {
		b.Set(i)
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order: got %v, want %v", got, want)
		}
	}
}

func TestBitsetQuickAgainstMap(t *testing.T) {
	f := func(ops []uint16) bool {
		b := NewBitset(256)
		ref := map[int]bool{}
		for _, op := range ops {
			i := int(op % 256)
			if op&0x8000 != 0 {
				b.Clear(i)
				delete(ref, i)
			} else {
				b.Set(i)
				ref[i] = true
			}
		}
		if b.Count() != len(ref) {
			return false
		}
		for i := 0; i < 256; i++ {
			if b.Has(i) != ref[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

package ds

// SymMatrixF is the float64 counterpart of SymMatrix: a symmetric n×n
// matrix with a zero diagonal storing only the strict upper triangle.
type SymMatrixF struct {
	N    int
	data []float64
}

// NewSymMatrixF allocates a zeroed n×n symmetric float matrix.
func NewSymMatrixF(n int) *SymMatrixF {
	return &SymMatrixF{N: n, data: make([]float64, n*(n-1)/2)}
}

func (m *SymMatrixF) index(i, j int) int {
	if i > j {
		i, j = j, i
	}
	return i*(2*m.N-i-1)/2 + (j - i - 1)
}

// At returns the element at (i, j); the diagonal is always zero.
func (m *SymMatrixF) At(i, j int) float64 {
	if i == j {
		return 0
	}
	return m.data[m.index(i, j)]
}

// Set stores v at (i, j) and (j, i). Setting the diagonal panics.
func (m *SymMatrixF) Set(i, j int, v float64) {
	if i == j {
		panic("ds: SymMatrixF diagonal is fixed at zero")
	}
	m.data[m.index(i, j)] = v
}

// Max returns the largest element value.
func (m *SymMatrixF) Max() float64 {
	var best float64
	for _, v := range m.data {
		if v > best {
			best = v
		}
	}
	return best
}

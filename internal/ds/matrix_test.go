package ds

import (
	"testing"
	"testing/quick"
)

func TestInt64MatrixBasics(t *testing.T) {
	m := NewInt64Matrix(3, 4)
	m.Set(0, 0, 5)
	m.Set(2, 3, 7)
	m.AddAt(2, 3, 3)
	if got := m.At(0, 0); got != 5 {
		t.Errorf("At(0,0) = %d, want 5", got)
	}
	if got := m.At(2, 3); got != 10 {
		t.Errorf("At(2,3) = %d, want 10", got)
	}
	if got := m.At(1, 1); got != 0 {
		t.Errorf("At(1,1) = %d, want 0", got)
	}
}

func TestInt64MatrixRowAliases(t *testing.T) {
	m := NewInt64Matrix(2, 3)
	row := m.Row(1)
	row[2] = 42
	if got := m.At(1, 2); got != 42 {
		t.Errorf("Row does not alias storage: At(1,2) = %d", got)
	}
}

func TestInt64MatrixMaxRowSum(t *testing.T) {
	m := NewInt64Matrix(3, 2)
	m.Set(0, 0, 1)
	m.Set(1, 0, 5)
	m.Set(1, 1, 5)
	m.Set(2, 1, 3)
	row, sum := m.MaxRowSum()
	if row != 1 || sum != 10 {
		t.Errorf("MaxRowSum = (%d, %d), want (1, 10)", row, sum)
	}
}

func TestInt64MatrixClone(t *testing.T) {
	m := NewInt64Matrix(2, 2)
	m.Set(0, 1, 9)
	c := m.Clone()
	c.Set(0, 1, 1)
	if m.At(0, 1) != 9 {
		t.Error("Clone shares storage")
	}
}

func TestNewInt64MatrixPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative shape")
		}
	}()
	NewInt64Matrix(-1, 3)
}

func TestSymMatrixSymmetry(t *testing.T) {
	m := NewSymMatrix(5)
	m.Set(1, 3, 7)
	if got := m.At(3, 1); got != 7 {
		t.Errorf("At(3,1) = %d, want 7 (symmetry)", got)
	}
	if got := m.At(2, 2); got != 0 {
		t.Errorf("diagonal At(2,2) = %d, want 0", got)
	}
	m.AddAt(3, 1, 3)
	if got := m.At(1, 3); got != 10 {
		t.Errorf("AddAt not reflected: At(1,3) = %d, want 10", got)
	}
}

func TestSymMatrixDiagonalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic setting diagonal")
		}
	}()
	NewSymMatrix(3).Set(1, 1, 5)
}

func TestSymMatrixMaxTotal(t *testing.T) {
	m := NewSymMatrix(4)
	m.Set(0, 1, 3)
	m.Set(2, 3, 9)
	m.Set(0, 3, 1)
	if got := m.Max(); got != 9 {
		t.Errorf("Max = %d, want 9", got)
	}
	if got := m.Total(); got != 13 {
		t.Errorf("Total = %d, want 13", got)
	}
}

func TestSymMatrixQuickIndexBijection(t *testing.T) {
	// Property: every unordered pair maps to a distinct storage slot.
	f := func(n8 uint8) bool {
		n := int(n8%20) + 2
		m := NewSymMatrix(n)
		seen := map[int]bool{}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				idx := m.index(i, j)
				if idx < 0 || idx >= len(m.data) || seen[idx] {
					return false
				}
				seen[idx] = true
			}
		}
		return len(seen) == n*(n-1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSymMatrixClone(t *testing.T) {
	m := NewSymMatrix(3)
	m.Set(0, 2, 4)
	c := m.Clone()
	c.Set(0, 2, 1)
	if m.At(0, 2) != 4 {
		t.Error("Clone shares storage")
	}
}

func TestSymMatrixFBasics(t *testing.T) {
	m := NewSymMatrixF(4)
	m.Set(0, 3, 0.5)
	if got := m.At(3, 0); got != 0.5 {
		t.Errorf("At(3,0) = %f, want 0.5 (symmetry)", got)
	}
	if got := m.At(2, 2); got != 0 {
		t.Errorf("diagonal = %f, want 0", got)
	}
	m.Set(1, 2, 0.9)
	if got := m.Max(); got != 0.9 {
		t.Errorf("Max = %f, want 0.9", got)
	}
}

func TestSymMatrixFDiagonalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic setting diagonal")
		}
	}()
	NewSymMatrixF(3).Set(2, 2, 1)
}

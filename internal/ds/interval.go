// Package ds provides small data structures shared across the repository:
// interval lists for cycle-accurate occupancy tracking, bitsets for
// branch-and-bound search state, and dense matrices for traffic analysis.
package ds

import (
	"fmt"
	"sort"
)

// Interval is a half-open cycle range [Start, End).
type Interval struct {
	Start, End int64
}

// Len returns the number of cycles covered by the interval.
func (iv Interval) Len() int64 {
	if iv.End <= iv.Start {
		return 0
	}
	return iv.End - iv.Start
}

// Empty reports whether the interval covers no cycles.
func (iv Interval) Empty() bool { return iv.End <= iv.Start }

// Intersect returns the overlap of two intervals (possibly empty).
func (iv Interval) Intersect(other Interval) Interval {
	lo, hi := iv.Start, iv.End
	if other.Start > lo {
		lo = other.Start
	}
	if other.End < hi {
		hi = other.End
	}
	if hi < lo {
		hi = lo
	}
	return Interval{lo, hi}
}

func (iv Interval) String() string {
	return fmt.Sprintf("[%d,%d)", iv.Start, iv.End)
}

// IntervalSet is a set of cycles represented as sorted, disjoint,
// non-adjacent half-open intervals. The zero value is an empty set.
type IntervalSet struct {
	ivs []Interval
}

// NewIntervalSet builds a set from arbitrary intervals, merging overlaps.
func NewIntervalSet(ivs ...Interval) *IntervalSet {
	s := &IntervalSet{}
	for _, iv := range ivs {
		s.Add(iv)
	}
	return s
}

// Add inserts an interval, merging it with any intervals it touches.
// Empty intervals are ignored.
func (s *IntervalSet) Add(iv Interval) {
	if iv.Empty() {
		return
	}
	// Fast path: appending at or after the end, the common case when
	// recording a trace in increasing cycle order.
	if n := len(s.ivs); n == 0 || s.ivs[n-1].End < iv.Start {
		s.ivs = append(s.ivs, iv)
		return
	}
	if n := len(s.ivs); s.ivs[n-1].End == iv.Start {
		s.ivs[n-1].End = iv.End
		return
	}
	// General path: locate the first interval whose end reaches iv.Start.
	i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].End >= iv.Start })
	j := i
	lo, hi := iv.Start, iv.End
	for j < len(s.ivs) && s.ivs[j].Start <= hi {
		if s.ivs[j].Start < lo {
			lo = s.ivs[j].Start
		}
		if s.ivs[j].End > hi {
			hi = s.ivs[j].End
		}
		j++
	}
	merged := Interval{lo, hi}
	s.ivs = append(s.ivs[:i], append([]Interval{merged}, s.ivs[j:]...)...)
}

// Len returns the total number of cycles in the set.
func (s *IntervalSet) Len() int64 {
	var total int64
	for _, iv := range s.ivs {
		total += iv.Len()
	}
	return total
}

// Count returns the number of disjoint intervals in the set.
func (s *IntervalSet) Count() int { return len(s.ivs) }

// Intervals returns the underlying sorted, disjoint intervals.
// The returned slice must not be modified.
func (s *IntervalSet) Intervals() []Interval { return s.ivs }

// ClipLen returns the number of cycles of the set inside [lo, hi).
func (s *IntervalSet) ClipLen(lo, hi int64) int64 {
	if hi <= lo || len(s.ivs) == 0 {
		return 0
	}
	// First interval that might intersect [lo, hi).
	i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].End > lo })
	var total int64
	for ; i < len(s.ivs) && s.ivs[i].Start < hi; i++ {
		total += s.ivs[i].Intersect(Interval{lo, hi}).Len()
	}
	return total
}

// IntersectLen returns the number of cycles present in both sets.
func (s *IntervalSet) IntersectLen(other *IntervalSet) int64 {
	var total int64
	a, b := s.ivs, other.ivs
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ov := a[i].Intersect(b[j])
		total += ov.Len()
		if a[i].End < b[j].End {
			i++
		} else {
			j++
		}
	}
	return total
}

// Intersection returns a new set covering cycles present in both sets.
func (s *IntervalSet) Intersection(other *IntervalSet) *IntervalSet {
	out := &IntervalSet{}
	a, b := s.ivs, other.ivs
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ov := a[i].Intersect(b[j])
		if !ov.Empty() {
			out.Add(ov)
		}
		if a[i].End < b[j].End {
			i++
		} else {
			j++
		}
	}
	return out
}

// Contains reports whether the given cycle is in the set.
func (s *IntervalSet) Contains(cycle int64) bool {
	i := sort.Search(len(s.ivs), func(k int) bool { return s.ivs[k].End > cycle })
	return i < len(s.ivs) && s.ivs[i].Start <= cycle
}

// Clone returns a deep copy of the set.
func (s *IntervalSet) Clone() *IntervalSet {
	out := &IntervalSet{ivs: make([]Interval, len(s.ivs))}
	copy(out.ivs, s.ivs)
	return out
}

// Bounds returns the smallest interval covering the whole set, or an
// empty interval if the set is empty.
func (s *IntervalSet) Bounds() Interval {
	if len(s.ivs) == 0 {
		return Interval{}
	}
	return Interval{s.ivs[0].Start, s.ivs[len(s.ivs)-1].End}
}

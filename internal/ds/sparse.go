package ds

import (
	"fmt"
	"sort"
)

// SparseCell is one stored element of a SparseInt64Matrix: the column
// index and the value. Columns fit int32 because the trace analysis
// bounds window counts far below 2^31.
type SparseCell struct {
	Col int32
	Val int64
}

// SparseInt64Matrix is a rows×cols matrix of int64 storing only the
// nonzero elements, row by row in ascending column order (CSR-style:
// after Compact every row is a slice into one shared backing array).
// It backs the per-window overlap tables of the traffic analysis,
// which are mostly zero for realistic workloads: receivers that never
// overlap contribute empty rows, and bursty pairs touch few windows.
//
// Rows are built by appending cells in nondecreasing column order
// (Append), which is how both the sweep-line kernel and the legacy
// pairwise analysis produce them. During building, row storage is
// carved from shared arena blocks so that growing thousands of pair
// rows costs a handful of allocations instead of one per row per
// doubling.
type SparseInt64Matrix struct {
	Rows, Cols int
	rows       [][]SparseCell
	nnz        int

	// arena is the current block new row segments are carved from;
	// arenaBlock is the size of the next block to allocate. Both are
	// reset by Compact, after which the matrix is immutable in shape.
	arena      []SparseCell
	arenaBlock int
}

// sparseArenaStart and sparseArenaMax bound the arena block sizes: the
// first block is small so tiny matrices stay cheap, later blocks double
// up to the max so huge analyses stay at a handful of allocations.
const (
	sparseArenaStart = 256
	sparseArenaMax   = 1 << 16
)

// NewSparseInt64Matrix returns an empty rows×cols sparse matrix.
func NewSparseInt64Matrix(rows, cols int) *SparseInt64Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("ds: invalid matrix shape %dx%d", rows, cols))
	}
	return &SparseInt64Matrix{
		Rows:       rows,
		Cols:       cols,
		rows:       make([][]SparseCell, rows),
		arenaBlock: sparseArenaStart,
	}
}

// Append adds v to the element at (r, c). The column must be at or
// after the last column stored in row r; appending to the same column
// accumulates into the existing cell. Zero v appends are ignored so
// the stored structure holds nonzeros only.
//
// The same-column accumulate case is split out so it inlines: it is the
// hot path of the sweep kernel, which credits the same (pair, window)
// cell once per overlap interval — typically many times per cell.
func (m *SparseInt64Matrix) Append(r, c int, v int64) {
	if row := m.rows[r]; len(row) > 0 && int(row[len(row)-1].Col) == c {
		row[len(row)-1].Val += v
		return
	}
	m.appendNew(r, c, v)
}

// appendNew handles the Append cases beyond same-column accumulation:
// validation, zero dropping and cell creation (growing the row through
// the arena when full).
func (m *SparseInt64Matrix) appendNew(r, c int, v int64) {
	if c < 0 || c >= m.Cols {
		panic(fmt.Sprintf("ds: sparse column %d outside [0,%d)", c, m.Cols))
	}
	if v == 0 {
		return
	}
	row := m.rows[r]
	if n := len(row); n > 0 && int(row[n-1].Col) > c {
		panic(fmt.Sprintf("ds: sparse append to row %d column %d after column %d", r, c, row[n-1].Col))
	}
	if len(row) == cap(row) {
		row = m.growRow(row)
	}
	m.rows[r] = append(row, SparseCell{Col: int32(c), Val: v})
	m.nnz++
}

// growRow moves row into a fresh segment with quadrupled capacity,
// carved from the shared arena. The 4× factor keeps the amortized copy
// cost per cell at ~n/3 (vs ~n for doubling) — the dominant cost when a
// fine-windowed analysis appends millions of cells — while the
// abandoned segments stay transient: Compact repacks to exact size.
func (m *SparseInt64Matrix) growRow(row []SparseCell) []SparseCell {
	newCap := 4 * len(row)
	if newCap < 4 {
		newCap = 4
	}
	if len(m.arena) < newCap {
		block := m.arenaBlock
		if block < newCap {
			block = newCap
		}
		m.arena = make([]SparseCell, block)
		if m.arenaBlock < sparseArenaMax {
			m.arenaBlock *= 2
		}
	}
	seg := m.arena[:0:newCap]
	m.arena = m.arena[newCap:]
	return append(seg, row...)
}

// At returns the element at (r, c), zero when not stored.
func (m *SparseInt64Matrix) At(r, c int) int64 {
	row := m.rows[r]
	i := sort.Search(len(row), func(k int) bool { return int(row[k].Col) >= c })
	if i < len(row) && int(row[i].Col) == c {
		return row[i].Val
	}
	return 0
}

// RowCells returns the stored cells of row r in ascending column
// order. The slice aliases the matrix storage and must not be modified.
func (m *SparseInt64Matrix) RowCells(r int) []SparseCell { return m.rows[r] }

// RowSum returns the sum of row r's stored values.
func (m *SparseInt64Matrix) RowSum(r int) int64 {
	var s int64
	for _, c := range m.rows[r] {
		s += c.Val
	}
	return s
}

// NNZ returns the number of stored (nonzero) elements.
func (m *SparseInt64Matrix) NNZ() int { return m.nnz }

// FillRatio returns NNZ divided by the dense cell count (0 for an
// empty shape).
func (m *SparseInt64Matrix) FillRatio() float64 {
	if m.Rows == 0 || m.Cols == 0 {
		return 0
	}
	return float64(m.nnz) / (float64(m.Rows) * float64(m.Cols))
}

// Compact repacks every row into one exact-size backing array and
// releases the build arena, leaving the canonical CSR layout: memory
// is exactly the live cells, and two matrices with equal content are
// deeply equal regardless of their build histories.
func (m *SparseInt64Matrix) Compact() {
	backing := make([]SparseCell, 0, m.nnz)
	for r, row := range m.rows {
		start := len(backing)
		backing = append(backing, row...)
		m.rows[r] = backing[start:len(backing):len(backing)]
	}
	m.arena = nil
	m.arenaBlock = sparseArenaStart
}

// Clone returns a compacted deep copy.
func (m *SparseInt64Matrix) Clone() *SparseInt64Matrix {
	out := NewSparseInt64Matrix(m.Rows, m.Cols)
	out.nnz = m.nnz
	backing := make([]SparseCell, 0, m.nnz)
	for r, row := range m.rows {
		start := len(backing)
		backing = append(backing, row...)
		out.rows[r] = backing[start:len(backing):len(backing)]
	}
	return out
}

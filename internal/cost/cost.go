// Package cost provides analytic area and power estimates for STbus
// crossbar instantiations. The paper motivates minimizing crossbar
// size because "a smaller crossbar configuration results in reduction
// in number of communication components used (such as buses, arbiters,
// adapters, etc), design area and design power" (Section 1); this
// package turns component counts and simulated bus activity into those
// two figures of merit so the savings can be quantified per design.
//
// The models are deliberately simple, technology-normalized linear
// models — the standard first-order approach for interconnect
// estimation at this abstraction level: area is a weighted component
// count (an arbiter grows with its port count), dynamic power is
// proportional to bus-cycle activity and arbitration events, and
// leakage is proportional to area. Absolute units are arbitrary
// ("gate equivalents" and "energy units"); only ratios between
// configurations are meaningful, mirroring how the paper reports
// sizes as ratios.
package cost

import (
	"errors"

	"repro/internal/stbus"
)

// AreaModel weighs the structural components of a crossbar.
type AreaModel struct {
	// BusArea is the area of one bus (wiring + pipeline registers).
	BusArea float64
	// ArbiterPortArea is the per-requesting-port area of a bus arbiter
	// (request/grant logic grows linearly in ports at this fidelity).
	ArbiterPortArea float64
	// AdapterArea is the area of one frequency/width adapter port.
	AdapterArea float64
}

// DefaultAreaModel returns weights normalized so one bus ≈ 100 gate
// equivalents, with arbiter and adapter costs in proportion to
// published STbus component breakdowns (arbiters and adapters dominate
// as the crossbar grows).
func DefaultAreaModel() AreaModel {
	return AreaModel{BusArea: 100, ArbiterPortArea: 12, AdapterArea: 35}
}

// PowerModel weighs activity into dynamic energy plus area-leakage.
type PowerModel struct {
	// BusCycleEnergy is the energy of one occupied bus cycle.
	BusCycleEnergy float64
	// GrantEnergy is the energy of one arbitration decision.
	GrantEnergy float64
	// LeakagePerArea is leakage power per area unit (charged per cycle).
	LeakagePerArea float64
}

// DefaultPowerModel returns weights with dynamic transfer energy
// dominant and a small leakage floor, so idle over-provisioned
// crossbars still pay for their area.
func DefaultPowerModel() PowerModel {
	return PowerModel{BusCycleEnergy: 1.0, GrantEnergy: 0.4, LeakagePerArea: 0.0005}
}

// Area is an area estimate broken down by component class.
type Area struct {
	Buses    float64
	Arbiters float64
	Adapters float64
}

// Total returns the summed area.
func (a Area) Total() float64 { return a.Buses + a.Arbiters + a.Adapters }

// EstimateArea computes the area of one direction's crossbar.
func (m AreaModel) EstimateArea(cfg *stbus.Config) Area {
	comps := cfg.ComponentCount()
	// Each arbiter arbitrates among all senders of the fabric.
	arbiterPorts := comps.Arbiters * cfg.NumSenders
	return Area{
		Buses:    float64(comps.Buses) * m.BusArea,
		Arbiters: float64(arbiterPorts) * m.ArbiterPortArea,
		Adapters: float64(comps.Adapters) * m.AdapterArea,
	}
}

// EstimatePairArea sums both directions of an instantiation.
func (m AreaModel) EstimatePairArea(req, resp *stbus.Config) Area {
	a, b := m.EstimateArea(req), m.EstimateArea(resp)
	return Area{
		Buses:    a.Buses + b.Buses,
		Arbiters: a.Arbiters + b.Arbiters,
		Adapters: a.Adapters + b.Adapters,
	}
}

// Activity is the observed activity of one direction over a run, as
// produced by the simulator.
type Activity struct {
	// BusyCycles[b] is the number of occupied cycles of bus b.
	BusyCycles []int64
	// Grants[b] is the number of transfers granted on bus b.
	Grants []int64
	// Horizon is the run length in cycles.
	Horizon int64
}

// ActivityFromUtilization converts per-bus utilization fractions (the
// simulator's reporting format) back to busy cycles.
func ActivityFromUtilization(util []float64, grants []int64, horizon int64) Activity {
	busy := make([]int64, len(util))
	for i, u := range util {
		busy[i] = int64(u * float64(horizon))
	}
	return Activity{BusyCycles: busy, Grants: grants, Horizon: horizon}
}

// Power is a power estimate split into dynamic and leakage parts,
// normalized per cycle.
type Power struct {
	Dynamic float64
	Leakage float64
}

// Total returns the summed per-cycle power.
func (p Power) Total() float64 { return p.Dynamic + p.Leakage }

// EstimatePower computes per-cycle power of one direction's crossbar
// from its observed activity.
func (m PowerModel) EstimatePower(cfg *stbus.Config, area Area, act Activity) (Power, error) {
	if act.Horizon <= 0 {
		return Power{}, errors.New("cost: activity horizon must be positive")
	}
	if len(act.BusyCycles) != cfg.NumBuses {
		return Power{}, errors.New("cost: activity bus count mismatch")
	}
	var busy, grants int64
	for _, c := range act.BusyCycles {
		busy += c
	}
	for _, g := range act.Grants {
		grants += g
	}
	dyn := (float64(busy)*m.BusCycleEnergy + float64(grants)*m.GrantEnergy) / float64(act.Horizon)
	leak := area.Total() * m.LeakagePerArea
	return Power{Dynamic: dyn, Leakage: leak}, nil
}

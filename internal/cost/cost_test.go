package cost

import (
	"testing"

	"repro/internal/stbus"
)

func TestAreaScalesWithBuses(t *testing.T) {
	m := DefaultAreaModel()
	full := m.EstimateArea(stbus.Full(9, 12))
	shared := m.EstimateArea(stbus.Shared(9, 12))
	if full.Total() <= shared.Total() {
		t.Errorf("full crossbar area %.0f not above shared %.0f", full.Total(), shared.Total())
	}
	if full.Buses != 12*m.BusArea {
		t.Errorf("bus area = %.0f, want %.0f", full.Buses, 12*m.BusArea)
	}
	// Arbiters: one per bus, ports = senders.
	if full.Arbiters != float64(12*9)*m.ArbiterPortArea {
		t.Errorf("arbiter area = %.0f", full.Arbiters)
	}
}

func TestEstimatePairArea(t *testing.T) {
	m := DefaultAreaModel()
	req, resp := stbus.Full(2, 3), stbus.Full(3, 2)
	pair := m.EstimatePairArea(req, resp)
	want := m.EstimateArea(req).Total() + m.EstimateArea(resp).Total()
	if pair.Total() != want {
		t.Errorf("pair area %.0f != sum %.0f", pair.Total(), want)
	}
}

func TestPowerActivityProportional(t *testing.T) {
	m := DefaultPowerModel()
	am := DefaultAreaModel()
	cfg := stbus.Shared(2, 2)
	area := am.EstimateArea(cfg)
	idle, err := m.EstimatePower(cfg, area, Activity{BusyCycles: []int64{0}, Grants: []int64{0}, Horizon: 1000})
	if err != nil {
		t.Fatal(err)
	}
	busy, err := m.EstimatePower(cfg, area, Activity{BusyCycles: []int64{800}, Grants: []int64{100}, Horizon: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if idle.Dynamic != 0 {
		t.Errorf("idle dynamic power = %f, want 0", idle.Dynamic)
	}
	if idle.Leakage <= 0 {
		t.Error("leakage must be positive for non-zero area")
	}
	wantDyn := (800*m.BusCycleEnergy + 100*m.GrantEnergy) / 1000
	if busy.Dynamic != wantDyn {
		t.Errorf("dynamic power = %f, want %f", busy.Dynamic, wantDyn)
	}
	if busy.Total() <= idle.Total() {
		t.Error("busy power not above idle power")
	}
}

func TestPowerErrors(t *testing.T) {
	m := DefaultPowerModel()
	am := DefaultAreaModel()
	cfg := stbus.Shared(2, 2)
	area := am.EstimateArea(cfg)
	if _, err := m.EstimatePower(cfg, area, Activity{BusyCycles: []int64{1}, Horizon: 0}); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := m.EstimatePower(cfg, area, Activity{BusyCycles: []int64{1, 2}, Horizon: 10}); err == nil {
		t.Error("bus count mismatch accepted")
	}
}

func TestActivityFromUtilization(t *testing.T) {
	act := ActivityFromUtilization([]float64{0.5, 0.25}, []int64{3, 4}, 1000)
	if act.BusyCycles[0] != 500 || act.BusyCycles[1] != 250 {
		t.Errorf("busy cycles = %v", act.BusyCycles)
	}
	if act.Horizon != 1000 || act.Grants[1] != 4 {
		t.Error("fields not carried through")
	}
}

package experiments

import (
	"context"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// BindingRow compares the optimal (min-max-overlap) binding with
// random feasible bindings on one application — the Section 7.3 study
// reporting random bindings ≈2.1× worse average latency.
type BindingRow struct {
	App        string
	OptimalAvg float64 // average packet latency, optimal binding
	RandomAvg  float64 // average packet latency over random bindings
	Ratio      float64 // RandomAvg / OptimalAvg
}

// bindingTrials is the number of random bindings averaged per app.
const bindingTrials = 5

// Binding reproduces the Section 7.3 binding comparison: for each
// benchmark, design the crossbar configuration once, then compare the
// overlap-minimizing binding against random bindings that satisfy the
// same constraints (Eq. 3–9).
func Binding(seed int64) ([]BindingRow, error) {
	return BindingCtx(context.Background(), seed)
}

// BindingCtx is Binding with cancellation. Applications run
// concurrently; each draws its random bindings from a fresh
// deterministically-seeded generator, so the rows are independent of
// scheduling and worker count.
func BindingCtx(ctx context.Context, seed int64) ([]BindingRow, error) {
	// Both bindings target the configuration the standard methodology
	// chooses, under the same constraint set (Eq. 3-9 with the default
	// conflict pre-processing) - only the binding objective differs,
	// exactly the paper's comparison.
	opts := core.DefaultOptions()
	apps := workloads.All(seed)
	rows := make([]BindingRow, len(apps))
	err := conc.ForEach(ctx, len(apps), 0, func(ctx context.Context, i int) error {
		app := apps[i]
		run, err := PrepareCtx(ctx, app)
		if err != nil {
			return err
		}
		pair, err := run.DesignCtx(ctx, opts)
		if err != nil {
			return err
		}
		optimal, err := run.ValidateCtx(ctx, pair)
		if err != nil {
			return err
		}
		optAvg := optimal.Latency.SummarizePacket().Avg

		rng := rand.New(rand.NewSource(seed*7919 + int64(i)))
		var randomSum float64
		for trial := 0; trial < bindingTrials; trial++ {
			rReq, err := baseline.RandomBinding(run.AReq, opts, pair.Req.NumBuses, rng, 0)
			if err != nil {
				return err
			}
			rResp, err := baseline.RandomBinding(run.AResp, opts, pair.Resp.NumBuses, rng, 0)
			if err != nil {
				return err
			}
			res, err := run.ValidateBindingCtx(ctx, rReq.BusOf, rResp.BusOf)
			if err != nil {
				return err
			}
			randomSum += res.Latency.SummarizePacket().Avg
		}
		randAvg := randomSum / bindingTrials
		rows[i] = BindingRow{
			App:        app.Name,
			OptimalAvg: optAvg,
			RandomAvg:  randAvg,
			Ratio:      randAvg / optAvg,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// BindingReport renders the binding comparison.
func BindingReport(rows []BindingRow) *report.Table {
	t := report.NewTable("Section 7.3: Random vs Optimal Binding (average packet latency, cycles)",
		"Application", "Optimal", "Random", "Random/Optimal")
	for _, r := range rows {
		t.AddRow(r.App, r.OptimalAvg, r.RandomAvg, r.Ratio)
	}
	return t
}

// RealtimeResult summarizes the Section 7.3 real-time study: packet
// latency of the critical streams on the designed crossbar compared
// with the full crossbar (the paper reports near-equality) and with
// the non-critical traffic on the same designed crossbar.
type RealtimeResult struct {
	FullCriticalAvg     float64
	DesignedCriticalAvg float64
	DesignedCriticalMax int64
	FullCriticalMax     int64
	DesignedOverallAvg  float64
	CriticalSeparated   bool // the overlapping critical receivers got distinct buses
	DesignedBuses       int  // total buses of the designed configuration
	CriticalOverFull    float64
}

// RealtimeCores are the Mat2 cores whose private-memory streams are
// marked critical in the study. Their barrier-aligned phases overlap
// heavily, so without the criticality constraint the two targets could
// share a bus.
var RealtimeCores = []int{0, 4}

// Realtime reproduces the Section 7.3 real-time-stream experiment on a
// Mat2 variant with critical streams.
func Realtime(seed int64) (*RealtimeResult, error) {
	return RealtimeCtx(context.Background(), seed)
}

// RealtimeCtx is Realtime with cancellation.
func RealtimeCtx(ctx context.Context, seed int64) (*RealtimeResult, error) {
	app := workloads.Mat2Critical(seed, RealtimeCores...)
	run, err := PrepareCtx(ctx, app)
	if err != nil {
		return nil, err
	}
	pair, err := run.DesignCtx(ctx, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	designed, err := run.ValidateCtx(ctx, pair)
	if err != nil {
		return nil, err
	}
	fullCrit := run.Full.Latency.SummarizePacketWhere(criticalOnly)
	desCrit := designed.Latency.SummarizePacketWhere(criticalOnly)
	separated := true
	for i := 0; i < len(RealtimeCores); i++ {
		for j := i + 1; j < len(RealtimeCores); j++ {
			ti, tj := app.PrivateOf[RealtimeCores[i]], app.PrivateOf[RealtimeCores[j]]
			if pair.Req.BusOf[ti] == pair.Req.BusOf[tj] {
				separated = false
			}
		}
	}
	return &RealtimeResult{
		FullCriticalAvg:     fullCrit.Avg,
		FullCriticalMax:     fullCrit.Max,
		DesignedCriticalAvg: desCrit.Avg,
		DesignedCriticalMax: desCrit.Max,
		DesignedOverallAvg:  designed.Latency.SummarizePacket().Avg,
		CriticalSeparated:   separated,
		DesignedBuses:       pair.TotalBuses(),
		CriticalOverFull:    desCrit.Avg / fullCrit.Avg,
	}, nil
}

func criticalOnly(s stats.Sample) bool { return s.Critical }

// RealtimeReport renders the real-time study.
func RealtimeReport(r *RealtimeResult) *report.Table {
	t := report.NewTable("Section 7.3: Real-Time Streams (Mat2-RT, packet latency in cycles)",
		"Metric", "Value")
	t.AddRow("critical avg on full crossbar", r.FullCriticalAvg)
	t.AddRow("critical avg on designed crossbar", r.DesignedCriticalAvg)
	t.AddRow("critical max on full crossbar", r.FullCriticalMax)
	t.AddRow("critical max on designed crossbar", r.DesignedCriticalMax)
	t.AddRow("overall avg on designed crossbar", r.DesignedOverallAvg)
	t.AddRow("critical avg designed/full", r.CriticalOverFull)
	t.AddRow("critical receivers separated", r.CriticalSeparated)
	t.AddRow("designed total buses", r.DesignedBuses)
	return t
}

package experiments

import (
	"context"
	"fmt"

	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// sweepOptions are the designer settings used for the synthetic
// sweeps: no targets-per-bus cap and (for the window sweeps) no
// overlap pre-processing, so the plotted size isolates the effect of
// the parameter being swept.
func sweepOptions() core.Options {
	opts := core.DefaultOptions()
	opts.MaxPerBus = 0
	opts.OverlapThreshold = -1
	return opts
}

// Fig5aPoint is one point of Figure 5(a): initiator→target crossbar
// size for one analysis window size on the synthetic benchmark.
type Fig5aPoint struct {
	WindowSize int64
	Buses      int
}

// Fig5aWindowSizes are the swept window sizes in cycles, mirroring the
// paper's x axis (200 cycles … the whole simulation).
var Fig5aWindowSizes = []int64{200, 300, 400, 750, 1000, 2000, 3000, 4000, 5000, 20000, 75000, 750000}

// Figure5a reproduces Figure 5(a): the designed crossbar size as the
// analysis window grows from far below the typical burst size (≈ full
// crossbar) through 1–4 bursts (≈ 25–40% of full) to the whole trace
// (the conservative average-flow extreme).
func Figure5a(seed int64) ([]Fig5aPoint, error) {
	return Figure5aCtx(context.Background(), seed)
}

// Figure5aCtx is Figure5a with cancellation; the swept window sizes
// are analyzed and designed concurrently, each writing its own point.
func Figure5aCtx(ctx context.Context, seed int64) ([]Fig5aPoint, error) {
	app := workloads.Synthetic(seed, 1000)
	run, err := PrepareCtx(ctx, app)
	if err != nil {
		return nil, err
	}
	points := make([]Fig5aPoint, len(Fig5aWindowSizes))
	err = conc.ForEach(ctx, len(Fig5aWindowSizes), 0, func(ctx context.Context, i int) error {
		ws := Fig5aWindowSizes[i]
		if ws > app.Horizon {
			ws = app.Horizon
		}
		a, err := trace.AnalyzeCtx(ctx, run.Full.ReqTrace, ws)
		if err != nil {
			return err
		}
		d, err := core.DesignCrossbarCtx(ctx, a, sweepOptions())
		if err != nil {
			return fmt.Errorf("experiments: figure 5a at ws=%d: %w", ws, err)
		}
		points[i] = Fig5aPoint{WindowSize: ws, Buses: d.NumBuses}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// Figure5aReport renders Figure 5(a).
func Figure5aReport(points []Fig5aPoint) *report.Series {
	s := &report.Series{
		Title:  "Figure 5(a): Initiator-Target crossbar size vs window size (Synth-20, burst ~1000 cy)",
		XLabel: "window (cy)",
		YLabel: "buses",
	}
	for _, p := range points {
		s.Add(float64(p.WindowSize), float64(p.Buses))
	}
	return s
}

// Fig5bPoint is one point of Figure 5(b): the smallest acceptable
// analysis window for one typical burst size.
type Fig5bPoint struct {
	BurstSize    int64
	AcceptableWS int64
}

// Fig5bBurstSizes are the swept nominal burst sizes (cycles).
var Fig5bBurstSizes = []int64{1000, 2000, 3000, 4000, 5000}

// fig5bSizeTarget is the "acceptable design" size used to define the
// acceptable window: at most 40% of the full crossbar, consistent with
// the paper's observation that windows of 1–4 bursts give crossbars
// around a quarter of full size with acceptable latency.
const fig5bSizeTarget = 4

// Figure5b reproduces Figure 5(b): for each burst size, the smallest
// window whose designed crossbar reaches the acceptable size, showing
// the near-linear window/burst relation.
func Figure5b(seed int64) ([]Fig5bPoint, error) {
	return Figure5bCtx(context.Background(), seed)
}

// Figure5bCtx is Figure5b with cancellation. The burst sizes run
// concurrently; the escalating window search inside each burst stays
// serial because every step depends on the previous one's outcome.
func Figure5bCtx(ctx context.Context, seed int64) ([]Fig5bPoint, error) {
	points := make([]Fig5bPoint, len(Fig5bBurstSizes))
	err := conc.ForEach(ctx, len(Fig5bBurstSizes), 0, func(ctx context.Context, i int) error {
		burst := Fig5bBurstSizes[i]
		app := workloads.Synthetic(seed, burst)
		run, err := PrepareCtx(ctx, app)
		if err != nil {
			return err
		}
		found := int64(-1)
		for ws := burst / 4; ws <= 16*burst; ws = ws * 5 / 4 {
			a, err := trace.AnalyzeCtx(ctx, run.Full.ReqTrace, ws)
			if err != nil {
				return err
			}
			d, err := core.DesignCrossbarCtx(ctx, a, sweepOptions())
			if err != nil {
				return fmt.Errorf("experiments: figure 5b at burst=%d ws=%d: %w", burst, ws, err)
			}
			if d.NumBuses <= fig5bSizeTarget {
				found = ws
				break
			}
		}
		points[i] = Fig5bPoint{BurstSize: burst, AcceptableWS: found}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// Figure5bReport renders Figure 5(b).
func Figure5bReport(points []Fig5bPoint) *report.Series {
	s := &report.Series{
		Title:  "Figure 5(b): acceptable window size vs burst size (Synth-20)",
		XLabel: "burst (cy)",
		YLabel: "window (cy)",
	}
	for _, p := range points {
		s.Add(float64(p.BurstSize), float64(p.AcceptableWS))
	}
	return s
}

// Fig6Point is one point of Figure 6: designed crossbar size at one
// overlap-threshold setting.
type Fig6Point struct {
	Threshold float64
	Buses     int
	Conflicts int
}

// Fig6Thresholds are the swept overlap thresholds (fractions of the
// window size), the paper's 0%–50% range.
var Fig6Thresholds = []float64{0, 0.05, 0.10, 0.20, 0.30, 0.40, 0.50}

// Figure6 reproduces Figure 6: the effect of the overlap-threshold
// pre-processing parameter on the designed crossbar size, at a fixed
// window of twice the nominal burst.
func Figure6(seed int64) ([]Fig6Point, error) {
	return Figure6Ctx(context.Background(), seed)
}

// Figure6Ctx is Figure6 with cancellation; the threshold settings are
// designed concurrently against the shared analysis.
func Figure6Ctx(ctx context.Context, seed int64) ([]Fig6Point, error) {
	app := workloads.Synthetic(seed, 1000)
	run, err := PrepareCtx(ctx, app)
	if err != nil {
		return nil, err
	}
	a, err := trace.AnalyzeCtx(ctx, run.Full.ReqTrace, app.WindowSize)
	if err != nil {
		return nil, err
	}
	points := make([]Fig6Point, len(Fig6Thresholds))
	err = conc.ForEach(ctx, len(Fig6Thresholds), 0, func(ctx context.Context, i int) error {
		thr := Fig6Thresholds[i]
		opts := sweepOptions()
		opts.OverlapThreshold = thr
		d, err := core.DesignCrossbarCtx(ctx, a, opts)
		if err != nil {
			return fmt.Errorf("experiments: figure 6 at threshold=%.2f: %w", thr, err)
		}
		points[i] = Fig6Point{Threshold: thr, Buses: d.NumBuses, Conflicts: d.Conflicts}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// Figure6Report renders Figure 6.
func Figure6Report(points []Fig6Point) *report.Series {
	s := &report.Series{
		Title:  "Figure 6: crossbar size vs overlap threshold (Synth-20, window = 2 bursts)",
		XLabel: "threshold %",
		YLabel: "buses",
	}
	for _, p := range points {
		s.Add(p.Threshold*100, float64(p.Buses))
	}
	return s
}

package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// MultiUseResult compares single-scenario crossbar designs against a
// multi-use-case design produced from the merged analyses (extension:
// the paper designs for one application at a time; real platforms run
// several use cases on the same silicon).
type MultiUseResult struct {
	// Buses per design.
	BusesA, BusesB, BusesMerged int
	// Validated average packet latency of each design on each mode.
	AOnA, AOnB       float64
	BOnA, BOnB       float64
	MergedA, MergedB float64
	// Full-crossbar references per mode.
	FullA, FullB float64
}

// multiUseModes builds two traffic modes of the same 21-core platform:
// the standard Mat2 profile and a streaming-heavy variant (longer
// bursts, no pipeline stagger — a different application running on the
// same chip).
func multiUseModes(seed int64) (*workloads.App, *workloads.App, error) {
	modeA := workloads.Mat2(seed)
	spec, err := workloads.SpecOf("Mat2")
	if err != nil {
		return nil, nil, err
	}
	spec.Name = "Mat2-stream"
	spec.Reads = 8
	spec.ReadBurst = 32
	spec.Writes = 4
	spec.WriteBurst = 16
	spec.BurstAccesses = 4
	spec.Pause = 150
	spec.Groups = 0
	spec.GroupOffset = 0
	spec.Description = "streaming use case on the Mat2 platform"
	modeB, err := spec.Build(seed)
	if err != nil {
		return nil, nil, err
	}
	return modeA, modeB, nil
}

// MultiUse runs the study: designs for mode A only, mode B only, and
// the merged analysis, each validated on both modes.
func MultiUse(seed int64) (*MultiUseResult, error) {
	return MultiUseCtx(context.Background(), seed)
}

// MultiUseCtx is MultiUse with cancellation.
func MultiUseCtx(ctx context.Context, seed int64) (*MultiUseResult, error) {
	modeA, modeB, err := multiUseModes(seed)
	if err != nil {
		return nil, err
	}
	runA, err := PrepareCtx(ctx, modeA)
	if err != nil {
		return nil, err
	}
	runB, err := PrepareCtx(ctx, modeB)
	if err != nil {
		return nil, err
	}
	opts := core.DefaultOptions()

	pairA, err := runA.DesignCtx(ctx, opts)
	if err != nil {
		return nil, err
	}
	pairB, err := runB.DesignCtx(ctx, opts)
	if err != nil {
		return nil, err
	}

	mergedReq, err := trace.MergeAnalyses(runA.AReq, runB.AReq)
	if err != nil {
		return nil, err
	}
	mergedResp, err := trace.MergeAnalyses(runA.AResp, runB.AResp)
	if err != nil {
		return nil, err
	}
	dReq, err := core.DesignCrossbarCtx(ctx, mergedReq, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: merged request design: %w", err)
	}
	dResp, err := core.DesignCrossbarCtx(ctx, mergedResp, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: merged response design: %w", err)
	}
	merged := &DesignPair{Req: dReq, Resp: dResp}

	avgOn := func(run *AppRun, pair *DesignPair) (float64, error) {
		res, err := run.ValidateBindingCtx(ctx, pair.Req.BusOf, pair.Resp.BusOf)
		if err != nil {
			return 0, err
		}
		return res.Latency.SummarizePacket().Avg, nil
	}
	out := &MultiUseResult{
		BusesA:      pairA.TotalBuses(),
		BusesB:      pairB.TotalBuses(),
		BusesMerged: merged.TotalBuses(),
		FullA:       runA.Full.Latency.SummarizePacket().Avg,
		FullB:       runB.Full.Latency.SummarizePacket().Avg,
	}
	if out.AOnA, err = avgOn(runA, pairA); err != nil {
		return nil, err
	}
	if out.AOnB, err = avgOn(runB, pairA); err != nil {
		return nil, err
	}
	if out.BOnA, err = avgOn(runA, pairB); err != nil {
		return nil, err
	}
	if out.BOnB, err = avgOn(runB, pairB); err != nil {
		return nil, err
	}
	if out.MergedA, err = avgOn(runA, merged); err != nil {
		return nil, err
	}
	if out.MergedB, err = avgOn(runB, merged); err != nil {
		return nil, err
	}
	return out, nil
}

// MultiUseReport renders the study.
func MultiUseReport(r *MultiUseResult) *report.Table {
	t := report.NewTable("Extension: Multi-Use-Case Design (Mat2 platform, avg packet latency per mode)",
		"Design", "Buses", "Mode A lat", "Mode B lat")
	t.AddRow("full crossbar", 21, r.FullA, r.FullB)
	t.AddRow("designed for A", r.BusesA, r.AOnA, r.AOnB)
	t.AddRow("designed for B", r.BusesB, r.BOnA, r.BOnB)
	t.AddRow("designed for A+B (merged)", r.BusesMerged, r.MergedA, r.MergedB)
	return t
}

package experiments

import (
	"context"
	"fmt"

	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/workloads"
)

// RobustnessRow records the designed bus counts of one application
// across workload seeds. The paper reports single-trace results; with
// a synthetic substrate the reproduction must additionally show its
// headline numbers (Table 2) do not hinge on one RNG draw.
type RobustnessRow struct {
	App    string
	Seeds  []int64
	Buses  []int // designed total buses per seed
	MinMax [2]int
	Stable bool // every seed produced the same count
}

// DefaultRobustnessSeeds are the seeds swept by the robustness study.
var DefaultRobustnessSeeds = []int64{1, 2, 3, 4, 5}

// Robustness designs every benchmark across the given seeds.
func Robustness(seeds []int64) ([]RobustnessRow, error) {
	return RobustnessCtx(context.Background(), seeds)
}

// RobustnessCtx is Robustness with cancellation. The (seed, app)
// combinations are flattened and designed concurrently, each writing
// its own slot; the aggregation into per-app rows stays serial so the
// row and seed order match the sequential study.
func RobustnessCtx(ctx context.Context, seeds []int64) ([]RobustnessRow, error) {
	if len(seeds) == 0 {
		seeds = DefaultRobustnessSeeds
	}
	// All five benchmarks per seed, flattened to one slot per combo.
	type combo struct {
		seed int64
		app  *workloads.App
	}
	var combos []combo
	for _, seed := range seeds {
		for _, app := range workloads.All(seed) {
			combos = append(combos, combo{seed: seed, app: app})
		}
	}
	buses := make([]int, len(combos))
	err := conc.ForEach(ctx, len(combos), 0, func(ctx context.Context, i int) error {
		c := combos[i]
		run, err := PrepareCtx(ctx, c.app)
		if err != nil {
			return fmt.Errorf("experiments: robustness seed %d: %w", c.seed, err)
		}
		pair, err := run.DesignCtx(ctx, core.DefaultOptions())
		if err != nil {
			return fmt.Errorf("experiments: robustness seed %d %s: %w", c.seed, c.app.Name, err)
		}
		buses[i] = pair.TotalBuses()
		return nil
	})
	if err != nil {
		return nil, err
	}
	rowOf := map[string]*RobustnessRow{}
	var order []string
	for i, c := range combos {
		row := rowOf[c.app.Name]
		if row == nil {
			row = &RobustnessRow{App: c.app.Name}
			rowOf[c.app.Name] = row
			order = append(order, c.app.Name)
		}
		row.Seeds = append(row.Seeds, c.seed)
		row.Buses = append(row.Buses, buses[i])
	}
	var rows []RobustnessRow
	for _, name := range order {
		row := rowOf[name]
		row.MinMax = [2]int{row.Buses[0], row.Buses[0]}
		row.Stable = true
		for _, b := range row.Buses {
			if b < row.MinMax[0] {
				row.MinMax[0] = b
			}
			if b > row.MinMax[1] {
				row.MinMax[1] = b
			}
			if b != row.Buses[0] {
				row.Stable = false
			}
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// RobustnessReport renders the study.
func RobustnessReport(rows []RobustnessRow) *report.Table {
	t := report.NewTable("Extension: Designed Bus Counts Across Workload Seeds",
		"Application", "Counts per seed", "Min", "Max", "Stable")
	for _, r := range rows {
		t.AddRow(r.App, fmt.Sprint(r.Buses), r.MinMax[0], r.MinMax[1], r.Stable)
	}
	return t
}

package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/workloads"
)

// RobustnessRow records the designed bus counts of one application
// across workload seeds. The paper reports single-trace results; with
// a synthetic substrate the reproduction must additionally show its
// headline numbers (Table 2) do not hinge on one RNG draw.
type RobustnessRow struct {
	App    string
	Seeds  []int64
	Buses  []int // designed total buses per seed
	MinMax [2]int
	Stable bool // every seed produced the same count
}

// DefaultRobustnessSeeds are the seeds swept by the robustness study.
var DefaultRobustnessSeeds = []int64{1, 2, 3, 4, 5}

// Robustness designs every benchmark across the given seeds.
func Robustness(seeds []int64) ([]RobustnessRow, error) {
	if len(seeds) == 0 {
		seeds = DefaultRobustnessSeeds
	}
	// All five benchmarks per seed.
	type key struct{ app string }
	rowOf := map[string]*RobustnessRow{}
	var order []string
	for _, seed := range seeds {
		for _, app := range workloads.All(seed) {
			run, err := Prepare(app)
			if err != nil {
				return nil, fmt.Errorf("experiments: robustness seed %d: %w", seed, err)
			}
			pair, err := run.Design(core.DefaultOptions())
			if err != nil {
				return nil, fmt.Errorf("experiments: robustness seed %d %s: %w", seed, app.Name, err)
			}
			row := rowOf[app.Name]
			if row == nil {
				row = &RobustnessRow{App: app.Name}
				rowOf[app.Name] = row
				order = append(order, app.Name)
			}
			row.Seeds = append(row.Seeds, seed)
			row.Buses = append(row.Buses, pair.TotalBuses())
		}
	}
	var rows []RobustnessRow
	for _, name := range order {
		row := rowOf[name]
		row.MinMax = [2]int{row.Buses[0], row.Buses[0]}
		row.Stable = true
		for _, b := range row.Buses {
			if b < row.MinMax[0] {
				row.MinMax[0] = b
			}
			if b > row.MinMax[1] {
				row.MinMax[1] = b
			}
			if b != row.Buses[0] {
				row.Stable = false
			}
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// RobustnessReport renders the study.
func RobustnessReport(rows []RobustnessRow) *report.Table {
	t := report.NewTable("Extension: Designed Bus Counts Across Workload Seeds",
		"Application", "Counts per seed", "Min", "Max", "Stable")
	for _, r := range rows {
		t.AddRow(r.App, fmt.Sprint(r.Buses), r.MinMax[0], r.MinMax[1], r.Stable)
	}
	return t
}

package experiments

import (
	"context"

	"repro/internal/baseline"
	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/workloads"
)

// Table1Row is one architecture row of the paper's Table 1: average
// and maximum packet latency on the Mat2 benchmark, plus crossbar size
// normalized to the shared-bus configuration (which uses one bus per
// direction).
type Table1Row struct {
	Arch      string
	AvgLat    float64
	MaxLat    int64
	SizeRatio float64
}

// Table1 reproduces Table 1: Mat2 on a shared bus, a full crossbar and
// the designed partial crossbar.
func Table1(seed int64) ([]Table1Row, error) {
	return Table1Ctx(context.Background(), seed)
}

// Table1Ctx is Table1 with cancellation.
func Table1Ctx(ctx context.Context, seed int64) ([]Table1Row, error) {
	run, err := PrepareCtx(ctx, workloads.Mat2(seed))
	if err != nil {
		return nil, err
	}
	shared, err := run.RunSharedCtx(ctx)
	if err != nil {
		return nil, err
	}
	pair, err := run.DesignCtx(ctx, core.DefaultOptions())
	if err != nil {
		return nil, err
	}
	partial, err := run.ValidateCtx(ctx, pair)
	if err != nil {
		return nil, err
	}
	const sharedBuses = 2.0 // one bus per direction
	fullBuses := float64(run.App.NumCores())
	ss, fs, ps := shared.Latency.SummarizePacket(), run.Full.Latency.SummarizePacket(), partial.Latency.SummarizePacket()
	return []Table1Row{
		{Arch: "shared", AvgLat: ss.Avg, MaxLat: ss.Max, SizeRatio: 1},
		{Arch: "full", AvgLat: fs.Avg, MaxLat: fs.Max, SizeRatio: fullBuses / sharedBuses},
		{Arch: "partial", AvgLat: ps.Avg, MaxLat: ps.Max, SizeRatio: float64(pair.TotalBuses()) / sharedBuses},
	}, nil
}

// Table1Report renders Table 1.
func Table1Report(rows []Table1Row) *report.Table {
	t := report.NewTable("Table 1: Crossbar Performance and Cost (Mat2)",
		"Type", "Average Lat (cy)", "Maximum Lat (cy)", "Size Ratio")
	for _, r := range rows {
		t.AddRow(r.Arch, r.AvgLat, r.MaxLat, r.SizeRatio)
	}
	return t
}

// Table2Row is one application row of the paper's Table 2: bus count
// of the full crossbar vs the designed crossbar (both directions
// summed) and the savings ratio.
type Table2Row struct {
	App           string
	FullBuses     int
	DesignedBuses int
	Ratio         float64
}

// Table2 reproduces Table 2 over the five benchmark applications.
func Table2(seed int64) ([]Table2Row, error) {
	return Table2Ctx(context.Background(), seed)
}

// Table2Ctx is Table2 with cancellation; the five applications are
// prepared and designed concurrently, each writing its own row.
func Table2Ctx(ctx context.Context, seed int64) ([]Table2Row, error) {
	apps := workloads.All(seed)
	rows := make([]Table2Row, len(apps))
	err := conc.ForEach(ctx, len(apps), 0, func(ctx context.Context, i int) error {
		app := apps[i]
		run, err := PrepareCtx(ctx, app)
		if err != nil {
			return err
		}
		pair, err := run.DesignCtx(ctx, core.DefaultOptions())
		if err != nil {
			return err
		}
		full := app.NumCores()
		rows[i] = Table2Row{
			App:           app.Name,
			FullBuses:     full,
			DesignedBuses: pair.TotalBuses(),
			Ratio:         float64(full) / float64(pair.TotalBuses()),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Table2Report renders Table 2.
func Table2Report(rows []Table2Row) *report.Table {
	t := report.NewTable("Table 2: Component Savings",
		"Application", "Full crossbar bus count", "Designed crossbar bus count", "Ratio")
	for _, r := range rows {
		t.AddRow(r.App, r.FullBuses, r.DesignedBuses, r.Ratio)
	}
	return t
}

// Figure4Row holds one application's relative packet latencies
// (normalized to the full crossbar) for the average-flow baseline
// design ("avg") and the window-based design ("win") — the bars of
// Figures 4(a) and 4(b).
type Figure4Row struct {
	App       string
	AvgRelAvg float64 // avg-design average latency / full-crossbar average
	WinRelAvg float64
	AvgRelMax float64 // avg-design maximum latency / full-crossbar maximum
	WinRelMax float64
}

// Figure4 reproduces Figures 4(a) and 4(b) over the five benchmarks.
func Figure4(seed int64) ([]Figure4Row, error) {
	return Figure4Ctx(context.Background(), seed)
}

// Figure4Ctx is Figure4 with cancellation; applications run
// concurrently, each writing its own row.
func Figure4Ctx(ctx context.Context, seed int64) ([]Figure4Row, error) {
	apps := workloads.All(seed)
	rows := make([]Figure4Row, len(apps))
	err := conc.ForEach(ctx, len(apps), 0, func(ctx context.Context, i int) error {
		app := apps[i]
		run, err := PrepareCtx(ctx, app)
		if err != nil {
			return err
		}
		// Window-based design (ours).
		pair, err := run.DesignCtx(ctx, core.DefaultOptions())
		if err != nil {
			return err
		}
		win, err := run.ValidateCtx(ctx, pair)
		if err != nil {
			return err
		}
		// Average-flow baseline design (prior approaches).
		bReq, err := baseline.AverageFlow(run.Full.ReqTrace, 0)
		if err != nil {
			return err
		}
		bResp, err := baseline.AverageFlow(run.Full.RespTrace, 0)
		if err != nil {
			return err
		}
		avg, err := run.ValidateBindingCtx(ctx, bReq.BusOf, bResp.BusOf)
		if err != nil {
			return err
		}
		fs, ws, as := run.Full.Latency.SummarizePacket(), win.Latency.SummarizePacket(), avg.Latency.SummarizePacket()
		rows[i] = Figure4Row{
			App:       app.Name,
			AvgRelAvg: as.Avg / fs.Avg,
			WinRelAvg: ws.Avg / fs.Avg,
			AvgRelMax: float64(as.Max) / float64(fs.Max),
			WinRelMax: float64(ws.Max) / float64(fs.Max),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Figure4Report renders both panels of Figure 4.
func Figure4Report(rows []Figure4Row) (avgPanel, maxPanel *report.Table) {
	avgPanel = report.NewTable("Figure 4(a): Relative Average Packet Latency (vs full crossbar)",
		"Application", "avg design", "win design")
	maxPanel = report.NewTable("Figure 4(b): Relative Maximum Packet Latency (vs full crossbar)",
		"Application", "avg design", "win design")
	for _, r := range rows {
		avgPanel.AddRow(r.App, r.AvgRelAvg, r.WinRelAvg)
		maxPanel.AddRow(r.App, r.AvgRelMax, r.WinRelMax)
	}
	return avgPanel, maxPanel
}

// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 7): Table 1 (crossbar performance and
// cost), Table 2 (component savings), Figures 4(a)/(b) (relative
// latencies of average-flow vs window-based designs), Figure 5(a)
// (crossbar size vs window size), Figure 5(b) (acceptable window size
// vs burst size), Figure 6 (overlap threshold effects), and the
// Section 7.3 binding and real-time studies.
//
// Each experiment follows the paper's four-phase flow: simulate the
// application on a full crossbar, analyze the traffic in windows,
// design the two crossbars, and validate the result by cycle-accurate
// simulation on the designed configuration.
package experiments

import (
	"context"
	"fmt"

	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stbus"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// Seed is the default workload seed used by cmd/experiments and the
// benchmark harness, so published numbers are reproducible.
const Seed = 1

// AppRun holds the phase-1 artifacts for one application: the full
// crossbar simulation and the windowed analyses of both directions.
type AppRun struct {
	App        *workloads.App
	Full       *sim.Result
	AReq       *trace.Analysis // initiator→target direction
	AResp      *trace.Analysis // target→initiator direction
	WindowSize int64
}

// Prepare runs phase 1 (full-crossbar simulation and trace collection)
// and phase 2's data reduction (window analysis) for an application.
func Prepare(app *workloads.App) (*AppRun, error) {
	return PrepareCtx(context.Background(), app)
}

// PrepareCtx is Prepare with cancellation. The two direction analyses
// run concurrently; each is internally deterministic, so the result is
// identical to the serial path.
func PrepareCtx(ctx context.Context, app *workloads.App) (*AppRun, error) {
	ctx, span := obs.Start(ctx, "pipeline.prepare")
	defer span.End()
	span.SetStr("app", app.Name)
	req, resp := app.FullConfig()
	full, err := sim.RunCtx(ctx, app.SimConfig(req, resp))
	if err != nil {
		return nil, fmt.Errorf("experiments: full-crossbar simulation of %s: %w", app.Name, err)
	}
	var aReq, aResp *trace.Analysis
	g, gctx := conc.WithContext(ctx)
	g.Go(func() error {
		gctx, sp := obs.Start(gctx, "analyze.req")
		defer sp.End()
		var err error
		aReq, err = trace.AnalyzeCtx(gctx, full.ReqTrace, app.WindowSize)
		if err != nil {
			return fmt.Errorf("experiments: analyzing %s request trace: %w", app.Name, err)
		}
		return nil
	})
	g.Go(func() error {
		gctx, sp := obs.Start(gctx, "analyze.resp")
		defer sp.End()
		var err error
		aResp, err = trace.AnalyzeCtx(gctx, full.RespTrace, app.WindowSize)
		if err != nil {
			return fmt.Errorf("experiments: analyzing %s response trace: %w", app.Name, err)
		}
		return nil
	})
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return &AppRun{App: app, Full: full, AReq: aReq, AResp: aResp, WindowSize: app.WindowSize}, nil
}

// DesignPair is a designed crossbar for each direction.
type DesignPair struct {
	Req, Resp *core.Design
}

// TotalBuses is the summed bus count of both directions (the paper's
// Table 2 metric).
func (p *DesignPair) TotalBuses() int { return p.Req.NumBuses + p.Resp.NumBuses }

// Design runs the methodology (phases 2–3) on both directions.
func (r *AppRun) Design(opts core.Options) (*DesignPair, error) {
	return r.DesignCtx(context.Background(), opts)
}

// DesignCtx is Design with cancellation. The two direction designs are
// independent and run concurrently; each design is deterministic, so
// the pair matches the serial path bit for bit.
func (r *AppRun) DesignCtx(ctx context.Context, opts core.Options) (*DesignPair, error) {
	ctx, span := obs.Start(ctx, "pipeline.design")
	defer span.End()
	span.SetStr("app", r.App.Name)
	var dReq, dResp *core.Design
	g, gctx := conc.WithContext(ctx)
	g.Go(func() error {
		gctx, sp := obs.Start(gctx, "design.req")
		defer sp.End()
		var err error
		dReq, err = core.DesignCrossbarCtx(gctx, r.AReq, opts)
		if err != nil {
			return fmt.Errorf("experiments: designing %s initiator→target crossbar: %w", r.App.Name, err)
		}
		return nil
	})
	g.Go(func() error {
		gctx, sp := obs.Start(gctx, "design.resp")
		defer sp.End()
		var err error
		dResp, err = core.DesignCrossbarCtx(gctx, r.AResp, opts)
		if err != nil {
			return fmt.Errorf("experiments: designing %s target→initiator crossbar: %w", r.App.Name, err)
		}
		return nil
	})
	if err := g.Wait(); err != nil {
		return nil, err
	}
	return &DesignPair{Req: dReq, Resp: dResp}, nil
}

// Validate runs phase 4: cycle-accurate simulation of the application
// on the designed partial crossbars.
func (r *AppRun) Validate(pair *DesignPair) (*sim.Result, error) {
	return r.ValidateCtx(context.Background(), pair)
}

// ValidateCtx is Validate with cancellation.
func (r *AppRun) ValidateCtx(ctx context.Context, pair *DesignPair) (*sim.Result, error) {
	ctx, span := obs.Start(ctx, "pipeline.validate")
	defer span.End()
	span.SetStr("app", r.App.Name)
	req := stbus.Partial(r.App.NumInitiators, pair.Req.BusOf)
	resp := stbus.Partial(r.App.NumTargets, pair.Resp.BusOf)
	res, err := sim.RunCtx(ctx, r.App.SimConfig(req, resp))
	if err != nil {
		return nil, fmt.Errorf("experiments: validating %s design: %w", r.App.Name, err)
	}
	return res, nil
}

// ValidateBinding simulates an explicit binding pair (used by the
// random-binding study).
func (r *AppRun) ValidateBinding(reqBusOf, respBusOf []int) (*sim.Result, error) {
	return r.ValidateBindingCtx(context.Background(), reqBusOf, respBusOf)
}

// ValidateBindingCtx is ValidateBinding with cancellation.
func (r *AppRun) ValidateBindingCtx(ctx context.Context, reqBusOf, respBusOf []int) (*sim.Result, error) {
	req := stbus.Partial(r.App.NumInitiators, reqBusOf)
	resp := stbus.Partial(r.App.NumTargets, respBusOf)
	return sim.RunCtx(ctx, r.App.SimConfig(req, resp))
}

// RunShared simulates the application on the shared-bus configuration.
func (r *AppRun) RunShared() (*sim.Result, error) {
	return r.RunSharedCtx(context.Background())
}

// RunSharedCtx is RunShared with cancellation.
func (r *AppRun) RunSharedCtx(ctx context.Context) (*sim.Result, error) {
	req, resp := r.App.SharedConfig()
	res, err := sim.RunCtx(ctx, r.App.SimConfig(req, resp))
	if err != nil {
		return nil, fmt.Errorf("experiments: shared-bus simulation of %s: %w", r.App.Name, err)
	}
	return res, nil
}

package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workloads"
)

// These are the reproduction's integration tests: each experiment must
// regenerate the *shape* of the corresponding paper artifact — who
// wins, by roughly what factor, and where the crossovers fall. Exact
// values are recorded in EXPERIMENTS.md.

func TestPrepareAndValidate(t *testing.T) {
	run, err := Prepare(workloads.QSort(Seed))
	if err != nil {
		t.Fatal(err)
	}
	if run.AReq.NumReceivers != run.App.NumTargets {
		t.Errorf("request analysis has %d receivers, want %d", run.AReq.NumReceivers, run.App.NumTargets)
	}
	if run.AResp.NumReceivers != run.App.NumInitiators {
		t.Errorf("response analysis has %d receivers, want %d", run.AResp.NumReceivers, run.App.NumInitiators)
	}
	pair, err := run.Design(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if pair.TotalBuses() != pair.Req.NumBuses+pair.Resp.NumBuses {
		t.Error("TotalBuses mismatch")
	}
	res, err := run.Validate(pair)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Len() == 0 {
		t.Error("validation produced no samples")
	}
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite in -short mode")
	}
	rows, err := Table1(Seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	shared, full, partial := rows[0], rows[1], rows[2]
	// Latency ordering: shared ≫ partial ≥ full.
	if !(shared.AvgLat > 2*partial.AvgLat) {
		t.Errorf("shared avg %.2f not ≫ partial avg %.2f", shared.AvgLat, partial.AvgLat)
	}
	if partial.AvgLat < full.AvgLat {
		t.Errorf("partial avg %.2f below full avg %.2f", partial.AvgLat, full.AvgLat)
	}
	if partial.AvgLat > 2*full.AvgLat {
		t.Errorf("partial avg %.2f more than 2x full avg %.2f (paper: 9.9 vs 6)", partial.AvgLat, full.AvgLat)
	}
	// Size ordering: shared(1) < partial < full(10.5).
	if full.SizeRatio != 10.5 {
		t.Errorf("full size ratio = %.2f, want 10.5 (21 buses / 2)", full.SizeRatio)
	}
	if !(shared.SizeRatio == 1 && partial.SizeRatio > 1 && partial.SizeRatio < full.SizeRatio) {
		t.Errorf("size ratios out of order: %v / %v / %v", shared.SizeRatio, partial.SizeRatio, full.SizeRatio)
	}
	// Rendering sanity.
	if !strings.Contains(Table1Report(rows).String(), "partial") {
		t.Error("report missing partial row")
	}
}

func TestTable2MatchesPaperCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite in -short mode")
	}
	rows, err := Table2(Seed)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: Mat1 25→8, Mat2 21→6, FFT 29→15, QSort 15→6, DES 19→6.
	// Our substrate reproduces these exactly except FFT (14 vs 15, a
	// 2.07x vs 1.93x ratio) — see EXPERIMENTS.md.
	want := map[string]struct{ full, designed int }{
		"Mat1":  {25, 8},
		"Mat2":  {21, 6},
		"FFT":   {29, 14},
		"QSort": {15, 6},
		"DES":   {19, 6},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(rows), len(want))
	}
	for _, r := range rows {
		w, ok := want[r.App]
		if !ok {
			t.Errorf("unexpected app %q", r.App)
			continue
		}
		if r.FullBuses != w.full {
			t.Errorf("%s full buses = %d, want %d", r.App, r.FullBuses, w.full)
		}
		if r.DesignedBuses != w.designed {
			t.Errorf("%s designed buses = %d, want %d", r.App, r.DesignedBuses, w.designed)
		}
		if r.Ratio < 1.9 || r.Ratio > 3.6 {
			t.Errorf("%s savings ratio %.2f outside the paper's 1.93–3.5 band", r.App, r.Ratio)
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite in -short mode")
	}
	rows, err := Figure4(Seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	for _, r := range rows {
		// The window-based design must stay near the full crossbar...
		if r.WinRelAvg < 1 || r.WinRelAvg > 2.2 {
			t.Errorf("%s window design rel avg %.2f outside [1, 2.2]", r.App, r.WinRelAvg)
		}
		// ...and the average-flow design must be several times worse.
		if r.AvgRelAvg < 2.5*r.WinRelAvg {
			t.Errorf("%s avg design rel %.2f not ≫ window design rel %.2f",
				r.App, r.AvgRelAvg, r.WinRelAvg)
		}
		if r.AvgRelMax <= r.WinRelMax {
			t.Errorf("%s avg design max rel %.2f not above window design %.2f",
				r.App, r.AvgRelMax, r.WinRelMax)
		}
	}
}

func TestFigure5aShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite in -short mode")
	}
	points, err := Figure5a(Seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(Fig5aWindowSizes) {
		t.Fatalf("points = %d, want %d", len(points), len(Fig5aWindowSizes))
	}
	// Window ≪ burst: near-full crossbar (10 receivers).
	if points[0].Buses < 9 {
		t.Errorf("smallest window gives %d buses, want ≥ 9 (≈ full)", points[0].Buses)
	}
	// Window of 2–4 bursts: compact (the paper's ~25% regime).
	for _, p := range points {
		if p.WindowSize >= 2000 && p.WindowSize <= 4000 && p.Buses > 4 {
			t.Errorf("window %d gives %d buses, want ≤ 4", p.WindowSize, p.Buses)
		}
	}
	// Monotone non-increasing overall trend (each point ≤ its
	// predecessor plus slack of 1 for discreteness).
	for i := 1; i < len(points); i++ {
		if points[i].Buses > points[i-1].Buses {
			t.Errorf("size increased from %d to %d at window %d",
				points[i-1].Buses, points[i].Buses, points[i].WindowSize)
		}
	}
}

func TestFigure5bLinear(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite in -short mode")
	}
	points, err := Figure5b(Seed)
	if err != nil {
		t.Fatal(err)
	}
	ratios := make([]float64, 0, len(points))
	for _, p := range points {
		if p.AcceptableWS <= 0 {
			t.Fatalf("no acceptable window found for burst %d", p.BurstSize)
		}
		ratios = append(ratios, float64(p.AcceptableWS)/float64(p.BurstSize))
	}
	// Near-linear: the window/burst ratio stays within a tight band
	// (paper: "window size varies almost linearly with the burst size").
	min, max := ratios[0], ratios[0]
	for _, r := range ratios {
		if r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	if max/min > 1.35 {
		t.Errorf("window/burst ratios %v not near-linear", ratios)
	}
	// Monotone increasing windows with burst size.
	for i := 1; i < len(points); i++ {
		if points[i].AcceptableWS <= points[i-1].AcceptableWS {
			t.Errorf("acceptable window not increasing: %v", points)
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite in -short mode")
	}
	points, err := Figure6(Seed)
	if err != nil {
		t.Fatal(err)
	}
	// Monotone non-increasing in the threshold.
	for i := 1; i < len(points); i++ {
		if points[i].Buses > points[i-1].Buses {
			t.Errorf("size increased from %d to %d at threshold %.2f",
				points[i-1].Buses, points[i].Buses, points[i].Threshold)
		}
		if points[i].Conflicts > points[i-1].Conflicts {
			t.Errorf("conflicts increased with threshold at %.2f", points[i].Threshold)
		}
	}
	if points[0].Threshold != 0 || points[0].Buses < 9 {
		t.Errorf("0%% threshold gives %d buses, want ≈ full (≥9)", points[0].Buses)
	}
	last := points[len(points)-1]
	if last.Threshold != 0.5 || last.Buses > 5 {
		t.Errorf("50%% threshold gives %d buses, want ≤ 5", last.Buses)
	}
}

func TestBindingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite in -short mode")
	}
	rows, err := Binding(Seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	anyGain := false
	for _, r := range rows {
		// Random bindings must never beat the optimal one by a
		// meaningful margin.
		if r.Ratio < 0.93 {
			t.Errorf("%s random binding beats optimal: ratio %.2f", r.App, r.Ratio)
		}
		if r.Ratio > 1.15 {
			anyGain = true
		}
	}
	if !anyGain {
		t.Error("no application shows a binding benefit > 15%")
	}
}

func TestRealtimeShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite in -short mode")
	}
	res, err := Realtime(Seed)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CriticalSeparated {
		t.Error("overlapping critical receivers share a bus")
	}
	// "Very low packet latency (almost equal to ... a full crossbar)".
	if res.CriticalOverFull > 1.5 {
		t.Errorf("critical latency %.2fx of full crossbar, want ≤ 1.5x", res.CriticalOverFull)
	}
	if res.DesignedBuses >= workloads.Mat2(Seed).NumCores() {
		t.Error("real-time design degenerated to a full crossbar")
	}
}

func TestReportsRender(t *testing.T) {
	// Rendering helpers work on synthetic rows without running the
	// expensive experiments.
	t2 := Table2Report([]Table2Row{{App: "X", FullBuses: 10, DesignedBuses: 4, Ratio: 2.5}})
	if !strings.Contains(t2.String(), "2.50") {
		t.Error("Table2Report lost the ratio")
	}
	a, m := Figure4Report([]Figure4Row{{App: "X", AvgRelAvg: 5, WinRelAvg: 1.2, AvgRelMax: 6, WinRelMax: 2}})
	if !strings.Contains(a.String(), "5.00") || !strings.Contains(m.String(), "6.00") {
		t.Error("Figure4Report lost values")
	}
	s := Figure5aReport([]Fig5aPoint{{WindowSize: 100, Buses: 5}})
	if !strings.Contains(s.String(), "100") {
		t.Error("Figure5aReport lost the x value")
	}
	sb := Figure5bReport([]Fig5bPoint{{BurstSize: 1000, AcceptableWS: 2300}})
	if !strings.Contains(sb.String(), "2300") {
		t.Error("Figure5bReport lost the y value")
	}
	s6 := Figure6Report([]Fig6Point{{Threshold: 0.3, Buses: 6}})
	if !strings.Contains(s6.String(), "30") {
		t.Error("Figure6Report lost the threshold")
	}
	br := BindingReport([]BindingRow{{App: "X", OptimalAvg: 5, RandomAvg: 10, Ratio: 2}})
	if !strings.Contains(br.String(), "2.00") {
		t.Error("BindingReport lost the ratio")
	}
	rr := RealtimeReport(&RealtimeResult{CriticalSeparated: true, DesignedBuses: 6})
	if !strings.Contains(rr.String(), "true") {
		t.Error("RealtimeReport lost separation flag")
	}
}

package experiments

import (
	"context"

	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/stbus"
	"repro/internal/workloads"
)

// CostRow quantifies the area and power consequences of the designed
// crossbar versus the full crossbar for one application — the "design
// area and design power" savings the paper's introduction motivates
// (an extension artifact; the paper itself reports only bus counts).
type CostRow struct {
	App          string
	FullArea     float64
	DesignedArea float64
	AreaRatio    float64 // full / designed
	FullPower    float64
	DesignPower  float64
	PowerRatio   float64 // full / designed
	LatencyCost  float64 // designed avg packet latency / full's
}

// Cost runs the area/power comparison over the five benchmarks.
func Cost(seed int64) ([]CostRow, error) {
	return CostCtx(context.Background(), seed)
}

// CostCtx is Cost with cancellation; applications run concurrently,
// each writing its own row.
func CostCtx(ctx context.Context, seed int64) ([]CostRow, error) {
	areaModel := cost.DefaultAreaModel()
	powerModel := cost.DefaultPowerModel()
	apps := workloads.All(seed)
	rows := make([]CostRow, len(apps))
	err := conc.ForEach(ctx, len(apps), 0, func(ctx context.Context, i int) error {
		app := apps[i]
		run, err := PrepareCtx(ctx, app)
		if err != nil {
			return err
		}
		pair, err := run.DesignCtx(ctx, core.DefaultOptions())
		if err != nil {
			return err
		}
		designed, err := run.ValidateCtx(ctx, pair)
		if err != nil {
			return err
		}

		fullReq, fullResp := app.FullConfig()
		desReq := stbus.Partial(app.NumInitiators, pair.Req.BusOf)
		desResp := stbus.Partial(app.NumTargets, pair.Resp.BusOf)

		fullArea := areaModel.EstimatePairArea(fullReq, fullResp)
		desArea := areaModel.EstimatePairArea(desReq, desResp)

		fullPower, err := pairPower(powerModel, areaModel, fullReq, fullResp, run.Full)
		if err != nil {
			return err
		}
		desPower, err := pairPower(powerModel, areaModel, desReq, desResp, designed)
		if err != nil {
			return err
		}

		rows[i] = CostRow{
			App:          app.Name,
			FullArea:     fullArea.Total(),
			DesignedArea: desArea.Total(),
			AreaRatio:    fullArea.Total() / desArea.Total(),
			FullPower:    fullPower,
			DesignPower:  desPower,
			PowerRatio:   fullPower / desPower,
			LatencyCost:  designed.Latency.SummarizePacket().Avg / run.Full.Latency.SummarizePacket().Avg,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// pairPower sums both directions' per-cycle power for one run.
func pairPower(pm cost.PowerModel, am cost.AreaModel, req, resp *stbus.Config, res *sim.Result) (float64, error) {
	reqPower, err := pm.EstimatePower(req, am.EstimateArea(req),
		cost.ActivityFromUtilization(res.ReqUtil, res.ReqGrants, res.EndCycle))
	if err != nil {
		return 0, err
	}
	respPower, err := pm.EstimatePower(resp, am.EstimateArea(resp),
		cost.ActivityFromUtilization(res.RespUtil, res.RespGrants, res.EndCycle))
	if err != nil {
		return 0, err
	}
	return reqPower.Total() + respPower.Total(), nil
}

// CostReport renders the cost comparison.
func CostReport(rows []CostRow) *report.Table {
	t := report.NewTable("Extension: Area and Power of Designed vs Full Crossbars",
		"Application", "Area full", "Area designed", "Area ratio", "Power full", "Power designed", "Power ratio", "Latency cost")
	for _, r := range rows {
		t.AddRow(r.App, r.FullArea, r.DesignedArea, r.AreaRatio, r.FullPower, r.DesignPower, r.PowerRatio, r.LatencyCost)
	}
	return t
}

package experiments

import (
	"context"

	"repro/internal/conc"
	"repro/internal/core"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// AdaptiveRow compares fixed-size and adaptive (variable-size) window
// analysis on one workload — the paper's future-work extension
// ("variable simulation window sizes ... for guaranteeing QoS").
type AdaptiveRow struct {
	App          string
	FixedWindows int
	FixedBuses   int
	FixedAvgLat  float64
	AdaptWindows int
	AdaptBuses   int
	AdaptAvgLat  float64
	FullAvgLat   float64
}

// Adaptive runs the fixed-vs-adaptive window comparison on the
// synthetic benchmark (whose drifting bursts are the stress case for
// fixed window alignment) and on Mat2.
func Adaptive(seed int64) ([]AdaptiveRow, error) {
	return AdaptiveCtx(context.Background(), seed)
}

// AdaptiveCtx is Adaptive with cancellation; the two applications run
// concurrently, each writing its own row.
func AdaptiveCtx(ctx context.Context, seed int64) ([]AdaptiveRow, error) {
	apps := []*workloads.App{workloads.Synthetic(seed, 1000), workloads.Mat2(seed)}
	rows := make([]AdaptiveRow, len(apps))
	err := conc.ForEach(ctx, len(apps), 0, func(ctx context.Context, i int) error {
		app := apps[i]
		run, err := PrepareCtx(ctx, app)
		if err != nil {
			return err
		}
		opts := core.DefaultOptions()
		if app.Name == "Synth" {
			opts.MaxPerBus = 0
			opts.OverlapThreshold = -1
		}

		// Fixed windows at the app's recommended size (the Figure 5
		// operating point).
		fixedPair, err := run.DesignCtx(ctx, opts)
		if err != nil {
			return err
		}
		fixedRes, err := run.ValidateCtx(ctx, fixedPair)
		if err != nil {
			return err
		}

		// Adaptive windows between 1× and 4× the recommended size,
		// aligned to burst onsets.
		aReq, err := trace.AnalyzeAdaptive(run.Full.ReqTrace, app.WindowSize, 4*app.WindowSize)
		if err != nil {
			return err
		}
		aResp, err := trace.AnalyzeAdaptive(run.Full.RespTrace, app.WindowSize, 4*app.WindowSize)
		if err != nil {
			return err
		}
		dReq, err := core.DesignCrossbarCtx(ctx, aReq, opts)
		if err != nil {
			return err
		}
		dResp, err := core.DesignCrossbarCtx(ctx, aResp, opts)
		if err != nil {
			return err
		}
		adaptPair := &DesignPair{Req: dReq, Resp: dResp}
		adaptRes, err := run.ValidateCtx(ctx, adaptPair)
		if err != nil {
			return err
		}

		rows[i] = AdaptiveRow{
			App:          app.Name,
			FixedWindows: run.AReq.NumWindows(),
			FixedBuses:   fixedPair.TotalBuses(),
			FixedAvgLat:  fixedRes.Latency.SummarizePacket().Avg,
			AdaptWindows: aReq.NumWindows(),
			AdaptBuses:   adaptPair.TotalBuses(),
			AdaptAvgLat:  adaptRes.Latency.SummarizePacket().Avg,
			FullAvgLat:   run.Full.Latency.SummarizePacket().Avg,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// AdaptiveReport renders the comparison.
func AdaptiveReport(rows []AdaptiveRow) *report.Table {
	t := report.NewTable("Extension (paper future work): Fixed vs Adaptive Analysis Windows",
		"Application", "Fixed wins", "Fixed buses", "Fixed avg lat", "Adaptive wins", "Adaptive buses", "Adaptive avg lat", "Full avg lat")
	for _, r := range rows {
		t.AddRow(r.App, r.FixedWindows, r.FixedBuses, r.FixedAvgLat, r.AdaptWindows, r.AdaptBuses, r.AdaptAvgLat, r.FullAvgLat)
	}
	return t
}

package experiments

import (
	"strings"
	"testing"
)

func TestCostShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite in -short mode")
	}
	rows, err := Cost(Seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	for _, r := range rows {
		if r.AreaRatio <= 1 {
			t.Errorf("%s: designed crossbar not smaller in area (ratio %.2f)", r.App, r.AreaRatio)
		}
		if r.PowerRatio <= 1 {
			t.Errorf("%s: designed crossbar not cheaper in power (ratio %.2f)", r.App, r.PowerRatio)
		}
		// Area savings track the bus-count savings band of Table 2.
		if r.AreaRatio > 4 {
			t.Errorf("%s: area ratio %.2f implausibly high", r.App, r.AreaRatio)
		}
		if r.LatencyCost < 1 || r.LatencyCost > 2.2 {
			t.Errorf("%s: latency cost %.2f outside [1, 2.2]", r.App, r.LatencyCost)
		}
	}
	if !strings.Contains(CostReport(rows).String(), "Mat2") {
		t.Error("report missing Mat2 row")
	}
}

func TestAdaptiveShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite in -short mode")
	}
	rows, err := Adaptive(Seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.AdaptWindows >= r.FixedWindows {
			t.Errorf("%s: adaptive windows %d not fewer than fixed %d",
				r.App, r.AdaptWindows, r.FixedWindows)
		}
		if r.AdaptBuses > r.FixedBuses {
			t.Errorf("%s: adaptive design larger (%d) than fixed (%d)",
				r.App, r.AdaptBuses, r.FixedBuses)
		}
		// Validated latency must remain sane (within 2x of the fixed
		// design).
		if r.AdaptAvgLat > 2*r.FixedAvgLat {
			t.Errorf("%s: adaptive latency %.2f blew past fixed %.2f",
				r.App, r.AdaptAvgLat, r.FixedAvgLat)
		}
	}
	if !strings.Contains(AdaptiveReport(rows).String(), "Synth") {
		t.Error("report missing Synth row")
	}
}

func TestRobustnessStableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite in -short mode")
	}
	rows, err := Robustness([]int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	for _, r := range rows {
		if len(r.Buses) != 3 {
			t.Errorf("%s: %d seed results, want 3", r.App, len(r.Buses))
		}
		// The headline claim: Table 2's counts are seed-independent.
		if !r.Stable {
			t.Errorf("%s: bus counts vary across seeds: %v", r.App, r.Buses)
		}
	}
	if !strings.Contains(RobustnessReport(rows).String(), "true") {
		t.Error("report missing stability flag")
	}
}

func TestMultiUseShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment suite in -short mode")
	}
	r, err := MultiUse(Seed)
	if err != nil {
		t.Fatal(err)
	}
	// The merged design must not grow beyond the per-mode designs'
	// envelope (cap-driven here: all three land on 6 buses).
	if r.BusesMerged > r.BusesA+r.BusesB {
		t.Errorf("merged design exploded: %d buses", r.BusesMerged)
	}
	// On each mode, the merged design must match the mode's own design
	// (within 10%) and never be worse than the wrong-mode design.
	if r.MergedA > 1.1*r.AOnA {
		t.Errorf("merged on A = %.2f, mode-A design = %.2f", r.MergedA, r.AOnA)
	}
	if r.MergedB > 1.1*r.BOnB {
		t.Errorf("merged on B = %.2f, mode-B design = %.2f", r.MergedB, r.BOnB)
	}
	if r.MergedA > r.BOnA {
		t.Errorf("merged on A (%.2f) worse than B-only design (%.2f)", r.MergedA, r.BOnA)
	}
	if !strings.Contains(MultiUseReport(r).String(), "merged") {
		t.Error("report missing merged row")
	}
}

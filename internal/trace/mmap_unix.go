//go:build unix

package trace

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only. The returned release func
// unmaps; the data must not be used after calling it.
func mapFile(f *os.File, size int) ([]byte, func() error, error) {
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}

package trace

import (
	"errors"
	"fmt"

	"repro/internal/ds"
)

// MergeAnalyses combines the windowed analyses of several traffic
// scenarios over the *same platform* (equal receiver counts) into one
// design problem, enabling multi-use-case crossbar design: a binding
// feasible for the merged analysis satisfies the per-window bandwidth
// constraint of every window of every scenario, the conflict
// pre-processing sees every scenario's overlaps, and the binding
// objective minimizes the summed aggregate overlap.
//
// Mechanically the scenarios' windows are concatenated (window
// constraints are per-window and independent, so the union of window
// sets is exactly the intersection of the scenarios' feasible sets)
// and their aggregate overlap matrices are added. Boundaries are
// re-based onto a synthetic concatenated timeline.
func MergeAnalyses(analyses ...*Analysis) (*Analysis, error) {
	if len(analyses) == 0 {
		return nil, errors.New("trace: nothing to merge")
	}
	if len(analyses) == 1 {
		return analyses[0], nil
	}
	nT := analyses[0].NumReceivers
	totalWindows := 0
	for i, a := range analyses {
		if a.NumReceivers != nT {
			return nil, fmt.Errorf("trace: scenario %d has %d receivers, want %d", i, a.NumReceivers, nT)
		}
		totalWindows += a.NumWindows()
	}

	merged := &Analysis{
		NumReceivers: nT,
		Boundaries:   make([]int64, 1, totalWindows+1),
		Comm:         concatRows(nT, totalWindows, analyses, func(a *Analysis) matrixView { return a.Comm.At }),
		CritComm:     concatRows(nT, totalWindows, analyses, func(a *Analysis) matrixView { return a.CritComm.At }),
		OM:           analyses[0].OM.Clone(),
	}
	nPairs := nT * (nT - 1) / 2
	merged.Overlap = concatSparseRows(nPairs, totalWindows, analyses, func(a *Analysis) *ds.SparseInt64Matrix { return a.Overlap })
	merged.CritOverlap = concatSparseRows(nPairs, totalWindows, analyses, func(a *Analysis) *ds.SparseInt64Matrix { return a.CritOverlap })

	// Concatenated timeline boundaries.
	offset := int64(0)
	for _, a := range analyses {
		for m := 0; m < a.NumWindows(); m++ {
			offset += a.WindowLen(m)
			merged.Boundaries = append(merged.Boundaries, offset)
		}
	}
	// Sum the aggregate overlap matrices of the remaining scenarios.
	for _, a := range analyses[1:] {
		for i := 0; i < nT; i++ {
			for j := i + 1; j < nT; j++ {
				if v := a.OM.At(i, j); v != 0 {
					merged.OM.AddAt(i, j, v)
				}
			}
		}
	}
	return merged, nil
}

type matrixView func(r, c int) int64

// concatRows builds a rows×totalWindows matrix whose columns are the
// scenarios' windows concatenated in order.
func concatRows(rows, totalWindows int, analyses []*Analysis, view func(*Analysis) matrixView) *ds.Int64Matrix {
	out := ds.NewInt64Matrix(rows, totalWindows)
	col := 0
	for _, a := range analyses {
		at := view(a)
		for m := 0; m < a.NumWindows(); m++ {
			for r := 0; r < rows; r++ {
				out.Set(r, col, at(r, m))
			}
			col++
		}
	}
	return out
}

// concatSparseRows concatenates the scenarios' sparse per-window rows
// along the window axis. Iterating rows outer and scenarios inner keeps
// columns nondecreasing within each output row, as Append requires.
func concatSparseRows(rows, totalWindows int, analyses []*Analysis, view func(*Analysis) *ds.SparseInt64Matrix) *ds.SparseInt64Matrix {
	out := ds.NewSparseInt64Matrix(rows, totalWindows)
	for r := 0; r < rows; r++ {
		col := 0
		for _, a := range analyses {
			for _, cell := range view(a).RowCells(r) {
				out.Append(r, col+int(cell.Col), cell.Val)
			}
			col += a.NumWindows()
		}
	}
	out.Compact()
	return out
}

package trace

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary trace format v2 — compact columnar blocks.
//
// The 32-byte file header is shared with v1 (magic "STBT", version 2,
// numReceivers, numSenders, horizon, numEvents); the event stream is a
// sequence of blocks, each holding up to 65536 start-ordered events:
//
//	block header (24 bytes, little-endian):
//	  count      uint32  events in this block (1..65536)
//	  payloadLen uint32  bytes of payload that follow
//	  firstStart uint64  start cycle of the block's first event
//	  maxEnd     uint64  max(start+len) over the block's events
//	payload (column-grouped):
//	  count-1 uvarint  start deltas (event k starts at start[k-1]+delta)
//	  count   uvarint  lengths
//	  count   uvarint  senders
//	  count   uvarint  receivers
//	  ⌈count/8⌉ bytes  critical bitmap (LSB-first)
//
// Start deltas are unsigned, so a valid v2 stream is start-ordered by
// construction — the property the sweep kernel and the sharded driver
// need. firstStart/maxEnd summarize the block's cycle range, which is
// what lets the sharded reader skip blocks that cannot intersect a
// shard; every block is still fully decoded by the shard owning its
// firstStart, which verifies maxEnd against the decoded events, so a
// corrupt summary is an error rather than silently dropped work.
//
// On the benchmark workloads (bursty starts, short grants, few
// senders) the payload averages ≈4–5 bytes/event versus 25 in v1.

const (
	binaryVersionV2 = 2

	// v2BlockMaxEvents caps one block; 65536 events keeps the decode
	// working set near 256 KiB while leaving block headers negligible.
	v2BlockMaxEvents = 1 << 16

	// v2BlockHeaderSize is the fixed block header size.
	v2BlockHeaderSize = 24

	// v2MaxPayload bounds a declared payload length against hostile
	// headers: 10-byte worst-case varints for all four columns plus the
	// bitmap stays well under it.
	v2MaxPayload = 41*v2BlockMaxEvents + 8
)

// v2BlockHeader is one parsed block header.
type v2BlockHeader struct {
	count      uint32
	payloadLen uint32
	firstStart int64
	maxEnd     int64
}

func parseV2BlockHeader(buf *[v2BlockHeaderSize]byte) v2BlockHeader {
	return v2BlockHeader{
		count:      binary.LittleEndian.Uint32(buf[0:]),
		payloadLen: binary.LittleEndian.Uint32(buf[4:]),
		firstStart: int64(binary.LittleEndian.Uint64(buf[8:])),
		maxEnd:     int64(binary.LittleEndian.Uint64(buf[16:])),
	}
}

func (bh *v2BlockHeader) validate(remaining uint64) error {
	if bh.count == 0 || bh.count > v2BlockMaxEvents {
		return fmt.Errorf("trace: v2 block count %d outside 1..%d", bh.count, v2BlockMaxEvents)
	}
	if uint64(bh.count) > remaining {
		return fmt.Errorf("trace: v2 block holds %d events but only %d remain", bh.count, remaining)
	}
	if bh.payloadLen > v2MaxPayload {
		return fmt.Errorf("trace: v2 block payload %d exceeds limit %d", bh.payloadLen, v2MaxPayload)
	}
	if bh.firstStart < 0 || bh.maxEnd <= bh.firstStart {
		return fmt.Errorf("trace: v2 block cycle range [%d,%d) invalid", bh.firstStart, bh.maxEnd)
	}
	return nil
}

// v2DecodeBlock decodes one block payload, yielding events in order.
// It performs the structural checks — varints in bounds, payload fully
// consumed, first start matching the header, nonnegative spans, and
// the decoded max end equal to the header's maxEnd (the summary the
// sharded reader plans with). Semantic validation (receiver ranges,
// horizon) is the caller's, matching the v1 paths.
func v2DecodeBlock(bh v2BlockHeader, payload []byte, yield func(Event) error) error {
	n := int(bh.count)
	if int(bh.payloadLen) != len(payload) {
		return fmt.Errorf("trace: v2 block payload: got %d bytes, header says %d", len(payload), bh.payloadLen)
	}

	// Column offsets: walk the varint columns once to slice them.
	starts := make([]int64, n)
	starts[0] = bh.firstStart
	pos := 0
	readUvarint := func() (uint64, error) {
		v, k := binary.Uvarint(payload[pos:])
		if k <= 0 {
			return 0, fmt.Errorf("trace: v2 block: truncated or oversized varint at payload offset %d", pos)
		}
		pos += k
		return v, nil
	}
	for k := 1; k < n; k++ {
		d, err := readUvarint()
		if err != nil {
			return err
		}
		s := starts[k-1] + int64(d)
		if s < starts[k-1] { // overflow
			return fmt.Errorf("trace: v2 block: start delta overflows at event %d", k)
		}
		starts[k] = s
	}
	lens := make([]int64, n)
	for k := 0; k < n; k++ {
		v, err := readUvarint()
		if err != nil {
			return err
		}
		lens[k] = int64(v)
		if lens[k] < 0 {
			return fmt.Errorf("trace: v2 block: length overflows at event %d", k)
		}
	}
	senders := make([]int, n)
	for k := 0; k < n; k++ {
		v, err := readUvarint()
		if err != nil {
			return err
		}
		if v > 1<<31 {
			return fmt.Errorf("trace: v2 block: implausible sender %d", v)
		}
		senders[k] = int(v)
	}
	recvs := make([]int, n)
	for k := 0; k < n; k++ {
		v, err := readUvarint()
		if err != nil {
			return err
		}
		if v > 1<<31 {
			return fmt.Errorf("trace: v2 block: implausible receiver %d", v)
		}
		recvs[k] = int(v)
	}
	bitmapLen := (n + 7) / 8
	if len(payload)-pos != bitmapLen {
		return fmt.Errorf("trace: v2 block: %d payload bytes after columns, want %d bitmap bytes", len(payload)-pos, bitmapLen)
	}
	bitmap := payload[pos:]

	maxEnd := int64(0)
	for k := 0; k < n; k++ {
		end := starts[k] + lens[k]
		if end < starts[k] {
			return fmt.Errorf("trace: v2 block: event %d span overflows", k)
		}
		if end > maxEnd {
			maxEnd = end
		}
		ev := Event{
			Start:    starts[k],
			Len:      lens[k],
			Sender:   senders[k],
			Receiver: recvs[k],
			Critical: bitmap[k/8]&(1<<(k%8)) != 0,
		}
		if err := yield(ev); err != nil {
			return err
		}
	}
	if maxEnd != bh.maxEnd {
		return fmt.Errorf("trace: v2 block: header maxEnd %d does not match decoded %d", bh.maxEnd, maxEnd)
	}
	return nil
}

// V2Writer streams a trace into the v2 columnar format. The event
// count must be known up-front (it lives in the file header); Add
// enforces nondecreasing start cycles and Close fails if the count
// does not match. The writer buffers at most one block.
type V2Writer struct {
	bw        *bufio.Writer
	remaining uint64
	lastStart int64
	events    []Event // pending block
	hdrBuf    [v2BlockHeaderSize]byte
	payload   []byte
	err       error
}

// NewV2Writer writes the v2 file header and returns a streaming
// writer. numEvents is the exact number of Add calls to come.
func NewV2Writer(w io.Writer, numReceivers, numSenders int, horizon int64, numEvents uint64) (*V2Writer, error) {
	if numReceivers <= 0 || numSenders <= 0 || horizon <= 0 {
		return nil, fmt.Errorf("trace: v2 writer: invalid shape (%d receivers, %d senders, horizon %d)", numReceivers, numSenders, horizon)
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return nil, err
	}
	hdr := []any{
		uint32(binaryVersionV2),
		uint32(numReceivers),
		uint32(numSenders),
		uint64(horizon),
		numEvents,
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return nil, err
		}
	}
	return &V2Writer{bw: bw, remaining: numEvents, lastStart: -1}, nil
}

// Add appends one event; events must arrive in nondecreasing start
// order (sort with Trace sorting or feed simulator output directly).
func (w *V2Writer) Add(e Event) error {
	if w.err != nil {
		return w.err
	}
	if w.remaining == 0 {
		return w.fail(fmt.Errorf("trace: v2 writer: more events than the declared count"))
	}
	if e.Start < w.lastStart {
		return w.fail(fmt.Errorf("trace: v2 writer: event starts at %d, before the previous start %d — v2 requires start-ordered events", e.Start, w.lastStart))
	}
	if e.Start < 0 || e.Len <= 0 || e.Sender < 0 || e.Receiver < 0 {
		return w.fail(fmt.Errorf("trace: v2 writer: invalid event [%d,+%d) sender %d receiver %d", e.Start, e.Len, e.Sender, e.Receiver))
	}
	w.lastStart = e.Start
	w.remaining--
	w.events = append(w.events, e)
	if len(w.events) == v2BlockMaxEvents {
		return w.flushBlock()
	}
	return nil
}

func (w *V2Writer) fail(err error) error {
	w.err = err
	return err
}

func (w *V2Writer) flushBlock() error {
	evs := w.events
	n := len(evs)
	if n == 0 {
		return nil
	}
	p := w.payload[:0]
	for k := 1; k < n; k++ {
		p = binary.AppendUvarint(p, uint64(evs[k].Start-evs[k-1].Start))
	}
	maxEnd := int64(0)
	for k := 0; k < n; k++ {
		p = binary.AppendUvarint(p, uint64(evs[k].Len))
		if end := evs[k].End(); end > maxEnd {
			maxEnd = end
		}
	}
	for k := 0; k < n; k++ {
		p = binary.AppendUvarint(p, uint64(evs[k].Sender))
	}
	for k := 0; k < n; k++ {
		p = binary.AppendUvarint(p, uint64(evs[k].Receiver))
	}
	bitmapOff := len(p)
	for k := 0; k < (n+7)/8; k++ {
		p = append(p, 0)
	}
	for k := 0; k < n; k++ {
		if evs[k].Critical {
			p[bitmapOff+k/8] |= 1 << (k % 8)
		}
	}
	w.payload = p

	binary.LittleEndian.PutUint32(w.hdrBuf[0:], uint32(n))
	binary.LittleEndian.PutUint32(w.hdrBuf[4:], uint32(len(p)))
	binary.LittleEndian.PutUint64(w.hdrBuf[8:], uint64(evs[0].Start))
	binary.LittleEndian.PutUint64(w.hdrBuf[16:], uint64(maxEnd))
	if _, err := w.bw.Write(w.hdrBuf[:]); err != nil {
		return w.fail(err)
	}
	if _, err := w.bw.Write(p); err != nil {
		return w.fail(err)
	}
	w.events = w.events[:0]
	return nil
}

// Close flushes the final block and the underlying buffer. It fails if
// fewer events were added than the header declared.
func (w *V2Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.remaining != 0 {
		return w.fail(fmt.Errorf("trace: v2 writer: %d declared events were never added", w.remaining))
	}
	if err := w.flushBlock(); err != nil {
		return err
	}
	if err := w.bw.Flush(); err != nil {
		return w.fail(err)
	}
	return nil
}

// WriteBinaryV2 serializes the trace in the v2 columnar format. Events
// are sorted by start cycle first (the format requires it), so a
// v1→v2 re-encode preserves the logical trace — and therefore its
// analysis fingerprint — but not necessarily the slice order.
func WriteBinaryV2(w io.Writer, tr *Trace) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	events := sortEventsByStart(tr.Events)
	vw, err := NewV2Writer(w, tr.NumReceivers, tr.NumSenders, tr.Horizon, uint64(len(events)))
	if err != nil {
		return err
	}
	for _, e := range events {
		if err := vw.Add(e); err != nil {
			return err
		}
	}
	return vw.Close()
}

// readV2Events reads the block stream after a v2 header, appending
// decoded events to the trace (the ReadBinary half of v2 support).
func readV2Events(br *bufio.Reader, hdr binHeader, tr *Trace) error {
	var hb [v2BlockHeaderSize]byte
	payload := make([]byte, 0, 1<<16)
	var done uint64
	lastStart := int64(-1)
	for done < hdr.numEvents {
		if _, err := io.ReadFull(br, hb[:]); err != nil {
			return fmt.Errorf("trace: reading v2 block header at event %d: %w", done, err)
		}
		bh := parseV2BlockHeader(&hb)
		if err := bh.validate(hdr.numEvents - done); err != nil {
			return err
		}
		if bh.firstStart < lastStart {
			return fmt.Errorf("trace: v2 block at event %d starts at %d, before the previous start %d", done, bh.firstStart, lastStart)
		}
		payload = growTo(payload, int(bh.payloadLen))
		if _, err := io.ReadFull(br, payload); err != nil {
			return fmt.Errorf("trace: reading v2 block payload at event %d: %w", done, err)
		}
		err := v2DecodeBlock(bh, payload, func(e Event) error {
			tr.Events = append(tr.Events, e)
			lastStart = e.Start
			return nil
		})
		if err != nil {
			return err
		}
		done += uint64(bh.count)
	}
	return nil
}

// analyzeReaderV2 is the v2 half of AnalyzeReader: stream blocks,
// validate each record against the header shape, feed the sweeper.
func analyzeReaderV2(ctx context.Context, br *bufio.Reader, hdr binHeader, sw *sweeper, nT, nS int) error {
	var hb [v2BlockHeaderSize]byte
	payload := make([]byte, 0, 1<<16)
	var done uint64
	lastStart := int64(-1)
	for done < hdr.numEvents {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("trace: analysis canceled: %w", err)
		}
		if _, err := io.ReadFull(br, hb[:]); err != nil {
			return fmt.Errorf("trace: reading v2 block header at event %d: %w", done, err)
		}
		bh := parseV2BlockHeader(&hb)
		if err := bh.validate(hdr.numEvents - done); err != nil {
			return err
		}
		if bh.firstStart < lastStart {
			return fmt.Errorf("trace: v2 block at event %d starts at %d, before the previous start %d", done, bh.firstStart, lastStart)
		}
		payload = growTo(payload, int(bh.payloadLen))
		if _, err := io.ReadFull(br, payload); err != nil {
			return fmt.Errorf("trace: reading v2 block payload at event %d: %w", done, err)
		}
		i := done
		err := v2DecodeBlock(bh, payload, func(e Event) error {
			if err := validateStreamEvent(i, e, nT, nS, hdr.horizon); err != nil {
				return err
			}
			lastStart = e.Start
			sw.feed(e.Start, e.Len, e.Receiver, e.Critical)
			i++
			return nil
		})
		if err != nil {
			return err
		}
		done += uint64(bh.count)
	}
	return nil
}

// growTo returns buf resized to n bytes, reallocating if its capacity
// is short (payloadLen is bounded by v2MaxPayload before this runs).
func growTo(buf []byte, n int) []byte {
	if n <= cap(buf) {
		return buf[:n]
	}
	return make([]byte, n)
}

// validateStreamEvent applies the per-record semantic checks shared by
// the streaming and sharded byte-backed paths.
func validateStreamEvent(i uint64, e Event, nT, nS int, horizon int64) error {
	switch {
	case e.Receiver < 0 || e.Receiver >= nT:
		return fmt.Errorf("trace: event %d receiver %d out of range [0,%d)", i, e.Receiver, nT)
	case e.Sender < 0 || e.Sender >= nS:
		return fmt.Errorf("trace: event %d sender %d out of range [0,%d)", i, e.Sender, nS)
	case e.Len <= 0:
		return fmt.Errorf("trace: event %d has non-positive length %d", i, e.Len)
	case e.Start < 0 || e.Start >= horizon || e.Len > horizon-e.Start:
		return fmt.Errorf("trace: event %d [%d,+%d) outside horizon %d", i, e.Start, e.Len, horizon)
	}
	return nil
}

// v2IndexEntry is one block of a parsed in-memory v2 image: where its
// payload lives and the planning summary from its header.
type v2IndexEntry struct {
	off       int // payload offset in the image
	bh        v2BlockHeader
	cumEvents uint64 // events before this block
}

// parseV2Index walks the block headers of a v2 image (payloads are
// skipped, so this is O(blocks), not O(events)) and returns the block
// index the sharded reader plans with. body is the image after the
// 32-byte file header.
func parseV2Index(body []byte, hdr binHeader) ([]v2IndexEntry, error) {
	var idx []v2IndexEntry
	pos := 0
	var done uint64
	lastFirst := int64(-1)
	for done < hdr.numEvents {
		if len(body)-pos < v2BlockHeaderSize {
			return nil, fmt.Errorf("trace: v2 image truncated at block header (event %d)", done)
		}
		var hb [v2BlockHeaderSize]byte
		copy(hb[:], body[pos:])
		bh := parseV2BlockHeader(&hb)
		if err := bh.validate(hdr.numEvents - done); err != nil {
			return nil, err
		}
		if bh.firstStart < lastFirst {
			return nil, fmt.Errorf("trace: v2 block at event %d starts at %d, before the previous block's first start %d", done, bh.firstStart, lastFirst)
		}
		lastFirst = bh.firstStart
		pos += v2BlockHeaderSize
		if len(body)-pos < int(bh.payloadLen) {
			return nil, fmt.Errorf("trace: v2 image truncated at block payload (event %d)", done)
		}
		idx = append(idx, v2IndexEntry{off: pos, bh: bh, cumEvents: done})
		pos += int(bh.payloadLen)
		done += uint64(bh.count)
	}
	if pos != len(body) {
		return nil, fmt.Errorf("trace: %d trailing bytes after the last v2 block", len(body)-pos)
	}
	return idx, nil
}

package trace

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"

	"repro/internal/ds"
	"repro/internal/obs"
)

// Sweep-kernel instruments: coverage segments credited (one per maximal
// per-receiver busy interval), sparse overlap cells produced, and the
// peak size of the active-receiver set of the last analysis.
var (
	metSweepSegments = obs.NewCounter("trace.sweep.segments")
	metSparseCells   = obs.NewCounter("trace.sweep.sparse_cells")
	gagActivePeak    = obs.NewGauge("trace.sweep.active_peak")
)

// sweepStream is the sweep-line state of one traffic class (all
// traffic, or the critical subset). Events must be fed in
// nondecreasing Start order; the stream maintains, per receiver, the
// current maximal busy interval ("coverage") and an active-receiver
// bitset, and credits the output tables when a coverage interval
// closes:
//
//   - Comm[i] gets the closed interval, split across windows;
//   - for every receiver j still active, the pair (i,j) gets the
//     intersection [max(since_i, since_j), until_i), split across
//     windows into the sparse Overlap row — each maximal pairwise
//     overlap interval is credited exactly once, when its earlier
//     endpoint closes.
//
// Deactivations are processed in nondecreasing coverage-end order, so
// at i's deactivation every active j satisfies until_j ≥ until_i and
// the intersection is exact. The next receiver to close is found by a
// linear scan of the active bitset guarded by a cached lower bound on
// the minimum coverage end: the scan is O(active), the same order as
// the pair-credit loop every deactivation already pays, and far
// cheaper in constants than a heap at the active-set sizes real
// traffic produces. Total work is O(E + active · segments) plus the
// windows actually touched — versus the legacy kernel's
// O(R²·intervals) allocated interval-set intersections.
type sweepStream struct {
	nT         int
	boundaries []int64

	overlap *ds.SparseInt64Matrix

	// commRows aliases the dense Comm matrix's rows so per-segment
	// crediting skips the row-offset computation.
	commRows [][]int64

	// pairBase turns the triangular pair-row formula into one lookup:
	// row(i, j) = pairBase[i] + j for i < j.
	pairBase []int

	active      []uint64 // active-receiver bitset (1 word for R ≤ 64)
	activeCount int
	peakActive  int
	segments    int64

	since []int64 // coverage start per active receiver
	until []int64 // coverage end per active receiver

	// minUntil is a lower bound on min(until[r] : r active), MaxInt64
	// when no receiver is active, and minRecv the receiver achieving it
	// (-1 when unknown). deactivate refreshes both for free inside its
	// pair-credit loop, so steady-state draining needs no extra scans;
	// a coverage extension can leave them stale, which advance detects
	// and repairs with one O(active) scan.
	minUntil int64
	minRecv  int

	// hiWin is the window containing the most recent credit end. Both
	// ends and credit intervals advance monotonically, so windows are
	// located by nudging this cursor instead of binary searching.
	hiWin int
}

func newSweepStream(nT int, boundaries []int64, comm *ds.Int64Matrix, overlap *ds.SparseInt64Matrix) *sweepStream {
	s := &sweepStream{
		nT:         nT,
		boundaries: boundaries,
		overlap:    overlap,
		commRows:   make([][]int64, nT),
		pairBase:   make([]int, nT),
		active:     make([]uint64, (nT+63)/64),
		since:      make([]int64, nT),
		until:      make([]int64, nT),
		minUntil:   math.MaxInt64,
		minRecv:    -1,
	}
	for i := 0; i < nT; i++ {
		s.commRows[i] = comm.Row(i)
		s.pairBase[i] = i*(2*nT-i-1)/2 - i - 1
	}
	return s
}

// apply feeds one busy interval [start, end) of receiver r. Start
// values must be nondecreasing across calls.
func (s *sweepStream) apply(start, end int64, r int) {
	if s.minUntil <= start {
		s.advance(start)
	}
	if s.active[r>>6]&(1<<uint(r&63)) != 0 {
		// Already covered through until[r] > start: extend if the new
		// interval reaches further, otherwise it is subsumed. Extending
		// the tracked minimum makes it stale; advance repairs that.
		if end > s.until[r] {
			s.until[r] = end
			if r == s.minRecv {
				s.minRecv = -1
			}
		}
		return
	}
	s.active[r>>6] |= 1 << uint(r&63)
	s.activeCount++
	if s.activeCount > s.peakActive {
		s.peakActive = s.activeCount
	}
	s.since[r] = start
	s.until[r] = end
	if end < s.minUntil {
		s.minUntil = end
		s.minRecv = r
	}
}

// advance closes every coverage interval ending at or before t, in
// nondecreasing end order. Receivers whose ends coincide may close in
// any order: the pair credit between them is emitted by whichever
// closes first and the result is identical.
func (s *sweepStream) advance(t int64) {
	for s.minUntil <= t {
		r := s.minRecv
		if r < 0 || s.until[r] != s.minUntil {
			// Stale from an extension: rescan for the true minimum.
			m := int64(math.MaxInt64)
			r = -1
			for wi, w := range s.active {
				base := wi << 6
				for w != 0 {
					j := base + bits.TrailingZeros64(w)
					w &= w - 1
					if s.until[j] < m {
						r, m = j, s.until[j]
					}
				}
			}
			s.minUntil, s.minRecv = m, r
			if r < 0 || m > t {
				return
			}
		}
		s.deactivate(r)
	}
}

// finish closes all remaining coverage.
func (s *sweepStream) finish() { s.advance(math.MaxInt64) }

func (s *sweepStream) deactivate(r int) {
	end := s.until[r]
	s.active[r>>6] &^= 1 << uint(r&63)
	s.activeCount--
	s.segments++

	// Move the window cursor to the window containing cycle end-1;
	// deactivations arrive in nondecreasing end order.
	nW := len(s.boundaries) - 1
	for s.hiWin < nW-1 && s.boundaries[s.hiWin+1] < end {
		s.hiWin++
	}

	s.creditComm(r, s.since[r], end)
	lo0 := s.since[r]
	// The credit loop already visits every remaining active receiver, so
	// the next deactivation candidate falls out for free.
	nextMin, nextRecv := int64(math.MaxInt64), -1
	for wi, w := range s.active {
		base := wi << 6
		for w != 0 {
			j := base + bits.TrailingZeros64(w)
			w &= w - 1
			if u := s.until[j]; u < nextMin {
				nextMin, nextRecv = u, j
			}
			lo := lo0
			if s.since[j] > lo {
				lo = s.since[j]
			}
			if lo < end {
				s.creditPair(r, j, lo, end)
			}
		}
	}
	s.minUntil, s.minRecv = nextMin, nextRecv
}

// creditComm adds the coverage [lo, hi) of receiver i to its dense
// Comm row, split across windows.
func (s *sweepStream) creditComm(i int, lo, hi int64) {
	m := s.hiWin
	for s.boundaries[m] > lo {
		m--
	}
	row := s.commRows[i]
	for lo < hi {
		wEnd := s.boundaries[m+1]
		if wEnd > hi {
			wEnd = hi
		}
		row[m] += wEnd - lo
		lo = wEnd
		m++
	}
}

// creditPair adds the overlap [lo, hi) of receivers i and j to their
// sparse Overlap row, split across windows. The aggregate OM is not
// updated here: it is the row sums of the finished Overlap table, and
// summing the compacted cells once at the end is far cheaper than an
// extra triangular-matrix update on every credit.
func (s *sweepStream) creditPair(i, j int, lo, hi int64) {
	if i > j {
		i, j = j, i
	}
	row := s.pairBase[i] + j
	m := s.hiWin
	for s.boundaries[m] > lo {
		m--
	}
	for lo < hi {
		wEnd := s.boundaries[m+1]
		if wEnd > hi {
			wEnd = hi
		}
		s.overlap.Append(row, m, wEnd-lo)
		lo = wEnd
		m++
	}
}

// sweeper drives the two per-class streams over one start-ordered
// event feed and assembles the Analysis.
type sweeper struct {
	a          *Analysis
	busy, crit *sweepStream
}

func newSweeper(nT int, boundaries []int64) *sweeper {
	a := newAnalysis(nT, boundaries)
	return &sweeper{
		a:    a,
		busy: newSweepStream(nT, boundaries, a.Comm, a.Overlap),
		crit: newSweepStream(nT, boundaries, a.CritComm, a.CritOverlap),
	}
}

func (sw *sweeper) feed(start, length int64, recv int, critical bool) {
	end := start + length
	sw.busy.apply(start, end, recv)
	if critical {
		sw.crit.apply(start, end, recv)
	}
}

// finish flushes both streams, compacts the sparse tables, derives the
// aggregate OM and returns the completed analysis.
func (sw *sweeper) finish() *Analysis {
	sw.finishTables()
	deriveOM(sw.a)
	return sw.a
}

// finishTables flushes both streams and compacts the sparse tables
// without deriving OM — the per-shard half of the sharded driver, whose
// partial tables are merged before the aggregate matrix is meaningful.
func (sw *sweeper) finishTables() *Analysis {
	sw.busy.finish()
	sw.crit.finish()
	sw.a.Overlap.Compact()
	sw.a.CritOverlap.Compact()
	return sw.a
}

// deriveOM fills the aggregate OM from the compacted overlap rows
// (om_{i,j} = Σ_m wo_{i,j,m}, stored only when positive, exactly as the
// legacy kernel does).
func deriveOM(a *Analysis) {
	nT := a.NumReceivers
	row := 0
	for i := 0; i < nT; i++ {
		for j := i + 1; j < nT; j++ {
			if total := a.Overlap.RowSum(row); total > 0 {
				a.OM.Set(i, j, total)
			}
			row++
		}
	}
}

// annotate records the kernel's instruments on the span and the
// package metrics.
func (sw *sweeper) annotate(span *obs.Span) {
	segments := sw.busy.segments + sw.crit.segments
	metSweepSegments.Add(segments)
	metSparseCells.Add(int64(sw.a.Overlap.NNZ() + sw.a.CritOverlap.NNZ()))
	gagActivePeak.Set(int64(sw.busy.peakActive))
	span.SetInt("segments", segments)
	span.SetInt("active_peak", int64(sw.busy.peakActive))
	span.SetFloat("sparse_fill", sw.a.Overlap.FillRatio())
}

// sweepCancelStride is how many events the kernels process between
// cancellation polls.
const sweepCancelStride = 1 << 13

// analyzeSweep is the in-memory entry of the sweep kernel: it sorts a
// copy of the events by start cycle (radix sort — the only O(E) scratch
// the kernel needs) and runs the single-pass sweep. Inputs are already
// validated.
func analyzeSweep(ctx context.Context, tr *Trace, boundaries []int64) (*Analysis, error) {
	nT := tr.NumReceivers
	nW := len(boundaries) - 1

	ctx, span := obs.Start(ctx, "trace.analyze")
	defer span.End()
	span.SetStr("kernel", "sweep")
	span.SetInt("receivers", int64(nT))
	span.SetInt("windows", int64(nW))
	span.SetInt("events", int64(len(tr.Events)))
	metAnalyses.Inc()
	metWindows.Add(int64(nW))

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("trace: analysis canceled: %w", err)
	}
	events := sortEventsByStart(tr.Events)
	sw := newSweeper(nT, boundaries)
	for k := range events {
		if k%sweepCancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("trace: analysis canceled: %w", err)
			}
		}
		e := &events[k]
		sw.feed(e.Start, e.Len, e.Receiver, e.Critical)
	}
	a := sw.finish()
	sw.annotate(span)
	return a, nil
}

// sortEventsByStart returns the events ordered by start cycle: the
// input itself when it is already ordered (cycle-accurate simulators
// emit traces that way, so the common case costs one comparison pass
// and no copy), otherwise a sorted copy. Large inputs use an LSD radix
// sort over the Start bytes (starts are validated nonnegative, so
// unsigned byte order is value order), skipping byte planes beyond the
// largest start and planes where all keys agree; this is several times
// faster than a comparison sort at the multi-million-event sizes the
// kernel targets.
func sortEventsByStart(events []Event) []Event {
	sorted := true
	for i := 1; i < len(events); i++ {
		if events[i-1].Start > events[i].Start {
			sorted = false
			break
		}
	}
	if sorted {
		return events
	}
	out := make([]Event, len(events))
	copy(out, events)
	if len(out) < 4096 {
		sort.Slice(out, func(a, b int) bool { return out[a].Start < out[b].Start })
		return out
	}
	var maxStart int64
	for i := range out {
		if out[i].Start > maxStart {
			maxStart = out[i].Start
		}
	}
	scratch := make([]Event, len(out))
	var counts [256]int
	for shift := 0; shift < 64 && maxStart>>shift != 0; shift += 8 {
		for i := range counts {
			counts[i] = 0
		}
		for i := range out {
			counts[byte(uint64(out[i].Start)>>shift)]++
		}
		skip := false
		for _, c := range counts {
			if c == len(out) {
				skip = true // constant byte plane: already in place
				break
			}
		}
		if skip {
			continue
		}
		sum := 0
		for i, c := range counts {
			counts[i] = sum
			sum += c
		}
		for i := range out {
			b := byte(uint64(out[i].Start) >> shift)
			scratch[counts[b]] = out[i]
			counts[b]++
		}
		out, scratch = scratch, out
	}
	return out
}

// AnalyzeReader computes the window analysis directly from a binary
// trace stream (the WriteBinary format) without materializing the
// event slice: each record updates the sweep frontier and is dropped.
// Peak memory is the output tables plus O(R) frontier state —
// independent of the event count — which is what makes multi-hundred-
// million-event traces analyzable at all.
//
// The stream's events must be ordered by nondecreasing start cycle
// (cycle-accurate simulators emit them that way); an out-of-order
// record is reported as an error, in which case the caller should fall
// back to ReadBinary + Analyze.
func AnalyzeReader(ctx context.Context, r io.Reader, ws int64) (*Analysis, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	hdr, err := readBinaryHeader(br)
	if err != nil {
		return nil, err
	}
	if hdr.numReceivers == 0 {
		return nil, fmt.Errorf("trace: NumReceivers must be positive")
	}
	if hdr.numSenders == 0 {
		return nil, fmt.Errorf("trace: NumSenders must be positive")
	}
	// The analysis tables are O(R²) rows, allocated before the first
	// event is read; bound the receiver count tighter than the generic
	// header check so a hostile header cannot commit gigabytes. Real
	// STbus platforms top out at 32 targets.
	const maxStreamReceivers = 1 << 12
	if hdr.numReceivers > maxStreamReceivers {
		return nil, fmt.Errorf("trace: %d receivers exceeds the streaming-analysis limit %d", hdr.numReceivers, maxStreamReceivers)
	}
	if hdr.horizon <= 0 {
		return nil, fmt.Errorf("trace: Horizon must be positive")
	}
	boundaries, err := windowBoundaries(hdr.horizon, ws)
	if err != nil {
		return nil, err
	}
	nT := int(hdr.numReceivers)
	nS := int(hdr.numSenders)

	ctx, span := obs.Start(ctx, "trace.analyze")
	defer span.End()
	span.SetStr("kernel", "stream")
	span.SetInt("receivers", int64(nT))
	span.SetInt("windows", int64(len(boundaries)-1))
	span.SetInt("events", int64(hdr.numEvents))
	metAnalyses.Inc()
	metWindows.Add(int64(len(boundaries) - 1))

	sw := newSweeper(nT, boundaries)
	if hdr.version == binaryVersionV2 {
		if err := analyzeReaderV2(ctx, br, hdr, sw, nT, nS); err != nil {
			return nil, err
		}
		a := sw.finish()
		sw.annotate(span)
		return a, nil
	}
	var buf [binaryEventSize]byte
	lastStart := int64(-1)
	for i := uint64(0); i < hdr.numEvents; i++ {
		if i%sweepCancelStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("trace: analysis canceled: %w", err)
			}
		}
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("trace: reading event %d: %w", i, err)
		}
		e := decodeBinaryEvent(&buf)
		if err := validateStreamEvent(i, e, nT, nS, hdr.horizon); err != nil {
			return nil, err
		}
		if e.Start < lastStart {
			return nil, fmt.Errorf("%w: event %d starts at %d, before the previous start %d — streaming analysis requires start-ordered traces (fall back to ReadBinary + Analyze)", ErrUnsorted, i, e.Start, lastStart)
		}
		lastStart = e.Start
		sw.feed(e.Start, e.Len, e.Receiver, e.Critical)
	}
	a := sw.finish()
	sw.annotate(span)
	return a, nil
}

// decodeBinaryEvent parses one WriteBinary event record.
func decodeBinaryEvent(buf *[binaryEventSize]byte) Event {
	return Event{
		Start:    int64(binary.LittleEndian.Uint64(buf[0:])),
		Len:      int64(binary.LittleEndian.Uint64(buf[8:])),
		Sender:   int(binary.LittleEndian.Uint32(buf[16:])),
		Receiver: int(binary.LittleEndian.Uint32(buf[20:])),
		Critical: buf[24] != 0,
	}
}

package trace

import (
	"testing"
)

func validTrace() *Trace {
	return &Trace{
		NumReceivers: 3,
		NumSenders:   2,
		Horizon:      100,
		Events: []Event{
			{Start: 0, Len: 10, Sender: 0, Receiver: 0},
			{Start: 5, Len: 10, Sender: 1, Receiver: 1},
			{Start: 50, Len: 5, Sender: 0, Receiver: 2, Critical: true},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := validTrace().Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Trace)
	}{
		{"no receivers", func(tr *Trace) { tr.NumReceivers = 0 }},
		{"no senders", func(tr *Trace) { tr.NumSenders = 0 }},
		{"zero horizon", func(tr *Trace) { tr.Horizon = 0 }},
		{"receiver out of range", func(tr *Trace) { tr.Events[0].Receiver = 3 }},
		{"negative receiver", func(tr *Trace) { tr.Events[0].Receiver = -1 }},
		{"sender out of range", func(tr *Trace) { tr.Events[1].Sender = 2 }},
		{"zero length event", func(tr *Trace) { tr.Events[0].Len = 0 }},
		{"event past horizon", func(tr *Trace) { tr.Events[2].Start = 96 }},
		{"negative start", func(tr *Trace) { tr.Events[0].Start = -1 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr := validTrace()
			c.mutate(tr)
			if err := tr.Validate(); err == nil {
				t.Errorf("expected validation error")
			}
		})
	}
}

func TestTotalCycles(t *testing.T) {
	tr := validTrace()
	got := tr.TotalCycles()
	want := []int64{10, 10, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("TotalCycles[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestBursts(t *testing.T) {
	tr := &Trace{
		NumReceivers: 2,
		NumSenders:   1,
		Horizon:      1000,
		Events: []Event{
			// Receiver 0: two back-to-back events forming one 20-cycle burst.
			{Start: 0, Len: 10, Sender: 0, Receiver: 0},
			{Start: 10, Len: 10, Sender: 0, Receiver: 0},
			// Receiver 0: separate 5-cycle burst.
			{Start: 100, Len: 5, Sender: 0, Receiver: 0},
			// Receiver 1: one 30-cycle burst.
			{Start: 200, Len: 30, Sender: 0, Receiver: 1},
		},
	}
	st := tr.Bursts()
	if st.Count != 3 {
		t.Errorf("Count = %d, want 3", st.Count)
	}
	if st.MaxLen != 30 {
		t.Errorf("MaxLen = %d, want 30", st.MaxLen)
	}
	wantMean := (20.0 + 5.0 + 30.0) / 3.0
	if st.MeanLen != wantMean {
		t.Errorf("MeanLen = %f, want %f", st.MeanLen, wantMean)
	}
}

func TestBurstsEmptyTrace(t *testing.T) {
	tr := &Trace{NumReceivers: 1, NumSenders: 1, Horizon: 10}
	st := tr.Bursts()
	if st.Count != 0 || st.MeanLen != 0 || st.MaxLen != 0 {
		t.Errorf("empty trace burst stats = %+v, want zeros", st)
	}
}

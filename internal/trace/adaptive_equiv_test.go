package trace_test

// The adaptive-window analysis (AnalyzeAdaptive, and explicit edges via
// AnalyzeWithBoundaries) now runs on the sweep-line kernel. These tests
// pin it to the retained legacy pairwise kernel, bit for bit, on the
// deterministic benchmark problem set — variable-size windows are the
// irregular-boundary case the sweep's monotone window cursor has to get
// exactly right.

import (
	"context"
	"strings"
	"testing"

	"repro/internal/benchprobs"
	"repro/internal/trace"
)

func TestAdaptiveBoundariesInvariants(t *testing.T) {
	for _, n := range []int{8, 12, 32} {
		tr := benchprobs.TraceN(n)
		for _, span := range [][2]int64{{50, 400}, {100, 1000}, {400, 4000}} {
			minWS, maxWS := span[0], span[1]
			bs, err := trace.AdaptiveBoundaries(tr, minWS, maxWS)
			if err != nil {
				t.Fatalf("AdaptiveBoundaries(n=%d, %d, %d): %v", n, minWS, maxWS, err)
			}
			if bs[0] != 0 || bs[len(bs)-1] != tr.Horizon {
				t.Fatalf("n=%d boundaries %v do not span [0,%d]", n, bs, tr.Horizon)
			}
			for m := 1; m < len(bs); m++ {
				w := bs[m] - bs[m-1]
				if w <= 0 || w > maxWS {
					t.Fatalf("n=%d window %d has length %d (maxWS %d)", n, m-1, w, maxWS)
				}
			}
		}
	}
}

func TestAnalyzeAdaptiveMatchesLegacy(t *testing.T) {
	for _, n := range []int{8, 12, 32} {
		tr := benchprobs.TraceN(n)
		for _, span := range [][2]int64{{50, 400}, {100, 1000}, {400, 4000}} {
			minWS, maxWS := span[0], span[1]
			got, err := trace.AnalyzeAdaptive(tr, minWS, maxWS)
			if err != nil {
				t.Fatalf("AnalyzeAdaptive(n=%d, %d, %d): %v", n, minWS, maxWS, err)
			}
			bs, err := trace.AdaptiveBoundaries(tr, minWS, maxWS)
			if err != nil {
				t.Fatal(err)
			}
			want, err := trace.AnalyzeLegacyWithBoundariesCtx(context.Background(), tr, bs)
			if err != nil {
				t.Fatalf("legacy kernel on adaptive boundaries: %v", err)
			}
			if diffs := trace.DiffAnalyses(got, want); len(diffs) > 0 {
				t.Fatalf("n=%d minWS=%d maxWS=%d sweep vs legacy:\n%s",
					n, minWS, maxWS, strings.Join(diffs, "\n"))
			}
		}
	}
}

// TestAnalyzeAdaptiveTightensFixed reproduces the point of the adaptive
// extension on the benchmark set: onset-aligned windows should never
// report a higher peak load than fixed windows of the maximum size, and
// the analysis stays self-consistent (every overlap bounded by the
// participating Comm entries).
func TestAnalyzeAdaptiveSelfConsistent(t *testing.T) {
	tr := benchprobs.TraceN(12)
	a, err := trace.AnalyzeAdaptive(tr, 100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.NumReceivers; i++ {
		for j := i + 1; j < a.NumReceivers; j++ {
			for m := 0; m < a.NumWindows(); m++ {
				ov := a.PairOverlap(i, j, m)
				if ci, cj := a.Comm.At(i, m), a.Comm.At(j, m); ov > ci || ov > cj {
					t.Fatalf("overlap(%d,%d,%d)=%d exceeds comm (%d, %d)", i, j, m, ov, ci, cj)
				}
			}
		}
	}
}

package trace

import "fmt"

// diffLimit caps the number of mismatches DiffAnalyses reports so a
// systematically wrong kernel produces a readable failure, not megabytes.
const diffLimit = 20

// DiffAnalyses compares every exported quantity of two analyses and
// returns a human-readable description of each mismatch (empty when the
// analyses are identical). It is the equivalence check used by the
// differential harness and the fuzz oracle to pin the sweep kernel, the
// legacy pairwise kernel and the streaming reader to bit-identical
// outputs; for the sparse overlap tables it compares the stored cell
// structure, not just values, so a kernel that stores explicit zeros
// where another stores nothing is caught too.
func DiffAnalyses(a, b *Analysis) []string {
	var diffs []string
	add := func(format string, args ...any) bool {
		if len(diffs) < diffLimit {
			diffs = append(diffs, fmt.Sprintf(format, args...))
		} else if len(diffs) == diffLimit {
			diffs = append(diffs, "... further mismatches suppressed")
		}
		return len(diffs) <= diffLimit
	}

	if a.NumReceivers != b.NumReceivers {
		add("NumReceivers: %d vs %d", a.NumReceivers, b.NumReceivers)
		return diffs
	}
	if len(a.Boundaries) != len(b.Boundaries) {
		add("NumWindows: %d vs %d", a.NumWindows(), b.NumWindows())
		return diffs
	}
	for m := range a.Boundaries {
		if a.Boundaries[m] != b.Boundaries[m] {
			if !add("Boundaries[%d]: %d vs %d", m, a.Boundaries[m], b.Boundaries[m]) {
				return diffs
			}
		}
	}

	nT, nW := a.NumReceivers, a.NumWindows()
	for i := 0; i < nT; i++ {
		for m := 0; m < nW; m++ {
			if x, y := a.Comm.At(i, m), b.Comm.At(i, m); x != y {
				if !add("Comm[%d][%d]: %d vs %d", i, m, x, y) {
					return diffs
				}
			}
			if x, y := a.CritComm.At(i, m), b.CritComm.At(i, m); x != y {
				if !add("CritComm[%d][%d]: %d vs %d", i, m, x, y) {
					return diffs
				}
			}
		}
	}

	if !diffSparse(add, "Overlap", a, b, true) {
		return diffs
	}
	if !diffSparse(add, "CritOverlap", a, b, false) {
		return diffs
	}

	for i := 0; i < nT; i++ {
		for j := i + 1; j < nT; j++ {
			if x, y := a.OM.At(i, j), b.OM.At(i, j); x != y {
				if !add("OM[%d][%d]: %d vs %d", i, j, x, y) {
					return diffs
				}
			}
		}
	}
	return diffs
}

// diffSparse compares the stored cells of one sparse overlap table.
func diffSparse(add func(string, ...any) bool, name string, a, b *Analysis, main bool) bool {
	am, bm := a.Overlap, b.Overlap
	if !main {
		am, bm = a.CritOverlap, b.CritOverlap
	}
	if am.Rows != bm.Rows || am.Cols != bm.Cols {
		return add("%s shape: %dx%d vs %dx%d", name, am.Rows, am.Cols, bm.Rows, bm.Cols)
	}
	for r := 0; r < am.Rows; r++ {
		x, y := am.RowCells(r), bm.RowCells(r)
		if len(x) != len(y) {
			if !add("%s row %d: %d cells vs %d cells", name, r, len(x), len(y)) {
				return false
			}
			continue
		}
		for k := range x {
			if x[k] != y[k] {
				if !add("%s row %d cell %d: (col %d, %d) vs (col %d, %d)", name, r, k, x[k].Col, x[k].Val, y[k].Col, y[k].Val) {
					return false
				}
			}
		}
	}
	return true
}

package trace

import (
	"fmt"

	"repro/internal/ds"
)

// diffLimit caps the number of mismatches DiffAnalyses reports so a
// systematically wrong kernel produces a readable failure, not megabytes.
const diffLimit = 20

// DiffAnalyses compares every exported quantity of two analyses and
// returns a human-readable description of each mismatch (empty when the
// analyses are identical). It is the equivalence check used by the
// differential harness and the fuzz oracle to pin the sweep kernel, the
// legacy pairwise kernel and the streaming reader to bit-identical
// outputs; for the sparse overlap tables it compares the stored cell
// structure, not just values, so a kernel that stores explicit zeros
// where another stores nothing is caught too.
func DiffAnalyses(a, b *Analysis) []string {
	var diffs []string
	add := func(format string, args ...any) bool {
		if len(diffs) < diffLimit {
			diffs = append(diffs, fmt.Sprintf(format, args...))
		} else if len(diffs) == diffLimit {
			diffs = append(diffs, "... further mismatches suppressed")
		}
		return len(diffs) <= diffLimit
	}

	if a.NumReceivers != b.NumReceivers {
		add("NumReceivers: %d vs %d", a.NumReceivers, b.NumReceivers)
		return diffs
	}
	if len(a.Boundaries) != len(b.Boundaries) {
		add("NumWindows: %d vs %d", a.NumWindows(), b.NumWindows())
		return diffs
	}
	for m := range a.Boundaries {
		if a.Boundaries[m] != b.Boundaries[m] {
			if !add("Boundaries[%d]: %d vs %d", m, a.Boundaries[m], b.Boundaries[m]) {
				return diffs
			}
		}
	}

	nT, nW := a.NumReceivers, a.NumWindows()
	for i := 0; i < nT; i++ {
		for m := 0; m < nW; m++ {
			if x, y := a.Comm.At(i, m), b.Comm.At(i, m); x != y {
				if !add("Comm[%d][%d]: %d vs %d", i, m, x, y) {
					return diffs
				}
			}
			if x, y := a.CritComm.At(i, m), b.CritComm.At(i, m); x != y {
				if !add("CritComm[%d][%d]: %d vs %d", i, m, x, y) {
					return diffs
				}
			}
		}
	}

	if !diffSparse(add, "Overlap", a, b, true) {
		return diffs
	}
	if !diffSparse(add, "CritOverlap", a, b, false) {
		return diffs
	}

	for i := 0; i < nT; i++ {
		for j := i + 1; j < nT; j++ {
			if x, y := a.OM.At(i, j), b.OM.At(i, j); x != y {
				if !add("OM[%d][%d]: %d vs %d", i, j, x, y) {
					return diffs
				}
			}
		}
	}
	return diffs
}

// CountDiffs counts the constraint entries on which two same-shape
// analyses disagree: dense load cells (Comm, CritComm), logical sparse
// overlap cells (value-based — a stored zero equals an absent cell, so
// the count measures problem distance, not build history) and aggregate
// overlap entries. It is the delta-size measure the design cache uses
// to decide whether a cached binding is close enough to warm-start a
// re-solve. ok is false when the analyses have different shapes
// (receiver count or window edges), in which case no meaningful entry
// count exists. Counting stops early once the count exceeds limit
// (limit <= 0 means unlimited), so probing "is the delta under N?"
// against a far-away analysis stays cheap.
func CountDiffs(a, b *Analysis, limit int) (diffs int, ok bool) {
	if a.NumReceivers != b.NumReceivers || len(a.Boundaries) != len(b.Boundaries) {
		return 0, false
	}
	for m := range a.Boundaries {
		if a.Boundaries[m] != b.Boundaries[m] {
			return 0, false
		}
	}
	over := func() bool { return limit > 0 && diffs > limit }

	nT, nW := a.NumReceivers, a.NumWindows()
	for i := 0; i < nT; i++ {
		ar, br := a.Comm.Row(i), b.Comm.Row(i)
		cr, dr := a.CritComm.Row(i), b.CritComm.Row(i)
		for m := 0; m < nW; m++ {
			if ar[m] != br[m] {
				diffs++
			}
			if cr[m] != dr[m] {
				diffs++
			}
		}
		if over() {
			return diffs, true
		}
	}
	for _, pair := range [2][2]*ds.SparseInt64Matrix{{a.Overlap, b.Overlap}, {a.CritOverlap, b.CritOverlap}} {
		am, bm := pair[0], pair[1]
		for r := 0; r < am.Rows; r++ {
			diffs += countSparseRowDiffs(am.RowCells(r), bm.RowCells(r))
			if over() {
				return diffs, true
			}
		}
	}
	for i := 0; i < nT; i++ {
		for j := i + 1; j < nT; j++ {
			if a.OM.At(i, j) != b.OM.At(i, j) {
				diffs++
			}
		}
		if over() {
			return diffs, true
		}
	}
	return diffs, true
}

// countSparseRowDiffs merge-walks two sorted sparse rows and counts the
// columns whose logical values differ (absent == 0).
func countSparseRowDiffs(x, y []ds.SparseCell) int {
	diffs, i, j := 0, 0, 0
	for i < len(x) || j < len(y) {
		switch {
		case j >= len(y) || (i < len(x) && x[i].Col < y[j].Col):
			if x[i].Val != 0 {
				diffs++
			}
			i++
		case i >= len(x) || y[j].Col < x[i].Col:
			if y[j].Val != 0 {
				diffs++
			}
			j++
		default:
			if x[i].Val != y[j].Val {
				diffs++
			}
			i++
			j++
		}
	}
	return diffs
}

// diffSparse compares the stored cells of one sparse overlap table.
func diffSparse(add func(string, ...any) bool, name string, a, b *Analysis, main bool) bool {
	am, bm := a.Overlap, b.Overlap
	if !main {
		am, bm = a.CritOverlap, b.CritOverlap
	}
	if am.Rows != bm.Rows || am.Cols != bm.Cols {
		return add("%s shape: %dx%d vs %dx%d", name, am.Rows, am.Cols, bm.Rows, bm.Cols)
	}
	for r := 0; r < am.Rows; r++ {
		x, y := am.RowCells(r), bm.RowCells(r)
		if len(x) != len(y) {
			if !add("%s row %d: %d cells vs %d cells", name, r, len(x), len(y)) {
				return false
			}
			continue
		}
		for k := range x {
			if x[k] != y[k] {
				if !add("%s row %d cell %d: (col %d, %d) vs (col %d, %d)", name, r, k, x[k].Col, x[k].Val, y[k].Col, y[k].Val) {
					return false
				}
			}
		}
	}
	return true
}

package trace

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"runtime"
	"testing"
)

// overlapTrace builds a reproducible trace with overlapping bursts on
// many receivers, enough work for the sharded analysis to actually
// spread across workers.
func overlapTrace(seed int64, nRecv int) *Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{NumReceivers: nRecv, NumSenders: 2, Horizon: 5000}
	for r := 0; r < nRecv; r++ {
		for e := 0; e < 30; e++ {
			start := int64(rng.Intn(4800))
			tr.Events = append(tr.Events, Event{
				Start:    start,
				Len:      1 + int64(rng.Intn(120)),
				Receiver: r,
				Critical: rng.Intn(10) == 0,
			})
		}
	}
	return tr
}

// TestAnalyzeCtxParallelMatchesSerial: the sharded parallel analysis
// is bit-identical to the single-worker one, whatever GOMAXPROCS is.
func TestAnalyzeCtxParallelMatchesSerial(t *testing.T) {
	tr := overlapTrace(5, 9)
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))

	runtime.GOMAXPROCS(1)
	serial, err := AnalyzeCtx(context.Background(), tr, 250)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{2, 4, 8} {
		runtime.GOMAXPROCS(procs)
		par, err := AnalyzeCtx(context.Background(), tr, 250)
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", procs, err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("GOMAXPROCS=%d: analysis differs from serial result", procs)
		}
	}
}

func TestAnalyzeCtxCanceled(t *testing.T) {
	tr := overlapTrace(6, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AnalyzeCtx(ctx, tr, 250); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestAnalyzeCtxBackgroundMatchesAnalyze(t *testing.T) {
	tr := overlapTrace(7, 6)
	a1, err := Analyze(tr, 300)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := AnalyzeCtx(context.Background(), tr, 300)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1, a2) {
		t.Error("Analyze and AnalyzeCtx disagree")
	}
}

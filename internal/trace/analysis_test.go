package trace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAnalyzeComm(t *testing.T) {
	tr := &Trace{
		NumReceivers: 2,
		NumSenders:   1,
		Horizon:      100,
		Events: []Event{
			{Start: 0, Len: 30, Sender: 0, Receiver: 0},  // spans windows 0..2
			{Start: 60, Len: 10, Sender: 0, Receiver: 1}, // window 6
		},
	}
	a, err := Analyze(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumWindows() != 10 {
		t.Fatalf("NumWindows = %d, want 10", a.NumWindows())
	}
	for m := 0; m < 3; m++ {
		if got := a.Comm.At(0, m); got != 10 {
			t.Errorf("Comm[0][%d] = %d, want 10", m, got)
		}
	}
	if got := a.Comm.At(0, 3); got != 0 {
		t.Errorf("Comm[0][3] = %d, want 0", got)
	}
	if got := a.Comm.At(1, 6); got != 10 {
		t.Errorf("Comm[1][6] = %d, want 10", got)
	}
}

func TestAnalyzeOverlap(t *testing.T) {
	tr := &Trace{
		NumReceivers: 3,
		NumSenders:   1,
		Horizon:      40,
		Events: []Event{
			{Start: 0, Len: 20, Sender: 0, Receiver: 0},
			{Start: 10, Len: 20, Sender: 0, Receiver: 1},
			{Start: 35, Len: 5, Sender: 0, Receiver: 2},
		},
	}
	a, err := Analyze(tr, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Receivers 0 and 1 overlap during [10,20) in window 0 and not after
	// (receiver 0 ends at 20).
	if got := a.PairOverlap(0, 1, 0); got != 10 {
		t.Errorf("PairOverlap(0,1,0) = %d, want 10", got)
	}
	if got := a.PairOverlap(0, 1, 1); got != 0 {
		t.Errorf("PairOverlap(0,1,1) = %d, want 0", got)
	}
	// Aggregate OM (Eq. 1).
	if got := a.OM.At(0, 1); got != 10 {
		t.Errorf("OM[0][1] = %d, want 10", got)
	}
	if got := a.OM.At(0, 2); got != 0 {
		t.Errorf("OM[0][2] = %d, want 0", got)
	}
	// Self overlap must be zero.
	if got := a.PairOverlap(1, 1, 0); got != 0 {
		t.Errorf("self overlap = %d, want 0", got)
	}
}

func TestAnalyzeCritical(t *testing.T) {
	tr := &Trace{
		NumReceivers: 2,
		NumSenders:   1,
		Horizon:      20,
		Events: []Event{
			{Start: 0, Len: 10, Sender: 0, Receiver: 0, Critical: true},
			{Start: 5, Len: 10, Sender: 0, Receiver: 1, Critical: true},
		},
	}
	a, err := Analyze(tr, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.CritComm.At(0, 0); got != 10 {
		t.Errorf("CritComm[0][0] = %d, want 10", got)
	}
	if got := a.PairCritOverlap(0, 1, 0); got != 5 {
		t.Errorf("PairCritOverlap = %d, want 5", got)
	}
}

func TestAnalyzeCriticalOverlapRequiresBothCritical(t *testing.T) {
	tr := &Trace{
		NumReceivers: 2,
		NumSenders:   1,
		Horizon:      20,
		Events: []Event{
			{Start: 0, Len: 10, Sender: 0, Receiver: 0, Critical: true},
			{Start: 0, Len: 10, Sender: 0, Receiver: 1, Critical: false},
		},
	}
	a, err := Analyze(tr, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.PairCritOverlap(0, 1, 0); got != 0 {
		t.Errorf("critical overlap with non-critical stream = %d, want 0", got)
	}
	if got := a.PairOverlap(0, 1, 0); got != 10 {
		t.Errorf("plain overlap = %d, want 10", got)
	}
}

func TestAnalyzeRaggedLastWindow(t *testing.T) {
	tr := &Trace{
		NumReceivers: 1,
		NumSenders:   1,
		Horizon:      25,
		Events:       []Event{{Start: 22, Len: 3, Sender: 0, Receiver: 0}},
	}
	a, err := Analyze(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumWindows() != 3 {
		t.Fatalf("NumWindows = %d, want 3", a.NumWindows())
	}
	if got := a.WindowLen(2); got != 5 {
		t.Errorf("last WindowLen = %d, want 5", got)
	}
	if got := a.Comm.At(0, 2); got != 3 {
		t.Errorf("Comm in ragged window = %d, want 3", got)
	}
}

func TestAnalyzeWithBoundariesValidation(t *testing.T) {
	tr := validTrace()
	cases := [][]int64{
		{0},              // too short
		{5, 100},         // doesn't start at 0
		{0, 50},          // doesn't end at horizon
		{0, 50, 50, 100}, // not strictly increasing
	}
	for _, b := range cases {
		if _, err := AnalyzeWithBoundaries(tr, b); err == nil {
			t.Errorf("boundaries %v accepted, want error", b)
		}
	}
}

func TestAnalyzeVariableWindows(t *testing.T) {
	tr := &Trace{
		NumReceivers: 1,
		NumSenders:   1,
		Horizon:      100,
		Events:       []Event{{Start: 0, Len: 100, Sender: 0, Receiver: 0}},
	}
	a, err := AnalyzeWithBoundaries(tr, []int64{0, 30, 100})
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Comm.At(0, 0); got != 30 {
		t.Errorf("Comm[0][0] = %d, want 30", got)
	}
	if got := a.Comm.At(0, 1); got != 70 {
		t.Errorf("Comm[0][1] = %d, want 70", got)
	}
}

func TestSingleWindowEqualsTotals(t *testing.T) {
	tr := validTrace()
	a, err := SingleWindow(tr)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumWindows() != 1 {
		t.Fatalf("NumWindows = %d, want 1", a.NumWindows())
	}
	totals := tr.TotalCycles()
	for i, want := range totals {
		if got := a.Comm.At(i, 0); got != want {
			t.Errorf("Comm[%d][0] = %d, want %d", i, got, want)
		}
	}
}

func TestMaxWindowLoad(t *testing.T) {
	tr := &Trace{
		NumReceivers: 3,
		NumSenders:   1,
		Horizon:      20,
		Events: []Event{
			// Window 0 fully loaded on three receivers -> needs 3 buses.
			{Start: 0, Len: 10, Sender: 0, Receiver: 0},
			{Start: 0, Len: 10, Sender: 0, Receiver: 1},
			{Start: 0, Len: 10, Sender: 0, Receiver: 2},
		},
	}
	a, err := Analyze(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.MaxWindowLoad(); got != 3 {
		t.Errorf("MaxWindowLoad = %d, want 3", got)
	}
}

// Property: sum of Comm over windows equals total cycles per receiver,
// and window overlaps sum to OM, for random traces.
func TestAnalyzeQuickConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{
			NumReceivers: 2 + rng.Intn(4),
			NumSenders:   1 + rng.Intn(3),
			Horizon:      200 + int64(rng.Intn(300)),
		}
		n := rng.Intn(40)
		for e := 0; e < n; e++ {
			start := int64(rng.Intn(int(tr.Horizon - 20)))
			tr.Events = append(tr.Events, Event{
				Start:    start,
				Len:      1 + int64(rng.Intn(19)),
				Sender:   rng.Intn(tr.NumSenders),
				Receiver: rng.Intn(tr.NumReceivers),
				Critical: rng.Intn(5) == 0,
			})
		}
		ws := int64(10 + rng.Intn(100))
		a, err := Analyze(tr, ws)
		if err != nil {
			t.Logf("Analyze failed: %v", err)
			return false
		}
		// Per-receiver busy-cycle conservation. Note: overlapping events
		// to the same receiver are merged (a cycle counts once), so
		// compare against the merged busy sets, not raw event lengths.
		busy, _ := tr.busyByReceiver()
		for i := 0; i < tr.NumReceivers; i++ {
			var sum int64
			for m := 0; m < a.NumWindows(); m++ {
				sum += a.Comm.At(i, m)
			}
			if sum != busy[i].Len() {
				t.Logf("receiver %d: windowed sum %d != busy %d", i, sum, busy[i].Len())
				return false
			}
		}
		// OM equals the window-summed overlaps (Eq. 1) and is symmetric
		// and bounded by min of the two busy totals.
		for i := 0; i < tr.NumReceivers; i++ {
			for j := i + 1; j < tr.NumReceivers; j++ {
				var sum int64
				for m := 0; m < a.NumWindows(); m++ {
					sum += a.PairOverlap(i, j, m)
					if a.PairOverlap(i, j, m) > a.Comm.At(i, m) || a.PairOverlap(i, j, m) > a.Comm.At(j, m) {
						t.Logf("overlap exceeds comm")
						return false
					}
				}
				if sum != a.OM.At(i, j) {
					t.Logf("OM[%d][%d]=%d != summed %d", i, j, a.OM.At(i, j), sum)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeRejectsBadWS(t *testing.T) {
	if _, err := Analyze(validTrace(), 0); err == nil {
		t.Error("ws=0 accepted")
	}
	if _, err := Analyze(validTrace(), -5); err == nil {
		t.Error("negative ws accepted")
	}
}

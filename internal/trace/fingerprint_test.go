package trace

import (
	"math/rand"

	"repro/internal/ds"
	"testing"
)

// TestFingerprintKernelIndependent pins the core property of the
// content hash: the sweep and legacy kernels — different algorithms,
// different sparse-row build orders — fingerprint identically on the
// same trace.
func TestFingerprintKernelIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 8; trial++ {
		tr := randomSweepTrace(rng, 2+rng.Intn(12), 60+rng.Intn(200), int64(200+rng.Intn(2000)))
		ws := 1 + int64(rng.Intn(int(tr.Horizon)))
		a, err := Analyze(tr, ws)
		if err != nil {
			t.Fatal(err)
		}
		b, err := AnalyzeLegacy(tr, ws)
		if err != nil {
			t.Fatal(err)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("trial %d: sweep fp %s != legacy fp %s", trial, a.Fingerprint(), b.Fingerprint())
		}
	}
}

func TestFingerprintDistinguishesContent(t *testing.T) {
	tr := randomTrace(11)
	a, err := Analyze(tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Fingerprint]string{a.Fingerprint(): "original"}

	// A different window size changes the boundaries.
	b, err := Analyze(tr, 250)
	if err != nil {
		t.Fatal(err)
	}
	for name, fp := range map[string]Fingerprint{"window-250": b.Fingerprint()} {
		if prev, dup := seen[fp]; dup {
			t.Fatalf("%s collides with %s", name, prev)
		}
		seen[fp] = name
	}

	// Perturbing a single Comm cell changes the hash.
	c := a.Clone()
	c.Comm.Set(0, 0, c.Comm.At(0, 0)+1)
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("Comm perturbation did not change the fingerprint")
	}
	// Perturbing one OM entry (receivers permitting) changes the hash.
	if a.NumReceivers >= 2 {
		d := a.Clone()
		d.OM.Set(0, 1, d.OM.At(0, 1)+1)
		if d.Fingerprint() == a.Fingerprint() {
			t.Fatal("OM perturbation did not change the fingerprint")
		}
	}
}

func TestFingerprintMemoized(t *testing.T) {
	a, err := Analyze(randomTrace(3), 100)
	if err != nil {
		t.Fatal(err)
	}
	f1 := a.Fingerprint()
	if p := a.fp.Load(); p == nil || *p != f1 {
		t.Fatal("fingerprint not memoized after first call")
	}
	if f2 := a.Fingerprint(); f2 != f1 {
		t.Fatalf("memoized fingerprint changed: %s vs %s", f1, f2)
	}
}

func TestCloneIsDeepAndEquivalent(t *testing.T) {
	a, err := Analyze(randomTrace(5), 50)
	if err != nil {
		t.Fatal(err)
	}
	c := a.Clone()
	if diffs := DiffAnalyses(a, c); len(diffs) > 0 {
		t.Fatalf("clone differs: %v", diffs)
	}
	if a.Fingerprint() != c.Fingerprint() {
		t.Fatal("clone fingerprint differs")
	}
	// Mutating the clone must not reach the original.
	before := a.Comm.At(0, 0)
	c.Comm.Set(0, 0, before+7)
	if a.Comm.At(0, 0) != before {
		t.Fatal("clone shares Comm storage with original")
	}
}

func TestCountDiffs(t *testing.T) {
	a, err := Analyze(randomTrace(9), 100)
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := CountDiffs(a, a.Clone(), 0); !ok || d != 0 {
		t.Fatalf("identical analyses: diffs=%d ok=%v", d, ok)
	}

	c := a.Clone()
	c.Comm.Set(0, 0, c.Comm.At(0, 0)+1)
	if d, ok := CountDiffs(a, c, 0); !ok || d != 1 {
		t.Fatalf("one perturbed cell: diffs=%d ok=%v, want 1 true", d, ok)
	}
	if a.NumReceivers >= 2 {
		c.OM.Set(0, 1, c.OM.At(0, 1)+3)
		if d, ok := CountDiffs(a, c, 0); !ok || d != 2 {
			t.Fatalf("two perturbed cells: diffs=%d ok=%v, want 2 true", d, ok)
		}
		// The limit caps the work but still reports "over".
		if d, ok := CountDiffs(a, c, 1); !ok || d < 2 {
			t.Fatalf("limited count: diffs=%d ok=%v, want >=2 true", d, ok)
		}
	}

	// Shape mismatches are incomparable, not zero-diff.
	b, err := Analyze(randomTrace(9), 250)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := CountDiffs(a, b, 0); ok {
		t.Fatal("different boundaries reported comparable")
	}
}

func TestCountSparseRowDiffs(t *testing.T) {
	mk := func(cells ...int64) []ds.SparseCell {
		out := make([]ds.SparseCell, 0, len(cells)/2)
		for i := 0; i < len(cells); i += 2 {
			out = append(out, ds.SparseCell{Col: int32(cells[i]), Val: cells[i+1]})
		}
		return out
	}
	cases := []struct {
		x, y []ds.SparseCell
		want int
	}{
		{mk(), mk(), 0},
		{mk(0, 5), mk(0, 5), 0},
		{mk(0, 5), mk(0, 6), 1},
		{mk(0, 5), mk(), 1},
		{mk(0, 0), mk(), 0},           // stored zero == absent
		{mk(1, 2, 3, 4), mk(3, 4), 1}, // leading extra cell
		{mk(1, 2), mk(2, 3), 2},       // disjoint columns
	}
	for i, c := range cases {
		if got := countSparseRowDiffs(c.x, c.y); got != c.want {
			t.Errorf("case %d: got %d want %d", i, got, c.want)
		}
	}
}

package trace

import (
	"errors"
	"fmt"
)

// AdaptiveBoundaries derives variable-size analysis windows from the
// traffic itself — the extension the paper lists as future work
// ("analyze the effect of using variable simulation window sizes").
//
// Window edges are aligned to activity onsets: the horizon is probed
// in buckets of minWS/4 cycles, and a boundary candidate is placed
// wherever aggregate traffic starts after an idle bucket — so each
// burst epoch tends to fall inside one window instead of straddling
// two, which is what makes fixed windows conservative. Candidates
// closer than minWS to the previous boundary are dropped, and windows
// longer than maxWS are split evenly. The result always starts at 0,
// ends at the horizon, and is strictly increasing — directly usable
// with AnalyzeWithBoundaries.
func AdaptiveBoundaries(tr *Trace, minWS, maxWS int64) ([]int64, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if minWS <= 0 || maxWS < minWS {
		return nil, fmt.Errorf("trace: need 0 < minWS ≤ maxWS, got %d, %d", minWS, maxWS)
	}
	if tr.Horizon <= minWS {
		return []int64{0, tr.Horizon}, nil
	}

	bucket := minWS / 4
	if bucket < 1 {
		bucket = 1
	}
	numBuckets := int((tr.Horizon + bucket - 1) / bucket)
	activity := make([]int64, numBuckets)
	for _, e := range tr.Events {
		first := e.Start / bucket
		last := (e.End() - 1) / bucket
		for b := first; b <= last && int(b) < numBuckets; b++ {
			lo, hi := b*bucket, (b+1)*bucket
			if e.Start > lo {
				lo = e.Start
			}
			if e.End() < hi {
				hi = e.End()
			}
			if hi > lo {
				activity[b] += hi - lo
			}
		}
	}

	// Candidates: bucket starts where activity begins after idleness.
	var candidates []int64
	for b := 1; b < numBuckets; b++ {
		if activity[b] > 0 && activity[b-1] == 0 {
			candidates = append(candidates, int64(b)*bucket)
		}
	}

	boundaries := []int64{0}
	last := int64(0)
	push := func(edge int64) {
		// Split oversized spans evenly into ≤ maxWS pieces.
		for edge-last > maxWS {
			pieces := (edge - last + maxWS - 1) / maxWS
			step := (edge - last) / pieces
			last += step
			boundaries = append(boundaries, last)
		}
		if edge-last >= minWS {
			boundaries = append(boundaries, edge)
			last = edge
		}
	}
	for _, c := range candidates {
		push(c)
	}
	// Close at the horizon. An undersized tail is merged into the
	// previous window when that stays within maxWS; otherwise the last
	// boundary is slid back to restore minWS for the tail, and if even
	// that is impossible the short tail window is kept (the only
	// allowed minWS violation).
	for tr.Horizon-last > maxWS {
		pieces := (tr.Horizon - last + maxWS - 1) / maxWS
		step := (tr.Horizon - last) / pieces
		last += step
		boundaries = append(boundaries, last)
	}
	if tail := tr.Horizon - last; tail < minWS && len(boundaries) > 1 {
		prev := boundaries[len(boundaries)-2]
		switch {
		case tr.Horizon-prev <= maxWS:
			boundaries = boundaries[:len(boundaries)-1]
		case tr.Horizon-minWS-prev >= minWS:
			boundaries[len(boundaries)-1] = tr.Horizon - minWS
		}
	}
	boundaries = append(boundaries, tr.Horizon)

	// Defensive validation of the invariants promised above.
	for i := 1; i < len(boundaries); i++ {
		if boundaries[i] <= boundaries[i-1] {
			return nil, errors.New("trace: internal error: adaptive boundaries not increasing")
		}
	}
	return boundaries, nil
}

// AnalyzeAdaptive runs the window analysis on adaptively derived
// variable-size windows.
func AnalyzeAdaptive(tr *Trace, minWS, maxWS int64) (*Analysis, error) {
	boundaries, err := AdaptiveBoundaries(tr, minWS, maxWS)
	if err != nil {
		return nil, err
	}
	return AnalyzeWithBoundaries(tr, boundaries)
}

//go:build !unix

package trace

import (
	"io"
	"os"
)

// mapFile on platforms without mmap reads the file into memory — the
// analysis still works, just without the out-of-core property.
func mapFile(f *os.File, size int) ([]byte, func() error, error) {
	data, err := io.ReadAll(io.LimitReader(f, int64(size)))
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}

package trace

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"

	"repro/internal/ds"
)

// Fingerprint is a stable content hash used to address designs in the
// cross-request cache (internal/cache). Two analyses with equal
// solver-visible content — same receiver count, window edges, per-window
// loads, overlap tables and aggregate overlap matrix — fingerprint
// equal regardless of which kernel produced them or in what order their
// sparse rows were built.
type Fingerprint [sha256.Size]byte

// String renders the fingerprint as lowercase hex (the on-disk cache
// file name).
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// analysisFPTag versions the canonical encoding below. Bump it whenever
// the byte layout changes so stale cache entries can never alias fresh
// fingerprints.
const analysisFPTag = "stbus.analysis.v1"

// fpWriter streams fixed-width little-endian words into a hash through
// a small buffer, keeping the per-value cost at a few appends instead
// of one hash.Write call per matrix cell.
type fpWriter struct {
	h   hash.Hash
	buf []byte
}

func newFPWriter(h hash.Hash) *fpWriter { return &fpWriter{h: h, buf: make([]byte, 0, 4096)} }

func (w *fpWriter) flush() {
	if len(w.buf) > 0 {
		w.h.Write(w.buf)
		w.buf = w.buf[:0]
	}
}

func (w *fpWriter) i64(v int64) {
	if cap(w.buf)-len(w.buf) < 8 {
		w.flush()
	}
	w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(v))
}

func (w *fpWriter) str(s string) {
	w.i64(int64(len(s)))
	w.flush()
	w.h.Write([]byte(s))
}

// Fingerprint returns the content hash of the analysis. The result is
// computed once and memoized (same benign-race contract as
// MaxWindowLoad: concurrent first calls all compute the same value).
// The analysis must not be mutated after the first call.
func (a *Analysis) Fingerprint() Fingerprint {
	if p := a.fp.Load(); p != nil {
		return *p
	}
	f := a.fingerprint()
	a.fp.Store(&f)
	return f
}

// fingerprint serializes the canonical form: a version tag, the shape,
// the dense load matrices, the sparse overlap tables with zero-valued
// stored cells skipped (so the hash depends on logical content, not on
// which kernel happened to store an explicit zero), and the aggregate
// overlap upper triangle.
func (a *Analysis) fingerprint() Fingerprint {
	h := sha256.New()
	w := newFPWriter(h)
	w.str(analysisFPTag)
	nT := a.NumReceivers
	w.i64(int64(nT))
	w.i64(int64(len(a.Boundaries)))
	for _, b := range a.Boundaries {
		w.i64(b)
	}
	for i := 0; i < nT; i++ {
		for _, v := range a.Comm.Row(i) {
			w.i64(v)
		}
		for _, v := range a.CritComm.Row(i) {
			w.i64(v)
		}
	}
	for _, sp := range []*ds.SparseInt64Matrix{a.Overlap, a.CritOverlap} {
		for r := 0; r < sp.Rows; r++ {
			cells := sp.RowCells(r)
			nnz := 0
			for _, c := range cells {
				if c.Val != 0 {
					nnz++
				}
			}
			w.i64(int64(nnz))
			for _, c := range cells {
				if c.Val != 0 {
					w.i64(int64(c.Col))
					w.i64(c.Val)
				}
			}
		}
	}
	for i := 0; i < nT; i++ {
		for j := i + 1; j < nT; j++ {
			w.i64(a.OM.At(i, j))
		}
	}
	w.flush()
	var f Fingerprint
	h.Sum(f[:0])
	return f
}

// Clone returns a deep copy of the analysis sharing no storage with the
// original. Memoized values (MaxWindowLoad, Fingerprint) are not
// carried over: a clone is typically about to be perturbed.
func (a *Analysis) Clone() *Analysis {
	return &Analysis{
		NumReceivers: a.NumReceivers,
		Boundaries:   append([]int64(nil), a.Boundaries...),
		Comm:         a.Comm.Clone(),
		CritComm:     a.CritComm.Clone(),
		Overlap:      a.Overlap.Clone(),
		CritOverlap:  a.CritOverlap.Clone(),
		OM:           a.OM.Clone(),
	}
}

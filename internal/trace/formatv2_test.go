package trace

import (
	"bytes"
	"context"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// encodeTraceV2 serializes tr in the v2 columnar format.
func encodeTraceV2(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinaryV2(&buf, tr); err != nil {
		t.Fatalf("WriteBinaryV2: %v", err)
	}
	return buf.Bytes()
}

func TestV2RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 8; trial++ {
		tr := randomSweepTrace(rng, 1+rng.Intn(32), 1+rng.Intn(300), int64(50+rng.Intn(5000)))
		got, err := ReadBinary(bytes.NewReader(encodeTraceV2(t, tr)))
		if err != nil {
			t.Fatalf("trial %d: ReadBinary(v2): %v", trial, err)
		}
		// v2 stores events start-sorted; the logical trace is identical.
		if want := sortedCopy(tr); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: v2 round trip altered the trace", trial)
		}
	}
}

func TestV2RoundTripEmpty(t *testing.T) {
	tr := &Trace{NumReceivers: 3, NumSenders: 2, Horizon: 100}
	got, err := ReadBinary(bytes.NewReader(encodeTraceV2(t, tr)))
	if err != nil {
		t.Fatalf("ReadBinary(empty v2): %v", err)
	}
	if got.NumReceivers != 3 || got.NumSenders != 2 || got.Horizon != 100 || len(got.Events) != 0 {
		t.Fatalf("empty v2 round trip: got %+v", got)
	}
}

// TestV2MultiBlock forces multiple blocks and checks the block
// boundary is invisible to readers.
func TestV2MultiBlock(t *testing.T) {
	n := v2BlockMaxEvents + 500
	tr := &Trace{NumReceivers: 4, NumSenders: 2, Horizon: int64(4 * n)}
	for k := 0; k < n; k++ {
		tr.Events = append(tr.Events, Event{
			Start: int64(2 * k), Len: 3, Sender: k % 2, Receiver: k % 4, Critical: k%16 == 0,
		})
	}
	data := encodeTraceV2(t, tr)
	got, err := ReadBinary(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatal("multi-block round trip altered the trace")
	}
}

// TestV2BytesPerEvent pins the format's size target on the benchmark
// workload shape: ≤8 bytes/event including all headers.
func TestV2BytesPerEvent(t *testing.T) {
	tr := benchTrace(32, 50000)
	data := encodeTraceV2(t, tr)
	perEvent := float64(len(data)) / float64(len(tr.Events))
	if perEvent > 8 {
		t.Fatalf("v2 encodes %d events in %d bytes (%.2f B/event), want ≤8", len(tr.Events), len(data), perEvent)
	}
	v1 := encodeTrace(t, tr)
	t.Logf("v2: %.2f B/event (v1: %.2f)", perEvent, float64(len(v1))/float64(len(tr.Events)))
}

func TestV2WriterErrors(t *testing.T) {
	w, err := NewV2Writer(&bytes.Buffer{}, 2, 1, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Add(Event{Start: 50, Len: 5}); err != nil {
		t.Fatal(err)
	}
	if err := w.Add(Event{Start: 40, Len: 5}); err == nil {
		t.Fatal("out-of-order Add succeeded")
	}

	w, _ = NewV2Writer(&bytes.Buffer{}, 2, 1, 100, 2)
	w.Add(Event{Start: 1, Len: 1}) //nolint:errcheck
	if err := w.Close(); err == nil || !strings.Contains(err.Error(), "never added") {
		t.Fatalf("short Close: got %v", err)
	}

	w, _ = NewV2Writer(&bytes.Buffer{}, 2, 1, 100, 1)
	w.Add(Event{Start: 1, Len: 1}) //nolint:errcheck
	if err := w.Add(Event{Start: 2, Len: 1}); err == nil {
		t.Fatal("Add past the declared count succeeded")
	}
}

// TestV2Corrupt checks that structural corruption surfaces as an error
// on every decode path rather than silently skewing the analysis.
func TestV2Corrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := randomSweepTrace(rng, 5, 200, 3000)
	data := encodeTraceV2(t, tr)

	check := func(name string, mutate func([]byte) []byte) {
		bad := mutate(append([]byte(nil), data...))
		if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
			t.Errorf("%s: ReadBinary accepted corrupt input", name)
		}
		if _, err := AnalyzeBytesSharded(context.Background(), bad, 100, 4, nil); err == nil {
			t.Errorf("%s: AnalyzeBytesSharded accepted corrupt input", name)
		}
	}
	check("truncated-payload", func(b []byte) []byte { return b[:len(b)-3] })
	check("truncated-block-header", func(b []byte) []byte { return b[:binaryHeaderSize+10] })
	check("corrupt-maxEnd", func(b []byte) []byte {
		off := binaryHeaderSize + 16 // first block's maxEnd
		binary.LittleEndian.PutUint64(b[off:], binary.LittleEndian.Uint64(b[off:])+7)
		return b
	})
	check("corrupt-count", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[binaryHeaderSize:], 0)
		return b
	})

	// Trailing garbage is rejected by the indexed (sharded) reader.
	bad := append(append([]byte(nil), data...), 1, 2, 3)
	if _, err := AnalyzeBytesSharded(context.Background(), bad, 100, 4, nil); err == nil {
		t.Error("trailing bytes: AnalyzeBytesSharded accepted corrupt input")
	}
}

func TestAnalyzeReaderV2MatchesAnalyze(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 6; trial++ {
		tr := randomSweepTrace(rng, 2+rng.Intn(16), 1+rng.Intn(400), int64(100+rng.Intn(3000)))
		for _, ws := range []int64{1, 37, tr.Horizon} {
			want, err := Analyze(tr, ws)
			if err != nil {
				t.Fatal(err)
			}
			got, err := AnalyzeReader(context.Background(), bytes.NewReader(encodeTraceV2(t, tr)), ws)
			if err != nil {
				t.Fatalf("AnalyzeReader(v2): %v", err)
			}
			mustEqualAnalyses(t, "stream-v2", got, want)
		}
	}
}

// TestAnalyzeBytesShardedMatches cross-checks the byte-backed sharded
// driver against the in-memory sweep for both container formats.
func TestAnalyzeBytesShardedMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 5; trial++ {
		tr := randomSweepTrace(rng, 2+rng.Intn(24), 1+rng.Intn(500), int64(200+rng.Intn(5000)))
		v1 := encodeTrace(t, sortedCopy(tr))
		v2 := encodeTraceV2(t, tr)
		for _, ws := range []int64{13, 211, tr.Horizon / 2} {
			if ws <= 0 {
				continue
			}
			want, err := Analyze(tr, ws)
			if err != nil {
				t.Fatal(err)
			}
			for _, shards := range []int{1, 2, 5, 9, 0} {
				got, err := AnalyzeBytesSharded(context.Background(), v1, ws, shards, nil)
				if err != nil {
					t.Fatalf("v1 sharded (%d): %v", shards, err)
				}
				mustEqualAnalyses(t, "v1-bytes/sh"+itoa(shards), got, want)
				got, err = AnalyzeBytesSharded(context.Background(), v2, ws, shards, nil)
				if err != nil {
					t.Fatalf("v2 sharded (%d): %v", shards, err)
				}
				mustEqualAnalyses(t, "v2-bytes/sh"+itoa(shards), got, want)
			}
		}
	}
}

// TestAnalyzeBytesShardedUnsortedV1 checks the byte-backed planner
// rejects unordered v1 images with a clear error (the in-memory path
// sorts; the out-of-core path cannot).
func TestAnalyzeBytesShardedUnsortedV1(t *testing.T) {
	tr := &Trace{NumReceivers: 2, NumSenders: 1, Horizon: 100, Events: []Event{
		{Start: 50, Len: 5, Receiver: 0},
		{Start: 10, Len: 5, Receiver: 1},
	}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	_, err := AnalyzeBytesSharded(context.Background(), buf.Bytes(), 10, 4, nil)
	if err == nil || !strings.Contains(err.Error(), "start-ordered") {
		t.Fatalf("unordered v1 image: got %v, want start-ordered error", err)
	}
}

func TestAnalyzeFileSharded(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tr := randomSweepTrace(rng, 12, 800, 6000)
	want, err := Analyze(tr, 250)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for name, data := range map[string][]byte{
		"trace.v1.trc": encodeTrace(t, sortedCopy(tr)),
		"trace.v2.trc": encodeTraceV2(t, tr),
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{1, 4} {
			var stats ShardStats
			got, err := AnalyzeFileSharded(context.Background(), path, 250, shards, &stats)
			if err != nil {
				t.Fatalf("%s shards=%d: %v", name, shards, err)
			}
			mustEqualAnalyses(t, name, got, want)
			if len(stats.Shards) == 0 {
				t.Fatalf("%s shards=%d: no shard stats", name, shards)
			}
		}
	}
	if _, err := AnalyzeFileSharded(context.Background(), filepath.Join(dir, "missing.trc"), 250, 2, nil); err == nil {
		t.Fatal("missing file: want error")
	}
}

// TestFingerprintAcrossFormats pins satellite: the analysis
// fingerprint — the design-cache key — is a property of the logical
// trace, identical whether the trace arrived as an in-memory slice
// (any event order), a v1 image, or a v2 re-encode.
func TestFingerprintAcrossFormats(t *testing.T) {
	tr := &Trace{NumReceivers: 4, NumSenders: 2, Horizon: 1000, Events: []Event{
		{Start: 700, Len: 40, Receiver: 3, Sender: 1, Critical: true},
		{Start: 20, Len: 300, Receiver: 0},
		{Start: 150, Len: 60, Receiver: 1, Sender: 1},
		{Start: 150, Len: 60, Receiver: 2, Critical: true},
	}}
	const ws = 100
	base, err := Analyze(tr, ws)
	if err != nil {
		t.Fatal(err)
	}
	want := base.Fingerprint()

	for name, data := range map[string][]byte{"v1": encodeTrace(t, tr), "v2": encodeTraceV2(t, tr)} {
		decoded, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		a, err := Analyze(decoded, ws)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Fingerprint() != want {
			t.Fatalf("%s: fingerprint diverges from the in-memory analysis", name)
		}
	}
	var stats ShardStats
	sharded, err := AnalyzeBytesSharded(context.Background(), encodeTraceV2(t, tr), ws, 3, &stats)
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Fingerprint() != want {
		t.Fatal("sharded v2 analysis fingerprint diverges")
	}
}

package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func randomTrace(seed int64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{
		NumReceivers: 1 + rng.Intn(8),
		NumSenders:   1 + rng.Intn(8),
		Horizon:      1000,
	}
	for e := 0; e < rng.Intn(50); e++ {
		start := int64(rng.Intn(900))
		tr.Events = append(tr.Events, Event{
			Start:    start,
			Len:      1 + int64(rng.Intn(99)),
			Sender:   rng.Intn(tr.NumSenders),
			Receiver: rng.Intn(tr.NumReceivers),
			Critical: rng.Intn(3) == 0,
		})
	}
	return tr
}

func TestBinaryRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		tr := randomTrace(seed)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			t.Fatalf("seed %d: WriteBinary: %v", seed, err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("seed %d: ReadBinary: %v", seed, err)
		}
		if !reflect.DeepEqual(normalize(tr), normalize(got)) {
			t.Fatalf("seed %d: round trip mismatch", seed)
		}
	}
}

// normalize maps a nil event slice to an empty one for comparison.
func normalize(tr *Trace) *Trace {
	out := *tr
	if out.Events == nil {
		out.Events = []Event{}
	}
	return &out
}

func TestJSONRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		tr := randomTrace(seed)
		var buf bytes.Buffer
		if err := WriteJSON(&buf, tr); err != nil {
			t.Fatalf("seed %d: WriteJSON: %v", seed, err)
		}
		got, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("seed %d: ReadJSON: %v", seed, err)
		}
		if !reflect.DeepEqual(normalize(tr), normalize(got)) {
			t.Fatalf("seed %d: round trip mismatch", seed)
		}
	}
}

func TestReadBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOPE additional garbage data")); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	tr := randomTrace(3)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{2, 10, len(full) - 3} {
		if cut >= len(full) {
			continue
		}
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncated at %d accepted", cut)
		}
	}
}

func TestWriteBinaryRejectsInvalid(t *testing.T) {
	tr := &Trace{NumReceivers: 0, NumSenders: 1, Horizon: 10}
	if err := WriteBinary(&bytes.Buffer{}, tr); err == nil {
		t.Error("invalid trace accepted by WriteBinary")
	}
	if err := WriteJSON(&bytes.Buffer{}, tr); err == nil {
		t.Error("invalid trace accepted by WriteJSON")
	}
}

func TestReadJSONGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{nope")); err == nil {
		t.Error("garbage JSON accepted")
	}
}

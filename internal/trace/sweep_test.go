package trace

import (
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"math/rand"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// mustEqualAnalyses asserts got and want are bit-identical: every
// exported quantity matches (DiffAnalyses) and the in-memory
// representation is deeply equal (sparse tables are compacted to a
// canonical layout, so equal content means equal structure).
func mustEqualAnalyses(t *testing.T, tag string, got, want *Analysis) {
	t.Helper()
	if diffs := DiffAnalyses(got, want); len(diffs) > 0 {
		t.Fatalf("%s: analyses differ:\n  %s", tag, strings.Join(diffs, "\n  "))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: analyses content-equal but representations differ", tag)
	}
}

// randomTrace builds a reproducible random trace. Event starts are
// unordered; the kernels must not care.
func randomSweepTrace(rng *rand.Rand, receivers, events int, horizon int64) *Trace {
	tr := &Trace{NumReceivers: receivers, NumSenders: 2, Horizon: horizon}
	for k := 0; k < events; k++ {
		start := rng.Int63n(horizon)
		maxLen := horizon - start
		length := int64(1)
		if maxLen > 1 {
			length += rng.Int63n(min(maxLen, 40))
		}
		tr.Events = append(tr.Events, Event{
			Start:    start,
			Len:      length,
			Sender:   rng.Intn(2),
			Receiver: rng.Intn(receivers),
			Critical: rng.Intn(3) == 0,
		})
	}
	return tr
}

func TestSweepMatchesLegacyRandom(t *testing.T) {
	for _, receivers := range []int{1, 2, 3, 5, 8, 17, 33, 64, 65, 70, 100} {
		rng := rand.New(rand.NewSource(int64(receivers)))
		events := 40 + receivers*8
		for trial := 0; trial < 6; trial++ {
			horizon := int64(64 + rng.Intn(4000))
			tr := randomSweepTrace(rng, receivers, events, horizon)
			for _, ws := range []int64{1, 7, horizon / 3, horizon, horizon + 13} {
				if ws <= 0 {
					continue
				}
				sweep, err := Analyze(tr, ws)
				if err != nil {
					t.Fatalf("sweep R=%d ws=%d: %v", receivers, ws, err)
				}
				legacy, err := AnalyzeLegacy(tr, ws)
				if err != nil {
					t.Fatalf("legacy R=%d ws=%d: %v", receivers, ws, err)
				}
				mustEqualAnalyses(t, "R="+itoa(receivers)+" ws="+itoa(int(ws)), sweep, legacy)
			}
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [24]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestSweepMatchesLegacyAdversarial pins the crafted edge cases the
// sweep kernel's invariants depend on: coincident endpoints, intervals
// ending exactly on window boundaries, back-to-back coverage of one
// receiver, nested and extending events, and all receivers active at
// once.
func TestSweepMatchesLegacyAdversarial(t *testing.T) {
	cases := []struct {
		name string
		tr   *Trace
		ws   int64
	}{
		{
			name: "coincident endpoints",
			tr: &Trace{NumReceivers: 4, NumSenders: 1, Horizon: 100, Events: []Event{
				{Start: 10, Len: 20, Receiver: 0},
				{Start: 10, Len: 20, Receiver: 1, Critical: true},
				{Start: 10, Len: 20, Receiver: 2},
				{Start: 30, Len: 10, Receiver: 3}, // starts exactly where the others end
			}},
			ws: 25,
		},
		{
			name: "window-aligned ends",
			tr: &Trace{NumReceivers: 3, NumSenders: 1, Horizon: 120, Events: []Event{
				{Start: 0, Len: 30, Receiver: 0},   // ends at boundary 30
				{Start: 30, Len: 30, Receiver: 0},  // adjacent: coverage merges across boundary
				{Start: 29, Len: 31, Receiver: 1},  // ends at boundary 60
				{Start: 60, Len: 60, Receiver: 2, Critical: true},
			}},
			ws: 30,
		},
		{
			name: "all receivers active",
			tr: func() *Trace {
				tr := &Trace{NumReceivers: 16, NumSenders: 1, Horizon: 64}
				for r := 0; r < 16; r++ {
					tr.Events = append(tr.Events, Event{Start: 0, Len: 64, Receiver: r, Critical: r%2 == 0})
				}
				return tr
			}(),
			ws: 16,
		},
		{
			name: "nested and extending coverage",
			tr: &Trace{NumReceivers: 2, NumSenders: 1, Horizon: 200, Events: []Event{
				{Start: 10, Len: 100, Receiver: 0},
				{Start: 20, Len: 10, Receiver: 0},  // nested, subsumed
				{Start: 50, Len: 120, Receiver: 0}, // extends the same coverage
				{Start: 40, Len: 30, Receiver: 1, Critical: true},
				{Start: 90, Len: 50, Receiver: 1},  // gap then new coverage
			}},
			ws: 33,
		},
		{
			name: "single window spans everything",
			tr: &Trace{NumReceivers: 3, NumSenders: 1, Horizon: 50, Events: []Event{
				{Start: 0, Len: 50, Receiver: 0},
				{Start: 0, Len: 50, Receiver: 1},
				{Start: 49, Len: 1, Receiver: 2},
			}},
			ws: 50,
		},
		{
			name: "short tail window",
			tr: &Trace{NumReceivers: 2, NumSenders: 1, Horizon: 101, Events: []Event{
				{Start: 95, Len: 6, Receiver: 0},
				{Start: 99, Len: 2, Receiver: 1, Critical: true},
			}},
			ws: 20, // last window is [100,101)
		},
		{
			name: "multi-word bitset fallback",
			tr: func() *Trace {
				tr := &Trace{NumReceivers: 70, NumSenders: 1, Horizon: 256}
				for r := 0; r < 70; r++ {
					tr.Events = append(tr.Events, Event{Start: int64(r), Len: int64(1 + r%40), Receiver: r, Critical: r%3 == 0})
				}
				return tr
			}(),
			ws: 32,
		},
		{
			name: "empty trace",
			tr:   &Trace{NumReceivers: 4, NumSenders: 1, Horizon: 40},
			ws:   10,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sweep, err := Analyze(tc.tr, tc.ws)
			if err != nil {
				t.Fatalf("sweep: %v", err)
			}
			legacy, err := AnalyzeLegacy(tc.tr, tc.ws)
			if err != nil {
				t.Fatalf("legacy: %v", err)
			}
			mustEqualAnalyses(t, tc.name, sweep, legacy)
		})
	}
}

// TestSweepExplicitBoundaries exercises the variable-window path with
// irregular edges on both kernels.
func TestSweepExplicitBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tr := randomSweepTrace(rng, 9, 200, 500)
	boundaries := []int64{0, 1, 17, 18, 100, 499, 500}
	sweep, err := AnalyzeWithBoundaries(tr, boundaries)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := AnalyzeLegacyWithBoundariesCtx(context.Background(), tr, boundaries)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualAnalyses(t, "explicit boundaries", sweep, legacy)
}

func TestSortEventsByStart(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 5, 4095, 4096, 9000} {
		events := make([]Event, n)
		for i := range events {
			events[i] = Event{Start: rng.Int63n(1 << 40), Len: int64(i + 1), Receiver: i}
		}
		got := sortEventsByStart(events)
		if len(got) != n {
			t.Fatalf("n=%d: sorted length %d", n, len(got))
		}
		for i := 1; i < n; i++ {
			if got[i-1].Start > got[i].Start {
				t.Fatalf("n=%d: out of order at %d: %d > %d", n, i, got[i-1].Start, got[i].Start)
			}
		}
	}
	// All-zero starts must not loop or reorder lengths arbitrarily.
	zeros := make([]Event, 5000)
	for i := range zeros {
		zeros[i] = Event{Len: int64(i + 1)}
	}
	if got := sortEventsByStart(zeros); len(got) != 5000 {
		t.Fatal("zero-start sort lost events")
	}
}

func encodeTrace(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	return buf.Bytes()
}

func sortedCopy(tr *Trace) *Trace {
	out := *tr
	out.Events = sortEventsByStart(tr.Events)
	return &out
}

func TestAnalyzeReaderMatchesAnalyze(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 8; trial++ {
		receivers := 1 + rng.Intn(70)
		tr := sortedCopy(randomSweepTrace(rng, receivers, 300, int64(200+rng.Intn(2000))))
		ws := int64(1 + rng.Intn(int(tr.Horizon)))
		want, err := Analyze(tr, ws)
		if err != nil {
			t.Fatal(err)
		}
		got, err := AnalyzeReader(context.Background(), bytes.NewReader(encodeTrace(t, tr)), ws)
		if err != nil {
			t.Fatalf("AnalyzeReader: %v", err)
		}
		mustEqualAnalyses(t, "stream trial "+itoa(trial), got, want)
	}
}

func TestAnalyzeReaderErrors(t *testing.T) {
	tr := &Trace{NumReceivers: 2, NumSenders: 1, Horizon: 100, Events: []Event{
		{Start: 10, Len: 5, Receiver: 0},
		{Start: 20, Len: 5, Receiver: 1},
	}}
	good := encodeTrace(t, tr)
	ctx := context.Background()

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte{}, good...)
		bad[0] = 'X'
		if _, err := AnalyzeReader(ctx, bytes.NewReader(bad), 10); err == nil || !strings.Contains(err.Error(), "magic") {
			t.Fatalf("err = %v, want bad magic", err)
		}
	})
	t.Run("truncated event", func(t *testing.T) {
		if _, err := AnalyzeReader(ctx, bytes.NewReader(good[:len(good)-3]), 10); err == nil || !strings.Contains(err.Error(), "reading event") {
			t.Fatalf("err = %v, want truncated read", err)
		}
	})
	t.Run("bad window size", func(t *testing.T) {
		if _, err := AnalyzeReader(ctx, bytes.NewReader(good), 0); err == nil || !strings.Contains(err.Error(), "window size") {
			t.Fatalf("err = %v, want window size error", err)
		}
	})
	t.Run("unsorted stream", func(t *testing.T) {
		rev := *tr
		rev.Events = []Event{tr.Events[1], tr.Events[0]}
		if _, err := AnalyzeReader(ctx, bytes.NewReader(encodeTrace(t, &rev)), 10); err == nil || !strings.Contains(err.Error(), "start-ordered") {
			t.Fatalf("err = %v, want start-order error", err)
		}
	})
	t.Run("receiver out of range", func(t *testing.T) {
		bad := *tr
		bad.Events = []Event{{Start: 10, Len: 5, Receiver: 0}}
		raw := encodeTrace(t, &bad)
		// Patch the receiver field (offset 20 within the 25-byte record)
		// of the only event, which lives at the end of the buffer.
		binary.LittleEndian.PutUint32(raw[len(raw)-5:], 7)
		if _, err := AnalyzeReader(ctx, bytes.NewReader(raw), 10); err == nil || !strings.Contains(err.Error(), "receiver") {
			t.Fatalf("err = %v, want receiver range error", err)
		}
	})
	t.Run("canceled", func(t *testing.T) {
		cctx, cancel := context.WithCancel(ctx)
		cancel()
		if _, err := AnalyzeReader(cctx, bytes.NewReader(good), 10); err == nil || !strings.Contains(err.Error(), "canceled") {
			t.Fatalf("err = %v, want cancellation", err)
		}
	})
	t.Run("hostile receiver count", func(t *testing.T) {
		raw := append([]byte{}, good...)
		binary.LittleEndian.PutUint32(raw[8:], 1<<19) // numReceivers field
		if _, err := AnalyzeReader(ctx, bytes.NewReader(raw), 10); err == nil || !strings.Contains(err.Error(), "streaming-analysis limit") {
			t.Fatalf("err = %v, want streaming receiver limit", err)
		}
	})
}

// syntheticStream serves a valid binary trace of the requested size
// record by record, never materializing it: the memory-boundedness test
// below streams millions of events from it while asserting the analyzer
// allocates nothing proportional to the event count.
type syntheticStream struct {
	pending   []byte
	rec       [binaryEventSize]byte
	emitted   uint64
	numEvents uint64
	receivers int
	horizon   int64
}

func newSyntheticStream(receivers int, numEvents uint64) *syntheticStream {
	s := &syntheticStream{
		numEvents: numEvents,
		receivers: receivers,
		horizon:   int64(numEvents/4) + 64,
	}
	var hdr bytes.Buffer
	hdr.Write(binaryMagic[:])
	for _, v := range []any{uint32(binaryVersion), uint32(receivers), uint32(1), uint64(s.horizon), numEvents} {
		binary.Write(&hdr, binary.LittleEndian, v)
	}
	s.pending = hdr.Bytes()
	return s
}

// record fills the reusable record buffer for event i, which starts at
// cycle i/4 (nondecreasing, coincident in groups of four). Reusing the
// buffer keeps the stream itself allocation-free so the test's memory
// accounting sees only the analyzer.
func (s *syntheticStream) record(i uint64) {
	binary.LittleEndian.PutUint64(s.rec[0:], i/4)
	binary.LittleEndian.PutUint64(s.rec[8:], uint64(1+i%13))
	binary.LittleEndian.PutUint32(s.rec[16:], 0)
	binary.LittleEndian.PutUint32(s.rec[20:], uint32(i)%uint32(s.receivers))
	s.rec[24] = 0
	if i%8 == 0 {
		s.rec[24] = 1
	}
}

func (s *syntheticStream) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if len(s.pending) == 0 {
			if s.emitted == s.numEvents {
				if n == 0 {
					return 0, io.EOF
				}
				return n, nil
			}
			s.record(s.emitted)
			s.emitted++
			s.pending = s.rec[:]
		}
		c := copy(p[n:], s.pending)
		s.pending = s.pending[c:]
		n += c
	}
	return n, nil
}

// TestAnalyzeReaderMemoryBounded streams 2M events (≈50 MB on the wire,
// ≈96 MB as a materialized []Event) and asserts the analyzer's total
// allocation stays tens of times below that: peak state is the output
// tables plus the O(R) frontier, independent of the event count.
func TestAnalyzeReaderMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("streams 2M events")
	}
	const numEvents = 2_000_000
	src := newSyntheticStream(8, numEvents)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	a, err := AnalyzeReader(context.Background(), src, (int64(numEvents)/4+64)/64)
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Comm.At(0, 0); got <= 0 {
		t.Fatal("analysis came back empty")
	}
	allocated := after.TotalAlloc - before.TotalAlloc
	const limit = 8 << 20
	if allocated > limit {
		t.Errorf("streaming analysis allocated %d bytes for %d events, want < %d (event-count independent)", allocated, numEvents, limit)
	}

	// Same stream materialized must agree bit-for-bit.
	small := newSyntheticStream(8, 50_000)
	tr, err := ReadBinary(small)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Analyze(tr, 128)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AnalyzeReader(context.Background(), newSyntheticStream(8, 50_000), 128)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualAnalyses(t, "synthetic stream vs materialized", got, want)
}

func TestMaxWindowLoadMemoized(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := randomSweepTrace(rng, 6, 300, 1000)
	a, err := Analyze(tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := AnalyzeLegacy(tr, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := legacy.MaxWindowLoad()
	if got := a.MaxWindowLoad(); got != want {
		t.Fatalf("MaxWindowLoad = %d, legacy %d", got, want)
	}
	if got := a.MaxWindowLoad(); got != want {
		t.Fatalf("memoized MaxWindowLoad = %d, want %d", got, want)
	}
	if a.mwl.Load() != int64(want) {
		t.Fatal("MaxWindowLoad not memoized")
	}
}

func benchTrace(receivers, events int) *Trace {
	rng := rand.New(rand.NewSource(42))
	tr := &Trace{NumReceivers: receivers, NumSenders: 1}
	for k := 0; k < events; k++ {
		start := int64(k / 4 * 28)
		tr.Events = append(tr.Events, Event{
			Start:    start,
			Len:      int64(9 + rng.Intn(24)),
			Receiver: k % receivers,
			Critical: k%8 == 0,
		})
	}
	tr.Horizon = tr.Events[len(tr.Events)-1].Start + 64
	return tr
}

// benchWindow mirrors benchprobs.ScaledWindow: fixed 500-cycle
// contention windows, the granularity the analysis benchmarks use.
const benchWindow = 500

func BenchmarkAnalyzeSweep(b *testing.B) {
	tr := benchTrace(32, 100_000)
	ws := int64(benchWindow)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(tr, ws); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyzeLegacy(b *testing.B) {
	tr := benchTrace(32, 100_000)
	ws := int64(benchWindow)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeLegacy(tr, ws); err != nil {
			b.Fatal(err)
		}
	}
}

package trace

import (
	"bytes"
	"encoding/binary"
	"math"
	"runtime"
	"strings"
	"testing"
)

// TestValidateRejectsOverflowingEvent is the regression test for the
// Start+Len int64 overflow: an event whose end wraps negative used to
// pass validation (End() > Horizon is false for a wrapped End) and
// corrupt the interval sets downstream.
func TestValidateRejectsOverflowingEvent(t *testing.T) {
	tr := &Trace{
		NumReceivers: 1, NumSenders: 1, Horizon: 64,
		Events: []Event{{Start: 5, Len: math.MaxInt64 - 2, Sender: 0, Receiver: 0}},
	}
	if err := tr.Validate(); err == nil {
		t.Fatal("overflowing event passed validation")
	}
	// The boundary case stays valid: an event ending exactly at the
	// horizon.
	tr.Events[0].Len = 59
	if err := tr.Validate(); err != nil {
		t.Fatalf("event ending at the horizon rejected: %v", err)
	}
	// Start at the horizon is invalid even with Len 1.
	tr.Events[0] = Event{Start: 64, Len: 1, Sender: 0, Receiver: 0}
	if err := tr.Validate(); err == nil {
		t.Fatal("event starting at the horizon passed validation")
	}
}

// TestAnalyzeWindowLargerThanHorizon pins the single-window degenerate
// case, including the int64-overflow regression: a window size near
// MaxInt64 used to overflow the ceiling division into a negative
// window count and panic in make.
func TestAnalyzeWindowLargerThanHorizon(t *testing.T) {
	tr := &Trace{NumReceivers: 2, NumSenders: 1, Horizon: 50, Events: []Event{
		{Start: 10, Len: 5, Sender: 0, Receiver: 0},
		{Start: 12, Len: 5, Sender: 0, Receiver: 1},
	}}
	for _, ws := range []int64{51, 1000, math.MaxInt64 - 1, math.MaxInt64} {
		a, err := Analyze(tr, ws)
		if err != nil {
			t.Fatalf("ws=%d: %v", ws, err)
		}
		if a.NumWindows() != 1 {
			t.Fatalf("ws=%d: %d windows, want 1", ws, a.NumWindows())
		}
		if a.WindowLen(0) != 50 {
			t.Fatalf("ws=%d: window length %d, want the 50-cycle horizon", ws, a.WindowLen(0))
		}
		if got := a.PairOverlap(0, 1, 0); got != 3 {
			t.Fatalf("ws=%d: overlap %d, want 3", ws, got)
		}
	}
}

// TestAnalyzeShortLastWindow covers a horizon that is not a multiple
// of the window size: the last window must be exactly the remainder
// and account the tail cycles.
func TestAnalyzeShortLastWindow(t *testing.T) {
	tr := &Trace{NumReceivers: 1, NumSenders: 1, Horizon: 25, Events: []Event{
		{Start: 22, Len: 3, Sender: 0, Receiver: 0}, // entirely in the tail
	}}
	a, err := Analyze(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumWindows() != 3 {
		t.Fatalf("%d windows, want 3", a.NumWindows())
	}
	if a.WindowLen(2) != 5 {
		t.Fatalf("last window length %d, want 5", a.WindowLen(2))
	}
	if got := a.Comm.At(0, 2); got != 3 {
		t.Fatalf("tail comm %d, want 3", got)
	}
}

// TestAnalyzeSingleReceiver covers the zero-pair case: one receiver
// means no overlap rows at all, and every pair accessor must stay
// coherent about that.
func TestAnalyzeSingleReceiver(t *testing.T) {
	tr := &Trace{NumReceivers: 1, NumSenders: 1, Horizon: 40, Events: []Event{
		{Start: 0, Len: 10, Sender: 0, Receiver: 0},
	}}
	a, err := Analyze(tr, 20)
	if err != nil {
		t.Fatal(err)
	}
	if a.Overlap.Rows != 0 {
		t.Fatalf("%d overlap rows, want 0", a.Overlap.Rows)
	}
	if got := a.PairOverlap(0, 0, 0); got != 0 {
		t.Fatalf("diagonal overlap %d, want 0", got)
	}
	if _, err := a.PairOverlapChecked(0, 1, 0); err == nil {
		t.Fatal("pair (0,1) of a 1-receiver analysis passed the check")
	}
}

// TestPairAccessOutOfRange is the regression test for the opaque
// index panic: out-of-range receivers must yield a descriptive error
// from the checked accessors and a descriptive panic (naming the pair
// and the range) from PairIndex — not a bare slice-bounds fault.
func TestPairAccessOutOfRange(t *testing.T) {
	tr := &Trace{NumReceivers: 3, NumSenders: 1, Horizon: 30, Events: []Event{
		{Start: 0, Len: 5, Sender: 0, Receiver: 0},
		{Start: 2, Len: 5, Sender: 0, Receiver: 1},
	}}
	a, err := Analyze(tr, 30)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]int{{-1, 0}, {0, 3}, {7, 9}, {2, 2}} {
		if err := a.CheckPair(pair[0], pair[1]); err == nil {
			t.Errorf("CheckPair(%d,%d) accepted", pair[0], pair[1])
		}
		if _, err := a.PairOverlapChecked(pair[0], pair[1], 0); err == nil {
			t.Errorf("PairOverlapChecked(%d,%d,0) accepted", pair[0], pair[1])
		}
		if _, err := a.PairCritOverlapChecked(pair[0], pair[1], 0); err == nil {
			t.Errorf("PairCritOverlapChecked(%d,%d,0) accepted", pair[0], pair[1])
		}
	}
	if _, err := a.PairOverlapChecked(0, 1, 5); err == nil || !strings.Contains(err.Error(), "window") {
		t.Errorf("out-of-range window not rejected clearly: %v", err)
	}
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("PairIndex(0,9) did not panic")
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "pair") {
				t.Fatalf("PairIndex panic is not descriptive: %v", r)
			}
		}()
		a.PairIndex(0, 9)
	}()
}

// TestReadBinaryHeaderBombs is the regression test for the decoder
// preallocation: a 32-byte header declaring 2^27 events used to
// commit multiple gigabytes before the first read. It must now fail
// fast on the truncated payload with bounded allocation, and reject
// implausible core counts outright.
func TestReadBinaryHeaderBombs(t *testing.T) {
	mkHeader := func(receivers, senders uint32, horizon, events uint64) []byte {
		hdr := append([]byte("STBT"), make([]byte, 28)...)
		binary.LittleEndian.PutUint32(hdr[4:], 1)
		binary.LittleEndian.PutUint32(hdr[8:], receivers)
		binary.LittleEndian.PutUint32(hdr[12:], senders)
		binary.LittleEndian.PutUint64(hdr[16:], horizon)
		binary.LittleEndian.PutUint64(hdr[24:], events)
		return hdr
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	if _, err := ReadBinary(bytes.NewReader(mkHeader(2, 1, 32, 1<<27))); err == nil {
		t.Fatal("event-count bomb decoded successfully")
	}
	runtime.ReadMemStats(&after)
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 64<<20 {
		t.Errorf("header bomb allocated %d MiB before failing", grew>>20)
	}

	if _, err := ReadBinary(bytes.NewReader(mkHeader(1<<24, 1, 32, 0))); err == nil {
		t.Fatal("implausible receiver count accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(mkHeader(1, 1<<24, 32, 0))); err == nil {
		t.Fatal("implausible sender count accepted")
	}
}

package trace

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/conc"
	"repro/internal/obs"
)

// Sharded-driver instruments: sharded analyses run, and shards executed
// across them.
var (
	metShardedRuns = obs.NewCounter("trace.sharded.analyses")
	metShardsRun   = obs.NewCounter("trace.sharded.shards")
)

// ErrUnsorted reports a byte-image or streaming analysis that met an
// event starting before its predecessor. The out-of-core drivers cannot
// sort without materializing the events, so callers holding the full
// trace should errors.Is-match this and fall back to ReadBinary +
// Analyze (which sorts in memory).
var ErrUnsorted = errors.New("trace: events not start-ordered")

// ShardStat describes one shard of a sharded analysis: the window range
// it covered, the event pieces it fed (a grant straddling a cut is
// counted once per shard it touches) and the wall-clock time of its
// sweep pass.
type ShardStat struct {
	Windows int
	Events  int64
	NS      int64
}

// ShardStats is the optional instrumentation output of the sharded
// analysis drivers, for tools that report per-shard throughput
// (tracestat -stream -shards, analysisbench).
type ShardStats struct {
	Shards  []ShardStat
	PlanNS  int64
	MergeNS int64
}

// EventsPerSec returns the aggregate event throughput implied by the
// slowest shard (the parallel wall clock), 0 when unmeasurable.
func (s *ShardStats) EventsPerSec() float64 {
	var total, maxNS int64
	for _, st := range s.Shards {
		total += st.Events
		if st.NS > maxNS {
			maxNS = st.NS
		}
	}
	if maxNS <= 0 {
		return 0
	}
	return float64(total) / (float64(maxNS) / 1e9)
}

// resolveShards turns the shard-count knob into an effective count:
// nonpositive means one shard per CPU core, and the count never exceeds
// the window count (cuts snap to window boundaries, so more shards than
// windows cannot all be nonempty).
func resolveShards(shards, nW int) int {
	if shards <= 0 {
		shards = conc.Workers(0)
	}
	if shards > nW {
		shards = nW
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}

// shardSpan is one shard of the plan: the half-open window range
// [winLo, winHi) and the half-open range [evLo, evHi) of source events
// whose start cycle lies inside the shard's cycle range.
type shardSpan struct {
	winLo, winHi int
	evLo, evHi   int
}

// shardSrc is an indexed, start-ordered event source the sharded driver
// can partition: the in-memory event slice or the fixed-stride v1
// binary image. startAt/endAt are the cheap planning accessors; feed
// decodes event k fully, clips it to [lo, hi) and feeds the sweeper
// (validating the record for byte-backed sources).
type shardSrc interface {
	events() int
	startAt(k int) int64
	endAt(k int) int64
	feed(sw *sweeper, k int, lo, hi int64) error
}

// memSrc adapts a start-sorted event slice.
type memSrc []Event

func (m memSrc) events() int         { return len(m) }
func (m memSrc) startAt(k int) int64 { return m[k].Start }
func (m memSrc) endAt(k int) int64   { return m[k].End() }

func (m memSrc) feed(sw *sweeper, k int, lo, hi int64) error {
	e := &m[k]
	start, end := e.Start, e.End()
	if start < lo {
		start = lo
	}
	if end > hi {
		end = hi
	}
	if start < end {
		sw.feed(start, end-start, e.Receiver, e.Critical)
	}
	return nil
}

// planShards chooses the cut cycles and carry-in lists. Cuts are
// event-count balanced: the s-th cut aims at event index n·s/shards and
// snaps down to the boundary of the window containing that event's
// start, so every window — and therefore every output table cell —
// belongs to exactly one shard. carries[s] lists the events that start
// before shard s but whose grant extends into it; the driver feeds them
// first, clipped to the shard's cycle range, which is what keeps the
// sharded result bit-identical to the single-pass sweep.
//
// The planning pass reads every event's start and end once; for
// byte-backed sources it doubles as the stream-order check.
func planShards(boundaries []int64, src shardSrc, shards int) (spans []shardSpan, carries [][]int, err error) {
	nW := len(boundaries) - 1
	n := src.events()

	// Window cut indices: cutW[s] is the first window of shard s.
	cutW := make([]int, shards+1)
	cutW[shards] = nW
	for s := 1; s < shards; s++ {
		var w int
		if n == 0 {
			w = nW * s / shards
		} else {
			ti := n * s / shards
			if ti >= n {
				ti = n - 1
			}
			cs := src.startAt(ti)
			// The window containing cycle cs: the last boundary ≤ cs.
			w = sort.Search(nW, func(m int) bool { return boundaries[m+1] > cs })
		}
		if w < cutW[s-1] {
			w = cutW[s-1] // zero-length shard; kept, handled as empty
		}
		if w > nW {
			w = nW
		}
		cutW[s] = w
	}

	spans = make([]shardSpan, shards)
	for s := 0; s < shards; s++ {
		lo, hi := cutW[s], cutW[s+1]
		spans[s] = shardSpan{
			winLo: lo,
			winHi: hi,
			evLo:  sort.Search(n, func(k int) bool { return src.startAt(k) >= boundaries[lo] }),
			evHi:  sort.Search(n, func(k int) bool { return src.startAt(k) >= boundaries[hi] }),
		}
	}

	// Carry-ins: one ordered pass over every event. h tracks the home
	// shard of event k (the shard whose cycle range holds its start).
	carries = make([][]int, shards)
	h := 0
	last := int64(-1)
	for k := 0; k < n; k++ {
		start := src.startAt(k)
		if start < last {
			return nil, nil, fmt.Errorf("%w: event %d starts at %d, before the previous start %d — sharded analysis requires start-ordered traces", ErrUnsorted, k, start, last)
		}
		last = start
		for h+1 < shards && start >= boundaries[cutW[h+1]] {
			h++
		}
		end := src.endAt(k)
		for s := h + 1; s < shards && end > boundaries[cutW[s]]; s++ {
			if cutW[s] < cutW[s+1] { // skip zero-length shards
				carries[s] = append(carries[s], k)
			}
		}
	}
	return spans, carries, nil
}

// analyzeShardedIndexed is the sharded driver over an indexed source:
// plan the cuts, run one sweep kernel per shard on the worker pool, and
// merge the per-shard tables. The result is bit-identical to the
// single-pass sweep at every shard count (the shard_test suite and the
// differential harness gate this).
func analyzeShardedIndexed(ctx context.Context, nT int, boundaries []int64, src shardSrc, shards int, events int64, stats *ShardStats) (*Analysis, error) {
	nW := len(boundaries) - 1

	ctx, span := obs.Start(ctx, "trace.analyze")
	defer span.End()
	span.SetStr("kernel", "sharded")
	span.SetInt("receivers", int64(nT))
	span.SetInt("windows", int64(nW))
	span.SetInt("events", events)
	span.SetInt("shards", int64(shards))
	metAnalyses.Inc()
	metWindows.Add(int64(nW))
	metShardedRuns.Inc()
	metShardsRun.Add(int64(shards))

	t0 := time.Now()
	spans, carries, err := planShards(boundaries, src, shards)
	if err != nil {
		return nil, err
	}
	planNS := time.Since(t0).Nanoseconds()

	parts := make([]*Analysis, shards)
	stat := make([]ShardStat, shards)
	err = conc.ForEach(ctx, shards, 0, func(ctx context.Context, s int) error {
		ts := time.Now()
		sp := spans[s]
		lo, hi := boundaries[sp.winLo], boundaries[sp.winHi]
		sw := newSweeper(nT, boundaries[sp.winLo:sp.winHi+1])
		var fed int64
		for _, k := range carries[s] {
			if err := src.feed(sw, k, lo, hi); err != nil {
				return err
			}
			fed++
		}
		for k := sp.evLo; k < sp.evHi; k++ {
			if fed%sweepCancelStride == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if err := src.feed(sw, k, lo, hi); err != nil {
				return err
			}
			fed++
		}
		parts[s] = sw.finishTables()
		stat[s] = ShardStat{Windows: sp.winHi - sp.winLo, Events: fed, NS: time.Since(ts).Nanoseconds()}
		return nil
	})
	if err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("trace: analysis canceled: %w", err)
		}
		return nil, err
	}

	tm := time.Now()
	a := mergeShards(nT, boundaries, spans, parts)
	if stats != nil {
		stats.Shards = stat
		stats.PlanNS = planNS
		stats.MergeNS = time.Since(tm).Nanoseconds()
	}
	span.SetInt("sparse_cells", int64(a.Overlap.NNZ()+a.CritOverlap.NNZ()))
	return a, nil
}

// mergeShards assembles the global analysis from the per-shard partial
// tables. Every window belongs to exactly one shard, so the dense rows
// are disjoint column-range copies and each sparse row is the ordered
// concatenation of the shards' cells with their columns rebased — the
// same Append sequence the single-pass sweep produces, hence the same
// compacted CSR structure. OM is derived from the merged rows exactly
// as the single-pass finish does.
func mergeShards(nT int, boundaries []int64, spans []shardSpan, parts []*Analysis) *Analysis {
	a := newAnalysis(nT, boundaries)
	for si, pa := range parts {
		wLo := spans[si].winLo
		for i := 0; i < nT; i++ {
			copy(a.Comm.Row(i)[wLo:], pa.Comm.Row(i))
			copy(a.CritComm.Row(i)[wLo:], pa.CritComm.Row(i))
		}
	}
	for r := 0; r < a.Overlap.Rows; r++ {
		for si, pa := range parts {
			wLo := spans[si].winLo
			for _, c := range pa.Overlap.RowCells(r) {
				a.Overlap.Append(r, int(c.Col)+wLo, c.Val)
			}
		}
	}
	for r := 0; r < a.CritOverlap.Rows; r++ {
		for si, pa := range parts {
			wLo := spans[si].winLo
			for _, c := range pa.CritOverlap.RowCells(r) {
				a.CritOverlap.Append(r, int(c.Col)+wLo, c.Val)
			}
		}
	}
	a.Overlap.Compact()
	a.CritOverlap.Compact()
	deriveOM(a)
	return a
}

// AnalyzeSharded is AnalyzeShardedCtx with a background context.
func AnalyzeSharded(tr *Trace, ws int64, shards int, stats *ShardStats) (*Analysis, error) {
	return AnalyzeShardedCtx(context.Background(), tr, ws, shards, stats)
}

// AnalyzeShardedCtx computes the window analysis by partitioning the
// trace into cycle-range shards (cuts snapped to window boundaries),
// running the sweep kernel per shard in parallel on the worker pool,
// and merging the per-shard frontier output at the cuts. Grants that
// straddle a cut are split at the boundary and fed to both sides, so
// the result is bit-identical to the single-pass sweep (Analyze) at
// every shard count — only the wall clock changes. shards ≤ 0 means
// one shard per CPU core; stats may be nil.
func AnalyzeShardedCtx(ctx context.Context, tr *Trace, ws int64, shards int, stats *ShardStats) (*Analysis, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	boundaries, err := windowBoundaries(tr.Horizon, ws)
	if err != nil {
		return nil, err
	}
	return analyzeShardedBoundaries(ctx, tr, boundaries, shards, stats)
}

// AnalyzeShardedWithBoundariesCtx is the explicit-boundary form of the
// sharded driver (variable-size windows); cuts still snap to the given
// boundaries.
func AnalyzeShardedWithBoundariesCtx(ctx context.Context, tr *Trace, boundaries []int64, shards int, stats *ShardStats) (*Analysis, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if err := validateBoundaries(tr.Horizon, boundaries); err != nil {
		return nil, err
	}
	return analyzeShardedBoundaries(ctx, tr, boundaries, shards, stats)
}

func analyzeShardedBoundaries(ctx context.Context, tr *Trace, boundaries []int64, shards int, stats *ShardStats) (*Analysis, error) {
	shards = resolveShards(shards, len(boundaries)-1)
	if shards <= 1 {
		t0 := time.Now()
		a, err := analyzeSweep(ctx, tr, boundaries)
		if err == nil && stats != nil {
			stats.Shards = []ShardStat{{Windows: len(boundaries) - 1, Events: int64(len(tr.Events)), NS: time.Since(t0).Nanoseconds()}}
		}
		return a, err
	}
	events := sortEventsByStart(tr.Events)
	return analyzeShardedIndexed(ctx, tr.NumReceivers, boundaries, memSrc(events), shards, int64(len(events)), stats)
}

package trace

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/conc"
	"repro/internal/ds"
	"repro/internal/obs"
)

// Analysis instruments (see internal/obs): total analyses run and
// total windows characterized across them.
var (
	metAnalyses = obs.NewCounter("trace.analyses")
	metWindows  = obs.NewCounter("trace.windows")
)

// Analysis is the window-based view of a trace (paper Definitions 1–2).
// All per-window quantities are measured in cycles.
type Analysis struct {
	// NumReceivers is copied from the analyzed trace.
	NumReceivers int
	// Boundaries holds the window edges: window m spans
	// [Boundaries[m], Boundaries[m+1]). len(Boundaries) == NumWindows+1.
	Boundaries []int64
	// Comm[i][m] is the number of cycles receiver i receives data in
	// window m (paper comm_{i,m}).
	Comm *ds.Int64Matrix
	// CritComm[i][m] is the same restricted to critical transfers.
	CritComm *ds.Int64Matrix
	// Overlap holds, for every unordered receiver pair (i,j), the
	// per-window overlap wo_{i,j,m}: Overlap[pairIndex(i,j)][m]. Rows
	// store only the nonzero windows (most pairs overlap rarely, if at
	// all, in realistic workloads); use the PairOverlap accessors
	// rather than indexing the matrix directly.
	Overlap *ds.SparseInt64Matrix
	// CritOverlap is the per-window overlap restricted to cycles where
	// both receivers carry critical traffic, stored sparsely like
	// Overlap.
	CritOverlap *ds.SparseInt64Matrix
	// OM is the aggregate overlap matrix om_{i,j} = Σ_m wo_{i,j,m}
	// (paper Eq. 1).
	OM *ds.SymMatrix

	// mwl memoizes MaxWindowLoad (0 = not yet computed; the result is
	// always ≥ 1). Atomic so concurrent design probes sharing one
	// analysis may race benignly: every computation yields the same
	// value.
	mwl atomic.Int64
	// fp memoizes Fingerprint (nil = not yet computed), with the same
	// benign-race contract as mwl.
	fp atomic.Pointer[Fingerprint]
}

// NumWindows returns the number of analysis windows.
func (a *Analysis) NumWindows() int { return len(a.Boundaries) - 1 }

// WindowLen returns the length in cycles of window m.
func (a *Analysis) WindowLen(m int) int64 { return a.Boundaries[m+1] - a.Boundaries[m] }

// maxWindows bounds the number of analysis windows a single Analyze
// call may produce, guarding against absurd window sizes turning into
// multi-gigabyte matrix allocations.
const maxWindows = 1 << 26

// CheckPair validates a receiver pair against the analysis shape,
// returning a descriptive error for out-of-range or diagonal indices.
// The unchecked accessors (PairIndex, PairOverlap, ...) are the hot
// path and panic on misuse; callers handling untrusted indices should
// use the *Checked variants instead.
func (a *Analysis) CheckPair(i, j int) error {
	if i < 0 || i >= a.NumReceivers || j < 0 || j >= a.NumReceivers {
		return fmt.Errorf("trace: receiver pair (%d,%d) outside range [0,%d)", i, j, a.NumReceivers)
	}
	if i == j {
		return fmt.Errorf("trace: receiver pair (%d,%d) is the diagonal (pairs are unordered distinct receivers)", i, j)
	}
	return nil
}

// checkWindow validates a window index.
func (a *Analysis) checkWindow(m int) error {
	if m < 0 || m >= a.NumWindows() {
		return fmt.Errorf("trace: window %d outside range [0,%d)", m, a.NumWindows())
	}
	return nil
}

// PairIndex maps an unordered receiver pair to its Overlap row. It
// panics with a descriptive message when either receiver is out of
// range or i == j (there is no row for the diagonal); PairOverlap and
// PairCritOverlap tolerate i == j, returning 0.
func (a *Analysis) PairIndex(i, j int) int {
	if i < 0 || j < 0 || i >= a.NumReceivers || j >= a.NumReceivers || i == j {
		panic(fmt.Sprintf("trace: no pair row for (%d,%d) with %d receivers", i, j, a.NumReceivers))
	}
	if i > j {
		i, j = j, i
	}
	return i*(2*a.NumReceivers-i-1)/2 + (j - i - 1)
}

// PairOverlap returns wo_{i,j,m}.
func (a *Analysis) PairOverlap(i, j, m int) int64 {
	if i == j {
		return 0
	}
	return a.Overlap.At(a.PairIndex(i, j), m)
}

// PairOverlapChecked is PairOverlap with explicit validation of the
// receiver pair and window index, for callers on untrusted input.
func (a *Analysis) PairOverlapChecked(i, j, m int) (int64, error) {
	if err := a.CheckPair(i, j); err != nil {
		return 0, err
	}
	if err := a.checkWindow(m); err != nil {
		return 0, err
	}
	return a.Overlap.At(a.PairIndex(i, j), m), nil
}

// PairCritOverlap returns the critical-stream overlap of (i,j) in window m.
func (a *Analysis) PairCritOverlap(i, j, m int) int64 {
	if i == j {
		return 0
	}
	return a.CritOverlap.At(a.PairIndex(i, j), m)
}

// PairCritOverlapChecked is PairCritOverlap with explicit validation.
func (a *Analysis) PairCritOverlapChecked(i, j, m int) (int64, error) {
	if err := a.CheckPair(i, j); err != nil {
		return 0, err
	}
	if err := a.checkWindow(m); err != nil {
		return 0, err
	}
	return a.CritOverlap.At(a.PairIndex(i, j), m), nil
}

// newAnalysis allocates the output tables for nT receivers and the
// given window edges.
func newAnalysis(nT int, boundaries []int64) *Analysis {
	nW := len(boundaries) - 1
	nPairs := nT * (nT - 1) / 2
	return &Analysis{
		NumReceivers: nT,
		Boundaries:   boundaries,
		Comm:         ds.NewInt64Matrix(nT, nW),
		CritComm:     ds.NewInt64Matrix(nT, nW),
		Overlap:      ds.NewSparseInt64Matrix(nPairs, nW),
		CritOverlap:  ds.NewSparseInt64Matrix(nPairs, nW),
		OM:           ds.NewSymMatrix(nT),
	}
}

// windowBoundaries builds the fixed-size window edges for a horizon:
// windows of ws cycles, the last truncated to the horizon.
func windowBoundaries(horizon, ws int64) ([]int64, error) {
	if ws <= 0 {
		return nil, errors.New("trace: window size must be positive")
	}
	// Divide before rounding: the textbook (Horizon+ws-1)/ws ceiling
	// overflows int64 for a window size near MaxInt64 and ends up
	// asking for a negative number of windows.
	numWindows64 := horizon / ws
	if horizon%ws != 0 {
		numWindows64++
	}
	if numWindows64 > maxWindows {
		return nil, fmt.Errorf("trace: window size %d yields %d windows, more than the %d supported", ws, numWindows64, maxWindows)
	}
	numWindows := int(numWindows64)
	boundaries := make([]int64, numWindows+1)
	for m := 0; m <= numWindows; m++ {
		b := int64(m) * ws
		if b > horizon {
			b = horizon
		}
		boundaries[m] = b
	}
	return boundaries, nil
}

// validateBoundaries checks explicit window edges against a horizon.
func validateBoundaries(horizon int64, boundaries []int64) error {
	if len(boundaries) < 2 {
		return errors.New("trace: need at least one window")
	}
	if boundaries[0] != 0 {
		return errors.New("trace: first boundary must be 0")
	}
	if boundaries[len(boundaries)-1] != horizon {
		return fmt.Errorf("trace: last boundary %d must equal horizon %d", boundaries[len(boundaries)-1], horizon)
	}
	for m := 1; m < len(boundaries); m++ {
		if boundaries[m] <= boundaries[m-1] {
			return errors.New("trace: boundaries must be strictly increasing")
		}
	}
	return nil
}

// Analyze divides the trace into fixed-size windows of ws cycles (the
// last window may be shorter if the horizon is not a multiple) and
// computes the per-window traffic characteristics.
func Analyze(tr *Trace, ws int64) (*Analysis, error) {
	return AnalyzeCtx(context.Background(), tr, ws)
}

// AnalyzeCtx is Analyze with cooperative cancellation. It runs the
// single-pass sweep-line kernel (see sweep.go); the result is
// bit-identical to the retained legacy pairwise algorithm
// (AnalyzeLegacyCtx), which the differential harness asserts.
func AnalyzeCtx(ctx context.Context, tr *Trace, ws int64) (*Analysis, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	boundaries, err := windowBoundaries(tr.Horizon, ws)
	if err != nil {
		return nil, err
	}
	return analyzeSweep(ctx, tr, boundaries)
}

// AnalyzeWithBoundaries performs the window analysis with explicit
// window edges, supporting the variable-window-size extension the
// paper lists as future work. Boundaries must be strictly increasing,
// start at 0 and end at the trace horizon.
func AnalyzeWithBoundaries(tr *Trace, boundaries []int64) (*Analysis, error) {
	return AnalyzeWithBoundariesCtx(context.Background(), tr, boundaries)
}

// AnalyzeWithBoundariesCtx is AnalyzeWithBoundaries with cancellation.
func AnalyzeWithBoundariesCtx(ctx context.Context, tr *Trace, boundaries []int64) (*Analysis, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if err := validateBoundaries(tr.Horizon, boundaries); err != nil {
		return nil, err
	}
	return analyzeSweep(ctx, tr, boundaries)
}

// AnalyzeLegacy is Analyze on the original pairwise-intersection
// algorithm (O(R²) allocated interval-set intersections). It is
// retained as the oracle for the differential harness and the
// before/after benchmark baseline; new code should use Analyze.
func AnalyzeLegacy(tr *Trace, ws int64) (*Analysis, error) {
	return AnalyzeLegacyCtx(context.Background(), tr, ws)
}

// AnalyzeLegacyCtx is AnalyzeLegacy with cancellation and parallel
// per-receiver/per-pair computation (sharded over GOMAXPROCS workers).
func AnalyzeLegacyCtx(ctx context.Context, tr *Trace, ws int64) (*Analysis, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	boundaries, err := windowBoundaries(tr.Horizon, ws)
	if err != nil {
		return nil, err
	}
	return analyzeLegacy(ctx, tr, boundaries)
}

// AnalyzeLegacyWithBoundariesCtx is the explicit-boundary form of the
// legacy kernel.
func AnalyzeLegacyWithBoundariesCtx(ctx context.Context, tr *Trace, boundaries []int64) (*Analysis, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	if err := validateBoundaries(tr.Horizon, boundaries); err != nil {
		return nil, err
	}
	return analyzeLegacy(ctx, tr, boundaries)
}

// analyzeLegacy computes the analysis by intersecting every receiver
// pair's interval sets — the original algorithm, kept bit-compatible
// with the sweep kernel. The per-window computation is sharded by
// receiver: shard i fills Comm row i and the Overlap/CritOverlap/OM
// entries of every pair (i, j) with j > i. Shards only read the shared
// interval sets and write disjoint matrix slots, so the parallel
// result is bit-identical to the serial one.
func analyzeLegacy(ctx context.Context, tr *Trace, boundaries []int64) (*Analysis, error) {
	nT := tr.NumReceivers
	nW := len(boundaries) - 1

	ctx, span := obs.Start(ctx, "trace.analyze")
	defer span.End()
	span.SetStr("kernel", "legacy")
	span.SetInt("receivers", int64(nT))
	span.SetInt("windows", int64(nW))
	span.SetInt("events", int64(len(tr.Events)))
	metAnalyses.Inc()
	metWindows.Add(int64(nW))

	a := newAnalysis(nT, boundaries)
	busy, critical := tr.busyByReceiver()

	// The sparse overlap rows are not safe for concurrent appends to
	// *different* rows (they share the build arena), so the pair rows
	// are buffered densely per shard and appended serially after the
	// parallel phase.
	overlapRows := make([][]int64, a.Overlap.Rows)
	critRows := make([][]int64, a.Overlap.Rows)

	err := conc.ForEach(ctx, nT, 0, func(ctx context.Context, i int) error {
		for m := 0; m < nW; m++ {
			a.Comm.Set(i, m, busy[i].ClipLen(boundaries[m], boundaries[m+1]))
			a.CritComm.Set(i, m, critical[i].ClipLen(boundaries[m], boundaries[m+1]))
		}
		for j := i + 1; j < nT; j++ {
			inter := busy[i].Intersection(busy[j])
			critInter := critical[i].Intersection(critical[j])
			row := a.PairIndex(i, j)
			ov := make([]int64, nW)
			cv := make([]int64, nW)
			var total int64
			for m := 0; m < nW; m++ {
				ov[m] = inter.ClipLen(boundaries[m], boundaries[m+1])
				total += ov[m]
				cv[m] = critInter.ClipLen(boundaries[m], boundaries[m+1])
			}
			overlapRows[row] = ov
			critRows[row] = cv
			if total > 0 {
				a.OM.Set(i, j, total)
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("trace: analysis canceled: %w", err)
	}
	for row := range overlapRows {
		for m, v := range overlapRows[row] {
			a.Overlap.Append(row, m, v)
		}
		for m, v := range critRows[row] {
			a.CritOverlap.Append(row, m, v)
		}
	}
	a.Overlap.Compact()
	a.CritOverlap.Compact()
	return a, nil
}

// MaxWindowLoad returns, over all windows, the maximum of the summed
// receiver loads divided into the window length — i.e. the peak number
// of fully-loaded buses any single window demands. It is a lower bound
// on the feasible bus count (used to seed the binary search, which
// calls it repeatedly), so the result is computed once — in a single
// pass over the dense Comm rows — and memoized.
func (a *Analysis) MaxWindowLoad() int {
	if v := a.mwl.Load(); v > 0 {
		return int(v)
	}
	nW := a.NumWindows()
	sums := make([]int64, nW)
	for i := 0; i < a.NumReceivers; i++ {
		row := a.Comm.Row(i)
		for m, v := range row {
			sums[m] += v
		}
	}
	best := 1
	for m, sum := range sums {
		wl := a.WindowLen(m)
		if need := int((sum + wl - 1) / wl); need > best {
			best = need
		}
	}
	a.mwl.Store(int64(best))
	return best
}

// SingleWindow collapses the analysis to one window spanning the whole
// trace. This reproduces the "average communication traffic" design
// point of prior work that the paper compares against (Section 2).
func SingleWindow(tr *Trace) (*Analysis, error) {
	return AnalyzeWithBoundaries(tr, []int64{0, tr.Horizon})
}

// Package trace defines the functional traffic trace produced by
// cycle-accurate simulation and the window-based analysis the design
// methodology consumes (paper Sections 3.2 and 5).
//
// A trace records, for one direction of the interconnect (either
// initiator→target or target→initiator), every bus transfer as a cycle
// interval attributed to the *receiver* of the data. The analysis
// divides the simulation into fixed-size windows and derives, per
// window, the communication load of each receiver (comm[i][m]), the
// pairwise temporal overlap between receiver streams (wo[i][j][m]),
// and the aggregate overlap matrix OM (paper Eq. 1).
package trace

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ds"
)

// Event is one bus transfer: Len consecutive data cycles starting at
// Start, flowing from Sender to Receiver. Critical marks transfers
// belonging to a real-time stream.
type Event struct {
	Start    int64
	Len      int64
	Sender   int
	Receiver int
	Critical bool
}

// End returns the first cycle after the transfer.
func (e Event) End() int64 { return e.Start + e.Len }

// Trace is the functional traffic of one interconnect direction.
type Trace struct {
	// NumReceivers is the number of cores receiving data in this
	// direction (targets for the initiator→target crossbar, initiators
	// for the target→initiator crossbar).
	NumReceivers int
	// NumSenders is the number of cores driving data in this direction.
	NumSenders int
	// Horizon is the total simulated length in cycles. Events must lie
	// inside [0, Horizon).
	Horizon int64
	// Events holds the transfers, in no particular order.
	Events []Event
}

// Validate checks structural invariants of the trace.
func (tr *Trace) Validate() error {
	if tr.NumReceivers <= 0 {
		return errors.New("trace: NumReceivers must be positive")
	}
	if tr.NumSenders <= 0 {
		return errors.New("trace: NumSenders must be positive")
	}
	if tr.Horizon <= 0 {
		return errors.New("trace: Horizon must be positive")
	}
	for i, e := range tr.Events {
		if e.Receiver < 0 || e.Receiver >= tr.NumReceivers {
			return fmt.Errorf("trace: event %d receiver %d out of range [0,%d)", i, e.Receiver, tr.NumReceivers)
		}
		if e.Sender < 0 || e.Sender >= tr.NumSenders {
			return fmt.Errorf("trace: event %d sender %d out of range [0,%d)", i, e.Sender, tr.NumSenders)
		}
		if e.Len <= 0 {
			return fmt.Errorf("trace: event %d has non-positive length %d", i, e.Len)
		}
		// Bound Len against the remaining horizon instead of comparing
		// e.End() to it: Start+Len can overflow int64 (wrapping End()
		// negative), and a wrapped End passes an `End > Horizon` check.
		if e.Start < 0 || e.Start >= tr.Horizon || e.Len > tr.Horizon-e.Start {
			return fmt.Errorf("trace: event %d [%d,+%d) outside horizon %d", i, e.Start, e.Len, tr.Horizon)
		}
	}
	return nil
}

// busyByReceiver returns, for each receiver, the set of cycles in which
// it receives data, plus the same restricted to critical transfers.
// On a full crossbar a receiver's transfers are serialized on its own
// bus, so the per-receiver events never self-overlap; the interval-set
// merge makes the computation robust anyway.
func (tr *Trace) busyByReceiver() (busy, critical []*ds.IntervalSet) {
	busy = make([]*ds.IntervalSet, tr.NumReceivers)
	critical = make([]*ds.IntervalSet, tr.NumReceivers)
	for i := range busy {
		busy[i] = ds.NewIntervalSet()
		critical[i] = ds.NewIntervalSet()
	}
	events := make([]Event, len(tr.Events))
	copy(events, tr.Events)
	sort.Slice(events, func(a, b int) bool {
		if events[a].Start != events[b].Start {
			return events[a].Start < events[b].Start
		}
		return events[a].Receiver < events[b].Receiver
	})
	for _, e := range events {
		iv := ds.Interval{Start: e.Start, End: e.End()}
		busy[e.Receiver].Add(iv)
		if e.Critical {
			critical[e.Receiver].Add(iv)
		}
	}
	return busy, critical
}

// TotalCycles returns the summed transfer cycles per receiver over the
// whole trace (the "average traffic" view used by baseline designers).
func (tr *Trace) TotalCycles() []int64 {
	total := make([]int64, tr.NumReceivers)
	for _, e := range tr.Events {
		total[e.Receiver] += e.Len
	}
	return total
}

// BurstStats describes the contiguous-burst structure of the trace:
// a burst is a maximal run of back-to-back busy cycles of one receiver
// (paper Section 7.2 sizes the analysis window against this).
type BurstStats struct {
	Count   int
	MeanLen float64
	MaxLen  int64
}

// Bursts computes burst statistics over all receivers.
func (tr *Trace) Bursts() BurstStats {
	busy, _ := tr.busyByReceiver()
	var st BurstStats
	for _, set := range busy {
		for _, iv := range set.Intervals() {
			st.Count++
			l := iv.Len()
			st.MeanLen += float64(l)
			if l > st.MaxLen {
				st.MaxLen = l
			}
		}
	}
	if st.Count > 0 {
		st.MeanLen /= float64(st.Count)
	}
	return st
}

package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Binary trace format:
//
//	magic   [4]byte "STBT"
//	version uint32  (1)
//	numReceivers, numSenders uint32
//	horizon uint64
//	numEvents uint64
//	events: start uint64, len uint64, sender uint32, receiver uint32, flags uint8
//
// All integers little-endian. The JSON form mirrors the Trace struct
// and is intended for human inspection and tooling interchange.

var binaryMagic = [4]byte{'S', 'T', 'B', 'T'}

const binaryVersion = 1

// WriteBinary serializes the trace in the compact binary format.
func WriteBinary(w io.Writer, tr *Trace) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	hdr := []any{
		uint32(binaryVersion),
		uint32(tr.NumReceivers),
		uint32(tr.NumSenders),
		uint64(tr.Horizon),
		uint64(len(tr.Events)),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	var buf [25]byte
	for _, e := range tr.Events {
		binary.LittleEndian.PutUint64(buf[0:], uint64(e.Start))
		binary.LittleEndian.PutUint64(buf[8:], uint64(e.Len))
		binary.LittleEndian.PutUint32(buf[16:], uint32(e.Sender))
		binary.LittleEndian.PutUint32(buf[20:], uint32(e.Receiver))
		buf[24] = 0
		if e.Critical {
			buf[24] = 1
		}
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// binaryEventSize is the wire size of one event record.
const binaryEventSize = 25

// binHeader is the parsed fixed-size header of a binary trace.
type binHeader struct {
	version      uint32
	numReceivers uint32
	numSenders   uint32
	horizon      int64
	numEvents    uint64
}

// readBinaryHeader parses and sanity-checks the magic and header of a
// binary trace stream. It is shared by ReadBinary and the streaming
// AnalyzeReader so both enforce the same bounds against corrupt or
// hostile headers.
func readBinaryHeader(br *bufio.Reader) (binHeader, error) {
	var hdr binHeader
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return hdr, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return hdr, errors.New("trace: bad magic, not a binary trace file")
	}
	var horizon uint64
	for _, p := range []any{&hdr.version, &hdr.numReceivers, &hdr.numSenders, &horizon, &hdr.numEvents} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return hdr, fmt.Errorf("trace: reading header: %w", err)
		}
	}
	if hdr.version != binaryVersion && hdr.version != binaryVersionV2 {
		return hdr, fmt.Errorf("trace: unsupported version %d", hdr.version)
	}
	const maxCores = 1 << 20 // far beyond the STbus limit of 32
	if hdr.numReceivers > maxCores || hdr.numSenders > maxCores {
		return hdr, fmt.Errorf("trace: implausible core counts (%d receivers, %d senders)", hdr.numReceivers, hdr.numSenders)
	}
	hdr.horizon = int64(horizon)
	return hdr, nil
}

// Header describes a binary trace file (either container version)
// without decoding its events — what a server needs to validate and
// route a large upload before committing to read it all.
type Header struct {
	Version      int
	NumReceivers int
	NumSenders   int
	Horizon      int64
	NumEvents    uint64
}

// ReadHeader parses and sanity-checks the fixed 32-byte header at the
// start of r.
func ReadHeader(r io.Reader) (Header, error) {
	hdr, err := readBinaryHeader(bufio.NewReaderSize(r, 64))
	if err != nil {
		return Header{}, err
	}
	return Header{
		Version:      int(hdr.version),
		NumReceivers: int(hdr.numReceivers),
		NumSenders:   int(hdr.numSenders),
		Horizon:      hdr.horizon,
		NumEvents:    hdr.numEvents,
	}, nil
}

// ReadBinary parses a trace written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	hdr, err := readBinaryHeader(br)
	if err != nil {
		return nil, err
	}
	const maxEvents = 1 << 28 // sanity bound against corrupt headers
	if hdr.numEvents > maxEvents {
		return nil, fmt.Errorf("trace: implausible event count %d", hdr.numEvents)
	}
	tr := &Trace{
		NumReceivers: int(hdr.numReceivers),
		NumSenders:   int(hdr.numSenders),
		Horizon:      hdr.horizon,
		// Grow the slice as events are read instead of trusting the
		// header: a corrupt count below maxEvents would otherwise
		// commit gigabytes before the first short read is noticed.
		Events: make([]Event, 0, min(hdr.numEvents, 1<<16)),
	}
	if hdr.version == binaryVersionV2 {
		if err := readV2Events(br, hdr, tr); err != nil {
			return nil, err
		}
		if err := tr.Validate(); err != nil {
			return nil, err
		}
		return tr, nil
	}
	var buf [binaryEventSize]byte
	for i := uint64(0); i < hdr.numEvents; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("trace: reading event %d: %w", i, err)
		}
		tr.Events = append(tr.Events, decodeBinaryEvent(&buf))
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// jsonTrace is the JSON wire form of a Trace.
type jsonTrace struct {
	NumReceivers int         `json:"num_receivers"`
	NumSenders   int         `json:"num_senders"`
	Horizon      int64       `json:"horizon"`
	Events       []jsonEvent `json:"events"`
}

type jsonEvent struct {
	Start    int64 `json:"start"`
	Len      int64 `json:"len"`
	Sender   int   `json:"sender"`
	Receiver int   `json:"receiver"`
	Critical bool  `json:"critical,omitempty"`
}

// WriteJSON serializes the trace as JSON.
func WriteJSON(w io.Writer, tr *Trace) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	jt := jsonTrace{
		NumReceivers: tr.NumReceivers,
		NumSenders:   tr.NumSenders,
		Horizon:      tr.Horizon,
		Events:       make([]jsonEvent, len(tr.Events)),
	}
	for i, e := range tr.Events {
		jt.Events[i] = jsonEvent(e)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&jt)
}

// ReadJSON parses a trace written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	var jt jsonTrace
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, fmt.Errorf("trace: decoding JSON: %w", err)
	}
	tr := &Trace{
		NumReceivers: jt.NumReceivers,
		NumSenders:   jt.NumSenders,
		Horizon:      jt.Horizon,
		Events:       make([]Event, len(jt.Events)),
	}
	for i, e := range jt.Events {
		tr.Events[i] = Event(e)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

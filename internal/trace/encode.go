package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Binary trace format:
//
//	magic   [4]byte "STBT"
//	version uint32  (1)
//	numReceivers, numSenders uint32
//	horizon uint64
//	numEvents uint64
//	events: start uint64, len uint64, sender uint32, receiver uint32, flags uint8
//
// All integers little-endian. The JSON form mirrors the Trace struct
// and is intended for human inspection and tooling interchange.

var binaryMagic = [4]byte{'S', 'T', 'B', 'T'}

const binaryVersion = 1

// WriteBinary serializes the trace in the compact binary format.
func WriteBinary(w io.Writer, tr *Trace) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	hdr := []any{
		uint32(binaryVersion),
		uint32(tr.NumReceivers),
		uint32(tr.NumSenders),
		uint64(tr.Horizon),
		uint64(len(tr.Events)),
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	var buf [25]byte
	for _, e := range tr.Events {
		binary.LittleEndian.PutUint64(buf[0:], uint64(e.Start))
		binary.LittleEndian.PutUint64(buf[8:], uint64(e.Len))
		binary.LittleEndian.PutUint32(buf[16:], uint32(e.Sender))
		binary.LittleEndian.PutUint32(buf[20:], uint32(e.Receiver))
		buf[24] = 0
		if e.Critical {
			buf[24] = 1
		}
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a trace written by WriteBinary.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, errors.New("trace: bad magic, not a binary trace file")
	}
	var version, numReceivers, numSenders uint32
	var horizon, numEvents uint64
	for _, p := range []any{&version, &numReceivers, &numSenders, &horizon, &numEvents} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, fmt.Errorf("trace: reading header: %w", err)
		}
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	const maxEvents = 1 << 28 // sanity bound against corrupt headers
	if numEvents > maxEvents {
		return nil, fmt.Errorf("trace: implausible event count %d", numEvents)
	}
	const maxCores = 1 << 20 // far beyond the STbus limit of 32
	if numReceivers > maxCores || numSenders > maxCores {
		return nil, fmt.Errorf("trace: implausible core counts (%d receivers, %d senders)", numReceivers, numSenders)
	}
	tr := &Trace{
		NumReceivers: int(numReceivers),
		NumSenders:   int(numSenders),
		Horizon:      int64(horizon),
		// Grow the slice as events are read instead of trusting the
		// header: a corrupt count below maxEvents would otherwise
		// commit gigabytes before the first short read is noticed.
		Events: make([]Event, 0, min(numEvents, 1<<16)),
	}
	var buf [25]byte
	for i := uint64(0); i < numEvents; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("trace: reading event %d: %w", i, err)
		}
		tr.Events = append(tr.Events, Event{
			Start:    int64(binary.LittleEndian.Uint64(buf[0:])),
			Len:      int64(binary.LittleEndian.Uint64(buf[8:])),
			Sender:   int(binary.LittleEndian.Uint32(buf[16:])),
			Receiver: int(binary.LittleEndian.Uint32(buf[20:])),
			Critical: buf[24] != 0,
		})
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// jsonTrace is the JSON wire form of a Trace.
type jsonTrace struct {
	NumReceivers int         `json:"num_receivers"`
	NumSenders   int         `json:"num_senders"`
	Horizon      int64       `json:"horizon"`
	Events       []jsonEvent `json:"events"`
}

type jsonEvent struct {
	Start    int64 `json:"start"`
	Len      int64 `json:"len"`
	Sender   int   `json:"sender"`
	Receiver int   `json:"receiver"`
	Critical bool  `json:"critical,omitempty"`
}

// WriteJSON serializes the trace as JSON.
func WriteJSON(w io.Writer, tr *Trace) error {
	if err := tr.Validate(); err != nil {
		return err
	}
	jt := jsonTrace{
		NumReceivers: tr.NumReceivers,
		NumSenders:   tr.NumSenders,
		Horizon:      tr.Horizon,
		Events:       make([]jsonEvent, len(tr.Events)),
	}
	for i, e := range tr.Events {
		jt.Events[i] = jsonEvent(e)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&jt)
}

// ReadJSON parses a trace written by WriteJSON.
func ReadJSON(r io.Reader) (*Trace, error) {
	var jt jsonTrace
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, fmt.Errorf("trace: decoding JSON: %w", err)
	}
	tr := &Trace{
		NumReceivers: jt.NumReceivers,
		NumSenders:   jt.NumSenders,
		Horizon:      jt.Horizon,
		Events:       make([]Event, len(jt.Events)),
	}
	for i, e := range jt.Events {
		tr.Events[i] = Event(e)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

package trace

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"testing"
)

// decodeFuzzTrace builds a trace from raw fuzz bytes. Event fields are
// taken in one of two forms, selected per event by a flag bit: reduced
// modulo the horizon (so mutations usually stay structurally valid and
// reach the analysis code) or raw int64 (so mutations can attack
// Validate itself with extreme values — that form found the
// Start+Len overflow). Callers must still run Validate.
func decodeFuzzTrace(data []byte) *Trace {
	if len(data) < 4 {
		return nil
	}
	tr := &Trace{
		NumReceivers: 1 + int(data[0]%12),
		NumSenders:   1 + int(data[1]%4),
		Horizon:      1 + int64(binary.LittleEndian.Uint16(data[2:4]))%4096,
	}
	data = data[4:]
	const evBytes = 18
	for len(data) >= evBytes && len(tr.Events) < 64 {
		start := int64(binary.LittleEndian.Uint64(data[0:8]))
		length := int64(binary.LittleEndian.Uint64(data[8:16]))
		raw := data[16]&2 != 0
		if !raw {
			start = ((start % tr.Horizon) + tr.Horizon) % tr.Horizon
			rem := tr.Horizon - start // ≥ 1
			length = 1 + ((length%rem)+rem)%rem
		}
		tr.Events = append(tr.Events, Event{
			Start:    start,
			Len:      length,
			Sender:   int(data[17]) % tr.NumSenders,
			Receiver: int(data[16]>>2) % tr.NumReceivers,
			Critical: data[16]&1 != 0,
		})
		data = data[evBytes:]
	}
	return tr
}

// FuzzAnalyze feeds arbitrary traces and window sizes through the
// window analysis and cross-checks the result against a brute-force
// per-cycle oracle: every Comm entry, every pairwise overlap and the
// aggregate OM must match counts over an explicit busy-cycle bitmap.
func FuzzAnalyze(f *testing.F) {
	f.Add([]byte{3, 1, 40, 0}, int64(10))
	f.Add(append([]byte{2, 1, 64, 0},
		0, 0, 0, 0, 0, 0, 0, 0, 8, 0, 0, 0, 0, 0, 0, 0, 4, 0), int64(7))
	// Window size far beyond the horizon (single short window).
	f.Add([]byte{5, 2, 100, 0}, int64(math.MaxInt64))
	// Regression: a raw-form event whose Start+Len overflows int64 —
	// before the Validate fix it passed validation and corrupted the
	// interval sets.
	overflow := []byte{2, 1, 64, 0}
	var ev [18]byte
	binary.LittleEndian.PutUint64(ev[0:8], 5)
	binary.LittleEndian.PutUint64(ev[8:16], uint64(math.MaxInt64-2))
	ev[16] = 2 // raw form
	f.Add(append(overflow, ev[:]...), int64(16))

	f.Fuzz(func(t *testing.T, data []byte, ws int64) {
		tr := decodeFuzzTrace(data)
		if tr == nil {
			return
		}
		if tr.Validate() != nil {
			// Validate rejected it; the oracle below would be
			// meaningless. Reaching here with extreme raw fields is
			// itself the test that Validate cannot be bypassed.
			return
		}
		a, err := Analyze(tr, ws)
		if err != nil {
			if ws <= 0 {
				return // the documented rejection
			}
			t.Fatalf("Analyze rejected a valid trace: %v", err)
		}

		// Structural window invariants.
		nW := a.NumWindows()
		if a.Boundaries[0] != 0 || a.Boundaries[nW] != tr.Horizon {
			t.Fatalf("boundaries %v do not span [0,%d]", a.Boundaries, tr.Horizon)
		}
		for m := 0; m < nW; m++ {
			if a.WindowLen(m) <= 0 || (ws > 0 && a.WindowLen(m) > ws) {
				t.Fatalf("window %d has length %d (ws=%d)", m, a.WindowLen(m), ws)
			}
		}

		// Brute-force oracle: explicit busy bitmaps per receiver.
		busy := make([][]bool, tr.NumReceivers)
		for i := range busy {
			busy[i] = make([]bool, tr.Horizon)
		}
		for _, e := range tr.Events {
			for c := e.Start; c < e.End(); c++ {
				busy[e.Receiver][c] = true
			}
		}
		countIn := func(marks []bool, lo, hi int64) int64 {
			var n int64
			for c := lo; c < hi; c++ {
				if marks[c] {
					n++
				}
			}
			return n
		}
		for i := 0; i < tr.NumReceivers; i++ {
			for m := 0; m < nW; m++ {
				want := countIn(busy[i], a.Boundaries[m], a.Boundaries[m+1])
				if got := a.Comm.At(i, m); got != want {
					t.Fatalf("Comm(%d,%d) = %d, oracle %d", i, m, got, want)
				}
			}
			for j := i + 1; j < tr.NumReceivers; j++ {
				both := make([]bool, tr.Horizon)
				for c := int64(0); c < tr.Horizon; c++ {
					both[c] = busy[i][c] && busy[j][c]
				}
				var total int64
				for m := 0; m < nW; m++ {
					want := countIn(both, a.Boundaries[m], a.Boundaries[m+1])
					got, err := a.PairOverlapChecked(i, j, m)
					if err != nil {
						t.Fatalf("PairOverlapChecked(%d,%d,%d): %v", i, j, m, err)
					}
					if got != want {
						t.Fatalf("PairOverlap(%d,%d,%d) = %d, oracle %d", i, j, m, got, want)
					}
					total += want
				}
				if got := a.OM.At(i, j); got != total {
					t.Fatalf("OM(%d,%d) = %d, oracle %d", i, j, got, total)
				}
			}
		}
	})
}

// FuzzTraceEncode hammers the binary decoder with arbitrary bytes and
// requires that anything it accepts survives a binary and a JSON
// round-trip bit-identically.
func FuzzTraceEncode(f *testing.F) {
	// A small valid trace, properly encoded.
	valid := &Trace{NumReceivers: 2, NumSenders: 1, Horizon: 32, Events: []Event{
		{Start: 0, Len: 4, Sender: 0, Receiver: 0, Critical: true},
		{Start: 8, Len: 2, Sender: 0, Receiver: 1},
	}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, valid); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	// Regression: header declaring ~2^28 events with no payload — the
	// decoder used to preallocate the whole slice before reading.
	hdr := append([]byte("STBT"), make([]byte, 28)...)
	binary.LittleEndian.PutUint32(hdr[4:], 1)      // version
	binary.LittleEndian.PutUint32(hdr[8:], 2)      // receivers
	binary.LittleEndian.PutUint32(hdr[12:], 1)     // senders
	binary.LittleEndian.PutUint64(hdr[16:], 32)    // horizon
	binary.LittleEndian.PutUint64(hdr[24:], 1<<27) // events
	f.Add(hdr)
	f.Add([]byte("STBT"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("ReadBinary returned an invalid trace: %v", err)
		}
		var bin bytes.Buffer
		if err := WriteBinary(&bin, tr); err != nil {
			t.Fatalf("WriteBinary: %v", err)
		}
		back, err := ReadBinary(&bin)
		if err != nil {
			t.Fatalf("binary round-trip decode: %v", err)
		}
		if !tracesEqual(tr, back) {
			t.Fatalf("binary round-trip changed the trace: %+v vs %+v", tr, back)
		}
		var js bytes.Buffer
		if err := WriteJSON(&js, tr); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		back, err = ReadJSON(&js)
		if err != nil {
			t.Fatalf("JSON round-trip decode: %v", err)
		}
		if !tracesEqual(tr, back) {
			t.Fatalf("JSON round-trip changed the trace: %+v vs %+v", tr, back)
		}
	})
}

// tracesEqual compares traces treating nil and empty event slices as
// equal (the encodings do not distinguish them).
func tracesEqual(a, b *Trace) bool {
	if a.NumReceivers != b.NumReceivers || a.NumSenders != b.NumSenders || a.Horizon != b.Horizon {
		return false
	}
	if len(a.Events) != len(b.Events) {
		return false
	}
	return len(a.Events) == 0 || reflect.DeepEqual(a.Events, b.Events)
}

package trace

import (
	"bytes"
	"context"
	"encoding/binary"
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// decodeFuzzTrace builds a trace from raw fuzz bytes. The receiver
// count ranges up to 96 so fuzz inputs cross the sweep kernel's 64-bit
// active-bitset word boundary. Event fields are taken in one of two
// forms, selected per event by a flag bit: reduced modulo the horizon
// (so mutations usually stay structurally valid and reach the analysis
// code) or raw int64 (so mutations can attack Validate itself with
// extreme values — that form found the Start+Len overflow). Callers
// must still run Validate.
func decodeFuzzTrace(data []byte) *Trace {
	if len(data) < 4 {
		return nil
	}
	tr := &Trace{
		NumReceivers: 1 + int(data[0]%96),
		NumSenders:   1 + int(data[1]%4),
		Horizon:      1 + int64(binary.LittleEndian.Uint16(data[2:4]))%4096,
	}
	data = data[4:]
	const evBytes = 19
	for len(data) >= evBytes && len(tr.Events) < 64 {
		start := int64(binary.LittleEndian.Uint64(data[0:8]))
		length := int64(binary.LittleEndian.Uint64(data[8:16]))
		raw := data[16]&2 != 0
		if !raw {
			start = ((start % tr.Horizon) + tr.Horizon) % tr.Horizon
			rem := tr.Horizon - start // ≥ 1
			length = 1 + ((length%rem)+rem)%rem
		}
		tr.Events = append(tr.Events, Event{
			Start:    start,
			Len:      length,
			Sender:   int(data[17]) % tr.NumSenders,
			Receiver: int(data[18]) % tr.NumReceivers,
			Critical: data[16]&1 != 0,
		})
		data = data[evBytes:]
	}
	return tr
}

// fuzzEvent encodes one decodeFuzzTrace event record in the raw form
// (start and length taken verbatim), used to build precise seeds.
func fuzzEvent(start, length int64, recv, sender byte, critical bool) []byte {
	var ev [19]byte
	binary.LittleEndian.PutUint64(ev[0:8], uint64(start))
	binary.LittleEndian.PutUint64(ev[8:16], uint64(length))
	ev[16] = 2 // raw form
	if critical {
		ev[16] |= 1
	}
	ev[17] = sender
	ev[18] = recv
	return ev[:]
}

// FuzzAnalyze feeds arbitrary traces and window sizes through the
// window analysis and cross-checks the result three ways: against a
// brute-force per-cycle oracle over the receivers that actually carry
// traffic (every Comm entry, pairwise overlap and OM entry must match
// counts over an explicit busy-cycle bitmap), against the retained
// legacy pairwise kernel, and against the streaming reader fed the
// binary encoding of the same trace — all three must be bit-identical.
func FuzzAnalyze(f *testing.F) {
	f.Add([]byte{3, 1, 40, 0}, int64(10))
	f.Add(append([]byte{2, 1, 64, 0},
		fuzzEvent(0, 8, 0, 0, false)...), int64(7))
	// Window size far beyond the horizon (single short window).
	f.Add([]byte{5, 2, 100, 0}, int64(math.MaxInt64))
	// Regression: a raw-form event whose Start+Len overflows int64 —
	// before the Validate fix it passed validation and corrupted the
	// interval sets.
	f.Add(append([]byte{2, 1, 64, 0},
		fuzzEvent(5, math.MaxInt64-2, 0, 0, false)...), int64(16))
	// Coincident endpoints: two receivers covering the same interval and
	// a third starting exactly where they end, which is also a window
	// boundary — the sweep's deactivation order is arbitrary among them.
	coincident := []byte{2, 0, 64, 0}
	coincident = append(coincident, fuzzEvent(8, 8, 0, 0, true)...)
	coincident = append(coincident, fuzzEvent(8, 8, 1, 0, false)...)
	coincident = append(coincident, fuzzEvent(16, 8, 2, 0, true)...)
	f.Add(coincident, int64(8))
	// Coverage ends flush with window boundaries (no partial windows).
	aligned := []byte{2, 0, 100, 0}
	aligned = append(aligned, fuzzEvent(10, 10, 0, 0, false)...)
	aligned = append(aligned, fuzzEvent(20, 10, 1, 0, true)...)
	aligned = append(aligned, fuzzEvent(10, 20, 2, 0, false)...)
	f.Add(aligned, int64(10))
	// All receivers simultaneously active (maximum pair fan-out).
	allActive := []byte{7, 0, 64, 0}
	for r := byte(0); r < 8; r++ {
		allActive = append(allActive, fuzzEvent(int64(r), 32, r, 0, r%2 == 0)...)
	}
	f.Add(allActive, int64(16))
	// Receivers above 64: the active bitset spans two words.
	wide := []byte{95, 0, 200, 0}
	wide = append(wide, fuzzEvent(0, 40, 70, 0, true)...)
	wide = append(wide, fuzzEvent(10, 40, 90, 0, false)...)
	wide = append(wide, fuzzEvent(20, 40, 1, 0, true)...)
	f.Add(wide, int64(25))

	f.Fuzz(func(t *testing.T, data []byte, ws int64) {
		tr := decodeFuzzTrace(data)
		if tr == nil {
			return
		}
		if tr.Validate() != nil {
			// Validate rejected it; the oracle below would be
			// meaningless. Reaching here with extreme raw fields is
			// itself the test that Validate cannot be bypassed.
			return
		}
		a, err := Analyze(tr, ws)
		if err != nil {
			if ws <= 0 {
				return // the documented rejection
			}
			t.Fatalf("Analyze rejected a valid trace: %v", err)
		}

		// Structural window invariants.
		nW := a.NumWindows()
		if a.Boundaries[0] != 0 || a.Boundaries[nW] != tr.Horizon {
			t.Fatalf("boundaries %v do not span [0,%d]", a.Boundaries, tr.Horizon)
		}
		for m := 0; m < nW; m++ {
			if a.WindowLen(m) <= 0 || (ws > 0 && a.WindowLen(m) > ws) {
				t.Fatalf("window %d has length %d (ws=%d)", m, a.WindowLen(m), ws)
			}
		}

		// Cross-kernel equivalence. The legacy kernel buffers every pair
		// row densely, so it is gated on the table area staying sane;
		// the streaming reader costs the same as the sweep and always
		// runs (on a start-sorted copy — order must not matter).
		nPairs := tr.NumReceivers * (tr.NumReceivers - 1) / 2
		if nPairs*nW <= 1<<22 {
			legacy, err := AnalyzeLegacy(tr, ws)
			if err != nil {
				t.Fatalf("AnalyzeLegacy rejected a valid trace: %v", err)
			}
			if diffs := DiffAnalyses(a, legacy); len(diffs) > 0 {
				t.Fatalf("sweep vs legacy:\n%s", strings.Join(diffs, "\n"))
			}
		}
		sorted := sortedCopy(tr)
		streamed, err := AnalyzeReader(context.Background(), bytes.NewReader(encodeTrace(t, sorted)), ws)
		if err != nil {
			t.Fatalf("AnalyzeReader rejected a valid stream: %v", err)
		}
		if diffs := DiffAnalyses(a, streamed); len(diffs) > 0 {
			t.Fatalf("sweep vs stream:\n%s", strings.Join(diffs, "\n"))
		}

		// Brute-force oracle: explicit busy bitmaps, restricted to
		// receivers that appear in events (idle receivers cannot be
		// credited — the cross-kernel check above covers their rows).
		activeSet := map[int]bool{}
		for _, e := range tr.Events {
			activeSet[e.Receiver] = true
		}
		active := make([]int, 0, len(activeSet))
		for r := range activeSet {
			active = append(active, r)
		}
		sort.Ints(active)
		busy := make(map[int][]bool, len(active))
		for _, r := range active {
			busy[r] = make([]bool, tr.Horizon)
		}
		for _, e := range tr.Events {
			for c := e.Start; c < e.End(); c++ {
				busy[e.Receiver][c] = true
			}
		}
		countIn := func(marks []bool, lo, hi int64) int64 {
			var n int64
			for c := lo; c < hi; c++ {
				if marks[c] {
					n++
				}
			}
			return n
		}
		for ii, i := range active {
			for m := 0; m < nW; m++ {
				want := countIn(busy[i], a.Boundaries[m], a.Boundaries[m+1])
				if got := a.Comm.At(i, m); got != want {
					t.Fatalf("Comm(%d,%d) = %d, oracle %d", i, m, got, want)
				}
			}
			for _, j := range active[ii+1:] {
				both := make([]bool, tr.Horizon)
				for c := int64(0); c < tr.Horizon; c++ {
					both[c] = busy[i][c] && busy[j][c]
				}
				var total int64
				for m := 0; m < nW; m++ {
					want := countIn(both, a.Boundaries[m], a.Boundaries[m+1])
					got, err := a.PairOverlapChecked(i, j, m)
					if err != nil {
						t.Fatalf("PairOverlapChecked(%d,%d,%d): %v", i, j, m, err)
					}
					if got != want {
						t.Fatalf("PairOverlap(%d,%d,%d) = %d, oracle %d", i, j, m, got, want)
					}
					total += want
				}
				if got := a.OM.At(i, j); got != total {
					t.Fatalf("OM(%d,%d) = %d, oracle %d", i, j, got, total)
				}
			}
		}
	})
}

// FuzzShardedAnalyze cross-checks the sharded drivers against the
// single-pass sweep on arbitrary traces: the in-memory sharded driver,
// the byte-backed sharded driver over a v2 re-encode, and the v2
// streaming reader must all be bit-identical to Analyze at an
// arbitrary shard count — the fuzz form of the shard-boundary suite.
func FuzzShardedAnalyze(f *testing.F) {
	f.Add([]byte{3, 1, 40, 0}, int64(10), int64(2))
	// A grant spanning the whole horizon straddles every cut.
	straddle := append([]byte{2, 1, 200, 0}, fuzzEvent(0, 200, 0, 0, true)...)
	straddle = append(straddle, fuzzEvent(50, 100, 1, 0, false)...)
	f.Add(straddle, int64(25), int64(7))
	// Everything clustered in one window: most shards are empty.
	cluster := []byte{4, 1, 255, 15}
	for r := byte(0); r < 4; r++ {
		cluster = append(cluster, fuzzEvent(int64(r), 6, r, 0, r%2 == 0)...)
	}
	f.Add(cluster, int64(16), int64(8))
	// More shards than windows.
	f.Add(append([]byte{2, 1, 64, 0}, fuzzEvent(0, 8, 0, 0, false)...), int64(math.MaxInt64), int64(6))
	// Auto shard count, wide bitset.
	wide := []byte{95, 0, 200, 0}
	wide = append(wide, fuzzEvent(0, 150, 70, 0, true)...)
	wide = append(wide, fuzzEvent(10, 120, 90, 0, false)...)
	f.Add(wide, int64(25), int64(0))

	f.Fuzz(func(t *testing.T, data []byte, ws int64, shards int64) {
		tr := decodeFuzzTrace(data)
		if tr == nil || tr.Validate() != nil {
			return
		}
		want, err := Analyze(tr, ws)
		if err != nil {
			return // FuzzAnalyze owns rejection behavior
		}
		// 0 (auto) or 1..9 explicit shards.
		n := int(((shards % 10) + 10) % 10)

		got, err := AnalyzeSharded(tr, ws, n, nil)
		if err != nil {
			t.Fatalf("AnalyzeSharded(%d) rejected a valid trace: %v", n, err)
		}
		if diffs := DiffAnalyses(got, want); len(diffs) > 0 {
			t.Fatalf("sharded(%d) vs sweep:\n%s", n, strings.Join(diffs, "\n"))
		}

		var v2 bytes.Buffer
		if err := WriteBinaryV2(&v2, tr); err != nil {
			t.Fatalf("WriteBinaryV2: %v", err)
		}
		got, err = AnalyzeBytesSharded(context.Background(), v2.Bytes(), ws, n, nil)
		if err != nil {
			t.Fatalf("AnalyzeBytesSharded(v2, %d): %v", n, err)
		}
		if diffs := DiffAnalyses(got, want); len(diffs) > 0 {
			t.Fatalf("v2 sharded(%d) vs sweep:\n%s", n, strings.Join(diffs, "\n"))
		}

		got, err = AnalyzeReader(context.Background(), bytes.NewReader(v2.Bytes()), ws)
		if err != nil {
			t.Fatalf("AnalyzeReader(v2): %v", err)
		}
		if diffs := DiffAnalyses(got, want); len(diffs) > 0 {
			t.Fatalf("v2 stream vs sweep:\n%s", strings.Join(diffs, "\n"))
		}
	})
}

// FuzzTraceEncode hammers the binary decoder with arbitrary bytes and
// requires that anything it accepts survives a binary and a JSON
// round-trip bit-identically.
func FuzzTraceEncode(f *testing.F) {
	// A small valid trace, properly encoded.
	valid := &Trace{NumReceivers: 2, NumSenders: 1, Horizon: 32, Events: []Event{
		{Start: 0, Len: 4, Sender: 0, Receiver: 0, Critical: true},
		{Start: 8, Len: 2, Sender: 0, Receiver: 1},
	}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, valid); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	// Regression: header declaring ~2^28 events with no payload — the
	// decoder used to preallocate the whole slice before reading.
	hdr := append([]byte("STBT"), make([]byte, 28)...)
	binary.LittleEndian.PutUint32(hdr[4:], 1)      // version
	binary.LittleEndian.PutUint32(hdr[8:], 2)      // receivers
	binary.LittleEndian.PutUint32(hdr[12:], 1)     // senders
	binary.LittleEndian.PutUint64(hdr[16:], 32)    // horizon
	binary.LittleEndian.PutUint64(hdr[24:], 1<<27) // events
	f.Add(hdr)
	f.Add([]byte("STBT"))
	f.Add([]byte{})
	// The same small trace in the v2 columnar container, so mutations
	// explore the block decoder too.
	var v2buf bytes.Buffer
	if err := WriteBinaryV2(&v2buf, valid); err != nil {
		f.Fatal(err)
	}
	f.Add(v2buf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("ReadBinary returned an invalid trace: %v", err)
		}
		var bin bytes.Buffer
		if err := WriteBinary(&bin, tr); err != nil {
			t.Fatalf("WriteBinary: %v", err)
		}
		back, err := ReadBinary(&bin)
		if err != nil {
			t.Fatalf("binary round-trip decode: %v", err)
		}
		if !tracesEqual(tr, back) {
			t.Fatalf("binary round-trip changed the trace: %+v vs %+v", tr, back)
		}
		var js bytes.Buffer
		if err := WriteJSON(&js, tr); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		back, err = ReadJSON(&js)
		if err != nil {
			t.Fatalf("JSON round-trip decode: %v", err)
		}
		if !tracesEqual(tr, back) {
			t.Fatalf("JSON round-trip changed the trace: %+v vs %+v", tr, back)
		}
		var v2 bytes.Buffer
		if err := WriteBinaryV2(&v2, tr); err != nil {
			t.Fatalf("WriteBinaryV2: %v", err)
		}
		back, err = ReadBinary(&v2)
		if err != nil {
			t.Fatalf("v2 round-trip decode: %v", err)
		}
		if !tracesEqual(sortedCopy(tr), back) {
			t.Fatalf("v2 round-trip changed the trace: %+v vs %+v", tr, back)
		}
	})
}

// tracesEqual compares traces treating nil and empty event slices as
// equal (the encodings do not distinguish them).
func tracesEqual(a, b *Trace) bool {
	if a.NumReceivers != b.NumReceivers || a.NumSenders != b.NumSenders || a.Horizon != b.Horizon {
		return false
	}
	if len(a.Events) != len(b.Events) {
		return false
	}
	return len(a.Events) == 0 || reflect.DeepEqual(a.Events, b.Events)
}

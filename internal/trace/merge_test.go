package trace

import "testing"

func TestMergeAnalysesWindowsConcatenated(t *testing.T) {
	trA := &Trace{NumReceivers: 2, NumSenders: 1, Horizon: 200,
		Events: []Event{{Start: 0, Len: 80, Receiver: 0}}}
	trB := &Trace{NumReceivers: 2, NumSenders: 1, Horizon: 300,
		Events: []Event{{Start: 100, Len: 90, Receiver: 1, Critical: true}}}
	aA, err := Analyze(trA, 100)
	if err != nil {
		t.Fatal(err)
	}
	aB, err := Analyze(trB, 100)
	if err != nil {
		t.Fatal(err)
	}
	m, err := MergeAnalyses(aA, aB)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumWindows() != aA.NumWindows()+aB.NumWindows() {
		t.Fatalf("windows = %d, want %d", m.NumWindows(), aA.NumWindows()+aB.NumWindows())
	}
	// Scenario A's window 0 carries receiver 0's 80 cycles; scenario
	// B's second window (index 2+1=3 in the merge) carries receiver 1.
	if got := m.Comm.At(0, 0); got != 80 {
		t.Errorf("merged Comm[0][0] = %d, want 80", got)
	}
	if got := m.Comm.At(1, aA.NumWindows()+1); got != 90 {
		t.Errorf("merged Comm[1][3] = %d, want 90", got)
	}
	if got := m.CritComm.At(1, aA.NumWindows()+1); got != 90 {
		t.Errorf("merged CritComm = %d, want 90", got)
	}
	// Boundaries strictly increasing, correct count.
	if len(m.Boundaries) != m.NumWindows()+1 {
		t.Fatalf("boundaries = %d", len(m.Boundaries))
	}
	for i := 1; i < len(m.Boundaries); i++ {
		if m.Boundaries[i] <= m.Boundaries[i-1] {
			t.Fatal("boundaries not increasing")
		}
	}
}

func TestMergeAnalysesOMSummed(t *testing.T) {
	mk := func(overlap int64) *Analysis {
		tr := &Trace{NumReceivers: 2, NumSenders: 1, Horizon: 100,
			Events: []Event{
				{Start: 0, Len: overlap, Receiver: 0},
				{Start: 0, Len: overlap, Receiver: 1},
			}}
		a, err := Analyze(tr, 100)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	m, err := MergeAnalyses(mk(30), mk(50))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.OM.At(0, 1); got != 80 {
		t.Errorf("merged OM = %d, want 80", got)
	}
	// Merging must not mutate the inputs.
	single := mk(30)
	if _, err := MergeAnalyses(single, mk(50)); err != nil {
		t.Fatal(err)
	}
	if single.OM.At(0, 1) != 30 {
		t.Error("merge mutated its input")
	}
}

func TestMergeAnalysesErrors(t *testing.T) {
	if _, err := MergeAnalyses(); err == nil {
		t.Error("empty merge accepted")
	}
	a2, _ := Analyze(&Trace{NumReceivers: 2, NumSenders: 1, Horizon: 10}, 10)
	a3, _ := Analyze(&Trace{NumReceivers: 3, NumSenders: 1, Horizon: 10}, 10)
	if _, err := MergeAnalyses(a2, a3); err == nil {
		t.Error("mismatched receiver counts accepted")
	}
	// Single analysis passes through.
	same, err := MergeAnalyses(a2)
	if err != nil || same != a2 {
		t.Error("single merge should be identity")
	}
}

package trace

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/conc"
	"repro/internal/obs"
)

// binaryHeaderSize is the fixed v1/v2 file header: magic + five fields.
const binaryHeaderSize = 4 + 4 + 4 + 4 + 8 + 8

// v1Src adapts a v1 binary event image (the bytes after the file
// header) as an indexed shard source. Planning reads only the start
// and length words; full decode and semantic validation happen in
// feed, which every event's home shard always reaches.
type v1Src struct {
	body    []byte
	nT, nS  int
	horizon int64
}

func (s v1Src) events() int { return len(s.body) / binaryEventSize }

func (s v1Src) startAt(k int) int64 {
	return int64(binary.LittleEndian.Uint64(s.body[k*binaryEventSize:]))
}

func (s v1Src) endAt(k int) int64 {
	off := k * binaryEventSize
	return int64(binary.LittleEndian.Uint64(s.body[off:]) + binary.LittleEndian.Uint64(s.body[off+8:]))
}

func (s v1Src) feed(sw *sweeper, k int, lo, hi int64) error {
	var buf [binaryEventSize]byte
	copy(buf[:], s.body[k*binaryEventSize:])
	e := decodeBinaryEvent(&buf)
	if err := validateStreamEvent(uint64(k), e, s.nT, s.nS, s.horizon); err != nil {
		return err
	}
	start, end := e.Start, e.End()
	if start < lo {
		start = lo
	}
	if end > hi {
		end = hi
	}
	if start < end {
		sw.feed(start, end-start, e.Receiver, e.Critical)
	}
	return nil
}

// AnalyzeBytesSharded runs the sharded analysis directly over a binary
// trace image (v1 or v2) without materializing the event slice — the
// out-of-core analog of AnalyzeShardedCtx, typically fed by
// AnalyzeFileSharded's mmap. shards ≤ 0 means one per CPU core; one
// shard degrades to the streaming single-pass kernel. stats may be nil.
func AnalyzeBytesSharded(ctx context.Context, data []byte, ws int64, shards int, stats *ShardStats) (*Analysis, error) {
	hdr, err := readBinaryHeader(bufio.NewReader(bytes.NewReader(data)))
	if err != nil {
		return nil, err
	}
	if err := validateStreamHeader(hdr); err != nil {
		return nil, err
	}
	boundaries, err := windowBoundaries(hdr.horizon, ws)
	if err != nil {
		return nil, err
	}
	body := data[binaryHeaderSize:]
	nT, nS := int(hdr.numReceivers), int(hdr.numSenders)

	shards = resolveShards(shards, len(boundaries)-1)
	if shards <= 1 {
		t0 := time.Now()
		a, err := AnalyzeReader(ctx, bytes.NewReader(data), ws)
		if err == nil && stats != nil {
			stats.Shards = []ShardStat{{Windows: len(boundaries) - 1, Events: int64(hdr.numEvents), NS: time.Since(t0).Nanoseconds()}}
		}
		return a, err
	}

	if hdr.version == binaryVersionV2 {
		return analyzeV2Sharded(ctx, body, hdr, boundaries, shards, stats)
	}
	want := hdr.numEvents * binaryEventSize
	if hdr.numEvents > 1<<57 || uint64(len(body)) != want {
		return nil, fmt.Errorf("trace: v1 image is %d event bytes, header declares %d events (%d bytes)", len(body), hdr.numEvents, want)
	}
	src := v1Src{body: body, nT: nT, nS: nS, horizon: hdr.horizon}
	return analyzeShardedIndexed(ctx, nT, boundaries, src, shards, int64(hdr.numEvents), stats)
}

// validateStreamHeader applies the shape checks shared by AnalyzeReader
// and the byte-backed sharded paths.
func validateStreamHeader(hdr binHeader) error {
	if hdr.numReceivers == 0 {
		return fmt.Errorf("trace: NumReceivers must be positive")
	}
	if hdr.numSenders == 0 {
		return fmt.Errorf("trace: NumSenders must be positive")
	}
	const maxStreamReceivers = 1 << 12
	if hdr.numReceivers > maxStreamReceivers {
		return fmt.Errorf("trace: %d receivers exceeds the streaming-analysis limit %d", hdr.numReceivers, maxStreamReceivers)
	}
	if hdr.horizon <= 0 {
		return fmt.Errorf("trace: Horizon must be positive")
	}
	return nil
}

// analyzeV2Sharded is the block-granular sharded driver for v2 images.
// Cuts are planned from the block index (event-count balanced, snapped
// to the window boundary containing the cut block's first start); each
// shard fully decodes every block whose [firstStart, maxEnd) summary
// intersects its cycle range and feeds the events clipped to the
// range. A block's home shard always decodes it, and the decoder
// verifies the maxEnd summary against the decoded events, so a corrupt
// summary surfaces as an error instead of silently dropped overlap.
func analyzeV2Sharded(ctx context.Context, body []byte, hdr binHeader, boundaries []int64, shards int, stats *ShardStats) (*Analysis, error) {
	nW := len(boundaries) - 1
	nT, nS := int(hdr.numReceivers), int(hdr.numSenders)

	ctx, span := obs.Start(ctx, "trace.analyze")
	defer span.End()
	span.SetStr("kernel", "sharded")
	span.SetInt("receivers", int64(nT))
	span.SetInt("windows", int64(nW))
	span.SetInt("events", int64(hdr.numEvents))
	span.SetInt("shards", int64(shards))
	metAnalyses.Inc()
	metWindows.Add(int64(nW))
	metShardedRuns.Inc()
	metShardsRun.Add(int64(shards))

	t0 := time.Now()
	idx, err := parseV2Index(body, hdr)
	if err != nil {
		return nil, err
	}
	cutW := make([]int, shards+1)
	cutW[shards] = nW
	for s := 1; s < shards; s++ {
		var w int
		if len(idx) == 0 {
			w = nW * s / shards
		} else {
			te := hdr.numEvents * uint64(s) / uint64(shards)
			bi := sort.Search(len(idx), func(i int) bool { return idx[i].cumEvents > te }) - 1
			if bi < 0 {
				bi = 0
			}
			cs := idx[bi].bh.firstStart
			if cs >= hdr.horizon {
				cs = hdr.horizon - 1 // hostile block start past the horizon; feed will reject it
			}
			w = sort.Search(nW, func(m int) bool { return boundaries[m+1] > cs })
		}
		if w < cutW[s-1] {
			w = cutW[s-1]
		}
		if w > nW {
			w = nW
		}
		cutW[s] = w
	}
	spans := make([]shardSpan, shards)
	for s := 0; s < shards; s++ {
		spans[s] = shardSpan{winLo: cutW[s], winHi: cutW[s+1]}
	}
	planNS := time.Since(t0).Nanoseconds()

	parts := make([]*Analysis, shards)
	stat := make([]ShardStat, shards)
	err = conc.ForEach(ctx, shards, 0, func(ctx context.Context, s int) error {
		ts := time.Now()
		sp := spans[s]
		lo, hi := boundaries[sp.winLo], boundaries[sp.winHi]
		sw := newSweeper(nT, boundaries[sp.winLo:sp.winHi+1])
		var fed int64
		for _, ent := range idx {
			if sp.winLo == sp.winHi || ent.bh.firstStart >= hi || ent.bh.maxEnd <= lo {
				continue
			}
			if err := ctx.Err(); err != nil {
				return err
			}
			payload := body[ent.off : ent.off+int(ent.bh.payloadLen)]
			i := ent.cumEvents
			err := v2DecodeBlock(ent.bh, payload, func(e Event) error {
				if err := validateStreamEvent(i, e, nT, nS, hdr.horizon); err != nil {
					return err
				}
				i++
				start, end := e.Start, e.End()
				if start < lo {
					start = lo
				}
				if end > hi {
					end = hi
				}
				if start < end {
					sw.feed(start, end-start, e.Receiver, e.Critical)
					fed++
				}
				return nil
			})
			if err != nil {
				return err
			}
		}
		parts[s] = sw.finishTables()
		stat[s] = ShardStat{Windows: sp.winHi - sp.winLo, Events: fed, NS: time.Since(ts).Nanoseconds()}
		return nil
	})
	if err != nil {
		if ctx.Err() != nil {
			return nil, fmt.Errorf("trace: analysis canceled: %w", err)
		}
		return nil, err
	}

	tm := time.Now()
	a := mergeShards(nT, boundaries, spans, parts)
	if stats != nil {
		stats.Shards = stat
		stats.PlanNS = planNS
		stats.MergeNS = time.Since(tm).Nanoseconds()
	}
	span.SetInt("sparse_cells", int64(a.Overlap.NNZ()+a.CritOverlap.NNZ()))
	return a, nil
}

// AnalyzeFileSharded memory-maps a binary trace file (v1 or v2) and
// runs the sharded analysis over the mapping: the out-of-core entry
// point, with peak heap bounded by the output tables plus per-shard
// frontier state regardless of the file size. On platforms without
// mmap the file is read into memory instead.
func AnalyzeFileSharded(ctx context.Context, path string, ws int64, shards int, stats *ShardStats) (*Analysis, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if fi.Size() < binaryHeaderSize {
		return nil, fmt.Errorf("trace: %s: %d bytes is smaller than a trace header", path, fi.Size())
	}
	data, unmap, err := mapFile(f, int(fi.Size()))
	if err != nil {
		return nil, fmt.Errorf("trace: mapping %s: %w", path, err)
	}
	defer unmap() //nolint:errcheck // read-only mapping
	return AnalyzeBytesSharded(ctx, data, ws, shards, stats)
}

package trace

import "repro/internal/ds"

// DutyCycles returns each receiver's busy fraction over the whole
// trace — the average-utilization view of the traffic.
func (tr *Trace) DutyCycles() []float64 {
	busy, _ := tr.busyByReceiver()
	out := make([]float64, tr.NumReceivers)
	for i, set := range busy {
		out[i] = float64(set.Len()) / float64(tr.Horizon)
	}
	return out
}

// PeakWindowDuty returns each receiver's maximum busy fraction over
// windows of ws cycles — the peak-utilization view, whose gap to
// DutyCycles quantifies how bursty the stream is.
func (tr *Trace) PeakWindowDuty(ws int64) ([]float64, error) {
	a, err := Analyze(tr, ws)
	if err != nil {
		return nil, err
	}
	out := make([]float64, tr.NumReceivers)
	for i := 0; i < tr.NumReceivers; i++ {
		for m := 0; m < a.NumWindows(); m++ {
			if f := float64(a.Comm.At(i, m)) / float64(a.WindowLen(m)); f > out[i] {
				out[i] = f
			}
		}
	}
	return out, nil
}

// OverlapFractions returns, for every unordered receiver pair, the
// total overlap as a fraction of the smaller stream's busy cycles —
// 1.0 means the lighter stream is always covered by the heavier one.
// Pairs where either stream is idle report 0.
func (tr *Trace) OverlapFractions() *ds.SymMatrixF {
	busy, _ := tr.busyByReceiver()
	out := ds.NewSymMatrixF(tr.NumReceivers)
	for i := 0; i < tr.NumReceivers; i++ {
		for j := i + 1; j < tr.NumReceivers; j++ {
			li, lj := busy[i].Len(), busy[j].Len()
			min := li
			if lj < min {
				min = lj
			}
			if min == 0 {
				continue
			}
			out.Set(i, j, float64(busy[i].IntersectLen(busy[j]))/float64(min))
		}
	}
	return out
}

// BurstHistogram buckets burst lengths into powers of two starting at
// minLen; the last bucket is open-ended. Returned counts align with
// the returned bucket lower bounds.
func (tr *Trace) BurstHistogram(minLen int64, buckets int) (bounds []int64, counts []int) {
	if buckets < 1 {
		buckets = 1
	}
	if minLen < 1 {
		minLen = 1
	}
	bounds = make([]int64, buckets)
	counts = make([]int, buckets)
	b := minLen
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	busy, _ := tr.busyByReceiver()
	for _, set := range busy {
		for _, iv := range set.Intervals() {
			l := iv.Len()
			idx := 0
			for idx < buckets-1 && l >= bounds[idx+1] {
				idx++
			}
			if l >= bounds[0] {
				counts[idx]++
			} else {
				counts[0]++
			}
		}
	}
	return bounds, counts
}

// WindowSizeHint suggests an analysis window for the trace following
// the paper's Section 7.2 guidance: 1–4× the typical burst length for
// a balanced design (we pick 2×), clamped to at least 1 cycle and at
// most the horizon. For burst-free traces it falls back to 1% of the
// horizon.
func (tr *Trace) WindowSizeHint() int64 {
	st := tr.Bursts()
	ws := int64(2 * st.MeanLen)
	if ws < 1 {
		ws = tr.Horizon / 100
	}
	if ws < 1 {
		ws = 1
	}
	if ws > tr.Horizon {
		ws = tr.Horizon
	}
	return ws
}

package trace

import (
	"context"
	"math/rand"
	"testing"
)

// mustShardEqual runs the sharded driver at the given shard count and
// asserts bit-identity against the single-pass sweep.
func mustShardEqual(t *testing.T, tag string, tr *Trace, ws int64, shards int) *ShardStats {
	t.Helper()
	want, err := Analyze(tr, ws)
	if err != nil {
		t.Fatalf("%s: Analyze: %v", tag, err)
	}
	var stats ShardStats
	got, err := AnalyzeSharded(tr, ws, shards, &stats)
	if err != nil {
		t.Fatalf("%s: AnalyzeSharded(%d): %v", tag, shards, err)
	}
	mustEqualAnalyses(t, tag, got, want)
	return &stats
}

func TestShardedMatchesSweepRandom(t *testing.T) {
	for _, receivers := range []int{1, 2, 3, 8, 17, 33} {
		rng := rand.New(rand.NewSource(int64(1000 + receivers)))
		events := 50 + receivers*10
		for trial := 0; trial < 4; trial++ {
			horizon := int64(64 + rng.Intn(4000))
			tr := randomSweepTrace(rng, receivers, events, horizon)
			for _, ws := range []int64{1, 7, horizon / 3, horizon} {
				if ws <= 0 {
					continue
				}
				for _, shards := range []int{1, 2, 3, 5, 8, 64, 0} {
					mustShardEqual(t, "rx"+itoa(receivers)+"/ws"+itoa(int(ws))+"/sh"+itoa(shards), tr, ws, shards)
				}
			}
		}
	}
}

// TestShardedStraddles pins the boundary-split merge on hand-built
// traces where grants cross exactly one cut, two cuts, and every cut —
// including overlapping pairs whose intersection itself straddles a
// cut, the case where frontier state at the boundary matters.
func TestShardedStraddles(t *testing.T) {
	// horizon 400, ws 100 → 4 windows; cuts for 4 shards land at
	// 100/200/300 (one window per shard).
	cases := []struct {
		name   string
		events []Event
	}{
		{"one-cut", []Event{
			{Start: 90, Len: 20, Receiver: 0},
			{Start: 95, Len: 10, Receiver: 1, Critical: true},
		}},
		{"two-cuts", []Event{
			{Start: 50, Len: 200, Receiver: 0},
			{Start: 120, Len: 100, Receiver: 1},
		}},
		{"all-cuts", []Event{
			{Start: 0, Len: 400, Receiver: 0, Critical: true},
			{Start: 10, Len: 380, Receiver: 1},
			{Start: 200, Len: 50, Receiver: 2},
		}},
		{"pair-intersection-straddles", []Event{
			// The pair's overlap interval [180, 220) crosses the cut at
			// 200; its credit must land half in window 1, half in 2.
			{Start: 150, Len: 70, Receiver: 0},
			{Start: 180, Len: 60, Receiver: 1},
		}},
		{"ends-exactly-on-cut", []Event{
			{Start: 50, Len: 50, Receiver: 0},
			{Start: 100, Len: 100, Receiver: 1},
			{Start: 150, Len: 50, Receiver: 0, Critical: true},
		}},
		{"starts-on-every-boundary", []Event{
			{Start: 0, Len: 1, Receiver: 0},
			{Start: 100, Len: 1, Receiver: 1},
			{Start: 200, Len: 1, Receiver: 2},
			{Start: 300, Len: 1, Receiver: 0},
			{Start: 399, Len: 1, Receiver: 1},
		}},
	}
	for _, tc := range cases {
		tr := &Trace{NumReceivers: 3, NumSenders: 1, Horizon: 400, Events: tc.events}
		for _, shards := range []int{2, 3, 4} {
			mustShardEqual(t, tc.name+"/sh"+itoa(shards), tr, 100, shards)
		}
	}
}

// TestShardedDegenerate covers empty traces, single-window traces,
// more shards than windows (zero-length shard requests collapse), and
// shards that receive no events at all.
func TestShardedDegenerate(t *testing.T) {
	empty := &Trace{NumReceivers: 4, NumSenders: 1, Horizon: 1000}
	mustShardEqual(t, "empty-trace", empty, 100, 8)

	oneWindow := &Trace{NumReceivers: 2, NumSenders: 1, Horizon: 50,
		Events: []Event{{Start: 5, Len: 10, Receiver: 0}, {Start: 8, Len: 4, Receiver: 1}}}
	mustShardEqual(t, "one-window", oneWindow, 50, 8)

	// All events clustered in the first window: most shards are empty,
	// and event-balanced cuts collide into zero-length shards.
	clustered := &Trace{NumReceivers: 3, NumSenders: 1, Horizon: 10000}
	for k := 0; k < 40; k++ {
		clustered.Events = append(clustered.Events,
			Event{Start: int64(k % 7), Len: int64(1 + k%5), Receiver: k % 3, Critical: k%4 == 0})
	}
	stats := mustShardEqual(t, "clustered", clustered, 100, 8)
	if len(stats.Shards) != 8 {
		t.Fatalf("clustered: got %d shard stats, want 8", len(stats.Shards))
	}

	// Events only in the last window.
	tail := &Trace{NumReceivers: 2, NumSenders: 1, Horizon: 1000,
		Events: []Event{{Start: 990, Len: 10, Receiver: 0}, {Start: 995, Len: 5, Receiver: 1}}}
	mustShardEqual(t, "tail-only", tail, 100, 4)

	// More shards than windows: resolves down to the window count.
	var stats2 ShardStats
	got, err := AnalyzeSharded(oneWindow, 50, 100, &stats2)
	if err != nil {
		t.Fatalf("over-sharded: %v", err)
	}
	want, _ := Analyze(oneWindow, 50)
	mustEqualAnalyses(t, "over-sharded", got, want)
	if len(stats2.Shards) != 1 {
		t.Fatalf("over-sharded: got %d shards, want 1", len(stats2.Shards))
	}
}

// TestShardedUnsortedInput checks the sharded entry point accepts
// unordered event slices, like Analyze does.
func TestShardedUnsortedInput(t *testing.T) {
	tr := &Trace{NumReceivers: 3, NumSenders: 1, Horizon: 600, Events: []Event{
		{Start: 500, Len: 90, Receiver: 2},
		{Start: 10, Len: 300, Receiver: 0, Critical: true},
		{Start: 250, Len: 100, Receiver: 1},
		{Start: 10, Len: 40, Receiver: 1},
	}}
	mustShardEqual(t, "unsorted", tr, 100, 3)
}

// TestShardedAdaptiveBoundaries runs the explicit-boundary form with
// variable-size windows.
func TestShardedAdaptiveBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	tr := randomSweepTrace(rng, 6, 120, 900)
	boundaries := []int64{0, 13, 14, 200, 450, 451, 700, 900}
	want, err := AnalyzeWithBoundariesCtx(context.Background(), tr, boundaries)
	if err != nil {
		t.Fatalf("AnalyzeWithBoundariesCtx: %v", err)
	}
	for _, shards := range []int{2, 3, 7, 50} {
		got, err := AnalyzeShardedWithBoundariesCtx(context.Background(), tr, boundaries, shards, nil)
		if err != nil {
			t.Fatalf("sharded adaptive (%d): %v", shards, err)
		}
		mustEqualAnalyses(t, "adaptive/sh"+itoa(shards), got, want)
	}
}

// TestShardedCancel checks the driver honors context cancellation.
func TestShardedCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := randomSweepTrace(rng, 8, 5000, 100000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := AnalyzeShardedCtx(ctx, tr, 10, 4, nil); err == nil {
		t.Fatal("canceled sharded analysis returned nil error")
	}
}

// TestShardedStats sanity-checks the instrumentation output: window
// counts partition the window range, and every straddling grant is
// counted once per shard it touches.
func TestShardedStats(t *testing.T) {
	tr := &Trace{NumReceivers: 2, NumSenders: 1, Horizon: 400, Events: []Event{
		{Start: 0, Len: 400, Receiver: 0}, // touches all 4 shards
		{Start: 250, Len: 10, Receiver: 1},
	}}
	var stats ShardStats
	if _, err := AnalyzeSharded(tr, 100, 4, &stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Shards) != 4 {
		t.Fatalf("got %d shard stats, want 4", len(stats.Shards))
	}
	wins, fed := 0, int64(0)
	for _, s := range stats.Shards {
		wins += s.Windows
		fed += s.Events
	}
	if wins != 4 {
		t.Fatalf("shard windows sum to %d, want 4", wins)
	}
	// Cut placement is event-balanced, so the exact piece count depends
	// on the plan; but every event is fed at least once, and the
	// horizon-long grant necessarily straddles at least one cut.
	if fed <= int64(len(tr.Events)) {
		t.Fatalf("shard events sum to %d, want > %d (the straddling grant must be split)", fed, len(tr.Events))
	}
}

package trace

import "testing"

func TestDutyCycles(t *testing.T) {
	tr := &Trace{
		NumReceivers: 2,
		NumSenders:   1,
		Horizon:      100,
		Events: []Event{
			{Start: 0, Len: 25, Receiver: 0},
			{Start: 50, Len: 25, Receiver: 0},
			{Start: 0, Len: 10, Receiver: 1},
		},
	}
	duty := tr.DutyCycles()
	if duty[0] != 0.5 {
		t.Errorf("duty[0] = %f, want 0.5", duty[0])
	}
	if duty[1] != 0.1 {
		t.Errorf("duty[1] = %f, want 0.1", duty[1])
	}
}

func TestPeakWindowDuty(t *testing.T) {
	tr := &Trace{
		NumReceivers: 1,
		NumSenders:   1,
		Horizon:      100,
		Events:       []Event{{Start: 0, Len: 10, Receiver: 0}},
	}
	peak, err := tr.PeakWindowDuty(10)
	if err != nil {
		t.Fatal(err)
	}
	if peak[0] != 1.0 {
		t.Errorf("peak = %f, want 1.0 (fully busy first window)", peak[0])
	}
	avg := tr.DutyCycles()
	if avg[0] != 0.1 {
		t.Errorf("avg duty = %f, want 0.1", avg[0])
	}
}

func TestOverlapFractions(t *testing.T) {
	tr := &Trace{
		NumReceivers: 3,
		NumSenders:   1,
		Horizon:      100,
		Events: []Event{
			{Start: 0, Len: 40, Receiver: 0},
			{Start: 20, Len: 20, Receiver: 1}, // fully inside receiver 0
			{Start: 90, Len: 10, Receiver: 2}, // disjoint
		},
	}
	ov := tr.OverlapFractions()
	if got := ov.At(0, 1); got != 1.0 {
		t.Errorf("overlap(0,1) = %f, want 1.0 (lighter fully covered)", got)
	}
	if got := ov.At(0, 2); got != 0 {
		t.Errorf("overlap(0,2) = %f, want 0", got)
	}
	if got := ov.At(1, 0); got != ov.At(0, 1) {
		t.Error("overlap fractions not symmetric")
	}
}

func TestOverlapFractionsIdleReceiver(t *testing.T) {
	tr := &Trace{
		NumReceivers: 2,
		NumSenders:   1,
		Horizon:      100,
		Events:       []Event{{Start: 0, Len: 10, Receiver: 0}},
	}
	if got := tr.OverlapFractions().At(0, 1); got != 0 {
		t.Errorf("overlap with idle receiver = %f, want 0", got)
	}
}

func TestBurstHistogram(t *testing.T) {
	tr := &Trace{
		NumReceivers: 1,
		NumSenders:   1,
		Horizon:      10000,
		Events: []Event{
			{Start: 0, Len: 1, Receiver: 0},     // bucket >=1
			{Start: 100, Len: 3, Receiver: 0},   // bucket >=2
			{Start: 200, Len: 100, Receiver: 0}, // bucket >=64
			{Start: 400, Len: 999, Receiver: 0}, // last bucket (open)
		},
	}
	bounds, counts := tr.BurstHistogram(1, 8)
	if len(bounds) != 8 || bounds[0] != 1 || bounds[7] != 128 {
		t.Fatalf("bounds = %v", bounds)
	}
	if counts[0] != 1 { // len 1
		t.Errorf("counts[>=1] = %d, want 1", counts[0])
	}
	if counts[1] != 1 { // len 3 in [2,4)
		t.Errorf("counts[>=2] = %d, want 1", counts[1])
	}
	if counts[6] != 1 { // len 100 in [64,128)
		t.Errorf("counts[>=64] = %d, want 1", counts[6])
	}
	if counts[7] != 1 { // len 999 open-ended
		t.Errorf("counts[>=128] = %d, want 1", counts[7])
	}
}

func TestBurstHistogramDegenerateParams(t *testing.T) {
	tr := &Trace{NumReceivers: 1, NumSenders: 1, Horizon: 10,
		Events: []Event{{Start: 0, Len: 5, Receiver: 0}}}
	bounds, counts := tr.BurstHistogram(0, 0)
	if len(bounds) != 1 || len(counts) != 1 {
		t.Fatalf("degenerate params not clamped: %v %v", bounds, counts)
	}
	if counts[0] != 1 {
		t.Errorf("counts = %v, want [1]", counts)
	}
}

func TestWindowSizeHint(t *testing.T) {
	tr := &Trace{
		NumReceivers: 1,
		NumSenders:   1,
		Horizon:      10000,
		Events: []Event{
			{Start: 0, Len: 100, Receiver: 0},
			{Start: 500, Len: 300, Receiver: 0},
		},
	}
	if got := tr.WindowSizeHint(); got != 400 { // 2 × mean(200)
		t.Errorf("hint = %d, want 400", got)
	}
	empty := &Trace{NumReceivers: 1, NumSenders: 1, Horizon: 500}
	if got := empty.WindowSizeHint(); got != 5 {
		t.Errorf("empty-trace hint = %d, want 5 (1%% of horizon)", got)
	}
	tiny := &Trace{NumReceivers: 1, NumSenders: 1, Horizon: 10}
	if got := tiny.WindowSizeHint(); got < 1 || got > 10 {
		t.Errorf("tiny-trace hint = %d outside [1,10]", got)
	}
	long := &Trace{NumReceivers: 1, NumSenders: 1, Horizon: 100,
		Events: []Event{{Start: 0, Len: 90, Receiver: 0}}}
	if got := long.WindowSizeHint(); got != 100 {
		t.Errorf("hint = %d, want clamped to horizon 100", got)
	}
}

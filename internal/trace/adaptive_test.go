package trace

import (
	"math/rand"
	"testing"
)

// burstyTrace builds a trace with bursts at known onsets.
func burstyTrace() *Trace {
	return &Trace{
		NumReceivers: 2,
		NumSenders:   1,
		Horizon:      10000,
		Events: []Event{
			{Start: 1000, Len: 500, Receiver: 0},
			{Start: 4000, Len: 500, Receiver: 1},
			{Start: 7000, Len: 500, Receiver: 0},
		},
	}
}

func TestAdaptiveBoundariesInvariants(t *testing.T) {
	tr := burstyTrace()
	b, err := AdaptiveBoundaries(tr, 400, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != 0 || b[len(b)-1] != tr.Horizon {
		t.Fatalf("boundaries must span [0, horizon]: %v", b)
	}
	for i := 1; i < len(b); i++ {
		w := b[i] - b[i-1]
		if w <= 0 {
			t.Fatalf("non-increasing boundaries: %v", b)
		}
		if w > 3000 {
			t.Errorf("window %d–%d exceeds maxWS", b[i-1], b[i])
		}
		// All but the last window respect minWS (the tail may absorb
		// a short remainder).
		if i < len(b)-1 && w < 400 {
			t.Errorf("window %d–%d below minWS", b[i-1], b[i])
		}
	}
}

func TestAdaptiveBoundariesAlignToOnsets(t *testing.T) {
	tr := burstyTrace()
	b, err := AdaptiveBoundaries(tr, 400, 3000)
	if err != nil {
		t.Fatal(err)
	}
	// Burst onsets at 1000, 4000, 7000 should be boundary points
	// (bucket = minWS/4 = 100 divides them exactly).
	want := map[int64]bool{1000: false, 4000: false, 7000: false}
	for _, edge := range b {
		if _, ok := want[edge]; ok {
			want[edge] = true
		}
	}
	for onset, found := range want {
		if !found {
			t.Errorf("onset %d not a boundary: %v", onset, b)
		}
	}
}

func TestAdaptiveBoundariesUsableByAnalyze(t *testing.T) {
	tr := burstyTrace()
	a, err := AnalyzeAdaptive(tr, 400, 3000)
	if err != nil {
		t.Fatal(err)
	}
	// Conservation: windowed sums equal totals.
	totals := tr.TotalCycles()
	for r := 0; r < tr.NumReceivers; r++ {
		var sum int64
		for m := 0; m < a.NumWindows(); m++ {
			sum += a.Comm.At(r, m)
		}
		if sum != totals[r] {
			t.Errorf("receiver %d: windowed %d != total %d", r, sum, totals[r])
		}
	}
}

func TestAdaptiveBoundariesShortTrace(t *testing.T) {
	tr := &Trace{NumReceivers: 1, NumSenders: 1, Horizon: 100,
		Events: []Event{{Start: 10, Len: 5, Receiver: 0}}}
	b, err := AdaptiveBoundaries(tr, 200, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 2 || b[0] != 0 || b[1] != 100 {
		t.Errorf("short trace boundaries = %v, want [0 100]", b)
	}
}

func TestAdaptiveBoundariesRejectsBadParams(t *testing.T) {
	tr := burstyTrace()
	if _, err := AdaptiveBoundaries(tr, 0, 100); err == nil {
		t.Error("minWS=0 accepted")
	}
	if _, err := AdaptiveBoundaries(tr, 200, 100); err == nil {
		t.Error("maxWS < minWS accepted")
	}
}

func TestAdaptiveBoundariesQuickRandomTraces(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{
			NumReceivers: 1 + rng.Intn(5),
			NumSenders:   1,
			Horizon:      int64(2000 + rng.Intn(20000)),
		}
		for e := 0; e < rng.Intn(60); e++ {
			start := rng.Int63n(tr.Horizon - 100)
			tr.Events = append(tr.Events, Event{
				Start:    start,
				Len:      1 + rng.Int63n(99),
				Receiver: rng.Intn(tr.NumReceivers),
			})
		}
		minWS := int64(100 + rng.Intn(400))
		maxWS := minWS * int64(2+rng.Intn(6))
		b, err := AdaptiveBoundaries(tr, minWS, maxWS)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if b[0] != 0 || b[len(b)-1] != tr.Horizon {
			t.Fatalf("seed %d: bad span %v", seed, b)
		}
		for i := 1; i < len(b); i++ {
			if b[i] <= b[i-1] {
				t.Fatalf("seed %d: not increasing %v", seed, b)
			}
			if b[i]-b[i-1] > maxWS {
				t.Fatalf("seed %d: window exceeds maxWS: %v", seed, b)
			}
		}
		// The result must be accepted by the analyzer.
		if _, err := AnalyzeWithBoundaries(tr, b); err != nil {
			t.Fatalf("seed %d: analyzer rejected boundaries: %v", seed, err)
		}
	}
}

package sim

import "testing"

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(10, func() { order = append(order, 2) })
	e.At(5, func() { order = append(order, 1) })
	e.At(10, func() { order = append(order, 3) }) // same cycle, later seq
	end := e.Run(100)
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if end != 100 {
		t.Errorf("end = %d, want 100", end)
	}
}

func TestEngineHorizonCutsOff(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(50, func() { ran = true })
	e.Run(20)
	if ran {
		t.Error("event past horizon executed")
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	if e.Now() != 20 {
		t.Errorf("Now = %d, want 20", e.Now())
	}
}

func TestEngineSchedulingInPastClamps(t *testing.T) {
	e := NewEngine()
	var at int64 = -1
	e.At(10, func() {
		e.At(3, func() { at = e.Now() }) // in the past: runs "now"
	})
	e.Run(100)
	if at != 10 {
		t.Errorf("past-scheduled event ran at %d, want 10", at)
	}
}

func TestEngineCascade(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			e.After(7, tick)
		}
	}
	e.At(0, tick)
	e.Run(1000)
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if e.Now() != 1000 {
		t.Errorf("Now = %d, want 1000", e.Now())
	}
}

func TestEngineSameCycleChain(t *testing.T) {
	// An event scheduling another at the same cycle runs it in the same
	// cycle, after pending same-cycle events (FIFO by sequence).
	e := NewEngine()
	var order []string
	e.At(5, func() {
		order = append(order, "a")
		e.At(5, func() { order = append(order, "c") })
	})
	e.At(5, func() { order = append(order, "b") })
	e.Run(10)
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

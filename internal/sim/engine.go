// Package sim is a cycle-accurate, deterministic discrete-event
// simulator for STbus-based MPSoCs. It substitutes for the MPARM /
// SystemC environment the paper uses (Section 4): initiator cores
// execute workload programs (compute, read, write, lock/unlock,
// barrier phases), target memories serve requests after fixed wait
// states, and all bus transfers are arbitrated by the stbus fabrics.
// The simulator both validates candidate crossbars (per-packet latency
// statistics) and produces the functional traffic traces the design
// methodology analyzes.
package sim

import (
	"container/heap"
	"context"
	"errors"
	"fmt"

	"repro/internal/obs"
)

// Simulator instruments (see internal/obs). sim.events and sim.cycle
// are flushed from the event loop's existing cancellation poll point
// (once every cancelCheckMask+1 events), so live progress costs two
// atomic stores per ~4k events; sim.runs and sim.cycles are bumped
// once per completed run.
var (
	metRuns   = obs.NewCounter("sim.runs")
	metCycles = obs.NewCounter("sim.cycles")
	metEvents = obs.NewCounter("sim.events")
	gagCycle  = obs.NewGauge("sim.cycle")
)

// ErrCanceled reports that a simulation was stopped by its context
// before reaching the horizon. It wraps the context's cause, so
// errors.Is(err, context.Canceled) (or DeadlineExceeded) also holds.
var ErrCanceled = errors.New("sim: run canceled")

// cancelCheckMask throttles context polling in the event loop: the
// context is consulted once every (mask+1) events, keeping the hot
// loop branch-cheap while still reacting to cancellation promptly.
const cancelCheckMask = 4095

// Engine is a deterministic discrete-event clock. Events scheduled for
// the same cycle run in scheduling order, which makes whole simulations
// reproducible without any real-time dependence.
type Engine struct {
	now int64
	pq  eventHeap
	seq int64
}

// NewEngine returns an engine at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current cycle.
func (e *Engine) Now() int64 { return e.now }

// At schedules fn to run at the given cycle. Scheduling in the past
// (including the current cycle) runs fn at the current cycle, after
// already-pending same-cycle events.
func (e *Engine) At(cycle int64, fn func()) {
	if cycle < e.now {
		cycle = e.now
	}
	heap.Push(&e.pq, event{cycle: cycle, seq: e.seq, fn: fn})
	e.seq++
}

// After schedules fn delay cycles from now.
func (e *Engine) After(delay int64, fn func()) { e.At(e.now+delay, fn) }

// Run processes events in order until the queue drains or the clock
// would pass horizon. It returns the cycle the clock stopped at.
func (e *Engine) Run(horizon int64) int64 {
	end, _ := e.RunCtx(context.Background(), horizon) // Background never cancels
	return end
}

// RunCtx is Run with cooperative cancellation: the context is polled
// every few thousand events and a cancellation stops the clock at the
// current cycle, returning an error wrapping ErrCanceled.
func (e *Engine) RunCtx(ctx context.Context, horizon int64) (int64, error) {
	var processed, flushed int64
	for len(e.pq) > 0 {
		next := e.pq[0]
		if next.cycle > horizon {
			break
		}
		heap.Pop(&e.pq)
		e.now = next.cycle
		next.fn()
		processed++
		if processed&cancelCheckMask == 0 {
			metEvents.Add(processed - flushed)
			flushed = processed
			gagCycle.Set(e.now)
			if err := ctx.Err(); err != nil {
				return e.now, fmt.Errorf("%w at cycle %d: %w", ErrCanceled, e.now, context.Cause(ctx))
			}
		}
	}
	if e.now < horizon {
		e.now = horizon
	}
	metEvents.Add(processed - flushed)
	return e.now, nil
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.pq) }

type event struct {
	cycle int64
	seq   int64
	fn    func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].cycle != h[j].cycle {
		return h[i].cycle < h[j].cycle
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
